file(REMOVE_RECURSE
  "libwlp.a"
)
