
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wlp/analysis/depgraph.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/depgraph.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/depgraph.cpp.o.d"
  "/root/repo/src/wlp/analysis/distribute.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/distribute.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/distribute.cpp.o.d"
  "/root/repo/src/wlp/analysis/execute_plan.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/execute_plan.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/execute_plan.cpp.o.d"
  "/root/repo/src/wlp/analysis/loop_ir.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/loop_ir.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/loop_ir.cpp.o.d"
  "/root/repo/src/wlp/analysis/plan.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/plan.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/plan.cpp.o.d"
  "/root/repo/src/wlp/analysis/recurrence.cpp" "src/CMakeFiles/wlp.dir/wlp/analysis/recurrence.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/analysis/recurrence.cpp.o.d"
  "/root/repo/src/wlp/core/cost_model.cpp" "src/CMakeFiles/wlp.dir/wlp/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/core/cost_model.cpp.o.d"
  "/root/repo/src/wlp/core/pd_test.cpp" "src/CMakeFiles/wlp.dir/wlp/core/pd_test.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/core/pd_test.cpp.o.d"
  "/root/repo/src/wlp/core/taxonomy.cpp" "src/CMakeFiles/wlp.dir/wlp/core/taxonomy.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/core/taxonomy.cpp.o.d"
  "/root/repo/src/wlp/sched/thread_pool.cpp" "src/CMakeFiles/wlp.dir/wlp/sched/thread_pool.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/sched/thread_pool.cpp.o.d"
  "/root/repo/src/wlp/sim/simulator.cpp" "src/CMakeFiles/wlp.dir/wlp/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/sim/simulator.cpp.o.d"
  "/root/repo/src/wlp/workloads/hb_generator.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/hb_generator.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/hb_generator.cpp.o.d"
  "/root/repo/src/wlp/workloads/hb_io.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/hb_io.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/hb_io.cpp.o.d"
  "/root/repo/src/wlp/workloads/ma28_pivot.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/ma28_pivot.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/ma28_pivot.cpp.o.d"
  "/root/repo/src/wlp/workloads/mcsparse_pivot.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/mcsparse_pivot.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/mcsparse_pivot.cpp.o.d"
  "/root/repo/src/wlp/workloads/sparse_lu.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/sparse_lu.cpp.o.d"
  "/root/repo/src/wlp/workloads/sparse_matrix.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/sparse_matrix.cpp.o.d"
  "/root/repo/src/wlp/workloads/spice.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/spice.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/spice.cpp.o.d"
  "/root/repo/src/wlp/workloads/track.cpp" "src/CMakeFiles/wlp.dir/wlp/workloads/track.cpp.o" "gcc" "src/CMakeFiles/wlp.dir/wlp/workloads/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
