# Empty dependencies file for wlp.
# This may be replaced when dependencies are built.
