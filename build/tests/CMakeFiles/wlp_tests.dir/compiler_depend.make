# Empty compiler generated dependencies file for wlp_tests.
# This may be replaced when dependencies are built.
