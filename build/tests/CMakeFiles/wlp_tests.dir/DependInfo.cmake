
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/wlp_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_constructs.cpp" "tests/CMakeFiles/wlp_tests.dir/test_constructs.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_constructs.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/wlp_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_depgraph.cpp" "tests/CMakeFiles/wlp_tests.dir/test_depgraph.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_depgraph.cpp.o.d"
  "/root/repo/tests/test_distribute.cpp" "tests/CMakeFiles/wlp_tests.dir/test_distribute.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_distribute.cpp.o.d"
  "/root/repo/tests/test_doacross.cpp" "tests/CMakeFiles/wlp_tests.dir/test_doacross.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_doacross.cpp.o.d"
  "/root/repo/tests/test_doall.cpp" "tests/CMakeFiles/wlp_tests.dir/test_doall.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_doall.cpp.o.d"
  "/root/repo/tests/test_execute_plan.cpp" "tests/CMakeFiles/wlp_tests.dir/test_execute_plan.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_execute_plan.cpp.o.d"
  "/root/repo/tests/test_guards.cpp" "tests/CMakeFiles/wlp_tests.dir/test_guards.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_guards.cpp.o.d"
  "/root/repo/tests/test_hb_generator.cpp" "tests/CMakeFiles/wlp_tests.dir/test_hb_generator.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_hb_generator.cpp.o.d"
  "/root/repo/tests/test_hb_io.cpp" "tests/CMakeFiles/wlp_tests.dir/test_hb_io.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_hb_io.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/wlp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linked_list.cpp" "tests/CMakeFiles/wlp_tests.dir/test_linked_list.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_linked_list.cpp.o.d"
  "/root/repo/tests/test_loop_ir.cpp" "tests/CMakeFiles/wlp_tests.dir/test_loop_ir.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_loop_ir.cpp.o.d"
  "/root/repo/tests/test_ma28_pivot.cpp" "tests/CMakeFiles/wlp_tests.dir/test_ma28_pivot.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_ma28_pivot.cpp.o.d"
  "/root/repo/tests/test_mcsparse_pivot.cpp" "tests/CMakeFiles/wlp_tests.dir/test_mcsparse_pivot.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_mcsparse_pivot.cpp.o.d"
  "/root/repo/tests/test_parallel_prefix.cpp" "tests/CMakeFiles/wlp_tests.dir/test_parallel_prefix.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_parallel_prefix.cpp.o.d"
  "/root/repo/tests/test_pd_shadow.cpp" "tests/CMakeFiles/wlp_tests.dir/test_pd_shadow.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_pd_shadow.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/wlp_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_privatize.cpp" "tests/CMakeFiles/wlp_tests.dir/test_privatize.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_privatize.cpp.o.d"
  "/root/repo/tests/test_recurrence.cpp" "tests/CMakeFiles/wlp_tests.dir/test_recurrence.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_recurrence.cpp.o.d"
  "/root/repo/tests/test_reduce.cpp" "tests/CMakeFiles/wlp_tests.dir/test_reduce.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_reduce.cpp.o.d"
  "/root/repo/tests/test_run_twice.cpp" "tests/CMakeFiles/wlp_tests.dir/test_run_twice.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_run_twice.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/wlp_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sliding_window.cpp" "tests/CMakeFiles/wlp_tests.dir/test_sliding_window.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_sliding_window.cpp.o.d"
  "/root/repo/tests/test_sparse_backup.cpp" "tests/CMakeFiles/wlp_tests.dir/test_sparse_backup.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_sparse_backup.cpp.o.d"
  "/root/repo/tests/test_sparse_lu.cpp" "tests/CMakeFiles/wlp_tests.dir/test_sparse_lu.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_sparse_lu.cpp.o.d"
  "/root/repo/tests/test_sparse_matrix.cpp" "tests/CMakeFiles/wlp_tests.dir/test_sparse_matrix.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_sparse_matrix.cpp.o.d"
  "/root/repo/tests/test_speculative.cpp" "tests/CMakeFiles/wlp_tests.dir/test_speculative.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_speculative.cpp.o.d"
  "/root/repo/tests/test_speculative_privatized.cpp" "tests/CMakeFiles/wlp_tests.dir/test_speculative_privatized.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_speculative_privatized.cpp.o.d"
  "/root/repo/tests/test_speculative_strips.cpp" "tests/CMakeFiles/wlp_tests.dir/test_speculative_strips.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_speculative_strips.cpp.o.d"
  "/root/repo/tests/test_spice_workload.cpp" "tests/CMakeFiles/wlp_tests.dir/test_spice_workload.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_spice_workload.cpp.o.d"
  "/root/repo/tests/test_strategies.cpp" "tests/CMakeFiles/wlp_tests.dir/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_strategies.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/wlp_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_taxonomy.cpp" "tests/CMakeFiles/wlp_tests.dir/test_taxonomy.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_taxonomy.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/wlp_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/wlp_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_versioned_array.cpp" "tests/CMakeFiles/wlp_tests.dir/test_versioned_array.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_versioned_array.cpp.o.d"
  "/root/repo/tests/test_while_assoc.cpp" "tests/CMakeFiles/wlp_tests.dir/test_while_assoc.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_while_assoc.cpp.o.d"
  "/root/repo/tests/test_while_doany.cpp" "tests/CMakeFiles/wlp_tests.dir/test_while_doany.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_while_doany.cpp.o.d"
  "/root/repo/tests/test_while_general.cpp" "tests/CMakeFiles/wlp_tests.dir/test_while_general.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_while_general.cpp.o.d"
  "/root/repo/tests/test_while_induction.cpp" "tests/CMakeFiles/wlp_tests.dir/test_while_induction.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_while_induction.cpp.o.d"
  "/root/repo/tests/test_wu_lewis.cpp" "tests/CMakeFiles/wlp_tests.dir/test_wu_lewis.cpp.o" "gcc" "tests/CMakeFiles/wlp_tests.dir/test_wu_lewis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
