file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_site.dir/adaptive_site.cpp.o"
  "CMakeFiles/example_adaptive_site.dir/adaptive_site.cpp.o.d"
  "example_adaptive_site"
  "example_adaptive_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
