# Empty dependencies file for example_adaptive_site.
# This may be replaced when dependencies are built.
