# Empty compiler generated dependencies file for example_auto_transform.
# This may be replaced when dependencies are built.
