file(REMOVE_RECURSE
  "CMakeFiles/example_auto_transform.dir/auto_transform.cpp.o"
  "CMakeFiles/example_auto_transform.dir/auto_transform.cpp.o.d"
  "example_auto_transform"
  "example_auto_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auto_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
