# Empty dependencies file for example_speculative_pd.
# This may be replaced when dependencies are built.
