file(REMOVE_RECURSE
  "CMakeFiles/example_speculative_pd.dir/speculative_pd.cpp.o"
  "CMakeFiles/example_speculative_pd.dir/speculative_pd.cpp.o.d"
  "example_speculative_pd"
  "example_speculative_pd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_speculative_pd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
