# Empty dependencies file for example_adaptive_window.
# This may be replaced when dependencies are built.
