file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_window.dir/adaptive_window.cpp.o"
  "CMakeFiles/example_adaptive_window.dir/adaptive_window.cpp.o.d"
  "example_adaptive_window"
  "example_adaptive_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
