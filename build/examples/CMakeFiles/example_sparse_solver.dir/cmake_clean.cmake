file(REMOVE_RECURSE
  "CMakeFiles/example_sparse_solver.dir/sparse_solver.cpp.o"
  "CMakeFiles/example_sparse_solver.dir/sparse_solver.cpp.o.d"
  "example_sparse_solver"
  "example_sparse_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sparse_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
