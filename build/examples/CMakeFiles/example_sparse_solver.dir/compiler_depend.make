# Empty compiler generated dependencies file for example_sparse_solver.
# This may be replaced when dependencies are built.
