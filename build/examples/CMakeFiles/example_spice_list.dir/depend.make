# Empty dependencies file for example_spice_list.
# This may be replaced when dependencies are built.
