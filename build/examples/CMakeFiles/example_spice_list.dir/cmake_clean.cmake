file(REMOVE_RECURSE
  "CMakeFiles/example_spice_list.dir/spice_list.cpp.o"
  "CMakeFiles/example_spice_list.dir/spice_list.cpp.o.d"
  "example_spice_list"
  "example_spice_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spice_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
