file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_wulewis.dir/bench_baseline_wulewis.cpp.o"
  "CMakeFiles/bench_baseline_wulewis.dir/bench_baseline_wulewis.cpp.o.d"
  "bench_baseline_wulewis"
  "bench_baseline_wulewis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_wulewis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
