# Empty dependencies file for bench_baseline_wulewis.
# This may be replaced when dependencies are built.
