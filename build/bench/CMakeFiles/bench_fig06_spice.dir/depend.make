# Empty dependencies file for bench_fig06_spice.
# This may be replaced when dependencies are built.
