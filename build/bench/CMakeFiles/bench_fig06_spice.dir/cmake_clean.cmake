file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_spice.dir/bench_fig06_spice.cpp.o"
  "CMakeFiles/bench_fig06_spice.dir/bench_fig06_spice.cpp.o.d"
  "bench_fig06_spice"
  "bench_fig06_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
