# Empty dependencies file for bench_fig14_ma28_orsreg1.
# This may be replaced when dependencies are built.
