file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ma28_orsreg1.dir/bench_fig14_ma28_orsreg1.cpp.o"
  "CMakeFiles/bench_fig14_ma28_orsreg1.dir/bench_fig14_ma28_orsreg1.cpp.o.d"
  "bench_fig14_ma28_orsreg1"
  "bench_fig14_ma28_orsreg1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ma28_orsreg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
