file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_prefix.dir/bench_micro_prefix.cpp.o"
  "CMakeFiles/bench_micro_prefix.dir/bench_micro_prefix.cpp.o.d"
  "bench_micro_prefix"
  "bench_micro_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
