# Empty dependencies file for bench_micro_prefix.
# This may be replaced when dependencies are built.
