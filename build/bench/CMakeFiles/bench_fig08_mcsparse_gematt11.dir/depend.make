# Empty dependencies file for bench_fig08_mcsparse_gematt11.
# This may be replaced when dependencies are built.
