file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_devicemix.dir/bench_ablation_devicemix.cpp.o"
  "CMakeFiles/bench_ablation_devicemix.dir/bench_ablation_devicemix.cpp.o.d"
  "bench_ablation_devicemix"
  "bench_ablation_devicemix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_devicemix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
