# Empty dependencies file for bench_ablation_devicemix.
# This may be replaced when dependencies are built.
