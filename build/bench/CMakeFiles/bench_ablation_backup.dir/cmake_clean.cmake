file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backup.dir/bench_ablation_backup.cpp.o"
  "CMakeFiles/bench_ablation_backup.dir/bench_ablation_backup.cpp.o.d"
  "bench_ablation_backup"
  "bench_ablation_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
