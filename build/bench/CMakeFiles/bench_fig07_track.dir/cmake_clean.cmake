file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_track.dir/bench_fig07_track.cpp.o"
  "CMakeFiles/bench_fig07_track.dir/bench_fig07_track.cpp.o.d"
  "bench_fig07_track"
  "bench_fig07_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
