# Empty dependencies file for bench_micro_undo.
# This may be replaced when dependencies are built.
