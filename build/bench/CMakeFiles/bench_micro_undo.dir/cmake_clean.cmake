file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_undo.dir/bench_micro_undo.cpp.o"
  "CMakeFiles/bench_micro_undo.dir/bench_micro_undo.cpp.o.d"
  "bench_micro_undo"
  "bench_micro_undo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_undo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
