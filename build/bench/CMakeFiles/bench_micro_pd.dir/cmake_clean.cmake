file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pd.dir/bench_micro_pd.cpp.o"
  "CMakeFiles/bench_micro_pd.dir/bench_micro_pd.cpp.o.d"
  "bench_micro_pd"
  "bench_micro_pd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
