# Empty compiler generated dependencies file for bench_micro_pd.
# This may be replaced when dependencies are built.
