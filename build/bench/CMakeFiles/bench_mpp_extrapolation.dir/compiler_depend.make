# Empty compiler generated dependencies file for bench_mpp_extrapolation.
# This may be replaced when dependencies are built.
