file(REMOVE_RECURSE
  "CMakeFiles/bench_mpp_extrapolation.dir/bench_mpp_extrapolation.cpp.o"
  "CMakeFiles/bench_mpp_extrapolation.dir/bench_mpp_extrapolation.cpp.o.d"
  "bench_mpp_extrapolation"
  "bench_mpp_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpp_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
