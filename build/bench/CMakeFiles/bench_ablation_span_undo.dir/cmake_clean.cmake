file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_span_undo.dir/bench_ablation_span_undo.cpp.o"
  "CMakeFiles/bench_ablation_span_undo.dir/bench_ablation_span_undo.cpp.o.d"
  "bench_ablation_span_undo"
  "bench_ablation_span_undo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_span_undo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
