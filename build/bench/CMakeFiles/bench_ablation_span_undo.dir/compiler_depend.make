# Empty compiler generated dependencies file for bench_ablation_span_undo.
# This may be replaced when dependencies are built.
