# Empty compiler generated dependencies file for bench_costmodel_bounds.
# This may be replaced when dependencies are built.
