file(REMOVE_RECURSE
  "CMakeFiles/bench_costmodel_bounds.dir/bench_costmodel_bounds.cpp.o"
  "CMakeFiles/bench_costmodel_bounds.dir/bench_costmodel_bounds.cpp.o.d"
  "bench_costmodel_bounds"
  "bench_costmodel_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costmodel_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
