# Empty compiler generated dependencies file for bench_fig09_mcsparse_gematt12.
# This may be replaced when dependencies are built.
