# Empty dependencies file for bench_fig13_ma28_gematt12.
# This may be replaced when dependencies are built.
