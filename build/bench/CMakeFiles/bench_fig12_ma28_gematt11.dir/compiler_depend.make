# Empty compiler generated dependencies file for bench_fig12_ma28_gematt11.
# This may be replaced when dependencies are built.
