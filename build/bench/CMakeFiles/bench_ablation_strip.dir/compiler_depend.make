# Empty compiler generated dependencies file for bench_ablation_strip.
# This may be replaced when dependencies are built.
