file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strip.dir/bench_ablation_strip.cpp.o"
  "CMakeFiles/bench_ablation_strip.dir/bench_ablation_strip.cpp.o.d"
  "bench_ablation_strip"
  "bench_ablation_strip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
