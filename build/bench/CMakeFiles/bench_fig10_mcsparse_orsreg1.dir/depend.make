# Empty dependencies file for bench_fig10_mcsparse_orsreg1.
# This may be replaced when dependencies are built.
