# Empty dependencies file for bench_fig11_mcsparse_saylr4.
# This may be replaced when dependencies are built.
