#include <gtest/gtest.h>

#include <sstream>

#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/hb_io.hpp"

namespace wlp::workloads {
namespace {

void expect_same(const SparseMatrix& a, const SparseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::int32_t r = 0; r < a.rows(); ++r) {
    const auto ca = a.row_cols(r);
    const auto cb = b.row_cols(r);
    ASSERT_EQ(ca.size(), cb.size()) << "row " << r;
    const auto va = a.row_vals(r);
    const auto vb = b.row_vals(r);
    for (std::size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(ca[k], cb[k]);
      EXPECT_NEAR(va[k], vb[k], 1e-10 * std::max(1.0, std::abs(va[k])));
    }
  }
}

TEST(HarwellBoeing, RoundTripSmallMatrix) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 4, {{0, 0, 1.5}, {0, 3, -2.25}, {1, 1, 1e-9}, {2, 0, 4.0}, {2, 2, 7.5}});
  std::stringstream buf;
  write_harwell_boeing(buf, m, "round trip", "T1");
  const SparseMatrix back = read_harwell_boeing(buf);
  expect_same(m, back);
}

TEST(HarwellBoeing, RoundTripGeneratedInputs) {
  for (const SparseMatrix& m :
       {gen_grid7(6, 5, 3), gen_power_flow(120, 800, 0.03, 3)}) {
    std::stringstream buf;
    write_harwell_boeing(buf, m);
    expect_same(m, read_harwell_boeing(buf));
  }
}

TEST(HarwellBoeing, ReadsSymmetricByExpanding) {
  // Hand-written RSA file: lower triangle of [[2,1],[1,3]].
  std::stringstream buf;
  buf << std::string(72, ' ') + "KEY" << "\n";
  buf << "             3             1             1             1             0\n";
  buf << "RSA                        2             2             3             0\n";
  buf << "(8I10)          (8I10)          (4E20.12)\n";
  buf << "         1         3         4\n";
  buf << "         1         2         2\n";
  buf << "  2.0  1.0  3.0\n";
  const SparseMatrix m = read_harwell_boeing(buf);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.nnz(), 4);  // off-diagonal mirrored
  EXPECT_EQ(m.at(0, 0), 2.0);
  EXPECT_EQ(m.at(0, 1), 1.0);
  EXPECT_EQ(m.at(1, 0), 1.0);
  EXPECT_EQ(m.at(1, 1), 3.0);
}

TEST(HarwellBoeing, FortranDExponents) {
  std::stringstream buf;
  buf << std::string(80, ' ') << "\n";
  buf << "             3             1             1             1             0\n";
  buf << "RUA                        1             1             1             0\n";
  buf << "(8I10)          (8I10)          (4E20.12)\n";
  buf << "         1         2\n";
  buf << "         1\n";
  buf << "  1.5D+02\n";
  const SparseMatrix m = read_harwell_boeing(buf);
  EXPECT_EQ(m.at(0, 0), 150.0);
}

TEST(HarwellBoeing, RejectsComplexAndElementTypes) {
  auto make = [](const std::string& mxtype) {
    std::stringstream buf;
    buf << std::string(80, ' ') << "\n";
    buf << "             3             1             1             1             0\n";
    buf << mxtype << "                        1             1             1             0\n";
    buf << "(8I10)          (8I10)          (4E20.12)\n";
    buf << "         1         2\n         1\n  1.0\n";
    return buf.str();
  };
  {
    std::stringstream buf(make("CUA"));
    EXPECT_THROW(read_harwell_boeing(buf), std::runtime_error);
  }
  {
    std::stringstream buf(make("RUE"));
    EXPECT_THROW(read_harwell_boeing(buf), std::runtime_error);
  }
}

TEST(HarwellBoeing, RejectsTruncatedFile) {
  std::stringstream buf;
  buf << "just a title\n";
  EXPECT_THROW(read_harwell_boeing(buf), std::runtime_error);
}

TEST(HarwellBoeing, RejectsBadPointers) {
  std::stringstream buf;
  buf << std::string(80, ' ') << "\n";
  buf << "             3             1             1             1             0\n";
  buf << "RUA                        2             2             2             0\n";
  buf << "(8I10)          (8I10)          (4E20.12)\n";
  buf << "         1         9         3\n";  // pointer beyond nnz
  buf << "         1         2\n  1.0  1.0\n";
  EXPECT_THROW(read_harwell_boeing(buf), std::runtime_error);
}

TEST(HarwellBoeing, FileRoundTrip) {
  const SparseMatrix m = gen_grid7(4, 4, 2);
  const std::string path = "/tmp/wlp_hb_test.rua";
  write_harwell_boeing_file(path, m, "grid", "GRID");
  expect_same(m, read_harwell_boeing_file(path));
}

}  // namespace
}  // namespace wlp::workloads
