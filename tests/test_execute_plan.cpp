#include <gtest/gtest.h>

#include <cmath>

#include "wlp/analysis/execute_plan.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::ir {
namespace {

Env rich_env(long n) {
  Env e;
  e.scalars = {{"r", 1.0}, {"k", 0.0}, {"p", 40.0}, {"V", 1e6}};
  e.arrays["A"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["B"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["R"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["S"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  for (long i = 0; i < n; ++i) {
    e.arrays["R"][static_cast<std::size_t>(i)] = std::fmod(i * 0.37, 1.0);
    e.arrays["S"][static_cast<std::size_t>(i)] =
        static_cast<double>((i * 13) % n);  // a permutation-ish subscript table
  }
  e.funcs["f"] = [](double x) { return x * 0.5; };
  e.funcs["next"] = [](double x) { return x - 1; };
  e.funcs["work"] = [](double x) { return x * x + 1; };
  return e;
}

void expect_plan_equivalent(ThreadPool& pool, const Loop& loop, Env base,
                            double tol = 0.0) {
  Env seq = base, par = base;
  const long t1 = run_sequential(loop, seq);
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_EQ(ex.trip, t1) << plan.to_text(loop);
  for (const auto& [name, val] : seq.scalars) {
    ASSERT_TRUE(par.scalars.count(name)) << name;
    EXPECT_NEAR(par.scalars.at(name), val, tol) << name << "\n" << plan.to_text(loop);
  }
  for (const auto& [name, arr] : seq.arrays) {
    const auto& other = par.arrays.at(name);
    ASSERT_EQ(arr.size(), other.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
      EXPECT_NEAR(other[i], arr[i], tol)
          << name << "[" << i << "]\n" << plan.to_text(loop);
  }
}

TEST(ExecutePlan, InductionDispatcherDoall) {
  // k = k + 2 ; A[i] = k + R[i] ; exit-if k > 40
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(assign_scalar("k", bin('+', scalar("k"), cnst(2))));
  loop.body.push_back(
      assign_array("A", index(), bin('+', scalar("k"), array("R", index()))));
  loop.body.push_back(exit_if(bin('>', scalar("k"), cnst(40))));
  expect_plan_equivalent(pool, loop, rich_env(100));
}

TEST(ExecutePlan, AssociativeDispatcherViaParallelPrefix) {
  // r = 0.5*r + 1 ; A[i] = work(r)   (floating point: tolerance for the
  // prefix computation's reassociation)
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 200;
  loop.body.push_back(exit_if(bin('G', call("f", scalar("r")), scalar("V"))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("r"))));
  loop.body.push_back(assign_scalar(
      "r", bin('+', bin('*', cnst(0.5), scalar("r")), cnst(1))));

  Env base = rich_env(200);
  Env par = base;
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_EQ(ex.prefix_blocks, 1);  // the real Section 3.2 path ran

  expect_plan_equivalent(pool, loop, base, 1e-9);
}

TEST(ExecutePlan, GeneralRecurrenceListLoop) {
  // while (p != 0) { A[i] = work(p); p = next(p) }
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("p"))));
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  expect_plan_equivalent(pool, loop, rich_env(100));
}

TEST(ExecutePlan, RVExitWithOvershootUndo) {
  // A[i] = R[i]*3 ; exit-if A[i] > 2.0  — RV exit; overshot writes must be
  // discarded by the replay.
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 80;
  loop.body.push_back(
      assign_array("A", index(), bin('*', array("R", index()), cnst(3))));
  loop.body.push_back(exit_if(bin('>', array("A", index()), cnst(2.0))));

  Env base = rich_env(80);
  Env par = base;
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_GE(ex.logged_writes, ex.trip);
  expect_plan_equivalent(pool, loop, base);
}

TEST(ExecutePlan, UnknownAccessPassesPDWhenIndependent) {
  // A[S[i]] = i  where S is (i*13) mod n — a bijection, so the PD test
  // passes and the speculation sticks.
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(assign_array("A", array("S", index()), index()));

  Env base = rich_env(100);
  Env par = base;
  const ParallelPlan plan = make_plan(loop);
  ASSERT_EQ(plan.pd_arrays.size(), 1u);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_FALSE(ex.speculation_failed);
  expect_plan_equivalent(pool, loop, base);
}

TEST(ExecutePlan, UnknownAccessFailsPDAndFallsBack) {
  // A[S2[i]] = i where S2 collides: the PD test must fail and the fallback
  // must still produce the exact sequential result.
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(assign_array("A", array("S", index()), index()));
  // Every iteration exposed-reads A[0], which half the iterations write:
  // a genuine cross-iteration flow dependence.
  loop.body.push_back(assign_scalar("x", array("A", cnst(0))));

  Env base = rich_env(100);
  base.scalars["x"] = 0;
  // S with collisions: every other slot maps to 0.
  for (long i = 0; i < 100; i += 2)
    base.arrays["S"][static_cast<std::size_t>(i)] = 0;

  Env par = base;
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_TRUE(ex.speculation_failed);

  Env seq = base;
  const long t = run_sequential(loop, seq);
  EXPECT_EQ(ex.trip, t);
  EXPECT_EQ(par.arrays.at("A"), seq.arrays.at("A"));
  EXPECT_EQ(par.scalars.at("x"), seq.scalars.at("x"));
}

TEST(ExecutePlan, SequentialChainBlockViaDoacross) {
  // A[i+1] = A[i] + R[i]: an unrecognized cycle — the plan schedules it as
  // DOACROSS and the result must match exactly.
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 60;
  loop.body.push_back(assign_array(
      "A", bin('+', index(), cnst(1)),
      bin('+', array("A", index()), array("R", index()))));
  expect_plan_equivalent(pool, loop, rich_env(61));
}

// Property: randomized loops — planned parallel execution == sequential.
Loop random_loop(Xoshiro256& rng) {
  Loop loop;
  loop.max_iters = 10 + static_cast<long>(rng.below(40));
  switch (rng.below(4)) {
    case 0:
      loop.body.push_back(assign_scalar("k", bin('+', scalar("k"), cnst(1))));
      break;
    case 1:
      loop.body.push_back(assign_scalar(
          "r", bin('+', bin('*', cnst(2), scalar("r")), cnst(1))));
      break;
    case 2:
      loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
      loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
      break;
    default:
      break;
  }
  const char* arrays[] = {"A", "B"};
  const auto stmts = 1 + rng.below(2);
  for (std::uint64_t k = 0; k < stmts; ++k) {
    const char* arr = arrays[k % 2];
    switch (rng.below(3)) {
      case 0:
        loop.body.push_back(assign_array(arr, index(), bin('*', index(), cnst(2))));
        break;
      case 1:
        loop.body.push_back(
            assign_array(arr, index(), bin('+', array("R", index()), cnst(1))));
        break;
      default:
        loop.body.push_back(assign_array(
            arr, bin('+', index(), cnst(1)),
            bin('+', array(arr, index()), cnst(1))));
        break;
    }
  }
  if (rng.chance(0.5))
    loop.body.push_back(
        exit_if(bin('G', index(), cnst(static_cast<double>(rng.below(30))))));
  if (rng.chance(0.3))
    loop.body.push_back(exit_if(bin('>', array("A", index()), cnst(30.0))));
  return loop;
}

class PlanExecutionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanExecutionProperty, PlannedParallelMatchesSequential) {
  ThreadPool pool(4);
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const Loop loop = random_loop(rng);
    expect_plan_equivalent(pool, loop, rich_env(loop.max_iters + 1), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanExecutionProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace wlp::ir
