#include <gtest/gtest.h>

#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {
namespace {

SparseMatrix small() {
  // [ 2 0 1 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  return SparseMatrix::from_triplets(
      3, 3, {{0, 0, 2}, {0, 2, 1}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5}});
}

TEST(SparseMatrix, BasicShapeAndLookup) {
  const SparseMatrix m = small();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.at(0, 0), 2.0);
  EXPECT_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.at(2, 2), 5.0);
  EXPECT_EQ(m.row_nnz(1), 1);
  EXPECT_EQ(m.row_nnz(2), 2);
}

TEST(SparseMatrix, DuplicateTripletsAreSummed) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1}, {0, 0, 2}, {1, 1, 5}, {0, 0, 3}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.at(0, 0), 6.0);
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1}}), std::out_of_range);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, -1, 1}}), std::out_of_range);
}

TEST(SparseMatrix, RowSpansAreSortedByColumn) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      1, 5, {{0, 3, 1}, {0, 0, 2}, {0, 4, 3}});
  const auto cols = m.row_cols(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
}

TEST(SparseMatrix, Multiply) {
  const SparseMatrix m = small();
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y = m.multiply(x);
  EXPECT_EQ(y, (std::vector<double>{5, 6, 19}));
}

TEST(SparseMatrix, TransposeRoundTrip) {
  const SparseMatrix m = small();
  const SparseMatrix t = m.transpose();
  EXPECT_EQ(t.at(0, 2), 4.0);
  EXPECT_EQ(t.at(2, 0), 1.0);
  const SparseMatrix tt = t.transpose();
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(tt.at(r, c), m.at(r, c));
}

TEST(SparseMatrix, ColCountsMatchTransposeRowCounts) {
  const SparseMatrix m = small();
  const auto counts = m.col_counts();
  const SparseMatrix t = m.transpose();
  ASSERT_EQ(counts.size(), 3u);
  for (int c = 0; c < 3; ++c)
    EXPECT_EQ(counts[static_cast<std::size_t>(c)], t.row_nnz(c));
}

TEST(SparseMatrix, MaxAbsInRow) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      1, 3, {{0, 0, -7}, {0, 1, 3}, {0, 2, 5}});
  EXPECT_EQ(m.max_abs_in_row(0), 7.0);
}

TEST(SparseMatrix, TripletsRoundTrip) {
  const SparseMatrix m = small();
  const SparseMatrix m2 =
      SparseMatrix::from_triplets(m.rows(), m.cols(), m.to_triplets());
  EXPECT_EQ(m2.nnz(), m.nnz());
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(m2.at(r, c), m.at(r, c));
}

TEST(SparseMatrix, ResidualNorm) {
  const SparseMatrix m = small();
  const std::vector<double> x{1, 2, 3};
  std::vector<double> b = m.multiply(x);
  EXPECT_EQ(residual_inf_norm(m, x, b), 0.0);
  b[1] += 0.25;
  EXPECT_DOUBLE_EQ(residual_inf_norm(m, x, b), 0.25);
}

TEST(SparseMatrix, EmptyRow) {
  const SparseMatrix m = SparseMatrix::from_triplets(3, 3, {{0, 0, 1}, {2, 2, 1}});
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_TRUE(m.row_cols(1).empty());
  EXPECT_EQ(m.max_abs_in_row(1), 0.0);
}

}  // namespace
}  // namespace wlp::workloads
