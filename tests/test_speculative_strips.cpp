#include <gtest/gtest.h>

#include <vector>

#include "wlp/core/sparse_spec.hpp"
#include "wlp/core/speculative_strips.hpp"

namespace wlp {
namespace {

TEST(StripSpeculation, CleanLoopCommitsStripByStrip) {
  ThreadPool pool(4);
  const long n = 4000, strip = 512, exit_at = 2500;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const StripSpecReport r = strip_speculative_while(
      pool, n, strip, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        return IterAction::kContinue;
      },
      [&](long, long) { return 0L; });  // never needed here

  EXPECT_EQ(r.exec.trip, exit_at);
  EXPECT_EQ(r.strips_failed, 0);
  EXPECT_EQ(r.strips_run, exit_at / strip + 1);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], i < exit_at ? 1.0 : 0.0) << i;
}

/// A loop whose first strip carries a genuine flow dependence: that strip
/// must fall back to sequential execution, and the REMAINING strips must
/// still run speculatively (the per-strip containment the paper prescribes
/// for dependence-corrupted terminators).
TEST(StripSpeculation, FailingStripFallsBackAndExecutionContinues) {
  ThreadPool pool(4);
  const long n = 1024, strip = 256;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  auto sequential_strip = [&](long base, long end) {
    auto& d = arr.data();
    for (long i = base; i < end; ++i) {
      if (i > 0 && i < 200) {
        d[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i - 1)] + 1.0;
      } else {
        d[static_cast<std::size_t>(i)] = 1.0;
      }
    }
    return end;
  };

  const StripSpecReport r = strip_speculative_while(
      pool, n, strip, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i > 0 && i < 200) {
          // Chain within the first strip only.
          const double prev = arr.get(vpn, static_cast<std::size_t>(i - 1));
          arr.set(vpn, i, static_cast<std::size_t>(i), prev + 1.0);
        } else {
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        }
        return IterAction::kContinue;
      },
      sequential_strip);

  EXPECT_EQ(r.exec.trip, n);
  EXPECT_EQ(r.strips_failed, 1);
  EXPECT_EQ(r.strips_run, n / strip);

  // Final state must equal the fully sequential execution.
  std::vector<double> expect(static_cast<std::size_t>(n), 1.0);
  for (long i = 1; i < 200; ++i)
    expect[static_cast<std::size_t>(i)] = expect[static_cast<std::size_t>(i - 1)] + 1.0;
  EXPECT_EQ(arr.data(), expect);
}

TEST(StripSpeculation, ExitInsideFailedStripStopsEverything) {
  ThreadPool pool(4);
  const long n = 1000, strip = 250;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  // Every strip fails (a self-chain through slot 0); the sequential re-run
  // of strip 2 hits the exit at iteration 600.
  const StripSpecReport r = strip_speculative_while(
      pool, n, strip, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        arr.set(vpn, i, 0, arr.get(vpn, 0) + 1.0);
        return IterAction::kContinue;
      },
      [&](long base, long end) {
        for (long i = base; i < end; ++i) {
          if (i == 600) return i;
          arr.data()[0] += 1.0;
        }
        return end;
      });

  EXPECT_EQ(r.exec.trip, 600);
  EXPECT_TRUE(r.exec.reexecuted_sequentially);
  EXPECT_EQ(arr.data()[0], 600.0);
}

// --- the hash-backed sparse target through the standard driver --------------

TEST(SparseSpec, UndoThroughHashBackup) {
  ThreadPool pool(4);
  const long big = 1 << 20;  // a large state array nobody wants to copy
  const long iters = 5000, exit_at = 3500;
  std::vector<double> state(static_cast<std::size_t>(big), 0.0);
  SparseSpecArray<double> sparse(state, pool.size(),
                                 static_cast<std::size_t>(iters), true);
  SpecTarget* targets[] = {&sparse};

  const ExecReport r = speculative_while(
      pool, iters, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        sparse.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        sparse.set(vpn, i, static_cast<std::size_t>((i * 7919) % big),
                   static_cast<double>(i));
        return IterAction::kContinue;
      },
      [&] { return exit_at; });

  EXPECT_TRUE(r.pd_passed);
  EXPECT_FALSE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, exit_at);
  // Backup memory ~ touched set, not the array.
  EXPECT_LE(sparse.backup_entries(), static_cast<std::size_t>(exit_at + 64));

  std::vector<double> expect(static_cast<std::size_t>(big), 0.0);
  for (long i = 0; i < exit_at; ++i)
    expect[static_cast<std::size_t>((i * 7919) % big)] = static_cast<double>(i);
  EXPECT_EQ(state, expect);
}

TEST(SparseSpec, FailedSpeculationRestoresThroughBackup) {
  ThreadPool pool(4);
  std::vector<double> state(1000, 3.0);
  SparseSpecArray<double> sparse(state, pool.size(), 2048, true);
  SpecTarget* targets[] = {&sparse};

  const ExecReport r = speculative_while(
      pool, 500, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        sparse.begin_iteration(vpn, i);
        sparse.set(vpn, i, 7, static_cast<double>(i));  // output dependence
        return IterAction::kContinue;
      },
      [&] {
        sparse.data()[7] = 499.0;
        return 500L;
      });

  EXPECT_FALSE(r.pd_passed);
  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(state[7], 499.0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (i != 7) {
      EXPECT_EQ(state[i], 3.0);
    }
  }
}

}  // namespace
}  // namespace wlp
