// The umbrella header must compile standalone and expose the whole API.
#include "wlp/wlp.hpp"

#include <gtest/gtest.h>

namespace wlp {
namespace {

TEST(Umbrella, EndToEndSmoke) {
  ThreadPool pool(4);
  // One call from each layer, just to prove the surface is reachable.
  const ExecReport r = while_doall(pool, 100, [](long i, unsigned) {
    return i == 40 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 40);
  EXPECT_FALSE(may_overshoot(DispatcherKind::kGeneral,
                             TerminatorClass::kRemainderInvariant));
  const sim::Simulator sim;
  sim::LoopProfile lp;
  lp.u = lp.trip = 10;
  lp.work.assign(10, 1.0);
  EXPECT_GT(sim.run(Method::kInduction2, lp, 2).speedup, 0.0);

  ir::Loop loop;
  loop.max_iters = 4;
  loop.body.push_back(ir::assign_array("A", ir::index(), ir::index()));
  ir::Env env;
  env.arrays["A"] = {0, 0, 0, 0};
  EXPECT_EQ(ir::run_sequential(loop, env), 4);
}

}  // namespace
}  // namespace wlp
