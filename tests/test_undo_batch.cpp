// Driver-level coverage of the block-batched backup/undo layer:
//   * sparse-backup capacity overflow degrades into a clean sequential
//     fall-back (no exception escapes a pool worker),
//   * steady-state strip retries allocate nothing (pooled checkpoint buffer,
//     epoch-bump resets),
//   * the sliding-window memory budget controller reacts to the backups'
//     MEASURED footprint (memory_bytes) instead of a bytes-per-iteration
//     guess,
//   * ExecReport carries the measured Tb/Ta and LoopStatistics feeds them
//     into the cost model's overhead terms.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "wlp/core/adaptive.hpp"
#include "wlp/core/sliding_window.hpp"
#include "wlp/core/sparse_spec.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/core/speculative_strips.hpp"

namespace wlp {
namespace {

TEST(BackupOverflow, SpeculationFallsBackSequentially) {
  ThreadPool pool(4);
  const long n = 2000;  // far more distinct writes than the backup can hold
  std::vector<double> state(8192, -1.0);
  // expected_writes = 8 -> 16-ish slots: guaranteed overflow.
  SparseSpecArray<double> sparse(state, pool.size(), 8, /*run_pd_test=*/true);
  SpecTarget* targets[] = {&sparse};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        sparse.begin_iteration(vpn, i);
        sparse.set(vpn, i, static_cast<std::size_t>(i), static_cast<double>(i));
        return IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < n; ++i)
          sparse.data()[static_cast<std::size_t>(i)] = static_cast<double>(i);
        return n;
      });

  EXPECT_TRUE(r.backup_overflow);
  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, n);
  // The fall-back ran against the exact pre-loop state: every location holds
  // the sequential result, nothing was lost to the dropped records.
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(state[static_cast<std::size_t>(i)], static_cast<double>(i)) << i;
  for (std::size_t i = static_cast<std::size_t>(n); i < state.size(); ++i)
    ASSERT_EQ(state[i], -1.0) << i;
}

TEST(BackupOverflow, StripDriverContainsOverflowToOneStrip) {
  ThreadPool pool(4);
  const long n = 1024, strip = 256;
  std::vector<double> state(4096, 0.0);
  // 200 expected writes -> 512 slots: room for one plain strip (~256 distinct
  // locations) but NOT for the burst strip below (4 per iteration = 1024).
  SparseSpecArray<double> sparse(state, pool.size(), 200, true);
  SpecTarget* targets[] = {&sparse};

  auto body = [&](long i, unsigned vpn) {
    sparse.begin_iteration(vpn, i);
    if (i >= 256 && i < 512) {
      // The overflowing strip: 4 writes per iteration = ~1024 distinct slots.
      for (long k = 0; k < 4; ++k)
        sparse.set(vpn, i, static_cast<std::size_t>(1024 + (i - 256) * 4 + k),
                   1.0);
    } else {
      sparse.set(vpn, i, static_cast<std::size_t>(i), 1.0);
    }
    return IterAction::kContinue;
  };
  auto seq_strip = [&](long base, long end) {
    for (long i = base; i < end; ++i) {
      if (i >= 256 && i < 512) {
        for (long k = 0; k < 4; ++k)
          sparse.data()[static_cast<std::size_t>(1024 + (i - 256) * 4 + k)] = 1.0;
      } else {
        sparse.data()[static_cast<std::size_t>(i)] = 1.0;
      }
    }
    return end;
  };

  const StripSpecReport r = strip_speculative_while(
      pool, n, strip, std::span<SpecTarget* const>(targets, 1), body, seq_strip);

  EXPECT_TRUE(r.exec.backup_overflow);
  EXPECT_EQ(r.strips_failed, 1);  // only the burst strip fell back
  EXPECT_EQ(r.strips_run, n / strip);
  EXPECT_EQ(r.exec.trip, n);
  for (long i = 0; i < 256; ++i)
    ASSERT_EQ(state[static_cast<std::size_t>(i)], 1.0) << i;
  for (long i = 512; i < n; ++i)
    ASSERT_EQ(state[static_cast<std::size_t>(i)], 1.0) << i;
  for (long i = 0; i < 1024; ++i)
    ASSERT_EQ(state[static_cast<std::size_t>(1024 + i)], 1.0) << i;
}

TEST(StripRetries, SteadyStateAllocatesNothing) {
  // PR 3/4 pattern: pin the O(n) work counters.  Across 100 strips the
  // checkpoint buffer is pooled (memory_bytes constant) and every stamp
  // reset is the O(1) epoch bump (sweeps stays 0).
  ThreadPool pool(4);
  const long n = 64 * 256, strip = 256;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), /*run_pd_test=*/true);
  SpecTarget* targets[] = {&arr};

  auto run_once = [&] {
    return strip_speculative_while(
        pool, n, strip, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; });
  };

  // Warm-up run allocates the pooled buffers.
  const StripSpecReport warm = run_once();
  ASSERT_EQ(warm.strips_failed, 0);
  const std::size_t bytes_after_warmup = arr.memory_bytes();
  const UndoStats warm_stats = arr.undo_stats();

  const StripSpecReport hot = run_once();
  ASSERT_EQ(hot.strips_failed, 0);
  const UndoStats hot_stats = arr.undo_stats();

  EXPECT_EQ(arr.memory_bytes(), bytes_after_warmup);  // zero new allocation
  EXPECT_EQ(hot_stats.sweeps, warm_stats.sweeps);     // zero O(n) sweeps
  EXPECT_EQ(hot_stats.checkpoints - warm_stats.checkpoints, n / strip);
  EXPECT_EQ(hot_stats.resets - warm_stats.resets, n / strip);
}

TEST(WindowBudget, ControllerUsesMeasuredBackupBytes) {
  ThreadPool pool(4);
  const long n = 4000;
  std::vector<double> state(8192, 0.0);
  SparseSpecArray<double> sparse(state, pool.size(),
                                 static_cast<std::size_t>(n), true);
  SpecTarget* targets[] = {&sparse};

  WindowOptions opts;
  opts.window = 64;
  opts.min_window = 2;
  // No bytes_per_iteration guess AT ALL: only the measured footprint can
  // drive the controller.  The budget is small enough that the growing
  // touched set must force the window down.
  opts.memory_budget = 2048;

  const WindowReport wr = sliding_window_speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        sparse.begin_iteration(vpn, i);
        sparse.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        return IterAction::kContinue;
      },
      [&] { return n; }, opts);

  ASSERT_TRUE(wr.exec.pd_passed);
  ASSERT_FALSE(wr.exec.reexecuted_sequentially);
  EXPECT_EQ(wr.exec.trip, n);
  // The backup's live bytes blew through the budget early, so the measured
  // controller must have (a) observed it and (b) shrunk the window to the
  // floor.  A guess-based controller with no bytes_per_iteration would have
  // done neither.
  EXPECT_GT(wr.peak_stamp_bytes, opts.memory_budget / 2);
  EXPECT_EQ(wr.final_window, opts.min_window);
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(state[static_cast<std::size_t>(i)], 1.0) << i;
}

TEST(MeasuredOverheads, ReportsFeedCostModelTerms) {
  ThreadPool pool(4);
  const long n = 1 << 16, exit_at = 3 * (n / 4);
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        return IterAction::kContinue;
      },
      [&] { return exit_at; });

  ASSERT_TRUE(r.pd_passed);
  // The run measured its own Tb and Ta.
  EXPECT_GT(r.checkpoint_ns, 0.0);
  EXPECT_GT(r.undo_ns, 0.0);

  // LoopStatistics accumulates them and observed_profile() forwards them as
  // measured_tb/measured_ta, which overhead_terms() prefers over the a/p
  // worst-case model.
  LoopStatistics stats;
  stats.record(r);
  EXPECT_GT(stats.mean_checkpoint_seconds(), 0.0);
  EXPECT_GT(stats.mean_undo_seconds(), 0.0);

  const double seconds_per_unit = 1e-9;  // express LoopTiming in nanoseconds
  const OverheadProfile o =
      stats.observed_profile(true, true, 1.0, seconds_per_unit);
  EXPECT_GT(o.measured_tb, 0.0);
  EXPECT_GT(o.measured_ta, 0.0);
  const OverheadTerms terms = overhead_terms(o, pool.size(), 4.0);
  EXPECT_DOUBLE_EQ(terms.t_b, o.measured_tb);
  // t_a = measured undo + the PD analysis a/p term.
  EXPECT_GE(terms.t_a, o.measured_ta);

  // Unmeasured profiles keep the model terms.
  OverheadProfile model = o;
  model.measured_tb = model.measured_ta = -1.0;
  const OverheadTerms mterms = overhead_terms(model, pool.size(), 4.0);
  const double a = static_cast<double>(model.accesses) * model.access_cost;
  EXPECT_DOUBLE_EQ(mterms.t_b, a / static_cast<double>(pool.size()));
}

}  // namespace
}  // namespace wlp
