#include <gtest/gtest.h>

#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/ma28_pivot.hpp"

namespace wlp::workloads {
namespace {

struct PivotCase {
  int matrix;
  SearchAxis axis;
  const char* name;
};

SparseMatrix pick_matrix(int which) {
  switch (which) {
    case 0: return gen_grid7(8, 8, 4);                    // regular
    case 1: return gen_power_flow(400, 2600, 0.03, 17);   // irregular
    case 2: return gen_power_flow(700, 4500, 0.02, 23);
    default: return gen_grid7(12, 6, 5, 0.25, 31);
  }
}

class Ma28Search : public ::testing::TestWithParam<PivotCase> {};

TEST_P(Ma28Search, ParallelMethodsAreSequentiallyConsistent) {
  ThreadPool pool(4);
  const SparseMatrix m = pick_matrix(GetParam().matrix);
  Ma28PivotSearch search(m, {0.1, GetParam().axis});

  long seq_trip = 0;
  const PivotCandidate seq = search.search_sequential(&seq_trip);
  ASSERT_TRUE(seq.valid());

  ExecReport r1, r3;
  const PivotCandidate p1 = search.search_induction1(pool, r1);
  const PivotCandidate p3 = search.search_general3(pool, r3);

  // Same pivot, same trip count: sequential consistency via the
  // time-stamp-ordered reduction.
  EXPECT_EQ(p1.row, seq.row);
  EXPECT_EQ(p1.col, seq.col);
  EXPECT_EQ(p1.cost, seq.cost);
  EXPECT_EQ(r1.trip, seq_trip);

  EXPECT_EQ(p3.row, seq.row);
  EXPECT_EQ(p3.col, seq.col);
  EXPECT_EQ(r3.trip, seq_trip);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ma28Search,
    ::testing::Values(PivotCase{0, SearchAxis::kRows, "grid_rows"},
                      PivotCase{0, SearchAxis::kColumns, "grid_cols"},
                      PivotCase{1, SearchAxis::kRows, "power_rows"},
                      PivotCase{1, SearchAxis::kColumns, "power_cols"},
                      PivotCase{2, SearchAxis::kRows, "power2_rows"},
                      PivotCase{3, SearchAxis::kRows, "aniso_rows"}),
    [](const auto& info) { return info.param.name; });

TEST(Ma28Search, SequentialExitBoundIsEffective) {
  // The early exit must cut the search well short of visiting every row.
  const SparseMatrix m = gen_power_flow(600, 3800, 0.03, 3);
  Ma28PivotSearch search(m, {});
  long trip = 0;
  const PivotCandidate p = search.search_sequential(&trip);
  ASSERT_TRUE(p.valid());
  EXPECT_LT(trip, search.candidates());
  EXPECT_GT(trip, 0);
}

TEST(Ma28Search, ChosenPivotIsOptimalAmongVisited) {
  const SparseMatrix m = gen_grid7(7, 7, 3);
  Ma28PivotSearch search(m, {});
  long trip = 0;
  const PivotCandidate p = search.search_sequential(&trip);
  ASSERT_TRUE(p.valid());
  // Re-derive the Markowitz cost independently.
  const auto col_counts = m.col_counts();
  const long expected_cost =
      (m.row_nnz(p.row) - 1) *
      (col_counts[static_cast<std::size_t>(p.col)] - 1);
  EXPECT_EQ(p.cost, expected_cost);
  EXPECT_NE(m.at(p.row, p.col), 0.0);
}

TEST(Ma28Search, ColumnAxisReturnsTransposedRoles) {
  const SparseMatrix m = gen_power_flow(200, 1300, 0.03, 41);
  Ma28PivotSearch rows(m, {0.1, SearchAxis::kRows});
  Ma28PivotSearch cols(m, {0.1, SearchAxis::kColumns});
  const PivotCandidate pr = rows.search_sequential();
  const PivotCandidate pc = cols.search_sequential();
  ASSERT_TRUE(pr.valid());
  ASSERT_TRUE(pc.valid());
  // Both must address genuine entries of A.
  EXPECT_NE(m.at(pr.row, pr.col), 0.0);
  EXPECT_NE(m.at(pc.row, pc.col), 0.0);
}

TEST(Ma28Search, ProfileReflectsSequentialTripAndWork) {
  const SparseMatrix m = gen_power_flow(300, 2000, 0.03, 5);
  Ma28PivotSearch search(m, {});
  long trip = 0;
  search.search_sequential(&trip);
  const auto lp = search.profile();
  EXPECT_EQ(lp.trip, trip);
  EXPECT_EQ(lp.u, search.candidates());
  EXPECT_EQ(static_cast<long>(lp.work.size()), lp.u);
  EXPECT_TRUE(lp.overshoot_does_work);
  // Candidates are visited in increasing count order: work non-decreasing.
  for (std::size_t i = 1; i < lp.work.size(); ++i)
    EXPECT_GE(lp.work[i], lp.work[i - 1]);
}

}  // namespace
}  // namespace wlp::workloads
