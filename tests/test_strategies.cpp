#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "wlp/core/strategies.hpp"

namespace wlp {
namespace {

TEST(StripMined, TripExactAndOvershootBoundedByStrip) {
  ThreadPool pool(4);
  const long u = 10000, strip = 128, exit_at = 5000;
  std::atomic<long> runs{0};
  const ExecReport r = strip_mined_while(pool, u, strip, [&](long i, unsigned) {
    runs.fetch_add(1);
    return i == exit_at ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.method, Method::kStripMined);
  EXPECT_EQ(r.trip, exit_at);
  EXPECT_LE(r.overshot, strip);
  // Started: all complete strips + part of the exit strip.
  EXPECT_LE(r.started, ((exit_at / strip) + 1) * strip);
}

TEST(StripMinedTuned, CostModelScheduleRecoversExactTrip) {
  ThreadPool pool(4);
  const long u = 10000, strip = 512, exit_at = 4321;
  std::vector<std::atomic<int>> hit(u);
  const ExecReport r = strip_mined_while_tuned(
      pool, u, strip, /*expected_trip=*/4000.0, /*iter_cost_cv=*/0.0,
      [&](long i, unsigned) {
        hit[static_cast<std::size_t>(i)].fetch_add(1);
        return i == exit_at ? IterAction::kExit : IterAction::kContinue;
      });
  EXPECT_EQ(r.trip, exit_at);
  for (long i = 0; i < exit_at; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)].load(), 1) << i;
  for (long i = 0; i < u; ++i) ASSERT_LE(hit[static_cast<std::size_t>(i)].load(), 1);
  EXPECT_LE(r.overshot, strip);
}

TEST(StripMinedTuned, UnknownTripStillCorrect) {
  ThreadPool pool(4);
  std::atomic<long> runs{0};
  const ExecReport r = strip_mined_while_tuned(
      pool, 2000, 256, /*expected_trip=*/0.0, /*iter_cost_cv=*/2.0,
      [&](long, unsigned) {
        runs.fetch_add(1);
        return IterAction::kContinue;
      });
  EXPECT_EQ(r.trip, 2000);
  EXPECT_EQ(runs.load(), 2000);
}

TEST(StripMined, NoExitRunsAllStrips) {
  ThreadPool pool(4);
  std::atomic<long> runs{0};
  const ExecReport r = strip_mined_while(pool, 1000, 64, [&](long, unsigned) {
    runs.fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 1000);
  EXPECT_EQ(runs.load(), 1000);
}

TEST(StripMined, StripLargerThanRange) {
  ThreadPool pool(4);
  const ExecReport r = strip_mined_while(pool, 50, 1000, [&](long i, unsigned) {
    return i == 20 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 20);
}

TEST(StampThreshold, FromEstimateScalesByConfidence) {
  const StampThreshold t = StampThreshold::from_estimate(1000, 0.9);
  EXPECT_EQ(t.value, 900);
  EXPECT_FALSE(t.should_stamp(899));
  EXPECT_TRUE(t.should_stamp(900));
  EXPECT_TRUE(t.should_stamp(1500));
}

TEST(StatsEnhanced, GoodEstimateUndoesOnlyStampedTail) {
  ThreadPool pool(4);
  const long n = 2000, exit_at = 1900;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), false);
  SpecTarget* targets[] = {&arr};
  const StampThreshold thr = StampThreshold::from_estimate(exit_at, 0.9);  // 1710

  // RV shape: the work (and its write) happens BEFORE the error is
  // detected, so overshot iterations really do write — and must be undone
  // through their stamps.
  const ExecReport r = stats_enhanced_while(
      pool, n, thr, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn, bool stamped) {
        arr.begin_iteration(vpn, i);
        if (stamped) {
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        } else {
          arr.data()[static_cast<std::size_t>(i)] = 1.0;  // unstamped fast path
        }
        return i == exit_at ? IterAction::kExitAfter : IterAction::kContinue;
      },
      [&] { return exit_at + 1; });

  EXPECT_FALSE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, exit_at + 1);
  EXPECT_EQ(r.undone_writes, r.overshot);  // every overshot write undone
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], i <= exit_at ? 1.0 : 0.0) << i;
}

TEST(StatsEnhanced, BadEstimateFallsBackToSequential) {
  ThreadPool pool(4);
  const long n = 2000, exit_at = 100;  // far below the threshold
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), false);
  SpecTarget* targets[] = {&arr};
  const StampThreshold thr = StampThreshold::from_estimate(1900, 0.9);

  const ExecReport r = stats_enhanced_while(
      pool, n, thr, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn, bool stamped) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        if (stamped) {
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        } else {
          arr.data()[static_cast<std::size_t>(i)] = 1.0;
        }
        return IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < exit_at; ++i)
          arr.data()[static_cast<std::size_t>(i)] = 1.0;
        return exit_at;
      });

  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, exit_at);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], i < exit_at ? 1.0 : 0.0) << i;
}

TEST(Hedge, ParallelWinsWhenSpeculationSucceeds) {
  const HedgeOutcome h = one_processor_hedge(
      [] {
        ExecReport r;
        r.trip = 50;
        return r;
      },
      [] { return 50L; });
  EXPECT_TRUE(h.parallel_won);
  EXPECT_EQ(h.parallel.trip, h.sequential_trip);
}

TEST(Hedge, SequentialWinsOnFailedSpeculation) {
  const HedgeOutcome h = one_processor_hedge(
      [] {
        ExecReport r;
        r.reexecuted_sequentially = true;
        r.trip = 50;
        return r;
      },
      [] { return 50L; });
  EXPECT_FALSE(h.parallel_won);
}

}  // namespace
}  // namespace wlp
