#include <gtest/gtest.h>

#include <limits>

#include "wlp/sched/reduce.hpp"

namespace wlp {
namespace {

TEST(Reduce, SumMatchesClosedForm) {
  ThreadPool pool(4);
  const long n = 10000;
  const long s = parallel_sum<long>(pool, 0, n, [](long i) { return i; });
  EXPECT_EQ(s, n * (n - 1) / 2);
}

TEST(Reduce, MinFindsPlantedValue) {
  ThreadPool pool(4);
  const long m = parallel_min<long>(pool, 0, 5000, std::numeric_limits<long>::max(),
                                    [](long i) { return i == 3127 ? -5L : i; });
  EXPECT_EQ(m, -5);
}

TEST(Reduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(4);
  EXPECT_EQ(parallel_sum<long>(pool, 10, 10, [](long) { return 1L; }), 0);
  EXPECT_EQ(parallel_min<long>(pool, 5, 5, 77L, [](long i) { return i; }), 77);
}

TEST(Reduce, AnyShortsOnMatch) {
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_any(pool, 0, 1000, [](long i) { return i == 999; }));
  EXPECT_FALSE(parallel_any(pool, 0, 1000, [](long) { return false; }));
}

TEST(Reduce, RangeSmallerThanPool) {
  ThreadPool pool(8);
  EXPECT_EQ(parallel_sum<long>(pool, 0, 3, [](long i) { return i + 1; }), 6);
}

TEST(Reduce, CustomAssociativeOp) {
  ThreadPool pool(4);
  // gcd-reduce
  auto gcd = [](long a, long b) {
    while (b) {
      const long t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  const long g = parallel_reduce<long>(pool, 1, 100, 0,
                                       [](long i) { return i * 6; }, gcd);
  EXPECT_EQ(g, 6);
}

}  // namespace
}  // namespace wlp
