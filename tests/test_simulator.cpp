#include <gtest/gtest.h>

#include "wlp/sim/simulator.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::sim {
namespace {

LoopProfile uniform_profile(long n, double work, long trip = -1) {
  LoopProfile lp;
  lp.u = n;
  lp.trip = trip < 0 ? n : trip;
  lp.work.assign(static_cast<std::size_t>(n), work);
  lp.next_cost = 1.0;
  return lp;
}

const std::vector<int> kPs{1, 2, 4, 8};

TEST(Simulator, SequentialTimeComposition) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(100, 5.0);
  const MachineModel& m = sim.machine();
  EXPECT_NEAR(sim.sequential_time(lp),
              100 * 5.0 + 100 * (m.t_next + m.t_term) + m.t_term, 1e-9);
}

TEST(Simulator, OneProcessorNeverBeatsSequential) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(500, 8.0);
  for (auto method :
       {wlp::Method::kInduction1, wlp::Method::kInduction2, wlp::Method::kGeneral1,
        wlp::Method::kGeneral2, wlp::Method::kGeneral3,
        wlp::Method::kWuLewisDistribute, wlp::Method::kWuLewisDoacross}) {
    const SimResult r = sim.run(method, lp, 1);
    EXPECT_LE(r.speedup, 1.05) << wlp::to_string(method);
    EXPECT_GT(r.speedup, 0.3) << wlp::to_string(method);
  }
}

TEST(Simulator, SpeedupsMonotonicInPForWorkRichLoop) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(2000, 20.0);
  for (auto method : {wlp::Method::kInduction2, wlp::Method::kGeneral2,
                      wlp::Method::kGeneral3}) {
    const auto curve = sim.speedup_curve(method, lp, kPs);
    for (std::size_t k = 1; k < curve.size(); ++k)
      EXPECT_GE(curve[k], curve[k - 1] * 0.98) << wlp::to_string(method) << " p-step " << k;
  }
}

TEST(Simulator, SpeedupNeverExceedsP) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(1000, 10.0);
  for (auto method : {wlp::Method::kInduction2, wlp::Method::kGeneral1,
                      wlp::Method::kGeneral2, wlp::Method::kGeneral3}) {
    for (int p : kPs) {
      const SimResult r = sim.run(method, lp, static_cast<unsigned>(p));
      EXPECT_LE(r.speedup, p * 1.001) << wlp::to_string(method) << " p=" << p;
    }
  }
}

TEST(Simulator, General3RespectsTraversalAmdahlBound) {
  // The traversal is sequential per processor: time >= u * t_next, so
  // speedup <= Tseq / (u * t_next).
  Simulator sim;
  const LoopProfile lp = uniform_profile(1000, 3.0);
  const double bound =
      sim.sequential_time(lp) / (1000 * lp.next_cost * sim.machine().t_next);
  const SimResult r = sim.run(wlp::Method::kGeneral3, lp, 64);
  EXPECT_LE(r.speedup, bound * 1.001);
}

TEST(Simulator, LockSerializationCapsGeneral1) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(2000, 6.0);
  // General-1's serialized section is t_lock + t_next per iteration.
  const double cap = sim.sequential_time(lp) /
                     (2000 * (sim.machine().t_lock + sim.machine().t_next));
  const SimResult r = sim.run(wlp::Method::kGeneral1, lp, 32);
  EXPECT_LE(r.speedup, cap * 1.01);
  // And General-3 must beat General-1 once the lock saturates.
  const SimResult g3 = sim.run(wlp::Method::kGeneral3, lp, 32);
  EXPECT_GT(g3.speedup, r.speedup);
}

TEST(Simulator, QuitCutsOvershootVersusInduction1) {
  Simulator sim;
  LoopProfile lp = uniform_profile(10000, 5.0, /*trip=*/1000);
  lp.overshoot_does_work = true;
  const SimResult i1 = sim.run(wlp::Method::kInduction1, lp, 8);
  const SimResult i2 = sim.run(wlp::Method::kInduction2, lp, 8);
  EXPECT_EQ(i1.executed, 10000);
  EXPECT_LT(i2.executed, 1200);
  EXPECT_GT(i2.speedup, i1.speedup);
}

TEST(Simulator, CheckpointAndStampOverheadsReduceSpeedup) {
  Simulator sim;
  LoopProfile lp = uniform_profile(3000, 8.0, 2800);
  lp.writes_per_iter = 4;
  lp.state_words = 12000;
  SimOptions with;
  with.stamps = true;
  with.checkpoint = true;
  const SimResult bare = sim.run(wlp::Method::kInduction2, lp, 8);
  const SimResult loaded = sim.run(wlp::Method::kInduction2, lp, 8, with);
  EXPECT_GT(loaded.t_before, 0.0);
  EXPECT_LT(loaded.speedup, bare.speedup);
}

TEST(Simulator, PDTestAddsAnalysisTime) {
  Simulator sim;
  LoopProfile lp = uniform_profile(3000, 8.0);
  lp.reads_per_iter = 2;
  lp.writes_per_iter = 2;
  lp.shadow_cells = 3000;
  SimOptions pd;
  pd.pd_test = true;
  const SimResult without = sim.run(wlp::Method::kInduction2, lp, 8);
  const SimResult with = sim.run(wlp::Method::kInduction2, lp, 8, pd);
  EXPECT_GT(with.t_after, without.t_after);
  EXPECT_LT(with.speedup, without.speedup);
}

TEST(Simulator, StripMiningPaysBarriersButBoundsOvershoot) {
  Simulator sim;
  LoopProfile lp = uniform_profile(8000, 5.0, 4000);
  lp.overshoot_does_work = true;
  SimOptions strips;
  strips.strip = 256;
  const SimResult sm = sim.run(wlp::Method::kStripMined, lp, 8, strips);
  EXPECT_LE(sm.overshot, 256);
  const SimResult i2 = sim.run(wlp::Method::kInduction2, lp, 8);
  // Many barriers: strip-mining should be slower here.
  EXPECT_LE(sm.speedup, i2.speedup * 1.05);
}

TEST(Simulator, SlidingWindowNearInduction2ForLargeWindow) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(4000, 6.0, 3500);
  SimOptions w;
  w.window = 1 << 20;
  const SimResult sw = sim.run(wlp::Method::kSlidingWindow, lp, 8, w);
  const SimResult i2 = sim.run(wlp::Method::kInduction2, lp, 8);
  EXPECT_NEAR(sw.speedup, i2.speedup, 0.25);
}

TEST(Simulator, SlidingWindowOfOneSerializes) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(1000, 6.0);
  SimOptions w;
  w.window = 1;
  const SimResult sw = sim.run(wlp::Method::kSlidingWindow, lp, 8, w);
  EXPECT_LT(sw.speedup, 1.2);
}

TEST(Simulator, DoacrossNeverOvershoots) {
  Simulator sim;
  LoopProfile lp = uniform_profile(2000, 10.0, 1500);
  lp.overshoot_does_work = true;
  const SimResult r = sim.run(wlp::Method::kWuLewisDoacross, lp, 8);
  EXPECT_EQ(r.overshot, 0);
  EXPECT_EQ(r.executed, 1500);
}

TEST(Simulator, DistributePrologueHurtsWhenWorkSmall) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(3000, 1.0);  // work ~ next cost
  const SimResult dist = sim.run(wlp::Method::kWuLewisDistribute, lp, 8);
  const SimResult g3 = sim.run(wlp::Method::kGeneral3, lp, 8);
  EXPECT_LT(dist.speedup, g3.speedup * 1.2);
}

TEST(Simulator, AssocPrefixBeatsSequentialDispatcherTreatment) {
  Simulator sim;
  LoopProfile lp = uniform_profile(20000, 2.0);
  const SimResult prefix = sim.run(wlp::Method::kAssocPrefix, lp, 8);
  const SimResult doacross = sim.run(wlp::Method::kWuLewisDoacross, lp, 8);
  EXPECT_GT(prefix.speedup, doacross.speedup);
}

TEST(Simulator, ZeroProcessorsRejected) {
  Simulator sim;
  const LoopProfile lp = uniform_profile(10, 1.0);
  EXPECT_THROW(sim.run(wlp::Method::kInduction2, lp, 0), std::invalid_argument);
}

TEST(Simulator, SingularExitDelaysTheQuit) {
  // With a singular exit (TRACK-style planted error), only iteration trip
  // reveals termination: processors past it keep running, so the overshoot
  // is much larger than under a bound-style exit where every iteration
  // >= trip observes the condition.
  Simulator sim;
  // Skewed work creates spread between processors; under a bound-style
  // exit the first processor past the trip quits everyone, while under a
  // singular exit everyone runs until the exact trip iteration completes
  // on its (possibly slow) owner.
  LoopProfile bound_style;
  bound_style.u = 20000;
  bound_style.trip = 10000;
  bound_style.work.resize(20000);
  wlp::Xoshiro256 rng(17);  // random heavy iterations -> per-processor spread
  for (auto& w : bound_style.work) w = rng.chance(0.1) ? 40.0 : 2.0;
  bound_style.next_cost = 1.0;
  bound_style.overshoot_does_work = true;
  LoopProfile singular = bound_style;
  singular.singular_exit = true;

  const SimResult b2 = sim.run(wlp::Method::kGeneral2, bound_style, 8);
  const SimResult s2 = sim.run(wlp::Method::kGeneral2, singular, 8);
  EXPECT_GT(s2.overshot, b2.overshot * 5);

  const SimResult bi = sim.run(wlp::Method::kInduction2, bound_style, 8);
  const SimResult si = sim.run(wlp::Method::kInduction2, singular, 8);
  EXPECT_GE(si.overshot, bi.overshot);
}

TEST(Simulator, StaticCyclicSingularExitSpansWithVariableWork) {
  // The Section 3.3 span argument: under a singular exit with skewed work,
  // static assignment overshoots far more than dynamic.
  Simulator sim;
  LoopProfile lp;
  lp.u = 20000;
  lp.trip = 10000;
  lp.work.resize(20000);
  for (long i = 0; i < 20000; ++i)
    lp.work[static_cast<std::size_t>(i)] = (i % 13 == 0) ? 40.0 : 2.0;
  lp.next_cost = 1.0;
  lp.overshoot_does_work = true;
  lp.singular_exit = true;
  const SimResult stat = sim.run(wlp::Method::kGeneral2, lp, 8);
  const SimResult dyn = sim.run(wlp::Method::kGeneral3, lp, 8);
  EXPECT_GT(stat.overshot, dyn.overshot * 3);
}

TEST(Simulator, SingularExitAtBoundIsNoop) {
  // trip == u: the singular iteration never exists; nothing special happens.
  Simulator sim;
  LoopProfile lp = uniform_profile(1000, 4.0);
  lp.singular_exit = true;
  const SimResult r = sim.run(wlp::Method::kInduction2, lp, 8);
  EXPECT_EQ(r.executed, 1000);
  EXPECT_EQ(r.overshot, 0);
}

TEST(Simulator, VariableWorkFavorsDynamicOverStatic) {
  // Heavily skewed work: static cyclic assignment load-imbalances.
  Simulator sim;
  LoopProfile lp;
  lp.u = lp.trip = 4000;
  lp.work.resize(4000);
  for (long i = 0; i < 4000; ++i)
    lp.work[static_cast<std::size_t>(i)] = (i % 8 == 0) ? 40.0 : 1.0;
  lp.next_cost = 0.1;
  const SimResult g2 = sim.run(wlp::Method::kGeneral2, lp, 8);
  const SimResult g3 = sim.run(wlp::Method::kGeneral3, lp, 8);
  // i % 8 == 0 lands on processor 0 under cyclic assignment: worst case.
  EXPECT_GT(g3.speedup, g2.speedup * 1.5);
}

}  // namespace
}  // namespace wlp::sim
