#include <gtest/gtest.h>

#include <cmath>

#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/sparse_lu.hpp"
#include <algorithm>
#include "wlp/support/prng.hpp"

namespace wlp::workloads {
namespace {

std::vector<double> random_rhs(std::int32_t n, std::uint64_t seed) {
  wlp::Xoshiro256 rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

TEST(MarkowitzLU, SolvesDenseLikeTinySystem) {
  // [ 4 1 0 ] [x] = b
  // [ 1 3 1 ]
  // [ 0 1 5 ]
  const SparseMatrix a = SparseMatrix::from_triplets(
      3, 3,
      {{0, 0, 4}, {0, 1, 1}, {1, 0, 1}, {1, 1, 3}, {1, 2, 1}, {2, 1, 1}, {2, 2, 5}});
  MarkowitzLU lu(a);
  ASSERT_TRUE(lu.factor());
  const std::vector<double> b{1, 2, 3};
  const std::vector<double> x = lu.solve(b);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-12);
}

TEST(MarkowitzLU, IdentityIsTrivial) {
  std::vector<Triplet> tri;
  for (int i = 0; i < 10; ++i) tri.push_back({i, i, 1.0});
  const SparseMatrix a = SparseMatrix::from_triplets(10, 10, std::move(tri));
  MarkowitzLU lu(a);
  ASSERT_TRUE(lu.factor());
  EXPECT_EQ(lu.fill_in(), 0);
  const std::vector<double> b = random_rhs(10, 3);
  const std::vector<double> x = lu.solve(b);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
}

TEST(MarkowitzLU, StructurallySingularFails) {
  // Row 1 is empty.
  const SparseMatrix a =
      SparseMatrix::from_triplets(3, 3, {{0, 0, 1}, {2, 2, 1}, {0, 1, 1}, {2, 1, 1}});
  MarkowitzLU lu(a);
  EXPECT_FALSE(lu.factor());
}

TEST(MarkowitzLU, RejectsNonSquare) {
  const SparseMatrix a = SparseMatrix::from_triplets(2, 3, {{0, 0, 1}});
  EXPECT_THROW(MarkowitzLU lu(a), std::invalid_argument);
}

TEST(MarkowitzLU, SolveBeforeFactorThrows) {
  const SparseMatrix a = SparseMatrix::from_triplets(1, 1, {{0, 0, 1}});
  MarkowitzLU lu(a);
  EXPECT_THROW(lu.solve({1.0}), std::logic_error);
}

class LUOnGeneratedMatrices : public ::testing::TestWithParam<int> {};

TEST_P(LUOnGeneratedMatrices, FactorsAndSolvesWithSmallResidual) {
  SparseMatrix a;
  switch (GetParam()) {
    case 0: a = gen_grid7(6, 6, 4); break;             // n = 144
    case 1: a = gen_grid7(10, 5, 3, 0.25, 2); break;   // anisotropic, n = 150
    case 2: a = gen_power_flow(150, 900, 0.03, 11); break;
    default: a = gen_power_flow(250, 1500, 0.02, 13); break;
  }
  MarkowitzLU lu(a);
  ASSERT_TRUE(lu.factor());
  const std::vector<double> b = random_rhs(a.rows(), 42 + GetParam());
  const std::vector<double> x = lu.solve(b);
  const double res = residual_inf_norm(a, x, b);
  EXPECT_LT(res, 1e-8) << "n=" << a.rows() << " fill=" << lu.fill_in();
  // Permutations must be genuine permutations.
  std::vector<bool> seen_r(static_cast<std::size_t>(a.rows()), false);
  std::vector<bool> seen_c(static_cast<std::size_t>(a.rows()), false);
  for (std::int32_t k = 0; k < a.rows(); ++k) {
    EXPECT_FALSE(seen_r[static_cast<std::size_t>(lu.perm_row()[static_cast<std::size_t>(k)])]);
    EXPECT_FALSE(seen_c[static_cast<std::size_t>(lu.perm_col()[static_cast<std::size_t>(k)])]);
    seen_r[static_cast<std::size_t>(lu.perm_row()[static_cast<std::size_t>(k)])] = true;
    seen_c[static_cast<std::size_t>(lu.perm_col()[static_cast<std::size_t>(k)])] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrices, LUOnGeneratedMatrices,
                         ::testing::Values(0, 1, 2, 3));

TEST(MarkowitzLU, FullyParallelPivotSearchMatchesSequentialFactors) {
  // Every pivot chosen by the PARALLEL search must reproduce the sequential
  // factorization exactly (permutations and residual).
  ThreadPool pool(4);
  const SparseMatrix a = gen_power_flow(90, 550, 0.04, 27);
  MarkowitzLU seq(a);
  ASSERT_TRUE(seq.factor());
  MarkowitzLU par(a);
  ASSERT_TRUE(par.factor_parallel(pool));
  EXPECT_EQ(par.perm_row(), seq.perm_row());
  EXPECT_EQ(par.perm_col(), seq.perm_col());
  const std::vector<double> b = random_rhs(90, 5);
  EXPECT_LT(residual_inf_norm(a, par.solve(b), b), 1e-8);
}

TEST(MarkowitzLU, ActiveSubmatrixMapsRoundTrip) {
  const SparseMatrix a = gen_grid7(5, 5, 3);
  MarkowitzLU lu(a);
  ASSERT_TRUE(lu.factor_steps(20));
  std::vector<std::int32_t> rmap, cmap;
  const SparseMatrix act = lu.active_submatrix(&rmap, &cmap);
  EXPECT_EQ(act.rows(), a.rows() - 20);
  EXPECT_EQ(static_cast<std::int32_t>(rmap.size()), act.rows());
  EXPECT_EQ(static_cast<std::int32_t>(cmap.size()), act.cols());
  // Maps point at rows/cols not yet pivoted.
  for (std::int32_t k = 0; k < lu.pivots_done(); ++k) {
    EXPECT_EQ(std::find(rmap.begin(), rmap.end(),
                        lu.perm_row()[static_cast<std::size_t>(k)]),
              rmap.end());
  }
}

TEST(MarkowitzLU, ThresholdInfluencesPivotChoice) {
  // With u = 1.0 only the row max qualifies; with u ~ 0 sparsity rules.
  const SparseMatrix a = gen_power_flow(120, 700, 0.05, 21);
  MarkowitzLU strict(a, {1.0});
  MarkowitzLU loose(a, {0.01});
  ASSERT_TRUE(strict.factor());
  ASSERT_TRUE(loose.factor());
  // The loose threshold can only do as well or better on fill-in.
  EXPECT_LE(loose.fill_in(), strict.fill_in());
  const std::vector<double> b = random_rhs(120, 1);
  EXPECT_LT(residual_inf_norm(a, strict.solve(b), b), 1e-8);
  EXPECT_LT(residual_inf_norm(a, loose.solve(b), b), 1e-8);
}

}  // namespace
}  // namespace wlp::workloads
