#include <gtest/gtest.h>

#include <atomic>

#include "wlp/core/while_doany.hpp"

namespace wlp {
namespace {

TEST(WhileDoany, StopsAfterAnyAcceptableIteration) {
  ThreadPool pool(4);
  std::atomic<long> found{-1};
  const ExecReport r = while_doany(pool, 100000, [&](long i, unsigned) {
    if (i % 997 == 500) {  // several acceptable iterations exist
      long expected = -1;
      found.compare_exchange_strong(expected, i);
      return IterAction::kExitAfter;
    }
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.method, Method::kDoany);
  EXPECT_GE(found.load(), 0);
  EXPECT_EQ(found.load() % 997, 500);
  // The QUIT wound the loop down long before the bound.
  EXPECT_LT(r.started, 100000);
}

TEST(WhileDoany, NoAcceptableIterationRunsEverything) {
  ThreadPool pool(4);
  std::atomic<long> runs{0};
  const ExecReport r = while_doany(pool, 5000, [&](long, unsigned) {
    runs.fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 5000);
  EXPECT_EQ(runs.load(), 5000);
}

TEST(BestCandidate, KeepsMinimumCost) {
  BestCandidate b;
  EXPECT_TRUE(b.empty());
  b.publish(50, 1);
  b.publish(20, 2);
  b.publish(90, 3);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.cost(), 20u);
  EXPECT_EQ(b.payload(), 2u);
}

TEST(BestCandidate, TieBreaksOnPayload) {
  BestCandidate b;
  b.publish(20, 9);
  b.publish(20, 3);  // same cost, smaller payload (iteration) wins
  EXPECT_EQ(b.payload(), 3u);
}

TEST(BestCandidate, ResetEmpties) {
  BestCandidate b;
  b.publish(1, 1);
  b.reset();
  EXPECT_TRUE(b.empty());
}

TEST(BestCandidate, ConcurrentPublishes) {
  ThreadPool pool(8);
  BestCandidate b;
  doall(pool, 0, 10000, [&](long i, unsigned) {
    b.publish(static_cast<std::uint32_t>((i * 37) % 5000 + 1),
              static_cast<std::uint32_t>(i));
  });
  // Minimum of (i*37 % 5000) + 1 over i is 1 at i = 0 (and i multiples).
  EXPECT_EQ(b.cost(), 1u);
}

TEST(StampedBest, WinnerFiltersByTrip) {
  StampedBest sb(3);
  sb.publish(0, /*iter=*/10, /*cost=*/5, /*payload=*/100);
  sb.publish(1, /*iter=*/3, /*cost=*/9, /*payload=*/101);
  sb.publish(2, /*iter=*/7, /*cost=*/2, /*payload=*/102);

  StampedBest::Entry e;
  // All valid: cost 2 wins.
  ASSERT_TRUE(sb.winner(100, e));
  EXPECT_EQ(e.payload, 102u);
  // trip = 7: iterations {3} remain.
  ASSERT_TRUE(sb.winner(7, e));
  EXPECT_EQ(e.payload, 101u);
  // trip = 3: nothing valid.
  EXPECT_FALSE(sb.winner(3, e));
}

TEST(StampedBest, CostTieBreaksOnIteration) {
  StampedBest sb(2);
  sb.publish(0, 9, 4, 1);
  sb.publish(1, 2, 4, 2);
  StampedBest::Entry e;
  ASSERT_TRUE(sb.winner(100, e));
  EXPECT_EQ(e.iter, 2);
  EXPECT_EQ(e.payload, 2u);
}

}  // namespace
}  // namespace wlp
