// The cross-strip verdict cache (wlp::pdcache): signature algebra, table
// semantics, the fused-verdict == full-verdict oracle, driver integration,
// epoch-wrap slot recycling, concurrency (the TSan target), and the
// steady-state allocation budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "wlp/core/sliding_window.hpp"
#include "wlp/core/sparse_spec.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/core/speculative_strips.hpp"
#include "wlp/mem/budget.hpp"
#include "wlp/pd/verdict_cache.hpp"

namespace wlp {
namespace {

using pdcache::AccessSignature;
using pdcache::StrideClass;
using pdcache::Verdict;
using pdcache::VerdictCache;

bool same_sig(const AccessSignature& a, const AccessSignature& b) {
  return a.key == b.key && a.check == b.check;
}

// ---- signature algebra ------------------------------------------------------

TEST(PDCacheSignature, StrideClassification) {
  EXPECT_EQ(pdcache::classify_stride(0, 0, 0), StrideClass::kEmpty);
  // 64 marks over span 64: every element hit.
  EXPECT_EQ(pdcache::classify_stride(64, 100, 163), StrideClass::kDense);
  // 64 marks over span 512: every 8th element.
  EXPECT_EQ(pdcache::classify_stride(64, 0, 511), StrideClass::kStrided);
  // 4 marks over span 4096.
  EXPECT_EQ(pdcache::classify_stride(4, 0, 4095), StrideClass::kSparse);
}

/// The core steady-state property: strip k's marks at iterations
/// [base, base+s) hash EQUAL to strip 0's marks at [0, s) when the
/// (element, iteration - base) pattern matches — the moment sums rebase
/// exactly, and min/max indices are identical by construction.
TEST(PDCacheSignature, BaseRebaseInvariance) {
  PDAccessSummary s0, s1;
  const long base = 7 * 512;
  for (long j = 0; j < 512; ++j) {
    s0.note_write(j, static_cast<std::size_t>(j % 64));
    s1.note_write(base + j, static_cast<std::size_t>(j % 64));
    if (j % 3 == 0) {
      s0.note_exposed_read(j, static_cast<std::size_t>(j % 64));
      s1.note_exposed_read(base + j, static_cast<std::size_t>(j % 64));
    }
  }
  const AccessSignature a = pdcache::make_signature(s0, 0, 512, 1);
  const AccessSignature b = pdcache::make_signature(s1, base, 512, 1);
  EXPECT_TRUE(same_sig(a, b));
}

/// Worker-split invariance: the same mark multiset accumulated into two
/// per-worker summaries and merged hashes equal to the single-summary fold
/// (everything is a commutative sum / min / max).
TEST(PDCacheSignature, ScheduleInvariance) {
  PDAccessSummary whole, w0, w1;
  for (long j = 0; j < 256; ++j) {
    const auto idx = static_cast<std::size_t>((j * 17) % 96);
    whole.note_write(j, idx);
    (j % 2 == 0 ? w0 : w1).note_write(j, idx);
  }
  w0.merge(w1);
  EXPECT_TRUE(same_sig(pdcache::make_signature(whole, 0, 256, 0),
                       pdcache::make_signature(w0, 0, 256, 0)));
}

TEST(PDCacheSignature, DiscriminatesPatterns) {
  PDAccessSummary s0;
  for (long j = 0; j < 128; ++j) s0.note_write(j, static_cast<std::size_t>(j));
  const AccessSignature base_sig = pdcache::make_signature(s0, 0, 128, 2);

  {  // one element differs
    PDAccessSummary s;
    for (long j = 0; j < 128; ++j)
      s.note_write(j, static_cast<std::size_t>(j == 77 ? 78 : j));
    EXPECT_FALSE(same_sig(pdcache::make_signature(s, 0, 128, 2), base_sig));
  }
  {  // same elements, two iterations swapped (idx<->iter binding)
    PDAccessSummary s;
    for (long j = 0; j < 128; ++j) {
      long it = j;
      if (j == 3) it = 4;
      if (j == 4) it = 3;
      s.note_write(it, static_cast<std::size_t>(j));
    }
    EXPECT_FALSE(same_sig(pdcache::make_signature(s, 0, 128, 2), base_sig));
  }
  {  // a write turned into an exposed read
    PDAccessSummary s;
    for (long j = 0; j < 128; ++j) {
      if (j == 50)
        s.note_exposed_read(j, static_cast<std::size_t>(j));
      else
        s.note_write(j, static_cast<std::size_t>(j));
    }
    EXPECT_FALSE(same_sig(pdcache::make_signature(s, 0, 128, 2), base_sig));
  }
  // Different relative trip or write density: different verdict domain.
  EXPECT_FALSE(same_sig(pdcache::make_signature(s0, 0, 100, 2), base_sig));
  EXPECT_FALSE(same_sig(pdcache::make_signature(s0, 0, 128, 3), base_sig));
}

// ---- table semantics --------------------------------------------------------

PDVerdict fake_verdict(long w, long mw, long er, long cf) {
  PDVerdict v;
  v.written_elements = w;
  v.multi_written = mw;
  v.exposed_read_elements = er;
  v.conflicts = cf;
  return v;
}

AccessSignature sig_of(std::uint64_t n) {
  PDAccessSummary s;
  s.note_write(static_cast<long>(n % 1000), static_cast<std::size_t>(n));
  return pdcache::make_signature(s, 0, 1, 0);
}

TEST(PDCacheTable, HitMissInvalidate) {
  VerdictCache cache(64);
  const AccessSignature sig = sig_of(42);

  Verdict out;
  EXPECT_FALSE(cache.lookup(sig, &out));
  cache.insert(sig, Verdict::from(fake_verdict(10, 1, 2, 0)));
  ASSERT_TRUE(cache.lookup(sig, &out));
  EXPECT_EQ(out.pd.written_elements, 10);
  EXPECT_EQ(out.pd.multi_written, 1);
  EXPECT_EQ(out.pd.exposed_read_elements, 2);
  EXPECT_EQ(out.pd.conflicts, 0);
  EXPECT_FALSE(out.independent);   // multi_written != 0
  EXPECT_TRUE(out.doall_safe);     // conflicts == 0
  EXPECT_FALSE(out.doacross_chain);
  EXPECT_FALSE(cache.lookup(sig_of(43), &out));

  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(sig, &out));  // O(1) epoch bump dropped it

  const pdcache::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 3);
  EXPECT_EQ(st.invalidations, 1);
  EXPECT_EQ(st.bytes, cache.memory_bytes());
  EXPECT_GE(cache.capacity(), 64u);
}

TEST(PDCacheTable, LossyInsertNeverCorrupts) {
  VerdictCache cache(16);  // far more signatures than slots
  for (std::uint64_t n = 0; n < 500; ++n)
    cache.insert(sig_of(n), Verdict::from(fake_verdict(static_cast<long>(n),
                                                       0, 0, 0)));
  long hits = 0;
  for (std::uint64_t n = 0; n < 500; ++n) {
    Verdict out;
    if (cache.lookup(sig_of(n), &out)) {
      ++hits;
      // A hit must return THAT signature's verdict, never another's.
      EXPECT_EQ(out.pd.written_elements, static_cast<long>(n));
    }
  }
  EXPECT_GT(hits, 0);        // the table retained something
  EXPECT_LE(hits, 16);       // ...but at most its capacity
}

TEST(PDCacheEpochWrap, RecycledSlotsAfterSweep) {
  VerdictCache cache(32);
  const AccessSignature sig = sig_of(7);
  cache.insert(sig, Verdict::from(fake_verdict(1, 0, 0, 0)));
  Verdict out;
  ASSERT_TRUE(cache.lookup(sig, &out));

  // Park the epoch one bump before the 32-bit wrap: the jump itself sweeps
  // (dropping the entry), and the NEXT invalidations cross 2^32.
  cache.jump_epoch_for_test(0xFFFFFFFEu);
  EXPECT_FALSE(cache.lookup(sig, &out));
  cache.insert(sig, Verdict::from(fake_verdict(2, 0, 0, 0)));
  ASSERT_TRUE(cache.lookup(sig, &out));
  EXPECT_EQ(out.pd.written_elements, 2);

  const long sweeps_before = cache.sweeps();
  cache.invalidate_all();  // -> 0xFFFFFFFF
  cache.invalidate_all();  // wraps: sweep, restart at 1
  EXPECT_EQ(cache.sweeps(), sweeps_before + 1);
  EXPECT_EQ(cache.epoch(), 1u);

  // Recycled slots under the restarted counter: no pre-wrap ghost may hit,
  // and fresh inserts work.
  EXPECT_FALSE(cache.lookup(sig, &out));
  cache.insert(sig, Verdict::from(fake_verdict(3, 0, 0, 0)));
  ASSERT_TRUE(cache.lookup(sig, &out));
  EXPECT_EQ(out.pd.written_elements, 3);
}

// ---- oracle: fused verdict == full PD verdict on every strip ----------------

void expect_same_verdict(const PDVerdict& a, const PDVerdict& b, long strip) {
  EXPECT_EQ(a.written_elements, b.written_elements) << "strip " << strip;
  EXPECT_EQ(a.multi_written, b.multi_written) << "strip " << strip;
  EXPECT_EQ(a.exposed_read_elements, b.exposed_read_elements)
      << "strip " << strip;
  EXPECT_EQ(a.conflicts, b.conflicts) << "strip " << strip;
}

/// Cross-check harness: run a strip loop by hand, and on EVERY strip compare
/// analyze_with_cache (which may serve a memoized verdict) against a direct
/// full analysis of the same shadow state.  Covers steady-state repeats
/// (hits), a marching pattern (all misses — the adversarial case), and a
/// conflicting pattern (non-trivial PD counts served from the cache).
TEST(PDCacheOracle, FusedVerdictEqualsFullVerdictOnEveryStrip) {
  ThreadPool pool(4);
  const long n = 1024, strip = 128, strips = 24;
  VerdictCache cache;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  arr.enable_access_signatures(true);
  SpecTarget* t = &arr;

  long hits_total = 0;
  for (long k = 0; k < strips; ++k) {
    const long base = k * strip, end = base + strip;
    t->reset_marks();
    for (long i = base; i < end; ++i) {
      arr.begin_iteration(0, i);
      const long rel = i - base;
      if (k < 8) {
        // Steady state: same relative pattern every strip -> hits after
        // strip 0, including exposed reads and repeated writes.
        arr.set(0, i, static_cast<std::size_t>(rel % 64), 1.0);
        if (rel % 4 == 0)
          (void)arr.get(0, static_cast<std::size_t>((rel + 32) % 64));
      } else if (k < 16) {
        // Marching/adversarial: the touched window moves with the absolute
        // iteration, so every strip's signature is new.
        arr.set(0, i, static_cast<std::size_t>(i % n), 1.0);
      } else {
        // Steady state with genuine cross-iteration conflicts: iteration
        // rel reads what rel-1 wrote.  The memoized verdict must carry the
        // full non-trivial counts.
        if (rel > 0) (void)arr.get(0, static_cast<std::size_t>(rel - 1));
        arr.set(0, i, static_cast<std::size_t>(rel), 1.0);
      }
    }
    bool hit = false;
    const PDVerdict fused =
        pdcache::analyze_with_cache(&cache, *t, pool, base, end, &hit);
    const PDVerdict full = t->analyze(pool, end);
    expect_same_verdict(fused, full, k);
    if (hit) ++hits_total;
  }
  // 8 steady strips (7 repeats) + 8 conflict strips (7 repeats) must hit;
  // the 8 marching strips must all miss.
  EXPECT_EQ(hits_total, 14);
  EXPECT_EQ(cache.stats().misses, strips - 14);
}

// ---- driver integration -----------------------------------------------------

TEST(PDCacheDriver, StripDriverSteadyStateHitsWithIdenticalResults) {
  ThreadPool pool(4);
  const long n = 4096, strip = 512;
  auto run = [&](VerdictCache* cache) {
    SpecArray<double> arr(
        std::vector<double>(static_cast<std::size_t>(n), 0.0), pool.size(),
        true);
    SpecTarget* targets[] = {&arr};
    SpecOptions opts;
    opts.verdict_cache = cache;
    const StripSpecReport r = strip_speculative_while(
        pool, n, strip, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i % strip),
                  static_cast<double>(i));
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; }, opts);
    return std::make_pair(r, arr.data());
  };

  VerdictCache cache;
  const auto [with_cache, data_cached] = run(&cache);
  const auto [without, data_plain] = run(nullptr);

  EXPECT_EQ(with_cache.exec.trip, without.exec.trip);
  EXPECT_EQ(data_cached, data_plain);
  EXPECT_EQ(with_cache.strips_failed, 0);
  EXPECT_EQ(with_cache.exec.verdict_probes, with_cache.strips_run);
  // Same relative pattern every strip: everything after strip 0 hits.
  EXPECT_EQ(with_cache.exec.verdict_hits, with_cache.strips_run - 1);
  EXPECT_EQ(without.exec.verdict_probes, 0);
}

TEST(PDCacheDriver, MisspeculationInvalidatesCache) {
  ThreadPool pool(4);
  const long n = 1024, strip = 256;
  VerdictCache cache;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};
  SpecOptions opts;
  opts.verdict_cache = &cache;

  const StripSpecReport r = strip_speculative_while(
      pool, n, strip, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= 512 && i < 768) {
          // Strip 2 carries a flow dependence through slot 0.
          arr.set(vpn, i, 0, arr.get(vpn, 0) + 1.0);
        } else {
          arr.set(vpn, i, static_cast<std::size_t>(i % strip), 1.0);
        }
        return IterAction::kContinue;
      },
      [&](long base, long end) {
        for (long i = base; i < end; ++i) arr.data()[0] += 1.0;
        return end;
      },
      opts);

  EXPECT_EQ(r.strips_failed, 1);
  EXPECT_GE(cache.stats().invalidations, 1L);
  // The strips after the failure re-miss (their memoized verdicts were
  // dropped), then resume hitting: strip 0 miss, strip 1 hit, strip 2
  // fails (probe + invalidate), strip 3 misses again.
  EXPECT_EQ(r.exec.trip, n);
}

TEST(PDCacheDriver, SpeculativeWhileReusesCacheAcrossRounds) {
  ThreadPool pool(4);
  const long u = 600;
  VerdictCache cache;
  SpecArray<double> arr(std::vector<double>(1024, 0.0), pool.size(), true);
  SpecTarget* targets[] = {&arr};
  SpecOptions opts;
  opts.verdict_cache = &cache;

  auto round = [&] {
    return speculative_while(
        pool, u, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
          return IterAction::kContinue;
        },
        [&] { return u; }, opts);
  };

  const ExecReport r0 = round();
  const ExecReport r1 = round();
  EXPECT_TRUE(r0.pd_passed);
  EXPECT_TRUE(r1.pd_passed);
  EXPECT_EQ(r0.verdict_probes, 1);
  EXPECT_EQ(r0.verdict_hits, 0);
  EXPECT_EQ(r1.verdict_hits, 1);  // identical round, memoized verdict
}

TEST(PDCacheDriver, SlidingWindowConsultsCache) {
  ThreadPool pool(4);
  const long u = 512;
  VerdictCache cache;
  SpecArray<double> arr(std::vector<double>(1024, 0.0), pool.size(), true);
  SpecTarget* targets[] = {&arr};
  WindowOptions wopts;
  wopts.window = 64;
  wopts.verdict_cache = &cache;

  auto round = [&] {
    return sliding_window_speculative_while(
        pool, u, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i), 2.0);
          return IterAction::kContinue;
        },
        [&] { return u; }, wopts);
  };

  const WindowReport r0 = round();
  const WindowReport r1 = round();
  EXPECT_TRUE(r0.exec.pd_passed);
  EXPECT_EQ(r0.exec.verdict_probes, 1);
  EXPECT_EQ(r1.exec.verdict_hits, 1);
  for (long i = 0; i < u; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], 2.0);
}

TEST(PDCacheDriver, SharedShadowPolicyBypassesCache) {
  ThreadPool pool(2);
  VerdictCache cache;
  // The shared-policy shadow has no summary support: access_summary() stays
  // false and analyze_with_cache must fall through to the full analysis.
  SpecArray<double, PDSharedShadow> arr(std::vector<double>(64, 0.0),
                                        pool.size(), true);
  SpecTarget* t = &arr;
  t->enable_access_signatures(true);  // must be a harmless no-op
  t->reset_marks();
  arr.begin_iteration(0, 0);
  arr.set(0, 0, 3, 1.0);
  bool hit = true;
  const PDVerdict v = pdcache::analyze_with_cache(&cache, *t, pool, 0, 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(v.written_elements, 1);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0);  // never probed
}

// ---- dirty-block write density ----------------------------------------------

TEST(PDCacheDirtyBlocks, DenseStampsAndSparseBackupAgreeOnUnits) {
  ThreadPool pool(2);
  SpecArray<double> dense(std::vector<double>(1024, 0.0), pool.size(), false);
  SpecTarget* td = &dense;
  EXPECT_EQ(td->dirty_block_count(), 0);
  td->checkpoint(nullptr);
  // 130 writes into the first 130 elements: blocks 0 and 1 full, block 2
  // partially touched -> 3 dirty 64-element blocks.
  for (long i = 0; i < 130; ++i)
    dense.set(0, i, static_cast<std::size_t>(i), 1.0);
  EXPECT_EQ(td->dirty_block_count(), 3);
  td->reset_marks();  // epoch bump clears the stamps
  EXPECT_EQ(td->dirty_block_count(), 0);

  std::vector<double> data(1 << 16, 0.0);
  SparseSpecArray<double> sparse(data, pool.size(), 256, false);
  SpecTarget* ts = &sparse;
  EXPECT_EQ(ts->dirty_block_count(), 0);
  for (long i = 0; i < 130; ++i)
    sparse.set(0, i, static_cast<std::size_t>(i * 509), 1.0);
  // 130 distinct recorded locations -> ceil(130/64) = 3 blocks-equivalent.
  EXPECT_EQ(ts->dirty_block_count(), 3);
  ts->reset_marks();
  EXPECT_EQ(ts->dirty_block_count(), 0);

  // The base-class default (no override): 0.
  EXPECT_EQ(HashBackup<double>(64).dirty_block_count(), 0);
}

// ---- concurrency (the TSan target) ------------------------------------------

TEST(PDCacheStress, ConcurrentStripsSharingOneCache) {
  ThreadPool pool(4);
  VerdictCache cache(128);
  std::atomic<long> hits{0};
  const long tasks = 4000;
  // Workers concurrently probe/insert 32 recurring signatures while every
  // 512th task invalidates the whole table — the racing lookup/insert/
  // invalidate triangle the slot tags are designed for.
  doall(pool, 0, tasks, [&](long i, unsigned) {
    if (i % 512 == 0) {
      cache.invalidate_all();
      return;
    }
    PDAccessSummary s;
    const long pattern = i % 32;
    for (long j = 0; j < 16; ++j)
      s.note_write(j, static_cast<std::size_t>(pattern * 16 + j));
    const AccessSignature sig = pdcache::make_signature(s, 0, 16, 0);
    Verdict out;
    if (cache.lookup(sig, &out)) {
      hits.fetch_add(1, std::memory_order_relaxed);
      ASSERT_EQ(out.pd.written_elements, pattern);  // never another's payload
    } else {
      cache.insert(sig, Verdict::from(fake_verdict(pattern, 0, 0, 0)));
    }
  });
  const pdcache::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, hits.load());
  EXPECT_EQ(st.hits + st.misses, tasks - (tasks + 511) / 512);
  EXPECT_GT(st.hits, 0);
}

TEST(PDCacheStress, ConcurrentDriversSharingOneCache) {
  ThreadPool pool(4);
  VerdictCache cache;
  const long n = 512, strip = 128;
  // Two strip loops over separate arrays sharing ONE cache, run back to
  // back from worker threads via std::thread to overlap their probes.
  auto run_loop = [&](double tag) {
    ThreadPool local(2);
    SpecArray<double> arr(
        std::vector<double>(static_cast<std::size_t>(n), 0.0), local.size(),
        true);
    SpecTarget* targets[] = {&arr};
    SpecOptions opts;
    opts.verdict_cache = &cache;
    const StripSpecReport r = strip_speculative_while(
        local, n, strip, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i % strip), tag);
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; }, opts);
    EXPECT_EQ(r.exec.trip, n);
    EXPECT_EQ(r.strips_failed, 0);
  };
  std::thread t1([&] { run_loop(1.0); });
  std::thread t2([&] { run_loop(2.0); });
  t1.join();
  t2.join();
  const pdcache::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 2 * (n / strip));
  EXPECT_GT(st.hits, 0);  // at least the later loop's repeats hit
}

// ---- steady-state allocations -----------------------------------------------

TEST(PDCacheSteadyState, WarmStripLoopAllocatesNothing) {
  ThreadPool pool(4);
  const long n = 32 * 256, strip = 256;
  VerdictCache cache;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};
  SpecOptions opts;
  opts.verdict_cache = &cache;
  // Static issue: every worker deterministically participates in every
  // round, so the warm runs first-touch ALL lazily-built per-worker state
  // (arena blocks, pooled backups) before the measured window opens.
  opts.doall.sched = Sched::kStaticCyclic;
  auto run_once = [&] {
    return strip_speculative_while(
        pool, n, strip, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i % strip), 1.0);
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; }, opts);
  };
  (void)run_once();  // warm: table slots, shadow segments, pooled backups
  (void)run_once();
  const mem::BudgetSnapshot s0 = mem::Budget::process().snapshot();
  long hits = 0;
  for (int round = 0; round < 10; ++round) {
    const StripSpecReport r = run_once();
    ASSERT_EQ(r.strips_failed, 0);
    hits += r.exec.verdict_hits;
  }
  const mem::BudgetSnapshot s1 = mem::Budget::process().snapshot();
  EXPECT_EQ(s1.arena_allocs - s0.arena_allocs, 0);
  EXPECT_EQ(s1.slow_allocs - s0.slow_allocs, 0);
  // And the warm rounds really were served by the cache, every strip.
  EXPECT_EQ(hits, 10 * (n / strip));
}

}  // namespace
}  // namespace wlp
