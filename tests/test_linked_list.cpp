#include <gtest/gtest.h>

#include <set>

#include "wlp/workloads/linked_list.hpp"

namespace wlp::workloads {
namespace {

TEST(NodePool, LogicalOrderIndependentOfStorageOrder) {
  // Two pools with different shuffle seeds must visit payloads in the same
  // logical order even though the nodes sit at different pool positions.
  auto a = NodePool<long>::make(100, 1, [](long i, long& v) { v = i; });
  auto b = NodePool<long>::make(100, 2, [](long i, long& v) { v = i; });
  long expect = 0;
  for (std::int32_t ca = a.head(), cb = b.head(); ca != kNullNode;
       ca = a.next(ca), cb = b.next(cb)) {
    EXPECT_EQ(a.payload(ca), expect);
    EXPECT_EQ(b.payload(cb), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 100);
}

TEST(NodePool, StorageIsActuallyShuffled) {
  auto list = NodePool<long>::make(257, 7, [](long i, long& v) { v = i; });
  // If head were always pool slot 0 and next were i+1, the permutation
  // would be the identity; check some traversal step crosses pool order.
  bool non_monotone = false;
  for (std::int32_t c = list.head(); c != kNullNode; c = list.next(c))
    if (list.next(c) != kNullNode && list.next(c) < c) non_monotone = true;
  EXPECT_TRUE(non_monotone);
}

TEST(NodePool, EmptyAndSingle) {
  auto empty = NodePool<int>::make(0, 3, [](long, int&) {});
  EXPECT_EQ(empty.head(), kNullNode);
  EXPECT_EQ(empty.size(), 0);

  auto one = NodePool<int>::make(1, 3, [](long, int& v) { v = 42; });
  ASSERT_NE(one.head(), kNullNode);
  EXPECT_EQ(one.payload(one.head()), 42);
  EXPECT_EQ(one.next(one.head()), kNullNode);
}

TEST(NodePool, ForEachVisitsAllOnce) {
  auto list = NodePool<long>::make(64, 9, [](long i, long& v) { v = i * i; });
  std::set<long> seen;
  long count = 0;
  list.for_each([&](const long& v) {
    seen.insert(v);
    ++count;
  });
  EXPECT_EQ(count, 64);
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_TRUE(seen.count(63L * 63L));
}

TEST(NodePool, DeterministicForSeed) {
  auto a = NodePool<long>::make(50, 11, [](long i, long& v) { v = i; });
  auto b = NodePool<long>::make(50, 11, [](long i, long& v) { v = i; });
  EXPECT_EQ(a.head(), b.head());
  for (std::int32_t ca = a.head(), cb = b.head(); ca != kNullNode;
       ca = a.next(ca), cb = b.next(cb))
    EXPECT_EQ(ca, cb);
}

TEST(NodePool, PayloadsMutable) {
  auto list = NodePool<long>::make(10, 1, [](long, long& v) { v = 0; });
  list.payload(list.head()) = 99;
  EXPECT_EQ(list.payload(list.head()), 99);
}

}  // namespace
}  // namespace wlp::workloads
