#include <gtest/gtest.h>

#include "wlp/analysis/loop_ir.hpp"

namespace wlp::ir {
namespace {

Env basic_env() {
  Env e;
  e.scalars = {{"x", 2.0}, {"V", 100.0}};
  e.arrays = {{"A", {0, 0, 0, 0, 0}}, {"B", {4, 3, 2, 1, 0}}};
  e.funcs = {{"f", [](double v) { return v * v; }},
             {"next", [](double v) { return v - 1; }}};
  return e;
}

TEST(Eval, ArithmeticAndComparisons) {
  const Env e = basic_env();
  EXPECT_EQ(eval(bin('+', cnst(2), cnst(3)), e, 0), 5.0);
  EXPECT_EQ(eval(bin('*', index(), cnst(4)), e, 3), 12.0);
  EXPECT_EQ(eval(bin('<', scalar("x"), scalar("V")), e, 0), 1.0);
  EXPECT_EQ(eval(bin('G', cnst(5), cnst(5)), e, 0), 1.0);
  EXPECT_EQ(eval(bin('!', cnst(5), cnst(5)), e, 0), 0.0);
}

TEST(Eval, ArrayAndCall) {
  const Env e = basic_env();
  EXPECT_EQ(eval(array("B", index()), e, 1), 3.0);
  EXPECT_EQ(eval(call("f", cnst(4)), e, 0), 16.0);
  // Subscripted subscript: A[B[4]] with B[4] = 0.
  EXPECT_EQ(eval(array("A", array("B", cnst(4))), e, 0), 0.0);
}

TEST(Eval, ErrorsOnUndefinedNames) {
  const Env e = basic_env();
  EXPECT_THROW(eval(scalar("nope"), e, 0), std::runtime_error);
  EXPECT_THROW(eval(array("nope", cnst(0)), e, 0), std::runtime_error);
  EXPECT_THROW(eval(call("nope", cnst(0)), e, 0), std::runtime_error);
  EXPECT_THROW(eval(array("A", cnst(99)), e, 0), std::runtime_error);
}

TEST(RunSequential, ExitBeforeLaterStatements) {
  // for i: { exit-if i >= 3; A[i] = i }
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(exit_if(bin('G', index(), cnst(3))));
  loop.body.push_back(assign_array("A", index(), index()));
  Env e = basic_env();
  EXPECT_EQ(run_sequential(loop, e), 3);
  EXPECT_EQ(e.arrays["A"], (std::vector<double>{0, 1, 2, 0, 0}));
}

TEST(RunSequential, StatementsBeforeExitRunInExitIteration) {
  // for i: { A[i] = 7; exit-if i >= 2 }
  Loop loop;
  loop.max_iters = 5;
  loop.body.push_back(assign_array("A", index(), cnst(7)));
  loop.body.push_back(exit_if(bin('G', index(), cnst(2))));
  Env e = basic_env();
  EXPECT_EQ(run_sequential(loop, e), 2);
  EXPECT_EQ(e.arrays["A"], (std::vector<double>{7, 7, 7, 0, 0}));
}

TEST(RunSequential, ScalarRecurrence) {
  // x = x * 2 each iteration, 4 iterations.
  Loop loop;
  loop.max_iters = 4;
  loop.body.push_back(assign_scalar("x", bin('*', scalar("x"), cnst(2))));
  Env e = basic_env();
  EXPECT_EQ(run_sequential(loop, e), 4);
  EXPECT_EQ(e.scalars["x"], 32.0);
}

TEST(Validate, RejectsDoubleScalarAssignment) {
  Loop loop;
  loop.max_iters = 1;
  loop.body.push_back(assign_scalar("x", cnst(1)));
  loop.body.push_back(assign_scalar("x", cnst(2)));
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("x"), std::string::npos);
}

TEST(Validate, AcceptsWellFormedLoop) {
  Loop loop;
  loop.max_iters = 1;
  loop.body.push_back(assign_scalar("x", cnst(1)));
  loop.body.push_back(assign_array("A", index(), scalar("x")));
  EXPECT_FALSE(validate(loop).has_value());
}

TEST(SubscriptAnalysis, AffineForms) {
  EXPECT_TRUE(analyze_subscript(index()).affine);
  EXPECT_EQ(analyze_subscript(index()).a, 1);

  const auto two_i_plus_3 = analyze_subscript(
      bin('+', bin('*', cnst(2), index()), cnst(3)));
  EXPECT_TRUE(two_i_plus_3.affine);
  EXPECT_EQ(two_i_plus_3.a, 2);
  EXPECT_EQ(two_i_plus_3.b, 3);

  const auto i_minus_1 = analyze_subscript(bin('-', index(), cnst(1)));
  EXPECT_TRUE(i_minus_1.affine);
  EXPECT_EQ(i_minus_1.a, 1);
  EXPECT_EQ(i_minus_1.b, -1);

  const auto constant = analyze_subscript(cnst(5));
  EXPECT_TRUE(constant.affine);
  EXPECT_EQ(constant.a, 0);
  EXPECT_EQ(constant.b, 5);
}

TEST(SubscriptAnalysis, NonAffineForms) {
  // i*i is nonlinear; B[i] is a subscripted subscript; scalars are opaque.
  EXPECT_FALSE(analyze_subscript(bin('*', index(), index())).affine);
  EXPECT_FALSE(analyze_subscript(array("B", index())).affine);
  EXPECT_FALSE(analyze_subscript(scalar("k")).affine);
}

TEST(Summarize, CollectsDefsUsesAndAccesses) {
  Loop loop;
  loop.max_iters = 1;
  // x = A[i] + y ; A[i+1] = x ; exit-if x > V
  loop.body.push_back(assign_scalar("x", bin('+', array("A", index()), scalar("y"))));
  loop.body.push_back(assign_array("A", bin('+', index(), cnst(1)), scalar("x")));
  loop.body.push_back(exit_if(bin('>', scalar("x"), scalar("V"))));

  const auto info = summarize(loop);
  ASSERT_EQ(info.size(), 3u);
  EXPECT_TRUE(info[0].scalar_defs.count("x"));
  EXPECT_TRUE(info[0].scalar_uses.count("y"));
  ASSERT_EQ(info[0].accesses.size(), 1u);
  EXPECT_FALSE(info[0].accesses[0].is_write);

  ASSERT_EQ(info[1].accesses.size(), 1u);
  EXPECT_TRUE(info[1].accesses[0].is_write);
  EXPECT_EQ(info[1].accesses[0].sub.b, 1);
  EXPECT_TRUE(info[1].scalar_uses.count("x"));

  EXPECT_TRUE(info[2].is_exit);
  EXPECT_TRUE(info[2].scalar_uses.count("x"));
}

TEST(ToString, RendersReadably) {
  const Stmt s = assign_array("A", index(), bin('*', scalar("r"), cnst(2)));
  EXPECT_EQ(to_string(s), "A[i] = (r * 2)");
  EXPECT_EQ(to_string(exit_if(bin('=', scalar("p"), cnst(0)))),
            "exit-if (p = 0)");
}

}  // namespace
}  // namespace wlp::ir
