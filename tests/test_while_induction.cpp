#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "wlp/core/while_induction.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

TEST(WhileSequential, TripForExitBeforeWork) {
  const ExecReport r = while_sequential(100, [](long i, unsigned) {
    return i == 30 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 30);
}

TEST(WhileSequential, TripForExitAfterWork) {
  const ExecReport r = while_sequential(100, [](long i, unsigned) {
    return i == 30 ? IterAction::kExitAfter : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 31);
}

TEST(WhileSequential, RunsToUpperBound) {
  const ExecReport r =
      while_sequential(42, [](long, unsigned) { return IterAction::kContinue; });
  EXPECT_EQ(r.trip, 42);
  EXPECT_EQ(r.started, 42);
}

TEST(Induction1, ExecutesEntireRangeAndRecoversTrip) {
  ThreadPool pool(4);
  std::atomic<long> executed{0};
  const ExecReport r = while_induction1(pool, 1000, [&](long i, unsigned) {
    executed.fetch_add(1);
    return i >= 250 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.method, Method::kInduction1);
  EXPECT_EQ(r.trip, 250);
  EXPECT_EQ(executed.load(), 1000);  // no QUIT: everything runs
  EXPECT_EQ(r.overshot, 750);
}

TEST(Induction2, QuitLimitsOvershoot) {
  ThreadPool pool(4);
  std::atomic<long> executed{0};
  const ExecReport r = while_induction2(pool, 100000, [&](long i, unsigned) {
    executed.fetch_add(1);
    return i >= 250 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.method, Method::kInduction2);
  EXPECT_EQ(r.trip, 250);
  EXPECT_LT(r.overshot, 1000);
  EXPECT_EQ(executed.load(), r.started);
}

/// Property: for randomized exit patterns, both parallel methods recover the
/// exact sequential trip count.
class InductionTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InductionTripProperty, ParallelTripEqualsSequentialTrip) {
  ThreadPool pool(4);
  Xoshiro256 rng(GetParam());
  const long u = 200 + static_cast<long>(rng.below(800));
  // A deterministic per-iteration exit pattern; the loop exits at the FIRST
  // i whose pattern bit is set (RI-style test before work).
  std::vector<char> exits(static_cast<std::size_t>(u), 0);
  for (long i = 0; i < u; ++i) exits[static_cast<std::size_t>(i)] = rng.chance(0.01);
  auto body = [&](long i, unsigned) {
    return exits[static_cast<std::size_t>(i)] ? IterAction::kExit
                                              : IterAction::kContinue;
  };
  const ExecReport seq = while_sequential(u, body);
  const ExecReport i1 = while_induction1(pool, u, body);
  const ExecReport i2 = while_induction2(pool, u, body);
  EXPECT_EQ(i1.trip, seq.trip);
  EXPECT_EQ(i2.trip, seq.trip);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InductionTripProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u, 12345u));

TEST(Induction2, WritesBelowTripAllPresent) {
  ThreadPool pool(8);
  const long u = 5000, exit_at = 3333;
  std::vector<std::atomic<int>> hit(u);
  const ExecReport r = while_induction2(pool, u, [&](long i, unsigned) {
    if (i >= exit_at) return IterAction::kExit;
    hit[static_cast<std::size_t>(i)].fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, exit_at);
  for (long i = 0; i < exit_at; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)].load(), 1) << i;
}

}  // namespace
}  // namespace wlp
