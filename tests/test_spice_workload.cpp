#include <gtest/gtest.h>

#include "wlp/workloads/spice.hpp"

namespace wlp::workloads {
namespace {

TEST(SpiceDevices, MixedListStillExactAcrossMethods) {
  ThreadPool pool(4);
  SpiceConfig cfg;
  cfg.devices = 800;
  cfg.bjt_fraction = 0.3;
  cfg.mosfet_fraction = 0.3;
  const SpiceLoad load(cfg);

  std::vector<double> ref = load.fresh_matrix();
  load.run_sequential(ref);

  for (int method = 0; method < 3; ++method) {
    std::vector<double> out = load.fresh_matrix();
    switch (method) {
      case 0: load.run_general1(pool, out); break;
      case 1: load.run_general2(pool, out); break;
      default: load.run_general3(pool, out); break;
    }
    EXPECT_EQ(out, ref) << "method " << method;
  }
}

TEST(SpiceDevices, KindsFollowConfiguredFractions) {
  SpiceConfig cfg;
  cfg.devices = 20000;
  cfg.bjt_fraction = 0.25;
  cfg.mosfet_fraction = 0.5;
  const SpiceLoad load(cfg);
  // Count kinds through the profile's work scale classes.
  const auto lp = load.profile();
  long heavy = 0, medium = 0, light = 0;
  for (double w : lp.work) {
    // scales: BJT 1.65*t+2, MOSFET 1.1*t+2, cap 0.55*t+2 with t in [4,24].
    if (w > 1.1 * 24 + 2) ++heavy;           // unambiguously BJT
    else if (w < 0.55 * 24 + 2 + 1e-9 && w >= 0.55 * 4 + 2 - 1e-9) ++light;
    else ++medium;
  }
  // Rough sanity: all three classes present in expected proportions.
  EXPECT_GT(heavy, 0);
  EXPECT_GT(light, 0);
  EXPECT_GT(medium, 0);
}

TEST(SpiceDevices, EvaluateIsDeterministicPerModel) {
  DeviceModel m;
  m.c0 = 1e-10;
  m.bias = 1.3;
  m.terms = 12;
  for (auto kind : {DeviceKind::kCapacitor, DeviceKind::kBJT, DeviceKind::kMOSFET}) {
    m.kind = kind;
    const double a = SpiceLoad::evaluate(m);
    const double b = SpiceLoad::evaluate(m);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::isfinite(a));
  }
}

TEST(SpiceDevices, MosfetCutoffRegionIsZero) {
  DeviceModel m;
  m.kind = DeviceKind::kMOSFET;
  m.c0 = 1e-10;
  m.bias = 0.2;  // below threshold: vov <= 0
  m.terms = 8;
  EXPECT_EQ(SpiceLoad::evaluate(m), 0.0);
}

TEST(SpiceDevices, DefaultConfigIsPureLoop40) {
  const SpiceLoad load({500, 4, 24, 0.0, 0.0, 9});
  const auto lp = load.profile();
  for (double w : lp.work) EXPECT_LE(w, 0.55 * 24 + 2 + 1e-9);
}

}  // namespace
}  // namespace wlp::workloads
