#include <gtest/gtest.h>

#include <algorithm>

#include "wlp/analysis/depgraph.hpp"

namespace wlp::ir {
namespace {

bool has_edge(const DepGraph& g, int from, int to, DepKind kind, bool carried) {
  return std::any_of(g.edges.begin(), g.edges.end(), [&](const DepEdge& e) {
    return e.from == from && e.to == to && e.kind == kind &&
           e.loop_carried == carried;
  });
}

TEST(DepGraph, ScalarSelfRecurrenceIsCarriedFlow) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("x", bin('+', scalar("x"), cnst(1))));
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(has_edge(g, 0, 0, DepKind::kFlow, true));
}

TEST(DepGraph, DefBeforeUseIsIndependentFlowOnly) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("x", index()));
  loop.body.push_back(assign_array("A", index(), scalar("x")));
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::kFlow, false));
  // No anti edge back: x is privatizable/expandable.
  EXPECT_FALSE(has_edge(g, 1, 0, DepKind::kAnti, true));
  const auto priv = privatizable_scalars(loop);
  EXPECT_NE(std::find(priv.begin(), priv.end(), "x"), priv.end());
}

TEST(DepGraph, UseBeforeDefIsCarriedFlow) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", index(), scalar("r")));
  loop.body.push_back(assign_scalar("r", bin('+', scalar("r"), cnst(1))));
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(has_edge(g, 1, 0, DepKind::kFlow, true));
  const auto priv = privatizable_scalars(loop);
  EXPECT_EQ(std::find(priv.begin(), priv.end(), "r"), priv.end());
}

TEST(DepGraph, ArraySameSubscriptIsIndependent) {
  // A[i] = A[i] * 2: read and write at distance 0 -> loop-independent only.
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(
      assign_array("A", index(), bin('*', array("A", index()), cnst(2))));
  const DepGraph g = build_dep_graph(loop);
  for (const DepEdge& e : g.edges) EXPECT_FALSE(e.loop_carried);
}

TEST(DepGraph, ArrayDistanceOneIsCarried) {
  // A[i] = A[i-1] + 1: carried flow with distance 1.
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array(
      "A", index(), bin('+', array("A", bin('-', index(), cnst(1))), cnst(1))));
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(has_edge(g, 0, 0, DepKind::kFlow, true));
}

TEST(DepGraph, ArrayDependenceDistanceBeyondRangeIgnored) {
  // A[i] = A[i-100] with only 10 iterations: no dependence.
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array(
      "A", index(), array("A", bin('-', index(), cnst(100)))));
  const DepGraph g = build_dep_graph(loop);
  for (const DepEdge& e : g.edges) EXPECT_FALSE(e.loop_carried);
}

TEST(DepGraph, ZivSameConstantIsCarriedOutput) {
  // A[3] = i: every iteration writes the same element.
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", cnst(3), index()));
  const DepGraph g = build_dep_graph(loop);
  // self output dependence, carried
  EXPECT_TRUE(has_edge(g, 0, 0, DepKind::kOutput, true));
}

TEST(DepGraph, UnknownSubscriptMakesUnknownEdges) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", array("B", index()), index()));
  loop.body.push_back(assign_scalar("s", array("A", index())));
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(std::any_of(g.edges.begin(), g.edges.end(),
                          [](const DepEdge& e) { return e.unknown; }));
  const auto unk = unanalyzable_arrays(loop);
  ASSERT_EQ(unk.size(), 1u);
  EXPECT_EQ(unk[0], "A");
}

TEST(DepGraph, ExitControlEdges) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", index(), index()));  // s0 before exit
  loop.body.push_back(exit_if(bin('G', index(), cnst(5))));  // s1
  loop.body.push_back(assign_array("C", index(), index()));  // s2 after exit
  const DepGraph g = build_dep_graph(loop);
  EXPECT_TRUE(has_edge(g, 1, 0, DepKind::kControl, true));   // carried back
  EXPECT_TRUE(has_edge(g, 1, 2, DepKind::kControl, false));  // same iteration
}

TEST(DepGraph, SccOrderRespectsDependences) {
  // s0: exit-if f(r) ; s1: A[i] = r ; s2: r = r*3+1
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(exit_if(bin('>', call("f", scalar("r")), cnst(100))));
  loop.body.push_back(assign_array("A", index(), scalar("r")));
  loop.body.push_back(
      assign_scalar("r", bin('+', bin('*', scalar("r"), cnst(3)), cnst(1))));
  const DepGraph g = build_dep_graph(loop);
  const auto sccs = strongly_connected_components(g);
  // {exit, r-update} form one component; the WORK statement its own.
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(sccs[1], (std::vector<int>{1}));
}

TEST(DepGraph, IndependentStatementsAreSingletonSccs) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", index(), index()));
  loop.body.push_back(assign_array("B", index(), index()));
  const auto sccs = strongly_connected_components(build_dep_graph(loop));
  EXPECT_EQ(sccs.size(), 2u);
}

}  // namespace
}  // namespace wlp::ir
