#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "wlp/sched/doacross.hpp"

namespace wlp {
namespace {

TEST(Doacross, SequentialPhasesObserveProgramOrder) {
  ThreadPool pool(4);
  std::vector<long> seq_order;
  std::mutex mu;  // seq phases are serialized by the pipeline; the mutex only
                  // guards the vector against the test's own data race rules
  long counter = 0;

  const DoacrossResult r = doacross_while(
      pool, 500,
      [&](long i) {
        std::lock_guard lock(mu);
        seq_order.push_back(i);
        ++counter;
        return true;
      },
      [](long, unsigned) {});

  EXPECT_EQ(r.trip, 500);
  ASSERT_EQ(seq_order.size(), 500u);
  for (long i = 0; i < 500; ++i) EXPECT_EQ(seq_order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(counter, 500);
}

TEST(Doacross, StopEndsThePipelineExactly) {
  ThreadPool pool(4);
  std::atomic<long> par_runs{0};
  const DoacrossResult r = doacross_while(
      pool, 10000, [&](long i) { return i < 123; },
      [&](long, unsigned) { par_runs.fetch_add(1); });
  EXPECT_EQ(r.trip, 123);
  EXPECT_EQ(par_runs.load(), 123);  // no overshoot, ever
}

TEST(Doacross, CarriedStateFlowsThroughSeqPhases) {
  ThreadPool pool(4);
  // The sequential phase carries a running product; each parallel phase
  // records the value it was handed.  The handoff must match a serial run.
  std::vector<long> handed(200, -1);
  long x = 1;
  std::vector<long> staged(200);
  const DoacrossResult r = doacross_while(
      pool, 200,
      [&](long i) {
        staged[static_cast<std::size_t>(i)] = x;
        x = x * 3 % 1000003;
        return true;
      },
      [&](long i, unsigned) { handed[static_cast<std::size_t>(i)] = staged[static_cast<std::size_t>(i)]; });
  EXPECT_EQ(r.trip, 200);
  long expect = 1;
  for (long i = 0; i < 200; ++i) {
    EXPECT_EQ(handed[static_cast<std::size_t>(i)], expect);
    expect = expect * 3 % 1000003;
  }
}

TEST(Doacross, ZeroAndOneIteration) {
  ThreadPool pool(4);
  EXPECT_EQ(doacross_while(pool, 0, [](long) { return true; },
                           [](long, unsigned) {})
                .trip,
            0);
  EXPECT_EQ(doacross_while(pool, 5, [](long) { return false; },
                           [](long, unsigned) {})
                .trip,
            0);
  std::atomic<int> runs{0};
  EXPECT_EQ(doacross_while(pool, 1, [](long) { return true; },
                           [&](long, unsigned) { runs.fetch_add(1); })
                .trip,
            1);
  EXPECT_EQ(runs.load(), 1);
}

TEST(SequentialDispatcherPass, RecordsTermsUntilTerminator) {
  std::vector<long> terms;
  const long trip = sequential_dispatcher_pass<long>(
      terms, 1, [](long x) { return x * 2; }, [](long x) { return x > 64; }, 100);
  EXPECT_EQ(trip, 7);  // 1 2 4 8 16 32 64
  const std::vector<long> expect{1, 2, 4, 8, 16, 32, 64};
  EXPECT_EQ(terms, expect);
}

TEST(SequentialDispatcherPass, BoundedByMaxIters) {
  std::vector<long> terms;
  const long trip = sequential_dispatcher_pass<long>(
      terms, 0, [](long x) { return x + 1; }, [](long) { return false; }, 10);
  EXPECT_EQ(trip, 10);
  EXPECT_EQ(terms.size(), 10u);
}

}  // namespace
}  // namespace wlp
