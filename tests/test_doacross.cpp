#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "wlp/sched/doacross.hpp"

namespace wlp {
namespace {

TEST(Doacross, SequentialPhasesObserveProgramOrder) {
  ThreadPool pool(4);
  std::vector<long> seq_order;
  std::mutex mu;  // seq phases are serialized by the pipeline; the mutex only
                  // guards the vector against the test's own data race rules
  long counter = 0;

  const DoacrossResult r = doacross_while(
      pool, 500,
      [&](long i) {
        std::lock_guard lock(mu);
        seq_order.push_back(i);
        ++counter;
        return true;
      },
      [](long, unsigned) {});

  EXPECT_EQ(r.trip, 500);
  ASSERT_EQ(seq_order.size(), 500u);
  for (long i = 0; i < 500; ++i) EXPECT_EQ(seq_order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(counter, 500);
}

TEST(Doacross, StopEndsThePipelineExactly) {
  ThreadPool pool(4);
  std::atomic<long> par_runs{0};
  const DoacrossResult r = doacross_while(
      pool, 10000, [&](long i) { return i < 123; },
      [&](long, unsigned) { par_runs.fetch_add(1); });
  EXPECT_EQ(r.trip, 123);
  EXPECT_EQ(par_runs.load(), 123);  // no overshoot, ever
}

TEST(Doacross, CarriedStateFlowsThroughSeqPhases) {
  ThreadPool pool(4);
  // The sequential phase carries a running product; each parallel phase
  // records the value it was handed.  The handoff must match a serial run.
  std::vector<long> handed(200, -1);
  long x = 1;
  std::vector<long> staged(200);
  const DoacrossResult r = doacross_while(
      pool, 200,
      [&](long i) {
        staged[static_cast<std::size_t>(i)] = x;
        x = x * 3 % 1000003;
        return true;
      },
      [&](long i, unsigned) { handed[static_cast<std::size_t>(i)] = staged[static_cast<std::size_t>(i)]; });
  EXPECT_EQ(r.trip, 200);
  long expect = 1;
  for (long i = 0; i < 200; ++i) {
    EXPECT_EQ(handed[static_cast<std::size_t>(i)], expect);
    expect = expect * 3 % 1000003;
  }
}

TEST(Doacross, ZeroAndOneIteration) {
  ThreadPool pool(4);
  EXPECT_EQ(doacross_while(pool, 0, [](long) { return true; },
                           [](long, unsigned) {})
                .trip,
            0);
  EXPECT_EQ(doacross_while(pool, 5, [](long) { return false; },
                           [](long, unsigned) {})
                .trip,
            0);
  std::atomic<int> runs{0};
  EXPECT_EQ(doacross_while(pool, 1, [](long) { return true; },
                           [&](long, unsigned) { runs.fetch_add(1); })
                .trip,
            1);
  EXPECT_EQ(runs.load(), 1);
}

TEST(Doacross, BatchedPublicationNeverExceedsOnePerIteration) {
  ThreadPool pool(4);
  const DoacrossResult r = doacross_while(
      pool, 1000, [](long) { return true; }, [](long, unsigned) {});
  EXPECT_EQ(r.trip, 1000);
  EXPECT_GE(r.publishes, 1u);
  // One publish per owner stint; helping can only merge stints, never split
  // them, so the count is bounded by the trip (plus the final advance).
  EXPECT_LE(r.publishes, 1001u);
}

TEST(Doacross, MultiWindowRunsCrossTheFrontierReset) {
  // Exercise the window loop doacross_while hides behind a 2^30-iteration
  // window: 1000 iterations in windows of 64, with the stop mid-window.
  ThreadPool pool(4);
  std::atomic<long> par_runs{0};
  long x = 0;  // carried through seq phases: program order check
  const DoacrossResult keep = detail::doacross_run(
      pool, 1000, 64, /*spin_limit=*/0,
      [&](long i) {
        EXPECT_EQ(x, i);  // strict order across window boundaries
        ++x;
        return true;
      },
      [&](long, unsigned) { par_runs.fetch_add(1); });
  EXPECT_EQ(keep.trip, 1000);
  EXPECT_EQ(par_runs.load(), 1000);

  par_runs.store(0);
  const DoacrossResult stop = detail::doacross_run(
      pool, 1000, 64, /*spin_limit=*/0, [](long i) { return i < 500; },
      [&](long, unsigned) { par_runs.fetch_add(1); });
  EXPECT_EQ(stop.trip, 500);  // fires inside the 8th window
  EXPECT_EQ(par_runs.load(), 500);
}

// ---- pooled chain state: the allocation regression ------------------------

TEST(Doacross, PooledChainStateIsReusedAcrossCalls) {
  // Mirrors PDPrivateShadow.SegmentsAreLazyAndPooled: the seed allocated and
  // zero-filled an O(max_iters) flag vector per call; the chain state must
  // be leased from the calling thread's pool and epoch-stamped, so repeated
  // calls — including ones that exit after a handful of iterations — pay no
  // per-call allocation at all.
  ThreadPool pool(4);
  doacross_while(pool, 8, [](long) { return true; }, [](long, unsigned) {});

  const DoacrossChainStats before = doacross_chain_stats();
  for (int round = 0; round < 100; ++round) {
    const DoacrossResult r = doacross_while(
        pool, 1 << 20, [](long i) { return i < 5; }, [](long, unsigned) {});
    EXPECT_EQ(r.trip, 5);
  }
  const DoacrossChainStats after = doacross_chain_stats();
  EXPECT_EQ(after.chain_allocs, before.chain_allocs);  // no new chains
  EXPECT_EQ(after.slot_grows, before.slot_grows);      // no slot regrowth
  EXPECT_EQ(after.runs, before.runs + 100);
}

TEST(Doacross, ChainSlotArrayGrowsOnlyWhenThePoolWidens) {
  ThreadPool narrow(2);
  ThreadPool wide(8);
  doacross_while(narrow, 4, [](long) { return true; }, [](long, unsigned) {});
  doacross_while(wide, 4, [](long) { return true; }, [](long, unsigned) {});
  const DoacrossChainStats before = doacross_chain_stats();
  // Alternating pool widths below the high-water mark never reallocates.
  for (int round = 0; round < 20; ++round) {
    doacross_while(narrow, 4, [](long) { return true; }, [](long, unsigned) {});
    doacross_while(wide, 4, [](long) { return true; }, [](long, unsigned) {});
  }
  const DoacrossChainStats after = doacross_chain_stats();
  EXPECT_EQ(after.slot_grows, before.slot_grows);
  EXPECT_EQ(after.chain_allocs, before.chain_allocs);
}

// ---- parked-frontier stress (TSan-covered via the *Doacross* CI filter) ----

// Forcing spin_limit = 0 makes every waiter park on the frontier futex word
// immediately, so these tests drive the park/wake protocol deterministically
// regardless of the host's core count.
constexpr DoacrossOptions kParkAtOnce{0};

TEST(DoacrossStress, OversubscribedPoolEarlyTermination) {
  // More threads than any CI host has cores: every frontier handoff crosses
  // a context switch, and the stop must still reach every claimed iteration.
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> par_runs{0};
    long x = 0;
    const DoacrossResult r = doacross_while(
        pool, 20000,
        [&](long i) {
          EXPECT_EQ(x, i);
          ++x;
          return i < 777;
        },
        [&](long, unsigned) { par_runs.fetch_add(1); }, kParkAtOnce);
    EXPECT_EQ(r.trip, 777);
    EXPECT_EQ(par_runs.load(), 777);  // no overshoot, no lost wakeup
  }
}

TEST(DoacrossStress, StopSentinelPropagatesPastClaimedIterations) {
  // A stop at iteration s must release waiters already parked on claimed
  // iterations > s (they return) and at iterations < s (they still run
  // their parallel phase).  With 8 threads and an immediate stop, up to 7
  // successors are claimed-and-parked when the sentinel lands.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> par_runs{0};
    const DoacrossResult r = doacross_while(
        pool, 10000, [&](long i) { return i < 3; },
        [&](long i, unsigned) {
          EXPECT_LT(i, 3);
          par_runs.fetch_add(1);
        },
        kParkAtOnce);
    EXPECT_EQ(r.trip, 3);
    EXPECT_EQ(par_runs.load(), 3);
  }
}

// ~1-2 µs of unelidable sequential-phase work.  An instant seq never makes
// anyone wait (the pipeline's frontier stays ahead of every claimant — the
// desired fast path); a slow seq is what stacks claimants up on the
// frontier and drives the park/wake protocol.
inline long seq_work(long x) {
  std::uint64_t v = static_cast<std::uint64_t>(x) | 1u;
  for (int k = 0; k < 3000; ++k) {
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
  }
  return static_cast<long>(v & 0xffff);
}

TEST(DoacrossStress, ParkedWaitersWakeOnKeepGoingPath) {
  const long n = 8000;
  ThreadPool pool(8);
  std::vector<long> handed(static_cast<std::size_t>(n), -1);
  std::vector<long> staged(static_cast<std::size_t>(n));
  long x = 1;
  const DoacrossResult r = doacross_while(
      pool, n,
      [&](long i) {
        staged[static_cast<std::size_t>(i)] = x;
        x = (x + seq_work(x + i)) % 1000003;
        return true;
      },
      [&](long i, unsigned) {
        handed[static_cast<std::size_t>(i)] = staged[static_cast<std::size_t>(i)];
      },
      kParkAtOnce);
  EXPECT_EQ(r.trip, n);
  long expect = 1;
  for (long i = 0; i < n; ++i) {
    EXPECT_EQ(handed[static_cast<std::size_t>(i)], expect);
    expect = (expect + seq_work(expect + i)) % 1000003;
  }
  // With 8 threads parking at once and micro-seconds-long sequential
  // phases, some waits must have slept; every one of them was woken by a
  // publication broadcast (or never slept thanks to the kernel-side value
  // check) — a lost wake would deadlock this test, not fail an expectation.
  // Park-at-once waits burn zero backoff rounds: that zeroed spin budget is
  // exactly what the parked frontier buys over the seed's spin chain.
  EXPECT_GT(r.parks, 0u);
  EXPECT_EQ(r.wait_rounds, 0u);

  // A/B: the same workload with a spin budget records nonzero wait rounds
  // (the wlp.doacross.wait_rounds histogram input) and — given the budget
  // is effectively unbounded — never parks.
  x = 1;
  const DoacrossResult spin = doacross_while(
      pool, n,
      [&](long i) {
        staged[static_cast<std::size_t>(i)] = x;
        x = (x + seq_work(x + i)) % 1000003;
        return true;
      },
      [&](long i, unsigned) {
        handed[static_cast<std::size_t>(i)] = staged[static_cast<std::size_t>(i)];
      },
      DoacrossOptions{Backoff::kRoundCap});
  EXPECT_EQ(spin.trip, n);
  EXPECT_GT(spin.wait_rounds, 0u);
}

TEST(DoacrossStress, ParkedWaitersWakeOnStopPath) {
  ThreadPool pool(8);
  for (int round = 0; round < 30; ++round) {
    std::atomic<long> par_runs{0};
    const DoacrossResult r = doacross_while(
        pool, 10000,
        [&](long i) {
          if (i == 100) std::this_thread::yield();  // widen the parked window
          return i < 100;
        },
        [&](long, unsigned) { par_runs.fetch_add(1); }, kParkAtOnce);
    EXPECT_EQ(r.trip, 100);
    EXPECT_EQ(par_runs.load(), 100);
  }
}

TEST(SequentialDispatcherPass, RecordsTermsUntilTerminator) {
  std::vector<long> terms;
  const long trip = sequential_dispatcher_pass<long>(
      terms, 1, [](long x) { return x * 2; }, [](long x) { return x > 64; }, 100);
  EXPECT_EQ(trip, 7);  // 1 2 4 8 16 32 64
  const std::vector<long> expect{1, 2, 4, 8, 16, 32, 64};
  EXPECT_EQ(terms, expect);
}

TEST(SequentialDispatcherPass, BoundedByMaxIters) {
  std::vector<long> terms;
  const long trip = sequential_dispatcher_pass<long>(
      terms, 0, [](long x) { return x + 1; }, [](long) { return false; }, 10);
  EXPECT_EQ(trip, 10);
  EXPECT_EQ(terms.size(), 10u);
}

}  // namespace
}  // namespace wlp
