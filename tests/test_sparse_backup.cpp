#include <gtest/gtest.h>

#include <vector>

#include "wlp/core/sparse_backup.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {
namespace {

TEST(HashBackup, UndoRestoresOvershotLocationsOnly) {
  std::vector<double> data(100, 0.0);
  HashBackup<double> backup(64);
  // Iteration 3 writes idx 10; iteration 9 writes idx 20.
  backup.record(3, 10, data[10]);
  data[10] = 3.0;
  backup.record(9, 20, data[20]);
  data[20] = 9.0;

  EXPECT_EQ(backup.undo_into(data, 5), 1);  // only iteration 9's write undone
  EXPECT_EQ(data[10], 3.0);
  EXPECT_EQ(data[20], 0.0);
}

TEST(HashBackup, FirstRecorderKeepsPreLoopValue) {
  std::vector<double> data{42.0};
  HashBackup<double> backup(16);
  backup.record(2, 0, data[0]);
  data[0] = 2.0;
  backup.record(7, 0, data[0]);  // second writer records the CURRENT value,
  data[0] = 7.0;                 // but the saved value stays the pre-loop one
  EXPECT_EQ(backup.restore_all_into(data), 1);
  EXPECT_EQ(data[0], 42.0);
}

TEST(HashBackup, StampIsMaxWriter) {
  std::vector<double> data{0.0};
  HashBackup<double> backup(16);
  backup.record(9, 0, 0.0);
  backup.record(3, 0, 0.0);
  data[0] = 1.0;
  // Max stamp is 9 >= trip 5: restored.
  EXPECT_EQ(backup.undo_into(data, 5), 1);
  EXPECT_EQ(data[0], 0.0);
}

TEST(HashBackup, MemoryProportionalToTouchedSet) {
  HashBackup<double> backup(1024);
  for (int i = 0; i < 100; ++i) backup.record(i, static_cast<std::size_t>(i * 7), 0.0);
  EXPECT_EQ(backup.entries(), 100u);
  const std::size_t bytes100 = backup.memory_bytes();
  backup.record(200, 9999, 0.0);
  // One more distinct location -> exactly one slot more of memory.
  EXPECT_EQ(backup.memory_bytes(), bytes100 + bytes100 / 100);
}

TEST(HashBackup, CapacityExhaustionSetsOverflowFlag) {
  // Exhaustion must NOT throw (record() runs inside pool workers, where an
  // exception would unwind through the join); it latches a per-run flag and
  // reports the failed record to the caller instead.
  HashBackup<int> backup(16);  // rounds to 16 slots
  bool all_recorded = true;
  for (std::size_t i = 0; i < 64; ++i)
    all_recorded = backup.record(0, i, 0) && all_recorded;
  EXPECT_FALSE(all_recorded);
  EXPECT_TRUE(backup.overflowed());
  EXPECT_EQ(backup.entries(), backup.capacity());
  // clear() resets the flag along with the entries.
  backup.clear();
  EXPECT_FALSE(backup.overflowed());
  EXPECT_EQ(backup.entries(), 0u);
  EXPECT_TRUE(backup.record(0, 3, 0));
}

TEST(HashBackup, ClearIsEpochBumpNotSweep) {
  // 100 record/undo/clear rounds: every slot is reclaimed by the epoch bump
  // alone — zero O(capacity) sweeps, and every round stays exact.
  std::vector<double> data{1.0, 2.0, 3.0};
  HashBackup<double> backup(64);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(backup.record(5, 1, data[1]));
    data[1] = 99.0;
    ASSERT_EQ(backup.undo_into(data, 0), 1) << round;
    ASSERT_EQ(data[1], 2.0) << round;
    backup.clear();
    ASSERT_EQ(backup.entries(), 0u);
  }
  EXPECT_EQ(backup.resets(), 100);
  EXPECT_EQ(backup.sweeps(), 0);
}

TEST(HashBackup, EpochWrapForcesExactlyOneSweep) {
  std::vector<int> data{7, 7, 7, 7};
  HashBackup<int> backup(16);
  backup.set_epoch_for_test(0xffffffffu);  // one sweep from the hook itself
  ASSERT_TRUE(backup.record(3, 2, data[2]));
  data[2] = 50;
  backup.clear();  // epoch wraps: the once-per-2^32 sweep fires
  EXPECT_EQ(backup.sweeps(), 2);
  // Nothing from the pre-wrap run may leak into the new epoch.
  EXPECT_EQ(backup.entries(), 0u);
  EXPECT_EQ(backup.restore_all_into(data), 0);
  EXPECT_EQ(data[2], 50);
  // And the table is fully functional after the wrap.
  ASSERT_TRUE(backup.record(1, 2, data[2]));
  data[2] = 60;
  EXPECT_EQ(backup.undo_into(data, 0), 1);
  EXPECT_EQ(data[2], 50);
}

TEST(HashBackup, ParallelUndoMatchesSerial) {
  ThreadPool pool(4);
  const long n = 20000;
  std::vector<long> data(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = i;
  HashBackup<long> backup(65536);
  doall(pool, 0, n, [&](long i, unsigned) {
    backup.record(i, static_cast<std::size_t>(i), data[static_cast<std::size_t>(i)]);
    data[static_cast<std::size_t>(i)] = -1;
  });
  // Slot-partitioned parallel undo: distinct keys live in distinct slots,
  // so workers never write the same element.
  EXPECT_EQ(backup.undo_into(data, 12000, &pool), n - 12000);
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(data[static_cast<std::size_t>(i)], i < 12000 ? -1 : i) << i;
}

TEST(HashBackup, ConcurrentRecordingIsConsistent) {
  ThreadPool pool(4);
  const long n = 5000;
  std::vector<long> data(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = i;
  HashBackup<long> backup(16384);
  doall(pool, 0, n, [&](long i, unsigned) {
    backup.record(i, static_cast<std::size_t>(i), data[static_cast<std::size_t>(i)]);
    data[static_cast<std::size_t>(i)] = -1;
  });
  EXPECT_EQ(backup.entries(), static_cast<std::size_t>(n));
  EXPECT_EQ(backup.undo_into(data, 2500), n - 2500);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(data[static_cast<std::size_t>(i)], i < 2500 ? -1 : i) << i;
}

}  // namespace
}  // namespace wlp
