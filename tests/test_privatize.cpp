#include <gtest/gtest.h>

#include <vector>

#include "wlp/core/privatize.hpp"

namespace wlp {
namespace {

TEST(Privatize, CopyInSeedsPrivateCopies) {
  std::vector<double> shared{1.0, 2.0, 3.0};
  PrivatizedArray<double> p(shared, 3);
  for (unsigned w = 0; w < 3; ++w) {
    EXPECT_EQ(p.read(w, 0), 1.0);
    EXPECT_EQ(p.read(w, 2), 3.0);
  }
}

TEST(Privatize, WritesArePerWorker) {
  std::vector<double> shared{0.0, 0.0};
  PrivatizedArray<double> p(shared, 2);
  p.write(0, /*iter=*/0, 0, 11.0);
  EXPECT_EQ(p.read(0, 0), 11.0);
  EXPECT_EQ(p.read(1, 0), 0.0);  // other worker unaffected
  EXPECT_EQ(shared[0], 0.0);     // shared untouched until copy-out
}

TEST(Privatize, CopyOutTakesLatestValidStamp) {
  std::vector<double> shared{0.0};
  PrivatizedArray<double> p(shared, 3);
  // Location 0 written by iterations 2, 8, 5 on different workers.
  p.write(0, 2, 0, 20.0);
  p.write(1, 8, 0, 80.0);
  p.write(2, 5, 0, 50.0);
  // trip = 6: iteration 8 is overshoot; the latest valid is iteration 5.
  EXPECT_EQ(p.copy_out(6), 1);
  EXPECT_EQ(shared[0], 50.0);
}

TEST(Privatize, CopyOutIgnoresAllOvershoot) {
  std::vector<double> shared{7.0};
  PrivatizedArray<double> p(shared, 2);
  p.write(0, 10, 0, 99.0);
  EXPECT_EQ(p.copy_out(5), 0);  // nothing valid
  EXPECT_EQ(shared[0], 7.0);
}

TEST(Privatize, SameIterationLastWriteWins) {
  std::vector<double> shared{0.0};
  PrivatizedArray<double> p(shared, 1);
  p.write(0, 3, 0, 1.0);
  p.write(0, 3, 0, 2.0);  // same iteration, later program order
  p.write(0, 3, 0, 3.0);
  EXPECT_EQ(p.copy_out(10), 1);
  EXPECT_EQ(shared[0], 3.0);
}

TEST(Privatize, MultipleLocations) {
  std::vector<double> shared(5, -1.0);
  PrivatizedArray<double> p(shared, 2);
  p.write(0, 0, 1, 10.0);
  p.write(1, 1, 3, 30.0);
  p.write(0, 2, 1, 11.0);
  EXPECT_EQ(p.copy_out(3), 2);
  EXPECT_EQ(shared[1], 11.0);
  EXPECT_EQ(shared[3], 30.0);
  EXPECT_EQ(shared[0], -1.0);
}

TEST(Privatize, TrailEntriesCountsMemoryCost) {
  std::vector<double> shared(4, 0.0);
  PrivatizedArray<double> p(shared, 2);
  EXPECT_EQ(p.trail_entries(), 0u);
  p.write(0, 0, 0, 1.0);
  p.write(1, 1, 1, 1.0);
  p.write(1, 2, 1, 2.0);
  EXPECT_EQ(p.trail_entries(), 3u);
}

}  // namespace
}  // namespace wlp
