#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "wlp/core/speculative.hpp"

namespace wlp {
namespace {

/// Independent loop: A[perm[i]] = i, RV exit at `exit_at`.  The access
/// pattern is a permutation so the PD test must pass and the overshoot must
/// be undone.
TEST(Speculative, IndependentLoopPassesAndUndoesOvershoot) {
  ThreadPool pool(4);
  const long n = 2000, exit_at = 1500;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), -1.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        // scrambled but bijective index
        const auto idx = static_cast<std::size_t>((i * 7901) % n);
        arr.set(vpn, i, idx, static_cast<double>(i));
        return IterAction::kContinue;
      },
      [&] { return exit_at; });

  EXPECT_TRUE(r.pd_passed);
  EXPECT_TRUE(r.pd_tested);
  EXPECT_FALSE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, exit_at);

  // Exactly the iterations < exit_at are visible.
  std::vector<double> expect(static_cast<std::size_t>(n), -1.0);
  for (long i = 0; i < exit_at; ++i)
    expect[static_cast<std::size_t>((i * 7901) % n)] = static_cast<double>(i);
  EXPECT_EQ(arr.data(), expect);
}

/// Flow-dependent loop: A[i] = A[i-1] + 1.  The PD test must fail, all
/// state must be restored, and the sequential re-execution must produce the
/// exact sequential result.
TEST(Speculative, FlowDependenceFailsAndFallsBack) {
  ThreadPool pool(4);
  const long n = 500;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i == 0) return IterAction::kContinue;
        const double prev = arr.get(vpn, static_cast<std::size_t>(i - 1));
        arr.set(vpn, i, static_cast<std::size_t>(i), prev + 1.0);
        return IterAction::kContinue;
      },
      [&] {
        auto& d = arr.data();
        for (long i = 1; i < n; ++i)
          d[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i - 1)] + 1.0;
        return n;
      });

  EXPECT_FALSE(r.pd_passed);
  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, n);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], static_cast<double>(i)) << i;
}

/// Section 5.1: an exception during the speculative run is treated as an
/// invalid parallel execution — restore and run sequentially.
TEST(Speculative, ExceptionTriggersSequentialReexecution) {
  ThreadPool pool(4);
  const long n = 300;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        arr.set(vpn, i, static_cast<std::size_t>(i), 99.0);
        if (i == 150) throw std::runtime_error("simulated fault");
        return IterAction::kContinue;
      },
      [&] {
        auto& d = arr.data();
        for (long i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = 7.0;
        return n;
      });

  EXPECT_TRUE(r.reexecuted_sequentially);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], 7.0) << i;
}

/// Output dependence (same location written by two iterations) without any
/// exposed read: the strict DOALL verdict fails (privatization would be
/// needed), so the driver falls back.
TEST(Speculative, OutputDependenceIsDetected) {
  ThreadPool pool(4);
  SpecArray<double> arr(std::vector<double>(10, 0.0), pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, 100, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        arr.set(vpn, i, 3, static_cast<double>(i));
        return IterAction::kContinue;
      },
      [&] {
        arr.data()[3] = 99.0;
        return 100L;
      });

  EXPECT_FALSE(r.pd_passed);
  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(arr.data()[3], 99.0);
}

/// Non-shadowed arrays skip the PD test but still get stamps and undo.
TEST(Speculative, UnshadowedArraySkipsPDButUndoes) {
  ThreadPool pool(4);
  const long n = 1000, exit_at = 600;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), -2.0),
                        pool.size(), /*run_pd_test=*/false);
  SpecTarget* targets[] = {&arr};

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
        return IterAction::kContinue;
      },
      [&] { return exit_at; });

  EXPECT_FALSE(r.pd_tested);
  EXPECT_FALSE(r.reexecuted_sequentially);
  EXPECT_EQ(r.shadow_marks, 0);  // no shadow, no instrumentation tax
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], i < exit_at ? 1.0 : -2.0);
}

/// A/B policy switch: the same loop driven through the shared-store policy
/// must behave identically to the default privatized one, and both must
/// report the marks the run actually made.
TEST(Speculative, SharedShadowPolicyIsDropInEquivalent) {
  ThreadPool pool(4);
  const long n = 1000, exit_at = 800;

  auto run = [&](auto& arr) {
    SpecTarget* targets[] = {&arr};
    return speculative_while(
        pool, n, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          if (i >= exit_at) return IterAction::kExit;
          const auto idx = static_cast<std::size_t>((i * 7901) % n);
          arr.set(vpn, i, idx, static_cast<double>(i));
          return IterAction::kContinue;
        },
        [&] { return exit_at; });
  };

  SpecArray<double, PDSharedShadow> shared_arr(
      std::vector<double>(static_cast<std::size_t>(n), -1.0), pool.size(), true);
  SpecArray<double, PDPrivateShadow> priv_arr(
      std::vector<double>(static_cast<std::size_t>(n), -1.0), pool.size(), true);

  const ExecReport rs = run(shared_arr);
  const ExecReport rp = run(priv_arr);

  for (const ExecReport& r : {rs, rp}) {
    EXPECT_TRUE(r.pd_tested);
    EXPECT_TRUE(r.pd_passed);
    EXPECT_FALSE(r.reexecuted_sequentially);
    EXPECT_EQ(r.trip, exit_at);
    // Exactly one write mark per valid iteration; overshot iterations hit
    // the exit probe before touching the array.
    EXPECT_EQ(r.shadow_marks, exit_at);
  }
  EXPECT_EQ(shared_arr.data(), priv_arr.data());
}

}  // namespace
}  // namespace wlp
