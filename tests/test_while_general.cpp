#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "wlp/core/while_general.hpp"
#include "wlp/workloads/linked_list.hpp"

namespace wlp {
namespace {

using workloads::kNullNode;
using workloads::NodePool;

/// Index-linked list over a plain vector: next[i] or -1.
struct ChainFixture {
  std::vector<long> next;
  explicit ChainFixture(long n) : next(static_cast<std::size_t>(n)) {
    std::iota(next.begin(), next.end(), 1);
    if (n > 0) next[static_cast<std::size_t>(n - 1)] = -1;
  }
  long head() const { return next.empty() ? -1 : 0; }
  auto next_fn() const {
    return [this](long c) { return next[static_cast<std::size_t>(c)]; };
  }
  static bool is_end(long c) { return c < 0; }
};

enum class Gen { k1, k2, k3 };

struct GeneralCase {
  Gen which;
  const char* name;
};

class GeneralMethods : public ::testing::TestWithParam<GeneralCase> {
 protected:
  template <class Body>
  ExecReport run(ThreadPool& pool, const ChainFixture& c, Body&& body) {
    switch (GetParam().which) {
      case Gen::k1:
        return while_general1(pool, c.head(), c.next_fn(), &ChainFixture::is_end, body);
      case Gen::k2:
        return while_general2(pool, c.head(), c.next_fn(), &ChainFixture::is_end, body);
      case Gen::k3:
        return while_general3(pool, c.head(), c.next_fn(), &ChainFixture::is_end, body);
    }
    std::abort();
  }
};

TEST_P(GeneralMethods, VisitsEveryElementExactlyOnce) {
  ThreadPool pool(4);
  const long n = 503;
  ChainFixture chain(n);
  std::vector<std::atomic<int>> hit(n);
  const ExecReport r = run(pool, chain, [&](long i, long cursor, unsigned) {
    EXPECT_EQ(i, cursor);  // chain identity: position == index
    hit[static_cast<std::size_t>(cursor)].fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, n);
  EXPECT_EQ(r.overshot, 0);
  for (long i = 0; i < n; ++i) EXPECT_EQ(hit[static_cast<std::size_t>(i)].load(), 1);
}

TEST_P(GeneralMethods, EmptyList) {
  ThreadPool pool(4);
  ChainFixture chain(0);
  std::atomic<int> runs{0};
  const ExecReport r = run(pool, chain, [&](long, long, unsigned) {
    runs.fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 0);
  EXPECT_EQ(runs.load(), 0);
}

TEST_P(GeneralMethods, SingleElement) {
  ThreadPool pool(4);
  ChainFixture chain(1);
  std::atomic<int> runs{0};
  const ExecReport r = run(pool, chain, [&](long, long, unsigned) {
    runs.fetch_add(1);
    return IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 1);
  EXPECT_EQ(runs.load(), 1);
}

TEST_P(GeneralMethods, RemainderVariantExitRecoversTrip) {
  ThreadPool pool(4);
  const long n = 800, exit_at = 390;
  ChainFixture chain(n);
  const ExecReport r = run(pool, chain, [&](long i, long, unsigned) {
    return i == exit_at ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, exit_at);
}

INSTANTIATE_TEST_SUITE_P(Methods, GeneralMethods,
                         ::testing::Values(GeneralCase{Gen::k1, "General1"},
                                           GeneralCase{Gen::k2, "General2"},
                                           GeneralCase{Gen::k3, "General3"}),
                         [](const auto& info) { return info.param.name; });

TEST(GeneralHops, General2TraversesPerProcessorGeneral13CooperateOrReplay) {
  ThreadPool pool(4);
  const long n = 400;
  ChainFixture chain(n);
  auto noop = [](long, long, unsigned) { return IterAction::kContinue; };
  const ExecReport g1 =
      while_general1(pool, chain.head(), chain.next_fn(), &ChainFixture::is_end, noop);
  const ExecReport g2 =
      while_general2(pool, chain.head(), chain.next_fn(), &ChainFixture::is_end, noop);
  const ExecReport g3 =
      while_general3(pool, chain.head(), chain.next_fn(), &ChainFixture::is_end, noop);
  // General-1: the list is traversed once, cooperatively.
  EXPECT_EQ(g1.dispatcher_steps, n);
  // General-2: every processor walks the whole list.
  EXPECT_EQ(g2.dispatcher_steps, n * 4);
  // General-3: replay keeps total hops near one walk per processor at most.
  EXPECT_GE(g3.dispatcher_steps, n - 1);
  EXPECT_LE(g3.dispatcher_steps, n * 4);
}

TEST(GeneralOnNodePool, PayloadTraversalMatchesLogicalOrder) {
  ThreadPool pool(4);
  // Shuffled storage order: the traversal must still see logical order.
  auto list = NodePool<long>::make(257, 99, [](long i, long& v) { v = i * 3; });
  std::vector<std::atomic<long>> seen(257);
  const ExecReport r = while_general3(
      pool, list.head(), [&](std::int32_t c) { return list.next(c); },
      [](std::int32_t c) { return NodePool<long>::is_end(c); },
      [&](long i, std::int32_t c, unsigned) {
        seen[static_cast<std::size_t>(i)].store(list.payload(c));
        return IterAction::kContinue;
      });
  EXPECT_EQ(r.trip, 257);
  for (long i = 0; i < 257; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), i * 3);
}

TEST(GeneralMethodsUpperBound, RespectsU) {
  ThreadPool pool(4);
  ChainFixture chain(1000);
  std::atomic<long> runs{0};
  const ExecReport r = while_general3(
      pool, chain.head(), chain.next_fn(), &ChainFixture::is_end,
      [&](long, long, unsigned) {
        runs.fetch_add(1);
        return IterAction::kContinue;
      },
      100);
  EXPECT_EQ(r.trip, 100);
  EXPECT_EQ(runs.load(), 100);
}

}  // namespace
}  // namespace wlp
