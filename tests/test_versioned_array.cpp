#include <gtest/gtest.h>

#include <cstddef>
#include <type_traits>
#include <vector>

#include "wlp/core/versioned_array.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {
namespace {

TEST(VersionedArray, UndoRestoresExactlyOvershotWrites) {
  VersionedArray<int> a(std::vector<int>(10, 0));
  a.checkpoint();
  a.write(1, 2, 100);  // valid (trip will be 5)
  a.write(4, 3, 200);  // valid
  a.write(5, 4, 300);  // overshot
  a.write(9, 5, 400);  // overshot
  const long undone = a.undo_beyond(5);
  EXPECT_EQ(undone, 2);
  EXPECT_EQ(a.get(2), 100);
  EXPECT_EQ(a.get(3), 200);
  EXPECT_EQ(a.get(4), 0);
  EXPECT_EQ(a.get(5), 0);
}

TEST(VersionedArray, ParallelUndoMatchesSequential) {
  ThreadPool pool(4);
  const long n = 10000, trip = 6000;
  VersionedArray<long> a(std::vector<long>(static_cast<std::size_t>(n), -1));
  a.checkpoint();
  doall(pool, 0, n, [&](long i, unsigned) {
    a.write(i, static_cast<std::size_t>(i), i * 10);
  });
  const long undone = a.undo_beyond(trip, &pool);
  EXPECT_EQ(undone, n - trip);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)), i < trip ? i * 10 : -1) << i;
}

TEST(VersionedArray, RestoreAllAfterFailedSpeculation) {
  VersionedArray<double> a(std::vector<double>{1.0, 2.0, 3.0});
  a.checkpoint();
  a.write(0, 0, 9.0);
  a.write(1, 1, 9.0);
  a.restore_all();
  EXPECT_EQ(a.get(0), 1.0);
  EXPECT_EQ(a.get(1), 2.0);
  EXPECT_EQ(a.get(2), 3.0);
  // Stamps cleared: nothing left to undo.
  EXPECT_EQ(a.undo_beyond(0), 0);
}

TEST(VersionedArray, StampKeepsMaximumWriter) {
  VersionedArray<int> a(std::vector<int>(4, 0));
  a.checkpoint();
  a.write(7, 1, 70);
  a.write(3, 1, 30);  // lower iteration writes later (parallel interleaving)
  EXPECT_EQ(a.stamp(1), 7);
  // Undo at trip 5: stamp 7 >= 5 -> restored to checkpoint value.
  EXPECT_EQ(a.undo_beyond(5), 1);
  EXPECT_EQ(a.get(1), 0);
}

TEST(VersionedArray, WriteRawBypassesStamps) {
  VersionedArray<int> a(std::vector<int>(3, 5));
  a.checkpoint();
  a.write_raw(0, 9);
  EXPECT_EQ(a.stamp(0), VersionedArray<int>::kNoStamp);
  EXPECT_EQ(a.undo_beyond(0), 0);  // raw writes are never undone
  EXPECT_EQ(a.get(0), 9);
}

TEST(VersionedArray, UndoWithNoWritesIsNoop) {
  VersionedArray<int> a(std::vector<int>(100, 1));
  a.checkpoint();
  EXPECT_EQ(a.undo_beyond(0), 0);
}

TEST(VersionedArray, DataEscapeHatchAliasesStorage) {
  VersionedArray<int> a(std::vector<int>{1, 2, 3});
  a.data()[1] = 42;
  EXPECT_EQ(a.get(1), 42);
}

// ---- block-batched layer: dirty summary, Writer views, epochs --------------

/// Copy-counting element: NOT trivially copyable, so the memcpy fast paths
/// of checkpoint/undo must never be taken for it — every transfer goes
/// through operator= and bumps the counter.
struct Tracked {
  long v = 0;
  inline static long copies = 0;
  Tracked() = default;
  explicit Tracked(long x) : v(x) {}
  Tracked(const Tracked& o) : v(o.v) { ++copies; }
  Tracked& operator=(const Tracked& o) {
    v = o.v;
    ++copies;
    return *this;
  }
};
static_assert(!std::is_trivially_copyable_v<Tracked>);

TEST(VersionedArray, NonTriviallyCopyableTakesElementCopyPath) {
  const long n = 200;
  VersionedArray<Tracked> a(std::vector<Tracked>(static_cast<std::size_t>(n)));
  for (long i = 0; i < n; ++i) a.data()[static_cast<std::size_t>(i)].v = i;

  Tracked::copies = 0;
  a.checkpoint();
  // A memcpy checkpoint could not have bumped the counter: exactly one
  // element copy per location proves the element path ran.
  EXPECT_EQ(Tracked::copies, n);

  for (long i = 0; i < n; ++i)
    a.write(i, static_cast<std::size_t>(i), Tracked(i + 1000));
  Tracked::copies = 0;
  EXPECT_EQ(a.undo_beyond(120), n - 120);
  EXPECT_EQ(Tracked::copies, n - 120);  // one copy per restored element
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)).v, i < 120 ? i + 1000 : i) << i;

  a.restore_all();
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)).v, i) << i;
}

TEST(VersionedArray, ConcurrentWritersShareBlocksAndSummaryWords) {
  // Distinct elements, shared 64-element blocks and shared 2048-element
  // summary words: the stamp CAS-max and the dirty-word fetch_or/CAS-rebase
  // race exactly as they do in a real speculative DOALL.  (Run under TSan
  // in CI via the VersionedArray* filter.)
  ThreadPool pool(4);
  const long n = 1 << 14, trip = 9000;
  VersionedArray<long> a(std::vector<long>(static_cast<std::size_t>(n), -1));
  a.checkpoint(&pool);
  DoallOptions opts;
  opts.sched = Sched::kDynamic;
  opts.chunk = 1;  // interleave writers across blocks as finely as possible
  doall(pool, 0, n, [&](long i, unsigned) {
    a.write(i, static_cast<std::size_t>(i), i * 3);
  }, opts);
  EXPECT_EQ(a.undo_beyond(trip, &pool), n - trip);
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(a.get(static_cast<std::size_t>(i)), i < trip ? i * 3 : -1) << i;
}

TEST(VersionedArray, ClearStampsIsEpochBumpNotSweep) {
  const long n = 4096;
  VersionedArray<int> a(std::vector<int>(static_cast<std::size_t>(n), 0));
  for (int round = 0; round < 100; ++round) {
    a.checkpoint();
    a.write(7, 100, round);
    a.write(9, 2100, round);  // second summary word
    ASSERT_EQ(a.undo_beyond(8), 1) << round;
    ASSERT_EQ(a.get(2100), 0) << round;
    ASSERT_EQ(a.get(100), round) << round;
    a.data()[100] = 0;  // reset for the next round
    a.clear_stamps();
    ASSERT_EQ(a.stamp(100), VersionedArray<int>::kNoStamp);
  }
  const UndoStats s = a.stats();
  EXPECT_EQ(s.resets, 100);
  EXPECT_EQ(s.sweeps, 0);  // every reset was the O(1) epoch bump
  EXPECT_EQ(s.checkpoints, 100);
}

TEST(VersionedArray, EpochWrapSweepKeepsUndoExact) {
  VersionedArray<int> a(std::vector<int>(256, 0));
  a.set_epoch_for_test(0xffffffffu);  // hook performs one sweep itself
  a.checkpoint();
  a.write(5, 10, 99);
  EXPECT_EQ(a.stamp(10), 5);
  a.clear_stamps();  // epoch wraps to 0: the once-per-2^32 sweep fires
  EXPECT_EQ(a.stats().sweeps, 2);
  EXPECT_EQ(a.stamp(10), VersionedArray<int>::kNoStamp);
  // The post-wrap epoch must not resurrect pre-wrap stamps or dirty bits.
  EXPECT_EQ(a.undo_beyond(0), 0);
  a.write(3, 10, 7);
  a.write(9, 11, 8);
  EXPECT_EQ(a.undo_beyond(5), 1);
  EXPECT_EQ(a.get(10), 7);
  EXPECT_EQ(a.get(11), 0);
}

TEST(VersionedArray, WriterViewUndoesExactlyAndRebinds) {
  const long n = 512;
  VersionedArray<int> a(std::vector<int>(static_cast<std::size_t>(n), 0));
  a.checkpoint();
  auto w = a.writer();
  // A run of in-block writes: the cached last-block skips the summary-word
  // publication after the first write of each block.
  for (long i = 0; i < 256; ++i)
    w.write(i, static_cast<std::size_t>(i), 1);
  EXPECT_EQ(a.undo_beyond(200), 56);
  for (long i = 0; i < 256; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)), i < 200 ? 1 : 0) << i;

  // After a reset the cached block belongs to the dead epoch; rebind() makes
  // the next write publish its dirty bit again.
  a.restore_all();
  w.rebind();
  a.checkpoint();
  for (long i = 0; i < 256; ++i)
    w.write(i, static_cast<std::size_t>(i), 2);
  EXPECT_EQ(a.undo_beyond(100), 156);
  for (long i = 0; i < 256; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)), i < 100 ? 2 : 0) << i;
}

TEST(VersionedArray, MemoryBytesCountsAllFourComponents) {
  const std::size_t n = 1000;
  VersionedArray<long> a(std::vector<long>(n, 0));
  const std::size_t before = a.memory_bytes();
  // Data + stamps + dirty summary exist up front.
  EXPECT_GE(before, n * sizeof(long) + n * sizeof(std::uint64_t));
  a.checkpoint();
  const std::size_t with_backup = a.memory_bytes();
  EXPECT_GE(with_backup, before + n * sizeof(long));  // + backup
  // discard keeps the pooled buffer: the footprint (and therefore the
  // window controller's charge) does not shrink.
  a.discard_checkpoint();
  EXPECT_EQ(a.memory_bytes(), with_backup);
  EXPECT_FALSE(a.has_checkpoint());
}

TEST(VersionedArray, UndoStatsCountDirtyBlocksAndCoalescedRuns) {
  // A payload over two machine words takes the copy-dominated undo path,
  // where contiguous overshot runs are batched into single copies.
  struct Wide {
    double a, b, c, d;
  };
  static_assert(VersionedArray<Wide>::kCoalesceRuns);
  const long n = 4096;
  VersionedArray<Wide> a(std::vector<Wide>(static_cast<std::size_t>(n)));
  a.checkpoint();
  // One fully-dirty block (64 contiguous overshot stamps = 1 run) plus one
  // isolated overshot element in a distant block (1 more run).
  for (long i = 128; i < 192; ++i)
    a.write(50, static_cast<std::size_t>(i), {1, 1, 1, 1});
  a.write(60, 3000, {2, 2, 2, 2});
  EXPECT_EQ(a.undo_beyond(0), 65);
  const UndoStats s = a.stats();
  EXPECT_EQ(s.blocks_dirty, 2);
  EXPECT_EQ(s.runs_coalesced, 2);  // 64 contiguous restores = one memcpy
  EXPECT_EQ(a.get(128).a, 0.0);
  EXPECT_EQ(a.get(3000).a, 0.0);
}

TEST(VersionedArray, SmallPayloadUndoRestoresInlineDuringScan) {
  // Word-sized payloads take the scan-dominated path: the restore happens
  // inline during the single-branch stamp scan, so no runs are batched —
  // but dirty blocks are still counted and the undo is exact.
  static_assert(!VersionedArray<int>::kCoalesceRuns);
  const long n = 4096;
  VersionedArray<int> a(std::vector<int>(static_cast<std::size_t>(n), 0));
  a.checkpoint();
  for (long i = 128; i < 192; ++i)
    a.write(50, static_cast<std::size_t>(i), 1);
  a.write(60, 3000, 1);
  EXPECT_EQ(a.undo_beyond(0), 65);
  const UndoStats s = a.stats();
  EXPECT_EQ(s.blocks_dirty, 2);
  EXPECT_EQ(s.runs_coalesced, 0);
  EXPECT_EQ(a.get(128), 0);
  EXPECT_EQ(a.get(3000), 0);
}

TEST(VersionedArray, FusedUndoMatchesPerElementReference) {
  // The fused pass (dirty-word skip + adaptive restore) must agree with the
  // unbatched reference scan on a scattered pseudo-random write pattern.
  const std::size_t n = 1 << 14;
  VersionedArray<long> fused(std::vector<long>(n, -7));
  VersionedArray<long> ref(std::vector<long>(n, -7));
  fused.checkpoint();
  ref.checkpoint();
  auto wf = fused.writer();
  auto wr = ref.writer();
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (long iter = 0; iter < 2000; ++iter) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto idx = static_cast<std::size_t>(x % n);
    wf.write(iter, idx, static_cast<long>(iter));
    wr.write(iter, idx, static_cast<long>(iter));
  }
  EXPECT_EQ(fused.undo_beyond(1000), ref.undo_beyond_per_element(1000));
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(fused.get(i), ref.get(i)) << i;
}

}  // namespace
}  // namespace wlp
