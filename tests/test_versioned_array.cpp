#include <gtest/gtest.h>

#include <vector>

#include "wlp/core/versioned_array.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {
namespace {

TEST(VersionedArray, UndoRestoresExactlyOvershotWrites) {
  VersionedArray<int> a(std::vector<int>(10, 0));
  a.checkpoint();
  a.write(1, 2, 100);  // valid (trip will be 5)
  a.write(4, 3, 200);  // valid
  a.write(5, 4, 300);  // overshot
  a.write(9, 5, 400);  // overshot
  const long undone = a.undo_beyond(5);
  EXPECT_EQ(undone, 2);
  EXPECT_EQ(a.get(2), 100);
  EXPECT_EQ(a.get(3), 200);
  EXPECT_EQ(a.get(4), 0);
  EXPECT_EQ(a.get(5), 0);
}

TEST(VersionedArray, ParallelUndoMatchesSequential) {
  ThreadPool pool(4);
  const long n = 10000, trip = 6000;
  VersionedArray<long> a(std::vector<long>(static_cast<std::size_t>(n), -1));
  a.checkpoint();
  doall(pool, 0, n, [&](long i, unsigned) {
    a.write(i, static_cast<std::size_t>(i), i * 10);
  });
  const long undone = a.undo_beyond(trip, &pool);
  EXPECT_EQ(undone, n - trip);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(a.get(static_cast<std::size_t>(i)), i < trip ? i * 10 : -1) << i;
}

TEST(VersionedArray, RestoreAllAfterFailedSpeculation) {
  VersionedArray<double> a(std::vector<double>{1.0, 2.0, 3.0});
  a.checkpoint();
  a.write(0, 0, 9.0);
  a.write(1, 1, 9.0);
  a.restore_all();
  EXPECT_EQ(a.get(0), 1.0);
  EXPECT_EQ(a.get(1), 2.0);
  EXPECT_EQ(a.get(2), 3.0);
  // Stamps cleared: nothing left to undo.
  EXPECT_EQ(a.undo_beyond(0), 0);
}

TEST(VersionedArray, StampKeepsMaximumWriter) {
  VersionedArray<int> a(std::vector<int>(4, 0));
  a.checkpoint();
  a.write(7, 1, 70);
  a.write(3, 1, 30);  // lower iteration writes later (parallel interleaving)
  EXPECT_EQ(a.stamp(1), 7);
  // Undo at trip 5: stamp 7 >= 5 -> restored to checkpoint value.
  EXPECT_EQ(a.undo_beyond(5), 1);
  EXPECT_EQ(a.get(1), 0);
}

TEST(VersionedArray, WriteRawBypassesStamps) {
  VersionedArray<int> a(std::vector<int>(3, 5));
  a.checkpoint();
  a.write_raw(0, 9);
  EXPECT_EQ(a.stamp(0), VersionedArray<int>::kNoStamp);
  EXPECT_EQ(a.undo_beyond(0), 0);  // raw writes are never undone
  EXPECT_EQ(a.get(0), 9);
}

TEST(VersionedArray, UndoWithNoWritesIsNoop) {
  VersionedArray<int> a(std::vector<int>(100, 1));
  a.checkpoint();
  EXPECT_EQ(a.undo_beyond(0), 0);
}

TEST(VersionedArray, DataEscapeHatchAliasesStorage) {
  VersionedArray<int> a(std::vector<int>{1, 2, 3});
  a.data()[1] = 42;
  EXPECT_EQ(a.get(1), 42);
}

}  // namespace
}  // namespace wlp
