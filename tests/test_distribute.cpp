#include <gtest/gtest.h>

#include <cmath>

#include "wlp/analysis/distribute.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::ir {
namespace {

Env rich_env(long n) {
  Env e;
  e.scalars = {{"r", 1.0}, {"k", 0.0}, {"p", 40.0}, {"V", 1e6}};
  e.arrays["A"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["B"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["R"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  for (long i = 0; i < n; ++i)
    e.arrays["R"][static_cast<std::size_t>(i)] = std::fmod(i * 0.37, 1.0);
  e.funcs["f"] = [](double x) { return x * 0.5; };
  e.funcs["next"] = [](double x) { return x - 1; };
  e.funcs["work"] = [](double x) { return x * x + 1; };
  return e;
}

void expect_equivalent(const Loop& loop, const Distribution& d, Env base) {
  Env seq = base, dist = base;
  const long t1 = run_sequential(loop, seq);
  const long t2 = run_distributed(loop, d, dist);
  EXPECT_EQ(t1, t2) << to_string(d, loop);
  EXPECT_EQ(seq.scalars, dist.scalars) << to_string(d, loop);
  for (const auto& [name, arr] : seq.arrays) {
    const auto& other = dist.arrays.at(name);
    ASSERT_EQ(arr.size(), other.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
      EXPECT_NEAR(arr[i], other[i], 1e-12) << name << "[" << i << "] "
                                           << to_string(d, loop);
  }
}

TEST(Distribute, Fig3LoopSplitsIntoPrefixAndDoall) {
  // while (f(r) < V) { WORK(r); r = 3r + 1 }
  Loop loop;
  loop.name = "fig3";
  loop.max_iters = 64;
  loop.body.push_back(exit_if(bin('G', call("f", scalar("r")), scalar("V"))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("r"))));
  loop.body.push_back(
      assign_scalar("r", bin('+', bin('*', cnst(3), scalar("r")), cnst(1))));

  const Distribution d = distribute(loop);
  ASSERT_EQ(d.blocks.size(), 2u);
  EXPECT_EQ(d.blocks[0].rec.kind, BlockKind::kAssociative);
  EXPECT_TRUE(d.blocks[0].rec.contains_exit);
  EXPECT_EQ(d.blocks[1].rec.kind, BlockKind::kParallel);

  expect_equivalent(loop, d, rich_env(64));
}

TEST(Distribute, ListTraversalLoop) {
  // while (p != 0) { A[i] = work(p); p = next(p) }  (p counts down from 40)
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("p"))));
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));

  const Distribution d = distribute(loop);
  ASSERT_EQ(d.blocks.size(), 2u);
  EXPECT_EQ(d.blocks[0].rec.kind, BlockKind::kGeneralRecurrence);
  EXPECT_TRUE(d.blocks[0].rec.contains_exit);

  Env base = rich_env(100);
  Env probe = base;
  EXPECT_EQ(run_sequential(loop, probe), 40);  // p: 40 -> 0
  expect_equivalent(loop, d, base);
}

TEST(Distribute, RVExitInRemainderStillEquivalent) {
  // for i: { A[i] = R[i]*2 ; exit-if A[i] > 1.5 }  (exit depends on remainder)
  Loop loop;
  loop.max_iters = 50;
  loop.body.push_back(
      assign_array("A", index(), bin('*', array("R", index()), cnst(2))));
  loop.body.push_back(exit_if(bin('>', array("A", index()), cnst(1.5))));
  const Distribution d = distribute(loop);
  expect_equivalent(loop, d, rich_env(50));
}

TEST(Distribute, CarriedArrayChainStaysOneBlockAndRuns) {
  // A[i+1] = A[i] + R[i] — sequential chain; distribution must not break it.
  Loop loop;
  loop.max_iters = 40;
  loop.body.push_back(assign_array(
      "A", bin('+', index(), cnst(1)),
      bin('+', array("A", index()), array("R", index()))));
  const Distribution d = distribute(loop);
  expect_equivalent(loop, d, rich_env(41));
}

TEST(Fuse, ContiguousParallelBlocksMerge) {
  Loop loop;
  loop.max_iters = 20;
  loop.body.push_back(assign_array("A", index(), index()));
  loop.body.push_back(assign_array("B", index(), bin('*', index(), cnst(2))));
  const Distribution d = distribute(loop);
  ASSERT_EQ(d.blocks.size(), 2u);
  const Distribution f = fuse(loop, d);
  ASSERT_EQ(f.blocks.size(), 1u);
  EXPECT_EQ(f.blocks[0].rec.kind, BlockKind::kParallel);
  expect_equivalent(loop, f, rich_env(20));
}

TEST(Fuse, RecurrenceBlocksKeepIdentity) {
  Loop loop;
  loop.max_iters = 20;
  loop.body.push_back(assign_scalar("k", bin('+', scalar("k"), cnst(1))));
  loop.body.push_back(
      assign_scalar("r", bin('+', bin('*', cnst(2), scalar("r")), cnst(1))));
  loop.body.push_back(assign_array("A", index(), bin('+', scalar("k"), scalar("r"))));
  const Distribution f = fuse(loop, distribute(loop));
  // induction + associative stay separate; the consumer is its own block.
  ASSERT_EQ(f.blocks.size(), 3u);
  expect_equivalent(loop, f, rich_env(20));
}

// ---------------------------------------------------------------------------
// Property: randomized loops — distributed execution == sequential execution.
// ---------------------------------------------------------------------------

Loop random_loop(Xoshiro256& rng) {
  Loop loop;
  loop.max_iters = 10 + static_cast<long>(rng.below(40));

  // Dispatcher: one of induction / affine / pointer-chase / none.
  switch (rng.below(4)) {
    case 0:
      loop.body.push_back(assign_scalar("k", bin('+', scalar("k"), cnst(1))));
      break;
    case 1:
      loop.body.push_back(assign_scalar(
          "r", bin('+', bin('*', cnst(2), scalar("r")), cnst(1))));
      break;
    case 2:
      loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
      loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
      break;
    default:
      break;
  }

  // Remainder: 1-3 array statements over distinct arrays.
  const char* arrays[] = {"A", "B"};
  const auto stmts = 1 + rng.below(2);
  for (std::uint64_t k = 0; k < stmts; ++k) {
    const char* arr = arrays[k % 2];
    switch (rng.below(3)) {
      case 0:
        loop.body.push_back(assign_array(arr, index(), bin('*', index(), cnst(2))));
        break;
      case 1:
        loop.body.push_back(assign_array(
            arr, index(), bin('+', array("R", index()), cnst(1))));
        break;
      default:
        // carried chain, shifted so iteration 0 reads in range
        loop.body.push_back(assign_array(
            arr, bin('+', index(), cnst(1)),
            bin('+', array(arr, index()), cnst(1))));
        break;
    }
  }

  // Possibly an RI exit on the loop counter.
  if (rng.chance(0.5))
    loop.body.push_back(
        exit_if(bin('G', index(), cnst(static_cast<double>(rng.below(30))))));
  // Possibly an RV exit on computed data.
  if (rng.chance(0.3))
    loop.body.push_back(exit_if(bin('>', array("A", index()), cnst(30.0))));
  return loop;
}

class DistributionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributionProperty, DistributedMatchesSequential) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Loop loop = random_loop(rng);
    ASSERT_FALSE(validate(loop).has_value());
    const Distribution d = distribute(loop);
    expect_equivalent(loop, d, rich_env(loop.max_iters + 1));
    const Distribution f = fuse(loop, d);
    expect_equivalent(loop, f, rich_env(loop.max_iters + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace wlp::ir
