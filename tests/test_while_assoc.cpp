#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "wlp/core/while_assoc.hpp"

namespace wlp {
namespace {

// Reference: while (!term(x)) { body(i, x); x = a*x + b; }
template <class T, class Term>
long sequential_assoc_trip(T x0, AffineMap<T> step, Term&& term, long u,
                           std::vector<T>* seen = nullptr) {
  T x = x0;
  for (long i = 0; i < u; ++i) {
    if (term(x)) return i;
    if (seen) seen->push_back(x);
    x = step(x);
  }
  return u;
}

TEST(WhileAssoc, RITerminatorExactTripAndValues) {
  ThreadPool pool(4);
  const AffineMap<std::uint64_t> step{3, 1};
  // The map is invertible mod 2^64, so the value at step 777 first occurs
  // there: terminate exactly when the dispatcher reaches it.
  std::uint64_t target = 1;
  for (int k = 0; k < 777; ++k) target = step(target);
  auto term = [target](std::uint64_t x) { return x == target; };

  std::vector<std::uint64_t> expected;
  const long seq_trip = sequential_assoc_trip<std::uint64_t>(1, step, term, 100000,
                                                             &expected);
  ASSERT_EQ(seq_trip, 777);

  std::vector<std::atomic<std::uint64_t>> seen(static_cast<std::size_t>(seq_trip));
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 1, step, term,
      [&](long i, std::uint64_t x, unsigned) {
        if (i < seq_trip) seen[static_cast<std::size_t>(i)].store(x);
        return IterAction::kContinue;
      },
      100000);
  EXPECT_EQ(r.method, Method::kAssocPrefix);
  EXPECT_EQ(r.trip, seq_trip);
  EXPECT_EQ(r.overshot, 0);  // RI: the exit is found in the precomputed terms
  for (long i = 0; i < seq_trip; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), expected[static_cast<std::size_t>(i)]);
}

class AssocStripSizes : public ::testing::TestWithParam<long> {};

TEST_P(AssocStripSizes, StripMiningPreservesTrip) {
  ThreadPool pool(4);
  const AffineMap<std::uint64_t> step{6364136223846793005ULL, 1442695040888963407ULL};
  auto term = [](std::uint64_t x) { return (x >> 52) == 0xABCULL >> 4; };
  const long seq_trip =
      sequential_assoc_trip<std::uint64_t>(99, step, term, 200000);
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 99, step, term,
      [](long, std::uint64_t, unsigned) { return IterAction::kContinue; }, 200000,
      GetParam());
  EXPECT_EQ(r.trip, seq_trip);
}

INSTANTIATE_TEST_SUITE_P(Strips, AssocStripSizes,
                         ::testing::Values(0L, 1L, 7L, 64L, 1024L, 65536L));

TEST(WhileAssoc, RVExitInsideRemainder) {
  ThreadPool pool(4);
  const AffineMap<std::uint64_t> step{3, 7};
  auto never = [](std::uint64_t) { return false; };
  const long exit_at = 4321;
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 5, step, never,
      [&](long i, std::uint64_t, unsigned) {
        return i == exit_at ? IterAction::kExitAfter : IterAction::kContinue;
      },
      100000, /*strip=*/2048);
  EXPECT_EQ(r.trip, exit_at + 1);
  // Strip mining bounds the superfluous dispatcher terms to ~3 strips.
  EXPECT_LE(r.dispatcher_steps, 3 * 2048);
}

TEST(WhileAssoc, NoExitRunsToBound) {
  ThreadPool pool(4);
  std::atomic<long> runs{0};
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 0, {1, 1}, [](std::uint64_t) { return false; },
      [&](long, std::uint64_t, unsigned) {
        runs.fetch_add(1);
        return IterAction::kContinue;
      },
      5000);
  EXPECT_EQ(r.trip, 5000);
  EXPECT_EQ(runs.load(), 5000);
}

TEST(WhileAssoc, TerminatorTrueImmediately) {
  ThreadPool pool(4);
  std::atomic<long> runs{0};
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 10, {2, 0}, [](std::uint64_t x) { return x == 10; },
      [&](long, std::uint64_t, unsigned) {
        runs.fetch_add(1);
        return IterAction::kContinue;
      },
      100);
  EXPECT_EQ(r.trip, 0);
  EXPECT_EQ(runs.load(), 0);
}

TEST(WhileAssoc, IdentityStepDegeneratesToConstantDispatcher) {
  ThreadPool pool(4);
  // x stays 5 forever; RV exit at iteration 77 ends it.
  const ExecReport r = while_assoc_prefix<std::uint64_t>(
      pool, 5, AffineMap<std::uint64_t>::identity(),
      [](std::uint64_t) { return false; },
      [](long i, std::uint64_t x, unsigned) {
        EXPECT_EQ(x, 5u);
        return i == 77 ? IterAction::kExit : IterAction::kContinue;
      },
      1000);
  EXPECT_EQ(r.trip, 77);
}

}  // namespace
}  // namespace wlp
