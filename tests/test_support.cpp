#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "wlp/support/backoff.hpp"
#include "wlp/support/cacheline.hpp"
#include "wlp/support/prng.hpp"
#include "wlp/support/stats.hpp"
#include "wlp/support/table.hpp"

namespace wlp {
namespace {

TEST(Prng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Prng, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Prng, BelowZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Prng, RangeInclusive) {
  Xoshiro256 rng(9);
  std::set<long> seen;
  for (int i = 0; i < 5000; ++i) {
    const long v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Prng, Mix64IsStateless) { EXPECT_EQ(mix64(42), mix64(42)); }

TEST(Stats, RunningMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.ci95(), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
}

TEST(Backoff, RoundsSaturateAtTheCap) {
  // rounds() feeds the wlp.doacross.wait_rounds histogram: it must clamp,
  // not wrap, and should_park() must stay true once fired.  (The seed's
  // counter incremented without bound and wrapped after 2^32 pauses.)
  Backoff b(/*spin_limit=*/4);
  for (unsigned i = 0; i < Backoff::kRoundCap + 100; ++i) b.pause();
  EXPECT_EQ(b.rounds(), Backoff::kRoundCap);
  EXPECT_TRUE(b.should_park());
  b.pause();  // past the cap: still well defined, still capped
  EXPECT_EQ(b.rounds(), Backoff::kRoundCap);
  EXPECT_TRUE(b.should_park());
}

TEST(Backoff, OversizedSpinLimitIsClampedSoParkingStaysReachable) {
  // A spin limit beyond the saturation cap would otherwise make
  // should_park() unreachable — the waiter would spin forever.
  Backoff b(/*spin_limit=*/~0u);
  EXPECT_FALSE(b.should_park());
  for (unsigned i = 0; i < Backoff::kRoundCap; ++i) b.pause();
  EXPECT_TRUE(b.should_park());
}

TEST(Backoff, ParkHookCountsAndResets) {
  Backoff b(/*spin_limit=*/0);
  EXPECT_TRUE(b.should_park());  // park-at-once policy
  EXPECT_EQ(b.parks(), 0u);
  b.note_park();
  b.note_park();
  EXPECT_EQ(b.parks(), 2u);
  b.reset();
  EXPECT_EQ(b.parks(), 0u);
  EXPECT_EQ(b.rounds(), 0u);
}

TEST(Backoff, EscalatesFromPauseBurstsWithoutYieldingEarly) {
  // The first kPauseRounds rounds are pure pause bursts; rounds() counts
  // them exactly (the histogram's low buckets are the uncontended case).
  Backoff b;
  for (unsigned i = 0; i < Backoff::kPauseRounds; ++i) b.pause();
  EXPECT_EQ(b.rounds(), Backoff::kPauseRounds);
  EXPECT_FALSE(b.should_park());  // default budget is larger
}

TEST(CacheLine, PaddedSlotsDoNotShareLines) {
  PerWorker<long> slots(4, 7);
  EXPECT_EQ(slots.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(slots[i], 7);
  const auto a = reinterpret_cast<std::uintptr_t>(&slots[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&slots[1]);
  EXPECT_GE(b - a, kCacheLine);
}

TEST(CacheLine, PerWorkerReduce) {
  PerWorker<long> slots(8, 0);
  for (std::size_t i = 0; i < 8; ++i) slots[i] = static_cast<long>(i);
  EXPECT_EQ(slots.reduce(0L, [](long a, long b) { return a + b; }), 28);
  EXPECT_EQ(slots.reduce(100L, [](long a, long b) { return std::min(a, b); }), 0);
}

TEST(Table, AlignedOutputContainsCells) {
  TextTable t({"method", "speedup"});
  t.row({"General-3", TextTable::num(4.9, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("General-3"), std::string::npos);
  EXPECT_NE(s.find("4.9"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TextTable t({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, AsciiCurveRendersBars) {
  std::ostringstream os;
  ascii_curve(os, "series", {1, 2}, {1.0, 2.0}, 2.0, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find("p=  1"), std::string::npos);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace wlp
