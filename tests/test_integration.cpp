// End-to-end tests: the real workloads driven through the runtime methods
// must reproduce their sequential results exactly — Table 2's loops as
// executable checks.
#include <gtest/gtest.h>

#include "wlp/workloads/spice.hpp"
#include "wlp/workloads/track.hpp"
#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/sparse_lu.hpp"
#include "wlp/workloads/ma28_pivot.hpp"
#include "wlp/workloads/mcsparse_pivot.hpp"

namespace wlp::workloads {
namespace {

// --- SPICE LOAD loop 40 -------------------------------------------------------

class SpiceMethods : public ::testing::TestWithParam<int> {};

TEST_P(SpiceMethods, MatrixIdenticalToSequential) {
  ThreadPool pool(4);
  SpiceConfig cfg;
  cfg.devices = 1500;
  const SpiceLoad load(cfg);

  std::vector<double> ref = load.fresh_matrix();
  load.run_sequential(ref);

  std::vector<double> out = load.fresh_matrix();
  ExecReport r;
  switch (GetParam()) {
    case 0: r = load.run_general1(pool, out); break;
    case 1: r = load.run_general2(pool, out); break;
    case 2: r = load.run_general3(pool, out); break;
    case 3: r = load.run_wu_lewis_distribute(pool, out); break;
    default: r = load.run_wu_lewis_doacross(pool, out); break;
  }
  EXPECT_EQ(r.trip, cfg.devices);
  EXPECT_EQ(r.overshot, 0);  // RI terminator: Table 2 says no undo needed
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(out[i], ref[i]) << "matrix slot " << i;
}

std::string spice_method_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"General1", "General2", "General3",
                                      "WuLewisDistribute", "WuLewisDoacross"};
  return names[info.param];
}
INSTANTIATE_TEST_SUITE_P(Methods, SpiceMethods, ::testing::Values(0, 1, 2, 3, 4),
                         spice_method_name);

TEST(Spice, ProfileShapesMatchConfig) {
  const SpiceLoad load({2000, 4, 24, 7});
  const auto lp = load.profile();
  EXPECT_EQ(lp.u, 2000);
  EXPECT_EQ(lp.trip, 2000);
  EXPECT_FALSE(lp.overshoot_does_work);
  EXPECT_EQ(lp.writes_per_iter, 4);
  // Work variance exists (the grain is variable).
  const auto [mn, mx] = std::minmax_element(lp.work.begin(), lp.work.end());
  EXPECT_LT(*mn, *mx);
}

// --- TRACK FPTRAK loop 300 ---------------------------------------------------

class TrackMethods : public ::testing::TestWithParam<int> {};

TEST_P(TrackMethods, StateIdenticalToSequentialAfterUndo) {
  ThreadPool pool(4);
  TrackConfig cfg;
  cfg.candidates = 3000;
  const TrackLoop loop(cfg);

  std::vector<double> pos_ref = loop.fresh_positions();
  std::vector<double> vel_ref = loop.fresh_velocities();
  const long seq_trip = loop.run_sequential(pos_ref, vel_ref);
  EXPECT_EQ(seq_trip, loop.expected_trip());

  std::vector<double> pos = loop.fresh_positions();
  std::vector<double> vel = loop.fresh_velocities();
  ExecReport r;
  switch (GetParam()) {
    case 0: r = loop.run_induction1(pool, pos, vel); break;
    case 1: r = loop.run_induction2(pool, pos, vel); break;
    default: r = loop.run_speculative(pool, pos, vel); break;
  }
  EXPECT_EQ(r.trip, seq_trip);
  EXPECT_EQ(pos, pos_ref);
  EXPECT_EQ(vel, vel_ref);
  if (GetParam() == 2) {
    EXPECT_TRUE(r.pd_tested);
    EXPECT_TRUE(r.pd_passed);  // the subscripts are a permutation
    EXPECT_FALSE(r.reexecuted_sequentially);
  }
}

std::string track_method_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"Induction1", "Induction2", "Speculative"};
  return names[info.param];
}
INSTANTIATE_TEST_SUITE_P(Methods, TrackMethods, ::testing::Values(0, 1, 2),
                         track_method_name);

TEST(Track, Induction1UndoesOvershootWrites) {
  ThreadPool pool(4);
  TrackConfig cfg;
  cfg.candidates = 2000;
  const TrackLoop loop(cfg);
  std::vector<double> pos = loop.fresh_positions();
  std::vector<double> vel = loop.fresh_velocities();
  const ExecReport r = loop.run_induction1(pool, pos, vel);
  // Induction-1 runs the whole range: overshoot is everything past the trip.
  EXPECT_EQ(r.started, cfg.candidates);
  EXPECT_GT(r.overshot, 0);
  EXPECT_GT(r.undone_writes, 0);
}

TEST(Track, IdealOracleMatchesSequentialPrefix) {
  ThreadPool pool(4);
  const TrackLoop loop({2500, 0.93, 11});
  std::vector<double> pos_ref = loop.fresh_positions();
  std::vector<double> vel_ref = loop.fresh_velocities();
  loop.run_sequential(pos_ref, vel_ref);
  std::vector<double> pos = loop.fresh_positions();
  std::vector<double> vel = loop.fresh_velocities();
  loop.run_ideal(pool, pos, vel);
  EXPECT_EQ(pos, pos_ref);
  EXPECT_EQ(vel, vel_ref);
}

// --- MA28: pivot search embedded in a real factorization ----------------------

TEST(Ma28EndToEnd, LUWithParallelPivotSearchStructure) {
  // The search problem derives from the same matrices the LU factors; this
  // ties the pivot-search workload to a real solve.
  ThreadPool pool(4);
  const SparseMatrix a = gen_power_flow(220, 1400, 0.03, 19);

  Ma28PivotSearch search(a, {});
  ExecReport r;
  const PivotCandidate par = search.search_induction1(pool, r);
  const PivotCandidate seq = search.search_sequential();
  ASSERT_TRUE(par.valid());
  EXPECT_EQ(par.row, seq.row);
  EXPECT_EQ(par.col, seq.col);

  MarkowitzLU lu(a);
  ASSERT_TRUE(lu.factor());
  // The first pivot MA28-style factorization chooses equals the standalone
  // search's choice (same search rule on the same structure).
  EXPECT_EQ(lu.perm_row()[0], seq.row);
  EXPECT_EQ(lu.perm_col()[0], seq.col);

  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  const std::vector<double> x = lu.solve(b);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-8);
}

// --- MCSPARSE: WHILE-DOANY over the real inputs -------------------------------

TEST(McsparseEndToEnd, DoanyPivotOnAllFourInputs) {
  ThreadPool pool(4);
  for (const auto& [matrix, name] :
       {std::pair{gen_gematt11(), "gematt11"}, std::pair{gen_gematt12(), "gematt12"},
        std::pair{gen_orsreg1(), "orsreg1"}, std::pair{gen_saylr4(), "saylr4"}}) {
    McsparsePivotSearch search(matrix, {});
    ExecReport r;
    const PivotCandidate p = search.search_doany(pool, r);
    ASSERT_TRUE(p.valid()) << name;
    EXPECT_TRUE(search.acceptable(p)) << name;
    EXPECT_NE(matrix.at(p.row, p.col), 0.0) << name;
  }
}

}  // namespace
}  // namespace wlp::workloads
