// Multi-array speculation transactions (SpecTransaction, txn.hpp):
//   * the fused multi-array undo agrees with the per-element reference pass
//     on every member, shared index or not,
//   * index sharing between trip-aligned members actually halves stamp
//     memory and the transaction reports the savings,
//   * mixed dense+hash transactions survive concurrent writers straddling
//     shared stamp words (the TSan job runs these under Txn*),
//   * an AdaptiveSpecArray's hash overflow falls back to dense without
//     disturbing its siblings,
//   * epoch wrap with live multi-array stamps sweeps the shared index once
//     and stays exact,
//   * cost_model::choose_backup picks the documented sides of the crossover
//     and clamps the measured theta,
//   * steady-state strip retries over a 2-array transaction allocate
//     nothing (wlp.mem Budget deltas pinned to zero).
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "wlp/core/sparse_spec.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/core/speculative_strips.hpp"
#include "wlp/core/txn.hpp"
#include "wlp/mem/budget.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

TEST(TxnFused, MultiArrayUndoMatchesPerElementOracle) {
  // Two trip-aligned members over ONE shared index plus a third with its
  // own index, undone by the fused transaction pass; three independent
  // VersionedArrays with the same writes, undone by the unbatched
  // per-element reference.  Every element must agree.
  ThreadPool pool(4);
  const std::size_t n = 1 << 14;
  const long iters = 4000, trip = 1700;

  SpecArray<long> a(std::vector<long>(n, -1), pool.size(), false);
  SpecArray<long> b(std::vector<long>(n, -2), pool.size(), false,
                    a.shared_index());
  SpecArray<long> c(std::vector<long>(n, -3), pool.size(), false);
  SpecTarget* targets[] = {&a, &b, &c};
  SpecTransaction txn(std::span<SpecTarget* const>(targets, 3));
  EXPECT_EQ(txn.shared_groups(), 2u);  // {a,b} and {c}
  EXPECT_EQ(txn.fused_targets(), 3u);
  EXPECT_EQ(txn.opaque_targets(), 0u);

  VersionedArray<long> ra(std::vector<long>(n, -1));
  VersionedArray<long> rb(std::vector<long>(n, -2));
  VersionedArray<long> rc(std::vector<long>(n, -3));

  txn.begin(&pool);
  ra.checkpoint();
  rb.checkpoint();
  rc.checkpoint();

  Xoshiro256 rng(0x5eedull);
  for (long i = 0; i < iters; ++i) {
    // a and b are trip-aligned: the SAME indices every iteration (the
    // shared-index write-set contract).  c scatters independently.
    const auto idx = static_cast<std::size_t>(rng() % n);
    a.set(0, i, idx, i);
    b.set(0, i, idx, 10 * i);
    ra.write(i, idx, i);
    rb.write(i, idx, 10 * i);
    const auto cidx = static_cast<std::size_t>(rng() % n);
    c.set(0, i, cidx, -i);
    rc.write(i, cidx, -i);
  }

  const long fused_undone = txn.undo_beyond(trip, &pool);
  const long ref_undone = ra.undo_beyond_per_element(trip) +
                          rb.undo_beyond_per_element(trip) +
                          rc.undo_beyond_per_element(trip);
  EXPECT_EQ(fused_undone, ref_undone);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.data()[i], ra.get(i)) << i;
    ASSERT_EQ(b.data()[i], rb.get(i)) << i;
    ASSERT_EQ(c.data()[i], rc.get(i)) << i;
  }
}

TEST(TxnFused, RestoreAllReturnsEveryMemberToEntryState) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 12;
  SpecArray<double> a(std::vector<double>(n, 1.5), pool.size(), false);
  SpecArray<double> b(std::vector<double>(n, 2.5), pool.size(), false,
                      a.shared_index());
  std::vector<double> sparse_data(n, 3.5);
  SparseSpecArray<double> s(sparse_data, pool.size(), 256, false);
  SpecTarget* targets[] = {&a, &b, &s};
  SpecTransaction txn(std::span<SpecTarget* const>(targets, 3));

  txn.begin(&pool);
  for (long i = 0; i < 500; ++i) {
    const auto idx = static_cast<std::size_t>(i * 7 % n);
    a.set(0, i, idx, -1.0);
    b.set(0, i, idx, -2.0);
    s.set(0, i, static_cast<std::size_t>(i), -3.0);
  }
  txn.restore_all(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.data()[i], 1.5) << i;
    ASSERT_EQ(b.data()[i], 2.5) << i;
    ASSERT_EQ(sparse_data[i], 3.5) << i;
  }
  // Stamps cleared by the restore: nothing left to undo.
  EXPECT_EQ(txn.undo_beyond(0, &pool), 0);
}

TEST(TxnSharedStamps, SharingHalvesStampMemory) {
  const std::size_t n = 1 << 14;
  ThreadPool pool(2);
  SpecArray<double> a(std::vector<double>(n, 0.0), pool.size(), false);
  SpecArray<double> b(std::vector<double>(n, 0.0), pool.size(), false,
                      a.shared_index());
  SpecTarget* shared_pair[] = {&a, &b};
  SpecTransaction shared_txn(std::span<SpecTarget* const>(shared_pair, 2));

  SpecArray<double> c(std::vector<double>(n, 0.0), pool.size(), false);
  SpecArray<double> d(std::vector<double>(n, 0.0), pool.size(), false);
  SpecTarget* private_pair[] = {&c, &d};
  SpecTransaction private_txn(std::span<SpecTarget* const>(private_pair, 2));

  // One group, and the saving equals exactly one index's bytes (the second
  // member would have owned a private one).
  EXPECT_EQ(shared_txn.shared_groups(), 1u);
  EXPECT_EQ(shared_txn.stamp_bytes_saved(), a.shared_index()->memory_bytes());
  EXPECT_EQ(private_txn.stamp_bytes_saved(), 0u);

  // The budget-visible footprint reflects it: the shared pair pins one
  // index where the private pair pins two.  (Backup buffers are identical
  // on both sides, so the delta is the index bytes.)
  EXPECT_EQ(private_txn.memory_bytes() - shared_txn.memory_bytes(),
            a.shared_index()->memory_bytes());
  // And the index itself dominates its dense n: ~12.25 bytes/element
  // (8 stamp + summary) versus twice that unshared.
  EXPECT_GE(a.shared_index()->memory_bytes(), n * sizeof(std::uint64_t));
}

TEST(TxnStress, MixedDenseHashConcurrentWritersSharedWords) {
  // TSan coverage: two dense members share one StampIndex, so concurrent
  // workers CAS the same stamp and summary words; a hash member's record()
  // races on its slot tags in the same run.  Chunk 1 dynamic scheduling
  // maximizes interleaving; the exit lands exactly on a 64-element block
  // boundary so the undo threshold splits a summary word.
  ThreadPool pool(4);
  const long n = 1 << 14;
  const long exit_at = 4096;  // 64 * 64: exact block boundary
  SpecArray<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                      pool.size(), true);
  SpecArray<double> b(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                      pool.size(), true, a.shared_index());
  std::vector<double> sdata(static_cast<std::size_t>(n), 0.0);
  SparseSpecArray<double> s(sdata, pool.size(), static_cast<std::size_t>(n),
                            true);
  SpecTarget* targets[] = {&a, &b, &s};

  SpecOptions opts;
  opts.doall.sched = Sched::kDynamic;
  opts.doall.chunk = 1;

  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 3),
      [&](long i, unsigned vpn) {
        a.begin_iteration(vpn, i);
        b.begin_iteration(vpn, i);
        s.begin_iteration(vpn, i);
        // Write BEFORE testing the exit: every overshot iteration leaves
        // writes in all three members that the fused undo must take back.
        const auto idx = static_cast<std::size_t>(i);
        a.set(vpn, i, idx, static_cast<double>(i));
        b.set(vpn, i, idx, static_cast<double>(2 * i));
        s.set(vpn, i, idx, 1.0);
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      [&] { return exit_at; }, opts);

  ASSERT_TRUE(r.pd_passed);
  ASSERT_FALSE(r.reexecuted_sequentially);
  EXPECT_EQ(r.trip, exit_at);
  for (long i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(a.data()[idx], i < exit_at ? static_cast<double>(i) : 0.0) << i;
    ASSERT_EQ(b.data()[idx], i < exit_at ? static_cast<double>(2 * i) : 0.0)
        << i;
  }
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(sdata[static_cast<std::size_t>(i)], i < exit_at ? 1.0 : 0.0)
        << i;
}

TEST(TxnAdaptive, PicksHashForSparseAndDenseForDenseTouches) {
  ThreadPool pool(2);
  const std::size_t n = 1 << 14;
  // Hint says ~0.4% of the array: well under theta -> hash.
  AdaptiveSpecArray<double> sparse(std::vector<double>(n, 0.0), pool.size(),
                                   64, false);
  EXPECT_EQ(sparse.backup_kind(), BackupKind::kHash);
  // Hint says every element: dense.
  AdaptiveSpecArray<double> dense(std::vector<double>(n, 0.0), pool.size(), n,
                                  false);
  EXPECT_EQ(dense.backup_kind(), BackupKind::kDense);

  // After a retry the tallied writes replace the hint: run the sparse one
  // through a dense-touch retry and watch it flip.
  SpecTarget* targets[] = {&sparse};
  SpecTransaction txn(std::span<SpecTarget* const>(targets, 1));
  txn.begin(&pool);  // decision from the hint: still hash
  EXPECT_EQ(sparse.backup_kind(), BackupKind::kHash);
  for (std::size_t i = 0; i < n; ++i)
    sparse.set(0, static_cast<long>(i % 64), i, 1.0);
  // The 64-hint table overflowed under n distinct writes; the data stayed
  // consistent (overflowing writes were skipped) and the next begin() both
  // re-decides from the measured n touches AND latches the overflow ban.
  EXPECT_TRUE(sparse.overflowed());
  txn.restore_all(&pool);
  txn.begin(&pool);
  EXPECT_EQ(sparse.backup_kind(), BackupKind::kDense);
}

TEST(TxnAdaptive, HashOverflowFallsBackDenseWithoutDisturbingSibling) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 13;
  // A: tiny hash table, will overflow.  B: plain dense sibling in the same
  // transaction, whose state and backend must be unaffected.
  AdaptiveSpecArray<double> a_arr(std::vector<double>(n, 5.0), pool.size(), 16,
                                  false);
  AdaptiveSpecArray<double> b_arr(std::vector<double>(n, 6.0), pool.size(), n,
                                  false);
  ASSERT_EQ(a_arr.backup_kind(), BackupKind::kHash);
  ASSERT_EQ(b_arr.backup_kind(), BackupKind::kDense);
  SpecTarget* targets[] = {&a_arr, &b_arr};
  SpecTransaction txn(std::span<SpecTarget* const>(targets, 2));

  txn.begin(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    a_arr.set(0, 0, i, -1.0);  // blows through the 16-entry hint
    b_arr.set(0, 0, i, -2.0);
  }
  ASSERT_TRUE(txn.overflowed());

  // Failed speculation path: restore everything, then the next begin()
  // re-decides.  A is banned from hash for good; B keeps its backend.
  txn.restore_all(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a_arr.data()[i], 5.0) << i;
    ASSERT_EQ(b_arr.data()[i], 6.0) << i;
  }
  txn.begin(&pool);
  EXPECT_EQ(a_arr.backup_kind(), BackupKind::kDense);
  EXPECT_EQ(b_arr.backup_kind(), BackupKind::kDense);

  // The ban is permanent even if the touch set shrinks back to sparse.
  a_arr.set(0, 0, 3, -1.0);
  b_arr.set(0, 0, 3, -2.0);
  txn.undo_beyond(0, &pool);
  txn.begin(&pool);
  EXPECT_EQ(a_arr.backup_kind(), BackupKind::kDense);
}

TEST(TxnEpochWrap, SharedIndexWrapsOnceAndStaysExact) {
  // Jump the shared index to the edge of the 32-bit epoch space with LIVE
  // multi-array state, then cross the wrap: exactly one real sweep, and the
  // undo after the wrap still restores exactly the overshot writes.
  const std::size_t n = 4096;
  VersionedArray<long> a(std::vector<long>(n, -1));
  VersionedArray<long> b(std::vector<long>(n, -2), a.shared_index());
  a.set_epoch_for_test(0xffffffffu);  // next bump wraps

  const long sweeps0 = a.shared_index()->sweeps();
  a.checkpoint();
  b.checkpoint();
  a.write(9, 100, 1);
  b.write(9, 100, 2);
  // Strip commit: both members clear, the clearer bumps the shared epoch
  // once — crossing the wrap, which forces the one real sweep.
  a.clear_stamps();
  b.clear_stamps();
  EXPECT_EQ(a.shared_index()->sweeps(), sweeps0 + 1);

  // Post-wrap stamps are exact: stale pre-wrap residue can't alias.
  a.checkpoint();
  b.checkpoint();
  a.write(3, 50, 30);   // valid at trip 5
  b.write(3, 50, 300);
  a.write(7, 60, 70);   // overshot
  b.write(7, 60, 700);
  EXPECT_EQ(a.undo_beyond(5) + b.undo_beyond(5), 2);
  EXPECT_EQ(a.get(50), 30);
  EXPECT_EQ(b.get(50), 300);
  EXPECT_EQ(a.get(60), -1);
  EXPECT_EQ(b.get(60), -2);
  EXPECT_EQ(a.get(100), 1);  // pre-wrap strip committed, not undone
  EXPECT_EQ(b.get(100), 2);
}

TEST(TxnChooseBackup, CrossoverAndClamps) {
  const std::size_t n = 1 << 16;
  // Far below the default theta (1/6): hash.
  const BackupDecision sparse = choose_backup(n, n / 100);
  EXPECT_EQ(sparse.kind, BackupKind::kHash);
  EXPECT_NEAR(sparse.density, static_cast<double>(n / 100) / n, 1e-12);
  // Above it: dense.
  const BackupDecision dense = choose_backup(n, n / 2);
  EXPECT_EQ(dense.kind, BackupKind::kDense);
  // Touch counts are write tallies and may exceed n: still dense, density
  // just saturates past 1.
  EXPECT_EQ(choose_backup(n, 4 * n).kind, BackupKind::kDense);
  // Empty loop: nothing touched -> hash (a zero-entry table is free).
  EXPECT_EQ(choose_backup(n, 0).kind, BackupKind::kHash);

  // Measured-cost corrections move theta but never out of [1/64, 1/2].
  const BackupDecision cheap_copy =
      choose_backup(n, n / 4, /*measured_tb=*/1.0, /*measured_ta=*/1e9);
  EXPECT_GE(cheap_copy.theta, 1.0 / 64.0);
  const BackupDecision dear_copy =
      choose_backup(n, n / 4, /*measured_tb=*/1e9, /*measured_ta=*/1.0);
  EXPECT_LE(dear_copy.theta, 0.5);
  EXPECT_GE(sparse.theta, 1.0 / 64.0);
  EXPECT_LE(sparse.theta, 0.5);
}

TEST(TxnSteadyState, TwoArrayStripRetriesAllocateNothing) {
  // The multi-array version of StripRetries.SteadyStateAllocatesNothing:
  // the strip driver keeps ONE SpecTransaction across strips, so a warm
  // 2-array loop must run every later strip with zero arena traffic, zero
  // O(n) sweeps, and a constant budget-visible footprint.
  ThreadPool pool(4);
  const long n = 64 * 256, strip = 256;
  SpecArray<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                      pool.size(), true);
  SpecArray<double> b(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                      pool.size(), true, a.shared_index());
  SpecTarget* targets[] = {&a, &b};

  auto run_once = [&] {
    return strip_speculative_while(
        pool, n, strip, std::span<SpecTarget* const>(targets, 2),
        [&](long i, unsigned vpn) {
          a.begin_iteration(vpn, i);
          b.begin_iteration(vpn, i);
          a.set(vpn, i, static_cast<std::size_t>(i), 1.0);
          b.set(vpn, i, static_cast<std::size_t>(i), 2.0);
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; });
  };

  // Two warm-up rounds: the second covers a worker that sat out the first
  // and would otherwise take its lazy arena allocation during the pinned
  // run.
  ASSERT_EQ(run_once().strips_failed, 0);
  const StripSpecReport warm = run_once();
  ASSERT_EQ(warm.strips_failed, 0);
  const std::size_t bytes_warm = a.memory_bytes() + b.memory_bytes();
  const UndoStats stats_warm = a.undo_stats();
  const long sweeps_warm = a.shared_index()->sweeps();
  const mem::BudgetSnapshot mem_warm = mem::Budget::process().snapshot();

  const StripSpecReport hot = run_once();
  ASSERT_EQ(hot.strips_failed, 0);
  const UndoStats stats_hot = a.undo_stats();
  const mem::BudgetSnapshot mem_hot = mem::Budget::process().snapshot();

  EXPECT_EQ(a.memory_bytes() + b.memory_bytes(), bytes_warm);
  EXPECT_EQ(a.shared_index()->sweeps(), sweeps_warm);
  EXPECT_EQ(stats_hot.checkpoints - stats_warm.checkpoints, n / strip);
  EXPECT_EQ(stats_hot.resets - stats_warm.resets, n / strip);
  // The process-wide ledger agrees: nothing reached the OS in steady state.
  EXPECT_EQ(mem_hot.slow_allocs, mem_warm.slow_allocs);

  for (long i = 0; i < n; ++i) {
    ASSERT_EQ(a.data()[static_cast<std::size_t>(i)], 1.0) << i;
    ASSERT_EQ(b.data()[static_cast<std::size_t>(i)], 2.0) << i;
  }
}

}  // namespace
}  // namespace wlp
