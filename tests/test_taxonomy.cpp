#include <gtest/gtest.h>

#include "wlp/core/taxonomy.hpp"

namespace wlp {
namespace {

// Table 1, row RI:  monotonic-ind  non-mono-ind  associative  general
//   Overshoot:      NO             YES           NO           NO
//   Parallel:       YES            YES           YES-PP       NO
// Table 1, row RV: overshoot YES everywhere; parallelism unchanged.

TEST(Taxonomy, Table1RemainderInvariantRow) {
  const auto ri = TerminatorClass::kRemainderInvariant;
  EXPECT_FALSE(may_overshoot(DispatcherKind::kMonotonicInduction, ri));
  EXPECT_TRUE(may_overshoot(DispatcherKind::kInduction, ri));
  EXPECT_FALSE(may_overshoot(DispatcherKind::kAssociative, ri));
  EXPECT_FALSE(may_overshoot(DispatcherKind::kGeneral, ri));
}

TEST(Taxonomy, Table1RemainderVariantRow) {
  const auto rv = TerminatorClass::kRemainderVariant;
  EXPECT_TRUE(may_overshoot(DispatcherKind::kMonotonicInduction, rv));
  EXPECT_TRUE(may_overshoot(DispatcherKind::kInduction, rv));
  EXPECT_TRUE(may_overshoot(DispatcherKind::kAssociative, rv));
  EXPECT_TRUE(may_overshoot(DispatcherKind::kGeneral, rv));
}

TEST(Taxonomy, DispatcherParallelismColumn) {
  EXPECT_EQ(dispatcher_parallelism(DispatcherKind::kMonotonicInduction),
            DispatcherParallelism::kFull);
  EXPECT_EQ(dispatcher_parallelism(DispatcherKind::kInduction),
            DispatcherParallelism::kFull);
  EXPECT_EQ(dispatcher_parallelism(DispatcherKind::kAssociative),
            DispatcherParallelism::kPrefix);
  EXPECT_EQ(dispatcher_parallelism(DispatcherKind::kGeneral),
            DispatcherParallelism::kSequential);
}

TEST(Taxonomy, ParallelismIndependentOfTerminator) {
  for (auto d : {DispatcherKind::kMonotonicInduction, DispatcherKind::kInduction,
                 DispatcherKind::kAssociative, DispatcherKind::kGeneral}) {
    EXPECT_EQ(classify(d, TerminatorClass::kRemainderInvariant).parallelism,
              classify(d, TerminatorClass::kRemainderVariant).parallelism);
  }
}

TEST(Taxonomy, StringsMatchPaperVocabulary) {
  EXPECT_EQ(to_string(TerminatorClass::kRemainderInvariant), "RI");
  EXPECT_EQ(to_string(TerminatorClass::kRemainderVariant), "RV");
  EXPECT_EQ(to_string(DispatcherParallelism::kPrefix), "YES-PP");
  EXPECT_EQ(to_string(DispatcherParallelism::kSequential), "NO");
  EXPECT_EQ(to_string(DispatcherKind::kGeneral), "general-recurrence");
}

}  // namespace
}  // namespace wlp
