#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "wlp/core/sliding_window.hpp"

namespace wlp {
namespace {

TEST(SlidingWindow, CoversRangeAndRecoversTrip) {
  ThreadPool pool(4);
  const long u = 3000, exit_at = 2100;
  std::vector<std::atomic<int>> hit(u);
  WindowOptions opts;
  opts.window = 32;
  const WindowReport wr = sliding_window_while(
      pool, u,
      [&](long i, unsigned) {
        hit[static_cast<std::size_t>(i)].fetch_add(1);
        return i == exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(wr.exec.method, Method::kSlidingWindow);
  EXPECT_EQ(wr.exec.trip, exit_at);
  for (long i = 0; i < exit_at; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)].load(), 1) << i;
  for (long i = 0; i < u; ++i) ASSERT_LE(hit[static_cast<std::size_t>(i)].load(), 1);
}

TEST(SlidingWindow, SpanNeverExceedsWindow) {
  ThreadPool pool(8);
  WindowOptions opts;
  opts.window = 16;
  opts.max_window = 16;  // fixed window: the h - l <= w invariant is strict
  const WindowReport wr = sliding_window_while(
      pool, 5000, [](long, unsigned) { return IterAction::kContinue; }, opts);
  EXPECT_EQ(wr.exec.trip, 5000);
  EXPECT_LE(wr.max_span, 16);
}

TEST(SlidingWindow, BudgetShrinksWindow) {
  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 1024;
  opts.min_window = 2;
  opts.bytes_per_iteration = 1024;   // each in-flight iteration pins 1 KiB
  opts.memory_budget = 8 * 1024;     // only 8 iterations' worth allowed
  const WindowReport wr = sliding_window_while(
      pool, 2000, [](long, unsigned) { return IterAction::kContinue; }, opts);
  EXPECT_EQ(wr.exec.trip, 2000);
  // The controller must have pulled the window well below the initial 1024.
  EXPECT_LT(wr.final_window, 64);
  EXPECT_LE(wr.peak_stamp_bytes, opts.bytes_per_iteration * 1024);
}

TEST(SlidingWindow, BudgetGrowsWindowWhenComfortable) {
  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 4;
  opts.max_window = 4096;
  opts.bytes_per_iteration = 1;   // practically free
  opts.memory_budget = 1 << 20;
  const WindowReport wr = sliding_window_while(
      pool, 3000, [](long, unsigned) { return IterAction::kContinue; }, opts);
  EXPECT_GT(wr.final_window, 4);
}

TEST(SlidingWindow, GuidedClaimsKeepSpanBoundAndCutIssueLocking) {
  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 64;
  opts.max_window = 64;  // fixed window: h - l <= 64 must hold exactly
  opts.sched = Sched::kGuided;
  const long u = 20000;
  std::vector<std::atomic<int>> hit(u);
  const WindowReport wr = sliding_window_while(
      pool, u,
      [&](long i, unsigned) {
        hit[static_cast<std::size_t>(i)].fetch_add(1);
        return IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(wr.exec.trip, u);
  EXPECT_LE(wr.max_span, 64);
  for (long i = 0; i < u; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)].load(), 1) << i;
  // One-at-a-time issue would take u lock round-trips; guided chunking
  // must need far fewer.
  EXPECT_GT(wr.claims, 0);
  EXPECT_LT(wr.claims, u / 4);
}

TEST(SlidingWindow, GuidedRecoversExactTrip) {
  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 32;
  opts.sched = Sched::kGuided;
  const long u = 5000, exit_at = 3111;
  std::vector<std::atomic<int>> hit(u);
  const WindowReport wr = sliding_window_while(
      pool, u,
      [&](long i, unsigned) {
        hit[static_cast<std::size_t>(i)].fetch_add(1);
        return i == exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(wr.exec.trip, exit_at);
  for (long i = 0; i < exit_at; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)].load(), 1) << i;
  for (long i = 0; i < u; ++i) ASSERT_LE(hit[static_cast<std::size_t>(i)].load(), 1);
  // Overshoot stays bounded by the window.
  EXPECT_LE(wr.exec.started, exit_at + opts.window + 1);
}

TEST(SlidingWindow, EmptyRange) {
  ThreadPool pool(4);
  const WindowReport wr = sliding_window_while(
      pool, 0, [](long, unsigned) { return IterAction::kExit; }, {});
  EXPECT_EQ(wr.exec.trip, 0);
  EXPECT_EQ(wr.exec.started, 0);
}

// ---- speculative composition (Section 8.2 scheduler + Section 5 PD test) ---

TEST(SlidingWindowSpeculative, IndependentLoopPassesAndUndoesOvershoot) {
  ThreadPool pool(4);
  const long n = 2000, exit_at = 1500;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), -1.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};
  WindowOptions opts;
  opts.window = 64;

  const WindowReport wr = sliding_window_speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        const auto idx = static_cast<std::size_t>((i * 7901) % n);
        arr.set(vpn, i, idx, static_cast<double>(i));
        return IterAction::kContinue;
      },
      [&] { return exit_at; }, opts);

  EXPECT_EQ(wr.exec.method, Method::kSlidingWindow);
  EXPECT_TRUE(wr.exec.pd_tested);
  EXPECT_TRUE(wr.exec.pd_passed);
  EXPECT_FALSE(wr.exec.reexecuted_sequentially);
  EXPECT_EQ(wr.exec.trip, exit_at);
  EXPECT_EQ(wr.exec.shadow_marks, exit_at);  // one write per valid iteration
  EXPECT_LE(wr.max_span, opts.window);       // stamp memory stayed bounded

  std::vector<double> expect(static_cast<std::size_t>(n), -1.0);
  for (long i = 0; i < exit_at; ++i)
    expect[static_cast<std::size_t>((i * 7901) % n)] = static_cast<double>(i);
  EXPECT_EQ(arr.data(), expect);
}

TEST(SlidingWindowSpeculative, FlowDependenceFailsAndFallsBack) {
  ThreadPool pool(4);
  const long n = 400;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const WindowReport wr = sliding_window_speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i == 0) return IterAction::kContinue;
        const double prev = arr.get(vpn, static_cast<std::size_t>(i - 1));
        arr.set(vpn, i, static_cast<std::size_t>(i), prev + 1.0);
        return IterAction::kContinue;
      },
      [&] {
        auto& d = arr.data();
        for (long i = 1; i < n; ++i)
          d[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i - 1)] + 1.0;
        return n;
      });

  EXPECT_FALSE(wr.exec.pd_passed);
  EXPECT_TRUE(wr.exec.reexecuted_sequentially);
  EXPECT_EQ(wr.exec.trip, n);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], static_cast<double>(i)) << i;
}

TEST(SlidingWindowSpeculative, RetriesReuseTargetsCheaply) {
  // Repeated window-speculations against one SpecArray: the epoch-based
  // reset_marks() must keep every retry correct (no mark bleed-through).
  ThreadPool pool(4);
  const long n = 300;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  for (int round = 0; round < 5; ++round) {
    const WindowReport wr = sliding_window_speculative_while(
        pool, n, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i),
                  static_cast<double>(round));
          return IterAction::kContinue;
        },
        [&] { return n; });
    ASSERT_TRUE(wr.exec.pd_passed) << "round " << round;
    ASSERT_FALSE(wr.exec.reexecuted_sequentially) << "round " << round;
    ASSERT_EQ(wr.exec.shadow_marks, n) << "round " << round;
  }
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], 4.0);
}

TEST(SlidingWindow, WindowOfOneIsSequentialOrder) {
  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 1;
  opts.min_window = 1;
  opts.max_window = 1;
  std::vector<long> order;
  const WindowReport wr = sliding_window_while(
      pool, 200,
      [&](long i, unsigned) {
        order.push_back(i);  // window 1 fully serializes iterations
        return IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(wr.exec.trip, 200);
  ASSERT_EQ(order.size(), 200u);
  for (long i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_LE(wr.max_span, 1);
}

}  // namespace
}  // namespace wlp
