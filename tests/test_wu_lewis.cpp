#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "wlp/core/wu_lewis.hpp"

namespace wlp {
namespace {

struct Chain {
  std::vector<long> next;
  explicit Chain(long n) : next(static_cast<std::size_t>(n)) {
    std::iota(next.begin(), next.end(), 1);
    if (n > 0) next.back() = -1;
  }
  auto next_fn() const {
    return [this](long c) { return next[static_cast<std::size_t>(c)]; };
  }
  static bool is_end(long c) { return c < 0; }
};

TEST(WuLewisDistribute, TraversesOnceThenDoall) {
  ThreadPool pool(4);
  Chain chain(600);
  std::vector<std::atomic<int>> hit(600);
  const ExecReport r = while_wu_lewis_distribute(
      pool, 0L, chain.next_fn(), &Chain::is_end,
      [&](long, long cursor, unsigned) {
        hit[static_cast<std::size_t>(cursor)].fetch_add(1);
        return IterAction::kContinue;
      },
      10000);
  EXPECT_EQ(r.method, Method::kWuLewisDistribute);
  EXPECT_EQ(r.trip, 600);
  EXPECT_EQ(r.dispatcher_steps, 600);  // the serial prologue's cost
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(WuLewisDistribute, RVExitInDoallPhase) {
  ThreadPool pool(4);
  Chain chain(600);
  const ExecReport r = while_wu_lewis_distribute(
      pool, 0L, chain.next_fn(), &Chain::is_end,
      [&](long i, long, unsigned) {
        return i == 123 ? IterAction::kExit : IterAction::kContinue;
      },
      10000);
  EXPECT_EQ(r.trip, 123);
  // The prologue still walked the entire list: the superfluous-values cost.
  EXPECT_EQ(r.dispatcher_steps, 600);
}

TEST(WuLewisDistribute, RespectsUpperBound) {
  ThreadPool pool(4);
  Chain chain(600);
  const ExecReport r = while_wu_lewis_distribute(
      pool, 0L, chain.next_fn(), &Chain::is_end,
      [](long, long, unsigned) { return IterAction::kContinue; }, 50);
  EXPECT_EQ(r.trip, 50);
}

TEST(WuLewisDoacross, NeverOvershootsAndVisitsInOrderHandoff) {
  ThreadPool pool(4);
  Chain chain(400);
  std::vector<std::atomic<int>> hit(400);
  const ExecReport r = while_wu_lewis_doacross(
      pool, 0L, chain.next_fn(), &Chain::is_end,
      [&](long i, long cursor, unsigned) {
        EXPECT_EQ(i, cursor);
        hit[static_cast<std::size_t>(cursor)].fetch_add(1);
      },
      1000);
  EXPECT_EQ(r.method, Method::kWuLewisDoacross);
  EXPECT_EQ(r.trip, 400);
  EXPECT_EQ(r.overshot, 0);
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(WuLewisDoacross, EmptyList) {
  ThreadPool pool(4);
  Chain chain(0);
  long head = -1;
  const ExecReport r = while_wu_lewis_doacross(
      pool, head, chain.next_fn(), &Chain::is_end, [](long, long, unsigned) {},
      100);
  EXPECT_EQ(r.trip, 0);
}

}  // namespace
}  // namespace wlp
