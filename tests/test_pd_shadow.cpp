#include <gtest/gtest.h>

#include "wlp/core/shadow.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

constexpr long kBig = 1L << 40;  // trip filter that keeps every mark

// --- the paper's Figure 5 loops ---------------------------------------------

TEST(PDShadow, Fig5a_ReadThenWriteSameIterationIsParallel) {
  // do i: A[i] = 2*A[i]  — loop-independent dependence only.
  PDShadow shadow(100);
  PDAccessor acc(shadow, 100);
  for (long i = 0; i < 100; ++i) {
    acc.begin_iteration(i);
    acc.on_read(static_cast<std::size_t>(i));   // exposed (read before write)
    acc.on_write(static_cast<std::size_t>(i));
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_EQ(v.conflicts, 0);
  EXPECT_EQ(v.multi_written, 0);
  EXPECT_TRUE(v.fully_parallel());
}

TEST(PDShadow, Fig5b_PrivatizableTemporary) {
  // tmp = A[2i]; A[2i] = A[2i-1]; A[2i-1] = tmp — with tmp as a shared
  // location (slot 0): written then read each iteration -> reads are NOT
  // exposed, but the slot is written by many iterations (output deps).
  PDShadow shadow(1);
  PDAccessor acc(shadow, 1);
  for (long i = 0; i < 50; ++i) {
    acc.begin_iteration(i);
    acc.on_write(0);  // tmp = ...
    acc.on_read(0);   // ... = tmp  (covered by the same-iteration write)
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_EQ(v.conflicts, 0);
  EXPECT_EQ(v.multi_written, 1);
  EXPECT_FALSE(v.fully_parallel());
  EXPECT_TRUE(v.parallel_with_privatization());
}

TEST(PDShadow, Fig5c_CrossIterationFlowFails) {
  // A[i] = A[i] + A[i-1]: iteration i exposed-reads A[i-1], written by i-1.
  PDShadow shadow(100);
  PDAccessor acc(shadow, 100);
  for (long i = 1; i < 100; ++i) {
    acc.begin_iteration(i);
    acc.on_read(static_cast<std::size_t>(i));
    acc.on_read(static_cast<std::size_t>(i - 1));
    acc.on_write(static_cast<std::size_t>(i));
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_GT(v.conflicts, 0);
  EXPECT_FALSE(v.parallel_with_privatization());
}

// --- overshoot filtering (the WHILE-loop extension) -------------------------

TEST(PDShadow, MarksFromOvershotIterationsAreIgnored) {
  PDShadow shadow(10);
  PDAccessor acc(shadow, 10);
  // Valid region (iter < 5): element 0 written once by iteration 2.
  acc.begin_iteration(2);
  acc.on_write(0);
  // Overshoot: iteration 7 exposed-reads and re-writes element 0 — would be
  // both a flow and an output dependence if it counted.
  acc.begin_iteration(7);
  acc.on_read(0);
  acc.on_write(0);

  const PDVerdict full = shadow.analyze_seq(kBig);
  EXPECT_GT(full.conflicts, 0);

  const PDVerdict filtered = shadow.analyze_seq(5);
  EXPECT_EQ(filtered.conflicts, 0);
  EXPECT_EQ(filtered.multi_written, 0);
  EXPECT_EQ(filtered.written_elements, 1);
  EXPECT_TRUE(filtered.fully_parallel());
}

TEST(PDShadow, TwoSmallestWritersSurviveFiltering) {
  PDShadow shadow(1);
  shadow.mark_write(9, 0);
  shadow.mark_write(4, 0);
  shadow.mark_write(6, 0);
  shadow.mark_write(2, 0);
  EXPECT_EQ(shadow.first_writer(0), 2);
  EXPECT_EQ(shadow.second_writer(0), 4);
  // trip = 5: writers {2, 4} -> output dependence among valid iterations.
  EXPECT_EQ(shadow.analyze_seq(5).multi_written, 1);
  // trip = 3: only writer 2 counts.
  EXPECT_EQ(shadow.analyze_seq(3).multi_written, 0);
  EXPECT_EQ(shadow.analyze_seq(3).written_elements, 1);
}

TEST(PDShadow, ConflictNeedsDistinctIterations) {
  PDShadow shadow(1);
  // Writer 3, exposed reader 3 (same iteration), another reader 8 (overshot).
  shadow.mark_write(3, 0);
  shadow.mark_exposed_read(3, 0);
  shadow.mark_exposed_read(8, 0);
  EXPECT_EQ(shadow.analyze_seq(5).conflicts, 0);  // reader 8 filtered
  EXPECT_GT(shadow.analyze_seq(9).conflicts, 0);  // reader 8 counts: 8 != 3
}

TEST(PDShadow, TwoReadersOneWriterConflicts) {
  PDShadow shadow(1);
  shadow.mark_write(3, 0);
  shadow.mark_exposed_read(3, 0);
  shadow.mark_exposed_read(4, 0);
  EXPECT_GT(shadow.analyze_seq(kBig).conflicts, 0);
}

TEST(PDShadow, DuplicateMarksFromOneIterationCollapse) {
  PDShadow shadow(1);
  for (int k = 0; k < 10; ++k) shadow.mark_write(5, 0);
  EXPECT_EQ(shadow.first_writer(0), 5);
  EXPECT_EQ(shadow.second_writer(0), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).multi_written, 0);
}

TEST(PDShadow, ResetClearsEverything) {
  PDShadow shadow(4);
  shadow.mark_write(1, 2);
  shadow.mark_exposed_read(3, 2);
  shadow.reset();
  EXPECT_EQ(shadow.first_writer(2), -1);
  EXPECT_EQ(shadow.first_exposed_reader(2), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).written_elements, 0);
}

TEST(PDShadow, ParallelAnalysisMatchesSequential) {
  ThreadPool pool(4);
  PDShadow shadow(5000);
  Xoshiro256 rng(31);
  for (int k = 0; k < 20000; ++k) {
    const auto idx = static_cast<std::size_t>(rng.below(5000));
    const long iter = static_cast<long>(rng.below(1000));
    if (rng.chance(0.5))
      shadow.mark_write(iter, idx);
    else
      shadow.mark_exposed_read(iter, idx);
  }
  for (long trip : {0L, 100L, 500L, 1000L}) {
    const PDVerdict s = shadow.analyze_seq(trip);
    const PDVerdict p = shadow.analyze(pool, trip);
    EXPECT_EQ(s.written_elements, p.written_elements);
    EXPECT_EQ(s.multi_written, p.multi_written);
    EXPECT_EQ(s.exposed_read_elements, p.exposed_read_elements);
    EXPECT_EQ(s.conflicts, p.conflicts);
  }
}

TEST(PDShadow, ConcurrentMarkingKeepsTwoSmallest) {
  ThreadPool pool(8);
  PDShadow shadow(1);
  doall(pool, 0, 1000, [&](long i, unsigned) { shadow.mark_write(i, 0); });
  EXPECT_EQ(shadow.first_writer(0), 0);
  EXPECT_EQ(shadow.second_writer(0), 1);
}

TEST(PDAccessor, ExposureResetsPerIteration) {
  PDShadow shadow(2);
  PDAccessor acc(shadow, 2);
  acc.begin_iteration(0);
  acc.on_write(1);
  acc.on_read(1);  // covered
  acc.begin_iteration(1);
  acc.on_read(1);  // exposed: iteration 1 did not write slot 1 yet
  EXPECT_EQ(shadow.first_exposed_reader(1), 1);
}

}  // namespace
}  // namespace wlp
