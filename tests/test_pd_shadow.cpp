#include <gtest/gtest.h>

#include "wlp/core/shadow.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

constexpr long kBig = 1L << 40;  // trip filter that keeps every mark

// ---- semantics shared by both marking policies ------------------------------
//
// Every test here runs against PDSharedShadow (atomic cells + striped locks)
// and PDPrivateShadow (per-worker plain-store segments): the verdicts — the
// PD test's observable behavior — must be identical.

template <class Shadow>
class PDShadowPolicy : public ::testing::Test {};

using ShadowPolicies = ::testing::Types<PDSharedShadow, PDPrivateShadow>;
TYPED_TEST_SUITE(PDShadowPolicy, ShadowPolicies);

// --- the paper's Figure 5 loops ---------------------------------------------

TYPED_TEST(PDShadowPolicy, Fig5a_ReadThenWriteSameIterationIsParallel) {
  // do i: A[i] = 2*A[i]  — loop-independent dependence only.
  TypeParam shadow(100);
  PDAccessorT<TypeParam> acc(shadow, 100);
  for (long i = 0; i < 100; ++i) {
    acc.begin_iteration(i);
    acc.on_read(static_cast<std::size_t>(i));   // exposed (read before write)
    acc.on_write(static_cast<std::size_t>(i));
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_EQ(v.conflicts, 0);
  EXPECT_EQ(v.multi_written, 0);
  EXPECT_TRUE(v.fully_parallel());
}

TYPED_TEST(PDShadowPolicy, Fig5b_PrivatizableTemporary) {
  // tmp = A[2i]; A[2i] = A[2i-1]; A[2i-1] = tmp — with tmp as a shared
  // location (slot 0): written then read each iteration -> reads are NOT
  // exposed, but the slot is written by many iterations (output deps).
  TypeParam shadow(1);
  PDAccessorT<TypeParam> acc(shadow, 1);
  for (long i = 0; i < 50; ++i) {
    acc.begin_iteration(i);
    acc.on_write(0);  // tmp = ...
    acc.on_read(0);   // ... = tmp  (covered by the same-iteration write)
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_EQ(v.conflicts, 0);
  EXPECT_EQ(v.multi_written, 1);
  EXPECT_FALSE(v.fully_parallel());
  EXPECT_TRUE(v.parallel_with_privatization());
}

TYPED_TEST(PDShadowPolicy, Fig5c_CrossIterationFlowFails) {
  // A[i] = A[i] + A[i-1]: iteration i exposed-reads A[i-1], written by i-1.
  TypeParam shadow(100);
  PDAccessorT<TypeParam> acc(shadow, 100);
  for (long i = 1; i < 100; ++i) {
    acc.begin_iteration(i);
    acc.on_read(static_cast<std::size_t>(i));
    acc.on_read(static_cast<std::size_t>(i - 1));
    acc.on_write(static_cast<std::size_t>(i));
  }
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_GT(v.conflicts, 0);
  EXPECT_FALSE(v.parallel_with_privatization());
}

// --- overshoot filtering (the WHILE-loop extension) -------------------------

TYPED_TEST(PDShadowPolicy, MarksFromOvershotIterationsAreIgnored) {
  TypeParam shadow(10);
  PDAccessorT<TypeParam> acc(shadow, 10);
  // Valid region (iter < 5): element 0 written once by iteration 2.
  acc.begin_iteration(2);
  acc.on_write(0);
  // Overshoot: iteration 7 exposed-reads and re-writes element 0 — would be
  // both a flow and an output dependence if it counted.
  acc.begin_iteration(7);
  acc.on_read(0);
  acc.on_write(0);

  const PDVerdict full = shadow.analyze_seq(kBig);
  EXPECT_GT(full.conflicts, 0);

  const PDVerdict filtered = shadow.analyze_seq(5);
  EXPECT_EQ(filtered.conflicts, 0);
  EXPECT_EQ(filtered.multi_written, 0);
  EXPECT_EQ(filtered.written_elements, 1);
  EXPECT_TRUE(filtered.fully_parallel());
}

TYPED_TEST(PDShadowPolicy, TwoSmallestWritersSurviveFiltering) {
  TypeParam shadow(1);
  shadow.mark_write(9, 0);
  shadow.mark_write(4, 0);
  shadow.mark_write(6, 0);
  shadow.mark_write(2, 0);
  EXPECT_EQ(shadow.first_writer(0), 2);
  EXPECT_EQ(shadow.second_writer(0), 4);
  // trip = 5: writers {2, 4} -> output dependence among valid iterations.
  EXPECT_EQ(shadow.analyze_seq(5).multi_written, 1);
  // trip = 3: only writer 2 counts.
  EXPECT_EQ(shadow.analyze_seq(3).multi_written, 0);
  EXPECT_EQ(shadow.analyze_seq(3).written_elements, 1);
}

TYPED_TEST(PDShadowPolicy, ConflictNeedsDistinctIterations) {
  TypeParam shadow(1);
  // Writer 3, exposed reader 3 (same iteration), another reader 8 (overshot).
  shadow.mark_write(3, 0);
  shadow.mark_exposed_read(3, 0);
  shadow.mark_exposed_read(8, 0);
  EXPECT_EQ(shadow.analyze_seq(5).conflicts, 0);  // reader 8 filtered
  EXPECT_GT(shadow.analyze_seq(9).conflicts, 0);  // reader 8 counts: 8 != 3
}

TYPED_TEST(PDShadowPolicy, TwoReadersOneWriterConflicts) {
  TypeParam shadow(1);
  shadow.mark_write(3, 0);
  shadow.mark_exposed_read(3, 0);
  shadow.mark_exposed_read(4, 0);
  EXPECT_GT(shadow.analyze_seq(kBig).conflicts, 0);
}

TYPED_TEST(PDShadowPolicy, DuplicateMarksFromOneIterationCollapse) {
  TypeParam shadow(1);
  for (int k = 0; k < 10; ++k) shadow.mark_write(5, 0);
  EXPECT_EQ(shadow.first_writer(0), 5);
  EXPECT_EQ(shadow.second_writer(0), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).multi_written, 0);
}

TYPED_TEST(PDShadowPolicy, ResetClearsEverything) {
  TypeParam shadow(4);
  shadow.mark_write(1, 2);
  shadow.mark_exposed_read(3, 2);
  shadow.reset();
  EXPECT_EQ(shadow.first_writer(2), -1);
  EXPECT_EQ(shadow.first_exposed_reader(2), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).written_elements, 0);
}

TYPED_TEST(PDShadowPolicy, MarksAfterResetStartFresh) {
  TypeParam shadow(2);
  shadow.mark_write(7, 0);
  shadow.mark_exposed_read(9, 1);
  shadow.reset();
  // New marks after the reset must not merge with pre-reset state — epoch
  // staleness (privatized) must behave exactly like the O(n) wipe (shared).
  shadow.mark_write(3, 0);
  EXPECT_EQ(shadow.first_writer(0), 3);
  EXPECT_EQ(shadow.second_writer(0), -1);
  EXPECT_EQ(shadow.first_exposed_reader(1), -1);
  const PDVerdict v = shadow.analyze_seq(kBig);
  EXPECT_EQ(v.written_elements, 1);
  EXPECT_EQ(v.exposed_read_elements, 0);
}

TYPED_TEST(PDShadowPolicy, ParallelAnalysisMatchesSequential) {
  ThreadPool pool(4);
  TypeParam shadow(5000, pool.size());
  Xoshiro256 rng(31);
  for (int k = 0; k < 20000; ++k) {
    const auto idx = static_cast<std::size_t>(rng.below(5000));
    const long iter = static_cast<long>(rng.below(1000));
    if (rng.chance(0.5))
      shadow.mark_write(iter, idx);
    else
      shadow.mark_exposed_read(iter, idx);
  }
  for (long trip : {0L, 100L, 500L, 1000L}) {
    const PDVerdict s = shadow.analyze_seq(trip);
    const PDVerdict p = shadow.analyze(pool, trip);
    EXPECT_EQ(s.written_elements, p.written_elements);
    EXPECT_EQ(s.multi_written, p.multi_written);
    EXPECT_EQ(s.exposed_read_elements, p.exposed_read_elements);
    EXPECT_EQ(s.conflicts, p.conflicts);
  }
}

TYPED_TEST(PDShadowPolicy, AccessorExposureResetsPerIteration) {
  TypeParam shadow(2);
  PDAccessorT<TypeParam> acc(shadow, 2);
  acc.begin_iteration(0);
  acc.on_write(1);
  acc.on_read(1);  // covered
  acc.begin_iteration(1);
  acc.on_read(1);  // exposed: iteration 1 did not write slot 1 yet
  EXPECT_EQ(shadow.first_exposed_reader(1), 1);
}

TYPED_TEST(PDShadowPolicy, AccessorResetInvalidatesLastWriteTable) {
  // Two runs of the "same loop" against one reused (accessor, shadow) pair.
  // Without the generation stamp the second run's read of slot 0 at
  // iteration 4 would be suppressed by the FIRST run's write stamp — hiding
  // a genuine exposed read.
  TypeParam shadow(1);
  PDAccessorT<TypeParam> acc(shadow, 1);
  acc.begin_iteration(4);
  acc.on_write(0);

  shadow.reset();
  acc.reset();

  acc.begin_iteration(4);
  acc.on_read(0);  // nothing written this run: exposed
  EXPECT_EQ(shadow.first_exposed_reader(0), 4);
}

TYPED_TEST(PDShadowPolicy, AccessorCountsMarks) {
  TypeParam shadow(8);
  PDAccessorT<TypeParam> acc(shadow, 8);
  acc.begin_iteration(0);
  acc.on_write(3);  // mark
  acc.on_read(3);   // covered: no mark
  acc.on_read(4);   // mark
  EXPECT_EQ(acc.marks(), 2);
  acc.reset();
  EXPECT_EQ(acc.marks(), 0);
}

// ---- shared-policy specifics ------------------------------------------------

TEST(PDSharedShadow, ConcurrentMarkingKeepsTwoSmallest) {
  ThreadPool pool(8);
  PDSharedShadow shadow(1);
  doall(pool, 0, 1000, [&](long i, unsigned) { shadow.mark_write(i, 0); });
  EXPECT_EQ(shadow.first_writer(0), 0);
  EXPECT_EQ(shadow.second_writer(0), 1);
}

TEST(PDSharedShadow, MonotoneHiFastPathStaysExact) {
  // In-order marking arms the documented early exit (lo and hi full, iter >
  // hi skips the lock); a later out-of-order smaller iteration must still
  // displace correctly.
  PDSharedShadow shadow(1);
  for (long i = 10; i < 200; ++i) shadow.mark_write(i, 0);  // fast path for i>11
  EXPECT_EQ(shadow.first_writer(0), 10);
  EXPECT_EQ(shadow.second_writer(0), 11);
  shadow.mark_write(3, 0);  // smaller than both: takes the slow path
  EXPECT_EQ(shadow.first_writer(0), 3);
  EXPECT_EQ(shadow.second_writer(0), 10);
  shadow.mark_write(7, 0);  // between the two
  EXPECT_EQ(shadow.first_writer(0), 3);
  EXPECT_EQ(shadow.second_writer(0), 7);
}

TEST(PDSharedShadow, ResetPaysOneSweepPerCall) {
  PDSharedShadow shadow(64);
  for (int k = 0; k < 5; ++k) shadow.reset();
  EXPECT_EQ(shadow.stats().resets, 5);
  EXPECT_EQ(shadow.stats().cell_sweeps, 5);  // the O(n) cost being replaced
}

// ---- privatized-policy specifics --------------------------------------------

TEST(PDPrivateShadow, MergesMarksAcrossWorkerSegments) {
  PDPrivateShadow shadow(2, /*workers=*/4);
  // The two smallest writers of slot 0 live in DIFFERENT segments.
  shadow.mark_write(0u, 9, 0);
  shadow.mark_write(1u, 4, 0);
  shadow.mark_write(2u, 6, 0);
  shadow.mark_write(3u, 2, 0);
  EXPECT_EQ(shadow.first_writer(0), 2);
  EXPECT_EQ(shadow.second_writer(0), 4);
  // Duplicate iteration from two workers collapses in the merge.
  shadow.mark_exposed_read(0u, 5, 1);
  shadow.mark_exposed_read(1u, 5, 1);
  EXPECT_EQ(shadow.first_exposed_reader(1), 5);
  EXPECT_EQ(shadow.second_exposed_reader(1), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).multi_written, 1);
}

TEST(PDPrivateShadow, VerdictMatchesSharedUnderSplitMarking) {
  // The same random mark stream, routed to the shared store and scattered
  // round-robin across the privatized segments, must yield equal verdicts.
  ThreadPool pool(4);
  const std::size_t n = 512;
  PDSharedShadow shared(n);
  PDPrivateShadow priv(n, 4);
  Xoshiro256 rng(77);
  for (int k = 0; k < 5000; ++k) {
    const auto idx = static_cast<std::size_t>(rng.below(n));
    const long iter = static_cast<long>(rng.below(300));
    const unsigned vpn = static_cast<unsigned>(k % 4);
    if (rng.chance(0.5)) {
      shared.mark_write(iter, idx);
      priv.mark_write(vpn, iter, idx);
    } else {
      shared.mark_exposed_read(iter, idx);
      priv.mark_exposed_read(vpn, iter, idx);
    }
  }
  for (long trip : {0L, 50L, 150L, 300L}) {
    const PDVerdict a = shared.analyze(pool, trip);
    const PDVerdict b = priv.analyze(pool, trip);
    EXPECT_EQ(a.written_elements, b.written_elements) << trip;
    EXPECT_EQ(a.multi_written, b.multi_written) << trip;
    EXPECT_EQ(a.exposed_read_elements, b.exposed_read_elements) << trip;
    EXPECT_EQ(a.conflicts, b.conflicts) << trip;
  }
}

TEST(PDPrivateShadow, SegmentsAreLazyAndPooled) {
  PDPrivateShadow shadow(1024, /*workers=*/8);
  EXPECT_EQ(shadow.stats().segment_allocs, 0);  // nothing until first mark
  shadow.mark_write(2u, 1, 0);
  shadow.mark_write(2u, 2, 7);
  EXPECT_EQ(shadow.stats().segment_allocs, 1);  // only vpn 2's segment
  shadow.mark_write(5u, 1, 3);
  EXPECT_EQ(shadow.stats().segment_allocs, 2);
  // Resets reuse the pooled segments: no re-allocation, ever.
  for (int round = 0; round < 100; ++round) {
    shadow.reset();
    shadow.mark_write(2u, round, 0);
    shadow.mark_write(5u, round, 3);
  }
  EXPECT_EQ(shadow.stats().segment_allocs, 2);
  EXPECT_EQ(shadow.stats().cell_sweeps, 0);  // reset never sweeps
  EXPECT_EQ(shadow.stats().resets, 100);
}

TEST(PDPrivateShadow, StaleSegmentFromEarlierEpochIsInvisible) {
  PDPrivateShadow shadow(4, /*workers=*/2);
  shadow.mark_write(0u, 1, 2);
  shadow.mark_write(1u, 3, 2);
  shadow.reset();
  // Only worker 0 marks this epoch; worker 1's segment holds stale cells.
  shadow.mark_write(0u, 8, 2);
  EXPECT_EQ(shadow.first_writer(2), 8);
  EXPECT_EQ(shadow.second_writer(2), -1);
  EXPECT_EQ(shadow.analyze_seq(kBig).multi_written, 0);
}

// ---- the satellite regression: no O(n) cost per retry ----------------------

TEST(PDPrivateShadow, HundredStripRetriesPayNoPerRetryAllocationsOrFills) {
  // Models 100 short strip retries against one pooled (shadow, accessors)
  // set, as the strip/run-twice/window drivers do via reset_marks().  The
  // seed paid: O(n) shadow sweep per retry + O(n) last-write zero-fill per
  // (array, worker, run).  The epoch scheme must pay neither.
  const std::size_t n = 4096;
  const unsigned workers = 4;
  PDPrivateShadow shadow(n, workers);
  std::vector<PDPrivateAccessor> accs;
  for (unsigned w = 0; w < workers; ++w) accs.emplace_back(shadow, n, w);

  for (int strip = 0; strip < 100; ++strip) {
    shadow.reset();
    for (auto& a : accs) a.reset();
    // A short strip touches a handful of elements per worker.
    for (unsigned w = 0; w < workers; ++w) {
      accs[w].begin_iteration(strip * 4 + w);
      accs[w].on_write((static_cast<std::size_t>(strip) * 7 + w) % n);
      accs[w].on_read((static_cast<std::size_t>(strip) * 13 + w) % n);
    }
    const PDVerdict v = shadow.analyze_seq(kBig);
    EXPECT_LE(v.written_elements, static_cast<long>(workers));
  }

  const PDShadowStats st = shadow.stats();
  EXPECT_EQ(st.resets, 100);
  EXPECT_EQ(st.cell_sweeps, 0);                          // no O(n) resets
  EXPECT_EQ(st.segment_allocs, static_cast<long>(workers));  // one-time
  for (auto& a : accs) EXPECT_EQ(a.fills(), 1);          // construction only
}

}  // namespace
}  // namespace wlp
