#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "wlp/sched/parallel_prefix.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

TEST(ParallelScan, MatchesSequentialSum) {
  ThreadPool pool(4);
  std::vector<long> xs(1000);
  std::iota(xs.begin(), xs.end(), 1);
  std::vector<long> expected = xs;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  parallel_inclusive_scan(pool, std::span<long>(xs), 0L,
                          [](long a, long b) { return a + b; });
  EXPECT_EQ(xs, expected);
}

TEST(ParallelScan, EmptyAndSingleton) {
  ThreadPool pool(4);
  std::vector<long> empty;
  parallel_inclusive_scan(pool, std::span<long>(empty), 0L,
                          [](long a, long b) { return a + b; });
  EXPECT_TRUE(empty.empty());

  std::vector<long> one{42};
  parallel_inclusive_scan(pool, std::span<long>(one), 0L,
                          [](long a, long b) { return a + b; });
  EXPECT_EQ(one[0], 42);
}

TEST(ParallelScan, NonCommutativeAssociativeOp) {
  // Affine map composition is associative but NOT commutative; the scan must
  // respect order.  Exact arithmetic modulo 2^64.
  ThreadPool pool(4);
  Xoshiro256 rng(5);
  std::vector<AffineMap<std::uint64_t>> maps(513);
  for (auto& m : maps) m = {rng() | 1, rng()};
  std::vector<AffineMap<std::uint64_t>> expected = maps;
  for (std::size_t i = 1; i < expected.size(); ++i)
    expected[i] = compose(expected[i - 1], maps[i]);

  parallel_inclusive_scan(
      pool, std::span<AffineMap<std::uint64_t>>(maps),
      AffineMap<std::uint64_t>::identity(),
      [](const AffineMap<std::uint64_t>& f, const AffineMap<std::uint64_t>& g) {
        return compose(f, g);
      });
  for (std::size_t i = 0; i < maps.size(); ++i) {
    EXPECT_EQ(maps[i].a, expected[i].a) << i;
    EXPECT_EQ(maps[i].b, expected[i].b) << i;
  }
}

TEST(AffineMap, ComposeAppliesInOrder) {
  const AffineMap<long> f{2, 3};   // x -> 2x+3
  const AffineMap<long> g{5, 7};   // x -> 5x+7
  const AffineMap<long> fg = compose(f, g);  // g(f(x)) = 5(2x+3)+7 = 10x+22
  EXPECT_EQ(fg.a, 10);
  EXPECT_EQ(fg.b, 22);
  EXPECT_EQ(fg(1), 32);
  EXPECT_EQ(g(f(1)), 32);
}

class AffineRecurrenceSizes : public ::testing::TestWithParam<long> {};

TEST_P(AffineRecurrenceSizes, ExactAgainstSequentialEvaluation) {
  ThreadPool pool(4);
  const long n = GetParam();
  const std::uint64_t a = 0x9e3779b97f4a7c15ULL, b = 0x2545F4914F6CDD1DULL;
  const std::uint64_t x0 = 7;
  const auto terms = affine_recurrence_terms(pool, x0, a, b, n);
  ASSERT_EQ(static_cast<long>(terms.size()), n);
  std::uint64_t x = x0;
  for (long i = 0; i < n; ++i) {
    x = a * x + b;
    ASSERT_EQ(terms[static_cast<std::size_t>(i)], x) << "term " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AffineRecurrenceSizes,
                         ::testing::Values(0L, 1L, 2L, 3L, 7L, 64L, 1000L, 4097L));

TEST(AffineRecurrence, VaryingCoefficients) {
  ThreadPool pool(4);
  Xoshiro256 rng(99);
  const long n = 777;
  std::vector<AffineMap<std::uint64_t>> steps(static_cast<std::size_t>(n));
  for (auto& s : steps) s = {rng(), rng()};
  const auto steps_copy = steps;
  const auto terms = affine_recurrence_terms<std::uint64_t>(pool, 13, std::move(steps));
  std::uint64_t x = 13;
  for (long i = 0; i < n; ++i) {
    x = steps_copy[static_cast<std::size_t>(i)](x);
    ASSERT_EQ(terms[static_cast<std::size_t>(i)], x);
  }
}

TEST(AffineRecurrence, MorePoolWorkersThanElements) {
  ThreadPool pool(16);
  const auto terms = affine_recurrence_terms<std::uint64_t>(pool, 1, 3, 1, 5);
  // x: 1 -> 4 -> 13 -> 40 -> 121 -> 364
  const std::vector<std::uint64_t> expected{4, 13, 40, 121, 364};
  EXPECT_EQ(terms, expected);
}

}  // namespace
}  // namespace wlp
