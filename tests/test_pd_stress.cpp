// Concurrency stress for the PD shadow policies, written to run under TSan
// (the CI TSan job includes these suites): concurrent mark_write /
// mark_exposed_read streams, the parallel analyze() merge, and epoch resets
// interleaved across rounds.  Each round's verdict is checked against a
// sequentially-built reference, so the tests catch both races (TSan) and
// lost/duplicated marks (the equality checks).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "wlp/core/shadow.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {
namespace {

struct Mark {
  bool write;
  long iter;
  std::size_t idx;
};

/// Deterministic per-worker mark stream.  The tail marks ascending
/// iterations into one shared cell, which is exactly what arms the
/// monotone-`hi` fast-path early exit in PDSharedShadow::insert once both
/// slots fill — the stress must cover that racy two-load shortcut.
std::vector<Mark> stream_for(unsigned vpn, std::size_t n, int round) {
  std::vector<Mark> ms;
  Xoshiro256 rng(1000 * (vpn + 1) + static_cast<unsigned>(round));
  for (int k = 0; k < 2000; ++k) {
    ms.push_back({rng.chance(0.5), static_cast<long>(rng.below(500)),
                  static_cast<std::size_t>(rng.below(n))});
  }
  for (long i = 0; i < 500; ++i) ms.push_back({true, i, 0});
  return ms;
}

void expect_equal(const PDVerdict& a, const PDVerdict& b, long trip) {
  EXPECT_EQ(a.written_elements, b.written_elements) << "trip " << trip;
  EXPECT_EQ(a.multi_written, b.multi_written) << "trip " << trip;
  EXPECT_EQ(a.exposed_read_elements, b.exposed_read_elements) << "trip " << trip;
  EXPECT_EQ(a.conflicts, b.conflicts) << "trip " << trip;
}

TEST(PDSharedStress, ConcurrentMarkingAnalysisAndResetRounds) {
  ThreadPool pool(8);
  const std::size_t n = 256;
  PDSharedShadow shadow(n, pool.size());

  for (int round = 0; round < 10; ++round) {
    // All workers mark concurrently into the SAME cells (the shared policy
    // allows it), including the ascending same-cell tail that exercises the
    // monotone-hi fast path under contention.
    pool.parallel([&](unsigned vpn) {
      for (const Mark& m : stream_for(vpn, n, round)) {
        if (m.write)
          shadow.mark_write(vpn, m.iter, m.idx);
        else
          shadow.mark_exposed_read(vpn, m.iter, m.idx);
      }
    });

    // Reference: the union of all streams applied single-threaded.
    PDSharedShadow ref(n);
    for (unsigned vpn = 0; vpn < pool.size(); ++vpn)
      for (const Mark& m : stream_for(vpn, n, round)) {
        if (m.write)
          ref.mark_write(m.iter, m.idx);
        else
          ref.mark_exposed_read(m.iter, m.idx);
      }

    for (long trip : {100L, 500L}) {
      expect_equal(shadow.analyze(pool, trip), ref.analyze_seq(trip), trip);
    }
    EXPECT_EQ(shadow.first_writer(0), 0);  // the ascending tail's minimum
    EXPECT_EQ(shadow.second_writer(0), 1);
    shadow.reset();
  }
}

TEST(PDPrivateStress, ConcurrentPerWorkerMarkingAnalysisAndEpochResetRounds) {
  ThreadPool pool(8);
  const std::size_t n = 256;
  PDPrivateShadow shadow(n, pool.size());

  for (int round = 0; round < 10; ++round) {
    // Each worker marks ONLY under its own vpn — the privatized policy's
    // contract — so the plain stores are race-free by segment ownership;
    // TSan verifies that claim, including the lazy first-mark allocation
    // and the lazy stale-cell re-initialization after the epoch bump.
    pool.parallel([&](unsigned vpn) {
      for (const Mark& m : stream_for(vpn, n, round)) {
        if (m.write)
          shadow.mark_write(vpn, m.iter, m.idx);
        else
          shadow.mark_exposed_read(vpn, m.iter, m.idx);
      }
    });

    PDSharedShadow ref(n);
    for (unsigned vpn = 0; vpn < pool.size(); ++vpn)
      for (const Mark& m : stream_for(vpn, n, round)) {
        if (m.write)
          ref.mark_write(m.iter, m.idx);
        else
          ref.mark_exposed_read(m.iter, m.idx);
      }

    for (long trip : {100L, 500L}) {
      expect_equal(shadow.analyze(pool, trip), ref.analyze_seq(trip), trip);
      expect_equal(shadow.analyze_seq(trip), ref.analyze_seq(trip), trip);
    }
    EXPECT_EQ(shadow.first_writer(0), 0);
    EXPECT_EQ(shadow.second_writer(0), 1);
    shadow.reset();  // O(1) epoch bump between rounds
  }

  const PDShadowStats st = shadow.stats();
  EXPECT_EQ(st.cell_sweeps, 0);
  EXPECT_LE(st.segment_allocs, static_cast<long>(pool.size()));
}

TEST(PDPrivateStress, ConcurrentMarkingWithAccessorsMatchesReference) {
  // The full per-worker pipeline the speculative drivers run: accessor
  // exposure filtering feeding vpn-qualified marks, reused across epochs.
  ThreadPool pool(4);
  const std::size_t n = 128;
  PDPrivateShadow shadow(n, pool.size());
  std::vector<PDPrivateAccessor> accs;
  for (unsigned w = 0; w < pool.size(); ++w) accs.emplace_back(shadow, n, w);

  for (int round = 0; round < 20; ++round) {
    shadow.reset();
    for (auto& a : accs) a.reset();

    // Worker w owns iterations i with i % p == w (static cyclic).
    pool.parallel([&](unsigned vpn) {
      PDPrivateAccessor& acc = accs[vpn];
      for (long i = vpn; i < 200; i += static_cast<long>(pool.size())) {
        acc.begin_iteration(i);
        const auto idx = static_cast<std::size_t>((i * 17 + round) % n);
        acc.on_read(idx);       // exposed (no earlier write this iteration)
        acc.on_write(idx);
        acc.on_read(idx);       // covered
      }
    });

    // Same accesses, single-threaded, against the shared policy.
    PDSharedShadow ref(n);
    PDAccessor racc(ref, n);
    for (long i = 0; i < 200; ++i) {
      racc.begin_iteration(i);
      const auto idx = static_cast<std::size_t>((i * 17 + round) % n);
      racc.on_read(idx);
      racc.on_write(idx);
      racc.on_read(idx);
    }

    expect_equal(shadow.analyze(pool, 200), ref.analyze_seq(200), 200);
    long marks = 0;
    for (const auto& a : accs) marks += a.marks();
    EXPECT_EQ(marks, racc.marks());  // 2 per iteration (1 read + 1 write)
    EXPECT_EQ(marks, 400);
  }
  for (const auto& a : accs) EXPECT_EQ(a.fills(), 1);
}

}  // namespace
}  // namespace wlp
