#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(6);
  ASSERT_EQ(pool.size(), 6u);
  std::vector<std::atomic<int>> hits(6);
  pool.parallel([&](unsigned vpn) { hits[vpn].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DefaultConcurrencyAtLeastFour) {
  EXPECT_GE(ThreadPool::default_concurrency(), 4u);
  ThreadPool pool;  // default
  EXPECT_GE(pool.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel([](unsigned vpn) {
        if (vpn == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool must remain usable after the exception.
  std::atomic<int> ran{0};
  pool.parallel([&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, FirstExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallel([](unsigned) { throw std::runtime_error("each worker throws"); });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "each worker throws");
  }
}

TEST(ThreadPool, WorkersSeeDistinctVpns) {
  ThreadPool pool(8);
  PerWorker<unsigned> ids(8, 999);
  pool.parallel([&](unsigned vpn) { ids[vpn] = vpn; });
  std::set<unsigned> seen;
  for (std::size_t i = 0; i < 8; ++i) seen.insert(ids[i]);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int calls = 0;
  pool.parallel([&](unsigned vpn) {
    EXPECT_EQ(vpn, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// Regression: a body that calls parallel() on the same pool used to
// deadlock silently.  The nested launch must run inline — every vpn,
// serially, on the calling thread — and the pool must stay usable.
TEST(ThreadPool, NestedParallelRunsInlineSerially) {
  ThreadPool pool(4);
  std::atomic<long> inner{0};
  pool.parallel([&](unsigned) {
    pool.parallel([&](unsigned) { inner.fetch_add(1); });
  });
  // 4 outer bodies x 4 inline virtual processors each.
  EXPECT_EQ(inner.load(), 16);

  std::atomic<int> after{0};
  pool.parallel([&](unsigned) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, NestedParallelPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel([&](unsigned vpn) {
    if (vpn == 1)
      pool.parallel([](unsigned inner_vpn) {
        if (inner_vpn == 2) throw std::runtime_error("nested boom");
      });
  }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel([&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, DeeplyNestedParallelStillInline) {
  ThreadPool pool(2);
  std::atomic<long> leaf{0};
  pool.parallel([&](unsigned) {
    pool.parallel([&](unsigned) {
      pool.parallel([&](unsigned) { leaf.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf.load(), 2 * 2 * 2);
}

// A body whose shares rendezvous with each other (DOACROSS and the sliding
// window do this via flags/condvars) requires every share to end up on a
// live thread.  With share stealing this holds because the doorbell wake is
// never skipped while a share is unclaimed; a regression here shows up as a
// hang.
TEST(ThreadPool, BodyRendezvousAcrossShares) {
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<unsigned> arrived{0};
    pool.parallel([&](unsigned) {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
    });
    ASSERT_EQ(arrived.load(), 4u);
  }
}

// Hammer the barrier: a lost wakeup or an epoch/generation bug shows up as
// a hang (the test times out) or a miscount.
TEST(ThreadPool, StressTenThousandEmptyLaunches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  const int kLaunches = 10000;
  for (int i = 0; i < kLaunches; ++i)
    pool.parallel([&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 4L * kLaunches);
}

TEST(ThreadPool, StatsCountLaunchesAndWakeups) {
  ThreadPool pool(4);
  pool.reset_stats();
  const int kLaunches = 100;
  for (int i = 0; i < kLaunches; ++i) pool.parallel([](unsigned) {});
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.launches, static_cast<std::uint64_t>(kLaunches));
  EXPECT_EQ(s.inline_launches, 0u);
  // The caller records exactly one join wait per launch; each helper
  // records at most one wakeup per launch but may sleep through launches
  // the caller absorbed entirely by stealing their shares.
  EXPECT_GE(s.spin_wakeups + s.park_wakeups,
            static_cast<std::uint64_t>(kLaunches));
  EXPECT_LE(s.spin_wakeups + s.park_wakeups,
            static_cast<std::uint64_t>(kLaunches) * 4);
  // Every share ran exactly once: caller steals + helper shares = 3/launch.
  EXPECT_LE(s.stolen_shares, static_cast<std::uint64_t>(kLaunches) * 3);

  pool.reset_stats();
  const PoolStats z = pool.stats();
  EXPECT_EQ(z.launches, 0u);
  EXPECT_EQ(z.spin_wakeups + z.park_wakeups, 0u);
}

TEST(ThreadPool, StatsCountInlineLaunches) {
  ThreadPool pool(1);  // size-1 pools always run inline
  pool.reset_stats();
  pool.parallel([](unsigned) {});
  ThreadPool nested(4);
  nested.reset_stats();
  nested.parallel([&](unsigned vpn) {
    if (vpn == 0) nested.parallel([](unsigned) {});
  });
  EXPECT_EQ(pool.stats().inline_launches, 1u);
  EXPECT_EQ(nested.stats().launches, 1u);
  EXPECT_EQ(nested.stats().inline_launches, 1u);
}

// The JobRef job slot must not require a copyable callable and must not
// allocate: run a launch whose capture block is large enough that a
// std::function would have heap-allocated (no way to assert the allocation
// away portably, but the move-only capture would not even compile against a
// std::function-based parallel()).
TEST(ThreadPool, MoveOnlyCaptureAndLargeCapture) {
  ThreadPool pool(4);
  auto big = std::make_unique<std::array<long, 64>>();
  big->fill(7);
  std::atomic<long> sum{0};
  pool.parallel([&sum, owned = std::move(big), pad = std::array<long, 32>{}](
                    unsigned vpn) {
    (void)pad;
    sum.fetch_add((*owned)[vpn]);
  });
  EXPECT_EQ(sum.load(), 4 * 7);
}

}  // namespace
}  // namespace wlp
