#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(6);
  ASSERT_EQ(pool.size(), 6u);
  std::vector<std::atomic<int>> hits(6);
  pool.parallel([&](unsigned vpn) { hits[vpn].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DefaultConcurrencyAtLeastFour) {
  EXPECT_GE(ThreadPool::default_concurrency(), 4u);
  ThreadPool pool;  // default
  EXPECT_GE(pool.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel([](unsigned vpn) {
        if (vpn == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool must remain usable after the exception.
  std::atomic<int> ran{0};
  pool.parallel([&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, FirstExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallel([](unsigned) { throw std::runtime_error("each worker throws"); });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "each worker throws");
  }
}

TEST(ThreadPool, WorkersSeeDistinctVpns) {
  ThreadPool pool(8);
  PerWorker<unsigned> ids(8, 999);
  pool.parallel([&](unsigned vpn) { ids[vpn] = vpn; });
  std::set<unsigned> seen;
  for (std::size_t i = 0; i < 8; ++i) seen.insert(ids[i]);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int calls = 0;
  pool.parallel([&](unsigned vpn) {
    EXPECT_EQ(vpn, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace wlp
