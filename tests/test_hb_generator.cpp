#include <gtest/gtest.h>

#include <cmath>

#include "wlp/workloads/hb_generator.hpp"

namespace wlp::workloads {
namespace {

void expect_diag_dominant(const SparseMatrix& m) {
  for (std::int32_t r = 0; r < m.rows(); ++r) {
    double off = 0;
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    double diag = 0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r)
        diag = std::abs(vals[k]);
      else
        off += std::abs(vals[k]);
    }
    ASSERT_GT(diag, off) << "row " << r;
  }
}

TEST(HBGenerator, Gematt11MatchesPublishedShape) {
  const SparseMatrix m = gen_gematt11();
  const HBInfo info = info_gematt11();
  EXPECT_EQ(m.rows(), info.n);
  EXPECT_EQ(m.cols(), info.n);
  // nnz within 2% of the original's count.
  EXPECT_NEAR(static_cast<double>(m.nnz()), static_cast<double>(info.paper_nnz),
              0.02 * static_cast<double>(info.paper_nnz));
}

TEST(HBGenerator, Orsreg1Is7PointOperator) {
  const SparseMatrix m = gen_orsreg1();
  EXPECT_EQ(m.rows(), 2205);  // 21 * 21 * 5
  // Interior cells have 7 entries; none more.
  long interior7 = 0;
  for (std::int32_t r = 0; r < m.rows(); ++r) {
    ASSERT_LE(m.row_nnz(r), 7);
    ASSERT_GE(m.row_nnz(r), 4);  // corner cells: 3 neighbors + diagonal
    if (m.row_nnz(r) == 7) ++interior7;
  }
  EXPECT_EQ(interior7, (21 - 2) * (21 - 2) * (5 - 2));  // interior cells
  EXPECT_NEAR(static_cast<double>(m.nnz()),
              static_cast<double>(info_orsreg1().paper_nnz),
              0.05 * static_cast<double>(info_orsreg1().paper_nnz));
}

TEST(HBGenerator, Saylr4Shape) {
  const SparseMatrix m = gen_saylr4();
  EXPECT_EQ(m.rows(), 3564);  // 33 * 12 * 9
  EXPECT_NEAR(static_cast<double>(m.nnz()),
              static_cast<double>(info_saylr4().paper_nnz),
              0.05 * static_cast<double>(info_saylr4().paper_nnz));
}

TEST(HBGenerator, AllFourAreDiagonallyDominant) {
  expect_diag_dominant(gen_orsreg1());
  expect_diag_dominant(gen_saylr4());
  expect_diag_dominant(gen_power_flow(300, 2000, 0.02, 7));  // small stand-in
}

TEST(HBGenerator, DeterministicForSeed) {
  const SparseMatrix a = gen_power_flow(200, 1400, 0.02, 5);
  const SparseMatrix b = gen_power_flow(200, 1400, 0.02, 5);
  ASSERT_EQ(a.nnz(), b.nnz());
  const auto ta = a.to_triplets();
  const auto tb = b.to_triplets();
  for (std::size_t k = 0; k < ta.size(); ++k) {
    EXPECT_EQ(ta[k].row, tb[k].row);
    EXPECT_EQ(ta[k].col, tb[k].col);
    EXPECT_EQ(ta[k].value, tb[k].value);
  }
}

TEST(HBGenerator, PowerFlowHasIrregularDegreesGridDoesNot) {
  const SparseMatrix pf = gen_power_flow(500, 3500, 0.02, 9);
  const SparseMatrix grid = gen_grid7(8, 8, 8);
  auto degree_spread = [](const SparseMatrix& m) {
    long max_deg = 0;
    for (std::int32_t r = 0; r < m.rows(); ++r)
      max_deg = std::max<long>(max_deg, m.row_nnz(r));
    return static_cast<double>(max_deg) /
           (static_cast<double>(m.nnz()) / m.rows());
  };
  // Hub rows dominate in the power-flow pattern; the grid is uniform.
  EXPECT_GT(degree_spread(pf), 2.0);
  EXPECT_LT(degree_spread(grid), 1.6);
}

TEST(HBGenerator, GridStructureIsSymmetric) {
  const SparseMatrix g = gen_grid7(5, 4, 3);
  const SparseMatrix gt = g.transpose();
  for (std::int32_t r = 0; r < g.rows(); ++r) {
    const auto cols = g.row_cols(r);
    for (std::int32_t c : cols)
      EXPECT_NE(gt.at(r, c), 0.0) << "structural asymmetry at " << r << "," << c;
  }
}

TEST(HBGenerator, GemattVariantsDiffer) {
  const SparseMatrix a = gen_gematt11();
  const SparseMatrix b = gen_gematt12();
  EXPECT_EQ(a.rows(), b.rows());
  // Same order, different coupling: hub concentration differs.
  long max_a = 0, max_b = 0;
  for (std::int32_t r = 0; r < a.rows(); ++r) {
    max_a = std::max<long>(max_a, a.row_nnz(r));
    max_b = std::max<long>(max_b, b.row_nnz(r));
  }
  EXPECT_NE(max_a, max_b);
}

}  // namespace
}  // namespace wlp::workloads
