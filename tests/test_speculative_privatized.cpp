#include <gtest/gtest.h>

#include <vector>

#include "wlp/core/speculative_privatized.hpp"

namespace wlp {
namespace {

/// Fig. 5(b)-shaped loop: a shared temporary written then read in every
/// iteration (output dependences only).  Strict DOALL speculation would
/// fail; privatization under test must succeed, with copy-out delivering
/// the last valid iteration's value.
TEST(SpeculativePrivatized, OutputDepsPassUnderPrivatization) {
  ThreadPool pool(4);
  const long n = 2000, exit_at = 1500;
  std::vector<double> tmp{0.0};       // the shared temporary (slot 0)
  std::vector<double> out(static_cast<std::size_t>(n), -1.0);

  PrivatizedSpecArray<double> ptmp(tmp, pool.size());
  PrivatizedSpecArray<double> pout(out, pool.size());
  PrivTarget* targets[] = {&ptmp, &pout};

  const ExecReport r = speculative_privatized_while(
      pool, n, std::span<PrivTarget* const>(targets, 2),
      [&](long i, unsigned vpn) {
        ptmp.begin_iteration(vpn, i);
        pout.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        ptmp.set(vpn, 0, static_cast<double>(i) * 2);  // tmp = 2i
        pout.set(vpn, static_cast<std::size_t>(i), ptmp.get(vpn, 0) + 1);
        return IterAction::kContinue;
      },
      [&] { return exit_at; });

  EXPECT_TRUE(r.pd_passed);
  EXPECT_FALSE(r.reexecuted_sequentially);
  EXPECT_FALSE(r.used_checkpoint);  // the original data is the backup
  EXPECT_EQ(r.trip, exit_at);
  // Copy-out: tmp holds the LAST VALID iteration's value.
  EXPECT_EQ(tmp[0], static_cast<double>(exit_at - 1) * 2);
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              i < exit_at ? static_cast<double>(i) * 2 + 1 : -1.0)
        << i;
}

/// A genuine cross-iteration flow dependence (exposed read of another
/// iteration's write) must fail the verdict; the shared data must be
/// untouched and the sequential fallback must run against it.
TEST(SpeculativePrivatized, CrossIterationFlowFailsCleanly) {
  ThreadPool pool(4);
  const long n = 400;
  std::vector<double> acc{1.0};  // running accumulator: a true recurrence

  PrivatizedSpecArray<double> pacc(acc, pool.size());
  PrivTarget* targets[] = {&pacc};

  const ExecReport r = speculative_privatized_while(
      pool, n, std::span<PrivTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        pacc.begin_iteration(vpn, i);
        // acc = acc + 1: exposed read (no same-iteration write precedes it).
        pacc.set(vpn, 0, pacc.get(vpn, 0) + 1.0);
        return IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < n; ++i) acc[0] += 1.0;
        return n;
      });

  EXPECT_FALSE(r.pd_passed);
  EXPECT_TRUE(r.reexecuted_sequentially);
  EXPECT_EQ(acc[0], 1.0 + static_cast<double>(n));  // exact sequential result
}

/// Exceptions abort the speculation; since the shared data was never
/// touched, no restore is needed before the sequential run.
TEST(SpeculativePrivatized, ExceptionFallsBackWithoutRestore) {
  ThreadPool pool(4);
  std::vector<double> data(100, 5.0);
  PrivatizedSpecArray<double> pd(data, pool.size());
  PrivTarget* targets[] = {&pd};

  const ExecReport r = speculative_privatized_while(
      pool, 100, std::span<PrivTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        pd.begin_iteration(vpn, i);
        pd.set(vpn, static_cast<std::size_t>(i), 9.0);
        if (i == 50) throw std::runtime_error("fault");
        return IterAction::kContinue;
      },
      [&] {
        for (auto& v : data) v = 7.0;
        return 100L;
      });

  EXPECT_TRUE(r.reexecuted_sequentially);
  for (double v : data) EXPECT_EQ(v, 7.0);
}

/// Same location written by several iterations, a different location read:
/// pure output dependences over the whole run, validated with privatization
/// even when overshoot writes land beyond the trip.
TEST(SpeculativePrivatized, OvershootWritesFilteredByCopyOut) {
  ThreadPool pool(4);
  const long n = 3000, exit_at = 2000;
  std::vector<double> cell{0.0};
  PrivatizedSpecArray<double> pc(cell, pool.size());
  PrivTarget* targets[] = {&pc};

  const ExecReport r = speculative_privatized_while(
      pool, n, std::span<PrivTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        pc.begin_iteration(vpn, i);
        pc.set(vpn, 0, static_cast<double>(i));  // every iteration writes
        return i == exit_at - 1 ? IterAction::kExitAfter : IterAction::kContinue;
      },
      [&] { return exit_at; });

  EXPECT_TRUE(r.pd_passed);
  EXPECT_EQ(r.trip, exit_at);
  // Overshot iterations wrote privately too; copy-out must pick the largest
  // stamp BELOW the trip.
  EXPECT_EQ(cell[0], static_cast<double>(exit_at - 1));
}

}  // namespace
}  // namespace wlp
