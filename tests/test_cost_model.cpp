#include <gtest/gtest.h>

#include <cmath>

#include "wlp/core/cost_model.hpp"

namespace wlp {
namespace {

TEST(CostModel, IdealTimeFullyParallelDispatcher) {
  const LoopTiming t{800.0, 200.0};
  EXPECT_DOUBLE_EQ(ideal_parallel_time(t, 8, DispatcherParallelism::kFull),
                   1000.0 / 8);
  EXPECT_DOUBLE_EQ(ideal_speedup(t, 8, DispatcherParallelism::kFull), 8.0);
}

TEST(CostModel, IdealTimeSequentialDispatcher) {
  // Tipar = Trem/p + Trec.
  const LoopTiming t{800.0, 200.0};
  EXPECT_DOUBLE_EQ(ideal_parallel_time(t, 8, DispatcherParallelism::kSequential),
                   100.0 + 200.0);
  EXPECT_DOUBLE_EQ(ideal_speedup(t, 8, DispatcherParallelism::kSequential),
                   1000.0 / 300.0);
}

TEST(CostModel, IdealTimePrefixAddsLogTerm) {
  const LoopTiming t{800.0, 200.0};
  const double tp = ideal_parallel_time(t, 8, DispatcherParallelism::kPrefix, 2.0);
  EXPECT_DOUBLE_EQ(tp, 1000.0 / 8 + 2.0 * 3.0);  // log2(8) = 3
}

TEST(CostModel, SequentialDispatcherDominatedLoopHasNoParallelism) {
  // Trem < Trec: the loop essentially evaluates the dispatcher.
  const LoopTiming t{100.0, 900.0};
  const double spid = ideal_speedup(t, 64, DispatcherParallelism::kSequential);
  EXPECT_LT(spid, 1.2);
}

TEST(CostModel, WorstCaseFractions) {
  EXPECT_DOUBLE_EQ(worst_case_fraction(false), 0.25);
  EXPECT_DOUBLE_EQ(worst_case_fraction(true), 0.2);
}

TEST(CostModel, Section7WorstCaseBoundHolds) {
  // Construct the worst case the paper analyzes: Spid ~ p, overheads at
  // their maxima.  Spat must stay at or above the published floor.
  const unsigned p = 8;
  const LoopTiming t{8000.0, 0.0};
  OverheadProfile o;
  o.accesses = 8000;  // every unit of work is an access (maximal bookkeeping)
  o.access_cost = 1.0;
  for (const bool pd : {false, true}) {
    o.pd_test = pd;
    o.needs_undo = true;
    const Prediction pr = predict(t, o, p, DispatcherParallelism::kFull);
    EXPECT_GE(pr.spat, worst_case_fraction(pd) * pr.spid * 0.999)
        << "pd=" << pd;
  }
}

TEST(CostModel, OverheadTermsShapes) {
  OverheadProfile o;
  o.accesses = 1000;
  o.needs_undo = true;
  const OverheadTerms terms = overhead_terms(o, 10, /*spid=*/10.0);
  EXPECT_DOUBLE_EQ(terms.t_b, 100.0);  // a/p
  EXPECT_DOUBLE_EQ(terms.t_a, 100.0);
  EXPECT_DOUBLE_EQ(terms.t_d, 100.0);  // a/Spid

  o.pd_test = true;
  const OverheadTerms pd = overhead_terms(o, 10, 10.0);
  EXPECT_DOUBLE_EQ(pd.t_d, terms.t_d);  // still one bookkeeping op per access
  EXPECT_GT(pd.t_a, terms.t_a);  // post-execution analysis adds to Ta
}

TEST(CostModel, NoOverheadWhenNothingApplied) {
  OverheadProfile o;
  o.accesses = 1000;
  const OverheadTerms terms = overhead_terms(o, 8, 4.0);
  EXPECT_DOUBLE_EQ(terms.total(), 0.0);
}

TEST(CostModel, FailedPDSlowdownScalesInverselyWithP) {
  const LoopTiming t{1000.0, 0.0};
  OverheadProfile o;
  o.pd_test = true;
  const Prediction p4 = predict(t, o, 4, DispatcherParallelism::kFull);
  const Prediction p16 = predict(t, o, 16, DispatcherParallelism::kFull);
  EXPECT_DOUBLE_EQ(p4.failed_slowdown, 5.0 / 4);
  EXPECT_DOUBLE_EQ(p16.failed_slowdown, 5.0 / 16);
}

TEST(CostModel, RecommendationGate) {
  const LoopTiming mostly_serial{10.0, 990.0};
  OverheadProfile o;
  const Prediction bad =
      predict(mostly_serial, o, 8, DispatcherParallelism::kSequential);
  EXPECT_FALSE(bad.recommend);

  const LoopTiming parallel_rich{990.0, 10.0};
  const Prediction good =
      predict(parallel_rich, o, 8, DispatcherParallelism::kSequential);
  EXPECT_TRUE(good.recommend);
  EXPECT_GT(good.spat, 4.0);
}

TEST(BranchStats, GeometricTripEstimate) {
  const BranchStats b{10, 990};
  EXPECT_DOUBLE_EQ(b.exit_probability(), 0.01);
  EXPECT_DOUBLE_EQ(estimate_trip(b), 100.0);
}

TEST(BranchStats, NeverTakenMeansInfiniteEstimate) {
  const BranchStats b{0, 500};
  EXPECT_TRUE(std::isinf(estimate_trip(b)));
}

TEST(BranchStats, EmptyStats) {
  const BranchStats b{0, 0};
  EXPECT_DOUBLE_EQ(b.exit_probability(), 0.0);
}

TEST(ChooseSchedule, ShortTripPicksStaticCyclic) {
  const DoallOptions o = choose_schedule(1 << 20, /*expected_trip=*/6,
                                         /*iter_cost_cv=*/0.0, /*p=*/8);
  EXPECT_EQ(o.sched, Sched::kStaticCyclic);
}

TEST(ChooseSchedule, IrregularBodiesPickFineGrainDynamic) {
  const DoallOptions o = choose_schedule(100000, 100000, /*iter_cost_cv=*/1.5, 8);
  EXPECT_EQ(o.sched, Sched::kDynamic);
  EXPECT_EQ(o.chunk, 1);
}

TEST(ChooseSchedule, EarlyExitAvoidsGuidedOvershoot) {
  // Exit expected at 1% of the bound: guided's first grab (~u/p) would be
  // almost pure overshoot.
  const DoallOptions o = choose_schedule(100000, 1000, 0.0, 8);
  EXPECT_EQ(o.sched, Sched::kDynamic);
  EXPECT_GT(o.chunk, 1);
  EXPECT_LT(o.chunk, 1000);
}

TEST(ChooseSchedule, LongUniformLoopPicksGuided) {
  const DoallOptions o = choose_schedule(100000, /*expected_trip=*/0, 0.0, 8);
  EXPECT_EQ(o.sched, Sched::kGuided);
  EXPECT_GE(o.chunk, 1);
}

TEST(ObservedOverheads, BuildsProfileFromMeasuredMarks) {
  const OverheadProfile o =
      observed_overheads(/*marks_per_iteration=*/2.5, /*expected_trip=*/1000,
                         /*pd_test=*/true, /*needs_undo=*/false, 1.5);
  EXPECT_EQ(o.accesses, 2500);
  EXPECT_DOUBLE_EQ(o.access_cost, 1.5);
  EXPECT_TRUE(o.pd_test);
  EXPECT_FALSE(o.needs_undo);
  // Degenerate inputs clamp to zero instead of going negative.
  EXPECT_EQ(observed_overheads(-1.0, 1000, true, true).accesses, 0);
  EXPECT_EQ(observed_overheads(2.0, -5, true, true).accesses, 0);
}

TEST(ChooseSchedule, GuidedChunkScalesWithTrip) {
  const DoallOptions small = choose_schedule(10000, 10000, 0.0, 4);
  const DoallOptions large = choose_schedule(1000000, 1000000, 0.0, 4);
  EXPECT_EQ(small.sched, Sched::kGuided);
  EXPECT_EQ(large.sched, Sched::kGuided);
  EXPECT_GT(large.chunk, small.chunk);
}

}  // namespace
}  // namespace wlp
