#include <gtest/gtest.h>

#include <cmath>

#include "wlp/core/adaptive.hpp"

namespace wlp {
namespace {

TEST(LoopStatistics, TripEstimateIsTheMean) {
  LoopStatistics st;
  st.record_trip(100);
  st.record_trip(200);
  st.record_trip(300);
  EXPECT_EQ(st.invocations(), 3);
  EXPECT_EQ(st.estimated_trip(), 200);
}

TEST(LoopStatistics, ConfidenceTightWhenStable) {
  LoopStatistics st;
  for (int k = 0; k < 10; ++k) st.record_trip(500);
  EXPECT_DOUBLE_EQ(st.confidence(), 1.0);
  // The Section 8.1 threshold: n'_i = confidence * n_i = 500.
  EXPECT_EQ(st.stamp_threshold().value, 500);
}

TEST(LoopStatistics, ConfidenceDropsWhenVolatile) {
  LoopStatistics st;
  st.record_trip(100);
  st.record_trip(1000);
  EXPECT_LT(st.confidence(), 0.6);
  EXPECT_LT(st.stamp_threshold().value, st.estimated_trip());
}

TEST(LoopStatistics, EmptyIsSafe) {
  LoopStatistics st;
  EXPECT_EQ(st.estimated_trip(), 0);
  EXPECT_DOUBLE_EQ(st.confidence(), 0.0);
  EXPECT_DOUBLE_EQ(st.parallel_probability(), 1.0);  // optimistic default
}

TEST(LoopStatistics, FailureHistoryLowersParallelProbability) {
  LoopStatistics st;
  ExecReport pass;
  pass.pd_tested = true;
  pass.pd_passed = true;
  pass.trip = 100;
  ExecReport fail = pass;
  fail.pd_passed = false;
  fail.reexecuted_sequentially = true;

  for (int k = 0; k < 3; ++k) st.record(pass);
  EXPECT_DOUBLE_EQ(st.parallel_probability(), 1.0);
  st.record(fail);
  EXPECT_DOUBLE_EQ(st.parallel_probability(), 0.75);
}

TEST(LoopStatistics, SpeculationGateFollowsHistory) {
  // A loop with good attainable speedup but a failure-prone history.
  Prediction pred;
  pred.spat = 4.0;
  pred.failed_slowdown = 5.0 / 8.0;

  LoopStatistics healthy;
  ExecReport pass;
  pass.pd_tested = true;
  pass.pd_passed = true;
  healthy.record(pass);
  EXPECT_TRUE(healthy.should_speculate(pred));

  LoopStatistics burned;
  ExecReport fail;
  fail.pd_tested = true;
  fail.pd_passed = false;
  for (int k = 0; k < 10; ++k) burned.record(fail);
  EXPECT_FALSE(burned.should_speculate(pred));
}

TEST(LoopStatistics, MixedHistoryBalancesExpectation) {
  Prediction pred;
  pred.spat = 2.0;
  pred.failed_slowdown = 2.5;  // p = 2: failures are expensive
  LoopStatistics st;
  ExecReport pass, fail;
  pass.pd_tested = fail.pd_tested = true;
  pass.pd_passed = true;
  fail.pd_passed = false;
  // 50/50 history: expected = 0.5*2.0 + 0.5/(3.5) = 1.14 > 1.05 -> go.
  st.record(pass);
  st.record(fail);
  EXPECT_TRUE(st.should_speculate(pred));
  // 1/4 success: expected = 0.25*2 + 0.75/3.5 = 0.71 -> no.
  st.record(fail);
  st.record(fail);
  EXPECT_FALSE(st.should_speculate(pred));
}

TEST(LoopStatistics, IterCostCvNeedsTwoTimedRuns) {
  LoopStatistics st;
  ExecReport r;
  r.trip = r.started = 1000;
  EXPECT_DOUBLE_EQ(st.iter_cost_cv(), 0.0);
  st.record_run(r, 1e-3);
  EXPECT_DOUBLE_EQ(st.iter_cost_cv(), 0.0) << "one sample: assume uniform";
  st.record_run(r, 1e-3);
  EXPECT_NEAR(st.iter_cost_cv(), 0.0, 1e-9) << "identical runs: no variation";
}

TEST(LoopStatistics, IterCostCvTracksVariability) {
  LoopStatistics st;
  ExecReport r;
  r.trip = r.started = 1000;
  // Per-iteration costs 1us, 1us, 4us: mean 2us, stddev ~1.73us, cv ~0.87.
  st.record_run(r, 1e-3);
  st.record_run(r, 1e-3);
  st.record_run(r, 4e-3);
  EXPECT_NEAR(st.iter_cost_cv(), std::sqrt(3.0) / 2.0, 1e-9);
  // Degenerate inputs never poison the estimate.
  st.record_run(r, 0.0);
  ExecReport empty;
  st.record_run(empty, 1e-3);
  EXPECT_NEAR(st.iter_cost_cv(), std::sqrt(3.0) / 2.0, 1e-9);
}

TEST(LoopStatistics, ObservedScheduleFollowsMeasurements) {
  // A site whose measured bodies are wildly irregular must get the
  // fine-grain dynamic schedule even though its trip is long and uniform
  // cost would have picked guided.
  LoopStatistics st;
  ExecReport r;
  r.trip = r.started = 100000;
  st.record_run(r, 1e-2);
  st.record_run(r, 1e-2);
  st.record_run(r, 9e-2);
  ASSERT_GT(st.iter_cost_cv(), 1.0);
  const DoallOptions o = st.observed_schedule(100000, 8);
  EXPECT_EQ(o.sched, Sched::kDynamic);
  EXPECT_EQ(o.chunk, 1);

  // The same trips timed uniformly pick the low-overhead guided schedule.
  LoopStatistics uniform;
  uniform.record_run(r, 1e-2);
  uniform.record_run(r, 1e-2);
  const DoallOptions u = uniform.observed_schedule(100000, 8);
  EXPECT_EQ(u.sched, Sched::kGuided);
}

TEST(LoopStatistics, ObservedScheduleUsesEstimatedTrip) {
  // Short observed trips against a huge static bound: the schedule must be
  // sized for the trips the site actually exhibits.
  LoopStatistics st;
  for (int k = 0; k < 5; ++k) st.record_trip(6);
  const DoallOptions o = st.observed_schedule(1 << 20, 8);
  EXPECT_EQ(o.sched, Sched::kStaticCyclic);
}

TEST(ExpectedSpeculativeSpeedup, BlendsHistoryIntoThePrediction) {
  Prediction pred;
  pred.spat = 4.0;
  pred.failed_slowdown = 1.0;
  // Certain success: the full attainable speedup.
  EXPECT_DOUBLE_EQ(expected_speculative_speedup(pred, 1.0), 4.0);
  // Certain failure: pure slowdown, 1/(1+slowdown).
  EXPECT_DOUBLE_EQ(expected_speculative_speedup(pred, 0.0), 0.5);
  // 50/50 blend, and out-of-range probabilities clamp.
  EXPECT_DOUBLE_EQ(expected_speculative_speedup(pred, 0.5), 2.25);
  EXPECT_DOUBLE_EQ(expected_speculative_speedup(pred, 7.0), 4.0);
  EXPECT_DOUBLE_EQ(expected_speculative_speedup(pred, -1.0), 0.5);
}

TEST(LoopStatistics, MarksPerIterationComesFromPdTestedRunsOnly) {
  LoopStatistics st;

  ExecReport plain;  // never shadowed: must not dilute the average
  plain.trip = plain.started = 100;
  plain.shadow_marks = 0;
  st.record(plain);

  ExecReport spec;
  spec.pd_tested = true;
  spec.trip = spec.started = 100;
  spec.shadow_marks = 300;  // 3 marks per iteration
  st.record(spec);
  st.record(spec);

  EXPECT_DOUBLE_EQ(st.marks_per_iteration(), 3.0);

  const OverheadProfile o = st.observed_profile();
  // a = marks/iter * estimated trip (trips: 100, 100, 100 -> 100).
  EXPECT_EQ(o.accesses, 300);
  EXPECT_TRUE(o.pd_test);
  EXPECT_TRUE(o.needs_undo);
}

TEST(LoopStatistics, HistoryDrivenShouldSpeculate) {
  // A loop with lots of remainder work and a light measured instrumentation
  // tax: speculation should be recommended; crank the measured tax up and
  // the same history must flip the decision.
  LoopTiming t{/*t_rem=*/10000.0, /*t_rec=*/10.0};

  LoopStatistics cheap;
  ExecReport r;
  r.pd_tested = true;
  r.pd_passed = true;
  r.trip = r.started = 1000;
  r.shadow_marks = 1000;  // 1 mark per iteration
  cheap.record(r);
  EXPECT_TRUE(cheap.should_speculate(t, 8, DispatcherParallelism::kFull));

  LoopStatistics taxed;
  r.shadow_marks = 1000 * 400;  // 400 marks per iteration: tax dominates
  taxed.record(r);
  EXPECT_FALSE(taxed.should_speculate(t, 8, DispatcherParallelism::kFull));
}

}  // namespace
}  // namespace wlp
