#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "wlp/core/run_twice.hpp"

namespace wlp {
namespace {

TEST(RunTwice, SecondPassRunsExactlyTheValidRange) {
  ThreadPool pool(4);
  const long u = 10000, exit_at = 6400;
  std::vector<std::atomic<int>> hit(u);
  const RunTwiceReport r = run_twice_while(
      pool, u,
      [&](long i, unsigned) {
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      [&](long i, unsigned) { hit[static_cast<std::size_t>(i)].fetch_add(1); });
  EXPECT_EQ(r.exec.trip, exit_at);
  EXPECT_EQ(r.exec.overshot, 0);
  EXPECT_FALSE(r.exec.used_stamps);
  for (long i = 0; i < u; ++i)
    EXPECT_EQ(hit[static_cast<std::size_t>(i)].load(), i < exit_at ? 1 : 0) << i;
}

TEST(RunTwice, NoExitRunsWholeRangeOnce) {
  ThreadPool pool(4);
  std::atomic<long> work{0};
  const RunTwiceReport r = run_twice_while(
      pool, 500, [](long, unsigned) { return IterAction::kContinue; },
      [&](long, unsigned) { work.fetch_add(1); });
  EXPECT_EQ(r.exec.trip, 500);
  EXPECT_EQ(work.load(), 500);
}

TEST(RunTwiceSpeculative, PDTestOnExactRange) {
  ThreadPool pool(4);
  const long u = 4000, exit_at = 2500;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(u), -1.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const RunTwiceReport r = run_twice_speculative(
      pool, u,
      [&](long i, unsigned) {
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        arr.set(vpn, i, static_cast<std::size_t>((i * 31) % u), 1.0);
      },
      [&](long trip) {
        for (long i = 0; i < trip; ++i)
          arr.data()[static_cast<std::size_t>((i * 31) % u)] = 1.0;
      });

  EXPECT_EQ(r.exec.trip, exit_at);
  EXPECT_TRUE(r.exec.pd_tested);
  EXPECT_TRUE(r.exec.pd_passed);
  std::vector<double> expect(static_cast<std::size_t>(u), -1.0);
  for (long i = 0; i < exit_at; ++i)
    expect[static_cast<std::size_t>((i * 31) % u)] = 1.0;
  EXPECT_EQ(arr.data(), expect);
}

TEST(RunTwiceSpeculative, DependentPass2FallsBack) {
  ThreadPool pool(4);
  const long u = 300;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(u), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  const RunTwiceReport r = run_twice_speculative(
      pool, u, [](long, unsigned) { return IterAction::kContinue; },
      std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i > 0) {
          const double prev = arr.get(vpn, static_cast<std::size_t>(i - 1));
          arr.set(vpn, i, static_cast<std::size_t>(i), prev + 1.0);
        }
      },
      [&](long trip) {
        auto& d = arr.data();
        for (long i = 1; i < trip; ++i)
          d[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i - 1)] + 1.0;
      });

  EXPECT_FALSE(r.exec.pd_passed);
  EXPECT_TRUE(r.exec.reexecuted_sequentially);
  for (long i = 0; i < u; ++i)
    EXPECT_EQ(arr.data()[static_cast<std::size_t>(i)], static_cast<double>(i));
}

}  // namespace
}  // namespace wlp
