#include <gtest/gtest.h>

#include <atomic>

#include "wlp/core/constructs.hpp"

namespace wlp {
namespace {

TEST(Constructs, WhileDoallRecoversTrip) {
  ThreadPool pool(4);
  const ExecReport r = while_doall(pool, 5000, [](long i, unsigned) {
    return i >= 1234 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(r.trip, 1234);
}

TEST(Constructs, WhileDoacrossPreservesOrderAndNeverOvershoots) {
  ThreadPool pool(4);
  std::atomic<long> par_runs{0};
  long chain = 0;  // carried through the sequential phases
  const ExecReport r = while_doacross(
      pool, 10000,
      [&](long i) {
        EXPECT_EQ(chain, i);  // strict program order
        ++chain;
        return i < 777;
      },
      [&](long, unsigned) { par_runs.fetch_add(1); });
  EXPECT_EQ(r.trip, 777);
  EXPECT_EQ(par_runs.load(), 777);
}

TEST(Constructs, WhileDoanyStopsOnAnyAcceptable) {
  ThreadPool pool(4);
  const ExecReport r = while_doany(pool, 100000, [](long i, unsigned) {
    return i % 500 == 123 ? IterAction::kExitAfter : IterAction::kContinue;
  });
  EXPECT_EQ(r.method, Method::kDoany);
  EXPECT_LT(r.started, 100000);
}

}  // namespace
}  // namespace wlp
