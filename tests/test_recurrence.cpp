#include <gtest/gtest.h>

#include "wlp/analysis/distribute.hpp"

namespace wlp::ir {
namespace {

/// Classify the component containing statement 0 of a single-statement loop.
RecurrenceInfo classify_single(Loop& loop) {
  const DepGraph g = build_dep_graph(loop);
  const auto sccs = strongly_connected_components(g);
  for (const auto& comp : sccs)
    if (std::find(comp.begin(), comp.end(), 0) != comp.end())
      return classify_component(loop, g, comp);
  return {};
}

TEST(Recurrence, InductionPlusConstant) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("k", bin('+', scalar("k"), cnst(2))));
  const RecurrenceInfo r = classify_single(loop);
  EXPECT_EQ(r.kind, BlockKind::kInduction);
  EXPECT_EQ(r.var, "k");
  EXPECT_EQ(r.add, 2.0);
  EXPECT_EQ(dispatcher_kind(r), wlp::DispatcherKind::kMonotonicInduction);
}

TEST(Recurrence, InductionMinusConstant) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("k", bin('-', scalar("k"), cnst(1))));
  const RecurrenceInfo r = classify_single(loop);
  EXPECT_EQ(r.kind, BlockKind::kInduction);
  EXPECT_EQ(r.add, -1.0);
}

TEST(Recurrence, AffineIsAssociative) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar(
      "r", bin('+', bin('*', cnst(3), scalar("r")), cnst(7))));
  const RecurrenceInfo r = classify_single(loop);
  EXPECT_EQ(r.kind, BlockKind::kAssociative);
  EXPECT_EQ(r.mul, 3.0);
  EXPECT_EQ(r.add, 7.0);
  EXPECT_EQ(dispatcher_kind(r), wlp::DispatcherKind::kAssociative);
}

TEST(Recurrence, PointerChaseIsGeneral) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  const RecurrenceInfo r = classify_single(loop);
  EXPECT_EQ(r.kind, BlockKind::kGeneralRecurrence);
  EXPECT_EQ(r.call_name, "next");
  EXPECT_EQ(dispatcher_kind(r), wlp::DispatcherKind::kGeneral);
}

TEST(Recurrence, NonLinearSelfUpdateIsSequential) {
  // x = x * x is a recurrence but neither induction nor affine nor a call.
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_scalar("x", bin('*', scalar("x"), scalar("x"))));
  EXPECT_EQ(classify_single(loop).kind, BlockKind::kSequential);
}

TEST(Recurrence, IndependentStatementIsParallel) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", index(), bin('*', index(), cnst(2))));
  EXPECT_EQ(classify_single(loop).kind, BlockKind::kParallel);
}

TEST(Recurrence, CarriedArrayCycleIsSequential) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array(
      "A", index(), bin('+', array("A", bin('-', index(), cnst(1))), cnst(1))));
  EXPECT_EQ(classify_single(loop).kind, BlockKind::kSequential);
}

TEST(Recurrence, UnknownAccessWins) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(assign_array("A", array("B", index()), index()));
  EXPECT_EQ(classify_single(loop).kind, BlockKind::kUnknownAccess);
}

TEST(Recurrence, ExitStronglyConnectedToDispatcherIsFlagged) {
  Loop loop;
  loop.max_iters = 10;
  loop.body.push_back(exit_if(bin('>', scalar("p"), cnst(0))));
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  const DepGraph g = build_dep_graph(loop);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 1u);  // exit + recurrence: one component
  const RecurrenceInfo r = classify_component(loop, g, sccs[0]);
  EXPECT_EQ(r.kind, BlockKind::kGeneralRecurrence);
  EXPECT_TRUE(r.contains_exit);
}

}  // namespace
}  // namespace wlp::ir
