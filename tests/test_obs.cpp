// wlp::obs — trace ring, tracer, metrics registry, and Chrome export.
//
// Every suite here is named Obs* so the TSan CI job can select the whole
// subsystem with a single `:Obs*` filter term.  The export-validity tests
// parse the emitted JSON with a small recursive-descent checker rather than
// eyeballing substrings: a trace that chrome://tracing would reject must
// fail here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "wlp/core/speculative.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/thread_pool.hpp"

namespace wlp {
namespace {

using obs::TraceEvent;
using obs::TraceRing;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Minimal JSON validity checker.  Parses the full grammar (objects, arrays,
// strings with escapes, numbers, literals), records the string value of
// every "name" and "ph" member, and notes whether a "traceEvents" member
// mapped to an array.  parse() is true only if the whole input is one valid
// JSON value.
class JsonCheck {
 public:
  explicit JsonCheck(std::string s) : storage_(std::move(s)), s_(storage_) {}

  bool parse() {
    skip_ws();
    const bool ok = value();
    skip_ws();
    return ok && pos_ == s_.size();
  }

  bool saw_trace_events() const { return saw_trace_events_; }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<std::string>& phs() const { return phs_; }

  bool has_name(std::string_view n) const {
    for (const std::string& s : names_)
      if (s == n) return true;
    return false;
  }
  std::size_t count_name(std::string_view n) const {
    std::size_t k = 0;
    for (const std::string& s : names_)
      if (s == n) ++k;
    return k;
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        std::string ignored;
        return string(&ignored);
      }
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (peek() == '"') {
        std::string v;
        if (!string(&v)) return false;
        if (key == "name") names_.push_back(std::move(v));
        else if (key == "ph") phs_.push_back(std::move(v));
      } else {
        if (key == "traceEvents") {
          if (peek() != '[') return false;  // must map to an array
          saw_trace_events_ = true;
        }
        if (!value()) return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
        out->push_back(e);
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool digits = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    return digits && pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string storage_;
  std::string_view s_;
  std::size_t pos_ = 0;
  bool saw_trace_events_ = false;
  std::vector<std::string> names_;
  std::vector<std::string> phs_;
};

/// Export the process tracer's buffer to a string (quiescent-point only).
std::string export_to_string() {
  std::ostringstream os;
  Tracer::instance().export_chrome(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// TraceRing

TEST(ObsTraceRing, HoldsEverythingBelowCapacity) {
  TraceRing ring(/*tid=*/0, /*capacity_pow2=*/8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.emit({"e", /*start=*/100 + i, 0, i, 0, 'i'});
  EXPECT_EQ(ring.emitted(), 5u);
  const std::vector<TraceEvent> got = ring.snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].arg0, i) << "oldest first";
    EXPECT_EQ(got[i].start, 100 + i);
  }
}

TEST(ObsTraceRing, WraparoundKeepsNewestAndExactCount) {
  TraceRing ring(0, 8);
  for (std::uint64_t i = 0; i < 21; ++i) ring.emit({"e", i, 0, i, 0, 'i'});
  // The head counts every emission ever; the ring holds the last 8.
  EXPECT_EQ(ring.emitted(), 21u);
  const std::vector<TraceEvent> got = ring.snapshot();
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(got[k].arg0, 13 + k) << "events 13..20, oldest first";
}

TEST(ObsTraceRing, ClearDropsContentsAndCount) {
  TraceRing ring(0, 8);
  for (int i = 0; i < 3; ++i) ring.emit({"e", 0, 0, 0, 0, 'i'});
  ring.clear();
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.capacity(), 8u);
}

// ---------------------------------------------------------------------------
// Tracer (process singleton; every test restores disabled+clear)

TEST(ObsTracer, DisabledEmitsNothing) {
  Tracer& t = Tracer::instance();
  t.set_enabled(false);
  t.clear();
  const std::uint64_t before = t.emitted();
  obs::trace_instant("obs.test.never", 1, 2);
  obs::trace_counter("obs.test.never", 3);
  { obs::ScopedTrace span("obs.test.never"); }
  EXPECT_EQ(t.emitted(), before);
}

TEST(ObsTracer, RuntimeToggleTakesEffectImmediately) {
  Tracer& t = Tracer::instance();
  t.clear();
  t.set_enabled(true);
  obs::trace_instant("obs.test.on", 0, 0);
  t.set_enabled(false);
  obs::trace_instant("obs.test.off", 0, 0);
  const std::vector<TraceEvent> got = t.snapshot_events();
  std::size_t on = 0, off = 0;
  for (const TraceEvent& e : got) {
    if (std::strcmp(e.name, "obs.test.on") == 0) ++on;
    if (std::strcmp(e.name, "obs.test.off") == 0) ++off;
  }
  EXPECT_EQ(on, 1u);
  EXPECT_EQ(off, 0u);
  t.clear();
}

TEST(ObsTracer, SpanStraddlingDisableIsDropped) {
  Tracer& t = Tracer::instance();
  t.clear();
  const std::uint64_t before = t.emitted();
  t.set_enabled(true);
  {
    obs::ScopedTrace span("obs.test.straddle");
    t.set_enabled(false);
  }  // closes with tracing off -> dropped, not half-recorded
  EXPECT_EQ(t.emitted(), before);
  t.clear();
}

TEST(ObsTracer, ConcurrentEmissionFromPoolHelpers) {
  Tracer& t = Tracer::instance();
  t.clear();
  t.set_enabled(true);
  constexpr unsigned kP = 4;
  constexpr std::uint64_t kPerWorker = 100;
  std::atomic<long> ran{0};
  {
    ThreadPool pool(kP);
    pool.parallel([&](unsigned vpn) {
      for (std::uint64_t i = 0; i < kPerWorker; ++i)
        obs::trace_instant("obs.test.worker", i, vpn);
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    // The pool join above is the quiescent point: its release/acquire chain
    // publishes every helper's ring contents to this thread.
    t.set_enabled(false);
    EXPECT_EQ(ran.load(), static_cast<long>(kP));
    const std::vector<TraceEvent> got = t.snapshot_events();
    std::uint64_t mine = 0;
    std::uint64_t vpn_seen[kP] = {};
    for (const TraceEvent& e : got) {
      if (std::strcmp(e.name, "obs.test.worker") != 0) continue;
      ++mine;
      ASSERT_LT(e.arg1, kP);
      ++vpn_seen[e.arg1];
    }
    EXPECT_EQ(mine, kP * kPerWorker);
    for (unsigned v = 0; v < kP; ++v)
      EXPECT_EQ(vpn_seen[v], kPerWorker) << "vpn " << v;
  }
  t.clear();
}

TEST(ObsTracer, DroppedCountsRingOverflow) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.set_ring_capacity(8);  // applies to rings created from here on
  const std::uint64_t dropped_before = t.dropped();
  std::thread emitter([&] {
    for (int i = 0; i < 20; ++i) obs::trace_instant("obs.test.drop", i, 0);
  });
  emitter.join();
  t.set_enabled(false);
  EXPECT_EQ(t.dropped() - dropped_before, 12u) << "20 emitted into capacity 8";
  t.set_ring_capacity(1 << 13);  // restore the default for later tests
  t.clear();
}

// ---------------------------------------------------------------------------
// Chrome export

TEST(ObsExport, EmptyTraceIsValidJson) {
  Tracer& t = Tracer::instance();
  t.set_enabled(false);
  t.clear();
  JsonCheck check(export_to_string());
  EXPECT_TRUE(check.parse());
  EXPECT_TRUE(check.saw_trace_events());
}

TEST(ObsExport, AllPhaseKindsRoundTrip) {
  Tracer& t = Tracer::instance();
  t.clear();
  t.set_enabled(true);
  obs::trace_instant("obs.test.i", 7, 8);
  obs::trace_counter("obs.test.c", 42);
  { obs::ScopedTrace span("obs.test.x", 1, 2); }
  t.set_enabled(false);

  JsonCheck check(export_to_string());
  ASSERT_TRUE(check.parse());
  EXPECT_TRUE(check.saw_trace_events());
  EXPECT_TRUE(check.has_name("obs.test.i"));
  EXPECT_TRUE(check.has_name("obs.test.c"));
  EXPECT_TRUE(check.has_name("obs.test.x"));
  for (const std::string& ph : check.phs())
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C") << "ph=" << ph;
  t.clear();
}

// A real speculative run traced end to end must yield a loadable file whose
// timeline shows the fork-join launches, the scheduler claims, and the undo
// span — the ISSUE's acceptance criterion for the subsystem.
TEST(ObsExport, SpeculativeRunContainsForkJoinClaimAndUndo) {
  if (!obs::compiled_in())
    GTEST_SKIP() << "runtime hooks compiled out (WLP_OBS=OFF)";

  Tracer& t = Tracer::instance();
  t.clear();
  t.set_enabled(true);

  const long n = 600, exit_at = 400;
  ThreadPool pool(4);
  // Reversal is a permutation: accesses are independent, the PD test
  // passes, and overshoot past exit_at is undone via the time-stamps.
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), /*run_pd_test=*/true);
  SpecTarget* targets[] = {&arr};
  const ExecReport r = speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        const auto slot = static_cast<std::size_t>(n - 1 - i);
        // Write before testing the exit so the exit-discovering iteration
        // dirties the array and the undo span carries a real write count.
        arr.set(vpn, i, slot, arr.get(vpn, slot) + 1.0);
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < exit_at; ++i)
          arr.data()[static_cast<std::size_t>(n - 1 - i)] += 1.0;
        return exit_at;
      });
  t.set_enabled(false);

  ASSERT_TRUE(r.pd_passed);
  ASSERT_EQ(r.trip, exit_at);
  ASSERT_GT(r.undone_writes, 0) << "the undo machinery must have fired";

  JsonCheck check(export_to_string());
  ASSERT_TRUE(check.parse());
  EXPECT_TRUE(check.saw_trace_events());
  EXPECT_GE(check.count_name("forkjoin") + check.count_name("forkjoin.inline"),
            1u);
  EXPECT_GE(check.count_name("claim"), 1u)
      << "scheduler chunk claims must appear on the timeline";
  EXPECT_GE(check.count_name("undo"), 1u);
  t.clear();
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsMetrics, CounterAddAndReset) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  obs::Gauge g;
  g.set(-5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
}

TEST(ObsMetrics, HistogramLog2Buckets) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(11), 2047u);

  obs::Histogram h;
  h.record(0);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_DOUBLE_EQ(h.mean(), 1003.0 / 3.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
}

TEST(ObsMetrics, HistogramQuantileBounds) {
  obs::Histogram h;
  for (int i = 0; i < 98; ++i) h.record(10);    // bucket 4, bound 15
  for (int i = 0; i < 2; ++i) h.record(5000);   // bucket 13, bound 8191
  EXPECT_EQ(h.quantile_bound(0.50), 15u);
  EXPECT_EQ(h.quantile_bound(0.99), 8191u);
  obs::Histogram empty;
  EXPECT_EQ(empty.quantile_bound(0.5), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("wlp.test.obs.stable");
  obs::Counter& b = reg.counter("wlp.test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetrics, SnapshotContainsAllKinds) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("wlp.test.obs.snap_c").add(7);
  reg.gauge("wlp.test.obs.snap_g").set(-2);
  reg.histogram("wlp.test.obs.snap_h").record(100);

  const obs::Snapshot snap = reg.snapshot();
  bool c = false, g = false, h = false;
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LE(snap[i - 1].name, snap[i].name) << "sorted by name";
  for (const obs::MetricSample& s : snap) {
    if (s.name == "wlp.test.obs.snap_c") {
      c = true;
      EXPECT_EQ(s.kind, obs::MetricSample::Kind::kCounter);
      EXPECT_GE(s.value, 7);
    } else if (s.name == "wlp.test.obs.snap_g") {
      g = true;
      EXPECT_EQ(s.kind, obs::MetricSample::Kind::kGauge);
      EXPECT_EQ(s.value, -2);
    } else if (s.name == "wlp.test.obs.snap_h") {
      h = true;
      EXPECT_EQ(s.kind, obs::MetricSample::Kind::kHistogram);
      EXPECT_GE(s.value, 1);
      EXPECT_GE(s.sum, 100u);
    }
  }
  EXPECT_TRUE(c);
  EXPECT_TRUE(g);
  EXPECT_TRUE(h);
}

TEST(ObsMetrics, ProviderMergesWithOwnedCounter) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& owned = reg.counter("wlp.test.obs.merge");
  const std::uint64_t base = owned.value();
  owned.add(10);
  // A live provider contributing the same name: the snapshot must read as
  // one merged figure (owned folded totals + live view), like a running
  // ThreadPool's stats on top of dead pools' folded counters.
  const int id = reg.add_provider([](obs::Snapshot& out) {
    obs::MetricSample s;
    s.name = "wlp.test.obs.merge";
    s.kind = obs::MetricSample::Kind::kCounter;
    s.value = 5;
    out.push_back(s);
  });
  std::size_t occurrences = 0;
  for (const obs::MetricSample& s : reg.snapshot()) {
    if (s.name != "wlp.test.obs.merge") continue;
    ++occurrences;
    EXPECT_EQ(s.value, static_cast<std::int64_t>(base) + 15);
  }
  EXPECT_EQ(occurrences, 1u) << "same-name samples merge into one";

  reg.remove_provider(id);
  occurrences = 0;
  for (const obs::MetricSample& s : reg.snapshot())
    if (s.name == "wlp.test.obs.merge") ++occurrences;
  EXPECT_EQ(occurrences, 1u) << "owned metric remains after provider leaves";
}

TEST(ObsMetrics, RuntimeToggleGatesTheMacros) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("wlp.test.obs.toggle");
  const std::uint64_t base = c.value();
  obs::set_metrics_enabled(false);
  WLP_OBS_COUNT("wlp.test.obs.toggle", 1);
  EXPECT_EQ(c.value(), base);
  obs::set_metrics_enabled(true);
  WLP_OBS_COUNT("wlp.test.obs.toggle", 1);
  if (obs::compiled_in()) {
    EXPECT_EQ(c.value(), base + 1);
  } else {
    EXPECT_EQ(c.value(), base) << "hooks compiled out";
  }
}

TEST(ObsMetrics, WriteJsonIsValid) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("wlp.test.obs.json").add();
  reg.histogram("wlp.test.obs.json_h").record(64);
  std::ostringstream os;
  reg.write_json(os);
  JsonCheck check(os.str());
  ASSERT_TRUE(check.parse());
  EXPECT_TRUE(check.has_name("wlp.test.obs.json"));
  EXPECT_TRUE(check.has_name("wlp.test.obs.json_h"));
}

// ---------------------------------------------------------------------------
// Registry reset

TEST(ObsMetrics, ResetZeroesOwnedMetrics) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("wlp.test.obs.reset");
  obs::Histogram& h = reg.histogram("wlp.test.obs.reset_h");
  c.add(9);
  h.record(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace wlp
