#include <gtest/gtest.h>

#include <algorithm>

#include "wlp/analysis/plan.hpp"

namespace wlp::ir {
namespace {

TEST(Plan, Fig1bListTraversalIsGeneralRI) {
  // while (p != null) { WORK(p); p = next(p) }
  Loop loop;
  loop.name = "fig1b";
  loop.max_iters = 100;
  loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("p"))));
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));

  const ParallelPlan plan = make_plan(loop);
  EXPECT_EQ(plan.dispatcher, wlp::DispatcherKind::kGeneral);
  EXPECT_EQ(plan.terminator, wlp::TerminatorClass::kRemainderInvariant);
  EXPECT_FALSE(plan.may_overshoot);  // Table 1: general x RI
  // One General-3 step for the traversal, one DOALL step for the work.
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].method, wlp::Method::kGeneral3);
  EXPECT_EQ(plan.steps[1].method, wlp::Method::kInduction2);
  EXPECT_FALSE(plan.steps[1].needs_undo);
}

TEST(Plan, Fig1eAssociativeRI) {
  // while (f(r) < V) { WORK(r); r = a*r + b }
  Loop loop;
  loop.name = "fig1e";
  loop.max_iters = 100;
  loop.body.push_back(exit_if(bin('G', call("f", scalar("r")), scalar("V"))));
  loop.body.push_back(assign_array("A", index(), bin('*', scalar("r"), cnst(2))));
  loop.body.push_back(
      assign_scalar("r", bin('+', bin('*', cnst(3), scalar("r")), cnst(1))));

  const ParallelPlan plan = make_plan(loop);
  EXPECT_EQ(plan.dispatcher, wlp::DispatcherKind::kAssociative);
  EXPECT_EQ(plan.terminator, wlp::TerminatorClass::kRemainderInvariant);
  EXPECT_FALSE(plan.may_overshoot);
  EXPECT_EQ(plan.steps[0].method, wlp::Method::kAssocPrefix);
}

TEST(Plan, TrackShapedLoopIsInductionRVWithUndo) {
  // do i: { exit-if E[i] > 10 ; E[i] = f(i) ; A[i] = 2i }
  // (exit reads an array the loop writes -> RV, implicit counter -> induction)
  Loop loop;
  loop.name = "track";
  loop.max_iters = 100;
  loop.body.push_back(exit_if(bin('>', array("E", index()), cnst(10))));
  loop.body.push_back(assign_array("E", index(), call("f", index())));
  loop.body.push_back(assign_array("A", index(), bin('*', index(), cnst(2))));

  const ParallelPlan plan = make_plan(loop);
  EXPECT_EQ(plan.dispatcher, wlp::DispatcherKind::kMonotonicInduction);
  EXPECT_EQ(plan.terminator, wlp::TerminatorClass::kRemainderVariant);
  EXPECT_TRUE(plan.may_overshoot);
  const bool any_undo =
      std::any_of(plan.steps.begin(), plan.steps.end(),
                  [](const PlanStep& s) { return s.needs_undo; });
  EXPECT_TRUE(any_undo);
}

TEST(Plan, SubscriptedSubscriptGoesSpeculative) {
  Loop loop;
  loop.name = "indirect";
  loop.max_iters = 100;
  loop.body.push_back(assign_array("A", array("B", index()), index()));

  const ParallelPlan plan = make_plan(loop);
  ASSERT_EQ(plan.pd_arrays.size(), 1u);
  EXPECT_EQ(plan.pd_arrays[0], "A");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_TRUE(plan.steps[0].speculative);
  EXPECT_TRUE(plan.steps[0].needs_undo);
}

TEST(Plan, PrivatizedScalarsReported) {
  // tmp defined then used each iteration: privatizable (Fig. 5(b)).
  Loop loop;
  loop.max_iters = 100;
  loop.body.push_back(assign_scalar("tmp", array("R", index())));
  loop.body.push_back(assign_array("A", index(), scalar("tmp")));
  const ParallelPlan plan = make_plan(loop);
  ASSERT_EQ(plan.privatized_scalars.size(), 1u);
  EXPECT_EQ(plan.privatized_scalars[0], "tmp");
}

TEST(Plan, CostModelGateRejectsDispatcherBoundLoop) {
  Loop loop;
  loop.name = "chase-only";
  loop.max_iters = 1000;
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  // Nearly all time in the (sequential) recurrence.
  const wlp::LoopTiming timing{10.0, 990.0};
  const ParallelPlan plan = make_plan(loop, 8, &timing);
  EXPECT_FALSE(plan.recommended);
  EXPECT_LT(plan.predicted_speedup, 1.1);
}

TEST(Plan, CostModelGateAcceptsWorkRichLoop) {
  Loop loop;
  loop.name = "work-rich";
  loop.max_iters = 1000;
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  loop.body.push_back(assign_array("A", index(), call("work", scalar("p"))));
  const wlp::LoopTiming timing{990.0, 10.0};
  const ParallelPlan plan = make_plan(loop, 8, &timing);
  EXPECT_TRUE(plan.recommended);
  EXPECT_GT(plan.predicted_speedup, 3.0);
}

TEST(Plan, SequentialBlockGetsDoacross) {
  Loop loop;
  loop.max_iters = 50;
  loop.body.push_back(assign_array(
      "A", bin('+', index(), cnst(1)),
      bin('+', array("A", index()), cnst(1))));
  const ParallelPlan plan = make_plan(loop);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].method, wlp::Method::kWuLewisDoacross);
}

TEST(Plan, TextRenderingMentionsKeyFacts) {
  Loop loop;
  loop.name = "fig1b";
  loop.max_iters = 10;
  loop.body.push_back(exit_if(bin('=', scalar("p"), cnst(0))));
  loop.body.push_back(assign_scalar("p", call("next", scalar("p"))));
  const ParallelPlan plan = make_plan(loop);
  const std::string text = plan.to_text(loop);
  EXPECT_NE(text.find("fig1b"), std::string::npos);
  EXPECT_NE(text.find("general-recurrence"), std::string::npos);
  EXPECT_NE(text.find("RI"), std::string::npos);
}

}  // namespace
}  // namespace wlp::ir
