// wlp::mem coverage — topology parsing against fake-sysfs fixtures, arena
// recycling/alignment/accounting, the EpochClock wrap path, and the
// steady-state zero-allocation contract read through the process Budget:
// strip retries, DOACROSS windows and PD shadow reuse must hand out zero
// arena blocks once warm (the counters replace per-subsystem stats as the
// allocation-regression surface).  The Mem* suites are also the TSan CI
// filter's entry point for the concurrent arena stress test.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "wlp/core/shadow.hpp"
#include "wlp/core/sliding_window.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/core/speculative_strips.hpp"
#include "wlp/mem/arena.hpp"
#include "wlp/mem/budget.hpp"
#include "wlp/mem/epoch.hpp"
#include "wlp/mem/topology.hpp"
#include "wlp/sched/doacross.hpp"
#include "wlp/sched/thread_pool.hpp"

namespace wlp {
namespace {

namespace fs = std::filesystem;

// ---- cpulist parsing --------------------------------------------------------

TEST(MemCpulist, ParsesRangesSinglesAndMixes) {
  using V = std::vector<unsigned>;
  EXPECT_EQ(mem::parse_cpulist("0-3,8,10-11"), (V{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(mem::parse_cpulist("5"), (V{5}));
  EXPECT_EQ(mem::parse_cpulist("0-0"), (V{0}));
  EXPECT_EQ(mem::parse_cpulist("3,1,2,1"), (V{1, 2, 3}));  // sorted, deduped
  EXPECT_EQ(mem::parse_cpulist("0-7\n"), (V{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(MemCpulist, MalformedInputYieldsEmpty) {
  EXPECT_TRUE(mem::parse_cpulist("").empty());
  EXPECT_TRUE(mem::parse_cpulist("  \n").empty());
  EXPECT_TRUE(mem::parse_cpulist("a-b").empty());
  EXPECT_TRUE(mem::parse_cpulist("0-").empty());
  EXPECT_TRUE(mem::parse_cpulist("-3").empty());
  EXPECT_TRUE(mem::parse_cpulist("3-1").empty());      // inverted range
  EXPECT_TRUE(mem::parse_cpulist("0-999999").empty()); // absurd range
  EXPECT_TRUE(mem::parse_cpulist("1,,2").empty());
}

// ---- topology discovery against fake sysfs trees ----------------------------

/// Builds a throwaway sysfs skeleton under /tmp; each writer appends one
/// node directory.  The shape mirrors exactly what Topology::discover
/// reads: devices/system/cpu/online + devices/system/node/nodeN/cpulist.
class FakeSysfs {
 public:
  FakeSysfs() {
    std::string tmpl = (fs::temp_directory_path() / "wlpsysXXXXXX").string();
    root_ = mkdtemp(tmpl.data());
    fs::create_directories(fs::path(root_) / "devices/system/cpu");
    fs::create_directories(fs::path(root_) / "devices/system/node");
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void online(const std::string& list) {
    write(fs::path(root_) / "devices/system/cpu/online", list);
  }
  void node(int id, const std::string& cpulist) {
    const fs::path d =
        fs::path(root_) / "devices/system/node" / ("node" + std::to_string(id));
    fs::create_directories(d);
    write(d / "cpulist", cpulist);
  }
  const std::string& root() const { return root_; }

 private:
  static void write(const fs::path& p, const std::string& s) {
    std::ofstream(p) << s << "\n";
  }
  std::string root_;
};

TEST(MemTopology, TwoNodeFixture) {
  FakeSysfs sys;
  sys.online("0-7");
  sys.node(0, "0-3");
  sys.node(1, "4-7");
  const mem::Topology t = mem::Topology::discover(sys.root());
  ASSERT_TRUE(t.discovered());
  ASSERT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.cpu_count(), 8u);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(3), 0);
  EXPECT_EQ(t.node_of_cpu(4), 1);
  EXPECT_EQ(t.node_of_cpu(7), 1);
  EXPECT_EQ(t.node_of_cpu(8), -1);  // beyond the machine
  // Even spread: the first four workers land on node 0, the next four on
  // node 1, then the map wraps.
  for (unsigned v = 0; v < 4; ++v) EXPECT_EQ(t.worker_node(v), 0) << v;
  for (unsigned v = 4; v < 8; ++v) EXPECT_EQ(t.worker_node(v), 1) << v;
  EXPECT_EQ(t.worker_node(8), 0);
  EXPECT_EQ(t.worker_node(13), 1);
}

TEST(MemTopology, OfflineCpusAreExcluded) {
  FakeSysfs sys;
  sys.online("0-2,4");  // CPU 3 and 5-7 offline
  sys.node(0, "0-3");
  sys.node(1, "4-7");
  const mem::Topology t = mem::Topology::discover(sys.root());
  ASSERT_TRUE(t.discovered());
  ASSERT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(2), 0);
  EXPECT_EQ(t.node_of_cpu(3), -1);  // offline: no workers, no pages
  EXPECT_EQ(t.node_of_cpu(4), 1);
  EXPECT_EQ(t.node_of_cpu(5), -1);
  // node0 holds three online CPUs, node1 one: vpn 3 is node1's.
  EXPECT_EQ(t.worker_node(0), 0);
  EXPECT_EQ(t.worker_node(2), 0);
  EXPECT_EQ(t.worker_node(3), 1);
  EXPECT_EQ(t.worker_node(4), 0);  // wraps
}

TEST(MemTopology, SingleNodeFixtureForcesNumaOff) {
  FakeSysfs sys;
  sys.online("0-3");
  sys.node(0, "0-3");
  const mem::Topology t = mem::Topology::discover(sys.root());
  ASSERT_TRUE(t.discovered());
  ASSERT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.cpu_count(), 4u);
  for (unsigned v = 0; v < 9; ++v) EXPECT_EQ(t.worker_node(v), 0);
  // One node ⇒ every placement decision is a no-op, whatever WLP_NUMA says.
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kOff);
}

TEST(MemTopology, MemoryOnlyNodeIsSkipped) {
  FakeSysfs sys;
  sys.online("0-3");
  sys.node(0, "0-3");
  sys.node(1, "");  // CPU-less (memory-only) node
  const mem::Topology t = mem::Topology::discover(sys.root());
  ASSERT_TRUE(t.discovered());
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(MemTopology, MissingRootFallsBackToSingleNode) {
  const mem::Topology t =
      mem::Topology::discover("/nonexistent/wlp/sysfs/root");
  EXPECT_FALSE(t.discovered());
  ASSERT_EQ(t.node_count(), 1u);
  EXPECT_GE(t.cpu_count(), 1u);
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kOff);
  for (unsigned v = 0; v < 4; ++v) EXPECT_EQ(t.worker_node(v), 0);
}

TEST(MemTopology, NumaModeFollowsEnvironmentOnMultiNodeShapes) {
  FakeSysfs sys;
  sys.online("0-7");
  sys.node(0, "0-3");
  sys.node(1, "4-7");
  const mem::Topology t = mem::Topology::discover(sys.root());
  ASSERT_EQ(t.node_count(), 2u);

  const char* saved = std::getenv("WLP_NUMA");
  const std::string saved_copy = saved != nullptr ? saved : "";

  unsetenv("WLP_NUMA");
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kFirstTouch);
  setenv("WLP_NUMA", "0", 1);
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kOff);
  setenv("WLP_NUMA", "off", 1);
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kOff);
  setenv("WLP_NUMA", "pin", 1);
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kPin);
  setenv("WLP_NUMA", "anything-else", 1);
  EXPECT_EQ(t.numa_mode(), mem::NumaMode::kFirstTouch);

  if (saved != nullptr)
    setenv("WLP_NUMA", saved_copy.c_str(), 1);
  else
    unsetenv("WLP_NUMA");
}

// ---- the epoch clock --------------------------------------------------------

TEST(MemEpoch, BumpAdvancesWithoutSweeping) {
  mem::EpochClock c;
  EXPECT_EQ(c.value(), 1u);  // 0 is reserved for "never stamped"
  int sweeps = 0;
  for (int i = 0; i < 100; ++i) c.bump([&] { ++sweeps; });
  EXPECT_EQ(c.value(), 101u);
  EXPECT_EQ(sweeps, 0);
  EXPECT_EQ(c.resets(), 100);
  EXPECT_EQ(c.sweeps(), 0);
}

TEST(MemEpoch, WrapSweepsOnceAndSkipsZero) {
  mem::EpochClock c;
  c.jump(0xffffffffu, [] {});  // the hook's own sweep is counted too
  ASSERT_EQ(c.value(), 0xffffffffu);
  EXPECT_EQ(c.sweeps(), 1);
  int sweeps = 0;
  c.bump([&] { ++sweeps; });
  EXPECT_EQ(sweeps, 1);        // the once-per-2^32 O(n) sweep
  EXPECT_EQ(c.value(), 1u);    // restarted past the reserved 0
  EXPECT_EQ(c.sweeps(), 2);
}

// ---- arena block recycling --------------------------------------------------

TEST(MemArena, SmallBlockRecyclesThroughTheFreeList) {
  mem::Arena a;
  void* p = a.allocate(4096);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % mem::Arena::kMinClass, 0u);
  a.deallocate(p, 4096);
  void* q = a.allocate(4096);
  EXPECT_EQ(q, p);  // same class ⇒ the freed block comes straight back
  const mem::ArenaStats st = a.stats();
  EXPECT_EQ(st.block_allocs, 2);
  EXPECT_EQ(st.recycles, 1);
  EXPECT_EQ(st.frees, 1);
  EXPECT_EQ(st.os_allocs, 1);  // one slab served both
}

TEST(MemArena, MixedClassCarvesStayClassAligned) {
  // Sequential carves of different classes from one slab must re-align the
  // bump pointer: a 64 B carve followed by a 1 KiB-class request cannot
  // hand out an offset that is merely 64-aligned.
  mem::Arena a;
  (void)a.allocate(64);
  void* p1k = a.allocate(1000);  // class 1024
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1k) % 1024, 0u);
  (void)a.allocate(64);
  void* p8k = a.allocate(5000);  // class 8192
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8k) % 8192, 0u);
  EXPECT_EQ(a.stats().os_allocs, 1);  // all carved from one slab
}

TEST(MemArena, LargeBlocksRecycleByExactSize) {
  mem::Arena a;
  const std::size_t big = 256u * 1024;  // >= kLargeMin ⇒ dedicated block
  void* p = a.allocate(big);
  ASSERT_NE(p, nullptr);
  const mem::ArenaStats after_first = a.stats();
  EXPECT_EQ(after_first.os_allocs, 1);
  a.deallocate(p, big);
  void* q = a.allocate(big);
  EXPECT_EQ(q, p);  // exact-size key ⇒ perfect reuse, no pow2 waste
  const mem::ArenaStats st = a.stats();
  EXPECT_EQ(st.os_allocs, 1);  // the OS was never asked twice
  EXPECT_EQ(st.recycles, 1);
  EXPECT_EQ(st.bytes_held, after_first.bytes_held);
}

TEST(MemArena, TypedArraysRoundTrip) {
  mem::Arena a;
  double* d = a.allocate_array<double>(1000);
  ASSERT_NE(d, nullptr);
  for (int i = 0; i < 1000; ++i) d[i] = i * 0.5;
  EXPECT_EQ(d[999], 499.5);
  a.deallocate_array(d, 1000);
  double* e = a.allocate_array<double>(1000);
  EXPECT_EQ(e, d);
  a.deallocate_array(e, 1000);
}

TEST(MemArena, WorkerArenasAreDistinctAndStable) {
  mem::Arena& a0 = mem::worker_arena(0);
  mem::Arena& a1 = mem::worker_arena(1);
  EXPECT_NE(&a0, &a1);
  EXPECT_EQ(&mem::worker_arena(0), &a0);  // stable across calls
  EXPECT_EQ(&mem::worker_arena(mem::ArenaSet::kSlots), &a0);  // wraps
  EXPECT_EQ(&mem::local_arena(), &mem::local_arena());
}

// ---- the process ledger -----------------------------------------------------

TEST(MemBudget, ArenaChargesAndReleasesTheLedger) {
  const mem::BudgetSnapshot s0 = mem::Budget::process().snapshot();
  {
    mem::Arena a;
    const std::size_t big = 512u * 1024;
    void* p = a.allocate(big);
    const mem::BudgetSnapshot s1 = mem::Budget::process().snapshot();
    EXPECT_EQ(s1.slow_allocs - s0.slow_allocs, 1);   // one OS trip
    EXPECT_EQ(s1.arena_allocs - s0.arena_allocs, 1);
    EXPECT_GE(s1.bytes_live - s0.bytes_live, static_cast<long>(big));
    EXPECT_GE(s1.bytes_peak, s1.bytes_live);
    a.deallocate(p, big);
    void* q = a.allocate(big);  // recycled: a block, but not an OS trip
    EXPECT_EQ(q, p);
    const mem::BudgetSnapshot s2 = mem::Budget::process().snapshot();
    EXPECT_EQ(s2.slow_allocs - s0.slow_allocs, 1);
    EXPECT_EQ(s2.arena_allocs - s0.arena_allocs, 2);
    EXPECT_EQ(s2.frees - s0.frees, 1);
  }
  // The dtor returns everything to the OS and credits the ledger.
  const mem::BudgetSnapshot s3 = mem::Budget::process().snapshot();
  EXPECT_EQ(s3.bytes_live, s0.bytes_live);
}

// ---- steady-state zero-allocation regressions (the ISSUE's contract) --------

TEST(MemSteadyState, StripRetriesAllocateNothingOnceWarm) {
  ThreadPool pool(4);
  const long n = 64 * 256, strip = 256;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), /*run_pd_test=*/true);
  SpecTarget* targets[] = {&arr};
  auto run_once = [&] {
    return strip_speculative_while(
        pool, n, strip, std::span<SpecTarget* const>(targets, 1),
        [&](long i, unsigned vpn) {
          arr.begin_iteration(vpn, i);
          arr.set(vpn, i, static_cast<std::size_t>(i), 1.0);
          return IterAction::kContinue;
        },
        [&](long, long end) { return end; });
  };

  const StripSpecReport warm = run_once();
  ASSERT_EQ(warm.strips_failed, 0);
  const mem::BudgetSnapshot s0 = mem::Budget::process().snapshot();
  const StripSpecReport hot = run_once();
  ASSERT_EQ(hot.strips_failed, 0);
  const mem::BudgetSnapshot s1 = mem::Budget::process().snapshot();

  // The whole retry loop — checkpoints, stamps, shadow marks, undo — runs
  // on storage owned before it started: zero blocks handed out, zero OS
  // trips, footprint flat.
  EXPECT_EQ(s1.arena_allocs - s0.arena_allocs, 0);
  EXPECT_EQ(s1.slow_allocs - s0.slow_allocs, 0);
  EXPECT_EQ(s1.bytes_live, s0.bytes_live);
}

TEST(MemSteadyState, DoacrossWindowsAllocateNothingOnceWarm) {
  ThreadPool pool(4);
  auto run_once = [&] {
    return doacross_while(
        pool, 1 << 14, [](long i) { return i < (1 << 13); },
        [](long, unsigned) {});
  };
  (void)run_once();  // warm-up grows the chain's slot array
  const mem::BudgetSnapshot s0 = mem::Budget::process().snapshot();
  for (int round = 0; round < 50; ++round) {
    const DoacrossResult r = run_once();
    ASSERT_EQ(r.trip, 1 << 13);
  }
  const mem::BudgetSnapshot s1 = mem::Budget::process().snapshot();
  EXPECT_EQ(s1.arena_allocs - s0.arena_allocs, 0);
  EXPECT_EQ(s1.slow_allocs - s0.slow_allocs, 0);
}

TEST(MemSteadyState, ShadowResetReusesArenaSegments) {
  PDPrivateShadow shadow(4096, /*workers=*/4);
  for (unsigned w = 0; w < 4; ++w) shadow.mark_write(w, 1, w);  // warm-up
  const mem::BudgetSnapshot s0 = mem::Budget::process().snapshot();
  for (int round = 0; round < 100; ++round) {
    shadow.reset();
    for (unsigned w = 0; w < 4; ++w)
      shadow.mark_write(w, round, (static_cast<std::size_t>(round) + w) % 4096);
  }
  const mem::BudgetSnapshot s1 = mem::Budget::process().snapshot();
  EXPECT_EQ(s1.arena_allocs - s0.arena_allocs, 0);  // segments pooled
  EXPECT_EQ(s1.slow_allocs - s0.slow_allocs, 0);
  EXPECT_EQ(shadow.stats().resets, 100);
  EXPECT_EQ(shadow.stats().cell_sweeps, 0);
}

TEST(MemSteadyState, ShadowOnRecycledBlocksStartsClean) {
  // Construct, dirty and destroy a shadow; the next same-shape shadow gets
  // the SAME arena blocks back — with whatever generation stamps the first
  // life left behind.  The Segment constructor must clear the gens array
  // (arena memory is recycled, not OS-zeroed) or stale marks leak into the
  // new shadow's first epoch as phantom conflicts.
  const std::size_t n = 2048;
  {
    PDPrivateShadow first(n, /*workers=*/2);
    for (long i = 0; i < 64; ++i) {
      first.mark_write(0u, i, static_cast<std::size_t>(i));
      first.mark_write(1u, i + 500, static_cast<std::size_t>(i));  // 2nd writer
    }
    EXPECT_GT(first.analyze_seq(1L << 40).multi_written, 0);
  }
  PDPrivateShadow second(n, /*workers=*/2);
  second.mark_write(0u, 3, 7);  // force segment (re)allocation for vpn 0
  second.mark_write(1u, 4, 9);
  const PDVerdict v = second.analyze_seq(1L << 40);
  EXPECT_EQ(v.written_elements, 2);  // only this life's marks are visible
  EXPECT_EQ(v.multi_written, 0);
  EXPECT_EQ(v.conflicts, 0);
}

TEST(MemSteadyState, WindowBudgetCanThrottleOnTheProcessLedger) {
  // Pins the documented wiring: opts.live_bytes pointed at the arena
  // ledger instead of one target set's memory_bytes().
  ThreadPool pool(4);
  const long n = 2000;
  SpecArray<double> arr(std::vector<double>(4096, 0.0), pool.size(),
                        /*run_pd_test=*/true);
  SpecTarget* targets[] = {&arr};
  WindowOptions opts;
  opts.window = 32;
  opts.memory_budget = static_cast<std::size_t>(1) << 40;  // never binds
  opts.live_bytes = [] {
    return static_cast<std::size_t>(mem::process_bytes_live());
  };
  const WindowReport wr = sliding_window_speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        arr.set(vpn, i, static_cast<std::size_t>(i) % 4096, 1.0);
        return IterAction::kContinue;
      },
      [&] { return n; }, opts);
  EXPECT_EQ(wr.exec.trip, n);
  EXPECT_FALSE(wr.exec.reexecuted_sequentially);
  EXPECT_GT(wr.peak_stamp_bytes, 0u);  // the probe really was consulted
}

// ---- concurrent arena stress (TSan runs Mem* in CI) -------------------------

TEST(MemArenaStress, ConcurrentAllocateFreeIsRaceFree) {
  // Two access patterns under contention: every thread hammering its own
  // local arena (the intended discipline — uncontended mutex), plus all
  // threads sharing ONE arena (the mutex actually contended).  TSan watches
  // the free-list splicing and the budget's relaxed counters.
  mem::Arena shared;
  constexpr int kThreads = 4, kRounds = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&shared, t] {
      mem::Arena& local = mem::local_arena();
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t sz = 64u << (r % 5);  // 64 B ... 1 KiB
        auto* a = static_cast<unsigned char*>(local.allocate(sz));
        auto* b = static_cast<unsigned char*>(shared.allocate(sz));
        a[0] = static_cast<unsigned char>(t);
        a[sz - 1] = static_cast<unsigned char>(r);
        b[0] = static_cast<unsigned char>(t);
        b[sz - 1] = static_cast<unsigned char>(r);
        local.deallocate(a, sz);
        shared.deallocate(b, sz);
      }
    });
  }
  for (auto& t : ts) t.join();
  const mem::ArenaStats st = shared.stats();
  EXPECT_EQ(st.block_allocs, kThreads * kRounds);
  EXPECT_EQ(st.frees, kThreads * kRounds);
}

}  // namespace
}  // namespace wlp
