#include <gtest/gtest.h>

#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/mcsparse_pivot.hpp"

namespace wlp::workloads {
namespace {

TEST(McsparseSearch, SequentialFindsAcceptablePivot) {
  const SparseMatrix m = gen_grid7(10, 10, 4);
  McsparsePivotSearch search(m, {});
  long trip = 0;
  const PivotCandidate p = search.search_sequential(&trip);
  ASSERT_TRUE(p.valid());
  EXPECT_TRUE(search.acceptable(p));
  EXPECT_GT(trip, 0);
}

TEST(McsparseSearch, DoanyReturnsSomeAcceptablePivot) {
  ThreadPool pool(4);
  const SparseMatrix m = gen_power_flow(500, 3200, 0.03, 77);
  McsparsePivotSearch search(m, {});
  ExecReport r;
  const PivotCandidate p = search.search_doany(pool, r);
  ASSERT_TRUE(p.valid());
  // DOANY contract: any admissible pivot is correct — not necessarily the
  // sequential one.
  EXPECT_TRUE(search.acceptable(p));
  EXPECT_EQ(r.method, Method::kDoany);
  EXPECT_FALSE(r.used_stamps);      // no time-stamps
  EXPECT_FALSE(r.used_checkpoint);  // no backups
}

TEST(McsparseSearch, DoanyStopsEarly) {
  ThreadPool pool(4);
  const SparseMatrix m = gen_grid7(12, 12, 5);
  McsparsePivotSearch search(m, {});
  ExecReport r;
  const PivotCandidate p = search.search_doany(pool, r);
  ASSERT_TRUE(p.valid());
  EXPECT_LT(r.started, search.candidates());
}

TEST(McsparseSearch, CandidatesCoverRowsAndColumns) {
  const SparseMatrix m = gen_grid7(5, 5, 2);
  McsparsePivotSearch search(m, {});
  EXPECT_EQ(search.candidates(), m.rows() + m.cols());
}

TEST(McsparseSearch, TighterAcceptanceMeansLongerSearch) {
  // The mechanism behind the paper's input-dependent speedups: how many
  // candidates fail the acceptance criteria determines the search depth and
  // therefore the available parallelism.  Tightening the bound must
  // monotonically lengthen the search.
  const SparseMatrix m = gen_gematt11();
  long prev_trip = 0;
  for (long bound : {36L, 9L, 1L, 0L}) {
    DoanyConfig cfg;
    cfg.accept_cost = bound;
    McsparsePivotSearch search(m, cfg);
    long trip = 0;
    search.search_sequential(&trip);
    EXPECT_GE(trip, prev_trip) << "bound=" << bound;
    prev_trip = trip;
  }
  EXPECT_GT(prev_trip, 1);  // the tightest bound forces a genuine search
}

TEST(McsparseSearch, UnacceptableEverywhereRunsFullSearch) {
  const SparseMatrix m = gen_power_flow(100, 650, 0.05, 9);
  DoanyConfig cfg;
  cfg.accept_cost = -1;  // nothing can pass
  McsparsePivotSearch search(m, cfg);
  long trip = 0;
  const PivotCandidate p = search.search_sequential(&trip);
  EXPECT_FALSE(p.valid());
  EXPECT_EQ(trip, search.candidates());

  ThreadPool pool(4);
  ExecReport r;
  const PivotCandidate dp = search.search_doany(pool, r);
  EXPECT_FALSE(dp.valid());
  EXPECT_EQ(r.started, search.candidates());
}

TEST(McsparseSearch, ProfileMatchesSequentialTrip) {
  const SparseMatrix m = gen_saylr4();
  McsparsePivotSearch search(m, {});
  long trip = 0;
  search.search_sequential(&trip);
  const auto lp = search.profile();
  EXPECT_EQ(lp.trip, trip);
  EXPECT_EQ(lp.u, search.candidates());
  EXPECT_EQ(lp.writes_per_iter, 0);  // DOANY: no stamps
}

}  // namespace
}  // namespace wlp::workloads
