#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "wlp/sched/doall.hpp"

namespace wlp {
namespace {

struct DoallSchedCase {
  Sched sched;
  long chunk;
  const char* name;
};

class DoallAllSchedules : public ::testing::TestWithParam<DoallSchedCase> {};

TEST_P(DoallAllSchedules, PlainDoallCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const long n = 1000;
  std::vector<std::atomic<int>> hits(n);
  DoallOptions opts;
  opts.sched = GetParam().sched;
  opts.chunk = GetParam().chunk;
  doall(pool, 0, n, [&](long i, unsigned) { hits[static_cast<std::size_t>(i)]++; },
        opts);
  for (long i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST_P(DoallAllSchedules, QuitTripIsExactAndPrefixComplete) {
  ThreadPool pool(4);
  const long n = 2000;
  const long exit_at = 777;
  std::vector<std::atomic<int>> hits(n);
  DoallOptions opts;
  opts.sched = GetParam().sched;
  opts.chunk = GetParam().chunk;
  const QuitResult qr = doall_quit(
      pool, 0, n,
      [&](long i, unsigned) {
        hits[static_cast<std::size_t>(i)]++;
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, exit_at);
  // Every iteration below the trip count must have executed exactly once.
  for (long i = 0; i < exit_at; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  // No iteration ran twice.
  long started = 0;
  for (long i = 0; i < n; ++i) {
    EXPECT_LE(hits[static_cast<std::size_t>(i)].load(), 1);
    started += hits[static_cast<std::size_t>(i)].load();
  }
  EXPECT_EQ(started, qr.started);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DoallAllSchedules,
    ::testing::Values(DoallSchedCase{Sched::kDynamic, 1, "dyn1"},
                      DoallSchedCase{Sched::kDynamic, 16, "dyn16"},
                      DoallSchedCase{Sched::kStaticCyclic, 1, "cyclic"},
                      DoallSchedCase{Sched::kStaticBlock, 1, "block"}),
    [](const auto& info) { return info.param.name; });

TEST(DoallQuit, ExitAfterCountsTheIteration) {
  ThreadPool pool(4);
  const QuitResult qr = doall_quit(pool, 0, 100, [&](long i, unsigned) {
    return i == 40 ? IterAction::kExitAfter : IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 41);
}

TEST(DoallQuit, MinimumOfMultipleExitsWins) {
  ThreadPool pool(8);
  const QuitResult qr = doall_quit(pool, 0, 500, [&](long i, unsigned) {
    if (i == 200 || i == 150 || i == 420) return IterAction::kExit;
    return IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 150);
}

TEST(DoallQuit, NoExitMeansTripIsUpperBound) {
  ThreadPool pool(4);
  const QuitResult qr =
      doall_quit(pool, 0, 321, [](long, unsigned) { return IterAction::kContinue; });
  EXPECT_EQ(qr.trip, 321);
  EXPECT_EQ(qr.started, 321);
}

TEST(DoallQuit, EmptyRange) {
  ThreadPool pool(4);
  const QuitResult qr =
      doall_quit(pool, 0, 0, [](long, unsigned) { return IterAction::kExit; });
  EXPECT_EQ(qr.trip, 0);
  EXPECT_EQ(qr.started, 0);
}

TEST(DoallQuit, UseQuitFalseExecutesEverything) {
  ThreadPool pool(4);
  DoallOptions opts;
  opts.use_quit = false;
  const QuitResult qr = doall_quit(
      pool, 0, 300,
      [](long i, unsigned) {
        return i == 10 ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, 10);
  EXPECT_EQ(qr.started, 300);  // Induction-1: no QUIT hardware
}

TEST(DoallQuit, UseQuitTrueCutsOvershoot) {
  ThreadPool pool(4);
  const QuitResult qr = doall_quit(pool, 0, 100000, [](long i, unsigned) {
    return i == 10 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 10);
  // The cut must prevent the vast majority of the range from running.
  EXPECT_LT(qr.started, 1000);
}

TEST(DoallQuit, NonZeroLowerBound) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  const QuitResult qr = doall_quit(pool, 100, 200, [&](long i, unsigned) {
    sum += i;
    return IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 200);
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(QuitBound, FetchMinSemantics) {
  QuitBound q;
  EXPECT_FALSE(q.cut(1000000));
  q.quit(50);
  q.quit(70);
  q.quit(20);
  EXPECT_EQ(q.bound(), 20);
  EXPECT_TRUE(q.cut(20));
  EXPECT_TRUE(q.cut(21));
  EXPECT_FALSE(q.cut(19));
}

}  // namespace
}  // namespace wlp
