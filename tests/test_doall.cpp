#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "wlp/sched/doall.hpp"

namespace wlp {
namespace {

struct DoallSchedCase {
  Sched sched;
  long chunk;
  const char* name;
};

class DoallAllSchedules : public ::testing::TestWithParam<DoallSchedCase> {};

TEST_P(DoallAllSchedules, PlainDoallCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const long n = 1000;
  std::vector<std::atomic<int>> hits(n);
  DoallOptions opts;
  opts.sched = GetParam().sched;
  opts.chunk = GetParam().chunk;
  doall(pool, 0, n, [&](long i, unsigned) { hits[static_cast<std::size_t>(i)]++; },
        opts);
  for (long i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST_P(DoallAllSchedules, QuitTripIsExactAndPrefixComplete) {
  ThreadPool pool(4);
  const long n = 2000;
  const long exit_at = 777;
  std::vector<std::atomic<int>> hits(n);
  DoallOptions opts;
  opts.sched = GetParam().sched;
  opts.chunk = GetParam().chunk;
  const QuitResult qr = doall_quit(
      pool, 0, n,
      [&](long i, unsigned) {
        hits[static_cast<std::size_t>(i)]++;
        return i >= exit_at ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, exit_at);
  // Every iteration below the trip count must have executed exactly once.
  for (long i = 0; i < exit_at; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  // No iteration ran twice.
  long started = 0;
  for (long i = 0; i < n; ++i) {
    EXPECT_LE(hits[static_cast<std::size_t>(i)].load(), 1);
    started += hits[static_cast<std::size_t>(i)].load();
  }
  EXPECT_EQ(started, qr.started);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DoallAllSchedules,
    ::testing::Values(DoallSchedCase{Sched::kDynamic, 1, "dyn1"},
                      DoallSchedCase{Sched::kDynamic, 16, "dyn16"},
                      DoallSchedCase{Sched::kStaticCyclic, 1, "cyclic"},
                      DoallSchedCase{Sched::kStaticBlock, 1, "block"},
                      DoallSchedCase{Sched::kGuided, 1, "guided1"},
                      DoallSchedCase{Sched::kGuided, 8, "guided8"}),
    [](const auto& info) { return info.param.name; });

// Guided self-scheduling must deliver identical semantics to kDynamic (the
// parameterized suite above covers trip/coverage/QUIT) while touching the
// shared iteration counter geometrically fewer times.
TEST(DoallGuided, ClaimsFarFewerChunksThanDynamic) {
  ThreadPool pool(4);
  const long n = 20000;
  auto count_claims = [&](Sched sched) {
    DoallOptions opts;
    opts.sched = sched;
    opts.chunk = 1;
    const QuitResult qr = doall_quit(
        pool, 0, n, [](long, unsigned) { return IterAction::kContinue; }, opts);
    EXPECT_EQ(qr.trip, n);
    EXPECT_EQ(qr.started, n);
    return qr.claims;
  };
  const long dynamic_claims = count_claims(Sched::kDynamic);
  const long guided_claims = count_claims(Sched::kGuided);
  EXPECT_EQ(dynamic_claims, n);  // chunk 1: one claim per iteration
  EXPECT_GT(guided_claims, 0);
  // Guided claim count is O(p log(n/p)) — orders of magnitude below n.
  EXPECT_LT(guided_claims, n / 20);
}

TEST(DoallGuided, ChunkFloorBoundsClaimSize) {
  ThreadPool pool(4);
  const long n = 1000;
  DoallOptions opts;
  opts.sched = Sched::kGuided;
  opts.chunk = 64;  // floor: tail grabs never shrink below this
  std::atomic<long> ran{0};
  const QuitResult qr = doall_quit(
      pool, 0, n,
      [&](long, unsigned) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, n);
  EXPECT_EQ(ran.load(), n);
  // With a floor of 64, at most ceil(1000/64) + p claims can happen.
  EXPECT_LE(qr.claims, n / 64 + 1 + 4);
}

TEST(DoallGuided, QuitCutsOvershootMidChunk) {
  ThreadPool pool(4);
  const long n = 100000;
  DoallOptions opts;
  opts.sched = Sched::kGuided;
  const QuitResult qr = doall_quit(
      pool, 0, n,
      [](long i, unsigned) {
        return i == 10 ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, 10);
  // The first grabs are ~n/p iterations, but the in-chunk cut must stop
  // them soon after the QUIT lands — the whole range must not execute.
  EXPECT_LT(qr.started, n / 2);
}

TEST(DoallQuit, ExitAfterCountsTheIteration) {
  ThreadPool pool(4);
  const QuitResult qr = doall_quit(pool, 0, 100, [&](long i, unsigned) {
    return i == 40 ? IterAction::kExitAfter : IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 41);
}

TEST(DoallQuit, MinimumOfMultipleExitsWins) {
  ThreadPool pool(8);
  const QuitResult qr = doall_quit(pool, 0, 500, [&](long i, unsigned) {
    if (i == 200 || i == 150 || i == 420) return IterAction::kExit;
    return IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 150);
}

TEST(DoallQuit, NoExitMeansTripIsUpperBound) {
  ThreadPool pool(4);
  const QuitResult qr =
      doall_quit(pool, 0, 321, [](long, unsigned) { return IterAction::kContinue; });
  EXPECT_EQ(qr.trip, 321);
  EXPECT_EQ(qr.started, 321);
}

TEST(DoallQuit, EmptyRange) {
  ThreadPool pool(4);
  const QuitResult qr =
      doall_quit(pool, 0, 0, [](long, unsigned) { return IterAction::kExit; });
  EXPECT_EQ(qr.trip, 0);
  EXPECT_EQ(qr.started, 0);
}

TEST(DoallQuit, UseQuitFalseExecutesEverything) {
  ThreadPool pool(4);
  DoallOptions opts;
  opts.use_quit = false;
  const QuitResult qr = doall_quit(
      pool, 0, 300,
      [](long i, unsigned) {
        return i == 10 ? IterAction::kExit : IterAction::kContinue;
      },
      opts);
  EXPECT_EQ(qr.trip, 10);
  EXPECT_EQ(qr.started, 300);  // Induction-1: no QUIT hardware
}

TEST(DoallQuit, UseQuitTrueCutsOvershoot) {
  ThreadPool pool(4);
  const QuitResult qr = doall_quit(pool, 0, 100000, [](long i, unsigned) {
    return i == 10 ? IterAction::kExit : IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 10);
  // The cut must prevent the vast majority of the range from running.
  EXPECT_LT(qr.started, 1000);
}

TEST(DoallQuit, NonZeroLowerBound) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  const QuitResult qr = doall_quit(pool, 100, 200, [&](long i, unsigned) {
    sum += i;
    return IterAction::kContinue;
  });
  EXPECT_EQ(qr.trip, 200);
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(QuitBound, FetchMinSemantics) {
  QuitBound q;
  EXPECT_FALSE(q.cut(1000000));
  q.quit(50);
  q.quit(70);
  q.quit(20);
  EXPECT_EQ(q.bound(), 20);
  EXPECT_TRUE(q.cut(20));
  EXPECT_TRUE(q.cut(21));
  EXPECT_FALSE(q.cut(19));
}

}  // namespace
}  // namespace wlp
