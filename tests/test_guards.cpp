// Guarded (conditional) statements through the whole analysis pipeline:
// semantics, dependence treatment, classification, distribution and planned
// parallel execution.
#include <gtest/gtest.h>

#include <algorithm>

#include "wlp/analysis/execute_plan.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::ir {
namespace {

Env guard_env(long n) {
  Env e;
  e.scalars = {{"acc", 0.0}, {"k", 0.0}};
  e.arrays["A"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  e.arrays["R"] = std::vector<double>(static_cast<std::size_t>(n), 0.0);
  for (long i = 0; i < n; ++i)
    e.arrays["R"][static_cast<std::size_t>(i)] = static_cast<double>(i % 7);
  return e;
}

TEST(Guards, SequentialSemantics) {
  // if (R[i] > 3) A[i] = 1
  Loop loop;
  loop.max_iters = 20;
  loop.body.push_back(
      guarded(assign_array("A", index(), cnst(1)),
              bin('>', array("R", index()), cnst(3))));
  Env e = guard_env(20);
  EXPECT_EQ(run_sequential(loop, e), 20);
  for (long i = 0; i < 20; ++i)
    EXPECT_EQ(e.arrays["A"][static_cast<std::size_t>(i)], (i % 7) > 3 ? 1.0 : 0.0);
}

TEST(Guards, GuardedScalarIsSelfUse) {
  // if (R[i] > 3) acc = acc + 1  — a conditional accumulator.
  Loop loop;
  loop.max_iters = 20;
  loop.body.push_back(
      guarded(assign_scalar("acc", bin('+', scalar("acc"), cnst(1))),
              bin('>', array("R", index()), cnst(3))));
  const auto info = summarize(loop);
  EXPECT_TRUE(info[0].scalar_uses.count("acc"));  // implicit keep
  // Not privatizable: the def does not dominate its (implicit) use.
  const auto priv = privatizable_scalars(loop);
  EXPECT_EQ(std::find(priv.begin(), priv.end(), "acc"), priv.end());
}

TEST(Guards, ConditionalInductionIsNotClosedForm) {
  Loop loop;
  loop.max_iters = 20;
  loop.body.push_back(
      guarded(assign_scalar("k", bin('+', scalar("k"), cnst(1))),
              bin('>', array("R", index()), cnst(3))));
  const Distribution d = distribute(loop);
  ASSERT_EQ(d.blocks.size(), 1u);
  EXPECT_EQ(d.blocks[0].rec.kind, BlockKind::kSequential);
}

TEST(Guards, UnguardedSiblingStaysParallel) {
  Loop loop;
  loop.max_iters = 30;
  loop.body.push_back(
      guarded(assign_scalar("acc", bin('+', scalar("acc"), cnst(1))),
              bin('>', array("R", index()), cnst(3))));
  loop.body.push_back(assign_array("A", index(), bin('*', index(), cnst(2))));
  const Distribution d = distribute(loop);
  ASSERT_EQ(d.blocks.size(), 2u);
  EXPECT_EQ(d.blocks[0].rec.kind, BlockKind::kSequential);
  EXPECT_EQ(d.blocks[1].rec.kind, BlockKind::kParallel);
}

TEST(Guards, DistributedExecutionMatchesSequential) {
  // Mixed: conditional accumulator + guarded array write + RV exit.
  Loop loop;
  loop.max_iters = 50;
  loop.body.push_back(
      guarded(assign_scalar("acc", bin('+', scalar("acc"), cnst(1))),
              bin('>', array("R", index()), cnst(3))));
  loop.body.push_back(
      guarded(assign_array("A", index(), scalar("acc")),
              bin('<', array("R", index()), cnst(5))));
  loop.body.push_back(exit_if(bin('G', scalar("acc"), cnst(12))));

  Env seq = guard_env(50), dist = guard_env(50);
  const long t1 = run_sequential(loop, seq);
  const long t2 = run_distributed(loop, distribute(loop), dist);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(seq.scalars, dist.scalars);
  EXPECT_EQ(seq.arrays.at("A"), dist.arrays.at("A"));
}

TEST(Guards, PlannedParallelExecutionMatchesSequential) {
  Loop loop;
  loop.max_iters = 60;
  loop.body.push_back(
      guarded(assign_scalar("acc", bin('+', scalar("acc"), cnst(2))),
              bin('>', array("R", index()), cnst(2))));
  loop.body.push_back(assign_array("A", index(), bin('+', scalar("acc"), index())));
  loop.body.push_back(
      guarded(exit_if(bin('>', scalar("acc"), cnst(40))),
              bin('>', array("R", index()), cnst(0))));

  ThreadPool pool(4);
  Env seq = guard_env(60), par = guard_env(60);
  const long t1 = run_sequential(loop, seq);
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);
  EXPECT_EQ(ex.trip, t1) << plan.to_text(loop);
  EXPECT_EQ(seq.scalars, par.scalars);
  EXPECT_EQ(seq.arrays.at("A"), par.arrays.at("A"));
}

TEST(Guards, ToStringShowsGuard) {
  const Stmt s = guarded(assign_array("A", index(), cnst(1)),
                         bin('>', scalar("x"), cnst(0)));
  EXPECT_EQ(to_string(s), "if (x > 0): A[i] = 1");
}

/// Property: randomized guarded loops stay equivalent through distribution
/// and planned parallel execution.
class GuardProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuardProperty, AllExecutionsAgree) {
  ThreadPool pool(4);
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    Loop loop;
    loop.max_iters = 10 + static_cast<long>(rng.below(30));
    const double cut = static_cast<double>(rng.below(7));
    if (rng.chance(0.7))
      loop.body.push_back(
          guarded(assign_scalar("acc", bin('+', scalar("acc"), cnst(1))),
                  bin('>', array("R", index()), cnst(cut))));
    loop.body.push_back(
        guarded(assign_array("A", index(), bin('+', index(), cnst(1))),
                bin('<', array("R", index()), cnst(cut + 2))));
    if (rng.chance(0.5))
      loop.body.push_back(
          exit_if(bin('G', index(), cnst(static_cast<double>(rng.below(25))))));

    Env base = guard_env(loop.max_iters + 1);
    Env seq = base, dist = base, par = base;
    const long t1 = run_sequential(loop, seq);
    EXPECT_EQ(run_distributed(loop, distribute(loop), dist), t1);
    const PlanExecution ex =
        run_parallel_plan(pool, loop, make_plan(loop), par);
    EXPECT_EQ(ex.trip, t1);
    EXPECT_EQ(seq.scalars, dist.scalars);
    EXPECT_EQ(seq.scalars, par.scalars);
    EXPECT_EQ(seq.arrays.at("A"), dist.arrays.at("A"));
    EXPECT_EQ(seq.arrays.at("A"), par.arrays.at("A"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardProperty, ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace wlp::ir
