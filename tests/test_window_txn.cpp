// The transaction-aware window/budget seam (DESIGN.md §10): the EWMA cap
// derivation, the footprint_changed() notification chain (target ->
// transaction -> controller), the mid-run hash->dense flip, the process-wide
// budget charge — plus one regression test per accounting bug this seam
// fixed (double-counted adaptive backends, stale overshoot after the
// sequential fallback, peak polled before the post-claim growth).
//
// Every suite here matches Window* so the CI TSan job picks it up.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "wlp/analysis/execute_plan.hpp"
#include "wlp/core/sliding_window.hpp"
#include "wlp/core/speculative_strips.hpp"
#include "wlp/mem/budget.hpp"

namespace wlp {
namespace {

// ---- controller unit behavior ---------------------------------------------

TEST(WindowController, CapTracksMeasuredEwma) {
  WindowController ctl(2, 1 << 20, 8192);  // no seed: first sample is adopted
  // 4 in-flight iterations pinning 4 KiB -> 1 KiB/iteration measured.
  long w = ctl.adjust(64, 4, 4096);
  EXPECT_EQ(ctl.cap(), 8);  // 8192 / 1024
  EXPECT_EQ(ctl.cap_bytes(), 8192u);
  EXPECT_DOUBLE_EQ(ctl.bytes_per_iteration(), 1024.0);
  EXPECT_EQ(w, 8);  // clamped straight to the derived cap
  EXPECT_EQ(ctl.shrinks(), 1);

  // Occupancy at the budget: multiplicative decrease.
  w = ctl.adjust(w, 8, 8192);
  EXPECT_EQ(w, 4);
  EXPECT_EQ(ctl.shrinks(), 2);

  // Cheaper samples fold in smoothly and the cap re-derives upward.
  w = ctl.adjust(w, 4, 1024);  // sample 256 -> ewma 832
  EXPECT_EQ(ctl.cap(), 9);     // 8192 / 832
  EXPECT_EQ(w, 5);             // additive increase while comfortable
  EXPECT_EQ(ctl.grows(), 1);
}

TEST(WindowController, NotifiedStepAdoptsFreshSampleOutright) {
  WindowController notified(2, 1 << 20, 65536, 16);
  WindowController lagging(2, 1 << 20, 65536, 16);
  for (int i = 0; i < 3; ++i) {  // settle both EWMAs at 16 B/iteration
    notified.adjust(16, 8, 128);
    lagging.adjust(16, 8, 128);
  }
  ASSERT_EQ(notified.cap(), 4096);  // 65536 / 16

  // A backend flip multiplies the per-iteration footprint by 256.  The
  // notified controller must adopt the fresh sample in ONE decision; the
  // unnotified one smooths the jump away over 1/alpha claims.
  notified.footprint_changed();
  const long wn = notified.adjust(64, 4, 16384);  // sample 4096 B/iteration
  const long wl = lagging.adjust(64, 4, 16384);
  EXPECT_EQ(notified.cap(), 16);  // 65536 / 4096, no lag
  EXPECT_GT(lagging.cap(), notified.cap());
  EXPECT_LE(wn, 16);
  EXPECT_GT(wl, wn);
}

TEST(WindowController, ZeroBudgetNeverTouchesTheWindow) {
  WindowController ctl(2, 128, 0);
  EXPECT_EQ(ctl.cap(), 128);  // cap = max window, no budget to derive from
  EXPECT_EQ(ctl.adjust(64, 64, 1u << 30), 64);
  EXPECT_EQ(ctl.shrinks(), 0);
}

// ---- the flip notification chain (target -> transaction -> controller) ----

struct CountingListener final : FootprintListener {
  std::atomic<long> hits{0};
  void footprint_changed() noexcept override {
    hits.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(WindowTxn, FlipNotifiesTransactionAndListener) {
  const std::size_t n = 64;
  std::vector<double> init(n);
  for (std::size_t i = 0; i < n; ++i) init[i] = static_cast<double>(i);
  AdaptiveSpecArray<double> a(init, 1, 4, false);
  SpecTarget* targets[] = {&a};
  SpecTransaction txn(std::span<SpecTarget* const>(targets, 1));
  CountingListener listener;
  txn.set_footprint_listener(&listener);

  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);
  txn.begin(nullptr);
  a.set(0, 5, 10, 99.0);
  a.set(0, 6, 20, 88.0);
  const std::size_t before = txn.memory_bytes();

  a.flip_to_dense();
  EXPECT_EQ(a.backup_kind(), BackupKind::kDense);
  EXPECT_EQ(listener.hits.load(), 1);    // forwarded through the transaction
  EXPECT_EQ(txn.footprint_epochs(), 1);  // and counted there
  EXPECT_GT(txn.memory_bytes(), before);  // the step jump is visible

  a.set(0, 7, 30, 77.0);  // post-flip write: dense-stamped

  // Fused undo across the flip boundary: iteration 6 restores through the
  // hash slot it was recorded in, iteration 7 through the dense stamps,
  // iteration 5 survives.
  const long undone = txn.undo_beyond(6, nullptr);
  EXPECT_EQ(undone, 2);
  EXPECT_EQ(a.data()[10], 99.0);
  EXPECT_EQ(a.data()[20], 20.0);
  EXPECT_EQ(a.data()[30], 30.0);
}

TEST(WindowTxn, TargetUndoBeyondSpansFlipBoundary) {
  // Same boundary through the target's own virtual (no transaction): after
  // a flip the dense-mode undo must still drain the pre-flip hash residue.
  const std::size_t n = 64;
  std::vector<double> init(n, 1.0);
  AdaptiveSpecArray<double> a(init, 1, 4, false);
  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);
  a.set(0, 2, 8, 50.0);
  a.flip_to_dense();
  a.set(0, 3, 9, 60.0);
  EXPECT_EQ(a.undo_beyond(2, nullptr), 2);  // one hash slot + one stamp
  EXPECT_EQ(a.data()[8], 1.0);
  EXPECT_EQ(a.data()[9], 1.0);
}

// ---- the acceptance scenario: budget + forced hash->dense flip mid-loop ---

TEST(WindowTxn, FlipMidLoopShrinksWindowAndRespectsBudget) {
  // Single-worker pool: flip_to_dense from inside a body is quiescent (no
  // sibling mid-iteration), which is the documented contract.
  ThreadPool pool(1);
  const long n = 4096, u = 512, flip_at = 8;
  AdaptiveSpecArray<double> a(
      std::vector<double>(static_cast<std::size_t>(n), 0.0), pool.size(), 8,
      false);
  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);
  SpecTarget* targets[] = {&a};

  WindowOptions opts;
  opts.window = 64;
  opts.min_window = 2;
  // Above the post-flip dense base footprint (~3n doubles) but close enough
  // that occupancy * 2 crosses it: the controller must clamp immediately.
  opts.memory_budget = 128 * 1024;

  const WindowReport wr = sliding_window_speculative_while(
      pool, u, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        a.begin_iteration(vpn, i);
        if (i == flip_at) a.flip_to_dense();
        a.set(vpn, i, static_cast<std::size_t>(i), static_cast<double>(i) + 1.0);
        return IterAction::kContinue;
      },
      [&] { return u; }, opts);

  EXPECT_EQ(wr.exec.trip, u);
  EXPECT_FALSE(wr.exec.reexecuted_sequentially);
  EXPECT_EQ(a.backup_kind(), BackupKind::kDense);

  // The acceptance pin: measured peak never exceeded the budget, and it
  // covers the dense footprint the flip pinned (data + backup at least).
  EXPECT_LE(wr.peak_stamp_bytes, opts.memory_budget);
  EXPECT_GE(wr.peak_stamp_bytes, 2u * static_cast<std::size_t>(n) * sizeof(double));

  // The window halved down to its floor after the flip, and the cap was
  // re-derived from the MEASURED bytes (a static guess of 0 would have left
  // the cap at max_window).
  EXPECT_GT(wr.window_shrinks, 0);
  EXPECT_EQ(wr.final_window, opts.min_window);
  EXPECT_LT(wr.final_cap, opts.window);
  EXPECT_GT(wr.cap_bytes, 0u);

  for (long i = 0; i < u; ++i)
    ASSERT_EQ(a.data()[static_cast<std::size_t>(i)], static_cast<double>(i) + 1.0)
        << i;
  for (long i = u; i < n; ++i)
    ASSERT_EQ(a.data()[static_cast<std::size_t>(i)], 0.0) << i;
}

// ---- regression: stale overshoot after the sequential fallback ------------

TEST(WindowReexec, OvershotRecomputedAfterSequentialFallback) {
  // PD fails (flow dependence), the sequential rerun redefines the trip:
  // the overshoot must be recomputed against the NEW trip, not left at the
  // abandoned speculative value (which was 0 here — no exit fired).
  ThreadPool pool(4);
  const long n = 64, seq_trip = 10;
  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};

  // Window of 1 serializes the speculative bodies: the PD verdict still
  // fails (the marks record the cross-iteration read-then-write regardless
  // of execution order), but the dependent accesses never actually race —
  // this suite runs under TSan.
  WindowOptions opts;
  opts.window = 1;
  opts.min_window = 1;
  opts.max_window = 1;

  const WindowReport wr = sliding_window_speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i == 0) return IterAction::kContinue;
        const double prev = arr.get(vpn, static_cast<std::size_t>(i - 1));
        arr.set(vpn, i, static_cast<std::size_t>(i), prev + 1.0);
        return IterAction::kContinue;
      },
      [&] {
        // The serial semantics exit early: every speculative body at or past
        // iteration 10 was overshoot, all rolled back by the restore.
        auto& d = arr.data();
        for (long i = 0; i < seq_trip; ++i)
          d[static_cast<std::size_t>(i)] = static_cast<double>(i);
        return seq_trip;
      },
      opts);

  EXPECT_FALSE(wr.exec.pd_passed);
  EXPECT_TRUE(wr.exec.reexecuted_sequentially);
  EXPECT_EQ(wr.exec.trip, seq_trip);
  EXPECT_EQ(wr.exec.started, n);
  EXPECT_EQ(wr.exec.overshot, n - seq_trip);  // stale value would be 0
  EXPECT_EQ(arr.data()[5], 5.0);
  EXPECT_EQ(arr.data()[20], 0.0);  // restored, then never re-executed
}

// ---- regression: peak missed the post-claim growth ------------------------

TEST(WindowPeak, PostClaimGrowthObserved) {
  // Guided claiming on one worker issues the WHOLE range in a single claim
  // before any body runs, so every byte the bodies pin afterwards is
  // invisible to the in-claim polls: only the post-join poll can see it.
  ThreadPool pool(1);
  const long u = 256;
  std::atomic<std::size_t> live{0};
  WindowOptions opts;
  opts.window = 1024;
  opts.max_window = 4096;
  opts.memory_budget = 1u << 30;
  opts.sched = Sched::kGuided;
  opts.live_bytes = [&] { return live.load(std::memory_order_relaxed); };

  const WindowReport wr = sliding_window_while(
      pool, u,
      [&](long, unsigned) {
        live.fetch_add(64, std::memory_order_relaxed);
        return IterAction::kContinue;
      },
      opts);

  EXPECT_EQ(wr.exec.trip, u);
  EXPECT_EQ(wr.claims, 1);  // the whole range went out in one guided claim
  EXPECT_EQ(wr.peak_stamp_bytes, static_cast<std::size_t>(u) * 64);
  EXPECT_EQ(wr.exec.peak_spec_bytes, wr.peak_stamp_bytes);
}

// ---- regression: adaptive backend double-counting -------------------------

TEST(WindowAccounting, AdaptiveMemoryBytesReportsLiveBackend) {
  const std::size_t n = 4096;
  AdaptiveSpecArray<double> a(std::vector<double>(n, 1.0), 1, 4, false);
  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);

  // Hash retry, nothing written: nothing pinned.  The old accounting
  // charged the idle dense side's data + stamps (~3n bytes) here, which
  // collapsed any budgeted window to its floor for no reason.
  EXPECT_EQ(a.memory_bytes(), 0u);

  a.set(0, 0, 7, 2.0);
  a.set(0, 1, 9, 3.0);
  a.set(0, 2, 11, 4.0);
  EXPECT_GT(a.memory_bytes(), 0u);
  EXPECT_LT(a.memory_bytes(), n * sizeof(double));

  // The first reset still decides from the expected_writes hint; from the
  // second on, the measured tally drives it.  Hammer one location so the
  // write tally crosses the density threshold WITHOUT overflowing the hash
  // table (the tally counts writes, the table stores distinct locations):
  // the next retry decides dense.
  a.reset_marks();
  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);
  for (int k = 0; k < 3000; ++k) a.set(0, 3, 11, 5.0);
  a.reset_marks();
  ASSERT_EQ(a.backup_kind(), BackupKind::kDense);
  a.checkpoint(nullptr);
  // Dense retry pins data + backup (+ stamps); the hash side is empty and
  // contributes nothing.
  EXPECT_GE(a.memory_bytes(), 2 * n * sizeof(double));

  // Back to a hash retry: the dense data/stamps are no longer speculative
  // state, but the pooled backup buffer the dense retry allocated stays
  // held — exactly one n-element slice, not the 3n the old code charged.
  a.discard();
  a.set(0, 4, 13, 6.0);
  a.reset_marks();
  ASSERT_EQ(a.backup_kind(), BackupKind::kHash);
  EXPECT_GE(a.memory_bytes(), n * sizeof(double));
  EXPECT_LT(a.memory_bytes(), 2 * n * sizeof(double));
}

// ---- process-wide budget sharing ------------------------------------------

TEST(WindowProcessBudget, ConcurrentLoopsShareOneCeiling) {
  auto& budget = mem::Budget::process();
  const long base = budget.spec_bytes();
  const long foreign = 900 * 1024;

  ThreadPool pool(4);
  WindowOptions opts;
  opts.window = 64;
  opts.min_window = 2;
  opts.memory_budget = 1 << 20;
  opts.bytes_per_iteration = 64;
  opts.charge_process_budget = true;
  auto body = [](long, unsigned) { return IterAction::kContinue; };

  // A concurrent loop holds 900 KiB of the shared 1 MiB ceiling: this
  // loop's occupancy is tiny, but the process-wide SUM is not, so the
  // window must collapse to its floor anyway.
  budget.add_spec_bytes(foreign);
  const WindowReport crowded = sliding_window_while(pool, 2000, body, opts);
  EXPECT_EQ(crowded.exec.trip, 2000);
  EXPECT_GT(crowded.window_shrinks, 0);
  EXPECT_EQ(crowded.final_window, opts.min_window);
  // Our charge settled back to zero at release; the foreign charge remains.
  EXPECT_EQ(budget.spec_bytes(), base + foreign);
  budget.add_spec_bytes(-foreign);

  // Same loop with the ceiling to itself: comfortable, the window grows.
  const WindowReport alone = sliding_window_while(pool, 2000, body, opts);
  EXPECT_EQ(alone.exec.trip, 2000);
  EXPECT_GT(alone.final_window, crowded.final_window);
  EXPECT_EQ(budget.spec_bytes(), base);
}

// ---- transaction-aware strip control ---------------------------------------

TEST(WindowStrips, BudgetAdaptsStripLength) {
  ThreadPool pool(4);
  const long u = 512;
  const long strip = 128;

  auto make_body = [](SpecArray<double>& arr) {
    return [&arr](long i, unsigned vpn) {
      arr.begin_iteration(vpn, i);
      arr.set(vpn, i, static_cast<std::size_t>(i), static_cast<double>(i));
      return IterAction::kContinue;
    };
  };
  auto seq = [](long, long end) { return end; };

  // The dense footprint (~3n doubles) doubles past this budget: every
  // strip's poll halves the next one.
  {
    SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(u), 0.0),
                          pool.size(), false);
    SpecTarget* targets[] = {&arr};
    SpecOptions sopts;
    sopts.memory_budget = 16 * 1024;
    const StripSpecReport out = strip_speculative_while(
        pool, u, strip, std::span<SpecTarget* const>(targets, 1),
        make_body(arr), seq, sopts);
    EXPECT_EQ(out.exec.trip, u);
    EXPECT_GT(out.strip_shrinks, 0);
    EXPECT_LT(out.final_strip, strip);
    EXPECT_GE(out.exec.peak_spec_bytes,
              2u * static_cast<std::size_t>(u) * sizeof(double));
    for (long i = 0; i < u; ++i)
      ASSERT_EQ(arr.data()[static_cast<std::size_t>(i)], static_cast<double>(i));
  }

  // A comfortable budget leaves the strip at its configured length.
  {
    SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(u), 0.0),
                          pool.size(), false);
    SpecTarget* targets[] = {&arr};
    SpecOptions sopts;
    sopts.memory_budget = 1u << 30;
    const StripSpecReport out = strip_speculative_while(
        pool, u, strip, std::span<SpecTarget* const>(targets, 1),
        make_body(arr), seq, sopts);
    EXPECT_EQ(out.exec.trip, u);
    EXPECT_EQ(out.strip_shrinks, 0);
    EXPECT_EQ(out.final_strip, strip);
  }
}

}  // namespace
}  // namespace wlp

// ---- budgeted plan execution ----------------------------------------------

namespace wlp::ir {
namespace {

TEST(WindowPlan, BudgetedParallelBlocksMatchSequential) {
  // A[i] = R[i] * 3 — one parallel block whose write log grows monotonically
  // under a tiny budget: the interpreter must run it through the window
  // controller, report its decisions, and still produce the sequential
  // result exactly.
  ThreadPool pool(4);
  Loop loop;
  loop.max_iters = 400;
  loop.body.push_back(
      assign_array("A", index(), bin('*', array("R", index()), cnst(3))));

  Env base;
  base.arrays["A"] = std::vector<double>(400, 0.0);
  base.arrays["R"] = std::vector<double>(400, 0.0);
  for (long i = 0; i < 400; ++i)
    base.arrays["R"][static_cast<std::size_t>(i)] = static_cast<double>(i % 7);

  Env seq = base, par = base;
  const long t1 = run_sequential(loop, seq);
  const ParallelPlan plan = make_plan(loop);
  PlanExecOptions opts;
  opts.memory_budget = 1024;
  opts.window = 8;
  opts.min_window = 2;
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par, opts);

  EXPECT_EQ(ex.trip, t1);
  EXPECT_EQ(par.arrays.at("A"), seq.arrays.at("A"));
  EXPECT_GE(ex.window_runs, 1);
  EXPECT_GT(ex.window_peak_bytes, 0);
  EXPECT_GE(ex.window_shrinks, 1);  // the log outgrew the budget
  EXPECT_GE(ex.window_cap, opts.min_window);
  EXPECT_LE(ex.window_final, static_cast<long>(opts.window));
}

TEST(WindowPlan, UnbudgetedOverloadReportsNoWindowActivity) {
  ThreadPool pool(2);
  Loop loop;
  loop.max_iters = 50;
  loop.body.push_back(
      assign_array("A", index(), bin('+', array("R", index()), cnst(1))));
  Env env;
  env.arrays["A"] = std::vector<double>(50, 0.0);
  env.arrays["R"] = std::vector<double>(50, 2.0);
  const ParallelPlan plan = make_plan(loop);
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, env);
  EXPECT_EQ(ex.window_runs, 0);
  EXPECT_EQ(ex.window_shrinks, 0);
  EXPECT_EQ(ex.window_peak_bytes, 0);
}

}  // namespace
}  // namespace wlp::ir
