// An adaptive loop site — the paper's closing direction made executable.
//
// The same WHILE loop runs many times with varying data.  The site records
// trip counts and speculation outcomes across invocations (LoopStatistics),
// derives the Section 8.1 stamping threshold from them, and consults the
// Section 7 cost model weighted by the failure history before speculating
// again.  When the workload turns hostile (dependences appear), the site
// learns to stop speculating; when it calms down, fresh successes would
// raise the probability again.
//
// Build & run:  ./example_adaptive_site
#include <cstdio>
#include <vector>

#include "wlp/core/adaptive.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/support/prng.hpp"

using namespace wlp;

namespace {

/// One invocation of the loop site: writes through an index table that is
/// either a permutation (independent) or colliding (dependent).
ExecReport invoke_site(ThreadPool& pool, bool hostile, long n, long trip_hint,
                       Xoshiro256& rng) {
  std::vector<std::int32_t> sub(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i)
    sub[static_cast<std::size_t>(i)] =
        hostile ? static_cast<std::int32_t>(i % 37)
                : static_cast<std::int32_t>(i);
  const long exit_at = trip_hint + static_cast<long>(rng.below(64));

  SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                        pool.size(), true);
  SpecTarget* targets[] = {&arr};
  return speculative_while(
      pool, n, std::span<SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return IterAction::kExit;
        const auto slot = static_cast<std::size_t>(sub[static_cast<std::size_t>(i)]);
        arr.set(vpn, i, slot, arr.get(vpn, slot) + 1.0);
        return IterAction::kContinue;
      },
      [&] { return exit_at; });
}

}  // namespace

int main() {
  ThreadPool pool;
  Xoshiro256 rng(99);
  LoopStatistics stats;

  const Prediction pred =
      predict({8000.0, 0.0}, {8000, 1.0, true, true}, 8,
              DispatcherParallelism::kFull);

  std::printf("phase 1: friendly data (permutation subscripts)\n");
  for (int k = 0; k < 6; ++k) {
    const ExecReport r = invoke_site(pool, false, 4000, 3000, rng);
    stats.record(r);
    std::printf("  run %d: trip=%-5ld pd=%s   P(parallel)=%.2f  n'_i=%ld  speculate next? %s\n",
                k, r.trip, r.pd_passed ? "pass" : "FAIL",
                stats.parallel_probability(), stats.stamp_threshold().value,
                stats.should_speculate(pred) ? "yes" : "no");
  }

  std::printf("\nphase 2: hostile data (colliding subscripts)\n");
  bool stopped = false;
  for (int k = 0; k < 14; ++k) {
    if (!stats.should_speculate(pred)) {
      std::printf("  run %d: site SWITCHED OFF speculation after %ld invocations\n",
                  k, stats.invocations());
      stopped = true;
      break;
    }
    const ExecReport r = invoke_site(pool, true, 4000, 3000, rng);
    stats.record(r);
    std::printf("  run %d: trip=%-5ld pd=%s   P(parallel)=%.2f  speculate next? %s\n",
                k, r.trip, r.pd_passed ? "pass" : "FAIL",
                stats.parallel_probability(),
                stats.should_speculate(pred) ? "yes" : "no");
  }

  std::printf("\n%s\n", stopped
                            ? "OK: the site learned to stop speculating on hostile data"
                            : "NOTE: the site kept speculating (history not hostile enough)");
  return stopped ? 0 : 1;
}
