// Speculative execution with the run-time PD test — Section 5 end to end.
//
// The loop writes A[sub[i]] where sub[] is computed at run time, so no
// compiler can prove independence.  We speculate twice:
//   * with sub[] a permutation  -> the PD test passes, overshoot is undone;
//   * with sub[] colliding      -> the PD test detects the cross-iteration
//     dependences, restores everything, and re-executes sequentially.
// Either way the final state equals the sequential result — speculation is
// invisible except in speed.
//
// Build & run:  ./example_speculative_pd
#include <cstdio>
#include <numeric>
#include <vector>

#include "wlp/core/speculative.hpp"
#include "wlp/support/prng.hpp"

namespace {

struct Scenario {
  const char* name;
  std::vector<std::int32_t> sub;
};

int run_scenario(wlp::ThreadPool& pool, const Scenario& sc, long n, long exit_at) {
  // Sequential reference.
  std::vector<double> ref(static_cast<std::size_t>(n), 0.0);
  for (long i = 0; i < exit_at; ++i)
    ref[static_cast<std::size_t>(sc.sub[static_cast<std::size_t>(i)])] += i * 0.5;

  wlp::SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                             pool.size(), /*run_pd_test=*/true);
  wlp::SpecTarget* targets[] = {&arr};

  const wlp::ExecReport r = wlp::speculative_while(
      pool, n, std::span<wlp::SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        if (i >= exit_at) return wlp::IterAction::kExit;
        const auto slot =
            static_cast<std::size_t>(sc.sub[static_cast<std::size_t>(i)]);
        arr.set(vpn, i, slot, arr.get(vpn, slot) + i * 0.5);
        return wlp::IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < exit_at; ++i)
          arr.data()[static_cast<std::size_t>(sc.sub[static_cast<std::size_t>(i)])] +=
              i * 0.5;
        return exit_at;
      });

  const bool exact = arr.data() == ref;
  std::printf("%-22s pd_passed=%-3s re-executed=%-3s trip=%ld undone=%ld  %s\n",
              sc.name, r.pd_passed ? "yes" : "no",
              r.reexecuted_sequentially ? "yes" : "no", r.trip, r.undone_writes,
              exact ? "state == sequential" : "STATE MISMATCH");
  return exact ? 0 : 1;
}

}  // namespace

int main() {
  wlp::ThreadPool pool;
  const long n = 4000, exit_at = 3000;

  Scenario independent{"independent (perm)", {}};
  independent.sub.resize(static_cast<std::size_t>(n));
  std::iota(independent.sub.begin(), independent.sub.end(), 0);
  wlp::Xoshiro256 rng(5);
  for (std::size_t k = independent.sub.size(); k > 1; --k)
    std::swap(independent.sub[k - 1],
              independent.sub[static_cast<std::size_t>(rng.below(k))]);

  Scenario colliding{"dependent (collisions)", {}};
  colliding.sub.resize(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i)
    colliding.sub[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i % 97);

  int rc = 0;
  rc |= run_scenario(pool, independent, n, exit_at);
  rc |= run_scenario(pool, colliding, n, exit_at);
  std::printf("%s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}
