// Quickstart: parallelize a WHILE loop whose iteration count nobody knows.
//
// The loop below scans a table for the first entry that fails a validation
// predicate — a DO loop with a conditional exit, which a classic compiler
// would run sequentially.  We run it three ways and compare:
//   1. sequential reference,
//   2. Induction-1 (every iteration executes; post-loop min-reduction),
//   3. Induction-2 (ordered issue + QUIT cuts the overshoot).
//
// Build & run:  ./example_quickstart
#include <cstdio>
#include <vector>

#include "wlp/core/while_induction.hpp"
#include "wlp/support/prng.hpp"

int main() {
  wlp::ThreadPool pool;  // one virtual processor per hardware thread (>= 4)

  // A table where entry 70'000 is the first invalid one.
  const long n = 100000;
  std::vector<double> table(static_cast<std::size_t>(n));
  wlp::Xoshiro256 rng(2024);
  for (auto& v : table) v = rng.uniform(0.0, 1.0);
  table[70000] = -1.0;  // the needle

  // The loop body: IterAction tells the runtime how the iteration ended.
  auto body = [&](long i, unsigned /*vpn*/) {
    const bool invalid = table[static_cast<std::size_t>(i)] < 0.0;
    return invalid ? wlp::IterAction::kExit : wlp::IterAction::kContinue;
  };

  const wlp::ExecReport seq = wlp::while_sequential(n, body);
  const wlp::ExecReport i1 = wlp::while_induction1(pool, n, body);
  const wlp::ExecReport i2 = wlp::while_induction2(pool, n, body);

  std::printf("sequential : trip=%ld iterations executed=%ld\n", seq.trip,
              seq.started);
  std::printf("Induction-1: trip=%ld iterations executed=%ld overshoot=%ld\n",
              i1.trip, i1.started, i1.overshot);
  std::printf("Induction-2: trip=%ld iterations executed=%ld overshoot=%ld\n",
              i2.trip, i2.started, i2.overshot);

  const bool ok = i1.trip == seq.trip && i2.trip == seq.trip;
  std::printf("%s: all methods recovered the sequential trip count\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
