// Sparse LU with a parallelized pivot search — the MA28 scenario.
//
// The Markowitz pivot search (MA30AD loops 270/320) is a WHILE loop with an
// RV terminator: it walks candidates in increasing nonzero count and stops
// when the running best cost cannot be improved.  Because MA28 is a
// sequential program, the parallel search must return EXACTLY the pivot the
// sequential search would — the time-stamp-ordered reduction does that.
// This example runs the search both ways on a power-flow-style matrix,
// verifies they agree, then completes a real factorization and solve.
//
// Build & run:  ./example_sparse_solver
#include <cstdio>

#include "wlp/workloads/hb_generator.hpp"
#include "wlp/workloads/ma28_pivot.hpp"
#include "wlp/workloads/sparse_lu.hpp"

int main() {
  using namespace wlp::workloads;
  wlp::ThreadPool pool;

  const SparseMatrix a = gen_power_flow(400, 2600, 0.03, 99);
  std::printf("matrix: n=%d nnz=%ld (synthetic power-flow pattern)\n", a.rows(),
              a.nnz());

  Ma28PivotSearch search(a, {});
  long seq_trip = 0;
  const PivotCandidate seq = search.search_sequential(&seq_trip);
  std::printf("sequential search : pivot=(%d,%d) cost=%ld after %ld of %ld candidates\n",
              seq.row, seq.col, seq.cost, seq_trip, search.candidates());

  wlp::ExecReport rep;
  const PivotCandidate par = search.search_induction1(pool, rep);
  std::printf("parallel search   : pivot=(%d,%d) cost=%ld trip=%ld (stamped reduction)\n",
              par.row, par.col, par.cost, rep.trip);
  if (par.row != seq.row || par.col != seq.col) {
    std::printf("MISMATCH: parallel pivot differs from sequential\n");
    return 1;
  }

  MarkowitzLU lu(a);
  if (!lu.factor()) {
    std::printf("factorization failed\n");
    return 1;
  }
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  const std::vector<double> x = lu.solve(b);
  const double res = residual_inf_norm(a, x, b);
  std::printf("LU: fill-in=%ld  ||Ax-b||_inf=%.3e\n", lu.fill_in(), res);
  std::printf("%s\n", res < 1e-8 ? "OK: sequentially consistent search + accurate solve"
                                 : "RESIDUAL TOO LARGE");
  return res < 1e-8 ? 0 : 1;
}
