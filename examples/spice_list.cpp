// Linked-list traversal parallelization — the SPICE LOAD scenario.
//
// The device models live on a linked list; the dispatcher is a pointer
// chase (a general recurrence, inherently sequential) and the terminator is
// RI (null pointer), so per Table 1 nothing overshoots and no undo is
// needed.  The General-1/2/3 methods overlap the model evaluations while
// the traversal proceeds; the Wu-Lewis baselines show what the prior art
// achieves on the same loop.  The simulated 8-processor machine then
// reports the speedup each method would reach (Figure 6's experiment).
//
// Build & run:  ./example_spice_list
#include <cstdio>
#include <string>

#include "wlp/sim/simulator.hpp"
#include "wlp/support/table.hpp"
#include "wlp/workloads/spice.hpp"

int main() {
  wlp::ThreadPool pool;
  wlp::workloads::SpiceConfig cfg;
  cfg.devices = 4000;
  const wlp::workloads::SpiceLoad load(cfg);

  // Reference result.
  std::vector<double> ref = load.fresh_matrix();
  load.run_sequential(ref);

  struct Row {
    const char* name;
    wlp::ExecReport report;
    bool exact;
  };
  std::vector<Row> rows;

  auto run = [&](const char* name, auto&& method) {
    std::vector<double> out = load.fresh_matrix();
    const wlp::ExecReport r = method(out);
    rows.push_back({name, r, out == ref});
  };
  run("General-1 (locks)", [&](auto& m) { return load.run_general1(pool, m); });
  run("General-2 (static)", [&](auto& m) { return load.run_general2(pool, m); });
  run("General-3 (dynamic)", [&](auto& m) { return load.run_general3(pool, m); });
  run("WuLewis distribute", [&](auto& m) { return load.run_wu_lewis_distribute(pool, m); });
  run("WuLewis doacross", [&](auto& m) { return load.run_wu_lewis_doacross(pool, m); });

  wlp::TextTable table({"method", "trip", "hops", "exact result",
                        "sim speedup @ p=8"});
  const wlp::sim::Simulator sim;
  const auto profile = load.profile();
  auto sim_speedup = [&](wlp::Method m) {
    return sim.run(m, profile, 8).speedup;
  };
  const wlp::Method methods[] = {
      wlp::Method::kGeneral1, wlp::Method::kGeneral2, wlp::Method::kGeneral3,
      wlp::Method::kWuLewisDistribute, wlp::Method::kWuLewisDoacross};
  for (std::size_t k = 0; k < rows.size(); ++k) {
    table.row({rows[k].name, wlp::TextTable::num(rows[k].report.trip),
               wlp::TextTable::num(rows[k].report.dispatcher_steps),
               rows[k].exact ? "yes" : "NO",
               wlp::TextTable::num(sim_speedup(methods[k]))});
  }
  table.print();

  for (const Row& r : rows)
    if (!r.exact) {
      std::printf("MISMATCH in %s\n", r.name);
      return 1;
    }
  std::printf("OK: every method reproduced the sequential matrix exactly\n");
  return 0;
}
