// Resource-controlled self-scheduling — Section 8.2's sliding window.
//
// Time-stamp memory grows with the spread between the oldest incomplete and
// the newest issued iteration.  The windowed scheduler bounds that spread
// and adapts the window to a memory budget: this example runs the same loop
// under three budgets and prints the window the controller settled on, the
// maximum spread observed, and the peak stamp memory — which always stays
// within the budget.
//
// Build & run:  ./example_adaptive_window
#include <cstdio>

#include "wlp/core/sliding_window.hpp"
#include "wlp/support/table.hpp"

int main() {
  wlp::ThreadPool pool;
  const long n = 20000;
  const std::size_t bytes_per_iter = 64;  // e.g. 8 stamped writes x 8 bytes

  wlp::TextTable table(
      {"budget (KiB)", "final window", "max spread", "peak stamp KiB", "trip"});

  for (const std::size_t budget_kib : {1, 8, 64}) {
    wlp::WindowOptions opts;
    opts.window = 4096;  // start big; the budget will cap it
    opts.min_window = 2;
    opts.bytes_per_iteration = bytes_per_iter;
    opts.memory_budget = budget_kib * 1024;

    const wlp::WindowReport wr = wlp::sliding_window_while(
        pool, n,
        [](long i, unsigned) {
          // A loop with a late RV exit.
          return i == 18000 ? wlp::IterAction::kExit : wlp::IterAction::kContinue;
        },
        opts);

    table.row({wlp::TextTable::num(static_cast<long>(budget_kib)),
               wlp::TextTable::num(wr.final_window),
               wlp::TextTable::num(wr.max_span),
               wlp::TextTable::num(static_cast<double>(wr.peak_stamp_bytes) / 1024.0, 2),
               wlp::TextTable::num(wr.exec.trip)});

    if (wr.peak_stamp_bytes > opts.memory_budget) {
      std::printf("BUDGET EXCEEDED\n");
      return 1;
    }
  }
  table.print();
  std::printf("OK: stamp memory stayed within every budget\n");
  return 0;
}
