// Automatic transformation end to end: express a WHILE loop in the library's
// loop IR, let the analysis distribute and plan it, then execute the plan in
// parallel — dependence graph to DOALL without touching the runtime API.
//
// The loop is Figure 3(a) of the paper:
//
//     while (f(r) < V) { WORK(r); r = a*r + b }
//
// The planner recognizes the associative dispatcher, splits off the WORK as
// a parallel block, and the executor evaluates the recurrence terms with a
// genuine parallel prefix computation before running the remainder as a
// DOALL.
//
// Build & run:  ./example_auto_transform
#include <cmath>
#include <cstdio>

#include "wlp/analysis/execute_plan.hpp"

using namespace wlp::ir;

int main() {
  wlp::ThreadPool pool;

  Loop loop;
  loop.name = "fig3a";
  loop.max_iters = 5000;
  loop.body.push_back(exit_if(bin('G', call("f", scalar("r")), scalar("V"))));
  loop.body.push_back(assign_array("OUT", index(), call("work", scalar("r"))));
  loop.body.push_back(
      assign_scalar("r", bin('+', bin('*', cnst(1.01), scalar("r")), cnst(1))));

  Env env;
  env.scalars = {{"r", 1.0}, {"V", 5000.0}};
  env.arrays["OUT"] = std::vector<double>(5000, 0.0);
  env.funcs["f"] = [](double x) { return x; };
  env.funcs["work"] = [](double x) { return std::sqrt(x) + 1.0; };

  const ParallelPlan plan = make_plan(loop);
  std::printf("%s\n", plan.to_text(loop).c_str());

  Env seq = env;
  const long seq_trip = run_sequential(loop, seq);

  Env par = env;
  const PlanExecution ex = run_parallel_plan(pool, loop, plan, par);

  std::printf("sequential trip=%ld  planned-parallel trip=%ld\n", seq_trip, ex.trip);
  std::printf("prefix-evaluated recurrence blocks: %ld, DOALL blocks: %ld\n",
              ex.prefix_blocks, ex.parallel_blocks);
  std::printf("writes logged=%ld, discarded as overshoot=%ld\n", ex.logged_writes,
              ex.discarded_writes);

  double max_err = 0;
  for (std::size_t i = 0; i < seq.arrays["OUT"].size(); ++i)
    max_err = std::max(max_err,
                       std::abs(seq.arrays["OUT"][i] - par.arrays["OUT"][i]));
  std::printf("max |seq - parallel| over OUT: %.3e\n", max_err);
  const bool ok = ex.trip == seq_trip && max_err < 1e-9;
  std::printf("%s\n", ok ? "OK: the automatically transformed loop matches"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
