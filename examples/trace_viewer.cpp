// Tracing a speculative run — the wlp::obs subsystem end to end.
//
// Enables the tracer, executes one speculative WHILE loop whose parallel
// execution overshoots the real exit (so the undo machinery fires), then
// exports everything as Chrome trace-event JSON.  Load the file in
// chrome://tracing or https://ui.perfetto.dev to see the timeline: the
// fork-join launches, every scheduler claim, the PD analysis and the undo
// span with its write count, one track per worker thread.
//
// Also dumps the metrics registry snapshot next to the trace, so the
// counters (wlp.spec.rounds, wlp.spec.pd_pass, wlp.doall.claims, ...) can
// be checked against the timeline.
//
// Build & run:  ./example_trace_viewer [trace.json] [metrics.json]
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "wlp/core/speculative.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/support/prng.hpp"

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "wlp_trace.json";
  const char* metrics_path = argc > 2 ? argv[2] : "wlp_metrics.json";

  if (!wlp::obs::compiled_in())
    std::printf("note: built with WLP_OBS=OFF — the runtime emits no events;\n"
                "      the exported trace will contain only this example's own.\n");

  wlp::obs::Tracer& tracer = wlp::obs::Tracer::instance();
  tracer.set_enabled(true);

  wlp::ThreadPool pool;
  const long n = 4000, exit_at = 3000;

  // A permutation subscript: independent accesses, so the PD test passes
  // and the overshoot past `exit_at` is undone via the time-stamps — which
  // is exactly the undo span we want on the timeline.
  std::vector<std::int32_t> sub(static_cast<std::size_t>(n));
  std::iota(sub.begin(), sub.end(), 0);
  wlp::Xoshiro256 rng(5);
  for (std::size_t k = sub.size(); k > 1; --k)
    std::swap(sub[k - 1], sub[static_cast<std::size_t>(rng.below(k))]);

  wlp::SpecArray<double> arr(std::vector<double>(static_cast<std::size_t>(n), 0.0),
                             pool.size(), /*run_pd_test=*/true);
  wlp::SpecTarget* targets[] = {&arr};

  const wlp::ExecReport r = wlp::speculative_while(
      pool, n, std::span<wlp::SpecTarget* const>(targets, 1),
      [&](long i, unsigned vpn) {
        arr.begin_iteration(vpn, i);
        // RV terminator: every iteration writes *before* the exit test, so
        // the exit-discovering iteration dirties the array and the undo span
        // in the trace carries a real write count.
        const auto slot = static_cast<std::size_t>(sub[static_cast<std::size_t>(i)]);
        arr.set(vpn, i, slot, arr.get(vpn, slot) + i * 0.5);
        return i >= exit_at ? wlp::IterAction::kExit : wlp::IterAction::kContinue;
      },
      [&] {
        for (long i = 0; i < exit_at; ++i)
          arr.data()[static_cast<std::size_t>(sub[static_cast<std::size_t>(i)])] +=
              i * 0.5;
        return exit_at;
      });

  tracer.set_enabled(false);
  std::printf("speculation: trip=%ld started=%ld overshot=%ld undone=%ld pd=%s\n",
              r.trip, r.started, r.overshot, r.undone_writes,
              r.pd_passed ? "passed" : "failed");
  std::printf("trace: %llu events buffered, %llu dropped\n",
              static_cast<unsigned long long>(tracer.emitted()),
              static_cast<unsigned long long>(tracer.dropped()));

  if (!tracer.write_chrome(trace_path)) {
    std::fprintf(stderr, "cannot open %s\n", trace_path);
    return 1;
  }
  std::printf("wrote %s  (open in chrome://tracing or ui.perfetto.dev)\n",
              trace_path);

  std::ofstream ms(metrics_path);
  if (!ms) {
    std::fprintf(stderr, "cannot open %s\n", metrics_path);
    return 1;
  }
  wlp::obs::Registry::instance().write_json(ms);
  std::printf("wrote %s\n", metrics_path);
  return 0;
}
