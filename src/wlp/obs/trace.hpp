// Per-thread lock-free event tracer with Chrome trace-event JSON export.
//
// Every thread that emits gets its own fixed-size ring of POD event slots,
// registered once (mutex-guarded) and thereafter written with plain stores
// plus one release store of the head counter — no CAS, no sharing, no
// allocation on the emit path.  The head counts *all* events ever emitted,
// so wraparound loses the oldest events but never corrupts the ring or the
// count: an exporter sees exactly the last min(head, capacity) events per
// thread plus an accurate dropped-event tally.
//
// Timestamps are raw TSC-class ticks (rdtsc / cntvct_el0; steady_clock
// nanoseconds elsewhere) converted to microseconds at export time against a
// (ticks, wall) anchor pair sampled when the tracer is constructed and again
// at export — emitting never pays a clock_gettime.
//
// Export produces the Chrome trace-event format (the JSON object form with
// a "traceEvents" array), loadable in chrome://tracing and Perfetto:
// complete events ("ph":"X") for scoped spans, instant events ("ph":"i")
// for point occurrences, counter events ("ph":"C") for sampled values.
// Rings outlive their threads (the registry owns them), so exporting after
// a ThreadPool join sees every helper's events; the join's release/acquire
// chain is what publishes the helpers' slots, hence the documented rule:
// EXPORT AND CLEAR ONLY AT QUIESCENT POINTS (no concurrent emission).
//
// Emission is runtime-toggleable (off by default: one relaxed bool load per
// skipped event); compile-time removal of the call sites is handled by the
// macros in obs.hpp, not here — this header always compiles so that tools
// and tests can drive the ring directly in WLP_OBS=OFF builds too.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace wlp::obs {

/// Raw timestamp ticks.  Monotonic, thread-consistent on the hosts we care
/// about (invariant TSC / generic timer); calibrated to wall time at export.
inline std::uint64_t ticks() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// One fixed-size trace slot.  `name` must be a string with static storage
/// duration (a literal at the instrumentation site) — slots store the
/// pointer, never the bytes.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start = 0;  ///< ticks
  std::uint64_t dur = 0;    ///< ticks; 0 for instant/counter events
  std::uint64_t arg0 = 0;   ///< event-specific (epoch, iteration, base, ...)
  std::uint64_t arg1 = 0;   ///< event-specific (vpn, take, count, ...)
  char ph = 'i';            ///< 'X' complete, 'i' instant, 'C' counter
};

/// Single-writer ring.  The owning thread emits; any thread may read at a
/// quiescent point (see file comment).
class TraceRing {
 public:
  TraceRing(std::uint32_t tid, std::size_t capacity_pow2)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1), tid_(tid) {}

  void emit(const TraceEvent& e) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & mask_] = e;
    // Release: an exporter that acquires `head_` sees the slot contents.
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint32_t tid() const noexcept { return tid_; }

  /// Events currently held (oldest first).  Quiescent-point only.
  std::vector<TraceEvent> snapshot() const;

  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_;
  std::uint32_t tid_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

/// Process-wide tracer: owns every thread's ring, the enable flag, and the
/// tick->wall calibration.  Access through Tracer::instance().
class Tracer {
 public:
  static Tracer& instance();

  /// Runtime toggle.  Off by default; flipping it on/off at any time is
  /// safe (emitters race benignly on the boundary events).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// This thread's ring, created and registered on first use.
  TraceRing& ring();

  /// Capacity (events, rounded up to a power of two) for rings created
  /// *after* this call.  Existing rings keep their size.
  void set_ring_capacity(std::size_t events);

  /// Sum of events that fell off the back of any ring.
  std::uint64_t dropped() const;
  /// Sum of events ever emitted across all rings.
  std::uint64_t emitted() const;

  /// Reset every ring's contents (quiescent-point only).
  void clear();

  /// Write the Chrome trace-event JSON object ({"traceEvents": [...]}) for
  /// everything currently buffered.  Quiescent-point only.
  void export_chrome(std::ostream& os) const;
  /// Convenience: export to a file.  Returns false if the file can't open.
  bool write_chrome(const std::string& path) const;

  /// All buffered events across all rings (oldest first per ring), for
  /// tests and programmatic consumers.  Quiescent-point only.
  std::vector<TraceEvent> snapshot_events() const;

  /// Nanoseconds per tick measured against the anchor (export-time helper,
  /// exposed for benchmarks that want to convert tick deltas themselves).
  double ns_per_tick() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards rings_ registration and capacity_
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::size_t capacity_ = 1 << 13;  ///< 8192 events/thread by default

  std::uint64_t anchor_ticks_ = 0;  ///< tick/wall pair at construction
  std::uint64_t anchor_ns_ = 0;
};

/// Hot-path helpers --------------------------------------------------------

inline bool trace_enabled() noexcept { return Tracer::instance().enabled(); }

inline void trace_instant(const char* name, std::uint64_t a0 = 0,
                          std::uint64_t a1 = 0) noexcept {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;
  t.ring().emit({name, ticks(), 0, a0, a1, 'i'});
}

inline void trace_counter(const char* name, std::uint64_t value) noexcept {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;
  t.ring().emit({name, ticks(), 0, value, 0, 'C'});
}

inline void trace_complete(const char* name, std::uint64_t start_ticks,
                           std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;
  const std::uint64_t now = ticks();
  t.ring().emit(
      {name, start_ticks, now > start_ticks ? now - start_ticks : 0, a0, a1, 'X'});
}

/// RAII span: records the start tick if tracing is on at construction and
/// emits one complete event at destruction (still checking the toggle, so a
/// span that straddles a disable is simply dropped).  Arguments may be
/// updated mid-scope via args() — e.g. an undo span that learns its write
/// count at the end.
class ScopedTrace {
 public:
  ScopedTrace(const char* name, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) noexcept
      : name_(name), a0_(a0), a1_(a1), live_(trace_enabled()) {
    if (live_) start_ = ticks();
  }
  ~ScopedTrace() {
    if (live_) trace_complete(name_, start_, a0_, a1_);
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  void args(std::uint64_t a0, std::uint64_t a1) noexcept {
    a0_ = a0;
    a1_ = a1;
  }

 private:
  const char* name_;
  std::uint64_t a0_, a1_;
  std::uint64_t start_ = 0;
  bool live_;
};

}  // namespace wlp::obs
