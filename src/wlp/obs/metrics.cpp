#include "wlp/obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "wlp/support/json.hpp"

namespace wlp::obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.emplace(std::string(name), Entry{}).first;
  if (!it->second.c) {
    assert(!it->second.g && !it->second.h && "metric kind mismatch");
    it->second.c = std::make_unique<Counter>();
  }
  return *it->second.c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.emplace(std::string(name), Entry{}).first;
  if (!it->second.g) {
    assert(!it->second.c && !it->second.h && "metric kind mismatch");
    it->second.g = std::make_unique<Gauge>();
  }
  return *it->second.g;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.emplace(std::string(name), Entry{}).first;
  if (!it->second.h) {
    assert(!it->second.c && !it->second.g && "metric kind mismatch");
    it->second.h = std::make_unique<Histogram>();
  }
  return *it->second.h;
}

int Registry::add_provider(Provider p) {
  std::lock_guard lock(mu_);
  const int id = next_provider_id_++;
  providers_.emplace_back(id, std::move(p));
  return id;
}

void Registry::remove_provider(int id) {
  std::lock_guard lock(mu_);
  std::erase_if(providers_, [id](const auto& pr) { return pr.first == id; });
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, e] : metrics_) {
      MetricSample s;
      s.name = name;
      if (e.c) {
        s.kind = MetricSample::Kind::kCounter;
        s.value = static_cast<std::int64_t>(e.c->value());
      } else if (e.g) {
        s.kind = MetricSample::Kind::kGauge;
        s.value = e.g->value();
      } else if (e.h) {
        s.kind = MetricSample::Kind::kHistogram;
        s.value = static_cast<std::int64_t>(e.h->count());
        s.sum = e.h->sum();
        s.mean = e.h->mean();
        s.p50 = e.h->quantile_bound(0.50);
        s.p99 = e.h->quantile_bound(0.99);
      } else {
        continue;  // name reserved but never materialized
      }
      out.push_back(std::move(s));
    }
    // Providers must not call back into the registry (mu_ is held).
    for (const auto& pr : providers_) pr.second(out);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  // Merge same-name samples: a live provider's view (e.g. a running
  // ThreadPool's `wlp.pool.launches`) plus the owned counter holding folded
  // totals from dead instances read as one figure.
  Snapshot merged;
  for (MetricSample& s : out) {
    if (!merged.empty() && merged.back().name == s.name &&
        merged.back().kind == s.kind) {
      MetricSample& m = merged.back();
      switch (s.kind) {
        case MetricSample::Kind::kCounter:
          m.value += s.value;
          break;
        case MetricSample::Kind::kGauge:
          m.value = s.value;  // last writer wins
          break;
        case MetricSample::Kind::kHistogram:
          m.value += s.value;
          m.sum += s.sum;
          m.mean = m.value ? static_cast<double>(m.sum) /
                                 static_cast<double>(m.value)
                           : 0.0;
          m.p50 = std::max(m.p50, s.p50);
          m.p99 = std::max(m.p99, s.p99);
          break;
      }
    } else {
      merged.push_back(std::move(s));
    }
  }
  return merged;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (e.c) e.c->reset();
    if (e.g) e.g->reset();
    if (e.h) e.h->reset();
  }
}

void Registry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_array();
  for (const MetricSample& s : snap) {
    w.begin_object();
    w.kv("name", s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        w.kv("type", "counter").kv("value", s.value);
        break;
      case MetricSample::Kind::kGauge:
        w.kv("type", "gauge").kv("value", s.value);
        break;
      case MetricSample::Kind::kHistogram:
        w.kv("type", "histogram")
            .kv("count", s.value)
            .kv("sum", s.sum)
            .kv("mean", s.mean)
            .kv("p50_bound", s.p50)
            .kv("p99_bound", s.p99);
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace wlp::obs
