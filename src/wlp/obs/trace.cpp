#include "wlp/obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <fstream>

#include "wlp/support/json.hpp"

namespace wlp::obs {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Each thread caches its ring pointer; the registry owns the ring, so the
// pointer stays valid after the thread exits (nobody reads it then) and
// after clear() (which resets heads, never deallocates).
thread_local TraceRing* tl_ring = nullptr;

}  // namespace

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t k = h - n; k < h; ++k)
    out.push_back(slots_[k & mask_]);
  return out;
}

Tracer::Tracer() {
  anchor_ticks_ = ticks();
  anchor_ns_ = wall_ns();
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

TraceRing& Tracer::ring() {
  if (tl_ring) return *tl_ring;
  std::lock_guard lock(mu_);
  const auto tid = static_cast<std::uint32_t>(rings_.size());
  rings_.push_back(std::make_unique<TraceRing>(tid, capacity_));
  tl_ring = rings_.back().get();
  return *tl_ring;
}

void Tracer::set_ring_capacity(std::size_t events) {
  std::lock_guard lock(mu_);
  capacity_ = std::bit_ceil(std::max<std::size_t>(events, 8));
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t d = 0;
  for (const auto& r : rings_) {
    const std::uint64_t e = r->emitted();
    if (e > r->capacity()) d += e - r->capacity();
  }
  return d;
}

std::uint64_t Tracer::emitted() const {
  std::lock_guard lock(mu_);
  std::uint64_t e = 0;
  for (const auto& r : rings_) e += r->emitted();
  return e;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  for (auto& r : rings_) r->clear();
}

double Tracer::ns_per_tick() const {
  const std::uint64_t dt = ticks() - anchor_ticks_;
  const std::uint64_t dn = wall_ns() - anchor_ns_;
  if (dt == 0 || dn == 0) return 1.0;
  return static_cast<double>(dn) / static_cast<double>(dt);
}

std::vector<TraceEvent> Tracer::snapshot_events() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& r : rings_) {
    auto v = r->snapshot();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

void Tracer::export_chrome(std::ostream& os) const {
  const double npt = ns_per_tick();
  std::lock_guard lock(mu_);
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& r : rings_) {
    for (const TraceEvent& e : r->snapshot()) {
      // Chrome expects microsecond timestamps relative to any common zero;
      // we anchor at tracer construction so traces start near t=0.
      const double ts_us =
          static_cast<double>(e.start - anchor_ticks_) * npt / 1e3;
      w.begin_object();
      w.kv("name", e.name ? e.name : "?");
      w.kv("cat", "wlp");
      w.key("ph").value(std::string_view(&e.ph, 1));
      w.kv("pid", 1);
      w.kv("tid", r->tid());
      w.kv("ts", ts_us);
      if (e.ph == 'X') w.kv("dur", static_cast<double>(e.dur) * npt / 1e3);
      if (e.ph == 'i') w.kv("s", "t");  // instant scope: thread
      w.key("args").begin_object();
      if (e.ph == 'C') {
        w.kv("value", e.arg0);
      } else {
        w.kv("a0", e.arg0);
        w.kv("a1", e.arg1);
      }
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  std::uint64_t d = 0;
  for (const auto& r : rings_) {
    const std::uint64_t e = r->emitted();
    if (e > r->capacity()) d += e - r->capacity();
  }
  w.kv("wlp_dropped_events", d);
  w.end_object();
  os << '\n';
}

bool Tracer::write_chrome(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  export_chrome(f);
  return f.good();
}

}  // namespace wlp::obs
