// Metrics registry: counters, gauges and log-scaled histograms with a
// process-wide name registry and pluggable live providers.
//
// Update paths are wait-free (one relaxed atomic RMW); registration is the
// only locked operation and instrumentation sites amortize it to zero with
// a function-local static reference:
//
//   static obs::Counter& c = obs::Registry::instance().counter("wlp.x.y");
//   c.add();
//
// (which is exactly what the WLP_OBS_* macros in obs.hpp expand to).
//
// Naming scheme: dot-separated `wlp.<subsystem>.<quantity>`, e.g.
// `wlp.pool.launches`, `wlp.doall.claims`, `wlp.spec.pd_fail`,
// `wlp.window.span` — see README "Observability" for the full inventory.
//
// Providers bridge component-local instrumentation into snapshots without
// double-counting on the hot path: a live ThreadPool registers a callback
// that contributes its PoolStats counters under `wlp.pool.*`; when the pool
// dies it unregisters and folds its final values into registry counters, so
// lifetime totals survive the pool.
//
// Histograms are log2-bucketed: value v lands in bucket bit_width(v)
// (bucket b covers [2^(b-1), 2^b)), 65 buckets cover the whole uint64
// range.  That is the right shape for the quantities the runtime observes —
// undo volumes, overshoot depths, claim sizes, wait durations — which vary
// over orders of magnitude.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wlp::obs {

/// Global toggle for the WLP_OBS_* metric macros (tracing has its own in
/// trace.hpp).  Metrics default ON: one relaxed add per event.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;  ///< bucket b: [2^(b-1), 2^b), b=0 is {0}

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t v) noexcept { return std::bit_width(v); }
  /// Upper bound (inclusive) of bucket b's value range.
  static std::uint64_t bucket_bound(int b) noexcept {
    return b == 0 ? 0 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Smallest bucket upper bound below which at least `q` (0..1] of the
  /// recorded values fall — a log2-resolution quantile.
  std::uint64_t quantile_bound(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t acc = 0;
    for (int b = 0; b < kBuckets; ++b) {
      acc += buckets_[b].load(std::memory_order_relaxed);
      if (acc >= target && acc > 0) return bucket_bound(b);
    }
    return bucket_bound(kBuckets - 1);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  alignas(64) std::atomic<std::uint64_t> sum_{0};
};

/// One flattened sample in a snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;       ///< counter/gauge value; histogram count
  std::uint64_t sum = 0;        ///< histogram only
  double mean = 0;              ///< histogram only
  std::uint64_t p50 = 0, p99 = 0;  ///< histogram log2 quantile bounds
};

using Snapshot = std::vector<MetricSample>;

/// A provider contributes live samples (e.g. a ThreadPool's PoolStats) to
/// every snapshot while registered.
using Provider = std::function<void(Snapshot&)>;

class Registry {
 public:
  static Registry& instance();

  /// Look up or create.  The returned reference is valid for the process
  /// lifetime; kind mismatches on the same name are a programming error and
  /// return the existing metric of the registered kind's storage (asserted
  /// in debug builds).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  int add_provider(Provider p);
  void remove_provider(int id);

  /// Flatten everything (owned metrics + providers), sorted by name.
  Snapshot snapshot() const;

  /// Reset owned counters/gauges/histograms (providers are live views and
  /// are not touched).
  void reset();

  /// Write the snapshot as JSON: {"metrics": [{...}, ...]}.
  void write_json(std::ostream& os) const;

 private:
  Registry() = default;

  struct Entry {
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
  std::vector<std::pair<int, Provider>> providers_;
  int next_provider_id_ = 1;
};

}  // namespace wlp::obs
