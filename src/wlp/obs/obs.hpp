// wlp::obs — the observability subsystem's instrumentation surface.
//
// Everything the runtime's hot paths touch goes through the macros below so
// that a WLP_OBS=OFF build (CMake option; compiles without the
// WLP_OBS_ENABLED definition) removes every hook at compile time: the
// macros expand to `((void)0)` and the instrumented binaries are
// bit-for-bit equivalent to uninstrumented ones on the fast path.  The
// *subsystem itself* (trace.hpp / metrics.hpp) always compiles, so tools
// and tests can drive rings and registries directly in either mode.
//
// With WLP_OBS=ON the hooks are runtime-toggleable:
//   * tracing   — obs::Tracer::instance().set_enabled(true); default OFF.
//     A disabled trace hook costs one relaxed bool load.
//   * metrics   — obs::set_metrics_enabled(false); default ON.
//     An enabled metric hook costs one relaxed atomic add.
//
// Macro vocabulary (name arguments must be string literals):
//   WLP_TRACE_SCOPE(name, a0, a1)    RAII span -> one Chrome 'X' event
//   WLP_TRACE_SCOPE_NAMED(var, ...)  same, but binds `var` so the span's
//                                    args can be updated before it closes
//   WLP_TRACE_INSTANT(name, a0, a1)  point event -> Chrome 'i'
//   WLP_TRACE_COUNTER(name, value)   sampled value -> Chrome 'C' track
//   WLP_OBS_COUNT(name, delta)       metrics counter add
//   WLP_OBS_GAUGE_SET(name, value)   metrics gauge store
//   WLP_OBS_HIST(name, value)        metrics histogram record
#pragma once

#include "wlp/obs/metrics.hpp"  // IWYU pragma: export
#include "wlp/obs/trace.hpp"    // IWYU pragma: export

namespace wlp::obs {

/// What WLP_TRACE_SCOPE_NAMED binds in a WLP_OBS=OFF build: accepts the
/// same member calls as ScopedTrace and optimizes to nothing.
struct NullScope {
  void args(std::uint64_t, std::uint64_t) noexcept {}
};

}  // namespace wlp::obs

#if defined(WLP_OBS_ENABLED)

#define WLP_OBS_CONCAT2(a, b) a##b
#define WLP_OBS_CONCAT(a, b) WLP_OBS_CONCAT2(a, b)

#define WLP_TRACE_SCOPE(name, a0, a1)                               \
  ::wlp::obs::ScopedTrace WLP_OBS_CONCAT(wlp_obs_scope_, __LINE__)( \
      name, static_cast<std::uint64_t>(a0), static_cast<std::uint64_t>(a1))

#define WLP_TRACE_SCOPE_NAMED(var, name, a0, a1)                        \
  ::wlp::obs::ScopedTrace var(name, static_cast<std::uint64_t>(a0),     \
                              static_cast<std::uint64_t>(a1))

#define WLP_TRACE_INSTANT(name, a0, a1)                                 \
  ::wlp::obs::trace_instant(name, static_cast<std::uint64_t>(a0),       \
                            static_cast<std::uint64_t>(a1))

#define WLP_TRACE_COUNTER(name, value) \
  ::wlp::obs::trace_counter(name, static_cast<std::uint64_t>(value))

#define WLP_OBS_COUNT(name, delta)                                         \
  do {                                                                     \
    if (::wlp::obs::metrics_enabled()) {                                   \
      static ::wlp::obs::Counter& wlp_obs_c =                              \
          ::wlp::obs::Registry::instance().counter(name);                  \
      wlp_obs_c.add(static_cast<std::uint64_t>(delta));                    \
    }                                                                      \
  } while (0)

#define WLP_OBS_GAUGE_SET(name, value)                                     \
  do {                                                                     \
    if (::wlp::obs::metrics_enabled()) {                                   \
      static ::wlp::obs::Gauge& wlp_obs_g =                                \
          ::wlp::obs::Registry::instance().gauge(name);                    \
      wlp_obs_g.set(static_cast<std::int64_t>(value));                     \
    }                                                                      \
  } while (0)

#define WLP_OBS_HIST(name, value)                                          \
  do {                                                                     \
    if (::wlp::obs::metrics_enabled()) {                                   \
      static ::wlp::obs::Histogram& wlp_obs_h =                            \
          ::wlp::obs::Registry::instance().histogram(name);                \
      wlp_obs_h.record(static_cast<std::uint64_t>(value));                 \
    }                                                                      \
  } while (0)

#else  // WLP_OBS disabled: every hook vanishes.

#define WLP_TRACE_SCOPE(name, a0, a1) ((void)0)
#define WLP_TRACE_SCOPE_NAMED(var, name, a0, a1) \
  [[maybe_unused]] ::wlp::obs::NullScope var

#define WLP_TRACE_INSTANT(name, a0, a1) ((void)0)
#define WLP_TRACE_COUNTER(name, value) ((void)0)
#define WLP_OBS_COUNT(name, delta) ((void)0)
#define WLP_OBS_GAUGE_SET(name, value) ((void)0)
#define WLP_OBS_HIST(name, value) ((void)0)

#endif  // WLP_OBS_ENABLED

namespace wlp::obs {

/// True when the instrumentation hooks are compiled in (WLP_OBS=ON).
constexpr bool compiled_in() noexcept {
#if defined(WLP_OBS_ENABLED)
  return true;
#else
  return false;
#endif
}

}  // namespace wlp::obs
