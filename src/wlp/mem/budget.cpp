#include "wlp/mem/budget.hpp"

#include "wlp/obs/obs.hpp"

namespace wlp::mem {

Budget::Budget() {
#if defined(WLP_OBS_ENABLED)
  // Live provider: every snapshot sees the ledger's current values without
  // the hot charge points ever touching the registry.  Registered once for
  // the process lifetime (the Budget singleton is leaked).
  obs::Registry::instance().add_provider([this](obs::Snapshot& out) {
    const BudgetSnapshot s = snapshot();
    auto push = [&out](const char* name, obs::MetricSample::Kind kind,
                       long v) {
      obs::MetricSample m;
      m.name = name;
      m.kind = kind;
      m.value = v;
      out.push_back(std::move(m));
    };
    using Kind = obs::MetricSample::Kind;
    push("wlp.mem.bytes_live", Kind::kGauge, s.bytes_live);
    push("wlp.mem.bytes_peak", Kind::kGauge, s.bytes_peak);
    push("wlp.mem.arena_allocs", Kind::kCounter, s.arena_allocs);
    push("wlp.mem.slow_allocs", Kind::kCounter, s.slow_allocs);
    push("wlp.mem.frees", Kind::kCounter, s.frees);
    push("wlp.mem.spec_bytes", Kind::kGauge, s.spec_bytes);
  });
#endif
}

Budget& Budget::process() {
  static Budget* b = new Budget();  // leaked: see header
  return *b;
}

}  // namespace wlp::mem
