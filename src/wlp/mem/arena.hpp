// wlp::mem — per-worker slab arenas with O(1) recycling.
//
// Three subsystems independently grew the same allocation discipline: the
// PD shadow pooled per-worker segments (PR 3), DOACROSS pooled chain slots
// per calling thread (PR 4), and the versioned array pooled its checkpoint
// buffer (PR 5).  The shared idiom was always "allocate once from the
// thread that will stream the buffer, keep it alive, and make logical
// clears an epoch bump" — this header is that idiom as one implementation,
// with one accounting surface (mem/budget.hpp) instead of three ad-hoc
// stats structs.
//
// Layout and contract:
//
//   * An Arena hands out cache-line-aligned blocks.  Small requests
//     (< 64 KiB) are rounded to a power-of-two class and carved from
//     bump-pointer slabs; large requests get a dedicated page-rounded OS
//     block.  Freed blocks push onto intrusive per-class free lists, so a
//     free/alloc pair of the same class is two pointer swaps under a mutex
//     — O(1) reuse with no OS traffic.  The mutex is uncontended by
//     design: an arena belongs to one virtual processor, and the runtime's
//     steady state performs no (de)allocations at all (the regression
//     tests assert exactly that through the budget counters).
//   * First-touch placement: a block's pages live on the node of the CPU
//     that first writes them.  Because per-worker buffers are allocated
//     lazily from the worker's own share (shadow segments on the first
//     mark, chain slots on the first window), the natural first toucher is
//     already the right one; when the topology is multi-node the arena
//     additionally stamps one byte per page at OS-allocation time so the
//     whole block is committed on the allocating worker's node before the
//     hot loop streams it.  Recycled blocks keep their placement — and
//     since recycling is per-arena and arenas are per-vpn, a recycled
//     block returns to the same worker whose node holds its pages.
//   * Single-node hosts: stamping is disabled (Topology::numa_mode() is
//     kOff) and every placement decision degenerates to a no-op; behavior
//     and layout are then identical to the per-subsystem pools this layer
//     retired.
//
// EpochClock (mem/epoch.hpp, re-exported here) is the other half of the
// retired idiom: the 32-bit generation counter with a once-per-2^32 wrap
// sweep that the PD shadow, the versioned array, the hash backup and the
// DOACROSS slots each hand-rolled.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "wlp/mem/epoch.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp::mem {

/// Per-arena reuse counters (the Budget aggregates the same events
/// process-wide; these are for tests that pin one arena's behavior).
struct ArenaStats {
  long block_allocs = 0;   ///< allocate() calls served
  long recycles = 0;       ///< ... of which came from a free list
  long os_allocs = 0;      ///< slabs/oversize blocks taken from the OS
  long frees = 0;          ///< deallocate() calls
  long bytes_held = 0;     ///< OS bytes this arena currently owns
  long pages_stamped = 0;  ///< pages first-touched at allocation time
};

class Arena {
 public:
  static constexpr std::size_t kPage = 4096;
  static constexpr std::size_t kSlabBytes = 1u << 20;  ///< small-class slab
  static constexpr std::size_t kMinClass = kCacheLine;
  static constexpr std::size_t kLargeMin = 64u * 1024;  ///< dedicated block

  /// `node` is the NUMA node this arena's blocks are intended for (-1 =
  /// unknown/don't care).  Placement is by first touch, so the node is
  /// advisory: it records intent for stats/tests; the actual binding is
  /// performed by stamping from the owning worker's thread.
  explicit Arena(int node = -1);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A cache-line-aligned block of at least `bytes`.  Thread-safe, but the
  /// intended discipline is single-owner: allocate from the thread that
  /// will stream the block (first-touch placement follows the caller).
  void* allocate(std::size_t bytes, std::size_t align = kCacheLine);

  /// Return a block for O(1) reuse.  `bytes` and `align` must match the
  /// allocate() call (they recompute the same size class).  The block's
  /// pages keep their placement.
  void deallocate(void* p, std::size_t bytes,
                  std::size_t align = kCacheLine) noexcept;

  /// Typed helpers (raw storage: the caller constructs/initializes).
  template <class T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }
  template <class T>
  void deallocate_array(T* p, std::size_t n) noexcept {
    deallocate(p, n * sizeof(T), alignof(T));
  }

  int node() const noexcept { return node_; }
  ArenaStats stats() const;

 private:
  struct OsBlock {
    void* p = nullptr;
    std::size_t bytes = 0;
    std::size_t align = 0;
  };

  std::size_t class_of(std::size_t bytes, std::size_t align) const noexcept;
  void* take_os_block(std::size_t bytes, std::size_t align);

  mutable std::mutex mu_;
  int node_ = -1;
  bool stamp_pages_ = false;  ///< first-touch stamping (multi-node only)
  std::vector<OsBlock> os_blocks_;  ///< everything owned, freed in dtor
  // Intrusive free lists: the first word of a free block points at the
  // next.  Small classes are indexed by log2; large blocks keyed by exact
  // rounded size (large consumers — segments, backups — recur with the
  // same sizes, so exact keys recycle perfectly without pow2 waste).
  static constexpr int kSmallClasses = 11;  ///< 64 B ... 64 KiB
  void* small_free_[kSmallClasses] = {};
  std::map<std::size_t, void*> large_free_;
  unsigned char* slab_cur_ = nullptr;  ///< bump pointer into the open slab
  std::size_t slab_left_ = 0;
  ArenaStats stats_;
};

/// The process's arena set: one lazily-built arena per virtual processor
/// slot, node-mapped through Topology::process().  Leaked (consumers may
/// be destroyed during static teardown and must still be able to return
/// blocks).
class ArenaSet {
 public:
  static constexpr unsigned kSlots = 256;

  static ArenaSet& process();

  /// Arena for virtual processor `vpn` (vpn beyond kSlots wraps — a pool
  /// that wide is already far past the placement heuristic's resolution).
  Arena& worker(unsigned vpn);

  /// The calling thread's home arena: each thread is assigned a slot on
  /// first use (the main thread, which calls first, lands on slot 0 —
  /// matching vpn 0, whose share it executes).  The slot assignment is an
  /// index only; the arena stays in the process set, so blocks survive the
  /// thread.
  Arena& local();

 private:
  ArenaSet() = default;

  std::atomic<Arena*> slots_[kSlots] = {};
  std::mutex mu_;
  std::atomic<unsigned> next_local_{0};
};

/// Shorthands used by the ported subsystems.
inline Arena& worker_arena(unsigned vpn) {
  return ArenaSet::process().worker(vpn);
}
inline Arena& local_arena() { return ArenaSet::process().local(); }

/// Minimal std-allocator adapter so container-shaped consumers (backup
/// buffers, stamp arrays, slot tables) draw from an arena without changing
/// their access patterns.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit ArenaAllocator(Arena& a) noexcept : arena_(&a) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  Arena* arena() const noexcept { return arena_; }

 private:
  Arena* arena_;
};

template <class A, class B>
bool operator==(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) noexcept {
  return a.arena() == b.arena();
}

}  // namespace wlp::mem
