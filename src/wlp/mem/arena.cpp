#include "wlp/mem/arena.hpp"

#include <cassert>
#include <new>

#include "wlp/mem/budget.hpp"
#include "wlp/mem/topology.hpp"

namespace wlp::mem {

namespace {

constexpr std::size_t kMaxAlign = 4096;

std::size_t round_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) & ~(a - 1);
}

/// log2 index for a small class: 64 B -> 0, 128 B -> 1, ... 64 KiB -> 10.
int small_index(std::size_t cls) noexcept {
  int i = 0;
  for (std::size_t c = Arena::kMinClass; c < cls; c <<= 1) ++i;
  return i;
}

void push_free(void*& head, void* p) noexcept {
  *static_cast<void**>(p) = head;
  head = p;
}

void* pop_free(void*& head) noexcept {
  void* p = head;
  if (p != nullptr) head = *static_cast<void**>(p);
  return p;
}

}  // namespace

Arena::Arena(int node) : node_(node) {
  // Stamping only pays when pages can land on a wrong node.
  stamp_pages_ = numa_placement_enabled();
}

Arena::~Arena() {
  std::lock_guard<std::mutex> lock(mu_);
  Budget& budget = Budget::process();
  for (const OsBlock& b : os_blocks_) {
    budget.on_os_release(b.bytes);
    ::operator delete(b.p, std::align_val_t(b.align));
  }
  os_blocks_.clear();
}

std::size_t Arena::class_of(std::size_t bytes,
                            std::size_t align) const noexcept {
  if (bytes == 0) bytes = 1;
  if (align < kMinClass) align = kMinClass;
  std::size_t need = round_up(bytes, align);
  if (need >= kLargeMin) return round_up(need, kPage);  // exact large class
  std::size_t cls = kMinClass;
  while (cls < need) cls <<= 1;
  return cls;
}

void* Arena::take_os_block(std::size_t bytes, std::size_t align) {
  void* p = ::operator new(bytes, std::align_val_t(align));
  os_blocks_.push_back(OsBlock{p, bytes, align});
  stats_.os_allocs += 1;
  stats_.bytes_held += static_cast<long>(bytes);
  Budget::process().on_os_alloc(bytes);
  if (stamp_pages_) {
    // First-touch commit: one write per page binds it to the calling CPU's
    // node before the consumer streams the block.  The written byte is
    // dead — consumers initialize their storage themselves.
    auto* b = static_cast<unsigned char*>(p);
    for (std::size_t off = 0; off < bytes; off += kPage) {
      b[off] = 0;
      stats_.pages_stamped += 1;
    }
  }
  return p;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align <= kMaxAlign && (align & (align - 1)) == 0);
  const std::size_t cls = class_of(bytes, align);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.block_allocs += 1;
  Budget::process().on_block_alloc();

  if (cls >= kLargeMin) {
    // Dedicated block, recycled by exact rounded size: the big consumers
    // (shadow segments, backup tables) recur with identical sizes, so
    // exact keys recycle perfectly without power-of-two waste.
    auto it = large_free_.find(cls);
    if (it != large_free_.end()) {
      void* p = pop_free(it->second);
      if (p != nullptr) {
        if (it->second == nullptr) large_free_.erase(it);
        stats_.recycles += 1;
        return p;
      }
      large_free_.erase(it);
    }
    return take_os_block(cls, kPage);
  }

  void*& head = small_free_[small_index(cls)];
  if (void* p = pop_free(head)) {
    stats_.recycles += 1;
    return p;
  }
  // Mixed classes carve from the same slab, so the bump pointer must be
  // re-aligned to this class (power-of-two classes from a page-aligned
  // base: aligning the offset to cls aligns the block to cls >= align).
  const std::size_t skew =
      reinterpret_cast<std::uintptr_t>(slab_cur_) & (cls - 1);
  const std::size_t pad = skew != 0 ? cls - skew : 0;
  if (slab_left_ < cls + pad) {
    slab_cur_ = static_cast<unsigned char*>(take_os_block(kSlabBytes, kPage));
    slab_left_ = kSlabBytes;
  } else {
    slab_cur_ += pad;
    slab_left_ -= pad;
  }
  void* p = slab_cur_;
  slab_cur_ += cls;
  slab_left_ -= cls;
  return p;
}

void Arena::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  const std::size_t cls = class_of(bytes, align);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.frees += 1;
  Budget::process().on_block_free();
  if (cls >= kLargeMin) {
    push_free(large_free_[cls], p);
  } else {
    push_free(small_free_[small_index(cls)], p);
  }
}

ArenaStats Arena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ArenaSet& ArenaSet::process() {
  static ArenaSet* s = new ArenaSet();  // leaked: see header
  return *s;
}

Arena& ArenaSet::worker(unsigned vpn) {
  const unsigned i = vpn % kSlots;
  Arena* a = slots_[i].load(std::memory_order_acquire);
  if (a != nullptr) return *a;
  std::lock_guard<std::mutex> lock(mu_);
  a = slots_[i].load(std::memory_order_relaxed);
  if (a == nullptr) {
    a = new Arena(Topology::process().worker_node(i));
    slots_[i].store(a, std::memory_order_release);
  }
  return *a;
}

Arena& ArenaSet::local() {
  thread_local unsigned mine =
      next_local_.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return worker(mine);
}

}  // namespace wlp::mem
