// wlp::mem — CPU/node topology discovery.
//
// The speculative machinery is bandwidth-bound: shadow segments, checkpoint
// backups and chain slots are streamed by exactly one worker each, so on a
// multi-socket host the difference between "the segment's pages live on the
// marking worker's node" and "they all live wherever the constructing thread
// ran" is the difference between local and remote DRAM bandwidth for every
// mark, stamp and undo scan.  This header answers the one question the
// placement layer needs: *which node should virtual processor `vpn`'s
// buffers land on?*
//
// Discovery reads sysfs (`/sys/devices/system/node/node*/cpulist` crossed
// with `/sys/devices/system/cpu/online`); the sysfs root is a parameter so
// tests inject fake fixtures (1-node, 2-node, offline-CPU layouts) without
// privileges.  Anything unparsable — non-Linux hosts, containers that hide
// the node directory, a truncated cpulist — degrades to a single node
// covering every online CPU: the fallback keeps every consumer's behavior
// identical to the pre-NUMA runtime (one node ⇒ every placement decision is
// a no-op), which is the "no behavior change on single-node hosts" contract
// the tests pin down.
//
// The worker→node map is a heuristic, not a guarantee: the pool does not
// pin threads by default (WLP_NUMA=pin opts in), so `worker_node(vpn)`
// assumes the OS spreads p workers across the machine the way `taskset`
// would — vpn v on the node owning online CPU (v mod ncpus).  Both the
// ThreadPool and the arena set derive their maps from this one function, so
// the thread that *marks* a segment and the arena that *placed* it agree.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wlp::mem {

/// How the runtime should treat NUMA placement, from the WLP_NUMA
/// environment variable: "0"/"off" disables page stamping and pinning,
/// "pin" additionally pins pool helpers to their heuristic node, anything
/// else (including unset) enables first-touch stamping whenever more than
/// one node was discovered.
enum class NumaMode { kOff, kFirstTouch, kPin };

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU numbers, sorted, deduped.
/// Malformed input yields an empty vector (callers treat that as "no CPUs",
/// which in turn triggers the single-node fallback).
std::vector<unsigned> parse_cpulist(std::string_view text);

class Topology {
 public:
  struct Node {
    int id = 0;                   ///< sysfs node number (nodeN)
    std::vector<unsigned> cpus;   ///< online CPUs on this node, sorted
  };

  /// Discover from a sysfs tree.  `sysfs_root` is the directory that holds
  /// `devices/system/...` — "/sys" on a real host, a fixture dir in tests.
  static Topology discover(const std::string& sysfs_root = "/sys");

  /// The degraded shape: one node owning CPUs [0, ncpus).
  static Topology single_node(unsigned ncpus);

  /// Process-wide topology (leaked singleton; discovered once).  Honors
  /// WLP_SYSFS_ROOT for whole-process fixture injection in tests.
  static const Topology& process();

  unsigned node_count() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  unsigned cpu_count() const noexcept { return online_cpus_; }

  /// True when the shape came from sysfs rather than the fallback.
  bool discovered() const noexcept { return discovered_; }

  /// Index into nodes() for `cpu`, or -1 for offline/unknown CPUs.
  int node_of_cpu(unsigned cpu) const noexcept {
    return cpu < cpu_node_.size() ? cpu_node_[cpu] : -1;
  }

  /// Heuristic home node for virtual processor `vpn`: the node owning
  /// online CPU (vpn mod cpu_count), i.e. the node vpn lands on under an
  /// even spread of p workers over the machine.  Always a valid node index.
  int worker_node(unsigned vpn) const noexcept;

  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// The placement mode for this process: WLP_NUMA crossed with the node
  /// count (a single-node shape forces kOff — every decision is a no-op).
  NumaMode numa_mode() const noexcept;

 private:
  std::vector<Node> nodes_;
  std::vector<int> cpu_node_;  ///< cpu -> index into nodes_, -1 = offline
  unsigned online_cpus_ = 0;
  bool discovered_ = false;
};

/// Shorthand: first-touch page stamping is worth paying for (multi-node
/// shape and WLP_NUMA not "off").
inline bool numa_placement_enabled() {
  return Topology::process().numa_mode() != NumaMode::kOff;
}

}  // namespace wlp::mem
