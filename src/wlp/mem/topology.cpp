#include "wlp/mem/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

namespace wlp::mem {

namespace {

/// Read a small sysfs file into a string; empty on any failure (missing
/// file, permission, directory) — the caller falls back.
std::string slurp(const std::filesystem::path& p) {
  std::ifstream f(p);
  if (!f) return {};
  std::string s;
  std::getline(f, s);
  return s;
}

bool parse_uint(std::string_view s, unsigned& out) {
  if (s.empty()) return false;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const unsigned d = static_cast<unsigned>(c - '0');
    if (v > (~0u - d) / 10) return false;  // overflow
    v = v * 10 + d;
  }
  out = v;
  return true;
}

}  // namespace

std::vector<unsigned> parse_cpulist(std::string_view text) {
  // Trim trailing whitespace/newline the sysfs files carry.
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  std::vector<unsigned> cpus;
  if (text.empty()) return cpus;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t dash = item.find('-');
    unsigned lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_uint(item, lo)) return {};
      hi = lo;
    } else {
      if (!parse_uint(item.substr(0, dash), lo) ||
          !parse_uint(item.substr(dash + 1), hi) || hi < lo ||
          hi - lo > 4096)  // refuse absurd ranges from corrupt input
        return {};
    }
    for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    if (comma >= text.size()) break;
    pos = comma + 1;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::single_node(unsigned ncpus) {
  Topology t;
  if (ncpus == 0) ncpus = 1;
  Node n;
  n.id = 0;
  n.cpus.reserve(ncpus);
  for (unsigned c = 0; c < ncpus; ++c) n.cpus.push_back(c);
  t.nodes_.push_back(std::move(n));
  t.cpu_node_.assign(ncpus, 0);
  t.online_cpus_ = ncpus;
  t.discovered_ = false;
  return t;
}

Topology Topology::discover(const std::string& sysfs_root) {
  namespace fs = std::filesystem;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // Online CPU set first: node cpulists include offline CPUs, which must
  // not receive workers or pages.
  const std::vector<unsigned> online =
      parse_cpulist(slurp(fs::path(sysfs_root) / "devices/system/cpu/online"));
  if (online.empty()) return single_node(hw);

  std::vector<Node> nodes;
  std::error_code ec;
  const fs::path node_dir = fs::path(sysfs_root) / "devices/system/node";
  for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    if (name.rfind("node", 0) != 0 || !parse_uint(name.substr(4), id)) continue;
    std::vector<unsigned> cpus = parse_cpulist(slurp(entry.path() / "cpulist"));
    // Keep only online CPUs (both lists are sorted).
    std::vector<unsigned> live;
    std::set_intersection(cpus.begin(), cpus.end(), online.begin(),
                          online.end(), std::back_inserter(live));
    if (live.empty()) continue;  // memory-only or fully-offline node
    Node n;
    n.id = static_cast<int>(id);
    n.cpus = std::move(live);
    nodes.push_back(std::move(n));
  }
  if (ec || nodes.empty()) return single_node(online.size());

  std::sort(nodes.begin(), nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });

  Topology t;
  t.nodes_ = std::move(nodes);
  unsigned max_cpu = 0;
  for (const auto& n : t.nodes_)
    for (unsigned c : n.cpus) max_cpu = std::max(max_cpu, c);
  t.cpu_node_.assign(max_cpu + 1, -1);
  for (std::size_t i = 0; i < t.nodes_.size(); ++i)
    for (unsigned c : t.nodes_[i].cpus)
      t.cpu_node_[c] = static_cast<int>(i);
  for (int n : t.cpu_node_)
    if (n >= 0) ++t.online_cpus_;
  t.discovered_ = true;
  return t;
}

const Topology& Topology::process() {
  // Leaked: consumers (arenas, pools) may outlive any static destruction
  // order we could promise.
  static const Topology* t = [] {
    const char* root = std::getenv("WLP_SYSFS_ROOT");
    return new Topology(discover(root != nullptr ? root : "/sys"));
  }();
  return *t;
}

int Topology::worker_node(unsigned vpn) const noexcept {
  if (nodes_.size() <= 1 || online_cpus_ == 0) return 0;
  // vpn -> the (vpn mod ncpus)-th online CPU, walking nodes in order: an
  // even spread of workers lands vpn blocks on consecutive nodes exactly
  // like the OS scheduler's breadth-first placement.
  unsigned k = vpn % online_cpus_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto sz = static_cast<unsigned>(nodes_[i].cpus.size());
    if (k < sz) return static_cast<int>(i);
    k -= sz;
  }
  return 0;  // unreachable: k < online_cpus_ = sum of node sizes
}

NumaMode Topology::numa_mode() const noexcept {
  if (node_count() <= 1) return NumaMode::kOff;
  const char* env = std::getenv("WLP_NUMA");
  if (env == nullptr) return NumaMode::kFirstTouch;
  const std::string_view v(env);
  if (v == "0" || v == "off" || v == "OFF") return NumaMode::kOff;
  if (v == "pin" || v == "PIN") return NumaMode::kPin;
  return NumaMode::kFirstTouch;
}

}  // namespace wlp::mem
