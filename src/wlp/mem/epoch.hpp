// wlp::mem — the generation-stamp clock.
//
// Every O(1)-reset structure in this runtime (PD shadow segments, versioned
// checkpoint stamps, hash-backup slots, DOACROSS chain slots) uses the same
// trick: contents carry a 32-bit generation stamp, a "clear" is one counter
// bump that makes every old stamp read as empty, and the only real O(n)
// sweep happens once per 2^32 clears when the counter wraps.  Each of them
// hand-rolled the counter before this header existed; EpochClock is the one
// implementation, in its own header so hot-path headers can stamp without
// pulling in the allocator.
#pragma once

#include <cstdint>

namespace wlp::mem {

/// Logical clears are an epoch bump; contents stamped with an older epoch
/// read as empty.  One real sweep per 2^32 bumps, when the 32-bit counter
/// wraps — the caller's `sweep` must erase every stale stamp so nothing
/// aliases the restarted counter.  Epoch 0 is reserved for "never stamped"
/// (the counter starts at 1 and restarts at 1 after a wrap).
///
/// Not thread-safe: bump()/jump() follow the owner's reset discipline
/// (quiescent points only — the same contract the stamped data obeys).
class EpochClock {
 public:
  std::uint32_t value() const noexcept { return epoch_; }

  template <class Sweep>
  void bump(Sweep&& sweep) {
    if (++epoch_ == 0) {
      sweep();
      epoch_ = 1;
      ++sweeps_;
    }
    ++resets_;
  }

  /// Test hook: sweep (counted — the hook really does erase every stamp),
  /// then restart the counter at `e` so a test can force the wrap path
  /// without 4G bumps.
  template <class Sweep>
  void jump(std::uint32_t e, Sweep&& sweep) {
    sweep();
    ++sweeps_;
    epoch_ = e;
  }

  long resets() const noexcept { return resets_; }
  long sweeps() const noexcept { return sweeps_; }

 private:
  std::uint32_t epoch_ = 1;  ///< 0 is reserved for "never stamped"
  long resets_ = 0;
  long sweeps_ = 0;  ///< wrap sweeps actually performed
};

}  // namespace wlp::mem
