// wlp::mem — the process-wide memory accountant.
//
// Every subsystem that speculates pins memory: checkpoint backups, shadow
// segments, hash-backup slots, chain slots.  Before this accountant each of
// them kept its own `memory_bytes()` plumbing and the sliding-window budget
// controller had to be hand-wired to the right set of targets.  The Budget
// is the one ledger they all charge: arenas debit/credit it as slabs move
// between the OS and the free lists, and its counters are the surface the
// allocation-regression tests and the CI guard read.
//
// Counter vocabulary (also published as wlp.mem.* obs metrics):
//   * bytes_live    — bytes currently held from the OS by all arenas
//                     (slabs + oversize blocks), gauge.
//   * bytes_peak    — high-water mark of bytes_live, gauge.
//   * arena_allocs  — blocks handed out by arenas (fresh carves AND
//                     free-list recycles), counter.  A steady-state retry
//                     loop performs none: every buffer it needs is already
//                     owned by a live object.  This is the counter the
//                     zero-allocation regression tests watch (replacing
//                     operator-new interposition).
//   * slow_allocs   — arena allocations that had to go to the OS (a new
//                     slab or an oversize block), counter.  Zero in steady
//                     state even across construct/destroy churn, because
//                     retired blocks are recycled from the free lists.
//
// Update paths are single relaxed RMWs (wait-free); snapshots are only
// exact while no allocation is in flight — the same contract every stats
// surface in this runtime offers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace wlp::mem {

struct BudgetSnapshot {
  long bytes_live = 0;    ///< OS bytes currently held by arenas
  long bytes_peak = 0;    ///< high-water mark of bytes_live
  long arena_allocs = 0;  ///< blocks handed out (carve + recycle)
  long slow_allocs = 0;   ///< allocations that reached the OS
  long frees = 0;         ///< blocks returned to arena free lists
  long spec_bytes = 0;    ///< backup bytes window controllers have charged
};

class Budget {
 public:
  /// The process ledger (leaked singleton: arenas and the obs provider may
  /// outlive any static destruction order).
  static Budget& process();

  // ---- arena-side charge points -------------------------------------------

  void on_os_alloc(std::size_t bytes) noexcept {
    const long live =
        bytes_live_.fetch_add(static_cast<long>(bytes),
                              std::memory_order_relaxed) +
        static_cast<long>(bytes);
    slow_allocs_.fetch_add(1, std::memory_order_relaxed);
    // fetch-max on the peak; racing updaters settle on the true maximum.
    long peak = bytes_peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !bytes_peak_.compare_exchange_weak(peak, live,
                                              std::memory_order_relaxed)) {
    }
  }

  void on_os_release(std::size_t bytes) noexcept {
    bytes_live_.fetch_sub(static_cast<long>(bytes), std::memory_order_relaxed);
  }

  void on_block_alloc() noexcept {
    arena_allocs_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_block_free() noexcept {
    frees_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- speculative-footprint charge (window controllers) -------------------

  /// Bytes of backup state the sliding-window controllers have published as
  /// pinned by in-flight speculative runs (charge_process_budget mode).
  /// Concurrent loops each settle their own measured footprint here and
  /// budget against the SUM, so they share one ceiling instead of each
  /// assuming it owns the whole budget.  A controller settles back to zero
  /// when its run ends.
  void add_spec_bytes(long delta) noexcept {
    spec_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }
  long spec_bytes() const noexcept {
    return spec_bytes_.load(std::memory_order_relaxed);
  }

  // ---- read side -----------------------------------------------------------

  long bytes_live() const noexcept {
    return bytes_live_.load(std::memory_order_relaxed);
  }
  long bytes_peak() const noexcept {
    return bytes_peak_.load(std::memory_order_relaxed);
  }
  long arena_allocs() const noexcept {
    return arena_allocs_.load(std::memory_order_relaxed);
  }
  long slow_allocs() const noexcept {
    return slow_allocs_.load(std::memory_order_relaxed);
  }

  BudgetSnapshot snapshot() const noexcept {
    BudgetSnapshot s;
    s.bytes_live = bytes_live();
    s.bytes_peak = bytes_peak();
    s.arena_allocs = arena_allocs();
    s.slow_allocs = slow_allocs();
    s.frees = frees_.load(std::memory_order_relaxed);
    s.spec_bytes = spec_bytes();
    return s;
  }

 private:
  Budget();

  alignas(64) std::atomic<long> bytes_live_{0};
  alignas(64) std::atomic<long> bytes_peak_{0};
  alignas(64) std::atomic<long> arena_allocs_{0};
  alignas(64) std::atomic<long> slow_allocs_{0};
  alignas(64) std::atomic<long> frees_{0};
  alignas(64) std::atomic<long> spec_bytes_{0};
};

/// Convenience for budget-driven controllers (the sliding-window memory
/// budget can point its live_bytes probe here to throttle on the whole
/// process's speculative footprint instead of one target set's).
inline long process_bytes_live() { return Budget::process().bytes_live(); }

}  // namespace wlp::mem
