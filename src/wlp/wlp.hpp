// Umbrella header: the full public API of the WHILE-loop parallelization
// library.  Include this for everything, or pick the focused headers below.
//
// The library in one paragraph: WHILE loops and DO loops with conditional
// exits have unknown iteration spaces, so classic compilers run them
// sequentially.  This runtime executes them in parallel anyway — evaluating
// closed-form and associative dispatchers concurrently, overlapping the
// remainder of inherently sequential (linked-list) dispatchers, detecting
// the real exit with per-processor minima and a QUIT, undoing whatever ran
// past it with checkpoints and time-stamps, and validating speculation on
// unanalyzable access patterns with the run-time PD dependence test.  A
// small compiler-analysis layer automates the whole pipeline for loops
// expressed in its IR; a simulated multiprocessor reproduces the original
// evaluation's speedup figures.
#pragma once

// Scheduling substrate: thread pool, DOALL + QUIT, prefix, reductions,
// DOACROSS pipeline.
#include "wlp/sched/thread_pool.hpp"   // IWYU pragma: export
#include "wlp/sched/doall.hpp"         // IWYU pragma: export
#include "wlp/sched/doacross.hpp"      // IWYU pragma: export
#include "wlp/sched/parallel_prefix.hpp"  // IWYU pragma: export
#include "wlp/sched/reduce.hpp"        // IWYU pragma: export

// Core: taxonomy, the WHILE methods, undo machinery, PD test, speculation,
// strategies, cost model, adaptation.
#include "wlp/core/taxonomy.hpp"       // IWYU pragma: export
#include "wlp/core/report.hpp"         // IWYU pragma: export
#include "wlp/core/while_induction.hpp"  // IWYU pragma: export
#include "wlp/core/while_assoc.hpp"    // IWYU pragma: export
#include "wlp/core/while_general.hpp"  // IWYU pragma: export
#include "wlp/core/while_doany.hpp"    // IWYU pragma: export
#include "wlp/core/wu_lewis.hpp"       // IWYU pragma: export
#include "wlp/core/constructs.hpp"     // IWYU pragma: export
#include "wlp/core/versioned_array.hpp"  // IWYU pragma: export
#include "wlp/core/privatize.hpp"      // IWYU pragma: export
#include "wlp/core/sparse_backup.hpp"  // IWYU pragma: export
#include "wlp/core/shadow.hpp"         // IWYU pragma: export
#include "wlp/core/speculative.hpp"    // IWYU pragma: export
#include "wlp/core/speculative_privatized.hpp"  // IWYU pragma: export
#include "wlp/core/speculative_strips.hpp"      // IWYU pragma: export
#include "wlp/core/sparse_spec.hpp"    // IWYU pragma: export
#include "wlp/core/run_twice.hpp"      // IWYU pragma: export
#include "wlp/core/strategies.hpp"     // IWYU pragma: export
#include "wlp/core/sliding_window.hpp" // IWYU pragma: export
#include "wlp/core/cost_model.hpp"     // IWYU pragma: export
#include "wlp/core/adaptive.hpp"       // IWYU pragma: export

// Compiler-analysis layer: loop IR -> dependence graph -> distribution ->
// plan -> parallel execution.
#include "wlp/analysis/loop_ir.hpp"    // IWYU pragma: export
#include "wlp/analysis/depgraph.hpp"   // IWYU pragma: export
#include "wlp/analysis/recurrence.hpp" // IWYU pragma: export
#include "wlp/analysis/distribute.hpp" // IWYU pragma: export
#include "wlp/analysis/plan.hpp"       // IWYU pragma: export
#include "wlp/analysis/execute_plan.hpp"  // IWYU pragma: export

// Simulated multiprocessor (speedup reproduction).
#include "wlp/sim/machine.hpp"         // IWYU pragma: export
#include "wlp/sim/simulator.hpp"       // IWYU pragma: export

// Observability: per-thread trace rings (Chrome trace export) + metrics
// registry.  Instrumentation hooks compile away under WLP_OBS=OFF.
#include "wlp/obs/obs.hpp"             // IWYU pragma: export
