// MA28 MA30AD loops 270/320 analog — Section 9, Table 2 rows 4-5,
// Figures 12-14.
//
// The loops cooperatively search the active submatrix for a Markowitz pivot:
// candidate rows (loop 270) / columns (loop 320) are visited in increasing
// nonzero count; each iteration scans one candidate for its best
// threshold-acceptable entry and updates the running best; the loop exits
// when the running best cost cannot be improved by later candidates
// ((nz-1)^2 bound) — an RV terminator, since the exit depends on values the
// remainder computes.
//
// MA28 is a *sequential* program, so the parallelization must be
// sequentially consistent: per the paper, candidates found during the
// parallel execution are time-stamped, and after loop termination the pivot
// is recovered by a time-stamp-ordered min reduction over the (privatized)
// per-processor candidates, filtered by the last valid iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/sim/machine.hpp"
#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {

struct PivotCandidate {
  std::int32_t row = -1;
  std::int32_t col = -1;
  double value = 0;
  long cost = -1;  ///< Markowitz (r-1)(c-1)

  bool valid() const noexcept { return row >= 0; }
};

enum class SearchAxis { kRows, kColumns };  ///< loop 270 vs loop 320

struct PivotSearchConfig {
  double threshold_u = 0.1;
  SearchAxis axis = SearchAxis::kRows;
};

class Ma28PivotSearch {
 public:
  /// Snapshot the matrix into a search problem: candidates sorted by
  /// increasing nonzero count (the MA30AD visit order).  The matrix is
  /// copied, so temporaries are safe to pass.
  Ma28PivotSearch(SparseMatrix a, PivotSearchConfig cfg = {});

  long candidates() const noexcept { return static_cast<long>(order_.size()); }

  /// Sequential reference.  `trip_out`, if non-null, receives the trip count.
  PivotCandidate search_sequential(long* trip_out = nullptr) const;

  /// Induction-1 over the candidate list with time-stamped pivot reduction.
  PivotCandidate search_induction1(ThreadPool& pool, ExecReport& report) const;

  /// General-3: the candidate list traversed as a linked structure (the
  /// MA30AD code walks count-ordered chains).
  PivotCandidate search_general3(ThreadPool& pool, ExecReport& report) const;

  /// Per-iteration work profile (candidate scan cost ~ its nonzero count).
  sim::LoopProfile profile() const;

 private:
  /// Best threshold-acceptable entry of candidate i; invalid if none.
  PivotCandidate scan_candidate(long i) const;
  /// The RV exit bound for iteration i: (count_i - 1)^2.
  long exit_bound(long i) const;
  /// MA30AD's level-boundary exit test (see .cpp).
  bool level_exit(long i, const PivotCandidate& best) const;
  /// Exact sequential trip count given all candidate results.
  long true_trip(const std::vector<PivotCandidate>& found) const;
  PivotCandidate winner_before(const std::vector<PivotCandidate>& found,
                               long trip) const;

  PivotSearchConfig cfg_;
  SparseMatrix a_;
  SparseMatrix at_;                     ///< transpose (for column search)
  std::vector<std::int32_t> order_;     ///< candidates by increasing count
  std::vector<std::int32_t> counts_;    ///< count of candidate i
  std::vector<std::int32_t> cross_counts_;  ///< col (row) counts for costs
};

}  // namespace wlp::workloads
