#include "wlp/workloads/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlp::workloads {

SparseMatrix SparseMatrix::from_triplets(std::int32_t rows, std::int32_t cols,
                                         std::vector<Triplet> entries) {
  for (const Triplet& t : entries)
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols)
      throw std::out_of_range("SparseMatrix::from_triplets: entry out of range");

  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);

  // Merge duplicates while counting.
  std::size_t w = 0;
  for (std::size_t r = 0; r < entries.size(); ++r) {
    if (w > 0 && entries[w - 1].row == entries[r].row &&
        entries[w - 1].col == entries[r].col) {
      entries[w - 1].value += entries[r].value;
    } else {
      entries[w++] = entries[r];
    }
  }
  entries.resize(w);

  m.col_idx_.reserve(w);
  m.values_.reserve(w);
  for (const Triplet& t : entries) {
    ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r)
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

double SparseMatrix::at(std::int32_t r, std::int32_t c) const noexcept {
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return row_vals(r)[static_cast<std::size_t>(it - cols.begin())];
}

double SparseMatrix::max_abs_in_row(std::int32_t r) const noexcept {
  double m = 0;
  for (double v : row_vals(r)) m = std::max(m, std::abs(v));
  return m;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (std::int32_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    double acc = 0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

SparseMatrix SparseMatrix::transpose() const {
  std::vector<Triplet> tr;
  tr.reserve(static_cast<std::size_t>(nnz()));
  for (std::int32_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      tr.push_back({cols[k], r, vals[k]});
  }
  return from_triplets(cols_, rows_, std::move(tr));
}

std::vector<std::int32_t> SparseMatrix::col_counts() const {
  std::vector<std::int32_t> counts(static_cast<std::size_t>(cols_), 0);
  for (std::int32_t c : col_idx_) ++counts[static_cast<std::size_t>(c)];
  return counts;
}

std::vector<Triplet> SparseMatrix::to_triplets() const {
  std::vector<Triplet> out;
  out.reserve(static_cast<std::size_t>(nnz()));
  for (std::int32_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      out.push_back({r, cols[k], vals[k]});
  }
  return out;
}

double residual_inf_norm(const SparseMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b) {
  const std::vector<double> ax = a.multiply(x);
  double norm = 0;
  for (std::size_t i = 0; i < ax.size(); ++i)
    norm = std::max(norm, std::abs(ax[i] - b[i]));
  return norm;
}

}  // namespace wlp::workloads
