#include "wlp/workloads/mcsparse_pivot.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "wlp/core/while_doany.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::workloads {

McsparsePivotSearch::McsparsePivotSearch(SparseMatrix a, DoanyConfig cfg)
    : cfg_(cfg), a_(std::move(a)), at_(a_.transpose()) {
  const std::int32_t nr = a_.rows();
  const std::int32_t nc = a_.cols();
  order_.resize(static_cast<std::size_t>(nr + nc));
  std::iota(order_.begin(), order_.end(), 0);
  Xoshiro256 rng(cfg.seed);
  for (std::size_t k = order_.size(); k > 1; --k)
    std::swap(order_[k - 1], order_[static_cast<std::size_t>(rng.below(k))]);

  row_counts_.reserve(static_cast<std::size_t>(nr));
  for (std::int32_t r = 0; r < nr; ++r)
    row_counts_.push_back(static_cast<std::int32_t>(a_.row_nnz(r)));
  col_counts_.reserve(static_cast<std::size_t>(nc));
  for (std::int32_t c = 0; c < nc; ++c)
    col_counts_.push_back(static_cast<std::int32_t>(at_.row_nnz(c)));
}

bool McsparsePivotSearch::acceptable(const PivotCandidate& c) const noexcept {
  if (!c.valid()) return false;
  if (c.cost > cfg_.accept_cost) return false;
  const double maxrow = a_.max_abs_in_row(c.row);
  return std::abs(c.value) >= cfg_.threshold_u * maxrow;
}

PivotCandidate McsparsePivotSearch::scan(long i) const {
  const std::int32_t code = order_[static_cast<std::size_t>(i)];
  const bool is_row = code < a_.rows();
  const SparseMatrix& primary = is_row ? a_ : at_;
  const std::int32_t r = is_row ? code : code - a_.rows();

  const auto cols = primary.row_cols(r);
  const auto vals = primary.row_vals(r);
  double maxv = 0;
  for (double v : vals) maxv = std::max(maxv, std::abs(v));

  PivotCandidate best;
  const long rcount = static_cast<long>(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (std::abs(vals[k]) < cfg_.threshold_u * maxv) continue;
    const long crosscount =
        is_row ? col_counts_[static_cast<std::size_t>(cols[k])]
               : row_counts_[static_cast<std::size_t>(cols[k])];
    const long cost = (rcount - 1) * (crosscount - 1);
    if (cost > cfg_.accept_cost) continue;
    PivotCandidate cand;
    cand.cost = cost;
    cand.value = vals[k];
    if (is_row) {
      cand.row = r;
      cand.col = cols[k];
    } else {
      cand.row = cols[k];
      cand.col = r;
    }
    if (!best.valid() || cand.cost < best.cost) best = cand;
  }
  // The stability check in acceptable() is against the candidate's ROW max;
  // for column-search hits re-check so the returned pivot is always
  // admissible by the row criterion MCSPARSE uses.
  if (best.valid() && !acceptable(best)) best = PivotCandidate{};
  return best;
}

PivotCandidate McsparsePivotSearch::search_sequential(long* trip_out) const {
  const long n = candidates();
  for (long i = 0; i < n; ++i) {
    const PivotCandidate c = scan(i);
    if (c.valid()) {
      if (trip_out) *trip_out = i + 1;  // exit taken after this iteration
      return c;
    }
  }
  if (trip_out) *trip_out = n;
  return {};
}

PivotCandidate McsparsePivotSearch::search_doany(ThreadPool& pool,
                                                 ExecReport& report) const {
  const long n = candidates();
  // First acceptable pivot wins; later finds are ignored (any is correct).
  std::atomic<long> winner_iter{-1};
  std::vector<PivotCandidate> found(static_cast<std::size_t>(pool.size()));

  report = while_doany(pool, n, [&](long i, unsigned vpn) {
    const PivotCandidate c = scan(i);
    if (!c.valid()) return IterAction::kContinue;
    long expected = -1;
    if (winner_iter.compare_exchange_strong(expected, i,
                                            std::memory_order_acq_rel)) {
      found[vpn] = c;
    }
    return IterAction::kExitAfter;
  });

  for (const PivotCandidate& c : found)
    if (c.valid()) return c;
  return {};
}

sim::LoopProfile McsparsePivotSearch::profile() const {
  sim::LoopProfile lp;
  long trip = 0;
  search_sequential(&trip);
  const long n = candidates();
  lp.u = n;
  lp.trip = trip;
  lp.work.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const std::int32_t code = order_[static_cast<std::size_t>(i)];
    const bool is_row = code < a_.rows();
    const long cnt = is_row ? row_counts_[static_cast<std::size_t>(code)]
                            : col_counts_[static_cast<std::size_t>(code - a_.rows())];
    lp.work.push_back(0.9 * static_cast<double>(cnt) + 1.2);
  }
  lp.next_cost = 0;             // fused search runs as a DOALL
  lp.writes_per_iter = 0;       // no backups, no time-stamps (DOANY)
  lp.reads_per_iter = 1;
  lp.overshoot_does_work = true;
  return lp;
}

}  // namespace wlp::workloads
