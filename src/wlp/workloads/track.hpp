// TRACK FPTRAK loop 300 analog — Section 9, Table 2 row 2, Figure 7.
//
// The original is a DO loop with a conditional exit taken when an error
// condition is detected, whose body writes an array through a run-time
// computed subscript array:
//
//     do i = 1, n
//         if (error_in_track(i)) exit        ; RV terminator
//         pos = sub[i]                        ; run-time subscript
//         P[pos] = extrapolate(i); V[pos] = ...
//     enddo
//
// Taxonomy cell: induction dispatcher x RV terminator -> the parallel
// execution overshoots, so backups (checkpoint) and time-stamps are needed,
// exactly as Table 2 records for this loop.  The subscript array is a
// permutation, so the iterations are in fact independent — but only the PD
// test can establish that at run time, which run_speculative() exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/sim/machine.hpp"

namespace wlp::workloads {

struct TrackConfig {
  long candidates = 5000;       ///< loop bound n (track extrapolation points)
  double error_position = 0.93; ///< the bad track sits at ~93% of the range
  std::uint64_t seed = 7;
};

class TrackLoop {
 public:
  explicit TrackLoop(TrackConfig cfg = {});

  long candidates() const noexcept { return cfg_.candidates; }
  /// The iteration at which the sequential loop exits.
  long expected_trip() const noexcept { return exit_at_; }

  /// Fresh position/velocity state arrays (one slot per candidate).
  std::vector<double> fresh_positions() const;
  std::vector<double> fresh_velocities() const;

  /// Sequential reference; returns the trip count.
  long run_sequential(std::vector<double>& pos, std::vector<double>& vel) const;

  /// Induction-1 / Induction-2 with checkpoint + time-stamps (the paper's
  /// Table 2 configuration for this loop).
  ExecReport run_induction1(ThreadPool& pool, std::vector<double>& pos,
                            std::vector<double>& vel) const;
  ExecReport run_induction2(ThreadPool& pool, std::vector<double>& pos,
                            std::vector<double>& vel) const;

  /// Fully speculative variant: the subscript array is treated as unknown
  /// and the PD test validates the run (Section 5 end to end).
  ExecReport run_speculative(ThreadPool& pool, std::vector<double>& pos,
                             std::vector<double>& vel) const;

  /// Hand-parallelized ideal (oracle trip count known up front, no undo
  /// machinery) — the "ideal speedup" series of Figure 7.
  ExecReport run_ideal(ThreadPool& pool, std::vector<double>& pos,
                       std::vector<double>& vel) const;

  sim::LoopProfile profile() const;

 private:
  /// One track extrapolation step; also reports whether this candidate
  /// triggers the error exit.
  bool extrapolate(long i, double& p_out, double& v_out) const;

  TrackConfig cfg_;
  std::vector<std::int32_t> sub_;  ///< run-time subscript array (permutation)
  std::vector<double> obs_;        ///< per-candidate observation (work input)
  std::vector<std::int16_t> steps_;  ///< per-candidate smoothing steps (grain)
  long exit_at_ = 0;
};

}  // namespace wlp::workloads
