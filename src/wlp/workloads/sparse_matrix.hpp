// Sparse matrix substrate: COO/CSR storage, structural queries, and the
// numeric kernels (matvec, residual) the solver tests verify against.
// This is what the MA28 / MCSPARSE pivot-search workloads operate on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wlp::workloads {

struct Triplet {
  std::int32_t row;
  std::int32_t col;
  double value;
};

/// Compressed-sparse-row matrix with sorted column indices per row.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build from triplets (duplicate entries are summed).
  static SparseMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                    std::vector<Triplet> entries);

  std::int32_t rows() const noexcept { return rows_; }
  std::int32_t cols() const noexcept { return cols_; }
  long nnz() const noexcept { return static_cast<long>(values_.size()); }

  long row_nnz(std::int32_t r) const noexcept {
    return row_ptr_[static_cast<std::size_t>(r) + 1] - row_ptr_[static_cast<std::size_t>(r)];
  }

  std::span<const std::int32_t> row_cols(std::int32_t r) const noexcept {
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {col_idx_.data() + b, e - b};
  }
  std::span<const double> row_vals(std::int32_t r) const noexcept {
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {values_.data() + b, e - b};
  }

  /// Value at (r, c); 0 when the entry is structurally absent.
  double at(std::int32_t r, std::int32_t c) const noexcept;

  /// Largest |a_rc| in row r (the MA28 threshold-pivoting denominator).
  double max_abs_in_row(std::int32_t r) const noexcept;

  /// y = A * x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  SparseMatrix transpose() const;

  /// Per-column nonzero counts (the Markowitz c_j terms).
  std::vector<std::int32_t> col_counts() const;

  /// All triplets (row-major); used by the LU and the generators' tests.
  std::vector<Triplet> to_triplets() const;

 private:
  std::int32_t rows_ = 0, cols_ = 0;
  std::vector<long> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
};

/// ||A*x - b||_inf — the solver acceptance check.
double residual_inf_norm(const SparseMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b);

}  // namespace wlp::workloads
