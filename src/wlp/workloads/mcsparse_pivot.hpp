// MCSPARSE DFACT loop 500 analog — Section 9, Table 2 row 3, Figures 8-11.
//
// MCSPARSE searches for a pivot in a non-deterministic manner: the program
// is insensitive to the order in which rows and columns are examined.  The
// paper fuses the (originally sequential) column WHILE loop with the
// parallel row search into a single WHILE-DOANY: iterations examine
// candidates in any order, the first acceptable pivot ends the loop, and —
// although the terminator is RV and the execution overshoots — no backups
// and no time-stamps are needed, because any admissible pivot is correct.
//
// Candidates are the matrix's rows and columns in a seeded shuffled order
// (standing in for MCSPARSE's arbitrary search order); a candidate is
// acceptable when it holds an entry passing the stability threshold whose
// Markowitz cost is below an absolute bound.  How quickly the search finds
// one depends on the matrix structure — the regular reservoir operators
// accept almost immediately, the irregular power-flow matrices make the
// search work — which reproduces the paper's observation that "the
// available parallelism ... is strongly dependent on the data input".
#pragma once

#include <cstdint>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/sim/machine.hpp"
#include "wlp/workloads/ma28_pivot.hpp"
#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {

struct DoanyConfig {
  double threshold_u = 0.1;
  long accept_cost = 36;  ///< absolute Markowitz acceptance bound
  std::uint64_t seed = 500;
};

class McsparsePivotSearch {
 public:
  /// The matrix is copied, so temporaries are safe to pass.
  McsparsePivotSearch(SparseMatrix a, DoanyConfig cfg = {});

  long candidates() const noexcept { return static_cast<long>(order_.size()); }

  /// Does this pivot satisfy the acceptance criteria?  (Used to validate
  /// whatever the non-deterministic parallel search returns.)
  bool acceptable(const PivotCandidate& c) const noexcept;

  /// Sequential reference: the first acceptable candidate in search order.
  PivotCandidate search_sequential(long* trip_out = nullptr) const;

  /// WHILE-DOANY: overshoots, no undo; returns *an* acceptable pivot.
  PivotCandidate search_doany(ThreadPool& pool, ExecReport& report) const;

  sim::LoopProfile profile() const;

 private:
  /// Best acceptable entry of search candidate i (row or column); invalid
  /// if the candidate holds none.
  PivotCandidate scan(long i) const;

  DoanyConfig cfg_;
  SparseMatrix a_;
  SparseMatrix at_;
  // Candidate encoding: [0, rows) = row search, [rows, rows+cols) = column.
  std::vector<std::int32_t> order_;
  std::vector<std::int32_t> row_counts_, col_counts_;
};

}  // namespace wlp::workloads
