#include "wlp/workloads/hb_generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "wlp/support/prng.hpp"

namespace wlp::workloads {

HBInfo info_gematt11() { return {"gematt11", 4929, 33108}; }
HBInfo info_gematt12() { return {"gematt12", 4929, 33044}; }
HBInfo info_orsreg1() { return {"orsreg1", 2205, 14133}; }
HBInfo info_saylr4() { return {"saylr4", 3564, 22316}; }

SparseMatrix gen_power_flow(std::int32_t n, long target_nnz, double hub_fraction,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<std::pair<std::int32_t, std::int32_t>> pattern;

  // Diagonal first.
  for (std::int32_t i = 0; i < n; ++i) pattern.insert({i, i});

  // Hub buses: a small fraction of rows couple to many others (transmission
  // substations); the rest have degree 2-5 (distribution feeders).  Edges
  // are symmetric in structure, unsymmetric in value — like GEMAT.
  const auto hubs = static_cast<std::int32_t>(hub_fraction * n);
  long budget = target_nnz - n;
  while (budget > 1) {
    std::int32_t a;
    if (rng.chance(0.3) && hubs > 0) {
      a = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(hubs)));
    } else {
      a = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    }
    const auto b = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    if (pattern.insert({a, b}).second) --budget;
    if (pattern.insert({b, a}).second) --budget;
  }

  std::vector<Triplet> tri;
  tri.reserve(pattern.size());
  std::vector<double> row_abs_sum(static_cast<std::size_t>(n), 0.0);
  for (const auto& [r, c] : pattern) {
    if (r == c) continue;
    const double v = rng.uniform(-1.0, 1.0);
    tri.push_back({r, c, v});
    row_abs_sum[static_cast<std::size_t>(r)] += std::abs(v);
  }
  // Dominant diagonal for numeric stability of the LU substrate.
  for (std::int32_t i = 0; i < n; ++i)
    tri.push_back({i, i, row_abs_sum[static_cast<std::size_t>(i)] + 1.0 +
                             rng.uniform(0.0, 0.5)});

  return SparseMatrix::from_triplets(n, n, std::move(tri));
}

SparseMatrix gen_grid7(std::int32_t nx, std::int32_t ny, std::int32_t nz,
                       double anisotropy, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::int32_t n = nx * ny * nz;
  auto id = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    return (z * ny + y) * nx + x;
  };
  std::vector<Triplet> tri;
  tri.reserve(static_cast<std::size_t>(n) * 7);
  for (std::int32_t z = 0; z < nz; ++z)
    for (std::int32_t y = 0; y < ny; ++y)
      for (std::int32_t x = 0; x < nx; ++x) {
        const std::int32_t me = id(x, y, z);
        double diag = 0;
        auto couple = [&](std::int32_t other, double w) {
          const double v = -w * (0.8 + 0.4 * rng.uniform());
          tri.push_back({me, other, v});
          diag += std::abs(v);
        };
        if (x > 0) couple(id(x - 1, y, z), 1.0);
        if (x + 1 < nx) couple(id(x + 1, y, z), 1.0);
        if (y > 0) couple(id(x, y - 1, z), 1.0);
        if (y + 1 < ny) couple(id(x, y + 1, z), 1.0);
        if (z > 0) couple(id(x, y, z - 1), anisotropy);
        if (z + 1 < nz) couple(id(x, y, z + 1), anisotropy);
        tri.push_back({me, me, diag + 1.0});
      }
  return SparseMatrix::from_triplets(n, n, std::move(tri));
}

SparseMatrix gen_gematt11(std::uint64_t seed) {
  const HBInfo i = info_gematt11();
  return gen_power_flow(i.n, i.paper_nnz, /*hub_fraction=*/0.02, seed);
}

SparseMatrix gen_gematt12(std::uint64_t seed) {
  const HBInfo i = info_gematt12();
  // Denser coupling among hubs than gematt11 (more of the budget lands on
  // the hub rows): slightly less search parallelism, as the paper's lower
  // speedup for this input suggests.
  return gen_power_flow(i.n, i.paper_nnz, /*hub_fraction=*/0.05, seed);
}

SparseMatrix gen_orsreg1() {
  // 21 x 21 x 5 reservoir, isotropic 7-point operator.
  return gen_grid7(21, 21, 5, 1.0, /*seed=*/0xA11CE);
}

SparseMatrix gen_saylr4(std::uint64_t seed) {
  // 33 x 12 x 9 = 3564 cells, anisotropic vertical permeability.
  return gen_grid7(33, 12, 9, 0.25, seed);
}

}  // namespace wlp::workloads
