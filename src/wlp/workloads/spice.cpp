#include "wlp/workloads/spice.hpp"

#include <cmath>

#include "wlp/core/while_general.hpp"
#include "wlp/core/wu_lewis.hpp"

namespace wlp::workloads {

SpiceLoad::SpiceLoad(SpiceConfig cfg) : cfg_(cfg) {
  Xoshiro256 rng(cfg.seed);
  list_ = NodePool<DeviceModel>::make(
      cfg.devices, cfg.seed ^ 0x9e3779b97f4a7c15ULL, [&](long i, DeviceModel& m) {
        m.stamp_base = static_cast<std::int32_t>(4 * i);
        m.c0 = rng.uniform(1e-12, 1e-9);
        m.bias = rng.uniform(-2.5, 2.5);
        m.terms = static_cast<std::int16_t>(
            rng.range(cfg.min_terms, cfg.max_terms));
        const double pick = rng.uniform();
        if (pick < cfg.bjt_fraction) {
          m.kind = DeviceKind::kBJT;
        } else if (pick < cfg.bjt_fraction + cfg.mosfet_fraction) {
          m.kind = DeviceKind::kMOSFET;
        } else {
          m.kind = DeviceKind::kCapacitor;
        }
      });
}

namespace {

/// Capacitor charge polynomial q(V) = c0 * sum_k V^k / k!, Horner form.
double eval_capacitor(const DeviceModel& m) {
  double acc = 0;
  for (int k = m.terms; k > 0; --k) acc = (acc + 1.0 / k) * m.bias;
  return m.c0 * (acc + std::exp(m.bias * 0.025));
}

/// Ebers-Moll-style BJT: two junction exponentials iterated to the model's
/// precision — roughly 3x a capacitor's work per term.
double eval_bjt(const DeviceModel& m) {
  const double vt = 0.02585;
  double ic = 0, ib = 0;
  for (int k = 0; k < m.terms; ++k) {
    const double vbe = m.bias - 0.002 * ic;
    const double vbc = m.bias * 0.5 - 0.002 * ib;
    ic = m.c0 * (std::exp(vbe / vt / (1 + k)) - std::exp(vbc / vt / (1 + k)));
    ib = ic / 100.0 + m.c0 * 1e-3;
  }
  return ic + ib;
}

/// Level-1 MOSFET square-law with channel-length modulation, iterated —
/// ~2x a capacitor's work per term.
double eval_mosfet(const DeviceModel& m) {
  const double vth = 0.7, kp = 1e-4, lambda = 0.02;
  double id = 0;
  for (int k = 0; k < m.terms; ++k) {
    const double vgs = m.bias - 1e-3 * id;
    const double vov = vgs - vth;
    if (vov <= 0) {
      id = 0;
    } else {
      const double vds = m.bias * 0.5;
      id = vds < vov ? kp * (vov - vds / 2) * vds * (1 + lambda * vds)
                     : 0.5 * kp * vov * vov * (1 + lambda * vds);
    }
  }
  return id;
}

}  // namespace

double SpiceLoad::evaluate(const DeviceModel& m) {
  switch (m.kind) {
    case DeviceKind::kCapacitor: return eval_capacitor(m);
    case DeviceKind::kBJT:       return eval_bjt(m);
    case DeviceKind::kMOSFET:    return eval_mosfet(m);
  }
  return 0;
}

std::vector<double> SpiceLoad::fresh_matrix() const {
  return std::vector<double>(static_cast<std::size_t>(4 * list_.size()), 0.0);
}

void SpiceLoad::stamp(const DeviceModel& m, std::vector<double>& matrix) const {
  const double g = evaluate(m);
  const auto b = static_cast<std::size_t>(m.stamp_base);
  matrix[b] += g;
  matrix[b + 1] -= g;
  matrix[b + 2] -= g;
  matrix[b + 3] += g;
}

void SpiceLoad::run_sequential(std::vector<double>& matrix) const {
  list_.for_each([&](const DeviceModel& m) { stamp(m, matrix); });
}

namespace {

/// Shared adapter: the loop body every General-k / baseline method runs.
struct SpiceBody {
  const SpiceLoad* load;
  const NodePool<DeviceModel>* list;
  std::vector<double>* matrix;

  IterAction operator()(long /*i*/, std::int32_t cursor, unsigned /*vpn*/) const {
    const DeviceModel& m = list->payload(cursor);
    const double g = SpiceLoad::evaluate(m);
    const auto b = static_cast<std::size_t>(m.stamp_base);
    (*matrix)[b] += g;
    (*matrix)[b + 1] -= g;
    (*matrix)[b + 2] -= g;
    (*matrix)[b + 3] += g;
    return IterAction::kContinue;
  }
};

}  // namespace

ExecReport SpiceLoad::run_general1(ThreadPool& pool, std::vector<double>& matrix) const {
  SpiceBody body{this, &list_, &matrix};
  return while_general1(
      pool, list_.head(), [this](std::int32_t c) { return list_.next(c); },
      [](std::int32_t c) { return NodePool<DeviceModel>::is_end(c); }, body);
}

ExecReport SpiceLoad::run_general2(ThreadPool& pool, std::vector<double>& matrix) const {
  SpiceBody body{this, &list_, &matrix};
  return while_general2(
      pool, list_.head(), [this](std::int32_t c) { return list_.next(c); },
      [](std::int32_t c) { return NodePool<DeviceModel>::is_end(c); }, body);
}

ExecReport SpiceLoad::run_general3(ThreadPool& pool, std::vector<double>& matrix) const {
  SpiceBody body{this, &list_, &matrix};
  return while_general3(
      pool, list_.head(), [this](std::int32_t c) { return list_.next(c); },
      [](std::int32_t c) { return NodePool<DeviceModel>::is_end(c); }, body);
}

ExecReport SpiceLoad::run_wu_lewis_distribute(ThreadPool& pool,
                                              std::vector<double>& matrix) const {
  SpiceBody body{this, &list_, &matrix};
  return while_wu_lewis_distribute(
      pool, list_.head(), [this](std::int32_t c) { return list_.next(c); },
      [](std::int32_t c) { return NodePool<DeviceModel>::is_end(c); }, body,
      list_.size());
}

ExecReport SpiceLoad::run_wu_lewis_doacross(ThreadPool& pool,
                                            std::vector<double>& matrix) const {
  SpiceBody body{this, &list_, &matrix};
  return while_wu_lewis_doacross(
      pool, list_.head(), [this](std::int32_t c) { return list_.next(c); },
      [](std::int32_t c) { return NodePool<DeviceModel>::is_end(c); },
      [&](long i, std::int32_t c, unsigned vpn) { body(i, c, vpn); },
      list_.size());
}

sim::LoopProfile SpiceLoad::profile() const {
  sim::LoopProfile lp;
  lp.u = list_.size();
  lp.trip = list_.size();  // RI terminator: the list end is the exit
  lp.work.reserve(static_cast<std::size_t>(lp.u));
  // Work cost in machine cycles: proportional to the model's term count
  // scaled by its kind (BJT ~ 3x, MOSFET ~ 2x a capacitor term) plus the 4
  // stamp updates.
  list_.for_each([&](const DeviceModel& m) {
    double scale = 0.55;
    if (m.kind == DeviceKind::kBJT) scale = 1.65;
    if (m.kind == DeviceKind::kMOSFET) scale = 1.1;
    lp.work.push_back(scale * static_cast<double>(m.terms) + 2.0);
  });
  lp.next_cost = 1.0;         // one pointer chase per device
  lp.writes_per_iter = 4;     // matrix stamps (not time-stamped: RI, no undo)
  lp.reads_per_iter = 4;
  lp.overshoot_does_work = false;
  return lp;
}

}  // namespace wlp::workloads
