#include "wlp/workloads/sparse_lu.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "wlp/workloads/ma28_pivot.hpp"

namespace wlp::workloads {

MarkowitzLU::MarkowitzLU(const SparseMatrix& a, LUOptions opts)
    : n_(a.rows()), opts_(opts) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("MarkowitzLU: matrix must be square");
  rows_.resize(static_cast<std::size_t>(n_));
  col_rows_.resize(static_cast<std::size_t>(n_));
  row_active_.assign(static_cast<std::size_t>(n_), true);
  col_active_.assign(static_cast<std::size_t>(n_), true);
  for (std::int32_t r = 0; r < n_; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      rows_[static_cast<std::size_t>(r)][cols[k]] = vals[k];
      col_rows_[static_cast<std::size_t>(cols[k])].insert(r);
    }
  }
}

bool MarkowitzLU::select_pivot(std::int32_t& pr, std::int32_t& pc) {
  // MA30AD-style search: walk active rows in increasing nonzero count;
  // within a row accept entries passing the stability threshold; stop once
  // the best Markowitz cost cannot be improved by rows of higher count
  // (the (nz-1)^2 early-exit heuristic — the loops the paper parallelizes).
  long best_cost = std::numeric_limits<long>::max();
  double best_abs = 0;
  pr = pc = -1;

  // Bucket active rows by count.
  std::vector<std::vector<std::int32_t>> buckets(static_cast<std::size_t>(n_) + 1);
  for (std::int32_t r = 0; r < n_; ++r) {
    if (!row_active_[static_cast<std::size_t>(r)]) continue;
    const auto cnt = static_cast<std::size_t>(rows_[static_cast<std::size_t>(r)].size());
    if (cnt == 0) return false;  // structurally singular
    buckets[cnt].push_back(r);
  }

  for (std::size_t nz = 1; nz <= static_cast<std::size_t>(n_); ++nz) {
    // MA30AD semantics (and Ma28PivotSearch's): a whole count level is
    // searched before the (nz-1)^2 bound is tested.
    if (pr >= 0 && !buckets[nz].empty() &&
        best_cost <= static_cast<long>((nz - 1) * (nz - 1)))
      return true;
    for (std::int32_t r : buckets[nz]) {
      double maxrow = 0;
      for (const auto& [c, v] : rows_[static_cast<std::size_t>(r)])
        maxrow = std::max(maxrow, std::abs(v));
      const long rcount = static_cast<long>(rows_[static_cast<std::size_t>(r)].size());
      for (const auto& [c, v] : rows_[static_cast<std::size_t>(r)]) {
        if (std::abs(v) < opts_.threshold_u * maxrow) continue;
        const long ccount =
            static_cast<long>(col_rows_[static_cast<std::size_t>(c)].size());
        const long cost = (rcount - 1) * (ccount - 1);
        if (cost < best_cost ||
            (cost == best_cost && std::abs(v) > best_abs)) {
          best_cost = cost;
          best_abs = std::abs(v);
          pr = r;
          pc = c;
        }
      }
    }
  }
  return pr >= 0;
}

void MarkowitzLU::eliminate(std::int32_t k, std::int32_t pr, std::int32_t pc) {
  auto& prow = rows_[static_cast<std::size_t>(pr)];
  const double d = prow.at(pc);
  pivots_.push_back(d);
  u_rows_.push_back(prow);

  // Rows with an entry in the pivot column (other than the pivot row).
  const std::set<std::int32_t> targets = col_rows_[static_cast<std::size_t>(pc)];
  for (std::int32_t r : targets) {
    if (r == pr) continue;
    auto& row = rows_[static_cast<std::size_t>(r)];
    const auto it = row.find(pc);
    if (it == row.end()) continue;
    const double f = it->second / d;
    l_ops_.push_back({r, k, f});
    row.erase(it);
    col_rows_[static_cast<std::size_t>(pc)].erase(r);
    for (const auto& [c, v] : prow) {
      if (c == pc) continue;
      auto [jt, inserted] = row.try_emplace(c, 0.0);
      if (inserted) {
        ++fill_in_;
        col_rows_[static_cast<std::size_t>(c)].insert(r);
      }
      jt->second -= f * v;
      if (jt->second == 0.0) {  // exact cancellation: drop the entry
        row.erase(jt);
        col_rows_[static_cast<std::size_t>(c)].erase(r);
      }
    }
  }

  // Retire the pivot row and column from the active submatrix.
  for (const auto& [c, v] : prow) {
    (void)v;
    col_rows_[static_cast<std::size_t>(c)].erase(pr);
  }
  prow.clear();
  row_active_[static_cast<std::size_t>(pr)] = false;
  col_active_[static_cast<std::size_t>(pc)] = false;
}

bool MarkowitzLU::factor_steps(std::int32_t steps) {
  const std::int32_t done = pivots_done();
  const std::int32_t until = std::min(n_, done + steps);
  for (std::int32_t k = done; k < until; ++k) {
    std::int32_t pr, pc;
    if (!select_pivot(pr, pc)) return false;
    perm_row_.push_back(pr);
    perm_col_.push_back(pc);
    eliminate(k, pr, pc);
  }
  if (until == n_) factored_ = true;
  return true;
}

bool MarkowitzLU::factor() {
  perm_row_.clear();
  perm_col_.clear();
  pivots_.clear();
  u_rows_.clear();
  l_ops_.clear();
  fill_in_ = 0;
  return factor_steps(n_);
}

SparseMatrix MarkowitzLU::active_submatrix(std::vector<std::int32_t>* row_map,
                                           std::vector<std::int32_t>* col_map) const {
  std::vector<std::int32_t> rmap(static_cast<std::size_t>(n_), -1);
  std::vector<std::int32_t> cmap(static_cast<std::size_t>(n_), -1);
  std::int32_t nr = 0, nc = 0;
  if (row_map) row_map->clear();
  if (col_map) col_map->clear();
  for (std::int32_t r = 0; r < n_; ++r)
    if (row_active_[static_cast<std::size_t>(r)]) {
      rmap[static_cast<std::size_t>(r)] = nr++;
      if (row_map) row_map->push_back(r);
    }
  for (std::int32_t c = 0; c < n_; ++c)
    if (col_active_[static_cast<std::size_t>(c)]) {
      cmap[static_cast<std::size_t>(c)] = nc++;
      if (col_map) col_map->push_back(c);
    }

  std::vector<Triplet> tri;
  for (std::int32_t r = 0; r < n_; ++r) {
    if (!row_active_[static_cast<std::size_t>(r)]) continue;
    for (const auto& [c, v] : rows_[static_cast<std::size_t>(r)])
      tri.push_back({rmap[static_cast<std::size_t>(r)],
                     cmap[static_cast<std::size_t>(c)], v});
  }
  return SparseMatrix::from_triplets(nr, nc, std::move(tri));
}

bool MarkowitzLU::factor_parallel(ThreadPool& pool) {
  perm_row_.clear();
  perm_col_.clear();
  pivots_.clear();
  u_rows_.clear();
  l_ops_.clear();
  fill_in_ = 0;

  std::vector<std::int32_t> row_map, col_map;
  for (std::int32_t k = 0; k < n_; ++k) {
    const SparseMatrix active = active_submatrix(&row_map, &col_map);
    if (active.nnz() == 0) return false;
    const Ma28PivotSearch search(active, {opts_.threshold_u, SearchAxis::kRows});
    ExecReport rep;
    const PivotCandidate c = search.search_induction1(pool, rep);
    if (!c.valid()) return false;
    const std::int32_t pr = row_map[static_cast<std::size_t>(c.row)];
    const std::int32_t pc = col_map[static_cast<std::size_t>(c.col)];
    perm_row_.push_back(pr);
    perm_col_.push_back(pc);
    eliminate(k, pr, pc);
  }
  factored_ = true;
  return true;
}

std::vector<double> MarkowitzLU::solve(const std::vector<double>& b) const {
  if (!factored_) throw std::logic_error("MarkowitzLU::solve before factor()");
  std::vector<double> work = b;

  // Forward: replay the elimination on the right-hand side in step order
  // (l_ops_ is already recorded in step order).
  for (const EliminationOp& op : l_ops_)
    work[static_cast<std::size_t>(op.target_row)] -=
        op.factor *
        work[static_cast<std::size_t>(perm_row_[static_cast<std::size_t>(op.pivot_k)])];

  // Back substitution over the pivot steps in reverse.
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  for (std::int32_t k = n_ - 1; k >= 0; --k) {
    const auto pr = perm_row_[static_cast<std::size_t>(k)];
    const auto pc = perm_col_[static_cast<std::size_t>(k)];
    double acc = work[static_cast<std::size_t>(pr)];
    for (const auto& [c, v] : u_rows_[static_cast<std::size_t>(k)]) {
      if (c == pc) continue;
      acc -= v * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(pc)] = acc / pivots_[static_cast<std::size_t>(k)];
  }
  return x;
}

}  // namespace wlp::workloads
