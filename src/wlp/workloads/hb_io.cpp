#include "wlp/workloads/hb_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace wlp::workloads {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("harwell-boeing: " + what);
}

long to_long(const std::string& tok, const char* what) {
  try {
    return std::stol(tok);
  } catch (...) {
    fail(std::string("bad integer for ") + what + ": '" + tok + "'");
  }
}

/// Read exactly `count` whitespace-separated tokens spanning lines.
std::vector<std::string> read_tokens(std::istream& in, long count,
                                     const char* what) {
  std::vector<std::string> toks;
  toks.reserve(static_cast<std::size_t>(count));
  std::string tok;
  while (static_cast<long>(toks.size()) < count && in >> tok)
    toks.push_back(tok);
  if (static_cast<long>(toks.size()) < count)
    fail(std::string("unexpected end of file while reading ") + what);
  return toks;
}

/// FORTRAN floats may use D exponents: 1.5D+03.
double to_double(std::string tok) {
  for (char& c : tok)
    if (c == 'D' || c == 'd') c = 'e';
  try {
    return std::stod(tok);
  } catch (...) {
    fail("bad numeric value: '" + tok + "'");
  }
}

}  // namespace

SparseMatrix read_harwell_boeing(std::istream& in) {
  std::string line1, line2, line3, line4;
  if (!std::getline(in, line1) || !std::getline(in, line2) ||
      !std::getline(in, line3) || !std::getline(in, line4))
    fail("missing header lines");

  // Line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD (RHSCRD optional).
  std::istringstream l2(line2);
  long totcrd = 0, ptrcrd = 0, indcrd = 0, valcrd = 0, rhscrd = 0;
  if (!(l2 >> totcrd >> ptrcrd >> indcrd >> valcrd)) fail("bad card counts");
  l2 >> rhscrd;  // optional
  (void)totcrd;
  (void)ptrcrd;
  (void)indcrd;

  // Line 3: MXTYPE NROW NCOL NNZERO NELTVL.
  std::istringstream l3(line3);
  std::string mxtype;
  long nrow = 0, ncol = 0, nnz = 0, neltvl = 0;
  if (!(l3 >> mxtype >> nrow >> ncol >> nnz)) fail("bad matrix header");
  l3 >> neltvl;
  std::transform(mxtype.begin(), mxtype.end(), mxtype.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (mxtype.size() != 3) fail("bad MXTYPE '" + mxtype + "'");
  if (mxtype[0] != 'R') fail("only real matrices supported (MXTYPE " + mxtype + ")");
  if (mxtype[2] != 'A') fail("only assembled matrices supported (MXTYPE " + mxtype + ")");
  const bool symmetric = mxtype[1] == 'S';
  if (mxtype[1] != 'U' && mxtype[1] != 'S')
    fail("unsupported symmetry class (MXTYPE " + mxtype + ")");
  if (nrow <= 0 || ncol <= 0 || nnz < 0) fail("bad dimensions");
  if (neltvl != 0) fail("element matrices not supported");

  // Line 4 is the FORTRAN format line; a possible 5th line describes RHS.
  if (rhscrd > 0) {
    std::string line5;
    if (!std::getline(in, line5)) fail("missing RHS format line");
  }

  const auto ptr_toks = read_tokens(in, ncol + 1, "column pointers");
  const auto ind_toks = read_tokens(in, nnz, "row indices");
  std::vector<double> values(static_cast<std::size_t>(nnz), 0.0);
  if (valcrd > 0) {
    const auto val_toks = read_tokens(in, nnz, "values");
    for (long k = 0; k < nnz; ++k)
      values[static_cast<std::size_t>(k)] = to_double(val_toks[static_cast<std::size_t>(k)]);
  }

  std::vector<Triplet> tri;
  tri.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  long prev_ptr = -1;
  for (long c = 0; c < ncol; ++c) {
    const long b = to_long(ptr_toks[static_cast<std::size_t>(c)], "colptr") - 1;
    const long e = to_long(ptr_toks[static_cast<std::size_t>(c) + 1], "colptr") - 1;
    if (b < 0 || e < b || e > nnz) fail("inconsistent column pointers");
    if (b < prev_ptr) fail("column pointers not monotone");
    prev_ptr = b;
    for (long k = b; k < e; ++k) {
      const long r = to_long(ind_toks[static_cast<std::size_t>(k)], "rowind") - 1;
      if (r < 0 || r >= nrow) fail("row index out of range");
      const double v = values[static_cast<std::size_t>(k)];
      tri.push_back({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c), v});
      if (symmetric && r != static_cast<long>(c))
        tri.push_back({static_cast<std::int32_t>(c), static_cast<std::int32_t>(r), v});
    }
  }
  return SparseMatrix::from_triplets(static_cast<std::int32_t>(nrow),
                                     static_cast<std::int32_t>(ncol),
                                     std::move(tri));
}

SparseMatrix read_harwell_boeing_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return read_harwell_boeing(in);
}

void write_harwell_boeing(std::ostream& out, const SparseMatrix& m,
                          const std::string& title, const std::string& key) {
  // Column-compressed form via the transpose's rows.
  const SparseMatrix t = m.transpose();
  const long nnz = m.nnz();
  const long ncol = m.cols();

  std::vector<long> colptr(static_cast<std::size_t>(ncol) + 1, 1);
  for (long c = 0; c < ncol; ++c)
    colptr[static_cast<std::size_t>(c) + 1] =
        colptr[static_cast<std::size_t>(c)] + t.row_nnz(static_cast<std::int32_t>(c));

  const int ptr_per_line = 8, ind_per_line = 8, val_per_line = 4;
  const long ptrcrd = (ncol + 1 + ptr_per_line - 1) / ptr_per_line;
  const long indcrd = (nnz + ind_per_line - 1) / ind_per_line;
  const long valcrd = (nnz + val_per_line - 1) / val_per_line;

  // Header.
  out << std::left << std::setw(72) << title.substr(0, 72)
      << std::setw(8) << key.substr(0, 8) << '\n';
  out << std::right << std::setw(14) << (ptrcrd + indcrd + valcrd)
      << std::setw(14) << ptrcrd << std::setw(14) << indcrd << std::setw(14)
      << valcrd << std::setw(14) << 0 << '\n';
  out << std::left << std::setw(14) << "RUA" << std::right << std::setw(14)
      << m.rows() << std::setw(14) << ncol << std::setw(14) << nnz
      << std::setw(14) << 0 << '\n';
  out << std::left << std::setw(16) << "(8I10)" << std::setw(16) << "(8I10)"
      << std::setw(20) << "(4E20.12)" << std::setw(20) << "" << '\n';

  auto emit_longs = [&](const std::vector<long>& xs, int per_line) {
    int col = 0;
    for (long x : xs) {
      out << std::right << std::setw(10) << x;
      if (++col == per_line) {
        out << '\n';
        col = 0;
      }
    }
    if (col) out << '\n';
  };

  emit_longs(colptr, ptr_per_line);

  std::vector<long> rowind;
  rowind.reserve(static_cast<std::size_t>(nnz));
  std::vector<double> vals;
  vals.reserve(static_cast<std::size_t>(nnz));
  for (std::int32_t c = 0; c < t.rows(); ++c) {
    const auto rows = t.row_cols(c);
    const auto v = t.row_vals(c);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      rowind.push_back(rows[k] + 1);
      vals.push_back(v[k]);
    }
  }
  emit_longs(rowind, ind_per_line);

  int col = 0;
  out << std::scientific << std::setprecision(12);
  for (double v : vals) {
    out << std::setw(20) << v;
    if (++col == val_per_line) {
      out << '\n';
      col = 0;
    }
  }
  if (col) out << '\n';
}

void write_harwell_boeing_file(const std::string& path, const SparseMatrix& m,
                               const std::string& title, const std::string& key) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_harwell_boeing(out, m, title, key);
}

}  // namespace wlp::workloads
