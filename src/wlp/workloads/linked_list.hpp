// Pool-allocated singly linked lists — the data structure behind the SPICE
// LOAD workload (a chain of device models) and behind every General-k test.
//
// Nodes live in one contiguous pool and link by index, which (a) makes the
// traversal order independent of heap layout, so runs are reproducible, and
// (b) lets tests shuffle the *logical* order against the *storage* order to
// make sure nothing accidentally relies on pool position.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "wlp/support/prng.hpp"

namespace wlp::workloads {

inline constexpr std::int32_t kNullNode = -1;

template <class Payload>
class NodePool {
 public:
  struct Node {
    std::int32_t next = kNullNode;
    Payload payload{};
  };

  NodePool() = default;

  /// Build a list of `n` nodes whose logical order is a seeded permutation
  /// of the pool order; `fill(i, payload)` initializes the payload of the
  /// node at logical position i.
  template <class Fill>
  static NodePool make(long n, std::uint64_t seed, Fill&& fill) {
    NodePool list;
    list.nodes_.resize(static_cast<std::size_t>(n));
    std::vector<std::int32_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    Xoshiro256 rng(seed);
    for (std::size_t k = order.size(); k > 1; --k)
      std::swap(order[k - 1], order[static_cast<std::size_t>(rng.below(k))]);

    for (long i = 0; i < n; ++i) {
      Node& node = list.nodes_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
      node.next = i + 1 < n ? order[static_cast<std::size_t>(i + 1)] : kNullNode;
      fill(i, node.payload);
    }
    list.head_ = n > 0 ? order[0] : kNullNode;
    return list;
  }

  std::int32_t head() const noexcept { return head_; }
  std::int32_t next(std::int32_t c) const noexcept {
    return nodes_[static_cast<std::size_t>(c)].next;
  }
  static bool is_end(std::int32_t c) noexcept { return c == kNullNode; }

  Payload& payload(std::int32_t c) noexcept {
    return nodes_[static_cast<std::size_t>(c)].payload;
  }
  const Payload& payload(std::int32_t c) const noexcept {
    return nodes_[static_cast<std::size_t>(c)].payload;
  }

  long size() const noexcept { return static_cast<long>(nodes_.size()); }

  /// Logical-order payload visit (reference traversal for tests).
  template <class Visit>
  void for_each(Visit&& visit) const {
    for (std::int32_t c = head_; c != kNullNode; c = next(c)) visit(payload(c));
  }

 private:
  std::vector<Node> nodes_;
  std::int32_t head_ = kNullNode;
};

}  // namespace wlp::workloads
