#include "wlp/workloads/ma28_pivot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "wlp/core/while_doany.hpp"
#include "wlp/core/while_general.hpp"
#include "wlp/core/while_induction.hpp"

namespace wlp::workloads {

namespace {

/// Sequential better-than: lower cost, then larger magnitude; remaining ties
/// resolve to the earlier candidate (the sequential loop only replaces on
/// strict improvement).
bool better(const PivotCandidate& a, const PivotCandidate& b) {
  if (!b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.cost != b.cost) return a.cost < b.cost;
  return std::abs(a.value) > std::abs(b.value);
}

}  // namespace

Ma28PivotSearch::Ma28PivotSearch(SparseMatrix a, PivotSearchConfig cfg)
    : cfg_(cfg), a_(std::move(a)), at_(a_.transpose()) {
  const SparseMatrix& primary = cfg_.axis == SearchAxis::kRows ? a_ : at_;
  const SparseMatrix& cross = cfg_.axis == SearchAxis::kRows ? at_ : a_;

  const std::int32_t n = primary.rows();
  order_.resize(static_cast<std::size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](std::int32_t x, std::int32_t y) {
    return primary.row_nnz(x) < primary.row_nnz(y);
  });

  counts_.reserve(order_.size());
  for (std::int32_t r : order_)
    counts_.push_back(static_cast<std::int32_t>(primary.row_nnz(r)));

  cross_counts_.resize(static_cast<std::size_t>(cross.rows()));
  for (std::int32_t r = 0; r < cross.rows(); ++r)
    cross_counts_[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(cross.row_nnz(r));
}

PivotCandidate Ma28PivotSearch::scan_candidate(long i) const {
  const SparseMatrix& primary = cfg_.axis == SearchAxis::kRows ? a_ : at_;
  const std::int32_t r = order_[static_cast<std::size_t>(i)];
  const auto cols = primary.row_cols(r);
  const auto vals = primary.row_vals(r);

  double maxv = 0;
  for (double v : vals) maxv = std::max(maxv, std::abs(v));

  PivotCandidate best;
  const long rcount = static_cast<long>(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (std::abs(vals[k]) < cfg_.threshold_u * maxv) continue;
    const long ccount = cross_counts_[static_cast<std::size_t>(cols[k])];
    PivotCandidate cand;
    cand.cost = (rcount - 1) * (ccount - 1);
    cand.value = vals[k];
    if (cfg_.axis == SearchAxis::kRows) {
      cand.row = r;
      cand.col = cols[k];
    } else {
      cand.row = cols[k];
      cand.col = r;
    }
    if (better(cand, best) ||
        (!best.valid() && cand.valid())) {
      best = cand;
    }
  }
  return best;
}

long Ma28PivotSearch::exit_bound(long i) const {
  const long nz = counts_[static_cast<std::size_t>(i)];
  return (nz - 1) * (nz - 1);
}

bool Ma28PivotSearch::level_exit(long i, const PivotCandidate& best) const {
  // MA30AD completes a whole count level before testing the bound: the
  // exit can only fire at the first candidate of a new (higher) count.
  if (!best.valid() || i <= 0) return false;
  if (counts_[static_cast<std::size_t>(i)] ==
      counts_[static_cast<std::size_t>(i - 1)])
    return false;
  return best.cost <= exit_bound(i);
}

PivotCandidate Ma28PivotSearch::search_sequential(long* trip_out) const {
  PivotCandidate best;
  const long n = candidates();
  long trip = n;
  for (long i = 0; i < n; ++i) {
    if (level_exit(i, best)) {
      trip = i;
      break;
    }
    const PivotCandidate cand = scan_candidate(i);
    if (better(cand, best)) best = cand;
  }
  if (trip_out) *trip_out = trip;
  return best;
}

long Ma28PivotSearch::true_trip(const std::vector<PivotCandidate>& found) const {
  PivotCandidate best;
  const long n = candidates();
  for (long i = 0; i < n; ++i) {
    if (level_exit(i, best)) return i;
    if (i < static_cast<long>(found.size()) &&
        better(found[static_cast<std::size_t>(i)], best))
      best = found[static_cast<std::size_t>(i)];
  }
  return n;
}

PivotCandidate Ma28PivotSearch::winner_before(
    const std::vector<PivotCandidate>& found, long trip) const {
  PivotCandidate best;
  for (long i = 0; i < trip && i < static_cast<long>(found.size()); ++i)
    if (better(found[static_cast<std::size_t>(i)], best))
      best = found[static_cast<std::size_t>(i)];
  return best;
}

namespace {

/// Gather per-iteration candidates published during a parallel run into a
/// dense vector (index = iteration).
struct CandidateLog {
  std::vector<PivotCandidate> slots;
  explicit CandidateLog(long n) : slots(static_cast<std::size_t>(n)) {}
  void publish(long i, const PivotCandidate& c) {
    slots[static_cast<std::size_t>(i)] = c;  // single writer per iteration
  }
};

}  // namespace

PivotCandidate Ma28PivotSearch::search_induction1(ThreadPool& pool,
                                                  ExecReport& report) const {
  const long n = candidates();
  CandidateLog log(n);
  // Running best for the *speculative* exit test, packed as (cost, iter).
  // The test fires only when the best candidate's ITERATION precedes i:
  // then a candidate with that cost exists among the sequential loop's
  // first i iterations too, so the sequential loop would also have exited
  // by i — firing is safe; not firing merely executes extra iterations.
  BestCandidate running;

  report = while_induction1(pool, n, [&](long i, unsigned) {
    if (!running.empty() && i > 0 &&
        counts_[static_cast<std::size_t>(i)] !=
            counts_[static_cast<std::size_t>(i - 1)] &&
        static_cast<long>(running.cost()) <= exit_bound(i) &&
        static_cast<long>(running.payload()) < i)
      return IterAction::kExit;
    const PivotCandidate cand = scan_candidate(i);
    log.publish(i, cand);
    if (cand.valid())
      running.publish(static_cast<std::uint32_t>(std::min<long>(
                          cand.cost, std::numeric_limits<std::int32_t>::max())),
                      static_cast<std::uint32_t>(i));
    return IterAction::kContinue;
  });

  // Time-stamp-ordered reduction (the paper's sequential-consistency step).
  report.method = Method::kInduction1;
  report.trip = true_trip(log.slots);
  report.used_stamps = true;
  return winner_before(log.slots, report.trip);
}

PivotCandidate Ma28PivotSearch::search_general3(ThreadPool& pool,
                                                ExecReport& report) const {
  const long n = candidates();
  CandidateLog log(n);
  BestCandidate running;

  report = while_general3(
      pool, 0L, [](long c) { return c + 1; }, [n](long c) { return c >= n; },
      [&](long i, long /*cursor*/, unsigned) {
        if (!running.empty() && i > 0 &&
            counts_[static_cast<std::size_t>(i)] !=
                counts_[static_cast<std::size_t>(i - 1)] &&
            static_cast<long>(running.cost()) <= exit_bound(i) &&
            static_cast<long>(running.payload()) < i)
          return IterAction::kExit;
        const PivotCandidate cand = scan_candidate(i);
        log.publish(i, cand);
        if (cand.valid())
          running.publish(
              static_cast<std::uint32_t>(std::min<long>(
                  cand.cost, std::numeric_limits<std::int32_t>::max())),
              static_cast<std::uint32_t>(i));
        return IterAction::kContinue;
      });

  report.method = Method::kGeneral3;
  report.trip = true_trip(log.slots);
  report.used_stamps = true;
  return winner_before(log.slots, report.trip);
}

sim::LoopProfile Ma28PivotSearch::profile() const {
  sim::LoopProfile lp;
  const long n = candidates();
  long seq_trip;
  search_sequential(&seq_trip);
  lp.u = n;
  lp.trip = seq_trip;
  lp.work.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i)
    lp.work.push_back(0.8 * static_cast<double>(counts_[static_cast<std::size_t>(i)]) +
                      1.0);
  lp.next_cost = 0.3;  // count-ordered chain hop
  lp.writes_per_iter = 1;   // publish the candidate (time-stamped)
  lp.reads_per_iter = 1;
  lp.state_words = n;       // the privatized pivot records are backed up
  lp.overshoot_does_work = true;  // the exit depends on the running best
  return lp;
}

}  // namespace wlp::workloads
