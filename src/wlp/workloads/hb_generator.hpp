// Synthetic Harwell-Boeing-style matrix generators — stand-ins for the four
// inputs of Section 9 (gematt11, gematt12, orsreg1, saylr4), which we cannot
// redistribute.  Each generator matches the original's order, nonzero count,
// and structural class, which is what the available pivot-search parallelism
// depends on (DESIGN.md, "Substitutions"):
//
//   gematt11 / gematt12 — GEMAT power-flow matrices: n = 4929, nnz ~ 33k,
//       irregular row degrees (a few dense "bus" rows, many sparse ones);
//       gematt12 differs by a denser coupling pattern.
//   orsreg1 — oil-reservoir simulation, 21 x 21 x 5 grid, 7-point operator:
//       n = 2205, nnz ~ 14k, very regular banded structure.
//   saylr4 — 3-D reservoir simulation, 33 x 12 x 9 grid, 7-point operator
//       with anisotropic coefficients: n = 3564, nnz ~ 22.3k.
//
// All matrices are diagonally dominated (so the LU tests are stable) and
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <string>

#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {

struct HBInfo {
  std::string name;
  std::int32_t n;
  long paper_nnz;  ///< the original matrix's nonzero count (target)
};

SparseMatrix gen_gematt11(std::uint64_t seed = 11);
SparseMatrix gen_gematt12(std::uint64_t seed = 12);
SparseMatrix gen_orsreg1();
SparseMatrix gen_saylr4(std::uint64_t seed = 4);

/// Scaled-down variants for fast unit tests (same structure class).
SparseMatrix gen_power_flow(std::int32_t n, long target_nnz, double hub_fraction,
                            std::uint64_t seed);
SparseMatrix gen_grid7(std::int32_t nx, std::int32_t ny, std::int32_t nz,
                       double anisotropy = 1.0, std::uint64_t seed = 1);

HBInfo info_gematt11();
HBInfo info_gematt12();
HBInfo info_orsreg1();
HBInfo info_saylr4();

}  // namespace wlp::workloads
