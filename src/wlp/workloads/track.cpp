#include "wlp/workloads/track.hpp"

#include <cmath>
#include <numeric>

#include "wlp/core/speculative.hpp"
#include "wlp/core/while_induction.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::workloads {

TrackLoop::TrackLoop(TrackConfig cfg) : cfg_(cfg) {
  Xoshiro256 rng(cfg.seed);
  const long n = cfg.candidates;
  sub_.resize(static_cast<std::size_t>(n));
  std::iota(sub_.begin(), sub_.end(), 0);
  for (std::size_t k = sub_.size(); k > 1; --k)
    std::swap(sub_[k - 1], sub_[static_cast<std::size_t>(rng.below(k))]);

  obs_.resize(static_cast<std::size_t>(n));
  steps_.resize(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    obs_[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
    steps_[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(rng.range(6, 30));
  }
  exit_at_ = static_cast<long>(static_cast<double>(n) * cfg.error_position) +
             static_cast<long>(rng.below(16));
  if (exit_at_ >= n) exit_at_ = n - 1;
  // Plant the error: an observation outside the physical window.
  obs_[static_cast<std::size_t>(exit_at_)] = 50.0;
}

bool TrackLoop::extrapolate(long i, double& p_out, double& v_out) const {
  const double z = obs_[static_cast<std::size_t>(i)];
  // Alpha-beta smoothing of the candidate track over `steps_` updates: the
  // variable-cost numeric kernel standing in for FPTRAK's extrapolation.
  double p = 0, v = 0;
  const int reps = steps_[static_cast<std::size_t>(i)];
  for (int k = 0; k < reps; ++k) {
    const double pred = p + v;
    const double resid = z - pred;
    p = pred + 0.85 * resid;
    v = v + 0.35 * resid;
  }
  p_out = p;
  v_out = v;
  return std::abs(z) > 10.0;  // error condition: unphysical observation
}

std::vector<double> TrackLoop::fresh_positions() const {
  return std::vector<double>(static_cast<std::size_t>(cfg_.candidates), -1.0);
}
std::vector<double> TrackLoop::fresh_velocities() const {
  return std::vector<double>(static_cast<std::size_t>(cfg_.candidates), -1.0);
}

long TrackLoop::run_sequential(std::vector<double>& pos,
                               std::vector<double>& vel) const {
  for (long i = 0; i < cfg_.candidates; ++i) {
    double p, v;
    if (extrapolate(i, p, v)) return i;  // exit before the store
    const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
    pos[slot] = p;
    vel[slot] = v;
  }
  return cfg_.candidates;
}

ExecReport TrackLoop::run_induction1(ThreadPool& pool, std::vector<double>& pos,
                                     std::vector<double>& vel) const {
  VersionedArray<double> vpos(std::move(pos));
  VersionedArray<double> vvel(std::move(vel));
  vpos.checkpoint(&pool);
  vvel.checkpoint(&pool);
  ExecReport r = while_induction1(pool, cfg_.candidates, [&](long i, unsigned) {
    double p, v;
    if (extrapolate(i, p, v)) return IterAction::kExit;
    const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
    vpos.write(i, slot, p);
    vvel.write(i, slot, v);
    return IterAction::kContinue;
  });
  r.used_checkpoint = r.used_stamps = true;
  r.undone_writes = vpos.undo_beyond(r.trip, &pool) + vvel.undo_beyond(r.trip, &pool);
  pos = std::move(vpos.data());
  vel = std::move(vvel.data());
  return r;
}

ExecReport TrackLoop::run_induction2(ThreadPool& pool, std::vector<double>& pos,
                                     std::vector<double>& vel) const {
  VersionedArray<double> vpos(std::move(pos));
  VersionedArray<double> vvel(std::move(vel));
  vpos.checkpoint(&pool);
  vvel.checkpoint(&pool);
  ExecReport r = while_induction2(pool, cfg_.candidates, [&](long i, unsigned) {
    double p, v;
    if (extrapolate(i, p, v)) return IterAction::kExit;
    const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
    vpos.write(i, slot, p);
    vvel.write(i, slot, v);
    return IterAction::kContinue;
  });
  r.used_checkpoint = r.used_stamps = true;
  r.undone_writes = vpos.undo_beyond(r.trip, &pool) + vvel.undo_beyond(r.trip, &pool);
  pos = std::move(vpos.data());
  vel = std::move(vvel.data());
  return r;
}

ExecReport TrackLoop::run_speculative(ThreadPool& pool, std::vector<double>& pos,
                                      std::vector<double>& vel) const {
  SpecArray<double> spos(std::move(pos), pool.size(), /*run_pd_test=*/true);
  SpecArray<double> svel(std::move(vel), pool.size(), /*run_pd_test=*/true);
  SpecTarget* targets[] = {&spos, &svel};

  ExecReport r = speculative_while(
      pool, cfg_.candidates, std::span<SpecTarget* const>(targets, 2),
      [&](long i, unsigned vpn) {
        spos.begin_iteration(vpn, i);
        svel.begin_iteration(vpn, i);
        double p, v;
        if (extrapolate(i, p, v)) return IterAction::kExit;
        const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
        spos.set(vpn, i, slot, p);
        svel.set(vpn, i, slot, v);
        return IterAction::kContinue;
      },
      [&] {
        // Sequential fallback against the restored raw data.
        long trip = cfg_.candidates;
        for (long i = 0; i < cfg_.candidates; ++i) {
          double p, v;
          if (extrapolate(i, p, v)) {
            trip = i;
            break;
          }
          const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
          spos.data()[slot] = p;
          svel.data()[slot] = v;
        }
        return trip;
      });
  pos = std::move(spos.data());
  vel = std::move(svel.data());
  return r;
}

ExecReport TrackLoop::run_ideal(ThreadPool& pool, std::vector<double>& pos,
                                std::vector<double>& vel) const {
  // Oracle: the trip count is known, so the loop is a plain DOALL with no
  // exit tests, checkpoints, or stamps — the hand-parallelized upper bound.
  doall(pool, 0, exit_at_, [&](long i, unsigned) {
    double p, v;
    extrapolate(i, p, v);
    const auto slot = static_cast<std::size_t>(sub_[static_cast<std::size_t>(i)]);
    pos[slot] = p;
    vel[slot] = v;
  });
  ExecReport r;
  r.method = Method::kInduction2;
  r.trip = exit_at_;
  r.started = exit_at_;
  return r;
}

sim::LoopProfile TrackLoop::profile() const {
  sim::LoopProfile lp;
  lp.u = cfg_.candidates;
  lp.trip = exit_at_;
  lp.work.reserve(static_cast<std::size_t>(lp.u));
  for (long i = 0; i < lp.u; ++i)
    lp.work.push_back(0.45 * static_cast<double>(steps_[static_cast<std::size_t>(i)]) + 1.5);
  lp.next_cost = 0;  // induction dispatcher: closed form
  lp.writes_per_iter = 2;
  lp.reads_per_iter = 2;
  lp.state_words = 2 * cfg_.candidates;  // both output arrays checkpointed
  lp.shadow_cells = 2 * cfg_.candidates;
  lp.overshoot_does_work = true;  // the error is detected inside the work
  lp.singular_exit = true;  // only the planted bad track reveals the exit
  return lp;
}

}  // namespace wlp::workloads
