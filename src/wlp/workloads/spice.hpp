// SPICE LOAD loop 40 analog — Section 9, Table 2 row 1, Figure 6.
//
// The original loop traverses the linked list of capacitor device models and
// loads (stamps) each model into the circuit matrix.  Structure:
//
//     ptr tmp = head(device_list)          ; general-recurrence dispatcher
//     while (tmp != null)                  ; RI terminator
//         WORK(tmp)  -- evaluate model, stamp 4 matrix entries (disjoint)
//         tmp = next(tmp)
//
// Properties the paper exploits: the terminator is RI (no overshoot), every
// device stamps its own matrix entries, so the remainder is fully parallel
// and the methods run with *no backups and no time-stamps*.  Each device
// model has a different evaluation cost (polynomial term count), which is
// what makes General-3's dynamic scheduling pay off over General-2's static
// assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/sim/machine.hpp"
#include "wlp/workloads/linked_list.hpp"

namespace wlp::workloads {

/// Device classes on the model list.  Loop 40 proper loads capacitors; the
/// paper notes that "the structure of Loop 40 is identical to those for the
/// evaluation of transistor models (subroutines BJT and MOSFET), the same
/// parallelization techniques can also be used on these loops" — and that
/// LOAD (which calls BJT and MOSFET) is ~40% of SPICE's sequential time.
enum class DeviceKind : std::uint8_t { kCapacitor, kBJT, kMOSFET };

struct SpiceConfig {
  long devices = 4000;
  int min_terms = 4;    ///< lightest device model (polynomial terms)
  int max_terms = 24;   ///< heaviest device model
  double bjt_fraction = 0.0;     ///< transistor mix (0 = pure Loop 40)
  double mosfet_fraction = 0.0;
  std::uint64_t seed = 42;
};

struct DeviceModel {
  std::int32_t stamp_base = 0;  ///< first of 4 disjoint matrix slots
  double c0 = 0;                ///< base capacitance / saturation current
  double bias = 0;              ///< operating-point bias
  std::int16_t terms = 0;       ///< model complexity (work grain)
  DeviceKind kind = DeviceKind::kCapacitor;
};

class SpiceLoad {
 public:
  explicit SpiceLoad(SpiceConfig cfg = {});

  long devices() const noexcept { return list_.size(); }
  const SpiceConfig& config() const noexcept { return cfg_; }

  /// The WORK of Fig. 1(b): evaluate the charge polynomial of one device.
  static double evaluate(const DeviceModel& m);

  /// A zeroed conductance matrix of the right size (4 slots per device).
  std::vector<double> fresh_matrix() const;

  /// Sequential reference execution.
  void run_sequential(std::vector<double>& matrix) const;

  /// The three Section 3.3 methods plus the Wu-Lewis baselines.  All write
  /// into `matrix` and must produce exactly the sequential result.
  ExecReport run_general1(ThreadPool& pool, std::vector<double>& matrix) const;
  ExecReport run_general2(ThreadPool& pool, std::vector<double>& matrix) const;
  ExecReport run_general3(ThreadPool& pool, std::vector<double>& matrix) const;
  ExecReport run_wu_lewis_distribute(ThreadPool& pool, std::vector<double>& matrix) const;
  ExecReport run_wu_lewis_doacross(ThreadPool& pool, std::vector<double>& matrix) const;

  /// Per-iteration work profile for the simulated machine (Fig. 6 curves).
  sim::LoopProfile profile() const;

 private:
  void stamp(const DeviceModel& m, std::vector<double>& matrix) const;

  SpiceConfig cfg_;
  NodePool<DeviceModel> list_;
};

}  // namespace wlp::workloads
