// Harwell-Boeing (RUA) file I/O.
//
// The evaluation's inputs (gematt11, gematt12, orsreg1, saylr4) are
// distributed in the Harwell-Boeing exchange format.  This repository ships
// synthetic stand-ins (hb_generator.hpp), but users who have the original
// files can load them here and run the same benches on the real structures.
//
// Scope: real unsymmetric/symmetric assembled matrices ("RUA"/"RSA"), the
// overwhelmingly common case.  The writer emits a standard-conforming file
// (FORTRAN 1-based, column-compressed); the reader handles the fixed-field
// headers and free-ish numeric bodies produced by the usual tools.
// Right-hand sides and element matrices are out of scope.
#pragma once

#include <iosfwd>
#include <string>

#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {

/// Parse a Harwell-Boeing file.  Throws std::runtime_error with a line
/// diagnostic on malformed input.  Symmetric types ("RSA") are expanded to
/// full storage.
SparseMatrix read_harwell_boeing(std::istream& in);
SparseMatrix read_harwell_boeing_file(const std::string& path);

/// Write `m` as an RUA Harwell-Boeing file with the given title/key.
void write_harwell_boeing(std::ostream& out, const SparseMatrix& m,
                          const std::string& title = "wlp export",
                          const std::string& key = "WLPMAT");
void write_harwell_boeing_file(const std::string& path, const SparseMatrix& m,
                               const std::string& title = "wlp export",
                               const std::string& key = "WLPMAT");

}  // namespace wlp::workloads
