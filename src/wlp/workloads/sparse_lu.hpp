// A working sparse LU factorization with Markowitz threshold pivoting — the
// MA28-class solver substrate.  The pivot-search loops the paper
// parallelizes (MA30AD loops 270/320) live in ma28_pivot.hpp; this solver
// embeds the same search so that the workload is a real factorization, not
// a mock: tests verify P*A*Q = L*U by reconstruction and by solving.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "wlp/sched/thread_pool.hpp"
#include "wlp/workloads/sparse_matrix.hpp"

namespace wlp::workloads {

struct LUOptions {
  double threshold_u = 0.1;  ///< MA28's stability threshold: |a| >= u * maxrow
};

class MarkowitzLU {
 public:
  explicit MarkowitzLU(const SparseMatrix& a, LUOptions opts = {});

  /// Factor P*A*Q = L*U.  Returns false if the matrix is structurally or
  /// numerically singular under the threshold.
  bool factor();

  /// Perform only the next `steps` pivot eliminations (resumable).  Used to
  /// expose realistic mid-factorization pivot-search problems: after some
  /// elimination the active submatrix carries fill-in and heterogeneous
  /// row/column counts — the state MA30AD's search loops actually face.
  bool factor_steps(std::int32_t steps);

  /// The current active submatrix, compacted to the remaining rows/columns.
  /// Optional out-params receive the compacted->original index maps.
  SparseMatrix active_submatrix(std::vector<std::int32_t>* row_map = nullptr,
                                std::vector<std::int32_t>* col_map = nullptr) const;

  /// Like factor(), but EVERY pivot is selected by the parallel Markowitz
  /// search (Ma28PivotSearch::search_induction1) over the current active
  /// submatrix: the complete MA28-with-parallelized-MA30AD integration.
  /// Produces factors identical to factor()'s (the parallel search is
  /// sequentially consistent).
  bool factor_parallel(ThreadPool& pool);

  std::int32_t pivots_done() const noexcept {
    return static_cast<std::int32_t>(perm_row_.size());
  }

  bool factored() const noexcept { return factored_; }
  long fill_in() const noexcept { return fill_in_; }
  std::int32_t n() const noexcept { return n_; }

  /// Row permutation P (pivot order: perm_row()[k] is the k-th pivot row).
  const std::vector<std::int32_t>& perm_row() const noexcept { return perm_row_; }
  const std::vector<std::int32_t>& perm_col() const noexcept { return perm_col_; }

  /// Solve A x = b using the computed factors.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  struct EliminationOp {
    std::int32_t target_row;
    std::int32_t pivot_k;  ///< elimination step index
    double factor;
  };

  bool select_pivot(std::int32_t& pr, std::int32_t& pc);
  void eliminate(std::int32_t k, std::int32_t pr, std::int32_t pc);

  std::int32_t n_ = 0;
  LUOptions opts_;
  // Active submatrix: row maps (col -> value) plus per-column row sets so
  // elimination can walk a pivot column without scanning everything.
  std::vector<std::map<std::int32_t, double>> rows_;
  std::vector<std::set<std::int32_t>> col_rows_;
  std::vector<bool> row_active_, col_active_;

  // Factors.
  std::vector<std::int32_t> perm_row_, perm_col_;
  std::vector<std::map<std::int32_t, double>> u_rows_;  ///< per pivot step
  std::vector<double> pivots_;
  std::vector<EliminationOp> l_ops_;
  long fill_in_ = 0;
  bool factored_ = false;
};

}  // namespace wlp::workloads
