// Parallelization planning: from a distributed/fused loop to the concrete
// Section 3/5 method per block, with the Table 1 taxonomy deciding whether
// undo machinery is required and Section 7's cost model gating the whole
// transformation.
#pragma once

#include <string>
#include <vector>

#include "wlp/analysis/distribute.hpp"
#include "wlp/core/cost_model.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/taxonomy.hpp"

namespace wlp::ir {

struct PlanStep {
  Block block;
  wlp::Method method = wlp::Method::kSequential;
  bool speculative = false;  ///< run under the PD test
  bool needs_undo = false;   ///< checkpoint + time-stamps + post-loop undo
  std::string note;
};

struct ParallelPlan {
  std::vector<PlanStep> steps;
  wlp::DispatcherKind dispatcher = wlp::DispatcherKind::kGeneral;
  wlp::TerminatorClass terminator = wlp::TerminatorClass::kRemainderInvariant;
  bool may_overshoot = false;
  std::vector<std::string> privatized_scalars;
  std::vector<std::string> pd_arrays;  ///< arrays needing run-time testing
  bool recommended = true;             ///< cost-model verdict (if timing given)
  double predicted_speedup = 0;

  std::string to_text(const Loop& loop) const;
};

/// Build the full plan: dependence graph -> distribute -> fuse -> classify
/// exits (RI/RV) -> select a method per block -> optional cost-model gate.
/// `timing`, if provided, drives the Section 7 go/no-go decision for `p`
/// processors.
ParallelPlan make_plan(const Loop& loop, unsigned p = 8,
                       const wlp::LoopTiming* timing = nullptr);

}  // namespace wlp::ir
