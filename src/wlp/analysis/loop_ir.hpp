// A small loop intermediate representation — the substrate for the
// "automatic transformation" side of the paper (Sections 2 and 6).
//
// A WHILE loop (normalized to a DO loop with conditional exits over an
// iteration counter, as Section 2 prescribes: "all array references in the
// WHILE loop have to be associated with a loop counter") is a list of
// statements over scalar and array variables:
//
//   assign-scalar   x  = expr
//   assign-array    A[sub] = expr
//   exit-if         cond          (one of the loop's termination conditions)
//
// Expressions are a tiny AST: constants, the loop index, scalar reads,
// array reads, binary arithmetic/comparison, and opaque unary calls
// (`next(p)`, `f(x)` — the general recurrences and loop-external functions).
//
// Restrictions (checked by validate()): every scalar is assigned by at most
// one statement (single-assignment per loop body, the form a compiler's
// renaming pass produces), and subscripts are either affine in the loop
// index or classified as "unknown" (subscripted subscripts etc.), which is
// exactly the case the PD test exists for.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wlp::ir {

enum class ExprKind {
  kConst,   ///< literal
  kIndex,   ///< the loop counter i
  kScalar,  ///< scalar variable read
  kArray,   ///< array element read, subscript in `a`
  kBinary,  ///< binary op `op` over a, b
  kCall,    ///< opaque unary call name(a) — user-supplied semantics
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind{};
  double value = 0;  ///< kConst
  std::string name;  ///< scalar / array / call name
  ExprPtr a, b;      ///< operands
  char op = 0;       ///< '+','-','*','/','<','>','L' (<=),'G' (>=),'=' ,'!'(ne)
};

ExprPtr cnst(double v);
ExprPtr index();
ExprPtr scalar(std::string name);
ExprPtr array(std::string name, ExprPtr subscript);
ExprPtr bin(char op, ExprPtr lhs, ExprPtr rhs);
ExprPtr call(std::string fn, ExprPtr arg);

enum class StmtKind { kAssignScalar, kAssignArray, kExitIf };

struct Stmt {
  StmtKind kind{};
  std::string lhs;    ///< assigned scalar/array name (empty for kExitIf)
  ExprPtr subscript;  ///< kAssignArray only
  ExprPtr rhs;        ///< assigned value, or the exit condition
  ExprPtr guard;      ///< optional: the statement executes only when != 0
};

Stmt assign_scalar(std::string name, ExprPtr rhs);
Stmt assign_array(std::string name, ExprPtr subscript, ExprPtr rhs);
Stmt exit_if(ExprPtr cond);

/// Attach a guard: `if (cond) s`.  A guarded scalar assignment behaves as
/// x = cond ? rhs : x, i.e. it is also a USE of x — the dependence analysis
/// accounts for that (conditional defs carry the previous value forward).
Stmt guarded(Stmt s, ExprPtr cond);

struct Loop {
  std::string name = "loop";
  long max_iters = 0;  ///< upper bound u on the iteration space
  std::vector<Stmt> body;
};

/// Interpretation environment: scalar and array state plus the semantics of
/// opaque calls.  Arrays are dense doubles; calls are double -> double.
struct Env {
  std::map<std::string, double> scalars;
  std::map<std::string, std::vector<double>> arrays;
  std::map<std::string, std::function<double(double)>> funcs;
};

/// Evaluate `e` at iteration `i` against `env`.  Throws std::runtime_error
/// on undefined names or out-of-range array accesses.
double eval(const ExprPtr& e, const Env& env, long i);

/// Reference sequential execution.  Returns the trip count: the iteration
/// at which an exit-if fired (statements before it in that iteration have
/// executed), or max_iters.
long run_sequential(const Loop& loop, Env& env);

/// Structural checks (unique scalar assignment, non-null operands).
/// Returns an explanation for the first violation, or nullopt if valid.
std::optional<std::string> validate(const Loop& loop);

// ---------------------------------------------------------------------------
// Access analysis
// ---------------------------------------------------------------------------

/// Subscript classification: affine a*i + b with integer coefficients, or
/// unknown (anything else: subscripted subscripts, nonlinear, scalar-
/// dependent).
struct AffineSubscript {
  bool affine = false;
  long a = 0;
  long b = 0;
};

/// Pattern-match a subscript expression against c1*i + c0 forms.
AffineSubscript analyze_subscript(const ExprPtr& e);

struct ArrayAccess {
  std::string array;
  AffineSubscript sub;
  bool is_write = false;
};

/// Per-statement definition/use summary.
struct StmtInfo {
  std::set<std::string> scalar_defs;
  std::set<std::string> scalar_uses;
  std::vector<ArrayAccess> accesses;
  bool is_exit = false;
};

/// Summarize each statement of the loop body.
std::vector<StmtInfo> summarize(const Loop& loop);

/// Render expressions/statements for diagnostics and plan dumps.
std::string to_string(const ExprPtr& e);
std::string to_string(const Stmt& s);

}  // namespace wlp::ir
