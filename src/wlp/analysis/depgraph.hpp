// Statement-level data dependence graph over a loop body — Section 2's
// prerequisite for loop distribution and Section 6's driver for recursive
// recurrence extraction.
//
// Edge classification follows the paper's Section 5 vocabulary: flow (read
// after write), anti (write after read), output (write after write), plus
// control edges from exit-if statements to everything textually after them.
// Each edge records whether it is loop-carried and whether it stems from an
// access the analysis could not resolve (unknown subscript -> the PD test's
// territory).
#pragma once

#include <string>
#include <vector>

#include "wlp/analysis/loop_ir.hpp"

namespace wlp::ir {

enum class DepKind { kFlow, kAnti, kOutput, kControl };

struct DepEdge {
  int from = 0;
  int to = 0;
  DepKind kind = DepKind::kFlow;
  bool loop_carried = false;
  bool unknown = false;     ///< from an unanalyzable subscript
  std::string var;          ///< the variable inducing the edge
};

struct DepGraph {
  int n = 0;
  std::vector<DepEdge> edges;
  std::vector<std::vector<int>> succ;  ///< adjacency (edge indices per node)

  void add(DepEdge e);
};

/// Build the dependence graph of `loop`.
DepGraph build_dep_graph(const Loop& loop);

/// Arrays referenced through at least one unanalyzable subscript; these are
/// the candidates Section 5 speculates on with the PD test.
std::vector<std::string> unanalyzable_arrays(const Loop& loop);

/// Scalars whose definition textually precedes every use: their carried anti
/// dependences are removable by privatization (the Fig. 5(b) `tmp` case),
/// and build_dep_graph omits those edges accordingly.
std::vector<std::string> privatizable_scalars(const Loop& loop);

/// Strongly connected components of the graph, returned in a topological
/// order of the condensation (sources first).  Each component lists
/// statement indices in textual order.
std::vector<std::vector<int>> strongly_connected_components(const DepGraph& g);

std::string to_string(DepKind k);

}  // namespace wlp::ir
