// Loop distribution and fusion — Sections 2 and 6.
//
// distribute() splits the loop body into the strongly connected components
// of its dependence graph, in a topological order of the condensation, and
// classifies each resulting block (parallel / induction / associative /
// general recurrence / sequential / unknown-access).  The termination
// conditions land in whichever block their dependences tie them to — an
// exit strongly connected to the dispatcher stays with the dispatcher
// (the RI case); an exit tied to remainder values rides with the remainder
// (the RV case).
//
// fuse() then regroups contiguous blocks per Section 6: maximal runs of
// parallel blocks merge into one DOALL candidate; maximal runs of
// sequential/general blocks merge into one sequential (DOACROSS-schedulable)
// block; induction, associative, and unknown-access blocks keep their
// identity so the matching Section 3/5 method can be applied.  Fusing
// contiguous blocks of a distribution is always legal: it merely undoes part
// of the distribution.
//
// run_distributed() is the executable semantics of the transformed loop and
// the oracle the tests compare against run_sequential(): blocks execute one
// after another (each as its own loop), scalars crossing block boundaries
// are expanded into per-iteration arrays, and writes are logged with
// (iteration, statement) time-stamps so that overshot work — iterations a
// later block's exit invalidates — is undone exactly the way Section 4
// prescribes for the runtime.
#pragma once

#include <string>
#include <vector>

#include "wlp/analysis/recurrence.hpp"

namespace wlp::ir {

struct Block {
  std::vector<int> stmts;  ///< statement indices, textual order
  RecurrenceInfo rec;
};

struct Distribution {
  std::vector<Block> blocks;  ///< condensation topological order
};

/// Distribute `loop` into classified pi-blocks.
Distribution distribute(const Loop& loop, const DepGraph& g);
Distribution distribute(const Loop& loop);

/// Section 6 fusion over a distribution (see file header).
Distribution fuse(const Loop& loop, const Distribution& d);

/// Execute the distributed form against `env`; returns the trip count.
/// Must produce state identical to run_sequential() on the same loop.
long run_distributed(const Loop& loop, const Distribution& d, Env& env);

std::string to_string(const Distribution& d, const Loop& loop);

}  // namespace wlp::ir
