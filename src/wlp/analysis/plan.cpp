#include "wlp/analysis/plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace wlp::ir {

namespace {

bool is_recurrence_block(BlockKind k) {
  return k == BlockKind::kInduction || k == BlockKind::kAssociative ||
         k == BlockKind::kGeneralRecurrence;
}

}  // namespace

ParallelPlan make_plan(const Loop& loop, unsigned p,
                       const wlp::LoopTiming* timing) {
  ParallelPlan plan;
  const Distribution dist = fuse(loop, distribute(loop));
  plan.privatized_scalars = privatizable_scalars(loop);
  plan.pd_arrays = unanalyzable_arrays(loop);

  // The dispatching recurrence is the hierarchically top-level one: the
  // first recurrence block in the condensation's topological order.
  bool dispatcher_found = false;
  std::vector<int> dispatcher_stmts;
  for (const Block& b : dist.blocks) {
    if (is_recurrence_block(b.rec.kind)) {
      if (!dispatcher_found) {
        plan.dispatcher = dispatcher_kind(b.rec);
        dispatcher_found = true;
      }
      dispatcher_stmts.insert(dispatcher_stmts.end(), b.stmts.begin(),
                              b.stmts.end());
    }
  }
  if (!dispatcher_found) {
    // No detectable recurrence: the loop is a plain DO loop with exits;
    // its counter is the (monotonic) induction dispatcher.
    plan.dispatcher = wlp::DispatcherKind::kMonotonicInduction;
  }

  // RI/RV classification per exit (Section 2's definition): an exit is
  // remainder-invariant iff everything it reads is the dispatcher itself or
  // computed outside the loop — i.e. no scalar defined by a non-recurrence
  // statement and no array the loop writes.
  const auto info = summarize(loop);
  std::set<std::string> arrays_written;
  std::map<std::string, int> scalar_def_stmt;
  for (std::size_t k = 0; k < loop.body.size(); ++k) {
    for (const auto& a : info[k].accesses)
      if (a.is_write) arrays_written.insert(a.array);
    for (const auto& x : info[k].scalar_defs) scalar_def_stmt[x] = static_cast<int>(k);
  }
  auto in_dispatcher = [&](int stmt) {
    return std::find(dispatcher_stmts.begin(), dispatcher_stmts.end(), stmt) !=
           dispatcher_stmts.end();
  };
  bool any_rv_exit = false;
  for (std::size_t k = 0; k < loop.body.size(); ++k) {
    if (!info[k].is_exit) continue;
    bool rv = false;
    for (const auto& x : info[k].scalar_uses) {
      const auto it = scalar_def_stmt.find(x);
      if (it != scalar_def_stmt.end() && !in_dispatcher(it->second)) rv = true;
    }
    for (const auto& a : info[k].accesses)
      if (arrays_written.count(a.array)) rv = true;
    if (rv) any_rv_exit = true;
  }
  plan.terminator = any_rv_exit ? wlp::TerminatorClass::kRemainderVariant
                                : wlp::TerminatorClass::kRemainderInvariant;
  plan.may_overshoot = wlp::may_overshoot(plan.dispatcher, plan.terminator);

  bool seen_dispatcher = false;
  for (const Block& b : dist.blocks) {
    PlanStep step;
    step.block = b;
    switch (b.rec.kind) {
      case BlockKind::kInduction:
        step.method = wlp::Method::kInduction2;
        step.note = "closed-form dispatcher; fold into consuming DOALL";
        break;
      case BlockKind::kAssociative:
        step.method = wlp::Method::kAssocPrefix;
        step.note = "evaluate terms by parallel prefix (Fig. 3)";
        break;
      case BlockKind::kGeneralRecurrence:
        step.method = wlp::Method::kGeneral3;
        step.note = "sequential chain: embed traversal in dynamic DOALL (Fig. 4)";
        break;
      case BlockKind::kParallel:
        step.method = wlp::Method::kInduction2;
        step.needs_undo = plan.may_overshoot;
        step.note = "independent remainder: DOALL";
        break;
      case BlockKind::kSequential:
        step.method = wlp::Method::kWuLewisDoacross;
        step.note = "unrecognized cycle: DOACROSS scheduling (Section 6)";
        break;
      case BlockKind::kUnknownAccess:
        step.method = wlp::Method::kInduction2;
        step.speculative = true;
        step.needs_undo = true;
        step.note = "unanalyzable accesses: speculate under the PD test (Section 5)";
        break;
    }
    if (is_recurrence_block(b.rec.kind) && !seen_dispatcher) seen_dispatcher = true;
    plan.steps.push_back(std::move(step));
  }

  if (timing != nullptr) {
    wlp::OverheadProfile oh;
    oh.pd_test = !plan.pd_arrays.empty();
    oh.needs_undo = plan.may_overshoot;
    oh.accesses = static_cast<long>(loop.body.size()) * loop.max_iters;
    const wlp::Prediction pred = wlp::predict(
        *timing, oh, p, wlp::dispatcher_parallelism(plan.dispatcher));
    plan.recommended = pred.recommend;
    plan.predicted_speedup = pred.spat;
  }
  return plan;
}

std::string ParallelPlan::to_text(const Loop& loop) const {
  std::ostringstream os;
  os << "plan for '" << loop.name << "': dispatcher=" << wlp::to_string(dispatcher)
     << " terminator=" << wlp::to_string(terminator)
     << " overshoot=" << (may_overshoot ? "yes" : "no") << '\n';
  if (!privatized_scalars.empty()) {
    os << "  privatized scalars:";
    for (const auto& s : privatized_scalars) os << ' ' << s;
    os << '\n';
  }
  if (!pd_arrays.empty()) {
    os << "  PD-tested arrays:";
    for (const auto& a : pd_arrays) os << ' ' << a;
    os << '\n';
  }
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const PlanStep& st = steps[k];
    os << "  step " << k << ": " << wlp::to_string(st.method) << " ["
       << to_string(st.block.rec.kind) << "]";
    if (st.speculative) os << " speculative";
    if (st.needs_undo) os << " +undo";
    os << " — " << st.note << '\n';
    for (int s : st.block.stmts)
      os << "      s" << s << ": "
         << to_string(loop.body[static_cast<std::size_t>(s)]) << '\n';
  }
  return os.str();
}

}  // namespace wlp::ir
