#include "wlp/analysis/depgraph.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace wlp::ir {

void DepGraph::add(DepEdge e) {
  succ[static_cast<std::size_t>(e.from)].push_back(static_cast<int>(edges.size()));
  edges.push_back(std::move(e));
}

namespace {

/// Array-access pair dependence under the simple ZIV/strong-SIV tests.
struct ArrayDep {
  bool exists = false;
  bool carried_fwd = false;  ///< earlier-textual access is the earlier-iteration source
  bool carried_bwd = false;  ///< later-textual access is the earlier-iteration source
  bool independent = false;  ///< same-iteration overlap
  bool unknown = false;
};

ArrayDep test_pair(const AffineSubscript& s1, const AffineSubscript& s2,
                   long max_iters) {
  ArrayDep d;
  if (!s1.affine || !s2.affine) {
    d.exists = d.carried_fwd = d.carried_bwd = d.independent = d.unknown = true;
    return d;
  }
  if (s1.a == 0 && s2.a == 0) {  // ZIV
    if (s1.b == s2.b) {
      d.exists = true;
      d.carried_fwd = d.carried_bwd = d.independent = true;
    }
    return d;
  }
  if (s1.a == s2.a) {  // strong SIV: a*i1 + b1 == a*i2 + b2
    const long a = s1.a;
    const long diff = s1.b - s2.b;
    if (diff % a != 0) return d;
    const long dist = diff / a;  // i2 = i1 + dist
    if (max_iters > 0 && std::abs(dist) >= max_iters) return d;
    d.exists = true;
    if (dist == 0) {
      d.independent = true;
    } else if (dist > 0) {
      d.carried_fwd = true;  // access1's iteration precedes access2's
    } else {
      d.carried_bwd = true;
    }
    return d;
  }
  // Weak SIV / MIV: be conservative.
  d.exists = d.carried_fwd = d.carried_bwd = d.independent = true;
  return d;
}

}  // namespace

DepGraph build_dep_graph(const Loop& loop) {
  const std::vector<StmtInfo> info = summarize(loop);
  const int n = static_cast<int>(loop.body.size());
  DepGraph g;
  g.n = n;
  g.succ.assign(static_cast<std::size_t>(n), {});

  auto kind_of = [](bool src_write, bool dst_write) {
    if (src_write && dst_write) return DepKind::kOutput;
    if (src_write) return DepKind::kFlow;
    return DepKind::kAnti;
  };

  // --- scalar dependences (unique defs enforced by validate()) -------------
  for (int s = 0; s < n; ++s) {
    for (const auto& x : info[static_cast<std::size_t>(s)].scalar_defs) {
      for (int t = 0; t < n; ++t) {
        const bool uses = info[static_cast<std::size_t>(t)].scalar_uses.count(x) > 0;
        if (!uses) continue;
        // Scalar ANTI and OUTPUT dependences are never added: distribution
        // expands cross-block scalars into per-iteration arrays (see
        // run_distributed) and privatizes block-local ones, which removes
        // all memory-related scalar dependences — this is what lets the
        // paper split Fig. 3(a) into the recurrence loop and the WORK loop
        // even though WORK's read of r is anti-dependent on the next
        // update of r.  Only FLOW dependences constrain the distribution.
        if (t == s) {
          // x = f(x): the use reads the previous iteration's def.
          g.add({s, s, DepKind::kFlow, /*carried=*/true, false, x});
        } else if (s < t) {
          // def textually before use: same-iteration flow.
          g.add({s, t, DepKind::kFlow, false, false, x});
        } else {
          // use textually before def: the use reads last iteration's def.
          g.add({s, t, DepKind::kFlow, true, false, x});
        }
      }
    }
  }

  // --- array dependences -----------------------------------------------------
  for (int s = 0; s < n; ++s) {
    for (const auto& a1 : info[static_cast<std::size_t>(s)].accesses) {
      for (int t = s; t < n; ++t) {
        for (const auto& a2 : info[static_cast<std::size_t>(t)].accesses) {
          if (a1.array != a2.array) continue;
          if (!a1.is_write && !a2.is_write) continue;
          const ArrayDep d = test_pair(a1.sub, a2.sub, loop.max_iters);
          if (!d.exists) continue;
          if (s == t && &a1 == &a2) {
            // One access vs itself across iterations (e.g. A[3] = i every
            // iteration): only a carried self dependence is meaningful.
            if (d.carried_fwd || d.carried_bwd)
              g.add({s, s, kind_of(a1.is_write, a1.is_write), true, d.unknown,
                     a1.array});
            continue;
          }
          if (d.independent && s != t) {
            g.add({s, t, kind_of(a1.is_write, a2.is_write), false, d.unknown,
                   a1.array});
          }
          if (d.carried_fwd) {
            g.add({s, t, kind_of(a1.is_write, a2.is_write), true, d.unknown,
                   a1.array});
          }
          if (d.carried_bwd) {
            g.add({t, s, kind_of(a2.is_write, a1.is_write), true, d.unknown,
                   a1.array});
          }
        }
      }
    }
  }

  // --- control dependences from exit-ifs -------------------------------------
  for (int e = 0; e < n; ++e) {
    if (!info[static_cast<std::size_t>(e)].is_exit) continue;
    for (int s = 0; s < n; ++s) {
      if (s == e) continue;
      // Textually later statements of the same iteration, and every
      // statement of later iterations, are control dependent on the exit.
      g.add({e, s, DepKind::kControl, /*carried=*/s < e, false, ""});
    }
  }

  return g;
}

std::vector<std::string> privatizable_scalars(const Loop& loop) {
  const std::vector<StmtInfo> info = summarize(loop);
  std::set<std::string> out;
  const int n = static_cast<int>(loop.body.size());
  for (int s = 0; s < n; ++s) {
    for (const auto& x : info[static_cast<std::size_t>(s)].scalar_defs) {
      bool def_first = true;
      for (int t = 0; t < n && def_first; ++t)
        if (t <= s && info[static_cast<std::size_t>(t)].scalar_uses.count(x))
          def_first = false;  // used at or before its def: carried flow
      if (def_first) out.insert(x);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> unanalyzable_arrays(const Loop& loop) {
  std::set<std::string> out;
  for (const StmtInfo& si : summarize(loop))
    for (const ArrayAccess& a : si.accesses)
      if (!a.sub.affine) out.insert(a.array);
  return {out.begin(), out.end()};
}

std::vector<std::vector<int>> strongly_connected_components(const DepGraph& g) {
  // Tarjan, recursive (loop bodies are small).
  const int n = g.n;
  std::vector<int> idx(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    idx[static_cast<std::size_t>(v)] = low[static_cast<std::size_t>(v)] = counter++;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (int ei : g.succ[static_cast<std::size_t>(v)]) {
      const int w = g.edges[static_cast<std::size_t>(ei)].to;
      if (idx[static_cast<std::size_t>(w)] == -1) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)], low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)], idx[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] == idx[static_cast<std::size_t>(v)]) {
      std::vector<int> comp;
      for (;;) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());
      sccs.push_back(std::move(comp));
    }
  };

  // Start from the highest statement so that, after the reversal below,
  // mutually independent components come out in textual order (any reverse
  // finish order of Tarjan is topologically valid; this choice also makes
  // it deterministic and natural to read).
  for (int v = n - 1; v >= 0; --v)
    if (idx[static_cast<std::size_t>(v)] == -1) strongconnect(v);

  // Tarjan emits components in reverse topological order.
  std::reverse(sccs.begin(), sccs.end());
  return sccs;
}

std::string to_string(DepKind k) {
  switch (k) {
    case DepKind::kFlow:    return "flow";
    case DepKind::kAnti:    return "anti";
    case DepKind::kOutput:  return "output";
    case DepKind::kControl: return "control";
  }
  return "?";
}

}  // namespace wlp::ir
