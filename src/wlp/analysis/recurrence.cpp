#include "wlp/analysis/recurrence.hpp"

#include <cmath>

namespace wlp::ir {

namespace {

/// Match rhs against c (constant), x (the recurrence scalar itself), and the
/// linear forms a*x + b; returns false when no linear-in-x form applies.
struct LinearInVar {
  bool ok = false;
  double a = 0;
  double b = 0;
};

LinearInVar match_linear_in(const ExprPtr& e, const std::string& var) {
  LinearInVar fail;
  if (!e) return fail;
  switch (e->kind) {
    case ExprKind::kConst:
      return {true, 0.0, e->value};
    case ExprKind::kScalar:
      if (e->name == var) return {true, 1.0, 0.0};
      return fail;  // other scalars: treat as opaque (not loop-invariant-proven)
    case ExprKind::kBinary: {
      const LinearInVar l = match_linear_in(e->a, var);
      const LinearInVar r = match_linear_in(e->b, var);
      if (!l.ok || !r.ok) return fail;
      switch (e->op) {
        case '+': return {true, l.a + r.a, l.b + r.b};
        case '-': return {true, l.a - r.a, l.b - r.b};
        case '*':
          if (l.a == 0.0) return {true, l.b * r.a, l.b * r.b};
          if (r.a == 0.0) return {true, r.b * l.a, r.b * l.b};
          return fail;
        case '/':
          if (r.a == 0.0 && r.b != 0.0) return {true, l.a / r.b, l.b / r.b};
          return fail;
        default:
          return fail;
      }
    }
    default:
      return fail;
  }
}

/// Match rhs against fn(x) where the only variable mention is `var`.
bool match_call_of(const ExprPtr& e, const std::string& var, std::string& fn) {
  if (!e || e->kind != ExprKind::kCall) return false;
  if (!e->a || e->a->kind != ExprKind::kScalar || e->a->name != var) return false;
  fn = e->name;
  return true;
}

bool has_unknown_access(const Loop& loop, std::span<const int> component) {
  const auto info = summarize(loop);
  for (int s : component)
    for (const auto& acc : info[static_cast<std::size_t>(s)].accesses)
      if (!acc.sub.affine) return true;
  return false;
}

bool has_carried_dep(const DepGraph& g, std::span<const int> component) {
  for (int v : component)
    for (int ei : g.succ[static_cast<std::size_t>(v)]) {
      const DepEdge& e = g.edges[static_cast<std::size_t>(ei)];
      if (!e.loop_carried) continue;
      for (int w : component)
        if (e.to == w) return true;
    }
  return false;
}

}  // namespace

RecurrenceInfo classify_component(const Loop& loop, const DepGraph& g,
                                  std::span<const int> component) {
  RecurrenceInfo rec;
  for (int s : component)
    if (loop.body[static_cast<std::size_t>(s)].kind == StmtKind::kExitIf)
      rec.contains_exit = true;

  if (has_unknown_access(loop, component)) {
    rec.kind = BlockKind::kUnknownAccess;
    return rec;
  }

  if (!has_carried_dep(g, component)) {
    rec.kind = BlockKind::kParallel;
    return rec;
  }

  // A recognizable recurrence: the component's assignments must form a
  // single self-recursive scalar definition (plus, possibly, the exit that
  // is strongly connected to it).
  const Stmt* def = nullptr;
  int defs = 0;
  for (int s : component) {
    const Stmt& st = loop.body[static_cast<std::size_t>(s)];
    if (st.kind == StmtKind::kAssignScalar) {
      def = &st;
      ++defs;
    } else if (st.kind == StmtKind::kAssignArray) {
      // Array writes inside a cycle: treat the block as plain sequential.
      rec.kind = BlockKind::kSequential;
      return rec;
    }
  }
  if (defs != 1 || def == nullptr) {
    rec.kind = BlockKind::kSequential;
    return rec;
  }

  if (def->guard) {
    // A conditional self-update (if (c) x = f(x)) is not a closed-form
    // induction or a scannable recurrence: its terms depend on which guards
    // held, so it stays sequential.
    rec.kind = BlockKind::kSequential;
    return rec;
  }

  rec.var = def->lhs;
  const LinearInVar lin = match_linear_in(def->rhs, def->lhs);
  if (lin.ok && lin.a == 1.0) {
    rec.kind = BlockKind::kInduction;
    rec.add = lin.b;
    rec.mul = 1.0;
    return rec;
  }
  if (lin.ok) {
    rec.kind = BlockKind::kAssociative;
    rec.mul = lin.a;
    rec.add = lin.b;
    return rec;
  }
  std::string fn;
  if (match_call_of(def->rhs, def->lhs, fn)) {
    rec.kind = BlockKind::kGeneralRecurrence;
    rec.call_name = fn;
    return rec;
  }
  rec.kind = BlockKind::kSequential;
  return rec;
}

wlp::DispatcherKind dispatcher_kind(const RecurrenceInfo& rec) {
  switch (rec.kind) {
    case BlockKind::kInduction:
      // A nonzero constant step makes the induction monotonic.
      return rec.add != 0.0 ? wlp::DispatcherKind::kMonotonicInduction
                            : wlp::DispatcherKind::kInduction;
    case BlockKind::kAssociative:
      return wlp::DispatcherKind::kAssociative;
    default:
      return wlp::DispatcherKind::kGeneral;
  }
}

std::string to_string(BlockKind k) {
  switch (k) {
    case BlockKind::kParallel:          return "parallel";
    case BlockKind::kInduction:         return "induction";
    case BlockKind::kAssociative:       return "associative";
    case BlockKind::kGeneralRecurrence: return "general-recurrence";
    case BlockKind::kSequential:        return "sequential";
    case BlockKind::kUnknownAccess:     return "unknown-access";
  }
  return "?";
}

}  // namespace wlp::ir
