// Recurrence classification of dependence-graph components — the bridge
// from the dependence analysis to the Table 1 taxonomy.
//
// Each strongly connected component of the loop body is classified as:
//   * parallel             — no carried dependence inside it
//   * induction            — x = x +/- c           (closed form; Section 3.1)
//   * associative          — x = a*x + b           (parallel prefix; 3.2)
//   * general recurrence   — x = next(x) and such  (sequential chain; 3.3)
//   * sequential           — a multi-statement cycle with no recognized form
//   * unknown access       — touches an unanalyzable subscript; candidate
//                            for speculative execution + the PD test (Sec. 5)
#pragma once

#include <span>
#include <string>

#include "wlp/analysis/depgraph.hpp"
#include "wlp/core/taxonomy.hpp"

namespace wlp::ir {

enum class BlockKind {
  kParallel,
  kInduction,
  kAssociative,
  kGeneralRecurrence,
  kSequential,
  kUnknownAccess,
};

struct RecurrenceInfo {
  BlockKind kind = BlockKind::kSequential;
  std::string var;        ///< the recurrence variable (scalar recurrences)
  double add = 0;         ///< induction step / associative b
  double mul = 1;         ///< associative a
  std::string call_name;  ///< general recurrence's step function
  bool contains_exit = false;
};

/// Classify one SCC (statement indices in textual order).
RecurrenceInfo classify_component(const Loop& loop, const DepGraph& g,
                                  std::span<const int> component);

/// The DispatcherKind a recurrence block maps to in the Table 1 taxonomy.
/// `monotonic` requires an induction with a nonzero single-signed step.
wlp::DispatcherKind dispatcher_kind(const RecurrenceInfo& rec);

std::string to_string(BlockKind k);

}  // namespace wlp::ir
