#include "wlp/analysis/loop_ir.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wlp::ir {

namespace {
ExprPtr make(Expr e) { return std::make_shared<const Expr>(std::move(e)); }
}  // namespace

ExprPtr cnst(double v) {
  Expr e;
  e.kind = ExprKind::kConst;
  e.value = v;
  return make(std::move(e));
}

ExprPtr index() {
  Expr e;
  e.kind = ExprKind::kIndex;
  return make(std::move(e));
}

ExprPtr scalar(std::string name) {
  Expr e;
  e.kind = ExprKind::kScalar;
  e.name = std::move(name);
  return make(std::move(e));
}

ExprPtr array(std::string name, ExprPtr subscript) {
  Expr e;
  e.kind = ExprKind::kArray;
  e.name = std::move(name);
  e.a = std::move(subscript);
  return make(std::move(e));
}

ExprPtr bin(char op, ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind = ExprKind::kBinary;
  e.op = op;
  e.a = std::move(lhs);
  e.b = std::move(rhs);
  return make(std::move(e));
}

ExprPtr call(std::string fn, ExprPtr arg) {
  Expr e;
  e.kind = ExprKind::kCall;
  e.name = std::move(fn);
  e.a = std::move(arg);
  return make(std::move(e));
}

Stmt assign_scalar(std::string name, ExprPtr rhs) {
  Stmt s;
  s.kind = StmtKind::kAssignScalar;
  s.lhs = std::move(name);
  s.rhs = std::move(rhs);
  return s;
}

Stmt assign_array(std::string name, ExprPtr subscript, ExprPtr rhs) {
  Stmt s;
  s.kind = StmtKind::kAssignArray;
  s.lhs = std::move(name);
  s.subscript = std::move(subscript);
  s.rhs = std::move(rhs);
  return s;
}

Stmt exit_if(ExprPtr cond) {
  Stmt s;
  s.kind = StmtKind::kExitIf;
  s.rhs = std::move(cond);
  return s;
}

Stmt guarded(Stmt s, ExprPtr cond) {
  s.guard = std::move(cond);
  return s;
}

double eval(const ExprPtr& e, const Env& env, long i) {
  if (!e) throw std::runtime_error("eval: null expression");
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value;
    case ExprKind::kIndex:
      return static_cast<double>(i);
    case ExprKind::kScalar: {
      const auto it = env.scalars.find(e->name);
      if (it == env.scalars.end())
        throw std::runtime_error("eval: undefined scalar " + e->name);
      return it->second;
    }
    case ExprKind::kArray: {
      const auto it = env.arrays.find(e->name);
      if (it == env.arrays.end())
        throw std::runtime_error("eval: undefined array " + e->name);
      const auto idx = static_cast<long>(eval(e->a, env, i));
      if (idx < 0 || idx >= static_cast<long>(it->second.size()))
        throw std::runtime_error("eval: " + e->name + " index out of range");
      return it->second[static_cast<std::size_t>(idx)];
    }
    case ExprKind::kBinary: {
      const double l = eval(e->a, env, i);
      const double r = eval(e->b, env, i);
      switch (e->op) {
        case '+': return l + r;
        case '-': return l - r;
        case '*': return l * r;
        case '/': return l / r;
        case '<': return l < r ? 1.0 : 0.0;
        case '>': return l > r ? 1.0 : 0.0;
        case 'L': return l <= r ? 1.0 : 0.0;
        case 'G': return l >= r ? 1.0 : 0.0;
        case '=': return l == r ? 1.0 : 0.0;
        case '!': return l != r ? 1.0 : 0.0;
        default:
          throw std::runtime_error(std::string("eval: bad operator ") + e->op);
      }
    }
    case ExprKind::kCall: {
      const auto it = env.funcs.find(e->name);
      if (it == env.funcs.end())
        throw std::runtime_error("eval: undefined function " + e->name);
      return it->second(eval(e->a, env, i));
    }
  }
  throw std::runtime_error("eval: bad expression kind");
}

long run_sequential(const Loop& loop, Env& env) {
  for (long i = 0; i < loop.max_iters; ++i) {
    for (const Stmt& s : loop.body) {
      if (s.guard && eval(s.guard, env, i) == 0.0) continue;
      switch (s.kind) {
        case StmtKind::kExitIf:
          if (eval(s.rhs, env, i) != 0.0) return i;
          break;
        case StmtKind::kAssignScalar:
          env.scalars[s.lhs] = eval(s.rhs, env, i);
          break;
        case StmtKind::kAssignArray: {
          const auto idx = static_cast<long>(eval(s.subscript, env, i));
          auto& arr = env.arrays.at(s.lhs);
          if (idx < 0 || idx >= static_cast<long>(arr.size()))
            throw std::runtime_error("store: " + s.lhs + " index out of range");
          arr[static_cast<std::size_t>(idx)] = eval(s.rhs, env, i);
          break;
        }
      }
    }
  }
  return loop.max_iters;
}

std::optional<std::string> validate(const Loop& loop) {
  std::set<std::string> assigned;
  for (std::size_t k = 0; k < loop.body.size(); ++k) {
    const Stmt& s = loop.body[k];
    if (!s.rhs) return "statement " + std::to_string(k) + ": null rhs";
    if (s.kind == StmtKind::kAssignArray && !s.subscript)
      return "statement " + std::to_string(k) + ": null subscript";
    if (s.kind == StmtKind::kAssignScalar) {
      if (!assigned.insert(s.lhs).second)
        return "scalar " + s.lhs + " assigned more than once";
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Access analysis
// ---------------------------------------------------------------------------

namespace {

/// Result of linear pattern matching: value = a*i + b, or not linear.
struct Linear {
  bool ok = false;
  long a = 0;
  long b = 0;
};

bool integral(double v, long& out) {
  const double r = std::nearbyint(v);
  if (std::abs(v - r) > 1e-9) return false;
  out = static_cast<long>(r);
  return true;
}

Linear match_linear(const ExprPtr& e) {
  Linear fail;
  if (!e) return fail;
  switch (e->kind) {
    case ExprKind::kConst: {
      long c;
      if (!integral(e->value, c)) return fail;
      return {true, 0, c};
    }
    case ExprKind::kIndex:
      return {true, 1, 0};
    case ExprKind::kBinary: {
      const Linear l = match_linear(e->a);
      const Linear r = match_linear(e->b);
      if (!l.ok || !r.ok) return fail;
      switch (e->op) {
        case '+': return {true, l.a + r.a, l.b + r.b};
        case '-': return {true, l.a - r.a, l.b - r.b};
        case '*':
          // Only linear if one side is constant.
          if (l.a == 0) return {true, l.b * r.a, l.b * r.b};
          if (r.a == 0) return {true, r.b * l.a, r.b * l.b};
          return fail;
        default:
          return fail;
      }
    }
    default:
      return fail;  // scalar reads, array reads, calls: unknown subscript
  }
}

void collect_uses(const ExprPtr& e, StmtInfo& info) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kIndex:
      return;
    case ExprKind::kScalar:
      info.scalar_uses.insert(e->name);
      return;
    case ExprKind::kArray: {
      ArrayAccess acc;
      acc.array = e->name;
      acc.sub = analyze_subscript(e->a);
      acc.is_write = false;
      info.accesses.push_back(std::move(acc));
      collect_uses(e->a, info);  // subscript's own reads are uses too
      return;
    }
    case ExprKind::kBinary:
      collect_uses(e->a, info);
      collect_uses(e->b, info);
      return;
    case ExprKind::kCall:
      collect_uses(e->a, info);
      return;
  }
}

}  // namespace

AffineSubscript analyze_subscript(const ExprPtr& e) {
  const Linear l = match_linear(e);
  AffineSubscript s;
  s.affine = l.ok;
  s.a = l.a;
  s.b = l.b;
  return s;
}

std::vector<StmtInfo> summarize(const Loop& loop) {
  std::vector<StmtInfo> out;
  out.reserve(loop.body.size());
  for (const Stmt& s : loop.body) {
    StmtInfo info;
    collect_uses(s.rhs, info);
    if (s.guard) collect_uses(s.guard, info);
    switch (s.kind) {
      case StmtKind::kAssignScalar:
        info.scalar_defs.insert(s.lhs);
        // Conditional def: when the guard fails the old value persists, so
        // the statement is also a use of its own target.
        if (s.guard) info.scalar_uses.insert(s.lhs);
        break;
      case StmtKind::kAssignArray: {
        ArrayAccess acc;
        acc.array = s.lhs;
        acc.sub = analyze_subscript(s.subscript);
        acc.is_write = true;
        info.accesses.push_back(std::move(acc));
        collect_uses(s.subscript, info);
        break;
      }
      case StmtKind::kExitIf:
        info.is_exit = true;
        break;
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string to_string(const ExprPtr& e) {
  if (!e) return "<null>";
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::kConst:
      os << e->value;
      break;
    case ExprKind::kIndex:
      os << "i";
      break;
    case ExprKind::kScalar:
      os << e->name;
      break;
    case ExprKind::kArray:
      os << e->name << "[" << to_string(e->a) << "]";
      break;
    case ExprKind::kBinary:
      os << "(" << to_string(e->a) << ' ' << e->op << ' ' << to_string(e->b) << ")";
      break;
    case ExprKind::kCall:
      os << e->name << "(" << to_string(e->a) << ")";
      break;
  }
  return os.str();
}

std::string to_string(const Stmt& s) {
  const std::string prefix =
      s.guard ? "if " + to_string(s.guard) + ": " : std::string{};
  switch (s.kind) {
    case StmtKind::kAssignScalar:
      return prefix + s.lhs + " = " + to_string(s.rhs);
    case StmtKind::kAssignArray:
      return prefix + s.lhs + "[" + to_string(s.subscript) + "] = " +
             to_string(s.rhs);
    case StmtKind::kExitIf:
      return prefix + "exit-if " + to_string(s.rhs);
  }
  return "?";
}

}  // namespace wlp::ir
