#include "wlp/analysis/execute_plan.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "wlp/core/cost_model.hpp"
#include "wlp/core/shadow.hpp"
#include "wlp/core/sliding_window.hpp"
#include "wlp/mem/budget.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/doacross.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/parallel_prefix.hpp"
#include "wlp/sched/reduce.hpp"
#include "wlp/support/cacheline.hpp"
#include "wlp/support/prng.hpp"

namespace wlp::ir {

namespace {

struct FiredExit {
  int stmt;
  long iter;
};

/// Iterations statement `s` may validly execute (same rule as the
/// distributed interpreter): statements textually before an exit run
/// through its firing iteration inclusive.
long stmt_limit(int s, long max_iters, const std::vector<FiredExit>& fired) {
  long lim = max_iters;
  for (const FiredExit& e : fired)
    lim = std::min(lim, e.iter + (s < e.stmt ? 1 : 0));
  return lim;
}

struct LoggedWrite {
  long iter;
  int stmt;
  const std::string* array;  // interned: points into the loop's name set
  long idx;
  double value;
  double old;   ///< value the store displaced (write-log undo for
                ///< arrays that skipped the entry snapshot)
  long ticket;  ///< global store order, claimed under the striped lock
};

/// Striped spin locks guarding concurrent stores into the working arrays
/// (only unknown-access blocks can race; analyzed-parallel blocks write
/// disjoint elements by construction, but the locks make even failing
/// speculative runs well defined).
class StripedLocks {
 public:
  void lock(std::size_t idx) noexcept {
    auto& f = locks_[mix64(idx) & (kStripes - 1)];
    while (f.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock(std::size_t idx) noexcept {
    locks_[mix64(idx) & (kStripes - 1)].clear(std::memory_order_release);
  }

 private:
  static constexpr std::size_t kStripes = 256;
  std::array<std::atomic_flag, kStripes> locks_{};
};

/// Everything one plan execution needs.
struct ExecState {
  const Loop* loop;
  const ParallelPlan* plan;
  Env* env;
  ThreadPool* pool;

  std::map<std::string, int> def_of;             // scalar -> defining stmt
  std::vector<int> step_of;                      // stmt -> plan step index
  std::map<std::string, std::vector<double>> expansion;
  std::map<std::string, double> entry_scalars;
  std::map<std::string, std::vector<double>> entry_arrays;

  std::mutex fired_mu;
  std::vector<FiredExit> fired;

  std::vector<Padded<std::vector<LoggedWrite>>> logs;  // per worker
  StripedLocks store_locks;
  /// Store tickets: per location, lock order == ticket order, so replaying
  /// the logged `old` values in descending ticket order reconstructs the
  /// exact pre-loop state without a snapshot.
  std::atomic<long> ticket{0};

  // PD machinery for the plan's unknown-access arrays (privatized policy:
  // each worker marks its own segment, merged at analyze time).
  std::map<std::string, std::unique_ptr<PDPrivateShadow>> shadows;
  // accessors[worker][array]
  std::vector<std::map<std::string, PDPrivateAccessor>> accessors;

  long limit_now(int s) const {
    return stmt_limit(s, loop->max_iters, fired);
  }

  void fire(int s, long i) {
    std::lock_guard lock(fired_mu);
    fired.push_back({s, i});
  }
};

/// Expression evaluation with plan-aware scalar resolution.
/// `step` = plan step being executed; `at_stmt` = consuming statement;
/// `vpn` = worker (for PD read marks); `in_parallel` = same-block scalar
/// reads resolve through the expansion (per-iteration) instead of a live
/// value.
double evalx(ExecState& st, const ExprPtr& e, int step, int at_stmt, long i,
             unsigned vpn, const std::map<std::string, double>* live) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value;
    case ExprKind::kIndex:
      return static_cast<double>(i);
    case ExprKind::kScalar: {
      const auto dit = st.def_of.find(e->name);
      if (dit == st.def_of.end()) {
        const auto sit = st.env->scalars.find(e->name);
        if (sit == st.env->scalars.end())
          throw std::runtime_error("plan-exec: undefined scalar " + e->name);
        return sit->second;  // loop invariant
      }
      const int def_stmt = dit->second;
      const int def_step = st.step_of[static_cast<std::size_t>(def_stmt)];
      if (def_step == step && live != nullptr) return live->at(e->name);
      // Same parallel block (def before use) or an earlier block: read the
      // expansion, shifted when the def is textually after the use.
      const long src = def_stmt < at_stmt ? i : i - 1;
      if (src < 0) {
        const auto sit = st.entry_scalars.find(e->name);
        return sit != st.entry_scalars.end()
                   ? sit->second
                   : std::numeric_limits<double>::quiet_NaN();
      }
      if (def_step > step)
        throw std::runtime_error("plan-exec: use before producing block for " +
                                 e->name);
      return st.expansion.at(e->name)[static_cast<std::size_t>(src)];
    }
    case ExprKind::kArray: {
      const auto it = st.env->arrays.find(e->name);
      if (it == st.env->arrays.end())
        throw std::runtime_error("plan-exec: undefined array " + e->name);
      const auto idx =
          static_cast<long>(evalx(st, e->a, step, at_stmt, i, vpn, live));
      if (idx < 0 || idx >= static_cast<long>(it->second.size()))
        throw std::runtime_error("plan-exec: " + e->name + " out of range");
      const auto ait = st.accessors[vpn].find(e->name);
      if (ait != st.accessors[vpn].end())
        ait->second.on_read(static_cast<std::size_t>(idx));
      return it->second[static_cast<std::size_t>(idx)];
    }
    case ExprKind::kBinary: {
      const double l = evalx(st, e->a, step, at_stmt, i, vpn, live);
      const double r = evalx(st, e->b, step, at_stmt, i, vpn, live);
      switch (e->op) {
        case '+': return l + r;
        case '-': return l - r;
        case '*': return l * r;
        case '/': return l / r;
        case '<': return l < r ? 1.0 : 0.0;
        case '>': return l > r ? 1.0 : 0.0;
        case 'L': return l <= r ? 1.0 : 0.0;
        case 'G': return l >= r ? 1.0 : 0.0;
        case '=': return l == r ? 1.0 : 0.0;
        case '!': return l != r ? 1.0 : 0.0;
        default: throw std::runtime_error("plan-exec: bad operator");
      }
    }
    case ExprKind::kCall: {
      const auto it = st.env->funcs.find(e->name);
      if (it == st.env->funcs.end())
        throw std::runtime_error("plan-exec: undefined function " + e->name);
      return it->second(evalx(st, e->a, step, at_stmt, i, vpn, live));
    }
  }
  throw std::runtime_error("plan-exec: bad expression");
}

/// One statement of a per-iteration execution (parallel or sequential
/// block).  Returns true if an exit fired at this statement.
bool execute_stmt(ExecState& st, int step, int s, long i, unsigned vpn,
                  std::map<std::string, double>* live) {
  const Stmt& stmt = st.loop->body[static_cast<std::size_t>(s)];
  if (stmt.guard && evalx(st, stmt.guard, step, s, i, vpn, live) == 0.0) {
    // Conditional scalar defs carry the previous value forward (guarded
    // scalars are self-dependent, so they always execute with `live`).
    if (stmt.kind == StmtKind::kAssignScalar)
      st.expansion.at(stmt.lhs)[static_cast<std::size_t>(i)] = live->at(stmt.lhs);
    return false;
  }
  switch (stmt.kind) {
    case StmtKind::kExitIf:
      if (evalx(st, stmt.rhs, step, s, i, vpn, live) != 0.0) {
        st.fire(s, i);
        return true;
      }
      return false;
    case StmtKind::kAssignScalar: {
      const double v = evalx(st, stmt.rhs, step, s, i, vpn, live);
      if (live) (*live)[stmt.lhs] = v;
      st.expansion.at(stmt.lhs)[static_cast<std::size_t>(i)] = v;
      return false;
    }
    case StmtKind::kAssignArray: {
      const auto idx =
          static_cast<long>(evalx(st, stmt.subscript, step, s, i, vpn, live));
      auto& arr = st.env->arrays.at(stmt.lhs);
      if (idx < 0 || idx >= static_cast<long>(arr.size()))
        throw std::runtime_error("plan-exec: store out of range");
      const double v = evalx(st, stmt.rhs, step, s, i, vpn, live);
      const auto ait = st.accessors[vpn].find(stmt.lhs);
      if (ait != st.accessors[vpn].end())
        ait->second.on_write(static_cast<std::size_t>(idx));
      st.store_locks.lock(static_cast<std::size_t>(idx));
      const double old = arr[static_cast<std::size_t>(idx)];
      arr[static_cast<std::size_t>(idx)] = v;
      const long tick = st.ticket.fetch_add(1, std::memory_order_relaxed);
      st.store_locks.unlock(static_cast<std::size_t>(idx));
      // Interned array name: the Stmt's lhs lives as long as the loop.
      st.logs[vpn].value.push_back({i, s, &stmt.lhs, idx, v, old, tick});
      return false;
    }
  }
  return false;
}

/// Scan a recurrence block's exit statements over the freshly computed
/// expansion; fires the earliest triggering exit, if any.
void scan_recurrence_exits(ExecState& st, int step, const Block& block,
                           long limit) {
  for (int s : block.stmts) {
    const Stmt& stmt = st.loop->body[static_cast<std::size_t>(s)];
    if (stmt.kind != StmtKind::kExitIf) continue;
    constexpr long kNone = std::numeric_limits<long>::max();
    const long hit = parallel_min(
        *st.pool, 0, std::min(limit, st.limit_now(s)), kNone, [&](long i) {
          if (stmt.guard && evalx(st, stmt.guard, step, s, i, 0, nullptr) == 0.0)
            return kNone;
          return evalx(st, stmt.rhs, step, s, i, 0, nullptr) != 0.0 ? i : kNone;
        });
    if (hit != kNone) st.fire(s, hit);
  }
}

}  // namespace

PlanExecution run_parallel_plan(ThreadPool& pool, const Loop& loop,
                                const ParallelPlan& plan, Env& env,
                                const PlanExecOptions& opts) {
  if (auto err = validate(loop))
    throw std::runtime_error("run_parallel_plan: " + *err);

  PlanExecution out;
  const mem::BudgetSnapshot mem0 = mem::Budget::process().snapshot();
  ExecState st;
  st.loop = &loop;
  st.plan = &plan;
  st.env = &env;
  st.pool = &pool;
  // The entry-state copy is this scheme's checkpoint (Tb) — decided PER
  // ARRAY through the same cost model the runtime targets use: an array the
  // plan stores into densely gets a snapshot (restore = one copy); one
  // written sparsely relies on the write log instead (every store records
  // the value it displaced plus a ticket, and replaying the `old` values in
  // descending ticket order is an exact inverse); one never written needs
  // neither.  The density estimate here is static — stores-per-iteration
  // times max_iters, an upper bound on distinct touched locations, so the
  // decision errs toward the dense snapshot.
  const auto snap0 = std::chrono::steady_clock::now();
  st.entry_scalars = env.scalars;
  std::map<std::string, long> array_write_stmts;
  for (const Stmt& bstmt : loop.body)
    if (bstmt.kind == StmtKind::kAssignArray) ++array_write_stmts[bstmt.lhs];
  for (const auto& [aname, arr] : env.arrays) {
    const auto wit = array_write_stmts.find(aname);
    if (wit == array_write_stmts.end()) {
      // Never written by this loop: no snapshot, no log, nothing to restore.
      out.snapshot_bytes_saved += static_cast<long>(arr.size() * sizeof(double));
      continue;
    }
    const std::size_t expected = static_cast<std::size_t>(wit->second) *
                                 static_cast<std::size_t>(loop.max_iters);
    if (choose_backup(arr.size(), expected).kind == BackupKind::kDense) {
      st.entry_arrays.emplace(aname, arr);
      ++out.arrays_dense_snapshot;
    } else {
      ++out.arrays_log_undo;
      out.snapshot_bytes_saved += static_cast<long>(arr.size() * sizeof(double));
    }
  }
  out.snapshot_ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - snap0)
                        .count();
  WLP_OBS_COUNT("wlp.undo.checkpoint_ns", static_cast<long>(out.snapshot_ns));
  st.logs.resize(pool.size());
  st.accessors.resize(pool.size());

  for (std::size_t k = 0; k < loop.body.size(); ++k)
    if (loop.body[k].kind == StmtKind::kAssignScalar)
      st.def_of[loop.body[k].lhs] = static_cast<int>(k);
  st.step_of.assign(loop.body.size(), -1);
  for (std::size_t b = 0; b < plan.steps.size(); ++b)
    for (int s : plan.steps[b].block.stmts)
      st.step_of[static_cast<std::size_t>(s)] = static_cast<int>(b);
  for (const auto& [name, stmt] : st.def_of) {
    (void)stmt;
    st.expansion[name].assign(static_cast<std::size_t>(loop.max_iters),
                              std::numeric_limits<double>::quiet_NaN());
  }

  // PD shadows for the arrays the plan flags as unanalyzable.
  for (const std::string& a : plan.pd_arrays) {
    const auto it = env.arrays.find(a);
    if (it == env.arrays.end()) continue;
    st.shadows[a] =
        std::make_unique<PDPrivateShadow>(it->second.size(), pool.size());
    // With a verdict cache attached, shadows accumulate access summaries so
    // the verdict step below can memoize by signature (before any marking —
    // the accessors' markers bind lazily and pick the mode up then).
    if (opts.verdict_cache != nullptr) st.shadows[a]->enable_signatures(true);
    for (unsigned w = 0; w < pool.size(); ++w)
      st.accessors[w].emplace(
          a, PDPrivateAccessor(*st.shadows[a], it->second.size(), w));
  }

  // ---- execute the plan's steps in order ------------------------------------
  for (std::size_t b = 0; b < plan.steps.size(); ++b) {
    const PlanStep& step = plan.steps[static_cast<std::size_t>(b)];
    const Block& block = step.block;
    const int bi = static_cast<int>(b);

    switch (block.rec.kind) {
      case BlockKind::kInduction: {
        // Closed form: x(i) = x0 + add*(i+1) (the def executes once per
        // iteration), evaluated fully in parallel.
        const std::string& x = block.rec.var;
        const int def = st.def_of.at(x);
        const long limit = st.limit_now(def);
        const double x0 = st.entry_scalars.count(x) ? st.entry_scalars.at(x)
                                                    : std::numeric_limits<double>::quiet_NaN();
        const double add = block.rec.add;
        auto& exp = st.expansion.at(x);
        doall(pool, 0, limit, [&](long i, unsigned) {
          exp[static_cast<std::size_t>(i)] = x0 + add * static_cast<double>(i + 1);
        });
        scan_recurrence_exits(st, bi, block, limit);
        break;
      }
      case BlockKind::kAssociative: {
        // The real Section 3.2 path: parallel prefix over affine maps.
        const std::string& x = block.rec.var;
        const int def = st.def_of.at(x);
        const long limit = st.limit_now(def);
        const double x0 = st.entry_scalars.count(x) ? st.entry_scalars.at(x)
                                                    : std::numeric_limits<double>::quiet_NaN();
        auto terms = affine_recurrence_terms<double>(
            pool, x0, block.rec.mul, block.rec.add, limit);
        auto& exp = st.expansion.at(x);
        for (long i = 0; i < limit; ++i)
          exp[static_cast<std::size_t>(i)] = terms[static_cast<std::size_t>(i)];
        ++out.prefix_blocks;
        scan_recurrence_exits(st, bi, block, limit);
        break;
      }
      case BlockKind::kGeneralRecurrence: {
        // Inherently sequential chain.
        const std::string& x = block.rec.var;
        const int def = st.def_of.at(x);
        std::map<std::string, double> live;
        live[x] = st.entry_scalars.count(x) ? st.entry_scalars.at(x)
                                            : std::numeric_limits<double>::quiet_NaN();
        for (long i = 0; i < loop.max_iters; ++i) {
          bool exited = false;
          for (int s : block.stmts) {
            if (i >= st.limit_now(s)) {
              exited = true;
              continue;
            }
            if (execute_stmt(st, bi, s, i, 0, &live)) exited = true;
          }
          if (exited && i >= st.limit_now(def)) break;
        }
        break;
      }
      case BlockKind::kParallel:
      case BlockKind::kUnknownAccess: {
        ++out.parallel_blocks;
        auto block_body = [&](long i, unsigned vpn) {
          bool any = false;
          bool exited = false;
          for (int s : block.stmts) {
            if (i >= st.limit_now(s)) continue;
            any = true;
            for (auto& [name, acc] : st.accessors[vpn]) {
              (void)name;
              acc.begin_iteration(i);
            }
            if (execute_stmt(st, bi, s, i, vpn, nullptr)) {
              exited = true;
              break;  // statements after the exit don't run this iteration
            }
          }
          if (exited) return IterAction::kExit;
          return any ? IterAction::kContinue : IterAction::kExit;
        };
        if (opts.memory_budget != 0) {
          // Section 8.2 applied to the interpreter: bound the write-log
          // footprint with the sliding-window controller.  Every logged
          // store claimed a ticket, so ticket count x entry size IS the
          // log's live bytes — a measured signal with no per-worker scan.
          WindowOptions wopts;
          wopts.window = opts.window;
          wopts.min_window = opts.min_window;
          wopts.max_window = opts.max_window;
          wopts.memory_budget = opts.memory_budget;
          wopts.charge_process_budget = opts.charge_process_budget;
          wopts.live_bytes = [&st] {
            return static_cast<std::size_t>(
                       st.ticket.load(std::memory_order_relaxed)) *
                   sizeof(LoggedWrite);
          };
          const WindowReport wrep =
              sliding_window_while(pool, loop.max_iters, block_body, wopts);
          ++out.window_runs;
          out.window_final = wrep.final_window;
          out.window_shrinks += wrep.window_shrinks;
          out.window_grows += wrep.window_grows;
          out.window_cap = wrep.final_cap;
          out.window_cap_bytes = static_cast<long>(wrep.cap_bytes);
          out.window_peak_bytes =
              std::max(out.window_peak_bytes,
                       static_cast<long>(wrep.peak_stamp_bytes));
        } else {
          doall_quit(pool, 0, loop.max_iters, block_body);
        }
        break;
      }
      case BlockKind::kSequential: {
        // Ordered execution through the DOACROSS pipeline (the whole
        // iteration is the sequential phase for interpreted statements).
        std::map<std::string, double> live;
        for (int s : block.stmts)
          if (loop.body[static_cast<std::size_t>(s)].kind == StmtKind::kAssignScalar) {
            const std::string& x = loop.body[static_cast<std::size_t>(s)].lhs;
            live[x] = st.entry_scalars.count(x)
                          ? st.entry_scalars.at(x)
                          : std::numeric_limits<double>::quiet_NaN();
          }
        const DoacrossResult dr = doacross_while(
            pool, loop.max_iters,
            [&](long i) {
              bool any = false;
              for (int s : block.stmts) {
                if (i >= st.limit_now(s)) continue;
                any = true;
                if (execute_stmt(st, bi, s, i, 0, &live)) return false;
              }
              return any;
            },
            [](long, unsigned) {});
        out.doacross_parks += static_cast<long>(dr.parks);
        out.doacross_wait_rounds += static_cast<long>(dr.wait_rounds);
        break;
      }
    }
  }

  // ---- PD verdicts (filtered by the final trip) ------------------------------
  long trip = loop.max_iters;
  for (const FiredExit& e : st.fired) trip = std::min(trip, e.iter);

  const pdcache::CacheStats pc0 = opts.verdict_cache != nullptr
                                      ? opts.verdict_cache->stats()
                                      : pdcache::CacheStats{};
  for (const auto& [name, shadow] : st.shadows) {
    (void)name;
    PDVerdict v;
    if (opts.verdict_cache != nullptr && shadow->signatures_enabled()) {
      // No VersionedArray stamps here (the interpreter undoes through its
      // write log), so the signature's write-density field is 0 — constant
      // across executions of one plan, which is all it needs to be.
      const pdcache::AccessSignature sig = pdcache::make_signature(
          shadow->access_summary(), /*base=*/0, trip, /*dirty_blocks=*/0);
      pdcache::Verdict cached;
      if (opts.verdict_cache->lookup(sig, &cached)) {
        v = cached.pd;
      } else {
        v = shadow->analyze(pool, trip);
        opts.verdict_cache->insert(sig, pdcache::Verdict::from(v));
      }
    } else {
      v = shadow->analyze(pool, trip);
    }
    if (!v.fully_parallel()) out.speculation_failed = true;
  }
  if (out.speculation_failed && opts.verdict_cache != nullptr)
    opts.verdict_cache->invalidate_all();
  if (opts.verdict_cache != nullptr) {
    const pdcache::CacheStats pc1 = opts.verdict_cache->stats();
    out.pdcache_hits = pc1.hits - pc0.hits;
    out.pdcache_misses = pc1.misses - pc0.misses;
    out.pdcache_invalidations = pc1.invalidations - pc0.invalidations;
  }
  std::vector<LoggedWrite> writes;
  for (auto& l : st.logs) {
    writes.insert(writes.end(), l.value.begin(), l.value.end());
    out.logged_writes += static_cast<long>(l.value.size());
  }

  // Return every array to its exact pre-loop state: snapshot copy-back for
  // the dense-decided arrays, FULL reverse-ticket write-log undo for the
  // rest.  Full (not selective) undo is load-bearing: undoing only invalid
  // writes would clobber a kept valid value whenever an invalid-early /
  // valid-late pair hit the same location, so the only order-safe scheme is
  // undo everything, then re-apply the valid writes in program order.
  const auto undo_to_entry = [&] {
    for (const auto& [aname, snap] : st.entry_arrays)
      env.arrays.at(aname) = snap;
    std::sort(writes.begin(), writes.end(),
              [](const LoggedWrite& a, const LoggedWrite& b) {
                return a.ticket > b.ticket;
              });
    for (const LoggedWrite& w : writes) {
      if (st.entry_arrays.count(*w.array) != 0) continue;  // snapshot-restored
      env.arrays.at(*w.array)[static_cast<std::size_t>(w.idx)] = w.old;
    }
  };

  if (out.speculation_failed) {
    // Restore everything and run the loop the old-fashioned way.
    env.scalars = st.entry_scalars;
    undo_to_entry();
    out.trip = run_sequential(loop, env);
    return out;
  }

  // ---- undo/replay: apply only the writes valid under the final exits --------
  const auto replay0 = std::chrono::steady_clock::now();
  undo_to_entry();
  std::stable_sort(writes.begin(), writes.end(),
                   [](const LoggedWrite& a, const LoggedWrite& b) {
                     if (a.iter != b.iter) return a.iter < b.iter;
                     return a.stmt < b.stmt;
                   });
  for (const LoggedWrite& w : writes) {
    if (w.iter >= stmt_limit(w.stmt, loop.max_iters, st.fired)) {
      ++out.discarded_writes;
      continue;
    }
    env.arrays.at(*w.array)[static_cast<std::size_t>(w.idx)] = w.value;
  }
  out.replay_ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - replay0)
                      .count();
  WLP_OBS_COUNT("wlp.undo.restore_ns", static_cast<long>(out.replay_ns));

  // ---- final scalar values ----------------------------------------------------
  for (const auto& [name, def_stmt] : st.def_of) {
    const long lim = stmt_limit(def_stmt, loop.max_iters, st.fired);
    if (lim > 0) {
      env.scalars[name] = st.expansion.at(name)[static_cast<std::size_t>(lim - 1)];
    } else if (st.entry_scalars.count(name)) {
      env.scalars[name] = st.entry_scalars.at(name);
    }
  }

  const mem::BudgetSnapshot mem1 = mem::Budget::process().snapshot();
  out.mem_arena_allocs = mem1.arena_allocs - mem0.arena_allocs;
  out.mem_slow_allocs = mem1.slow_allocs - mem0.slow_allocs;
  out.mem_bytes_live = mem1.bytes_live;

  out.trip = trip;
  return out;
}

PlanExecution run_parallel_plan(ThreadPool& pool, const Loop& loop,
                                const ParallelPlan& plan, Env& env) {
  return run_parallel_plan(pool, loop, plan, env, PlanExecOptions{});
}

}  // namespace wlp::ir
