#include "wlp/analysis/distribute.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace wlp::ir {

Distribution distribute(const Loop& loop, const DepGraph& g) {
  Distribution d;
  for (const auto& comp : strongly_connected_components(g)) {
    Block b;
    b.stmts = comp;
    b.rec = classify_component(loop, g, comp);
    d.blocks.push_back(std::move(b));
  }
  return d;
}

Distribution distribute(const Loop& loop) {
  const DepGraph g = build_dep_graph(loop);
  return distribute(loop, g);
}

namespace {

/// Fusion category: which neighbors a block may merge with.
enum class FuseClass { kParallel, kSequentialish, kKeepAlone };

FuseClass fuse_class(BlockKind k) {
  switch (k) {
    case BlockKind::kParallel:
      return FuseClass::kParallel;
    case BlockKind::kSequential:
    case BlockKind::kGeneralRecurrence:
      return FuseClass::kSequentialish;
    case BlockKind::kInduction:
    case BlockKind::kAssociative:
    case BlockKind::kUnknownAccess:
      // Inductions/associatives keep their identity so prefix/closed-form
      // methods apply; unknown-access blocks keep theirs so a failed PD
      // test does not drag fused neighbors into the sequential re-run
      // (Section 6: "loops parallelized with the PD test should be fused
      // with care — if at all").
      return FuseClass::kKeepAlone;
  }
  return FuseClass::kKeepAlone;
}

}  // namespace

Distribution fuse(const Loop& loop, const Distribution& d) {
  const DepGraph g = build_dep_graph(loop);
  Distribution out;
  for (const Block& b : d.blocks) {
    const FuseClass cls = fuse_class(b.rec.kind);
    const bool can_merge =
        !out.blocks.empty() && cls != FuseClass::kKeepAlone &&
        fuse_class(out.blocks.back().rec.kind) == cls;
    if (can_merge) {
      Block& prev = out.blocks.back();
      prev.stmts.insert(prev.stmts.end(), b.stmts.begin(), b.stmts.end());
      std::sort(prev.stmts.begin(), prev.stmts.end());
      prev.rec.contains_exit = prev.rec.contains_exit || b.rec.contains_exit;
      // Re-classify the merged component (it may have become sequential).
      prev.rec = classify_component(loop, g, prev.stmts);
    } else {
      out.blocks.push_back(b);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Distributed execution (the transformation's executable semantics)
// ---------------------------------------------------------------------------

namespace {

struct FiredExit {
  int stmt = 0;   ///< textual position of the exit
  long iter = 0;  ///< iteration at which it fired
};

/// Iterations statement `s` may validly execute given the fired exits:
/// statements textually before an exit run through its firing iteration
/// inclusive; statements after it stop one earlier.
long stmt_limit(int s, long max_iters, const std::vector<FiredExit>& fired) {
  long lim = max_iters;
  for (const FiredExit& e : fired)
    lim = std::min(lim, e.iter + (s < e.stmt ? 1 : 0));
  return lim;
}

struct LoggedWrite {
  long iter;
  int stmt;
  std::string array;
  long idx;
  double value;
};

}  // namespace

long run_distributed(const Loop& loop, const Distribution& d, Env& env) {
  if (auto err = validate(loop)) throw std::runtime_error("run_distributed: " + *err);

  // Which statement defines each scalar, and textual positions.
  std::map<std::string, int> def_of;
  for (std::size_t k = 0; k < loop.body.size(); ++k)
    if (loop.body[k].kind == StmtKind::kAssignScalar)
      def_of[loop.body[k].lhs] = static_cast<int>(k);

  // Which block each statement lives in.
  std::vector<int> block_of(loop.body.size(), -1);
  for (std::size_t b = 0; b < d.blocks.size(); ++b)
    for (int s : d.blocks[b].stmts) block_of[static_cast<std::size_t>(s)] = static_cast<int>(b);
  for (std::size_t k = 0; k < loop.body.size(); ++k)
    if (block_of[k] < 0) throw std::runtime_error("run_distributed: statement not in any block");

  const std::map<std::string, double> entry_scalars = env.scalars;
  const std::map<std::string, std::vector<double>> entry_arrays = env.arrays;

  // Scalar expansion storage: per loop-defined scalar, its value at each
  // iteration (NaN = not (yet) computed).
  std::map<std::string, std::vector<double>> expansion;
  for (const auto& [name, stmt] : def_of) {
    (void)stmt;
    expansion[name].assign(static_cast<std::size_t>(loop.max_iters),
                           std::numeric_limits<double>::quiet_NaN());
  }

  std::vector<FiredExit> fired;
  std::vector<LoggedWrite> writes;

  for (std::size_t bi = 0; bi < d.blocks.size(); ++bi) {
    const Block& block = d.blocks[bi];

    // Live scalar values for recurrences carried inside this block.
    std::map<std::string, double> live;
    for (int s : block.stmts)
      if (loop.body[static_cast<std::size_t>(s)].kind == StmtKind::kAssignScalar) {
        const std::string& x = loop.body[static_cast<std::size_t>(s)].lhs;
        const auto it = entry_scalars.find(x);
        live[x] = it != entry_scalars.end()
                      ? it->second
                      : std::numeric_limits<double>::quiet_NaN();
      }

    // Expression evaluation with block-aware scalar resolution.
    std::function<double(const ExprPtr&, int, long)> evalx =
        [&](const ExprPtr& e, int at_stmt, long i) -> double {
      switch (e->kind) {
        case ExprKind::kConst:
          return e->value;
        case ExprKind::kIndex:
          return static_cast<double>(i);
        case ExprKind::kScalar: {
          const auto dit = def_of.find(e->name);
          if (dit == def_of.end()) {
            const auto sit = env.scalars.find(e->name);
            if (sit == env.scalars.end())
              throw std::runtime_error("run_distributed: undefined scalar " + e->name);
            return sit->second;  // loop-invariant
          }
          const int def_stmt = dit->second;
          if (block_of[static_cast<std::size_t>(def_stmt)] == static_cast<int>(bi))
            return live.at(e->name);  // same block: live (handles recurrences)
          if (block_of[static_cast<std::size_t>(def_stmt)] > static_cast<int>(bi))
            throw std::runtime_error(
                "run_distributed: use before producing block for " + e->name);
          // Earlier block: read the expansion, shifted by one iteration when
          // the def is textually after the use (carried flow).
          const long src = def_stmt < at_stmt ? i : i - 1;
          if (src < 0) {
            const auto sit = entry_scalars.find(e->name);
            return sit != entry_scalars.end()
                       ? sit->second
                       : std::numeric_limits<double>::quiet_NaN();
          }
          return expansion.at(e->name)[static_cast<std::size_t>(src)];
        }
        case ExprKind::kArray: {
          const auto it = env.arrays.find(e->name);
          if (it == env.arrays.end())
            throw std::runtime_error("run_distributed: undefined array " + e->name);
          const auto idx = static_cast<long>(evalx(e->a, at_stmt, i));
          if (idx < 0 || idx >= static_cast<long>(it->second.size()))
            throw std::runtime_error("run_distributed: " + e->name + " out of range");
          return it->second[static_cast<std::size_t>(idx)];
        }
        case ExprKind::kBinary: {
          const double l = evalx(e->a, at_stmt, i);
          const double r = evalx(e->b, at_stmt, i);
          switch (e->op) {
            case '+': return l + r;
            case '-': return l - r;
            case '*': return l * r;
            case '/': return l / r;
            case '<': return l < r ? 1.0 : 0.0;
            case '>': return l > r ? 1.0 : 0.0;
            case 'L': return l <= r ? 1.0 : 0.0;
            case 'G': return l >= r ? 1.0 : 0.0;
            case '=': return l == r ? 1.0 : 0.0;
            case '!': return l != r ? 1.0 : 0.0;
            default:
              throw std::runtime_error("run_distributed: bad operator");
          }
        }
        case ExprKind::kCall: {
          const auto it = env.funcs.find(e->name);
          if (it == env.funcs.end())
            throw std::runtime_error("run_distributed: undefined function " + e->name);
          return it->second(evalx(e->a, at_stmt, i));
        }
      }
      throw std::runtime_error("run_distributed: bad expression");
    };

    for (long i = 0; i < loop.max_iters; ++i) {
      bool any_ran = false;
      for (int s : block.stmts) {
        if (i >= stmt_limit(s, loop.max_iters, fired)) continue;
        any_ran = true;
        const Stmt& st = loop.body[static_cast<std::size_t>(s)];
        if (st.guard && evalx(st.guard, s, i) == 0.0) {
          // Guard failed: a conditional scalar def carries its previous
          // value forward into the expansion.
          if (st.kind == StmtKind::kAssignScalar)
            expansion.at(st.lhs)[static_cast<std::size_t>(i)] = live.at(st.lhs);
          continue;
        }
        switch (st.kind) {
          case StmtKind::kExitIf:
            if (evalx(st.rhs, s, i) != 0.0) fired.push_back({s, i});
            break;
          case StmtKind::kAssignScalar: {
            const double v = evalx(st.rhs, s, i);
            live[st.lhs] = v;
            expansion.at(st.lhs)[static_cast<std::size_t>(i)] = v;
            break;
          }
          case StmtKind::kAssignArray: {
            const auto idx = static_cast<long>(evalx(st.subscript, s, i));
            auto& arr = env.arrays.at(st.lhs);
            if (idx < 0 || idx >= static_cast<long>(arr.size()))
              throw std::runtime_error("run_distributed: store out of range");
            const double v = evalx(st.rhs, s, i);
            arr[static_cast<std::size_t>(idx)] = v;
            writes.push_back({i, s, st.lhs, idx, v});
            break;
          }
        }
      }
      if (!any_ran) break;
    }
  }

  // ---- undo: replay only writes valid under the final exit set -------------
  env.arrays = entry_arrays;
  std::stable_sort(writes.begin(), writes.end(),
                   [](const LoggedWrite& a, const LoggedWrite& b) {
                     if (a.iter != b.iter) return a.iter < b.iter;
                     return a.stmt < b.stmt;
                   });
  for (const LoggedWrite& w : writes) {
    if (w.iter >= stmt_limit(w.stmt, loop.max_iters, fired)) continue;
    env.arrays.at(w.array)[static_cast<std::size_t>(w.idx)] = w.value;
  }

  // ---- final scalar values ---------------------------------------------------
  for (const auto& [name, def_stmt] : def_of) {
    const long lim = stmt_limit(def_stmt, loop.max_iters, fired);
    if (lim > 0) {
      env.scalars[name] = expansion.at(name)[static_cast<std::size_t>(lim - 1)];
    } else {
      const auto it = entry_scalars.find(name);
      if (it != entry_scalars.end()) env.scalars[name] = it->second;
    }
  }

  // ---- trip count -------------------------------------------------------------
  long trip = loop.max_iters;
  for (const FiredExit& e : fired) trip = std::min(trip, e.iter);
  return trip;
}

std::string to_string(const Distribution& d, const Loop& loop) {
  std::ostringstream os;
  for (std::size_t b = 0; b < d.blocks.size(); ++b) {
    const Block& blk = d.blocks[b];
    os << "block " << b << " [" << to_string(blk.rec.kind);
    if (!blk.rec.var.empty()) os << " var=" << blk.rec.var;
    if (blk.rec.contains_exit) os << " +exit";
    os << "]\n";
    for (int s : blk.stmts)
      os << "  s" << s << ": " << to_string(loop.body[static_cast<std::size_t>(s)]) << '\n';
  }
  return os.str();
}

}  // namespace wlp::ir
