// Parallel execution of a planned loop — the end of the automatic
// transformation pipeline.
//
// run_parallel_plan() takes an ir::Loop, the ParallelPlan produced by
// make_plan() (dependence graph -> distribution -> fusion -> method
// selection) and executes the loop against an Env using the runtime:
//
//   * induction dispatcher blocks evaluate their closed form directly;
//   * associative dispatcher blocks evaluate their terms with the REAL
//     parallel prefix computation (AffineMap scan, Section 3.2);
//   * general recurrence blocks walk their chain sequentially into the
//     expansion (the inherently sequential case);
//   * parallel blocks run as DOALLs via doall_quit, with every array write
//     logged with its (iteration, statement) time-stamp;
//   * unknown-access blocks additionally drive PD shadow marking, and a
//     failed verdict falls back to a plain sequential execution;
//   * sequential blocks run as DOACROSS pipelines (ordered, overlapped is
//     not attempted for interpreted statements — program order preserved);
//   * exits distribute with their blocks; after all blocks ran, only the
//     writes valid under the final exit set are replayed onto the entry
//     state — the undo step of Section 4, in write-log form.
//
// The contract (enforced by tests): final Env state and trip count are
// identical to run_sequential(), up to floating-point reassociation in
// parallel-prefix-evaluated recurrences.
//
// Thread-safety requirement on Env: the call table's functions must be
// pure/thread-safe (they are invoked concurrently).
#pragma once

#include "wlp/analysis/plan.hpp"
#include "wlp/pd/verdict_cache.hpp"
#include "wlp/sched/thread_pool.hpp"

namespace wlp::ir {

/// Execution-time knobs: the Section 8.2 window/budget surface applied to
/// the interpreter's parallel blocks.  Default = no budget, and the blocks
/// run as plain DOALLs exactly as before.  With a budget set, kParallel /
/// kUnknownAccess blocks run under the sliding-window controller fed by the
/// MEASURED write-log footprint (every logged store claims a ticket, so
/// ticket count x entry size is the log's live bytes — no per-worker scan).
struct PlanExecOptions {
  std::size_t memory_budget = 0;  ///< 0 = unbudgeted (plain doall_quit)
  long window = 64;               ///< initial window when budgeted
  long min_window = 2;
  long max_window = 1 << 20;
  bool charge_process_budget = false;  ///< share the process-wide ceiling
  /// Optional cross-execution verdict memoization for the unknown-access
  /// blocks' PD analysis (pd/verdict_cache.hpp).  A caller re-running the
  /// same plan in steady state shares one cache across executions; a
  /// failed speculation invalidates it.
  pdcache::VerdictCache* verdict_cache = nullptr;
};

struct PlanExecution {
  long trip = 0;
  bool speculation_failed = false;  ///< PD verdict failed -> sequential rerun
  long parallel_blocks = 0;         ///< blocks executed as DOALLs
  long prefix_blocks = 0;           ///< recurrences evaluated by parallel prefix
  long logged_writes = 0;
  long discarded_writes = 0;  ///< overshot writes dropped during replay
  long doacross_parks = 0;    ///< futex sleeps in sequential-block pipelines
  long doacross_wait_rounds = 0;  ///< backoff rounds burned waiting on the
                                  ///< DOACROSS frontier (pipeline stall cost)
  double snapshot_ns = 0;  ///< wall time copying entry state (the Tb term of
                           ///< the plan's write-log undo scheme)
  double replay_ns = 0;    ///< wall time in the undo/replay phase (Ta)
  // Per-array backup decisions (cost_model::choose_backup on the static
  // stores-per-iteration x max_iters density estimate): how many arrays got
  // a dense entry snapshot, how many rely on the ticketed write log, and how
  // many snapshot bytes the log-undo/unwritten arrays avoided copying.
  long arrays_dense_snapshot = 0;
  long arrays_log_undo = 0;
  long snapshot_bytes_saved = 0;
  // What this execution cost the process memory budget (wlp::mem::Budget
  // deltas between entry and exit): how many arena blocks the run consumed
  // and how many of those reached the OS.  A steady-state caller re-running
  // the same plan should see both deltas go to zero — the shadows' and
  // logs' storage recycles through the arenas.
  long mem_arena_allocs = 0;  ///< arena blocks handed out during the run
  long mem_slow_allocs = 0;   ///< ... of which came from the OS (cold path)
  long mem_bytes_live = 0;    ///< process-wide arena bytes live at exit
  // Sliding-window decisions for the budgeted parallel blocks (all zero
  // when PlanExecOptions::memory_budget was 0): what the Section 8.2
  // controller did with the write-log footprint it measured.
  long window_runs = 0;        ///< parallel blocks run under the window
  long window_final = 0;       ///< window size at the end of the last block
  long window_shrinks = 0;     ///< controller shrink decisions (all blocks)
  long window_grows = 0;       ///< controller grow decisions (all blocks)
  long window_cap = 0;         ///< final derived cap (iterations)
  long window_cap_bytes = 0;   ///< bytes that cap represents (EWMA estimate)
  long window_peak_bytes = 0;  ///< max measured logged-write footprint
  // Verdict-cache activity during THIS execution (wlp.pd.cache.* counter
  // deltas between entry and exit; all zero without a cache attached).
  long pdcache_hits = 0;
  long pdcache_misses = 0;
  long pdcache_invalidations = 0;
};

PlanExecution run_parallel_plan(ThreadPool& pool, const Loop& loop,
                                const ParallelPlan& plan, Env& env,
                                const PlanExecOptions& opts);
PlanExecution run_parallel_plan(ThreadPool& pool, const Loop& loop,
                                const ParallelPlan& plan, Env& env);

}  // namespace wlp::ir
