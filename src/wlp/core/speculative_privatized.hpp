// Speculative execution WITH privatization under test — the second half of
// Section 5.
//
// When the only cross-iteration dependences are memory related (output
// dependences from re-used locations), privatization makes the loop a valid
// DOALL.  Whether privatization itself was valid can only be decided at run
// time, so the loop runs on per-processor private copies while the PD
// shadow records accesses; the post-execution verdict
// `parallel_with_privatization` (no element both written and exposed-read
// by different iterations) decides between:
//
//   * success — copy out, per location, the private value with the largest
//     time-stamp not exceeding the last valid iteration;
//   * failure — simply discard the private copies and run sequentially.
//
// Note what is ABSENT compared to speculative.hpp: no checkpoint and no
// restore.  "Privatized variables need not be backed up because the
// original version of the variable can serve as the backup since it is not
// altered during the parallel execution."
#pragma once

#include <span>
#include <vector>

#include "wlp/core/privatize.hpp"
#include "wlp/core/report.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/core/shadow.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Type-erased interface over one privatized array under speculation.
class PrivTarget {
 public:
  virtual ~PrivTarget() = default;
  virtual PDVerdict analyze(ThreadPool& pool, long trip) const = 0;
  virtual long copy_out(long trip) = 0;
  /// Shadow marks recorded during the run (instrumentation volume).
  virtual long marks() const { return 0; }
};

/// A shared array speculated on through per-processor private copies.
/// The shared vector stays untouched until copy_out().
/// `Shadow` selects the marking policy (see SpecArray).
template <class T, class Shadow = PDPrivateShadow>
class PrivatizedSpecArray final : public PrivTarget {
 public:
  PrivatizedSpecArray(std::vector<T>& shared, unsigned workers)
      : priv_(shared, workers), shadow_(shared.size(), workers),
        iter_(workers, -1) {
    accessors_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
      accessors_.emplace_back(shadow_, shared.size(), w);
  }

  // ---- body-side API -----------------------------------------------------

  void begin_iteration(unsigned vpn, long iter) {
    accessors_[vpn].begin_iteration(iter);
    iter_[vpn] = iter;
  }

  T get(unsigned vpn, std::size_t idx) {
    accessors_[vpn].on_read(idx);
    return priv_.read(vpn, idx);
  }

  void set(unsigned vpn, std::size_t idx, const T& v) {
    accessors_[vpn].on_write(idx);
    priv_.write(vpn, iter_[vpn], idx, v);
  }

  // ---- PrivTarget ----------------------------------------------------------

  PDVerdict analyze(ThreadPool& pool, long trip) const override {
    return shadow_.analyze(pool, trip);
  }
  long copy_out(long trip) override { return priv_.copy_out(trip); }
  long marks() const override {
    long m = 0;
    for (const auto& a : accessors_) m += a.marks();
    return m;
  }

  std::size_t trail_entries() const { return priv_.trail_entries(); }

 private:
  PrivatizedArray<T> priv_;
  Shadow shadow_;
  std::vector<PDAccessorT<Shadow>> accessors_;
  // Current iteration per worker (PrivatizedArray wants it on write).
  std::vector<long> iter_;
};

/// Run a WHILE loop speculatively with privatization under test.
/// `body(i, vpn) -> IterAction` must route accesses to the registered
/// targets through get/set after begin_iteration.  On a conflict verdict
/// the private copies are discarded (the shared data was never touched) and
/// `run_sequential() -> trip` executes against the pristine shared data.
template <class Body, class SeqRun>
ExecReport speculative_privatized_while(ThreadPool& pool, long u,
                                        std::span<PrivTarget* const> targets,
                                        Body&& body, SeqRun&& run_sequential,
                                        DoallOptions opts = {}) {
  ExecReport r;
  r.method = Method::kInduction2;
  r.used_checkpoint = false;  // the original data IS the backup
  r.used_stamps = true;       // the write trails are time-stamped
  r.pd_tested = true;

  bool failed = false;
  QuitResult qr{};
  try {
    qr = doall_quit(pool, 0, u, body, opts);
  } catch (...) {
    failed = true;  // Section 5.1: exception == invalid parallel execution
  }

  for (const PrivTarget* t : targets) r.shadow_marks += t->marks();
  WLP_OBS_COUNT("wlp.pd.marks", r.shadow_marks);

  if (!failed) {
    r.trip = qr.trip;
    r.started = qr.started;
    r.overshot = std::max(0L, qr.started - qr.trip);
    for (const PrivTarget* t : targets) {
      const PDVerdict v = t->analyze(pool, qr.trip);
      if (!v.parallel_with_privatization()) {
        r.pd_passed = false;
        failed = true;
      }
    }
  }

  if (failed) {
    r.reexecuted_sequentially = true;
    r.trip = run_sequential();
    return r;
  }

  for (PrivTarget* t : targets) t->copy_out(qr.trip);
  return r;
}

}  // namespace wlp
