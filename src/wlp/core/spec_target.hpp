// The type-erased interface over one array participating in a speculation —
// split out of speculative.hpp so the SpecTransaction layer (txn.hpp) can
// fuse checkpoint/undo work across targets without an include cycle with
// the speculative drivers.
//
// Two tiers of API:
//   * The original per-target virtuals (checkpoint / undo_beyond /
//     restore_all / ...) — every target implements these; drivers that run
//     one target, and the transaction's fallback for opaque targets, use
//     them directly.
//   * The txn_* hooks — span-granular pieces of the same operations, so a
//     SpecTransaction can run ONE pool-parallel pass over the concatenated
//     block ranges of all its members instead of k sequential parallel
//     passes (ISSUE 8: rollback must be bandwidth-bound in one stream, not
//     latency-bound in k).  All hooks have conservative defaults: a target
//     that doesn't implement them reports no index / no spans / no slots,
//     and the transaction falls back to its per-target virtuals.  Adding
//     hooks with defaults is non-breaking — no external subclasses exist.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "wlp/core/shadow.hpp"
#include "wlp/core/versioned_array.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Receives footprint step-change notifications.  The chain is
/// SpecTarget::footprint_changed() -> SpecTransaction -> window controller:
/// the per-claim memory_bytes() poll tracks gradual backup growth, but a
/// backend flip (AdaptiveSpecArray hash -> dense) is a step jump the poll
/// can miss for a claim or more — the hook lets the window clamp on the
/// very next decision.  Implementations are called from pool workers and
/// must be lock-free and noexcept.
class FootprintListener {
 public:
  virtual ~FootprintListener() = default;
  virtual void footprint_changed() noexcept = 0;
};

/// Type-erased interface over one array participating in a speculation.
class SpecTarget {
 public:
  virtual ~SpecTarget() = default;

  /// Notify the registered listener that memory_bytes() just step-changed
  /// (backend flip, bulk adoption of a checkpoint).  Safe to call with no
  /// listener registered; subclasses call this, drivers register.
  void footprint_changed() noexcept {
    FootprintListener* l = footprint_listener_.load(std::memory_order_acquire);
    if (l != nullptr) l->footprint_changed();
  }
  void set_footprint_listener(FootprintListener* l) noexcept {
    footprint_listener_.store(l, std::memory_order_release);
  }
  /// Snapshot before the speculative run (the Tb term).  The pool, when
  /// given, parallelizes the copy; nullptr keeps it serial.
  virtual void checkpoint(ThreadPool* pool) = 0;
  virtual long undo_beyond(long trip, ThreadPool* pool) = 0;
  virtual void restore_all(ThreadPool* pool) = 0;
  virtual bool shadowed() const = 0;
  virtual PDVerdict analyze(ThreadPool& pool, long trip) const = 0;
  virtual void reset_marks() = 0;
  /// Shadow marks recorded since the last reset_marks() (0 if not shadowed).
  virtual long marks() const { return 0; }
  /// Did the backup lose a write since the last reset_marks()?  A sparse
  /// backup that hits capacity latches this instead of throwing from a pool
  /// worker; the drivers treat it exactly like a failed PD test (restore and
  /// re-execute sequentially — the dense path never overflows).
  virtual bool overflowed() const { return false; }
  /// Bytes of state this target pins right now (data + backup + stamps): the
  /// quantity the Section 8.2 window budget controller charges, replacing
  /// the window's bytes-per-iteration guess.
  virtual std::size_t memory_bytes() const { return 0; }
  /// Commit: the speculation succeeded with no overshoot in this region,
  /// the backup state can be dropped (strip-by-strip drivers use this).
  virtual void discard() = 0;

  // ---- verdict-cache hooks (wlp::pdcache, pd/verdict_cache.hpp) ------------

  /// Turn per-mark access-summary accumulation on/off in this target's
  /// shadow.  Drivers call it once, before any marking, when a verdict
  /// cache is attached; targets whose shadow policy has no summary support
  /// ignore it (their access_summary() stays false and the cache is simply
  /// bypassed for them).
  virtual void enable_access_signatures(bool /*on*/) {}
  /// Fold the shadow's per-worker access summaries into `*out` (only valid
  /// after the fork-join barrier, like analyze()).  Returns false when this
  /// target cannot produce one — signatures disabled, not shadowed, or a
  /// shadow policy without summaries — in which case the caller must run
  /// the full analysis.
  virtual bool access_summary(PDAccessSummary* /*out*/) const { return false; }
  /// Write density for the verdict signature: current-epoch dirty blocks
  /// (dense stamps) or the equivalent packed-block count (sparse backups).
  /// Cheap by construction — summary-word popcount or an occupancy read,
  /// never an element sweep.
  virtual long dirty_block_count() const { return 0; }

  // ---- fused-transaction hooks (SpecTransaction, txn.hpp) ------------------

  /// The trip-indexed stamp/dirty index this target's speculative writes go
  /// through, or nullptr for a target the transaction must treat as opaque
  /// (fall back to the per-target virtuals above).  Targets returning the
  /// SAME index are trip-aligned siblings: the transaction walks their
  /// shared dirty summary once and dispatches each merged span to every
  /// member back-to-back.
  virtual StampIndex* txn_index() noexcept { return nullptr; }
  /// Prepare for a fused checkpoint (resize the pooled backup, count the
  /// checkpoint); returns the element count the transaction's single
  /// parallel pass must copy for this member.  0 = nothing to copy up
  /// front (sparse backups save on first touch).
  virtual std::size_t txn_checkpoint_begin() { return 0; }
  /// Copy live elements [b, e) into the backup (one chunk of the fused
  /// checkpoint pass).
  virtual void txn_checkpoint_span(std::size_t /*b*/, std::size_t /*e*/) {}
  /// Restore overshot stamps in [b, e) against this member's backup; the
  /// packed `threshold` came from this member's txn_index().  Returns
  /// locations restored.
  virtual long txn_restore_span(std::size_t /*b*/, std::size_t /*e*/,
                                std::uint64_t /*threshold*/) {
    return 0;
  }
  /// Full-restore copy of [b, e) from the backup — failed speculation.
  /// Unlike txn_restore_span this must not consult stamps: targets whose
  /// bodies write below a stamp threshold (strategies.hpp) leave UNSTAMPED
  /// speculative writes that only a full copy rolls back.
  virtual void txn_restore_all_span(std::size_t /*b*/, std::size_t /*e*/) {}
  /// Called once per member after the fused full restore completes (clear
  /// stamps so the next undo pass sees a clean epoch).
  virtual void txn_restore_all_done() {}
  /// Sparse members: number of backup slots the fused undo pass must scan
  /// (0 = not sparse).  The transaction partitions [0, slots) into chunks
  /// and calls txn_undo_slots for each.
  virtual std::size_t txn_sparse_slots() const { return 0; }
  /// Undo every slot in [lo, hi) whose writer iteration is >= trip
  /// (trip < 0 = restore all saved values: the sparse side of a fused full
  /// restore).  Returns locations restored.
  virtual long txn_undo_slots(long /*trip*/, std::size_t /*lo*/,
                              std::size_t /*hi*/) {
    return 0;
  }

 private:
  std::atomic<FootprintListener*> footprint_listener_{nullptr};
};

namespace detail {
inline double spec_ns_since(std::chrono::steady_clock::time_point t0) noexcept {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace detail

}  // namespace wlp
