// Section 3.1 — the dispatcher is an induction (Figure 2).
//
// With a closed-form dispatcher d(i) = c*i + b every processor can evaluate
// its own dispatcher value, so the WHILE loop runs directly as a DOALL over
// an upper bound `u`.  Each processor records the lowest iteration on which
// it observed the termination condition (the paper's L[vpn]); the minimum
// over processors after the loop is the sequential trip count.
//
//   * Induction-1 — no QUIT primitive: every iteration in [0, u) executes.
//   * Induction-2 — ordered issue + QUIT: the first exit cuts off the issue
//     of larger iterations, so far fewer iterations overshoot.
#pragma once

#include "wlp/core/report.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Induction-1 (Fig. 2 left).  `body(i, vpn) -> IterAction` evaluates the
/// termination condition and, when it does not hold, the remainder work for
/// iteration i.  All of [0, u) executes; exit candidates are min-reduced.
template <class Body>
ExecReport while_induction1(ThreadPool& pool, long u, Body&& body,
                            DoallOptions opts = {}) {
  opts.use_quit = false;
  const QuitResult qr = doall_quit(pool, 0, u, std::forward<Body>(body), opts);
  ExecReport r;
  r.method = Method::kInduction1;
  r.trip = qr.trip;
  r.started = qr.started;
  r.overshot = qr.started - qr.trip;
  return r;
}

/// Induction-2 (Fig. 2 right): ordered issue + QUIT.  Iterations beyond the
/// smallest QUIT issued so far are never begun; the overshoot is bounded by
/// the iterations already in flight when the QUIT lands.
template <class Body>
ExecReport while_induction2(ThreadPool& pool, long u, Body&& body,
                            DoallOptions opts = {}) {
  opts.use_quit = true;
  const QuitResult qr = doall_quit(pool, 0, u, std::forward<Body>(body), opts);
  ExecReport r;
  r.method = Method::kInduction2;
  r.trip = qr.trip;
  r.started = qr.started;
  r.overshot = qr.started - qr.trip;
  return r;
}

/// Reference sequential execution of the same body protocol.  Used by tests
/// and by the speculative driver's fallback path.
template <class Body>
ExecReport while_sequential(long u, Body&& body) {
  ExecReport r;
  r.method = Method::kSequential;
  for (long i = 0; i < u; ++i) {
    ++r.started;
    const IterAction act = body(i, 0u);
    if (act == IterAction::kExit) {
      r.trip = i;
      return r;
    }
    if (act == IterAction::kExitAfter) {
      r.trip = i + 1;
      return r;
    }
  }
  r.trip = u;
  return r;
}

}  // namespace wlp
