// Section 3.2 — the dispatcher is an associative recurrence (Figure 3).
//
// The original loop is distributed into (1) a loop computing the dispatcher
// terms, transformed into a parallel prefix computation, and (2) a DOALL
// over the remainder using those terms.  With an RI terminator the exit is
// found by scanning the precomputed terms; with an RV terminator the exit
// can only surface inside the remainder, so the execution is strip-mined:
// each strip's terms are computed by prefix and its remainder run as a
// speculative DOALL — the terms computed beyond the actual exit are the
// "superfluous dispatcher values" cost the paper warns about, which the
// report exposes through dispatcher_steps.
#pragma once

#include <limits>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/parallel_prefix.hpp"
#include "wlp/sched/reduce.hpp"

namespace wlp {

/// Parallelize `while (!term(x)) { body(i, x); x = step(x); }` where
/// x(0) = x0 and step is the affine map x -> a*x + b over ring T.
///
/// `term(x) -> bool` is the RI terminator on the dispatcher value;
/// `body(i, x, vpn) -> IterAction` is the remainder (it may raise RV exits).
/// `u` bounds the iteration space; `strip` is the strip length (0 = one
/// strip covering all of u, the right choice for RI terminators).
template <class T, class TermRI, class Body>
ExecReport while_assoc_prefix(ThreadPool& pool, T x0, AffineMap<T> step,
                              TermRI&& term, Body&& body, long u,
                              long strip = 0) {
  ExecReport r;
  r.method = Method::kAssocPrefix;
  if (strip <= 0) strip = u;

  T strip_seed = x0;  // dispatcher value at the first iteration of the strip
  for (long base = 0; base < u; base += strip) {
    const long len = std::min(strip, u - base);

    // Loop 1 (distributed): terms for iterations [base, base+len).
    // vals[0] = strip_seed; vals[j] = step^j(strip_seed), computed by scan.
    std::vector<T> vals(static_cast<std::size_t>(len));
    vals[0] = strip_seed;
    if (len > 1) {
      auto tail = affine_recurrence_terms(pool, strip_seed, step.a, step.b,
                                          len - 1);
      for (long j = 1; j < len; ++j)
        vals[static_cast<std::size_t>(j)] = tail[static_cast<std::size_t>(j - 1)];
    }
    r.dispatcher_steps += len;

    // RI exit: first term in the strip on which the terminator holds.
    const long kNone = std::numeric_limits<long>::max();
    const long ri_exit = parallel_min(
        pool, 0, len, kNone,
        [&](long j) { return term(vals[static_cast<std::size_t>(j)]) ? base + j : kNone; });
    const long strip_end = ri_exit == kNone ? base + len : ri_exit;

    // Loop 2 (distributed): the remainder as a speculative DOALL.
    const QuitResult qr = doall_quit(
        pool, base, strip_end,
        [&](long i, unsigned vpn) {
          return body(i, vals[static_cast<std::size_t>(i - base)], vpn);
        },
        {});
    r.started += qr.started;

    if (qr.trip < strip_end) {  // RV exit inside this strip
      r.trip = qr.trip;
      // Earlier strips ran to completion; only this strip overshoots.
      r.overshot = std::max(0L, qr.started - (qr.trip - base));
      return r;
    }
    if (ri_exit != kNone) {  // RI exit: clean stop, nothing overshot
      r.trip = ri_exit;
      return r;
    }

    // Seed the next strip: x(base+len) = step(vals[len-1]).
    strip_seed = step(vals[static_cast<std::size_t>(len - 1)]);
  }

  r.trip = u;
  return r;
}

namespace detail {
// (no helpers needed; kept for future strip policies)
}

}  // namespace wlp
