// The cost/performance analysis of Section 7.
//
// Given the sequential split of a WHILE loop into Trec (time to evaluate the
// dispatching recurrence) and Trem (time in the remainder), the model
// predicts the ideal speedup Spid, the attainable speedup Spat after the
// overheads Tb (before: checkpointing), Td (during: time-stamping and shadow
// accesses) and Ta (after: undo + PD post-analysis), the worst-case fraction
// Spat/Spid (1/4 without the PD test, 1/5 with it), the slowdown of a failed
// speculation (~Tseq/p extra), and — via branch statistics — the expected
// trip count used to decide whether parallelization is worthwhile at all.
#pragma once

#include "wlp/core/taxonomy.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Sequential timing split of the loop (arbitrary but consistent units).
struct LoopTiming {
  double t_rem = 0;  ///< total remainder time
  double t_rec = 0;  ///< total dispatcher (recurrence) time

  double t_seq() const noexcept { return t_rem + t_rec; }
};

/// What the run-time techniques add.
struct OverheadProfile {
  long accesses = 0;        ///< a: accesses made during the loop (paper's `a`)
  double access_cost = 1.0; ///< cost of one bookkeeping operation
  bool pd_test = false;     ///< shadow marking + post-analysis applied
  bool needs_undo = false;  ///< checkpoint before + undo after
  /// MEASURED before/after terms (same units as the LoopTiming the profile
  /// is predicted against; negative = not measured, fall back to the a/p
  /// model).  The runtime reports these per run (ExecReport::checkpoint_ns /
  /// undo_ns); LoopStatistics averages them so predictions use the batched
  /// implementation's real Tb/Ta instead of the paper's worst-case O(a/p).
  double measured_tb = -1.0;
  double measured_ta = -1.0;
  /// Fraction of PD analyses served by the verdict cache (wlp::pdcache),
  /// in [0, 1].  A hit replaces the O(a/p) post-analysis term with one
  /// summary fold + table probe (~free at this granularity), so the term is
  /// scaled by (1 - verdict_hit_rate).  0 = no cache / never hits.
  double verdict_hit_rate = 0.0;
};

struct Prediction {
  double spid = 1.0;           ///< ideal speedup
  double spat = 1.0;           ///< attainable speedup under the overheads
  double efficiency = 1.0;     ///< spat / spid
  double failed_slowdown = 0;  ///< extra time (fraction of Tseq) if the PD
                               ///< test fails and the loop re-runs serially
  bool recommend = false;      ///< parallelize?
};

/// Ideal parallel time Tipar for the loop on p processors given how
/// parallelizable the dispatcher is (Section 7's three cases).  `log_p_cost`
/// scales the additive log(p) term of the prefix evaluation.
double ideal_parallel_time(const LoopTiming& t, unsigned p,
                           DispatcherParallelism dp, double log_p_cost = 1.0);

/// Spid = Tseq / Tipar.
double ideal_speedup(const LoopTiming& t, unsigned p, DispatcherParallelism dp,
                     double log_p_cost = 1.0);

/// The before/during/after overhead terms of Section 7.
struct OverheadTerms {
  double t_b = 0;
  double t_d = 0;
  double t_a = 0;
  double total() const noexcept { return t_b + t_d + t_a; }
};
OverheadTerms overhead_terms(const OverheadProfile& o, unsigned p, double spid);

/// Spat = Tseq / (Tipar + Tb + Td + Ta).
double attainable_speedup(const LoopTiming& t, const OverheadProfile& o,
                          unsigned p, DispatcherParallelism dp,
                          double log_p_cost = 1.0);

/// Section 7's floor on Spat/Spid in the worst case (Spid ~ p).
constexpr double worst_case_fraction(bool pd_test) noexcept {
  return pd_test ? 0.2 : 0.25;
}

/// Full prediction + the go/no-go decision.  `min_speedup` is the smallest
/// attainable speedup for which parallelization is recommended.
Prediction predict(const LoopTiming& t, const OverheadProfile& o, unsigned p,
                   DispatcherParallelism dp, double min_speedup = 1.05,
                   double log_p_cost = 1.0);

/// Build an OverheadProfile from MEASURED instrumentation volume instead of
/// a compiler estimate of `a`: `marks_per_iteration` is the shadow marks the
/// runtime actually recorded per executed iteration (ExecReport::shadow_marks
/// over started iterations — the accessor's last-writer filter means this is
/// usually well below the static access count), and `expected_trip` the
/// trip estimate the prediction is being made for.
/// `measured_tb` / `measured_ta` (optional, negative = unmeasured) carry the
/// runtime's observed checkpoint/undo cost straight into the profile;
/// `verdict_hit_rate` the observed verdict-cache hit fraction
/// (LoopStatistics::verdict_hit_rate()), which discounts the PD
/// post-analysis term.
OverheadProfile observed_overheads(double marks_per_iteration,
                                   double expected_trip, bool pd_test,
                                   bool needs_undo, double access_cost = 1.0,
                                   double measured_tb = -1.0,
                                   double measured_ta = -1.0,
                                   double verdict_hit_rate = 0.0);

/// Branch statistics for the termination condition (Section 7: "the
/// compiler could predict the number of iterations using branch statistics").
struct BranchStats {
  long exit_taken = 0;      ///< times the exit branch was taken
  long exit_not_taken = 0;  ///< times it fell through

  /// Per-evaluation exit probability.
  double exit_probability() const noexcept;
};

/// Expected trip count under a geometric model: E[trip] = 1/q where q is
/// the per-iteration exit probability.
double estimate_trip(const BranchStats& b);

/// Expected end-to-end speedup of attempting the speculation when the loop
/// turns out parallel with probability `p_parallel` (Section 7 weighted by
/// the Section 11 run-time history): successes deliver Spat, failures cost
/// the sequential re-execution plus the wasted attempt.
double expected_speculative_speedup(const Prediction& pred, double p_parallel);

/// Pick the DOALL schedule for a speculative run over [0, upper_bound).
///
/// The trade-offs the choice balances:
///   * a trip too short to amortize shared-counter claims → static cyclic
///     (zero claim traffic, and cyclic issue keeps the QUIT overshoot
///     bounded by p);
///   * highly variable iteration cost (coefficient of variation of the
///     body's runtime) → dynamic, chunk 1 (finest-grain load balancing);
///   * an exit expected well before the upper bound → guided grabs sized
///     from `upper_bound` would overshoot massively, so dynamic with a
///     modest chunk is used instead;
///   * otherwise → guided self-scheduling: claim-count drops from O(u/chunk)
///     to O(p log(u/chunk)) while the tail still balances at `chunk`.
///
/// `expected_trip <= 0` means "unknown" (treated as running to the bound);
/// `iter_cost_cv` is stddev/mean of the per-iteration cost (0 = uniform).
DoallOptions choose_schedule(long upper_bound, double expected_trip,
                             double iter_cost_cv, unsigned p);

/// Which backup representation a speculated array uses for a retry.
enum class BackupKind { kDense, kHash };

/// The adaptive dense-vs-sparse decision, with the inputs it was made from
/// (tests and the bench assert on these; obs gauges publish them).
struct BackupDecision {
  BackupKind kind = BackupKind::kDense;
  double density = 0.0;  ///< touched / n that drove the decision
  double theta = 0.0;    ///< crossover density actually used
};

/// Pick dense VersionedArray vs sparse HashBackup for ONE array's next
/// retry from its measured touch density (`touched` locations written last
/// retry, array size `n`), optionally corrected by the measured Tb/Ta the
/// cost model already collects (negative = unmeasured, use the static
/// operation-cost model).  Replaces the static per-loop backup flag: the
/// same loop can run one array dense and a sibling sparse, and flip either
/// as the observed density drifts (DESIGN.md §9).
BackupDecision choose_backup(std::size_t n, std::size_t touched,
                             double measured_tb = -1.0,
                             double measured_ta = -1.0) noexcept;

}  // namespace wlp
