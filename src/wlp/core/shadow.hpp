// Shadow arrays for the PRIVATIZING DOALL (PD) test — Section 5.1.
//
// For each shared array whose accesses cannot be analyzed at compile time,
// the speculative parallel execution traverses shadow state using the
// array's own access pattern:
//   * every write to element e marks e's write shadow (Aw),
//   * every read that is NOT preceded by a same-iteration write marks e's
//     exposed-read shadow (Ar) — exposed reads are what invalidate both
//     independence and privatization.
//
// To support WHILE-loop overshoot (Section 5: "all writes to the shadow
// arrays ... will be time-stamped, and for each shadow element we will
// maintain the minimum iteration that marked it"), each cell keeps the TWO
// smallest distinct writer iterations (w0 < w1) and the two smallest
// distinct exposed-read iterations (r0 < r1).  The post-execution analysis
// filters marks made by iterations >= the last valid iteration:
//   written          iff w0 < trip
//   multiply written iff w1 < trip        (output dependence -> privatize)
//   exposed-read     iff r0 < trip
//
// A cross-iteration flow/anti dependence (a *conflict*) exists iff some
// iteration writes the element and a DIFFERENT iteration exposed-reads it.
// With the two-smallest sets that is decidable exactly:
//   conflict iff written && exposed && (w1 < trip || r1 < trip || w0 != r0)
// — a same-iteration read-then-write like A[i] = 2*A[i] (the paper's
// Fig. 5(a)) leaves w0 == r0 as the only marks and correctly passes.
//
// Two implementations of the marking store exist, selectable per speculation
// target (SpecArray<T, Shadow> et al.); both run the same fully parallel
// O(n/p + log p) analysis:
//
//   * PDSharedShadow — one cell array shared by all workers; every mark
//     pays atomic loads plus a striped spinlock.  Kept as the A/B baseline
//     the benches compare against, and for callers that mark without a
//     stable worker id.
//   * PDPrivateShadow — one cache-line-disjoint cell segment per worker;
//     marks are PLAIN stores into the worker's own segment (no atomics, no
//     locks), and analyze() merges the per-worker two-smallest sets
//     cell-block-wise.  The two-smallest set is a semilattice under that
//     merge (see DESIGN.md §5), so moving the combine into the post-pass is
//     exact.  reset() is an O(1) epoch bump: cells stamped with an older
//     generation are treated as unmarked at merge time, so strip /
//     run-twice / sliding-window retries stop paying an O(n) sweep.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "wlp/mem/epoch.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {

/// Per-worker access summary for the verdict cache (wlp::pdcache): a
/// constant-size digest of every mark a worker made since the last reset,
/// cheap enough to maintain inline on the marking hot path and to fold
/// across workers in O(workers) — no cell sweep.
///
/// The digest must satisfy two invariances so equal access patterns hash
/// equal across strips:
///   * schedule invariance — which worker marked what varies run to run, so
///     every component is a commutative fold (sums mod 2^64, min/max);
///   * base invariance — strip k replays the pattern at iterations
///     [base, base+s), so iteration numbers enter only through moment sums
///     Σ m(idx)·(iter+1)^k, which the signature builder rebases exactly:
///     Σ m·(t−b+1) = h1 − b·h0 and Σ m·(t−b+1)² = h2 − 2b·h1 + b²·h0.
/// Two moments bind (idx, iter) pairs jointly: permuting which iteration
/// touched which element changes h1/h2 even when the index multiset and the
/// iteration multiset are individually unchanged.
struct PDAccessSummary {
  std::uint64_t w_h0 = 0, w_h1 = 0, w_h2 = 0;  ///< write moment hashes
  std::uint64_t r_h0 = 0, r_h1 = 0, r_h2 = 0;  ///< exposed-read moment hashes
  long writes = 0;         ///< write marks folded in
  long exposed_reads = 0;  ///< exposed-read marks folded in
  std::size_t min_idx = std::numeric_limits<std::size_t>::max();
  std::size_t max_idx = 0;

  void note_write(long iter, std::size_t idx) noexcept {
    const std::uint64_t m = mix64(static_cast<std::uint64_t>(idx) +
                                  0x9E3779B97F4A7C15ull);
    const std::uint64_t t = static_cast<std::uint64_t>(iter) + 1;
    w_h0 += m;
    w_h1 += m * t;
    w_h2 += m * t * t;
    ++writes;
    if (idx < min_idx) min_idx = idx;
    if (idx > max_idx) max_idx = idx;
  }

  void note_exposed_read(long iter, std::size_t idx) noexcept {
    const std::uint64_t m = mix64(static_cast<std::uint64_t>(idx) +
                                  0xC2B2AE3D27D4EB4Full);
    const std::uint64_t t = static_cast<std::uint64_t>(iter) + 1;
    r_h0 += m;
    r_h1 += m * t;
    r_h2 += m * t * t;
    ++exposed_reads;
    if (idx < min_idx) min_idx = idx;
    if (idx > max_idx) max_idx = idx;
  }

  void merge(const PDAccessSummary& o) noexcept {
    w_h0 += o.w_h0;
    w_h1 += o.w_h1;
    w_h2 += o.w_h2;
    r_h0 += o.r_h0;
    r_h1 += o.r_h1;
    r_h2 += o.r_h2;
    writes += o.writes;
    exposed_reads += o.exposed_reads;
    min_idx = std::min(min_idx, o.min_idx);
    max_idx = std::max(max_idx, o.max_idx);
  }

  void clear() noexcept { *this = PDAccessSummary{}; }

  long marks() const noexcept { return writes + exposed_reads; }
};

/// Outcome of the PD test's post-execution analysis.
struct PDVerdict {
  long written_elements = 0;  ///< distinct elements written by valid iterations
  long multi_written = 0;     ///< elements written in >= 2 distinct valid iterations
  long exposed_read_elements = 0;
  long conflicts = 0;  ///< elements both written and exposed-read

  /// Loop was fully parallel as executed (no cross-iteration dependences).
  bool fully_parallel() const noexcept { return conflicts == 0 && multi_written == 0; }
  /// Loop is valid as a privatized DOALL (output deps removable).
  bool parallel_with_privatization() const noexcept { return conflicts == 0; }

  PDVerdict& merge(const PDVerdict& o) noexcept {
    written_elements += o.written_elements;
    multi_written += o.multi_written;
    exposed_read_elements += o.exposed_read_elements;
    conflicts += o.conflicts;
    return *this;
  }
};

/// Bookkeeping counters the allocation-regression tests assert on: how many
/// O(n) costs a shadow has actually paid.
struct PDShadowStats {
  long resets = 0;          ///< reset() calls
  long cell_sweeps = 0;     ///< O(n) full-cell sweeps performed by reset()
  long segment_allocs = 0;  ///< per-worker segment allocations (lazy)
};

/// The original shared-cell shadow: every mark does atomic loads plus a
/// striped spinlock on a cache line contended by all workers.  Retained
/// behind the policy switch as the A/B baseline and for vpn-less callers.
class PDSharedShadow {
 public:
  static constexpr const char* kPolicyName = "shared";

  explicit PDSharedShadow(std::size_t n);
  /// Uniform policy constructor (the worker count is irrelevant here).
  PDSharedShadow(std::size_t n, unsigned /*workers*/) : PDSharedShadow(n) {}

  PDSharedShadow(const PDSharedShadow&) = delete;
  PDSharedShadow& operator=(const PDSharedShadow&) = delete;

  std::size_t size() const noexcept { return cells_.size(); }

  /// Mark a write to element `idx` by iteration `iter`.
  void mark_write(long iter, std::size_t idx) noexcept;

  /// Mark an exposed read (no earlier same-iteration write) of `idx`.
  void mark_exposed_read(long iter, std::size_t idx) noexcept;

  /// Uniform marking API: the shared store ignores the worker id.
  void mark_write(unsigned /*vpn*/, long iter, std::size_t idx) noexcept {
    mark_write(iter, idx);
  }
  void mark_exposed_read(unsigned /*vpn*/, long iter, std::size_t idx) noexcept {
    mark_exposed_read(iter, idx);
  }

  /// Worker-bound marking view (uniform policy API).  The shared store has
  /// no per-worker state to cache, so this just forwards.
  class Marker {
   public:
    Marker() = default;
    void mark_write(long iter, std::size_t idx) noexcept {
      shadow_->mark_write(iter, idx);
    }
    void mark_exposed_read(long iter, std::size_t idx) noexcept {
      shadow_->mark_exposed_read(iter, idx);
    }
    void rebind() noexcept {}

   private:
    friend class PDSharedShadow;
    explicit Marker(PDSharedShadow* s) noexcept : shadow_(s) {}
    PDSharedShadow* shadow_ = nullptr;
  };
  Marker marker(unsigned /*vpn*/) noexcept { return Marker(this); }

  /// Post-execution analysis considering only iterations < trip.
  PDVerdict analyze(ThreadPool& pool, long trip) const;
  PDVerdict analyze_seq(long trip) const;

  /// Clear all marks (reuse across strips / runs).  O(n) sweep — the cost
  /// the privatized policy's epoch bump exists to remove.
  void reset() noexcept;

  /// Diagnostic accessors (tests).
  long first_writer(std::size_t idx) const noexcept;
  long second_writer(std::size_t idx) const noexcept;
  long first_exposed_reader(std::size_t idx) const noexcept;
  long second_exposed_reader(std::size_t idx) const noexcept;

  PDShadowStats stats() const noexcept { return stats_; }

 private:
  static constexpr long kNone = -1;

  /// Two smallest distinct iteration numbers, CAS-free under a stripe lock.
  struct TwoSmallest {
    std::atomic<long> lo{kNone};
    std::atomic<long> hi{kNone};
  };
  struct Cell {
    TwoSmallest w;  ///< writer iterations
    TwoSmallest r;  ///< exposed-read iterations
  };

  void insert(TwoSmallest& set, long iter, std::size_t idx) noexcept;

  PDVerdict analyze_cell(const Cell& c, long trip) const noexcept;

  void lock_stripe(std::size_t idx) noexcept;
  void unlock_stripe(std::size_t idx) noexcept;

  std::vector<Cell> cells_;
  PDShadowStats stats_;
  static constexpr std::size_t kStripes = 1024;
  mutable std::array<std::atomic_flag, kStripes> locks_{};
};

/// The privatized shadow: worker `vpn` marks into its own segment with
/// plain stores; analyze() merges segments cell-wise under the current
/// epoch.  Segments are allocated lazily on a worker's first mark — from
/// mem::worker_arena(vpn), so the allocation happens on the marking
/// worker's thread and first-touch places the segment's pages on that
/// worker's node; destroying the shadow returns the blocks to the same
/// arena for O(1) reuse by the next shadow of the same shape.  A
/// speculation that never runs the PD test — or runs on fewer workers than
/// the pool has — pays nothing for the idle segments.
///
/// Concurrency contract: marks for one vpn come from one thread at a time
/// (the pool hands each vpn share to exactly one thread), and analyze() /
/// reset() run only while no marking is in flight (the fork-join barrier
/// provides the happens-before edge).  That is exactly the contract the
/// speculative drivers already obey, and it is what lets the hot path be
/// synchronization-free.
class PDPrivateShadow {
 public:
  static constexpr const char* kPolicyName = "privatized";

  /// Empty-cell sentinel: +infinity orders after every real iteration, so
  /// the merge and the `< trip` filters need no empty-checks.  (Marks with
  /// iter == LONG_MAX are not representable; no caller produces them.)
  static constexpr long kEmpty = std::numeric_limits<long>::max();

  explicit PDPrivateShadow(std::size_t n, unsigned workers = 1)
      : n_(n), segs_(workers == 0 ? 1 : workers) {}

  PDPrivateShadow(const PDPrivateShadow&) = delete;
  PDPrivateShadow& operator=(const PDPrivateShadow&) = delete;

  std::size_t size() const noexcept { return n_; }
  unsigned workers() const noexcept { return static_cast<unsigned>(segs_.size()); }

  void mark_write(unsigned vpn, long iter, std::size_t idx) noexcept {
    marker(vpn).mark_write(iter, idx);
  }

  void mark_exposed_read(unsigned vpn, long iter, std::size_t idx) noexcept {
    marker(vpn).mark_exposed_read(iter, idx);
  }

  /// Single-threaded convenience (tests, sequential probes): worker 0.
  void mark_write(long iter, std::size_t idx) noexcept { mark_write(0, iter, idx); }
  void mark_exposed_read(long iter, std::size_t idx) noexcept {
    mark_exposed_read(0, iter, idx);
  }

 private:
  struct PrivCell;  // defined below; Markers hold raw pointers to them
  struct Segment;

 public:
  /// Worker-bound marking view: caches the segment's raw cell/gen pointers
  /// and the epoch stamp, so the per-mark path is one dense-gen compare
  /// plus plain stores — no segs_ vector walk, no unique_ptr deref, and
  /// nothing the optimizer must conservatively reload per call.
  ///
  /// A Marker is INVALIDATED by reset(): marks made through a stale view
  /// would carry the old epoch and be silently ignored by analyze().  Call
  /// rebind() after every shadow reset (PDAccessorT::reset() does; every
  /// driver resets the shadow before its accessors).
  class Marker {
   public:
    Marker() = default;

    void mark_write(long iter, std::size_t idx) noexcept {
      if (cells_ == nullptr) bind();  // cold: first mark through this view
      if (sum_ != nullptr) sum_->note_write(iter, idx);
      PrivCell& c = cells_[idx];
      if (gens_[idx] != epoch_) {  // first mark since reset: fused init
        gens_[idx] = epoch_;
        c.w0 = iter;
        c.w1 = c.r0 = c.r1 = kEmpty;
        return;
      }
      insert2(c.w0, c.w1, iter);
    }

    void mark_exposed_read(long iter, std::size_t idx) noexcept {
      if (cells_ == nullptr) bind();  // cold: first mark through this view
      if (sum_ != nullptr) sum_->note_exposed_read(iter, idx);
      PrivCell& c = cells_[idx];
      if (gens_[idx] != epoch_) {  // first mark since reset: fused init
        gens_[idx] = epoch_;
        c.r0 = iter;
        c.w0 = c.w1 = c.r1 = kEmpty;
        return;
      }
      insert2(c.r0, c.r1, iter);
    }

    /// Drop the cached epoch/pointers; the next mark re-snapshots them.
    void rebind() noexcept { cells_ = nullptr; }

   private:
    friend class PDPrivateShadow;
    Marker(PDPrivateShadow* s, unsigned vpn) noexcept
        : shadow_(s), vpn_(vpn) {}

    void bind() noexcept {
      Segment* seg = shadow_->segs_[vpn_].get();
      if (seg == nullptr) seg = shadow_->allocate_segment(vpn_);
      cells_ = seg->cells;
      gens_ = seg->gens;
      epoch_ = shadow_->epoch_.value();
      sum_ = shadow_->signatures_enabled_ ? &seg->summary : nullptr;
    }

    PDPrivateShadow* shadow_ = nullptr;
    unsigned vpn_ = 0;
    PrivCell* cells_ = nullptr;
    std::uint32_t* gens_ = nullptr;
    PDAccessSummary* sum_ = nullptr;  ///< null when signatures are disabled
    std::uint32_t epoch_ = 0;
  };

  Marker marker(unsigned vpn) noexcept { return Marker(this, vpn); }

  /// Post-execution analysis considering only iterations < trip: merges the
  /// per-worker two-smallest sets cell-block-wise (branch-light min/compare
  /// kernel) and folds the verdicts — O(n·s/p) where s is the number of
  /// segments actually marked into.
  PDVerdict analyze(ThreadPool& pool, long trip) const;
  PDVerdict analyze_seq(long trip) const;

  /// Signature-emit mode: the same analysis, but also folds the per-worker
  /// access summaries into `*sum` (O(workers), no extra cell pass) so the
  /// caller can memoize the verdict under the pattern's signature.
  PDVerdict analyze(ThreadPool& pool, long trip, PDAccessSummary* sum) const {
    if (sum != nullptr) *sum = access_summary();
    return analyze(pool, trip);
  }

  /// Opt in to per-mark summary accumulation (wlp::pdcache).  Off by
  /// default: the cache-off marking hot path pays only one predictable
  /// null check.  Flip only while no marking is in flight; markers pick the
  /// change up at their next rebind.
  void enable_signatures(bool on) noexcept {
    signatures_enabled_ = on;
    clear_summaries();
  }
  bool signatures_enabled() const noexcept { return signatures_enabled_; }

  /// Fold the per-worker summaries (marks since the last reset).  Valid
  /// only after the fork-join barrier, like analyze().
  PDAccessSummary access_summary() const noexcept {
    PDAccessSummary sum;
    for (const auto& seg : segs_)
      if (seg != nullptr) sum.merge(seg->summary);
    return sum;
  }

  /// O(1): stale-epoch cells are ignored at merge time and lazily
  /// re-initialized on their next mark.  No sweep, independent of n.
  /// (One sweep per 2^32 resets when the 32-bit stamp wraps; see
  /// sweep_generations.)  With signatures enabled the per-worker summaries
  /// are cleared too — O(workers), not O(n).
  void reset() noexcept {
    epoch_.bump([this] { sweep_generations(); });
    if (signatures_enabled_) clear_summaries();
    WLP_OBS_COUNT("wlp.pd.resets", 1);
  }

  /// Diagnostic accessors (tests): merged across segments, -1 = none.
  long first_writer(std::size_t idx) const noexcept;
  long second_writer(std::size_t idx) const noexcept;
  long first_exposed_reader(std::size_t idx) const noexcept;
  long second_exposed_reader(std::size_t idx) const noexcept;

  PDShadowStats stats() const noexcept {
    PDShadowStats s;
    s.resets = epoch_.resets();
    s.cell_sweeps = epoch_.sweeps();  // 0 until the 32-bit stamp wraps
    s.segment_allocs = segment_allocs_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// One worker's view of one element.  Plain (non-atomic) fields: only the
  /// owning worker writes them, and the fork-join barrier publishes them to
  /// the analysis.  Exactly half a cache line, so a cell never straddles
  /// two lines; the generation stamps live in a separate dense array
  /// (struct-of-arrays) so the analysis can skip a stale cell from a 16x
  /// denser scan without streaming its payload.
  struct PrivCell {
    long w0, w1;  ///< two smallest distinct writer iterations
    long r0, r1;  ///< two smallest distinct exposed-read iterations
  };
  struct Segment {
    // Storage comes from mem::worker_arena(vpn), carved on the owning
    // worker's thread (first touch = right node).  Arena blocks are
    // recycled, NOT OS-zeroed, so the constructor clears `gens` explicitly
    // — gen 0 is below any epoch (epochs start at 1), making every cell
    // stale.  `cells` stays uninitialized: a cell is only read under a
    // current-epoch gen, and the first mark of an epoch fully writes it.
    Segment(std::size_t n, unsigned vpn);
    ~Segment();
    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;
    PrivCell* cells = nullptr;
    std::uint32_t* gens = nullptr;  ///< epoch each cell's marks belong to
    PDAccessSummary summary;  ///< marks since last reset (signature mode)
    std::size_t n = 0;
    unsigned vpn = 0;
  };

  /// Insert into a two-smallest set held as (lo <= hi, kEmpty-padded).
  static void insert2(long& lo, long& hi, long iter) noexcept {
    if (iter == lo || iter == hi) return;
    if (iter < lo) {
      hi = lo;
      lo = iter;
    } else if (iter < hi) {
      hi = iter;
    }
  }

  /// Merge two two-smallest sets: (lo, hi) <- two smallest distinct of the
  /// union {lo, hi, b0, b1}.  Exact because each side already holds its two
  /// smallest distinct values (the semilattice property).
  static void merge2(long& lo, long& hi, long b0, long b1) noexcept {
    if (b0 < lo) {
      hi = b1 < lo ? b1 : lo;
      lo = b0;
    } else if (b0 > lo) {
      hi = b0 < hi ? b0 : hi;
    } else {  // equal minima: deduplicate
      hi = b1 < hi ? b1 : hi;
    }
  }

  Segment* allocate_segment(unsigned vpn);
  void sweep_generations() noexcept;  ///< 32-bit stamp wrap: one sweep per 2^32 resets

  void clear_summaries() noexcept {
    for (auto& seg : segs_)
      if (seg != nullptr) seg->summary.clear();
  }

  struct Merged {
    long w0 = kEmpty, w1 = kEmpty, r0 = kEmpty, r1 = kEmpty;
  };
  Merged merged_cell(std::size_t idx) const noexcept;

  static PDVerdict verdict_of(const Merged& m, long trip) noexcept {
    PDVerdict v;
    const bool written = m.w0 < trip;  // kEmpty orders after every trip
    const bool multi_w = m.w1 < trip;
    const bool exposed = m.r0 < trip;
    const bool multi_r = m.r1 < trip;
    v.written_elements = written ? 1 : 0;
    v.multi_written = multi_w ? 1 : 0;
    v.exposed_read_elements = exposed ? 1 : 0;
    // Cross-iteration flow/anti dependence: a writer and an exposed reader
    // in DIFFERENT iterations (exact with two-smallest sets; see header).
    v.conflicts = (written && exposed && (multi_w || multi_r || m.w0 != m.r0))
                      ? 1
                      : 0;
    return v;
  }

  std::size_t n_ = 0;
  mem::EpochClock epoch_;  ///< current generation; 0 is reserved for "never"
  // One slot per worker; each Segment is its own arena block, so two
  // workers' hot cells can only share a cache line at segment boundaries,
  // never in the middle of the marking range.
  std::vector<std::unique_ptr<Segment>> segs_;
  std::atomic<long> segment_allocs_{0};  ///< workers allocate concurrently
  bool signatures_enabled_ = false;      ///< per-mark summary accumulation
};

/// Per-worker access recorder: decides read exposure using a worker-local
/// last-writer table, then forwards marks to the shadow under the worker's
/// id.  One accessor per (array, worker); call begin_iteration before each
/// iteration's accesses.
///
/// The last-writer table is generation-stamped exactly like the privatized
/// shadow's cells: reset() is an O(1) bump that invalidates every entry, so
/// reusing the accessor across strips, run-twice passes and sliding-window
/// retries costs neither an allocation nor an O(n) refill.  (The one O(n)
/// zero-fill happens at construction; fills() lets tests assert it stays 1.)
template <class Shadow>
class PDAccessorT {
 public:
  PDAccessorT(Shadow& shadow, std::size_t n, unsigned vpn = 0)
      : shadow_(&shadow), marker_(shadow.marker(vpn)), vpn_(vpn),
        lw_iter_(n, 0), lw_gen_(n, 0) {}

  /// O(1): invalidate all last-write entries and the mark counter for a
  /// fresh run.  Pairs with Shadow::reset() — every driver resets the
  /// shadow first, so the marker re-snapshots the new epoch here.
  void reset() noexcept {
    marks_ = 0;
    marker_.rebind();
    if (++gen_ == 0) {  // 2^32 resets: clear so stale stamps cannot alias
      std::fill(lw_gen_.begin(), lw_gen_.end(), 0u);
      ++fills_;
      gen_ = 1;
    }
  }

  void begin_iteration(long iter) noexcept { iter_ = iter; }

  void on_read(std::size_t idx) {
    if (lw_gen_[idx] == gen_ && lw_iter_[idx] == iter_) return;  // covered
    ++marks_;
    marker_.mark_exposed_read(iter_, idx);
  }

  void on_write(std::size_t idx) {
    lw_gen_[idx] = gen_;
    lw_iter_[idx] = iter_;
    ++marks_;
    marker_.mark_write(iter_, idx);
  }

  long iteration() const noexcept { return iter_; }
  unsigned vpn() const noexcept { return vpn_; }

  /// Marks forwarded to the shadow since the last reset() — the measured
  /// per-run instrumentation tax the cost model consumes (ExecReport::
  /// shadow_marks, LoopStatistics::marks_per_iteration).
  long marks() const noexcept { return marks_; }

  /// O(n) fills performed over the accessor's lifetime (1 = construction
  /// only; the allocation-regression tests assert resets never add more).
  long fills() const noexcept { return fills_; }

 private:
  Shadow* shadow_;
  typename Shadow::Marker marker_;
  unsigned vpn_ = 0;
  long iter_ = -1;
  long marks_ = 0;
  long fills_ = 1;  ///< the construction-time zero-fill below
  std::uint32_t gen_ = 1;
  std::vector<long> lw_iter_;
  std::vector<std::uint32_t> lw_gen_;
};

/// Historical names: the shared policy, which is what these spelled before
/// the privatized store existed.
using PDShadow = PDSharedShadow;
using PDAccessor = PDAccessorT<PDSharedShadow>;
using PDPrivateAccessor = PDAccessorT<PDPrivateShadow>;

}  // namespace wlp
