// Shadow arrays for the PRIVATIZING DOALL (PD) test — Section 5.1.
//
// For each shared array whose accesses cannot be analyzed at compile time,
// the speculative parallel execution traverses shadow state using the
// array's own access pattern:
//   * every write to element e marks e's write shadow (Aw),
//   * every read that is NOT preceded by a same-iteration write marks e's
//     exposed-read shadow (Ar) — exposed reads are what invalidate both
//     independence and privatization.
//
// To support WHILE-loop overshoot (Section 5: "all writes to the shadow
// arrays ... will be time-stamped, and for each shadow element we will
// maintain the minimum iteration that marked it"), each cell keeps the TWO
// smallest distinct writer iterations (w0 < w1) and the two smallest
// distinct exposed-read iterations (r0 < r1).  The post-execution analysis
// filters marks made by iterations >= the last valid iteration:
//   written          iff w0 < trip
//   multiply written iff w1 < trip        (output dependence -> privatize)
//   exposed-read     iff r0 < trip
//
// A cross-iteration flow/anti dependence (a *conflict*) exists iff some
// iteration writes the element and a DIFFERENT iteration exposed-reads it.
// With the two-smallest sets that is decidable exactly:
//   conflict iff written && exposed && (w1 < trip || r1 < trip || w0 != r0)
// — a same-iteration read-then-write like A[i] = 2*A[i] (the paper's
// Fig. 5(a)) leaves w0 == r0 as the only marks and correctly passes.
//
// The analysis itself is fully parallel, O(n/p + log p).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <vector>

#include "wlp/sched/thread_pool.hpp"

namespace wlp {

/// Outcome of the PD test's post-execution analysis.
struct PDVerdict {
  long written_elements = 0;  ///< distinct elements written by valid iterations
  long multi_written = 0;     ///< elements written in >= 2 distinct valid iterations
  long exposed_read_elements = 0;
  long conflicts = 0;  ///< elements both written and exposed-read

  /// Loop was fully parallel as executed (no cross-iteration dependences).
  bool fully_parallel() const noexcept { return conflicts == 0 && multi_written == 0; }
  /// Loop is valid as a privatized DOALL (output deps removable).
  bool parallel_with_privatization() const noexcept { return conflicts == 0; }

  PDVerdict& merge(const PDVerdict& o) noexcept {
    written_elements += o.written_elements;
    multi_written += o.multi_written;
    exposed_read_elements += o.exposed_read_elements;
    conflicts += o.conflicts;
    return *this;
  }
};

class PDShadow {
 public:
  explicit PDShadow(std::size_t n);

  PDShadow(const PDShadow&) = delete;
  PDShadow& operator=(const PDShadow&) = delete;

  std::size_t size() const noexcept { return cells_.size(); }

  /// Mark a write to element `idx` by iteration `iter`.
  void mark_write(long iter, std::size_t idx) noexcept;

  /// Mark an exposed read (no earlier same-iteration write) of `idx`.
  void mark_exposed_read(long iter, std::size_t idx) noexcept;

  /// Post-execution analysis considering only iterations < trip.
  PDVerdict analyze(ThreadPool& pool, long trip) const;
  PDVerdict analyze_seq(long trip) const;

  /// Clear all marks (reuse across strips / runs).
  void reset() noexcept;

  /// Diagnostic accessors (tests).
  long first_writer(std::size_t idx) const noexcept;
  long second_writer(std::size_t idx) const noexcept;
  long first_exposed_reader(std::size_t idx) const noexcept;
  long second_exposed_reader(std::size_t idx) const noexcept;

 private:
  static constexpr long kNone = -1;

  /// Two smallest distinct iteration numbers, CAS-free under a stripe lock.
  struct TwoSmallest {
    std::atomic<long> lo{kNone};
    std::atomic<long> hi{kNone};
  };
  struct Cell {
    TwoSmallest w;  ///< writer iterations
    TwoSmallest r;  ///< exposed-read iterations
  };

  void insert(TwoSmallest& set, long iter, std::size_t idx) noexcept;

  PDVerdict analyze_cell(const Cell& c, long trip) const noexcept;

  void lock_stripe(std::size_t idx) noexcept;
  void unlock_stripe(std::size_t idx) noexcept;

  std::vector<Cell> cells_;
  static constexpr std::size_t kStripes = 1024;
  mutable std::array<std::atomic_flag, kStripes> locks_{};
};

/// Per-worker access recorder: decides read exposure using a worker-local
/// last-writer epoch array, then forwards marks to the shared shadow.
/// One accessor per (array, worker); call begin_iteration before each
/// iteration's accesses.
class PDAccessor {
 public:
  PDAccessor(PDShadow& shadow, std::size_t n)
      : shadow_(&shadow), last_write_(n, -1) {}

  void begin_iteration(long iter) noexcept { iter_ = iter; }

  void on_read(std::size_t idx) {
    if (last_write_[idx] != iter_) shadow_->mark_exposed_read(iter_, idx);
  }

  void on_write(std::size_t idx) {
    last_write_[idx] = iter_;
    shadow_->mark_write(iter_, idx);
  }

  long iteration() const noexcept { return iter_; }

 private:
  PDShadow* shadow_;
  long iter_ = -1;
  std::vector<long> last_write_;
};

}  // namespace wlp
