// The Wu & Lewis (ICPP 1990) baselines, as characterized in Sections 3.3
// and 10 of the paper.
//
//   * Distribute: a *sequential* pass evaluates the dispatcher and stores its
//     values in an array; the remainder then runs as a DOALL over that array.
//     ("naive loop distribution" — requires storage for every term and makes
//     the dispatcher a serial prologue.)
//   * Doacross: pipeline the loop; the dispatcher step of iteration i waits
//     for iteration i-1's step.  Never overshoots, but the pipeline depth
//     limits speedup to roughly Twork/Tnext when the recurrence is slow.
#pragma once

#include <algorithm>
#include <atomic>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/doacross.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/backoff.hpp"

namespace wlp {

/// Wu–Lewis loop distribution.  The sequential prologue walks the cursor
/// until `is_end` or `u`, recording every value; the remainder runs as a
/// DOALL over the recorded terms.  The RV case still works — exits inside
/// the DOALL are min-reduced — but the prologue has already paid for every
/// dispatcher term (the "superfluous values" cost Section 3.2/3.3 warns
/// about), which the report exposes via dispatcher_steps.
template <class Cursor, class Next, class End, class Body>
ExecReport while_wu_lewis_distribute(ThreadPool& pool, Cursor head, Next&& next,
                                     End&& is_end, Body&& body, long u) {
  std::vector<Cursor> terms;
  const long length = sequential_dispatcher_pass(
      terms, head, std::forward<Next>(next),
      [&](const Cursor& c) { return is_end(c); }, u);

  const QuitResult qr = doall_quit(
      pool, 0, length,
      [&](long i, unsigned vpn) { return body(i, terms[static_cast<std::size_t>(i)], vpn); },
      {});

  ExecReport r;
  r.method = Method::kWuLewisDistribute;
  r.trip = qr.trip;
  r.started = qr.started;
  r.overshot = std::max(0L, qr.started - qr.trip);
  r.dispatcher_steps = length;  // every term evaluated up front, serially
  return r;
}

/// Wu–Lewis DOACROSS pipelining.  The cursor step is the sequential phase;
/// the remainder is the parallel phase.  The RI terminator is evaluated in
/// program order inside the sequential phase, so the loop never overshoots
/// (and never exploits post-exit parallelism either).
template <class Cursor, class Next, class End, class Par>
ExecReport while_wu_lewis_doacross(ThreadPool& pool, Cursor head, Next&& next,
                                   End&& is_end, Par&& par, long u) {
  // ring[i % slots] is filled by the sequential phase of iteration i and
  // read by its parallel phase.  A pipeline-depth ring is NOT automatically
  // safe: the chain bounds *claimed-but-unretired* iterations to pool.size(),
  // but an intermediate iteration can retire while an older par() still
  // runs, letting seq(i + slots) claim — and overwrite ring[i % slots] —
  // before par(i) has read it (the intermittent TSan race on this line).
  // Per-slot tickets close the window: seq(i) may not refill slot i % slots
  // until par(i - slots) has copied the cursor out and advanced the ticket.
  //
  // No deadlock: a seq(i) ticket wait depends on par(i - slots), which
  // depends only on seq(i - slots) — an iteration at least `slots` claims
  // older that has already run (the chain executes sequential phases in
  // order).  Within an owner's helping batch the same holds: every
  // ticket-blocking par is from a prior batch and already free to run.
  const long depth = static_cast<long>(pool.size());
  std::vector<Cursor> ring(static_cast<std::size_t>(std::min(u, depth)));
  const long slots = static_cast<long>(ring.size());
  std::vector<std::atomic<long>> turn(ring.size());
  for (long k = 0; k < slots; ++k) turn[static_cast<std::size_t>(k)] = k;
  Cursor walker = head;

  const DoacrossResult dr = doacross_while(
      pool, u,
      [&](long i) {
        if (is_end(walker)) return false;
        const auto k = static_cast<std::size_t>(i % slots);
        Backoff bo;
        while (turn[k].load(std::memory_order_acquire) != i) bo.pause();
        ring[k] = walker;
        walker = next(walker);
        return true;
      },
      [&](long i, unsigned vpn) {
        const auto k = static_cast<std::size_t>(i % slots);
        Cursor c = ring[k];
        turn[k].store(i + slots, std::memory_order_release);
        par(i, c, vpn);
      });

  ExecReport r;
  r.method = Method::kWuLewisDoacross;
  r.trip = dr.trip;
  r.started = dr.trip;
  r.overshot = 0;
  r.dispatcher_steps = dr.trip;
  return r;
}

}  // namespace wlp
