// The Wu & Lewis (ICPP 1990) baselines, as characterized in Sections 3.3
// and 10 of the paper.
//
//   * Distribute: a *sequential* pass evaluates the dispatcher and stores its
//     values in an array; the remainder then runs as a DOALL over that array.
//     ("naive loop distribution" — requires storage for every term and makes
//     the dispatcher a serial prologue.)
//   * Doacross: pipeline the loop; the dispatcher step of iteration i waits
//     for iteration i-1's step.  Never overshoots, but the pipeline depth
//     limits speedup to roughly Twork/Tnext when the recurrence is slow.
#pragma once

#include <algorithm>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/doacross.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Wu–Lewis loop distribution.  The sequential prologue walks the cursor
/// until `is_end` or `u`, recording every value; the remainder runs as a
/// DOALL over the recorded terms.  The RV case still works — exits inside
/// the DOALL are min-reduced — but the prologue has already paid for every
/// dispatcher term (the "superfluous values" cost Section 3.2/3.3 warns
/// about), which the report exposes via dispatcher_steps.
template <class Cursor, class Next, class End, class Body>
ExecReport while_wu_lewis_distribute(ThreadPool& pool, Cursor head, Next&& next,
                                     End&& is_end, Body&& body, long u) {
  std::vector<Cursor> terms;
  const long length = sequential_dispatcher_pass(
      terms, head, std::forward<Next>(next),
      [&](const Cursor& c) { return is_end(c); }, u);

  const QuitResult qr = doall_quit(
      pool, 0, length,
      [&](long i, unsigned vpn) { return body(i, terms[static_cast<std::size_t>(i)], vpn); },
      {});

  ExecReport r;
  r.method = Method::kWuLewisDistribute;
  r.trip = qr.trip;
  r.started = qr.started;
  r.overshot = std::max(0L, qr.started - qr.trip);
  r.dispatcher_steps = length;  // every term evaluated up front, serially
  return r;
}

/// Wu–Lewis DOACROSS pipelining.  The cursor step is the sequential phase;
/// the remainder is the parallel phase.  The RI terminator is evaluated in
/// program order inside the sequential phase, so the loop never overshoots
/// (and never exploits post-exit parallelism either).
template <class Cursor, class Next, class End, class Par>
ExecReport while_wu_lewis_doacross(ThreadPool& pool, Cursor head, Next&& next,
                                   End&& is_end, Par&& par, long u) {
  // ring[i % depth] is filled by the sequential phase of iteration i and
  // read by its parallel phase.  A ring of pipeline-depth slots suffices:
  // at most pool.size() iterations are in flight at once (each virtual
  // processor holds one claimed iteration), so seq(i + depth) — which would
  // overwrite slot i — cannot start until par(i)'s iteration has retired.
  // The seed allocated a full O(u) vector here on every call.
  const long depth = static_cast<long>(pool.size());
  std::vector<Cursor> ring(static_cast<std::size_t>(std::min(u, depth)));
  const long slots = static_cast<long>(ring.size());
  Cursor walker = head;

  const DoacrossResult dr = doacross_while(
      pool, u,
      [&](long i) {
        if (is_end(walker)) return false;
        ring[static_cast<std::size_t>(i % slots)] = walker;
        walker = next(walker);
        return true;
      },
      [&](long i, unsigned vpn) {
        par(i, ring[static_cast<std::size_t>(i % slots)], vpn);
      });

  ExecReport r;
  r.method = Method::kWuLewisDoacross;
  r.trip = dr.trip;
  r.started = dr.trip;
  r.overshot = 0;
  r.dispatcher_steps = dr.trip;
  return r;
}

}  // namespace wlp
