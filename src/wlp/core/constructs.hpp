// The parallel-programming constructs the paper proposes (Sections 1/11):
// WHILE-DOALL, WHILE-DOACROSS and WHILE-DOANY — "WHILE loop counterparts
// for the existing constructs for parallel execution of DO loops".
//
// These are thin, named entry points over the runtime methods so that a
// manual parallelizer can write the paper's vocabulary directly:
//
//   while_doall(pool, u, body)        — speculative DOALL (ordered issue +
//                                       QUIT; undo is the caller's wrapper,
//                                       see speculative_while)
//   while_doacross(pool, u, seq, par) — pipelined execution, never
//                                       overshoots
//   while_doany(pool, u, body)        — order-insensitive, first acceptable
//                                       result wins, no undo
//                                       (defined in while_doany.hpp)
#pragma once

#include "wlp/core/report.hpp"
#include "wlp/core/while_doany.hpp"
#include "wlp/core/while_induction.hpp"
#include "wlp/sched/doacross.hpp"

namespace wlp {

/// WHILE-DOALL: all iterations independent (or speculatively treated as
/// such); the terminator is evaluated per iteration and min-reduced.
template <class Body>
ExecReport while_doall(ThreadPool& pool, long u, Body&& body,
                       DoallOptions opts = {}) {
  return while_induction2(pool, u, std::forward<Body>(body), opts);
}

/// WHILE-DOACROSS: `seq(i) -> bool` is the ordered phase (false = the
/// terminator held at iteration i); `par(i, vpn)` is the overlapped
/// remainder.  Never overshoots.
template <class Seq, class Par>
ExecReport while_doacross(ThreadPool& pool, long u, Seq&& seq, Par&& par) {
  const DoacrossResult dr =
      doacross_while(pool, u, std::forward<Seq>(seq), std::forward<Par>(par));
  ExecReport r;
  r.method = Method::kWuLewisDoacross;
  r.trip = dr.trip;
  r.started = dr.trip;
  return r;
}

// while_doany is declared in while_doany.hpp and included above.

}  // namespace wlp
