#include "wlp/core/shadow.hpp"

#include <algorithm>

#include "wlp/sched/reduce.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {

PDShadow::PDShadow(std::size_t n) : cells_(n) {}

void PDShadow::lock_stripe(std::size_t idx) noexcept {
  auto& f = locks_[mix64(idx) & (kStripes - 1)];
  while (f.test_and_set(std::memory_order_acquire)) {
  }
}

void PDShadow::unlock_stripe(std::size_t idx) noexcept {
  locks_[mix64(idx) & (kStripes - 1)].clear(std::memory_order_release);
}

void PDShadow::insert(TwoSmallest& set, long iter, std::size_t idx) noexcept {
  // Fast path: already recorded, or provably not among the two smallest.
  const long lo = set.lo.load(std::memory_order_acquire);
  if (lo == iter) return;
  const long hi = set.hi.load(std::memory_order_acquire);
  if (hi == iter) return;
  if (lo != kNone && hi != kNone && iter > hi) return;

  lock_stripe(idx);
  long a = set.lo.load(std::memory_order_relaxed);
  long b = set.hi.load(std::memory_order_relaxed);
  if (iter != a && iter != b) {
    if (a == kNone) {
      a = iter;
    } else if (iter < a) {
      b = a;
      a = iter;
    } else if (b == kNone || iter < b) {
      b = iter;
    }
    set.lo.store(a, std::memory_order_relaxed);
    set.hi.store(b, std::memory_order_relaxed);
  }
  unlock_stripe(idx);
}

void PDShadow::mark_write(long iter, std::size_t idx) noexcept {
  insert(cells_[idx].w, iter, idx);
}

void PDShadow::mark_exposed_read(long iter, std::size_t idx) noexcept {
  insert(cells_[idx].r, iter, idx);
}

PDVerdict PDShadow::analyze_cell(const Cell& c, long trip) const noexcept {
  PDVerdict v;
  const long w0 = c.w.lo.load(std::memory_order_relaxed);
  const long w1 = c.w.hi.load(std::memory_order_relaxed);
  const long r0 = c.r.lo.load(std::memory_order_relaxed);
  const long r1 = c.r.hi.load(std::memory_order_relaxed);
  const bool written = w0 != kNone && w0 < trip;
  const bool multi_w = w1 != kNone && w1 < trip;
  const bool exposed = r0 != kNone && r0 < trip;
  const bool multi_r = r1 != kNone && r1 < trip;
  v.written_elements = written ? 1 : 0;
  v.multi_written = multi_w ? 1 : 0;
  v.exposed_read_elements = exposed ? 1 : 0;
  // Cross-iteration flow/anti dependence: a writer and an exposed reader in
  // DIFFERENT iterations.  With two-smallest sets this is exact: if either
  // side has two distinct valid iterations, some pair differs; otherwise
  // compare the single writer to the single reader.
  const bool conflict =
      written && exposed && (multi_w || multi_r || w0 != r0);
  v.conflicts = conflict ? 1 : 0;
  return v;
}

PDVerdict PDShadow::analyze(ThreadPool& pool, long trip) const {
  return parallel_reduce(
      pool, 0, static_cast<long>(cells_.size()), PDVerdict{},
      [&](long i) { return analyze_cell(cells_[static_cast<std::size_t>(i)], trip); },
      [](PDVerdict a, const PDVerdict& b) { return a.merge(b); });
}

PDVerdict PDShadow::analyze_seq(long trip) const {
  PDVerdict v;
  for (const auto& c : cells_) v.merge(analyze_cell(c, trip));
  return v;
}

void PDShadow::reset() noexcept {
  for (auto& c : cells_) {
    c.w.lo.store(kNone, std::memory_order_relaxed);
    c.w.hi.store(kNone, std::memory_order_relaxed);
    c.r.lo.store(kNone, std::memory_order_relaxed);
    c.r.hi.store(kNone, std::memory_order_relaxed);
  }
}

long PDShadow::first_writer(std::size_t idx) const noexcept {
  return cells_[idx].w.lo.load(std::memory_order_relaxed);
}
long PDShadow::second_writer(std::size_t idx) const noexcept {
  return cells_[idx].w.hi.load(std::memory_order_relaxed);
}
long PDShadow::first_exposed_reader(std::size_t idx) const noexcept {
  return cells_[idx].r.lo.load(std::memory_order_relaxed);
}
long PDShadow::second_exposed_reader(std::size_t idx) const noexcept {
  return cells_[idx].r.hi.load(std::memory_order_relaxed);
}

}  // namespace wlp
