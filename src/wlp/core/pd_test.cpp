#include "wlp/core/shadow.hpp"

#include <algorithm>
#include <chrono>

#include "wlp/mem/arena.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/reduce.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {

// ---- PDSharedShadow ---------------------------------------------------------

PDSharedShadow::PDSharedShadow(std::size_t n) : cells_(n) {}

void PDSharedShadow::lock_stripe(std::size_t idx) noexcept {
  auto& f = locks_[mix64(idx) & (kStripes - 1)];
  while (f.test_and_set(std::memory_order_acquire)) {
  }
}

void PDSharedShadow::unlock_stripe(std::size_t idx) noexcept {
  locks_[mix64(idx) & (kStripes - 1)].clear(std::memory_order_release);
}

void PDSharedShadow::insert(TwoSmallest& set, long iter, std::size_t idx) noexcept {
  // Fast path: already recorded, or provably not among the two smallest.
  // The monotone-`hi` early exit is what makes in-order marking cheap: once
  // both slots are full, any later (larger) iteration bails on two loads.
  const long lo = set.lo.load(std::memory_order_acquire);
  if (lo == iter) return;
  const long hi = set.hi.load(std::memory_order_acquire);
  if (hi == iter) return;
  if (lo != kNone && hi != kNone && iter > hi) return;

  lock_stripe(idx);
  long a = set.lo.load(std::memory_order_relaxed);
  long b = set.hi.load(std::memory_order_relaxed);
  if (iter != a && iter != b) {
    if (a == kNone) {
      a = iter;
    } else if (iter < a) {
      b = a;
      a = iter;
    } else if (b == kNone || iter < b) {
      b = iter;
    }
    set.lo.store(a, std::memory_order_relaxed);
    set.hi.store(b, std::memory_order_relaxed);
  }
  unlock_stripe(idx);
}

void PDSharedShadow::mark_write(long iter, std::size_t idx) noexcept {
  insert(cells_[idx].w, iter, idx);
}

void PDSharedShadow::mark_exposed_read(long iter, std::size_t idx) noexcept {
  insert(cells_[idx].r, iter, idx);
}

PDVerdict PDSharedShadow::analyze_cell(const Cell& c, long trip) const noexcept {
  PDVerdict v;
  const long w0 = c.w.lo.load(std::memory_order_relaxed);
  const long w1 = c.w.hi.load(std::memory_order_relaxed);
  const long r0 = c.r.lo.load(std::memory_order_relaxed);
  const long r1 = c.r.hi.load(std::memory_order_relaxed);
  const bool written = w0 != kNone && w0 < trip;
  const bool multi_w = w1 != kNone && w1 < trip;
  const bool exposed = r0 != kNone && r0 < trip;
  const bool multi_r = r1 != kNone && r1 < trip;
  v.written_elements = written ? 1 : 0;
  v.multi_written = multi_w ? 1 : 0;
  v.exposed_read_elements = exposed ? 1 : 0;
  // Cross-iteration flow/anti dependence: a writer and an exposed reader in
  // DIFFERENT iterations.  With two-smallest sets this is exact: if either
  // side has two distinct valid iterations, some pair differs; otherwise
  // compare the single writer to the single reader.
  const bool conflict =
      written && exposed && (multi_w || multi_r || w0 != r0);
  v.conflicts = conflict ? 1 : 0;
  return v;
}

namespace {

using MergeClock = std::chrono::steady_clock;

/// Emit the merge-pass metrics shared by both policies' analyze().
inline void record_merge(MergeClock::time_point t0, std::size_t cells) {
#if defined(WLP_OBS_ENABLED)
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      MergeClock::now() - t0)
                      .count();
  WLP_OBS_HIST("wlp.pd.merge_ns", ns);
  WLP_OBS_COUNT("wlp.pd.merged_cells", cells);
#else
  (void)t0;
  (void)cells;
#endif
}

}  // namespace

PDVerdict PDSharedShadow::analyze(ThreadPool& pool, long trip) const {
  WLP_TRACE_SCOPE("pd.merge", cells_.size(), trip);
  const auto t0 = MergeClock::now();
  PDVerdict v = parallel_reduce(
      pool, 0, static_cast<long>(cells_.size()), PDVerdict{},
      [&](long i) { return analyze_cell(cells_[static_cast<std::size_t>(i)], trip); },
      [](PDVerdict a, const PDVerdict& b) { return a.merge(b); });
  record_merge(t0, cells_.size());
  return v;
}

PDVerdict PDSharedShadow::analyze_seq(long trip) const {
  PDVerdict v;
  for (const auto& c : cells_) v.merge(analyze_cell(c, trip));
  return v;
}

void PDSharedShadow::reset() noexcept {
  for (auto& c : cells_) {
    c.w.lo.store(kNone, std::memory_order_relaxed);
    c.w.hi.store(kNone, std::memory_order_relaxed);
    c.r.lo.store(kNone, std::memory_order_relaxed);
    c.r.hi.store(kNone, std::memory_order_relaxed);
  }
  ++stats_.resets;
  ++stats_.cell_sweeps;
  WLP_OBS_COUNT("wlp.pd.resets", 1);
}

long PDSharedShadow::first_writer(std::size_t idx) const noexcept {
  return cells_[idx].w.lo.load(std::memory_order_relaxed);
}
long PDSharedShadow::second_writer(std::size_t idx) const noexcept {
  return cells_[idx].w.hi.load(std::memory_order_relaxed);
}
long PDSharedShadow::first_exposed_reader(std::size_t idx) const noexcept {
  return cells_[idx].r.lo.load(std::memory_order_relaxed);
}
long PDSharedShadow::second_exposed_reader(std::size_t idx) const noexcept {
  return cells_[idx].r.hi.load(std::memory_order_relaxed);
}

// ---- PDPrivateShadow --------------------------------------------------------

PDPrivateShadow::Segment::Segment(std::size_t n_cells, unsigned owner)
    : n(n_cells), vpn(owner) {
  // Carved from the owning worker's arena ON the owning worker's thread
  // (this constructor only runs from the first-mark cold path), so first
  // touch lands the pages on that worker's node.  Arena memory is recycled
  // rather than OS-zeroed, so `gens` must be cleared here; gen 0 is stale
  // under every epoch.  `cells` is left raw — see the header.
  mem::Arena& arena = mem::worker_arena(owner);
  cells = arena.allocate_array<PrivCell>(n);
  gens = arena.allocate_array<std::uint32_t>(n);
  std::fill(gens, gens + n, 0u);
}

PDPrivateShadow::Segment::~Segment() {
  mem::Arena& arena = mem::worker_arena(vpn);
  arena.deallocate_array(cells, n);
  arena.deallocate_array(gens, n);
}

PDPrivateShadow::Segment* PDPrivateShadow::allocate_segment(unsigned vpn) {
  // Only the worker owning `vpn` reaches here, so the slot write is
  // unshared; the counter is atomic because several workers can be in
  // their own first-mark cold path at once.
  segs_[vpn] = std::make_unique<Segment>(n_, vpn);
  segment_allocs_.fetch_add(1, std::memory_order_relaxed);
  return segs_[vpn].get();
}

void PDPrivateShadow::sweep_generations() noexcept {
  // The 32-bit stamp wrapped (once per 2^32 resets): clear every gen array
  // so no surviving stamp can alias the restarted epoch counter.
  for (auto& seg : segs_)
    if (seg) std::fill(seg->gens, seg->gens + seg->n, 0u);
}

PDPrivateShadow::Merged PDPrivateShadow::merged_cell(std::size_t idx) const noexcept {
  Merged m;
  for (const auto& seg : segs_) {
    if (!seg) continue;
    if (seg->gens[idx] != epoch_.value()) continue;  // stale gen == unmarked
    const PrivCell& c = seg->cells[idx];
    merge2(m.w0, m.w1, c.w0, c.w1);
    merge2(m.r0, m.r1, c.r0, c.r1);
  }
  return m;
}

PDVerdict PDPrivateShadow::analyze(ThreadPool& pool, long trip) const {
  // Collect the segments that exist once, so the per-cell kernel is a tight
  // loop over base pointers: per cell it is s gen-compares plus, for live
  // cells only, 2 min-merges.  The gen scan streams the dense uint32 array
  // (16 stamps per cache line), so segments a worker never marked this
  // epoch cost a quarter-byte-per-cell read instead of a 32-byte payload.
  std::vector<const PrivCell*> bases;
  std::vector<const std::uint32_t*> gens;
  bases.reserve(segs_.size());
  gens.reserve(segs_.size());
  for (const auto& seg : segs_) {
    if (!seg) continue;
    bases.push_back(seg->cells);
    gens.push_back(seg->gens);
  }

  WLP_TRACE_SCOPE("pd.merge", n_, bases.size());
  const auto t0 = MergeClock::now();
  const std::uint32_t epoch = epoch_.value();
  PDVerdict v = parallel_reduce(
      pool, 0, static_cast<long>(n_), PDVerdict{},
      [&](long i) {
        const auto idx = static_cast<std::size_t>(i);
        Merged m;
        for (std::size_t s = 0; s < bases.size(); ++s) {
          if (gens[s][idx] != epoch) continue;
          const PrivCell& c = bases[s][idx];
          merge2(m.w0, m.w1, c.w0, c.w1);
          merge2(m.r0, m.r1, c.r0, c.r1);
        }
        return verdict_of(m, trip);
      },
      [](PDVerdict a, const PDVerdict& b) { return a.merge(b); });
  record_merge(t0, n_ * bases.size());
  return v;
}

PDVerdict PDPrivateShadow::analyze_seq(long trip) const {
  PDVerdict v;
  for (std::size_t i = 0; i < n_; ++i) v.merge(verdict_of(merged_cell(i), trip));
  return v;
}

long PDPrivateShadow::first_writer(std::size_t idx) const noexcept {
  const Merged m = merged_cell(idx);
  return m.w0 == kEmpty ? -1 : m.w0;
}
long PDPrivateShadow::second_writer(std::size_t idx) const noexcept {
  const Merged m = merged_cell(idx);
  return m.w1 == kEmpty ? -1 : m.w1;
}
long PDPrivateShadow::first_exposed_reader(std::size_t idx) const noexcept {
  const Merged m = merged_cell(idx);
  return m.r0 == kEmpty ? -1 : m.r0;
}
long PDPrivateShadow::second_exposed_reader(std::size_t idx) const noexcept {
  const Merged m = merged_cell(idx);
  return m.r1 == kEmpty ? -1 : m.r1;
}

}  // namespace wlp
