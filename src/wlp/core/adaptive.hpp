// Run-time adaptation — the paper's closing direction (Sections 7 and 11):
// "it would be useful to estimate the number of iterations in the loop
// using information such as branch statistics", and "our methods should
// make use of run-time collected information about the parallel/not
// parallel nature of the loop".
//
// LoopStatistics accumulates, across invocations of one loop site:
//   * observed trip counts              -> the n_i estimate and the
//                                          statistics-enhanced stamping
//                                          threshold of Section 8.1,
//   * speculation outcomes (pass/fail)  -> the empirical probability the
//                                          loop is parallel, feeding the
//                                          Section 7 go/no-go decision.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "wlp/obs/obs.hpp"
#include "wlp/core/cost_model.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/strategies.hpp"

namespace wlp {

class LoopStatistics {
 public:
  /// Record one completed execution of the loop site.
  void record(const ExecReport& r) {
    ++invocations_;
    trip_sum_ += r.trip;
    trip_max_ = std::max(trip_max_, r.trip);
    if (r.pd_tested) {
      ++speculations_;
      if (!r.pd_passed) ++failures_;
    }
    if (r.pd_tested) {
      // Measured instrumentation volume: feeds observed_profile()'s `a`.
      marks_sum_ += r.shadow_marks;
      marked_iters_ += std::max(r.started, r.trip);
    }
    if (r.used_checkpoint) {
      // Measured Tb/Ta of the batched backup layer: feeds the cost model's
      // measured_tb/measured_ta overrides instead of the O(a/p) worst case.
      ++undo_samples_;
      checkpoint_ns_sum_ += r.checkpoint_ns;
      undo_ns_sum_ += r.undo_ns;
    }
    // Verdict-cache activity: feeds the PD post-analysis discount in
    // observed_profile() (0 probes = no cache = no discount).
    verdict_probes_ += r.verdict_probes;
    verdict_hits_ += r.verdict_hits;
    WLP_OBS_HIST("wlp.adaptive.trip", r.trip);
  }

  /// Record an execution together with its measured wall time.  The
  /// per-iteration cost samples feed a running mean/variance (Welford), so
  /// the site's observed cost variability — not a compiler guess — drives
  /// the schedule choice in observed_schedule().
  void record_run(const ExecReport& r, double seconds) {
    record(r);
    const long iters = std::max(r.started, r.trip);
    if (iters <= 0 || seconds <= 0) return;
    const double cost = seconds / static_cast<double>(iters);
    ++cost_samples_;
    const double delta = cost - cost_mean_;
    cost_mean_ += delta / static_cast<double>(cost_samples_);
    cost_m2_ += delta * (cost - cost_mean_);
    WLP_OBS_HIST("wlp.adaptive.iter_ns",
                 static_cast<long>(cost * 1e9));
  }

  /// Also usable with plain trip observations (profiling runs).
  void record_trip(long trip) {
    ++invocations_;
    trip_sum_ += trip;
    trip_max_ = std::max(trip_max_, trip);
  }

  long invocations() const noexcept { return invocations_; }

  /// The n_i estimate of Section 8.1.
  long estimated_trip() const noexcept {
    return invocations_ > 0 ? trip_sum_ / invocations_ : 0;
  }

  /// Confidence in the estimate: how tight past trips were around the mean
  /// (1 = always identical; decreases as the max diverges from the mean).
  double confidence() const noexcept {
    if (invocations_ == 0 || trip_max_ == 0) return 0.0;
    return static_cast<double>(estimated_trip()) /
           static_cast<double>(trip_max_);
  }

  /// The statistics-enhanced stamping threshold: n'_i = confidence * n_i.
  StampThreshold stamp_threshold() const {
    return StampThreshold::from_estimate(estimated_trip(), confidence());
  }

  /// Coefficient of variation (stddev/mean) of the observed per-iteration
  /// cost across record_run() calls.  0 until two timed runs exist — i.e.
  /// "assume uniform" until the measurements say otherwise, which matches
  /// choose_schedule's treatment of iter_cost_cv = 0.
  double iter_cost_cv() const noexcept {
    if (cost_samples_ < 2 || cost_mean_ <= 0) return 0.0;
    const double var = cost_m2_ / static_cast<double>(cost_samples_ - 1);
    return std::sqrt(std::max(0.0, var)) / cost_mean_;
  }

  /// Pick the DOALL schedule for the next run of this site from what the
  /// site has actually exhibited: the observed mean trip (Section 8.1's n_i)
  /// and the observed per-iteration cost variability.
  DoallOptions observed_schedule(long upper_bound, unsigned p) const {
    return choose_schedule(upper_bound,
                           static_cast<double>(estimated_trip()),
                           iter_cost_cv(), p);
  }

  /// Shadow marks per executed iteration, measured across PD-tested runs
  /// (ExecReport::shadow_marks).  This is the paper's `a` expressed per
  /// iteration — but *observed*, so the accessor's last-writer filtering and
  /// the loop's real access pattern are already folded in.
  double marks_per_iteration() const noexcept {
    if (marked_iters_ <= 0) return 0.0;
    return static_cast<double>(marks_sum_) /
           static_cast<double>(marked_iters_);
  }

  /// Mean measured checkpoint (Tb) and undo/restore (Ta) wall time per
  /// checkpointed run, in seconds.  Negative when nothing was measured yet.
  double mean_checkpoint_seconds() const noexcept {
    return undo_samples_ > 0
               ? checkpoint_ns_sum_ / static_cast<double>(undo_samples_) * 1e-9
               : -1.0;
  }
  double mean_undo_seconds() const noexcept {
    return undo_samples_ > 0
               ? undo_ns_sum_ / static_cast<double>(undo_samples_) * 1e-9
               : -1.0;
  }

  /// Section 7 OverheadProfile built from what this site actually did:
  /// measured marks/iteration scaled by the trip estimate, plus — once a
  /// checkpointed run has been recorded — the MEASURED Tb/Ta, converted into
  /// the LoopTiming's units via `seconds_per_unit` (the wall time one
  /// LoopTiming unit represents; 0 keeps the a/p model terms).
  OverheadProfile observed_profile(bool pd_test = true, bool needs_undo = true,
                                   double access_cost = 1.0,
                                   double seconds_per_unit = 0.0) const {
    OverheadProfile o = observed_overheads(
        marks_per_iteration(), static_cast<double>(estimated_trip()), pd_test,
        needs_undo, access_cost, -1.0, -1.0, verdict_hit_rate());
    if (seconds_per_unit > 0 && undo_samples_ > 0) {
      o.measured_tb = mean_checkpoint_seconds() / seconds_per_unit;
      o.measured_ta = mean_undo_seconds() / seconds_per_unit;
    }
    return o;
  }

  /// Fraction of PD analyses the verdict cache served for this site, in
  /// [0, 1].  0 until a cache-attached run is recorded.
  double verdict_hit_rate() const noexcept {
    if (verdict_probes_ <= 0) return 0.0;
    return static_cast<double>(verdict_hits_) /
           static_cast<double>(verdict_probes_);
  }

  /// Empirical probability a speculation on this loop succeeds.
  double parallel_probability() const noexcept {
    if (speculations_ == 0) return 1.0;  // optimistic until contradicted
    return 1.0 - static_cast<double>(failures_) /
                     static_cast<double>(speculations_);
  }

  /// The go/no-go decision of Section 7, weighted by the failure history:
  /// expected speedup = P(parallel) * Spat + (1-P) * 1/(1 + slowdown).
  bool should_speculate(const Prediction& pred) const noexcept {
    return expected_speculative_speedup(pred, parallel_probability()) > 1.05;
  }

  /// Fully history-driven go/no-go: the prediction itself is built from the
  /// site's measured marks/iteration (observed_profile) rather than a
  /// compiler estimate of the access count, then weighted by the observed
  /// pass/fail record as above.
  bool should_speculate(const LoopTiming& t, unsigned p,
                        DispatcherParallelism dp) const {
    const Prediction pred = predict(t, observed_profile(), p, dp);
    return expected_speculative_speedup(pred, parallel_probability()) > 1.05;
  }

 private:
  long invocations_ = 0;
  long trip_sum_ = 0;
  long trip_max_ = 0;
  long speculations_ = 0;
  long failures_ = 0;
  long marks_sum_ = 0;
  long marked_iters_ = 0;
  long cost_samples_ = 0;
  double cost_mean_ = 0;
  double cost_m2_ = 0;
  long undo_samples_ = 0;
  double checkpoint_ns_sum_ = 0;
  double undo_ns_sum_ = 0;
  long verdict_probes_ = 0;
  long verdict_hits_ = 0;
};

}  // namespace wlp
