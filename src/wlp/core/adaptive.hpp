// Run-time adaptation — the paper's closing direction (Sections 7 and 11):
// "it would be useful to estimate the number of iterations in the loop
// using information such as branch statistics", and "our methods should
// make use of run-time collected information about the parallel/not
// parallel nature of the loop".
//
// LoopStatistics accumulates, across invocations of one loop site:
//   * observed trip counts              -> the n_i estimate and the
//                                          statistics-enhanced stamping
//                                          threshold of Section 8.1,
//   * speculation outcomes (pass/fail)  -> the empirical probability the
//                                          loop is parallel, feeding the
//                                          Section 7 go/no-go decision.
#pragma once

#include <algorithm>
#include <cstdint>

#include "wlp/core/cost_model.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/strategies.hpp"

namespace wlp {

class LoopStatistics {
 public:
  /// Record one completed execution of the loop site.
  void record(const ExecReport& r) {
    ++invocations_;
    trip_sum_ += r.trip;
    trip_max_ = std::max(trip_max_, r.trip);
    if (r.pd_tested) {
      ++speculations_;
      if (!r.pd_passed) ++failures_;
    }
  }

  /// Also usable with plain trip observations (profiling runs).
  void record_trip(long trip) {
    ++invocations_;
    trip_sum_ += trip;
    trip_max_ = std::max(trip_max_, trip);
  }

  long invocations() const noexcept { return invocations_; }

  /// The n_i estimate of Section 8.1.
  long estimated_trip() const noexcept {
    return invocations_ > 0 ? trip_sum_ / invocations_ : 0;
  }

  /// Confidence in the estimate: how tight past trips were around the mean
  /// (1 = always identical; decreases as the max diverges from the mean).
  double confidence() const noexcept {
    if (invocations_ == 0 || trip_max_ == 0) return 0.0;
    return static_cast<double>(estimated_trip()) /
           static_cast<double>(trip_max_);
  }

  /// The statistics-enhanced stamping threshold: n'_i = confidence * n_i.
  StampThreshold stamp_threshold() const {
    return StampThreshold::from_estimate(estimated_trip(), confidence());
  }

  /// Empirical probability a speculation on this loop succeeds.
  double parallel_probability() const noexcept {
    if (speculations_ == 0) return 1.0;  // optimistic until contradicted
    return 1.0 - static_cast<double>(failures_) /
                     static_cast<double>(speculations_);
  }

  /// The go/no-go decision of Section 7, weighted by the failure history:
  /// expected speedup = P(parallel) * Spat + (1-P) * 1/(1 + slowdown).
  bool should_speculate(const Prediction& pred) const noexcept {
    const double p = parallel_probability();
    const double expected =
        p * pred.spat + (1.0 - p) / (1.0 + pred.failed_slowdown);
    return expected > 1.05;
  }

 private:
  long invocations_ = 0;
  long trip_sum_ = 0;
  long trip_max_ = 0;
  long speculations_ = 0;
  long failures_ = 0;
};

}  // namespace wlp
