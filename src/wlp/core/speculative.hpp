// Speculative parallel execution of WHILE loops with unknown cross-iteration
// dependences — Section 5.
//
// The compiler (or the user, through this API) cannot prove the remainder
// independent, so the loop runs speculatively as a DOALL with the PD test's
// shadow marking woven into every access.  After the run:
//   * the last valid iteration (trip) is recovered from the QUIT minima,
//   * the PD analysis — filtered by trip, so overshot iterations' marks are
//     ignored — decides whether the parallel execution was valid,
//   * on success, overshot writes are undone via the time-stamps,
//   * on failure (or an exception during the run, Section 5.1), all state is
//     restored from the checkpoint and the loop re-executes sequentially.
//
// All targets of one loop run under ONE SpecTransaction (txn.hpp): one
// fused checkpoint pass, one fused undo pass, one set of wlp.undo.* obs
// publications — regardless of how many arrays the loop speculates over.
// The SpecTarget interface itself lives in spec_target.hpp.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "wlp/obs/obs.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/shadow.hpp"
#include "wlp/core/spec_target.hpp"
#include "wlp/core/txn.hpp"
#include "wlp/core/versioned_array.hpp"
#include "wlp/pd/verdict_cache.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

/// A shared array under speculation: versioned data + (optionally) a PD
/// shadow with one accessor per worker.  Loop bodies use the vpn-qualified
/// get/set, which both maintain the stamps and drive the shadow marking.
///
/// `Shadow` selects the marking policy: `PDPrivateShadow` (default) marks
/// into per-worker private segments with plain stores and merges at analyze
/// time; `PDSharedShadow` is the old striped-lock shared structure, kept for
/// A/B comparison in benches.
template <class T, class Shadow = PDPrivateShadow>
class SpecArray final : public SpecTarget {
 public:
  /// `run_pd_test` = false means the accesses are statically analyzable
  /// (only time-stamping for undo is needed, no shadow marking) — the
  /// accessors (and their O(n) last-writer tables) are not even built.
  ///
  /// `shared` optionally aliases a trip-aligned sibling's StampIndex so a
  /// transaction over both keeps one stamp word per location (see the
  /// StampIndex class comment for the write-set contract this requires).
  SpecArray(std::vector<T> init, unsigned workers, bool run_pd_test,
            std::shared_ptr<StampIndex> shared = nullptr)
      : array_(std::move(init), std::move(shared)), pd_(run_pd_test),
        shadow_(array_.size(), workers) {
    if (pd_) {
      accessors_.reserve(workers);
      for (unsigned w = 0; w < workers; ++w)
        accessors_.emplace_back(shadow_, array_.size(), w);
    }
    writers_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
      writers_.emplace_back(array_.writer());
  }

  // ---- body-side API -----------------------------------------------------

  /// Must be called by the body at the top of every iteration, per worker.
  void begin_iteration(unsigned vpn, long iter) {
    if (pd_) accessors_[vpn].begin_iteration(iter);
  }

  T get(unsigned vpn, std::size_t idx) {
    if (pd_) accessors_[vpn].on_read(idx);
    return array_.get(idx);
  }

  void set(unsigned vpn, long iter, std::size_t idx, const T& v) {
    if (pd_) accessors_[vpn].on_write(idx);
    // Per-worker Writer view: consecutive writes into the same 64-element
    // block skip the dirty-summary publication entirely.
    writers_[static_cast<std::size_t>(vpn)].value.write(iter, idx, v);
  }

  // ---- sequential-side API (fallback path, verification) ------------------

  std::vector<T>& data() noexcept { return array_.data(); }
  const std::vector<T>& data() const noexcept { return array_.data(); }

  /// The stamp index, for constructing trip-aligned siblings over it.
  const std::shared_ptr<StampIndex>& shared_index() const noexcept {
    return array_.shared_index();
  }

  // ---- SpecTarget ----------------------------------------------------------

  void checkpoint(ThreadPool* pool) override { array_.checkpoint(pool); }
  long undo_beyond(long trip, ThreadPool* pool) override {
    return array_.undo_beyond(trip, pool);
  }
  void restore_all(ThreadPool* pool) override { array_.restore_all(pool); }
  bool shadowed() const override { return pd_; }
  PDVerdict analyze(ThreadPool& pool, long trip) const override {
    return shadow_.analyze(pool, trip);
  }
  void reset_marks() override {
    shadow_.reset();  // O(1) epoch bump for the privatized policy
    for (auto& a : accessors_) a.reset();
    array_.clear_stamps();  // O(1) epoch bump too
    // The Writers' cached blocks belong to the dead epoch: rebind so the
    // first write of the new run re-publishes its dirty bit.
    for (auto& w : writers_) w.value.rebind();
  }
  long marks() const override {
    long m = 0;
    for (const auto& a : accessors_) m += a.marks();
    return m;
  }
  std::size_t memory_bytes() const override { return array_.memory_bytes(); }
  void discard() override { array_.discard_checkpoint(); }

  // ---- verdict-cache hooks -------------------------------------------------
  // Compiled only for shadow policies with summary support (the privatized
  // one); the shared policy keeps the defaults and the cache bypasses it.

  void enable_access_signatures(bool on) override {
    if constexpr (requires(Shadow& s) { s.enable_signatures(on); }) {
      if (pd_) shadow_.enable_signatures(on);
    }
  }
  bool access_summary(PDAccessSummary* out) const override {
    if constexpr (requires(const Shadow& s) { s.access_summary(); }) {
      if (pd_ && shadow_.signatures_enabled()) {
        *out = shadow_.access_summary();
        return true;
      }
    }
    return false;
  }
  long dirty_block_count() const override {
    return array_.dirty_block_count();
  }

  // ---- fused-transaction hooks --------------------------------------------

  StampIndex* txn_index() noexcept override { return array_.index(); }
  std::size_t txn_checkpoint_begin() override {
    return array_.txn_checkpoint_begin();
  }
  void txn_checkpoint_span(std::size_t b, std::size_t e) override {
    array_.txn_checkpoint_span(b, e);
  }
  long txn_restore_span(std::size_t b, std::size_t e,
                        std::uint64_t threshold) override {
    return array_.restore_span(b, e, threshold);
  }
  void txn_restore_all_span(std::size_t b, std::size_t e) override {
    array_.txn_restore_all_span(b, e);
  }
  void txn_restore_all_done() override { array_.clear_stamps(); }

  UndoStats undo_stats() const { return array_.stats(); }

 private:
  VersionedArray<T> array_;
  bool pd_;
  Shadow shadow_;
  std::vector<PDAccessorT<Shadow>> accessors_;
  /// One dirty-block-caching write view per worker, cache-line padded (the
  /// cached block index mutates on nearly every write).
  std::vector<Padded<typename VersionedArray<T>::Writer>> writers_;
};

struct SpecOptions {
  DoallOptions doall{};
  bool undo_in_parallel = true;
  /// Memory budget for the transaction's measured footprint (0 = none).
  /// The strip driver adapts its strip length against it — halving the next
  /// strip when the fused memory_bytes() poll crosses half the budget,
  /// growing back additively while comfortable — so callers stop wiring
  /// per-target byte probes by hand; the drivers ask the transaction.
  std::size_t memory_budget = 0;
  /// Optional cross-strip verdict memoization (pd/verdict_cache.hpp).  The
  /// drivers enable signature accumulation on every target, consult the
  /// cache before each PD analysis, and invalidate it on misspeculation or
  /// a footprint flip.  nullptr = always run the full analysis.
  pdcache::VerdictCache* verdict_cache = nullptr;
};

/// Run a WHILE loop speculatively in parallel over [0, u).
///
/// `body(i, vpn) -> IterAction` is the instrumented parallel body: it must
/// route every access to the registered targets through their get/set and
/// call begin_iteration first.  `run_sequential() -> long` executes the loop
/// serially against the targets' raw data() and returns the trip count; it
/// is invoked only after a full restore when speculation fails.
template <class Body, class SeqRun>
ExecReport speculative_while(ThreadPool& pool, long u,
                             std::span<SpecTarget* const> targets, Body&& body,
                             SeqRun&& run_sequential, SpecOptions opts = {}) {
  ExecReport r;
  r.method = Method::kInduction2;
  r.used_checkpoint = true;
  r.used_stamps = true;
  WLP_TRACE_SCOPE("spec.round", u, targets.size());
  WLP_OBS_COUNT("wlp.spec.rounds", 1);

  if (opts.verdict_cache != nullptr)
    for (SpecTarget* t : targets) t->enable_access_signatures(true);

  SpecTransaction txn(targets);
  {
    WLP_TRACE_SCOPE("spec.checkpoint", u, 0);
    const auto cp0 = std::chrono::steady_clock::now();
    txn.begin(&pool);
    r.checkpoint_ns = detail::spec_ns_since(cp0);
  }

  bool failed = false;
  QuitResult qr{};
  try {
    qr = doall_quit(pool, 0, u, body, opts.doall);
  } catch (...) {
    // Section 5.1: treat exceptions like an invalid parallel execution.
    failed = true;
    WLP_OBS_COUNT("wlp.spec.exceptions", 1);
  }

  // Instrumentation volume for the cost model: accessors count marks in
  // plain per-worker counters during the run; fold them here, off the hot
  // path, regardless of whether the speculation succeeds.
  r.shadow_marks = txn.marks();
  WLP_OBS_COUNT("wlp.pd.marks", r.shadow_marks);
  // Backups are at their fullest right after the parallel section: one
  // fused poll is the run's measured peak (same signal the sliding-window
  // controller budgets against).
  r.peak_spec_bytes = txn.memory_bytes();

  // A sparse backup that hit capacity dropped writes: the parallel execution
  // is incomplete regardless of what the PD test would say.  Treat it like a
  // failed speculation (the backup still restores the exact pre-loop state,
  // because overflowing writers skipped their data store too).
  if (txn.overflowed()) {
    r.backup_overflow = true;
    failed = true;
    WLP_OBS_COUNT("wlp.spec.backup_overflow", 1);
  }

  if (!failed) {
    r.trip = qr.trip;
    r.started = qr.started;
    r.overshot = std::max(0L, qr.started - qr.trip);
    WLP_OBS_HIST("wlp.spec.overshoot", r.overshot);
    WLP_TRACE_SCOPE("pd.analyze", qr.trip, 0);
    for (SpecTarget* t : targets) {
      if (!t->shadowed()) continue;
      r.pd_tested = true;
      bool hit = false;
      const PDVerdict v = pdcache::analyze_with_cache(
          opts.verdict_cache, *t, pool, /*base=*/0, qr.trip, &hit);
      if (opts.verdict_cache != nullptr) {
        ++r.verdict_probes;
        if (hit) ++r.verdict_hits;
      }
      if (!v.fully_parallel()) {
        r.pd_passed = false;
        failed = true;
      }
    }
    if (r.pd_tested)
      WLP_OBS_COUNT(r.pd_passed ? "wlp.spec.pd_pass" : "wlp.spec.pd_fail", 1);
  }

  if (failed) {
    // Misspeculation: whatever the memoized patterns were, the loop's
    // behavior just diverged from them — drop the table.
    if (opts.verdict_cache != nullptr) opts.verdict_cache->invalidate_all();
    WLP_TRACE_SCOPE("spec.seq_reexec", u, 0);
    WLP_OBS_COUNT("wlp.spec.seq_reexec", 1);
    const auto ra0 = std::chrono::steady_clock::now();
    txn.restore_all(&pool);
    r.undo_ns = detail::spec_ns_since(ra0);
    r.reexecuted_sequentially = true;
    r.trip = run_sequential();
    return r;
  }

  {
    WLP_TRACE_SCOPE_NAMED(undo_scope, "undo", qr.trip, 0);
    const auto ud0 = std::chrono::steady_clock::now();
    r.undone_writes +=
        txn.undo_beyond(qr.trip, opts.undo_in_parallel ? &pool : nullptr);
    r.undo_ns = detail::spec_ns_since(ud0);
    undo_scope.args(static_cast<std::uint64_t>(qr.trip),
                    static_cast<std::uint64_t>(r.undone_writes));
  }
  WLP_OBS_HIST("wlp.spec.undo_writes", r.undone_writes);
  return r;
}

}  // namespace wlp
