// Multi-array speculation transactions — ISSUE 8 / DESIGN.md §9.
//
// A loop that speculates over several arrays used to pay k of everything
// per retry: k parallel checkpoint passes, k parallel undo passes (each
// with its own pool dispatch, prefetch warm-up and futex join), k stamp
// allocations and k obs publications.  SpecTransaction registers all of a
// loop's targets into ONE transaction that:
//
//   * runs ONE pool-parallel chunked checkpoint over the concatenated
//     element ranges of every member (one dispatch, one join, one
//     bandwidth-bound stream);
//   * runs ONE fused undo pass: the unit space concatenates every stamp
//     index's summary-word chunks and every sparse member's slot chunks,
//     so a mixed dense+hash transaction still costs one dispatch.  For a
//     SHARED index the dirty summary is walked once and each merged span
//     is dispatched to every aliasing member back-to-back — the stamp
//     words stay hot in L1 across members instead of being re-streamed
//     per array;
//   * publishes wlp.undo.{checkpoint_ns,restore_ns,blocks_dirty} once per
//     transaction operation, not once per target, so multi-array loops
//     stop inflating the histograms k-fold;
//   * falls back to the per-target virtuals for opaque targets (no
//     txn_index(), no sparse slots), so custom SpecTargets keep working
//     unchanged inside a transaction.
//
// Stamp sharing: trip-aligned members (same write set per iteration — see
// the StampIndex class comment for why that is the aliasing rule) can be
// constructed over one StampIndex; a 2-array loop then keeps ONE stamp
// word and ONE dirty bit per location instead of two, halving stamp
// memory.  The transaction discovers sharing by grouping members on their
// txn_index() pointer — no registration order or flags to get wrong.
//
// AdaptiveSpecArray is the per-array, per-retry backend picker the ROADMAP
// calls for: it owns BOTH a dense VersionedArray and a HashBackup and
// chooses between them at every reset from the measured touch density of
// the previous retry (cost_model::choose_backup, optionally corrected by
// measured Tb/Ta), retiring the static dense-vs-sparse plan flag.  A hash
// overflow permanently bans the hash side for that array — without
// disturbing sibling arrays in the same transaction.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wlp/core/cost_model.hpp"
#include "wlp/core/shadow.hpp"
#include "wlp/core/sparse_backup.hpp"
#include "wlp/core/spec_target.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/reduce.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

/// One transaction over all arrays speculated by one loop.  Construct it
/// ONCE per driver invocation (the strip driver keeps it across strips) —
/// the constructor precomputes the chunk maps, so begin()/undo_beyond()/
/// restore_all() allocate nothing in steady state.
class SpecTransaction : public FootprintListener {
 public:
  /// Elements per fused-checkpoint chunk (matches VersionedArray's
  /// internal checkpoint granularity).
  static constexpr std::size_t kCpChunk = 1u << 15;
  /// Summary words per fused-undo chunk (matches VersionedArray's
  /// internal undo granularity: 16 words = 32K elements).
  static constexpr std::size_t kWordChunk = 16;
  /// Hash slots per fused-undo chunk (matches HashBackup::undo_into).
  static constexpr std::size_t kSlotChunk = 1024;

  explicit SpecTransaction(std::span<SpecTarget* const> targets)
      : all_(targets.begin(), targets.end()) {
    for (SpecTarget* t : all_) {
      StampIndex* idx = t->txn_index();
      const std::size_t slots = t->txn_sparse_slots();
      if (idx != nullptr) {
        fused_.push_back(t);
        Group* g = nullptr;
        for (Group& have : groups_)
          if (have.index == idx) g = &have;
        if (g == nullptr) {
          groups_.push_back(Group{idx, {}});
          g = &groups_.back();
        } else {
          stamp_bytes_saved_ += idx->memory_bytes();
        }
        g->members.push_back(t);
      }
      if (slots != 0) sparse_.push_back(SparseEntry{t, slots});
      if (idx == nullptr && slots == 0) opaque_.push_back(t);
    }
    // Checkpoint chunk map: one contiguous range of chunk ids per fused
    // member (restore_all reuses the same map for the backup->data copies).
    cp_prefix_.push_back(0);
    for (SpecTarget* t : fused_) {
      const std::size_t n = t->txn_index()->size();
      cp_prefix_.push_back(cp_prefix_.back() +
                           static_cast<long>((n + kCpChunk - 1) / kCpChunk));
    }
    // Undo unit map: every group's summary-word chunks, then every sparse
    // member's slot chunks, in one flat unit space.
    undo_prefix_.push_back(0);
    for (const Group& g : groups_) {
      const std::size_t w = g.index->words();
      undo_prefix_.push_back(
          undo_prefix_.back() +
          static_cast<long>((w + kWordChunk - 1) / kWordChunk));
    }
    for (const SparseEntry& s : sparse_)
      undo_prefix_.push_back(
          undo_prefix_.back() +
          static_cast<long>((s.slots + kSlotChunk - 1) / kSlotChunk));
    // Footprint chain: every member reports its step jumps (backend flips)
    // to the transaction, which forwards ONE fused event to whoever
    // registered via set_footprint_listener (the window controller).
    for (SpecTarget* t : all_) t->set_footprint_listener(this);
  }

  ~SpecTransaction() override {
    for (SpecTarget* t : all_) t->set_footprint_listener(nullptr);
  }

  SpecTransaction(const SpecTransaction&) = delete;
  SpecTransaction& operator=(const SpecTransaction&) = delete;

  /// A member's footprint just step-changed: count it and forward the fused
  /// event.  Called from pool workers — lock-free, noexcept.
  void footprint_changed() noexcept override {
    footprint_epochs_.fetch_add(1, std::memory_order_relaxed);
    FootprintListener* l = listener_.load(std::memory_order_acquire);
    if (l != nullptr) l->footprint_changed();
  }

  /// Register the downstream listener (the sliding-window controller); null
  /// detaches.  The transaction stays registered with its members either
  /// way, so the epoch counter below keeps counting.
  void set_footprint_listener(FootprintListener* l) noexcept {
    listener_.store(l, std::memory_order_release);
  }

  /// Step-change notifications received since construction (tests pin the
  /// flip -> transaction -> controller chain on this).
  long footprint_epochs() const noexcept {
    return footprint_epochs_.load(std::memory_order_relaxed);
  }

  /// Reset every member's marks and take the fused checkpoint: one parallel
  /// pass over all members' element ranges (plus the legacy path for opaque
  /// targets).  Replaces the per-target reset+checkpoint driver loops.
  void begin(ThreadPool* pool) {
    for (SpecTarget* t : all_) t->reset_marks();
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t cp_elems = 0;
    for (SpecTarget* t : fused_) cp_elems += t->txn_checkpoint_begin();
    // Members with nothing to copy (e.g. an AdaptiveSpecArray on a hash
    // retry) report 0; when EVERY member does, skip the chunk dispatch
    // outright instead of running a pool pass of no-ops.
    const long nchunks = cp_elems == 0 ? 0 : cp_prefix_.back();
    if (pool != nullptr && nchunks > 1) {
      DoallOptions opts;
      opts.sched = Sched::kStaticBlock;
      doall(
          *pool, 0, nchunks,
          [&](long c, unsigned) { checkpoint_chunk(c); }, opts);
    } else {
      for (long c = 0; c < nchunks; ++c) checkpoint_chunk(c);
    }
    for (SpecTarget* t : opaque_) t->checkpoint(pool);
    [[maybe_unused]] const double ns = detail::spec_ns_since(t0);
    WLP_OBS_COUNT("wlp.txn.begins", 1);
    WLP_OBS_COUNT("wlp.txn.targets", static_cast<long>(all_.size()));
    WLP_OBS_COUNT("wlp.undo.checkpoint_ns", static_cast<long>(ns));
    if (stamp_bytes_saved_ != 0)
      WLP_OBS_GAUGE_SET("wlp.txn.stamp_bytes_saved",
                        static_cast<long>(stamp_bytes_saved_));
  }

  /// ONE fused parallel undo pass over every member: shared-index groups
  /// walk their dirty summary once and dispatch each merged span to every
  /// aliasing member; sparse members' slot chunks ride in the same unit
  /// space.  Returns total locations restored.
  long undo_beyond(long trip, ThreadPool* pool) {
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<long> blocks{0};
    const long nunits = undo_prefix_.back();
    long undone = 0;
    if (pool != nullptr && nunits > 1) {
      undone = parallel_sum<long>(*pool, 0, nunits, [&](long u) {
        return undo_unit(u, trip, blocks);
      });
    } else {
      for (long u = 0; u < nunits; ++u) undone += undo_unit(u, trip, blocks);
    }
    for (SpecTarget* t : opaque_) undone += t->undo_beyond(trip, pool);
    [[maybe_unused]] const double ns = detail::spec_ns_since(t0);
    WLP_OBS_COUNT("wlp.undo.restore_ns", static_cast<long>(ns));
    WLP_OBS_COUNT("wlp.undo.blocks_dirty",
                  blocks.load(std::memory_order_relaxed));
    WLP_OBS_HIST("wlp.txn.undone_writes", undone);
    return undone;
  }

  /// Fused full restore (failed speculation): every dense member's backup
  /// is copied back wholesale — stamps are NOT consulted, because targets
  /// writing below a stamp threshold (strategies.hpp) leave unstamped
  /// speculative writes — and every sparse member restores everything it
  /// recorded, all in one parallel pass.
  void restore_all(ThreadPool* pool) {
    const auto t0 = std::chrono::steady_clock::now();
    const long ncp = cp_prefix_.back();
    // Sparse slot chunks live after the group word chunks in the undo unit
    // space; reuse them with trip = -1 ("restore everything recorded").
    const long sparse_units =
        undo_prefix_.back() - undo_prefix_[static_cast<long>(groups_.size())];
    const long nunits = ncp + sparse_units;
    auto run_unit = [&](long u) {
      if (u < ncp) {
        restore_chunk(u);
        return;
      }
      std::atomic<long> unused{0};
      undo_unit(u - ncp + undo_prefix_[static_cast<long>(groups_.size())], -1,
                unused);
    };
    if (pool != nullptr && nunits > 1) {
      doall(*pool, 0, nunits, [&](long u, unsigned) { run_unit(u); });
    } else {
      for (long u = 0; u < nunits; ++u) run_unit(u);
    }
    for (SpecTarget* t : opaque_) t->restore_all(pool);
    // Every member (fused AND sparse) drops its spent undo state; the hook
    // defaults to a no-op, so opaque targets are unaffected.
    for (SpecTarget* t : all_) t->txn_restore_all_done();
    [[maybe_unused]] const double ns = detail::spec_ns_since(t0);
    WLP_OBS_COUNT("wlp.undo.restore_ns", static_cast<long>(ns));
    WLP_OBS_COUNT("wlp.txn.restore_all", 1);
  }

  /// Commit: drop every member's backup state (strip drivers, on a strip
  /// that ran to its end with no overshoot).
  void discard() {
    for (SpecTarget* t : all_) t->discard();
  }

  /// Bytes pinned by every member.  Members sharing a StampIndex charge its
  /// words once (the clearer member owns them), so this is safe to hand to
  /// the sliding-window budget controller as-is.
  std::size_t memory_bytes() const {
    std::size_t b = 0;
    for (const SpecTarget* t : all_) b += t->memory_bytes();
    return b;
  }

  bool overflowed() const {
    for (const SpecTarget* t : all_)
      if (t->overflowed()) return true;
    return false;
  }

  long marks() const {
    long m = 0;
    for (const SpecTarget* t : all_) m += t->marks();
    return m;
  }

  /// Shape introspection (tests and the microbench assert on these).
  std::size_t targets() const noexcept { return all_.size(); }
  std::size_t fused_targets() const noexcept { return fused_.size(); }
  std::size_t opaque_targets() const noexcept { return opaque_.size(); }
  std::size_t shared_groups() const noexcept { return groups_.size(); }
  /// Stamp bytes the index sharing avoided vs one private index per member.
  std::size_t stamp_bytes_saved() const noexcept { return stamp_bytes_saved_; }

 private:
  struct Group {
    StampIndex* index;
    std::vector<SpecTarget*> members;
  };
  struct SparseEntry {
    SpecTarget* target;
    std::size_t slots;
  };

  /// Map a flat chunk id to (member, element range) and copy live->backup.
  void checkpoint_chunk(long c) {
    const std::size_t m = locate(cp_prefix_, c);
    const std::size_t b =
        static_cast<std::size_t>(c - cp_prefix_[m]) * kCpChunk;
    const std::size_t n = fused_[m]->txn_index()->size();
    fused_[m]->txn_checkpoint_span(b, std::min(b + kCpChunk, n));
  }

  /// Same map, backup->data (fused full restore).
  void restore_chunk(long c) {
    const std::size_t m = locate(cp_prefix_, c);
    const std::size_t b =
        static_cast<std::size_t>(c - cp_prefix_[m]) * kCpChunk;
    const std::size_t n = fused_[m]->txn_index()->size();
    fused_[m]->txn_restore_all_span(b, std::min(b + kCpChunk, n));
  }

  /// One unit of the fused undo pass: a group's summary-word chunk (walk
  /// the shared dirty spans once, restore every member) or a sparse
  /// member's slot chunk.
  long undo_unit(long u, long trip, std::atomic<long>& blocks) {
    const std::size_t r = locate(undo_prefix_, u);
    const long local = u - undo_prefix_[r];
    if (r < groups_.size()) {
      Group& g = groups_[r];
      const std::size_t wlo = static_cast<std::size_t>(local) * kWordChunk;
      const std::size_t whi = std::min(wlo + kWordChunk, g.index->words());
      const std::uint64_t thr = g.index->threshold(trip);
      const std::size_t n = g.index->size();
      long undone = 0;
      const long visited =
          g.index->scan_spans(wlo, whi, n, [&](std::size_t b, std::size_t e) {
            for (SpecTarget* m : g.members)
              undone += m->txn_restore_span(b, e, thr);
          });
      blocks.fetch_add(visited, std::memory_order_relaxed);
      return undone;
    }
    const SparseEntry& s = sparse_[r - groups_.size()];
    const std::size_t lo = static_cast<std::size_t>(local) * kSlotChunk;
    return s.target->txn_undo_slots(trip, lo,
                                    std::min(lo + kSlotChunk, s.slots));
  }

  /// Region of a flat id in a prefix-sum map (regions are few: one per
  /// member or group, so a linear scan beats a binary search in practice).
  static std::size_t locate(const std::vector<long>& prefix, long id) {
    std::size_t r = 0;
    while (prefix[r + 1] <= id) ++r;
    return r;
  }

  std::vector<SpecTarget*> all_;     ///< registration order
  std::vector<SpecTarget*> fused_;   ///< members with a stamp index
  std::vector<SpecTarget*> opaque_;  ///< legacy per-target fallback
  std::vector<Group> groups_;        ///< fused members grouped by index
  std::vector<SparseEntry> sparse_;  ///< members with hash-slot chunks
  std::vector<long> cp_prefix_;      ///< chunk-id prefix per fused member
  std::vector<long> undo_prefix_;    ///< unit-id prefix: groups then sparse
  std::size_t stamp_bytes_saved_ = 0;
  std::atomic<FootprintListener*> listener_{nullptr};
  std::atomic<long> footprint_epochs_{0};
};

/// A speculation target that picks dense VersionedArray vs sparse
/// HashBackup PER RETRY from measured touch density — the adaptive backend
/// selection ROADMAP's "adaptive backup selection" item calls for.
///
/// The decision (cost_model::choose_backup) runs at every reset_marks()
/// using the write count the workers tallied during the previous retry
/// (the first retry uses the caller's `expected_writes` hint), optionally
/// corrected by measured Tb/Ta fed in via note_measured().  A hash
/// overflow latches a permanent ban on the hash side for THIS array only:
/// the next retry runs dense, siblings in the same transaction are
/// untouched.
///
/// Inside a SpecTransaction the target reports both personalities: its
/// stamp index joins the fused dense walk (a no-op on hash retries — no
/// stamps were written) and its hash slots join the sparse chunks (a scan
/// of an empty table on dense retries).  Whichever side was active holds
/// the retry's writes; the other contributes nothing, so mode flips
/// between retries need no re-registration.
template <class T, class Shadow = PDPrivateShadow>
class AdaptiveSpecArray final : public SpecTarget {
 public:
  /// `expected_writes` sizes the hash table (~2x headroom added by its
  /// power-of-two rounding) and seeds the first density decision.
  /// `shared` optionally aliases a sibling's StampIndex (see StampIndex).
  AdaptiveSpecArray(std::vector<T> init, unsigned workers,
                    std::size_t expected_writes, bool run_pd_test,
                    std::shared_ptr<StampIndex> shared = nullptr)
      : array_(std::move(init), std::move(shared)),
        hash_(expected_writes * 2),
        expected_writes_(expected_writes),
        pd_(run_pd_test),
        shadow_(array_.size(), workers) {
    if (pd_) {
      accessors_.reserve(workers);
      for (unsigned w = 0; w < workers; ++w)
        accessors_.emplace_back(shadow_, array_.size(), w);
    }
    writers_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
      writers_.emplace_back(array_.writer());
    touches_.resize(workers);
    decide(expected_writes_);
  }

  // ---- body-side API -----------------------------------------------------

  void begin_iteration(unsigned vpn, long iter) {
    if (pd_) accessors_[vpn].begin_iteration(iter);
  }

  T get(unsigned vpn, std::size_t idx) {
    if (pd_) accessors_[vpn].on_read(idx);
    return array_.get(idx);
  }

  void set(unsigned vpn, long iter, std::size_t idx, const T& v) {
    if (pd_) accessors_[vpn].on_write(idx);
    // Write tally, not distinct locations: an upper bound on the touched
    // set, which is the conservative direction for the density decision
    // (overcounting pushes toward dense, never toward an overflowing
    // hash table).
    touches_[static_cast<std::size_t>(vpn)].value += 1;
    if (mode_ == BackupKind::kHash) {
      // Save-before-write; a full table skips the data write too, so the
      // recorded set still restores the exact pre-loop state.
      if (!hash_.record(iter, idx, array_.get(idx))) return;
      array_.write_raw(idx, v);
    } else {
      writers_[static_cast<std::size_t>(vpn)].value.write(iter, idx, v);
    }
  }

  std::vector<T>& data() noexcept { return array_.data(); }
  const std::vector<T>& data() const noexcept { return array_.data(); }

  /// Backend chosen for the CURRENT retry, and the decision inputs.
  BackupKind backup_kind() const noexcept { return mode_; }
  BackupDecision last_decision() const noexcept { return decision_; }

  /// Feed measured checkpoint/undo cost (ns) into the next decisions —
  /// ExecReport::checkpoint_ns / undo_ns, averaged by LoopStatistics.
  void note_measured(double tb_ns, double ta_ns) noexcept {
    measured_tb_ = tb_ns;
    measured_ta_ = ta_ns;
  }

  UndoStats undo_stats() const { return array_.stats(); }

  /// Mid-run upgrade hash -> dense: adopt the dense backend NOW without
  /// losing the hash-recorded undo state.  The dense backup is rebuilt to
  /// the pre-loop view — bulk copy of the current data, then the hash's
  /// saved values grafted over the locations it recorded (their data
  /// elements already hold speculative writes) — so a later undo behaves
  /// as if the retry had two stamped backends: pre-flip writes restore
  /// through the hash slots, post-flip writes through the dense stamps.
  ///
  /// The caller must be quiescent: no concurrent body may be mid-iteration
  /// (a claim boundary, or a single-worker pool).  This is the step jump in
  /// memory_bytes() the footprint_changed() chain exists for, so the
  /// registered listener is notified before returning.
  void flip_to_dense(ThreadPool* pool = nullptr) {
    if (mode_ != BackupKind::kHash) return;
    const std::size_t n = array_.data().size();
    array_.txn_checkpoint_begin();
    if (pool != nullptr && n > SpecTransaction::kCpChunk) {
      const long nchunks = static_cast<long>(
          (n + SpecTransaction::kCpChunk - 1) / SpecTransaction::kCpChunk);
      doall(*pool, 0, nchunks, [&](long c, unsigned) {
        const std::size_t b =
            static_cast<std::size_t>(c) * SpecTransaction::kCpChunk;
        array_.txn_checkpoint_span(b,
                                   std::min(b + SpecTransaction::kCpChunk, n));
      });
    } else {
      array_.txn_checkpoint_span(0, n);
    }
    hash_.for_each_entry([this](std::size_t idx, const T& saved) {
      array_.patch_backup(idx, saved);
    });
    mode_ = BackupKind::kDense;
    decision_.kind = BackupKind::kDense;
    WLP_OBS_COUNT("wlp.txn.backup_flips", 1);
    footprint_changed();
  }

  // ---- SpecTarget ----------------------------------------------------------

  void checkpoint(ThreadPool* pool) override {
    if (mode_ == BackupKind::kDense) array_.checkpoint(pool);
  }
  long undo_beyond(long trip, ThreadPool* pool) override {
    if (mode_ == BackupKind::kDense) {
      long undone = array_.undo_beyond(trip, pool);
      // After a mid-run hash->dense upgrade (flip_to_dense) the pre-flip
      // writes are stamped only in the hash slots; a plain dense retry
      // holds no entries, so this costs nothing in the common case.
      if (hash_.entries() != 0)
        undone += hash_.undo_into(array_.data(), trip, pool);
      return undone;
    }
    return hash_.undo_into(array_.data(), trip, pool);
  }
  void restore_all(ThreadPool* pool) override {
    if (mode_ == BackupKind::kDense)
      array_.restore_all(pool);
    else
      hash_.restore_all_into(array_.data(), pool);
  }
  bool shadowed() const override { return pd_; }
  PDVerdict analyze(ThreadPool& pool, long trip) const override {
    return shadow_.analyze(pool, trip);
  }
  void reset_marks() override {
    shadow_.reset();
    for (auto& a : accessors_) a.reset();
    long touched = 0;
    for (auto& c : touches_) {
      touched += c.value;
      c.value = 0;
    }
    // An overflow means the observed touch set outgrew the table: ban the
    // hash side for good (this array only — siblings decide for
    // themselves).
    if (hash_.overflowed()) hash_banned_ = true;
    decide(ran_once_ ? static_cast<std::size_t>(touched) : expected_writes_);
    ran_once_ = true;
    array_.clear_stamps();
    for (auto& w : writers_) w.value.rebind();
    hash_.clear();
  }
  long marks() const override {
    long m = 0;
    for (const auto& a : accessors_) m += a.marks();
    return m;
  }
  bool overflowed() const override {
    return mode_ == BackupKind::kHash && hash_.overflowed();
  }
  std::size_t memory_bytes() const override {
    // Only the LIVE backend's state is pinned by this retry — summing both
    // sides charged the window budget ~3n dense bytes on a hash retry whose
    // true footprint was a handful of slots, collapsing the window to its
    // minimum for no reason.  The idle side still charges what it actually
    // holds: on a dense retry the hash table is empty (0 bytes) except
    // right after a mid-run flip, when its recorded pre-flip entries stay
    // pinned until the next clear; on a hash retry the dense data/stamps
    // are not speculative state, but a pooled backup buffer allocated by an
    // earlier dense retry remains held.
    if (mode_ == BackupKind::kDense)
      return array_.memory_bytes() + hash_.memory_bytes();
    return hash_.memory_bytes() + array_.backup_bytes();
  }
  void discard() override {
    array_.discard_checkpoint();
    hash_.clear();
  }

  // ---- verdict-cache hooks -------------------------------------------------

  void enable_access_signatures(bool on) override {
    if constexpr (requires(Shadow& s) { s.enable_signatures(on); }) {
      if (pd_) shadow_.enable_signatures(on);
    }
  }
  bool access_summary(PDAccessSummary* out) const override {
    if constexpr (requires(const Shadow& s) { s.access_summary(); }) {
      if (pd_ && shadow_.signatures_enabled()) {
        *out = shadow_.access_summary();
        return true;
      }
    }
    return false;
  }
  long dirty_block_count() const override {
    // Whichever backend held this retry's writes knows the density; the
    // idle side reports 0 (empty table / clean stamps), so the sum is the
    // live count even right after a mid-run flip.
    return array_.dirty_block_count() + hash_.dirty_block_count();
  }

  // ---- fused-transaction hooks --------------------------------------------
  // Both personalities are always reported (see the class comment); the
  // mode checks below are load-bearing: on a hash retry the dense restore
  // hooks MUST return nothing, or a SHARED index's sibling stamps would
  // drive restores from this member's stale dense backup.

  StampIndex* txn_index() noexcept override { return array_.index(); }
  std::size_t txn_checkpoint_begin() override {
    return mode_ == BackupKind::kDense ? array_.txn_checkpoint_begin() : 0;
  }
  void txn_checkpoint_span(std::size_t b, std::size_t e) override {
    if (mode_ == BackupKind::kDense) array_.txn_checkpoint_span(b, e);
  }
  long txn_restore_span(std::size_t b, std::size_t e,
                        std::uint64_t threshold) override {
    return mode_ == BackupKind::kDense ? array_.restore_span(b, e, threshold)
                                       : 0;
  }
  void txn_restore_all_span(std::size_t b, std::size_t e) override {
    if (mode_ == BackupKind::kDense) array_.txn_restore_all_span(b, e);
  }
  void txn_restore_all_done() override {
    if (mode_ == BackupKind::kDense) array_.clear_stamps();
    // The hash side's recorded set is spent too — but the overflow fact
    // must outlive the clear (reset_marks may not run before the next
    // decision reads it), so latch the ban first.
    if (hash_.overflowed()) hash_banned_ = true;
    hash_.clear();
  }
  std::size_t txn_sparse_slots() const override { return hash_.capacity(); }
  long txn_undo_slots(long trip, std::size_t lo, std::size_t hi) override {
    return hash_.undo_slots(array_.data(), trip, lo, hi);
  }

 private:
  void decide(std::size_t touched) {
    decision_ = choose_backup(array_.size(), touched, measured_tb_,
                              measured_ta_);
    if (hash_banned_) decision_.kind = BackupKind::kDense;
    const BackupKind before = mode_;
    mode_ = decision_.kind;
    WLP_OBS_COUNT(mode_ == BackupKind::kDense ? "wlp.txn.backup_dense"
                                              : "wlp.txn.backup_hash",
                  1);
    // A backend change is a step jump in memory_bytes() (dense pins
    // data+backup+stamps where hash pinned live slots): tell the window
    // controller instead of letting the next claim's poll discover it late.
    if (mode_ != before) footprint_changed();
  }

  VersionedArray<T> array_;
  HashBackup<T> hash_;
  std::size_t expected_writes_;
  bool pd_;
  Shadow shadow_;
  std::vector<PDAccessorT<Shadow>> accessors_;
  std::vector<Padded<typename VersionedArray<T>::Writer>> writers_;
  /// Per-worker write tallies (cache-line padded: bumped on every set()).
  std::vector<Padded<long>> touches_;
  BackupKind mode_ = BackupKind::kDense;
  BackupDecision decision_;
  double measured_tb_ = -1.0;
  double measured_ta_ = -1.0;
  bool hash_banned_ = false;
  bool ran_once_ = false;
};

}  // namespace wlp
