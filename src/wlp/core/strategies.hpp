// Overhead-management strategies — Sections 4, 8.1 and 8.3.
//
//   * strip_mined_while: execute the loop strip by strip; time-stamp memory
//     is bounded by (strip size x writes per iteration) and overshoot by the
//     strip size, at the price of a global synchronization per strip.
//   * stats_enhanced_while: given a compiler/profile estimate n_i of the trip
//     count, only time-stamp writes of iterations >= n'_i (= confidence x
//     n_i).  If the loop in fact exits before n'_i, unstamped overshot writes
//     cannot be undone selectively, so the full checkpoint is restored and
//     the loop re-executes sequentially — the gamble Section 8.1 describes.
//   * one_processor_hedge: run the loop sequentially and in parallel on
//     disjoint copies at once; whichever finishes the race defines the
//     result (Section 8.3's 1/(p-1) solution).  Modeled here as a sequential
//     race driver that reports which side won.
#pragma once

#include <algorithm>
#include <span>

#include "wlp/obs/obs.hpp"
#include "wlp/core/cost_model.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/sched/doall.hpp"

namespace wlp {

/// Strip-mined speculative WHILE loop over [0, u).
/// `body(i, vpn) -> IterAction`.  Overshoot never exceeds one strip.
template <class Body>
ExecReport strip_mined_while(ThreadPool& pool, long u, long strip, Body&& body,
                             DoallOptions opts = {}) {
  ExecReport r;
  r.method = Method::kStripMined;
  if (strip <= 0) strip = u;
  for (long base = 0; base < u; base += strip) {
    const long end = std::min(base + strip, u);
    WLP_TRACE_SCOPE("strip", base, end - base);
    WLP_OBS_COUNT("wlp.strip.runs", 1);
    const QuitResult qr = doall_quit(pool, base, end, body, opts);
    r.started += qr.started;
    if (qr.trip < end) {
      r.trip = qr.trip;
      r.overshot = std::max(0L, qr.started - (qr.trip - base));
      return r;
    }
  }
  r.trip = u;
  return r;
}

/// Strip-mined run whose per-strip DOALL schedule is picked by the cost
/// model (Section 8.1's statistics feeding the runtime): each strip asks
/// `choose_schedule` with the trip count still expected *within* that strip,
/// so early strips (exit unlikely inside them) run guided with large decayed
/// grabs and the strip containing the expected exit drops back to
/// finer-grained self-scheduling to bound overshoot.
template <class Body>
ExecReport strip_mined_while_tuned(ThreadPool& pool, long u, long strip,
                                   double expected_trip, double iter_cost_cv,
                                   Body&& body) {
  ExecReport r;
  r.method = Method::kStripMined;
  if (strip <= 0) strip = u;
  for (long base = 0; base < u; base += strip) {
    const long end = std::min(base + strip, u);
    WLP_TRACE_SCOPE("strip", base, end - base);
    WLP_OBS_COUNT("wlp.strip.runs", 1);
    const double trip_in_strip =
        expected_trip <= 0 ? 0 : std::clamp(expected_trip - base, 0.0,
                                            static_cast<double>(end - base));
    const DoallOptions opts =
        choose_schedule(end - base, trip_in_strip, iter_cost_cv, pool.size());
    const QuitResult qr = doall_quit(pool, base, end, body, opts);
    r.started += qr.started;
    if (qr.trip < end) {
      r.trip = qr.trip;
      r.overshot = std::max(0L, qr.started - (qr.trip - base));
      return r;
    }
  }
  r.trip = u;
  return r;
}

/// Statistics-enhanced stamping threshold (Section 8.1): n'_i as a fraction
/// of the estimated trip count, scaled by the confidence placed in it.
struct StampThreshold {
  long value = 0;

  bool should_stamp(long iter) const noexcept { return iter >= value; }

  /// "if the confidence in n_i is about x%, then n'_i is selected to be
  /// about x% of n_i."
  static StampThreshold from_estimate(long estimated_trip, double confidence) {
    StampThreshold t;
    t.value = static_cast<long>(static_cast<double>(estimated_trip) * confidence);
    return t;
  }
};

/// Speculative run in which the body stamps writes only for iterations >=
/// threshold.  `body(i, vpn, stamped) -> IterAction` where `stamped` tells
/// the body whether its writes this iteration must go through the stamped
/// path.  If trip lands below the threshold the speculation is abandoned:
/// full restore + sequential re-execution via `run_sequential() -> trip`.
template <class Body, class SeqRun>
ExecReport stats_enhanced_while(ThreadPool& pool, long u, StampThreshold threshold,
                                std::span<SpecTarget* const> targets, Body&& body,
                                SeqRun&& run_sequential, SpecOptions opts = {}) {
  ExecReport r;
  r.method = Method::kInduction2;
  r.used_checkpoint = true;
  r.used_stamps = true;

  SpecTransaction txn(targets);
  {
    const auto cp0 = std::chrono::steady_clock::now();
    txn.begin(&pool);
    r.checkpoint_ns = detail::spec_ns_since(cp0);
  }

  const QuitResult qr = doall_quit(
      pool, 0, u,
      [&](long i, unsigned vpn) { return body(i, vpn, threshold.should_stamp(i)); },
      opts.doall);

  r.started = qr.started;
  r.trip = qr.trip;
  r.overshot = std::max(0L, qr.started - qr.trip);
  r.shadow_marks = txn.marks();
  WLP_OBS_COUNT("wlp.pd.marks", r.shadow_marks);
  // Measured peak via the transaction (backups fullest right after the
  // parallel section) — the same fused signal every budget-aware driver
  // reads, replacing any per-target probing by the caller.
  r.peak_spec_bytes = txn.memory_bytes();

  bool abandon = qr.trip < threshold.value;
  if (txn.overflowed()) {
    r.backup_overflow = true;
    abandon = true;
    WLP_OBS_COUNT("wlp.spec.backup_overflow", 1);
  }
  if (abandon) {
    // The estimate was wrong on the short side (unstamped overshot writes
    // exist, so selective undo is impossible) or the backup dropped writes.
    WLP_OBS_COUNT("wlp.spec.abandoned", 1);
    WLP_TRACE_SCOPE("spec.seq_reexec", u, 0);
    // txn.restore_all is a FULL backup->data copy, never a stamp-filtered
    // undo: iterations below the stamp threshold wrote unstamped.
    const auto ra0 = std::chrono::steady_clock::now();
    txn.restore_all(&pool);
    r.undo_ns = detail::spec_ns_since(ra0);
    r.reexecuted_sequentially = true;
    r.trip = run_sequential();
    return r;
  }

  {
    WLP_TRACE_SCOPE_NAMED(undo_scope, "undo", qr.trip, 0);
    const auto ud0 = std::chrono::steady_clock::now();
    r.undone_writes +=
        txn.undo_beyond(qr.trip, opts.undo_in_parallel ? &pool : nullptr);
    r.undo_ns = detail::spec_ns_since(ud0);
    undo_scope.args(static_cast<std::uint64_t>(qr.trip),
                    static_cast<std::uint64_t>(r.undone_writes));
  }
  WLP_OBS_HIST("wlp.spec.undo_writes", r.undone_writes);
  return r;
}

/// Section 8.3 — the one-processor/(p-1)-processor hedge.  Both executions
/// run against disjoint copies of the output data; the caller provides both
/// runners and this driver reports the parallel result when speculation
/// succeeded and the sequential result otherwise.  (On a real machine the
/// two would race; here the semantics — never slower than max(seq, par),
/// never wrong — are what matters and what the tests check.)
struct HedgeOutcome {
  ExecReport parallel;
  long sequential_trip = 0;
  bool parallel_won = false;
};

template <class ParRun, class SeqRun>
HedgeOutcome one_processor_hedge(ParRun&& run_parallel, SeqRun&& run_sequential) {
  HedgeOutcome h;
  WLP_TRACE_SCOPE_NAMED(hedge_scope, "hedge", 0, 0);
  h.parallel = run_parallel();
  h.sequential_trip = run_sequential();
  h.parallel_won = !h.parallel.reexecuted_sequentially;
  WLP_OBS_COUNT("wlp.hedge.runs", 1);
  WLP_OBS_COUNT(h.parallel_won ? "wlp.hedge.parallel_won" : "wlp.hedge.sequential_won", 1);
  hedge_scope.args(static_cast<std::uint64_t>(h.sequential_trip),
                   static_cast<std::uint64_t>(h.parallel_won));
  return h;
}

}  // namespace wlp
