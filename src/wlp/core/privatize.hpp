// Privatization with copy-in and time-stamp-ordered copy-out — Sections 4/5.
//
// Each virtual processor gets a private copy of the shared array (copy-in of
// the pre-loop values).  Because a private location may legitimately be
// written by *several* iterations of a valid parallel loop, last-value
// copy-out cannot use a single stamp per location: the paper prescribes a
// time-stamped *trail* of writes, from which copy-out selects, per location,
// the value with the largest stamp that is not larger than the last valid
// iteration.
//
// Whether privatization was *valid* (every read preceded by a same-iteration
// write, per the Privatization Criterion) is the PD test's job — this class
// only provides the mechanism.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

template <class T>
class PrivatizedArray {
 public:
  struct TrailEntry {
    long iter;
    std::size_t idx;
    T value;
    std::uint64_t seq;  ///< per-worker sequence number: breaks same-iteration ties
  };

  /// `shared` stays owned by the caller; its pre-loop contents are the
  /// copy-in source and it receives the copy-out.
  PrivatizedArray(std::vector<T>& shared, unsigned workers)
      : shared_(shared),
        copies_(workers, std::vector<T>(shared)),
        trails_(workers),
        seq_(workers, Padded<std::uint64_t>(0)) {}

  /// Private read on worker `vpn`.
  const T& read(unsigned vpn, std::size_t idx) const noexcept {
    return copies_[vpn][idx];
  }

  /// Private write by iteration `iter` on worker `vpn`; appends to the trail
  /// so the live value can be copied out later.
  void write(unsigned vpn, long iter, std::size_t idx, const T& v) {
    copies_[vpn][idx] = v;
    trails_[vpn].value.push_back({iter, idx, v, seq_[vpn].value++});
  }

  /// Copy out the last valid value of every written location: the trail
  /// entry with the largest (iter, seq) among entries with iter < trip.
  /// Returns the number of locations copied out.
  long copy_out(long trip) {
    // Gather all valid entries, then keep the max-(iter, seq) per index.
    std::vector<TrailEntry> all;
    for (auto& t : trails_)
      for (const auto& e : t.value)
        if (e.iter < trip) all.push_back(e);

    std::sort(all.begin(), all.end(), [](const TrailEntry& a, const TrailEntry& b) {
      if (a.idx != b.idx) return a.idx < b.idx;
      if (a.iter != b.iter) return a.iter < b.iter;
      return a.seq < b.seq;
    });

    long copied = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const bool last_for_idx = i + 1 == all.size() || all[i + 1].idx != all[i].idx;
      if (last_for_idx) {
        shared_[all[i].idx] = all[i].value;
        ++copied;
      }
    }
    return copied;
  }

  /// Total trail length (the memory cost Section 8 manages).
  std::size_t trail_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& t : trails_) n += t.value.size();
    return n;
  }

  unsigned workers() const noexcept { return static_cast<unsigned>(copies_.size()); }

 private:
  std::vector<T>& shared_;
  std::vector<std::vector<T>> copies_;
  std::vector<Padded<std::vector<TrailEntry>>> trails_;
  std::vector<Padded<std::uint64_t>> seq_;
};

}  // namespace wlp
