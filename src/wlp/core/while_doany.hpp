// WHILE-DOANY — the construct Section 9 introduces for the MCSPARSE pivot
// search: the loop's iterations are independent AND order-insensitive, so
// even though the terminator is RV and the parallel execution overshoots,
// no backups and no time-stamps are needed — any admissible result is a
// correct result.
//
// The companion aliases give the paper's proposed parallel-programming
// constructs their names: WHILE-DOALL (speculative DOALL via Induction-2
// semantics) and WHILE-DOACROSS (pipelined; see wu_lewis.hpp / doacross.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

/// Order-insensitive parallel WHILE: `body(i, vpn) -> IterAction`; an
/// iteration returning kExitAfter means "an acceptable result was produced,
/// wind the loop down".  Nothing is undone; `trip` reports where the loop
/// stopped issuing, not a sequential-consistency point.
template <class Body>
ExecReport while_doany(ThreadPool& pool, long u, Body&& body,
                       DoallOptions opts = {}) {
  opts.use_quit = true;
  const QuitResult qr = doall_quit(pool, 0, u, std::forward<Body>(body), opts);
  ExecReport r;
  r.method = Method::kDoany;
  r.trip = qr.trip;
  r.started = qr.started;
  r.overshot = std::max(0L, qr.started - qr.trip);
  return r;
}

/// A concurrent "best candidate" cell for DOANY reductions: keeps the
/// (cost, payload) pair with minimal cost among all publishes.  Cost and
/// payload are packed into one 64-bit word so the update is a single CAS —
/// cost in the high 32 bits (lower is better), payload in the low 32.
class BestCandidate {
 public:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  void publish(std::uint32_t cost, std::uint32_t payload) noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(cost) << 32) | payload;
    std::uint64_t cur = word_.load(std::memory_order_relaxed);
    while (packed < cur &&
           !word_.compare_exchange_weak(cur, packed, std::memory_order_acq_rel)) {
    }
  }

  bool empty() const noexcept {
    return word_.load(std::memory_order_acquire) == kEmpty;
  }
  std::uint32_t cost() const noexcept {
    return static_cast<std::uint32_t>(word_.load(std::memory_order_acquire) >> 32);
  }
  std::uint32_t payload() const noexcept {
    return static_cast<std::uint32_t>(word_.load(std::memory_order_acquire));
  }

  void reset() noexcept { word_.store(kEmpty, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> word_{kEmpty};
};

/// A time-stamped best-candidate cell for *sequentially consistent*
/// reductions (the MA28 pivot search): among candidates published by valid
/// iterations, the one the sequential loop would have produced is the one
/// with the smallest cost, ties broken by the smallest iteration.  Filtering
/// by the last valid iteration happens at read time.
class StampedBest {
 public:
  struct Entry {
    long iter;
    std::uint32_t cost;
    std::uint32_t payload;
  };

  explicit StampedBest(unsigned workers) : slots_(workers) {}

  /// Publish from worker `vpn` (its slot is private: no contention).
  void publish(unsigned vpn, long iter, std::uint32_t cost, std::uint32_t payload) {
    auto& v = slots_[vpn].value;
    v.push_back({iter, cost, payload});
  }

  /// The winning entry among those with iter < trip (cost asc, iter asc).
  /// Returns false if no valid candidate exists.
  bool winner(long trip, Entry& out) const {
    bool found = false;
    for (const auto& s : slots_) {
      for (const auto& e : s.value) {
        if (e.iter >= trip) continue;
        if (!found || e.cost < out.cost ||
            (e.cost == out.cost && e.iter < out.iter)) {
          out = e;
          found = true;
        }
      }
    }
    return found;
  }

  void reset() {
    for (auto& s : slots_) s.value.clear();
  }

 private:
  std::vector<Padded<std::vector<Entry>>> slots_;
};

}  // namespace wlp
