// Section 3.3 — the dispatcher is a general (inherently sequential)
// recurrence, e.g. a pointer traversing a linked list (Figure 4).
//
// The dispatcher itself cannot be parallelized — it is a continuous chain of
// flow dependences — so these methods overlap the *remainder* work of
// different iterations instead:
//
//   * General-1: the processors cooperatively traverse the structure once,
//     serializing next() inside a critical section.
//   * General-2: every processor privately traverses the whole structure and
//     statically executes the iterations congruent to its vpn mod p.
//   * General-3: every processor privately traverses, but iterations are
//     claimed dynamically; a processor replays the recurrence from the last
//     point it held (`prev`) to its newly claimed iteration.
//
// All three are generic over a *cursor*: any copyable value plus a `next`
// step and an `is_end` predicate (the RI component of the terminator that is
// strongly connected to the dispatcher — `tmp == null` in Fig. 1(b)).
// The body may additionally report RV exits via IterAction.
#pragma once

#include <atomic>
#include <limits>
#include <mutex>

#include "wlp/core/report.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

namespace detail {

struct GeneralAccounting {
  PerWorker<long> trip;
  PerWorker<long> started;
  PerWorker<long> hops;
  QuitBound quit;

  explicit GeneralAccounting(unsigned p)
      : trip(p, std::numeric_limits<long>::max()), started(p, 0), hops(p, 0) {}

  /// Apply the body's verdict for iteration i; returns false if the caller's
  /// claim loop should stop (the terminator held *before* the work).
  template <class Body, class Cursor>
  void run_body(Body& body, long i, const Cursor& c, unsigned vpn) {
    ++started[vpn];
    switch (body(i, c, vpn)) {
      case IterAction::kContinue:
        break;
      case IterAction::kExit:
        trip[vpn] = std::min(trip[vpn], i);
        quit.quit(i);
        break;
      case IterAction::kExitAfter:
        trip[vpn] = std::min(trip[vpn], i + 1);
        quit.quit(i + 1);
        break;
    }
  }

  void record_end(long length, unsigned vpn) {
    trip[vpn] = std::min(trip[vpn], length);
    quit.quit(length);
  }

  ExecReport finish(Method m, long u) const {
    ExecReport r;
    r.method = m;
    const long min_trip = trip.reduce(std::numeric_limits<long>::max(),
                                      [](long a, long b) { return std::min(a, b); });
    r.trip = std::min(min_trip, u);
    r.started = started.reduce(0L, [](long a, long b) { return a + b; });
    r.overshot = std::max(0L, r.started - r.trip);
    r.dispatcher_steps = hops.reduce(0L, [](long a, long b) { return a + b; });
    return r;
  }
};

}  // namespace detail

/// General-1: serialize accesses to next() (hardware-pipelining analog).
/// The critical section hands each processor the next (index, cursor) pair.
template <class Cursor, class Next, class End, class Body>
ExecReport while_general1(ThreadPool& pool, Cursor head, Next&& next, End&& is_end,
                          Body&& body, long u = std::numeric_limits<long>::max()) {
  const unsigned p = pool.size();
  detail::GeneralAccounting acc(p);
  std::mutex mu;
  Cursor cur = head;
  long idx = 0;
  bool exhausted = false;

  pool.parallel([&](unsigned vpn) {
    for (;;) {
      Cursor mine{};
      long i;
      {
        std::lock_guard lock(mu);
        if (exhausted || idx >= u) return;
        if (is_end(cur)) {
          exhausted = true;
          acc.record_end(idx, vpn);
          return;
        }
        i = idx++;
        mine = cur;
        cur = next(cur);
        ++acc.hops[vpn];
      }
      if (acc.quit.cut(i)) return;  // claims are ordered: nothing lower remains
      acc.run_body(body, i, mine, vpn);
    }
  });
  return acc.finish(Method::kGeneral1, u);
}

/// General-2: private traversal, static cyclic assignment (i mod p == vpn).
/// No locks; each processor walks the entire structure, so the total hop
/// count is ~p times the list length — the price of static scheduling.
template <class Cursor, class Next, class End, class Body>
ExecReport while_general2(ThreadPool& pool, Cursor head, Next&& next, End&& is_end,
                          Body&& body, long u = std::numeric_limits<long>::max()) {
  const unsigned p = pool.size();
  detail::GeneralAccounting acc(p);

  pool.parallel([&](unsigned vpn) {
    Cursor pt = head;
    long i = 0;
    while (i < u) {
      if (is_end(pt)) {
        acc.record_end(i, vpn);
        return;
      }
      if (acc.quit.cut(i)) return;
      if (i % static_cast<long>(p) == static_cast<long>(vpn))
        acc.run_body(body, i, pt, vpn);
      pt = next(pt);
      ++acc.hops[vpn];
      ++i;
    }
  });
  return acc.finish(Method::kGeneral2, u);
}

/// General-3: private traversal, dynamic self-scheduling.  Each processor
/// remembers the last position it held and replays the recurrence only over
/// the gap to its newly claimed iteration, so hops stay close to the list
/// length in total while keeping dynamic load balance.
template <class Cursor, class Next, class End, class Body>
ExecReport while_general3(ThreadPool& pool, Cursor head, Next&& next, End&& is_end,
                          Body&& body, long u = std::numeric_limits<long>::max()) {
  const unsigned p = pool.size();
  detail::GeneralAccounting acc(p);
  std::atomic<long> counter{0};

  pool.parallel([&](unsigned vpn) {
    Cursor pt = head;
    long prev = 0;  // index pt currently refers to
    if (is_end(pt)) {
      acc.record_end(0, vpn);
      return;
    }
    for (;;) {
      const long i = counter.fetch_add(1, std::memory_order_relaxed);
      if (i >= u || acc.quit.cut(i)) return;
      while (prev < i) {
        pt = next(pt);
        ++acc.hops[vpn];
        ++prev;
        if (is_end(pt)) {
          acc.record_end(prev, vpn);
          return;
        }
      }
      acc.run_body(body, i, pt, vpn);
    }
  });
  return acc.finish(Method::kGeneral3, u);
}

}  // namespace wlp
