// The run-twice strategy — Sections 4 and 5.
//
// "Time-stamping can be avoided completely if one is willing to execute the
// parallel version of the WHILE loop twice.  First, the loop is run in
// parallel to determine the number of iterations ...  Then, since the
// number of iterations is known, the second time the loop can simply be run
// as a DOALL."  Section 5 adds the speculative flavor: once the trip count
// is known, the resulting DO loop can be speculatively parallelized with
// the PD test as usual.
//
// The contract that makes pass 1 cheap is that the PROBE body evaluates
// only the termination logic (no shared writes): it needs no checkpoint, no
// stamps, no undo.  Pass 2 then executes exactly [0, trip) — no overshoot
// by construction.
//
// Repeated invocations against the same targets are cheap with the
// privatized shadow policy: reset_marks() is an O(1) epoch bump (shadow
// cells and accessor last-writer tables are generation-stamped), so the
// per-call setup no longer scales with the array size.
#pragma once

#include <span>

#include "wlp/obs/obs.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/speculative.hpp"

namespace wlp {

struct RunTwiceReport {
  ExecReport exec;        ///< the pass-2 execution (authoritative state)
  long probe_started = 0; ///< iterations evaluated by the trip-finding pass
};

/// Plain run-twice: `probe(i, vpn) -> IterAction` evaluates only the
/// termination condition; `work(i, vpn)` is the side-effecting body, run as
/// an exact DOALL over [0, trip).
template <class Probe, class Work>
RunTwiceReport run_twice_while(ThreadPool& pool, long u, Probe&& probe,
                               Work&& work, DoallOptions opts = {}) {
  RunTwiceReport out;
  WLP_OBS_COUNT("wlp.runtwice.runs", 1);
  QuitResult pass1{};
  {
    WLP_TRACE_SCOPE("runtwice.probe", u, 0);
    pass1 = doall_quit(pool, 0, u, probe, opts);
  }
  out.probe_started = pass1.started;

  {
    WLP_TRACE_SCOPE("runtwice.work", pass1.trip, 0);
    doall(pool, 0, pass1.trip, work, opts);
  }
  out.exec.method = Method::kInduction2;
  out.exec.trip = pass1.trip;
  out.exec.started = pass1.trip;
  out.exec.overshot = 0;        // pass 2 runs exactly the valid range
  out.exec.used_stamps = false; // the whole point
  return out;
}

/// Speculative run-twice (Section 5): pass 2 is a DO loop of known length
/// with unanalyzable accesses, so it runs under the PD test.  No stamps are
/// needed even here — with the trip known there is no overshoot, only the
/// independence question remains.  `work` must route accesses through the
/// targets; `run_sequential() -> void` is the fallback over [0, trip).
///
/// Pass 2 delegates to speculative_while, so multi-array target sets get
/// the fused SpecTransaction checkpoint/restore (one parallel pass over
/// all targets, one wlp.undo.* publication) with no wiring here.
template <class Probe, class Work, class SeqRun>
RunTwiceReport run_twice_speculative(ThreadPool& pool, long u, Probe&& probe,
                                     std::span<SpecTarget* const> targets,
                                     Work&& work, SeqRun&& run_sequential,
                                     SpecOptions opts = {}) {
  RunTwiceReport out;
  WLP_OBS_COUNT("wlp.runtwice.runs", 1);
  QuitResult pass1{};
  {
    WLP_TRACE_SCOPE("runtwice.probe", u, 0);
    pass1 = doall_quit(pool, 0, u, probe, opts.doall);
  }
  out.probe_started = pass1.started;
  const long trip = pass1.trip;

  out.exec = speculative_while(
      pool, trip, targets,
      [&](long i, unsigned vpn) {
        work(i, vpn);
        return IterAction::kContinue;
      },
      [&] {
        run_sequential(trip);
        return trip;
      },
      opts);
  out.exec.trip = trip;
  return out;
}

}  // namespace wlp
