// Hash-table backup for sparse access patterns — Section 4.
//
// "If the access pattern of any array in the loop is known to be sparse,
// then the memory requirements could be reduced by using hash tables ...
// since only the elements of the array accessed in the loop would be
// inserted."  HashBackup<T> is a fixed-capacity, open-addressing concurrent
// map from array index to (pre-loop value, max writer stamp).  The first
// writer of a location claims a slot and saves the old value; subsequent
// writers only raise the stamp.
//
// Epoch-stamped slots: both the slot tag ((epoch << 32) | (key + 1)) and the
// writer stamp ((epoch << 32) | (iter + 1)) carry the table's clear-epoch in
// their high bits, so clear() is an O(1) epoch bump instead of an O(capacity)
// sweep — the generation trick shared with the PD shadow and VersionedArray
// (mem::EpochClock).  A slot whose tag epoch is stale is free for claiming; a
// real sweep happens once per 2^32 clears, when the 32-bit epoch wraps.
// Because the epoch only grows between sweeps, the stamp's numeric fetch-max
// stays exact even when a slot is reclaimed: every current-epoch stamp
// dominates every stale one.
//
// The slot table itself is an arena-backed open-addressing array: storage
// comes from the constructing thread's mem::Arena, so a table retired by one
// strip driver is recycled in O(1) by the next table of the same capacity
// and the bytes are visible to the wlp.mem budget.
//
// Capacity exhaustion does NOT throw: record() returns false and latches a
// per-run overflow flag.  Throwing here would unwind through a pool worker
// and terminate at the join; instead the speculative drivers check
// overflowed() after the parallel section and fall back to the dense
// VersionedArray path (the caller skips its data write when record() fails,
// so the recorded set still restores the exact pre-loop state).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "wlp/mem/arena.hpp"
#include "wlp/mem/epoch.hpp"
#include "wlp/sched/reduce.hpp"
#include "wlp/support/prng.hpp"

namespace wlp {

template <class T>
class HashBackup {
 public:
  /// Largest recordable array index: the packed tag keeps (key + 1) in 32
  /// bits.  Arrays past 4G elements would not want a sparse backup anyway.
  static constexpr std::size_t kMaxKey = 0xfffffffeu;
  static constexpr long kMaxIter = 0xfffffffeL;

  /// `capacity` is rounded up to a power of two and should exceed the
  /// expected number of *distinct* written locations by ~2x.
  explicit HashBackup(std::size_t capacity)
      : slots_(round_capacity(capacity),
               SlotAlloc(mem::local_arena())) {
    mask_ = slots_.size() - 1;
  }

  /// Record that iteration `iter` is about to overwrite data[idx], whose
  /// current (possibly pre-loop) value is `old_value`.  Only the first
  /// recorder's old value is kept — by construction that is the pre-loop
  /// value, because every writer records before writing.
  ///
  /// Returns false when the table is full: the entry was NOT recorded and
  /// overflowed() is latched.  The caller must then skip its own data write
  /// so restore_all_into() can still reproduce the pre-loop state.
  bool record(long iter, std::size_t idx, const T& old_value) {
    Slot* s = find_or_claim(idx, &old_value);
    if (s == nullptr) {
      overflow_.store(true, std::memory_order_relaxed);
      return false;
    }
    // fetch-max on the packed stamp; stale-epoch residue is numerically
    // smaller than any current-epoch value, so plain max is exact.
    const std::uint64_t want = pack_stamp(iter);
    std::uint64_t cur = s->stamp.load(std::memory_order_relaxed);
    while (want > cur && !s->stamp.compare_exchange_weak(
                             cur, want, std::memory_order_acq_rel)) {
    }
    return true;
  }

  /// Did any record() since the last clear() hit capacity?
  bool overflowed() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Restore into `data` every recorded location whose stamp >= trip.
  /// With a pool, the slot range is partitioned across the workers (distinct
  /// keys live in distinct slots, so writers never collide).  Returns the
  /// number restored.
  long undo_into(std::vector<T>& data, long trip, ThreadPool* pool = nullptr) {
    const std::uint64_t threshold = stamp_threshold(trip);
    const long nslots = static_cast<long>(slots_.size());
    if (pool != nullptr && nslots > 1) {
      constexpr long kChunk = 1024;  // slots per claimed range
      const long nchunks = (nslots + kChunk - 1) / kChunk;
      return parallel_sum<long>(*pool, 0, nchunks, [&](long c) {
        const long lo = c * kChunk;
        const long hi = lo + kChunk < nslots ? lo + kChunk : nslots;
        return undo_range(data, threshold, lo, hi);
      });
    }
    return undo_range(data, threshold, 0, nslots);
  }

  /// Restore everything recorded (failed speculation).
  long restore_all_into(std::vector<T>& data, ThreadPool* pool = nullptr) {
    return undo_into(data, -1, pool);
  }

  /// Fused-transaction unit of work: undo the slot range [lo, hi) against
  /// the threshold for `trip` (trip < 0 restores everything recorded).  A
  /// SpecTransaction packs these chunks into its single parallel undo pass
  /// alongside the dense members' dirty-span chunks, so a mixed dense+hash
  /// transaction still runs one pool dispatch and one join.
  long undo_slots(std::vector<T>& data, long trip, std::size_t lo,
                  std::size_t hi) noexcept {
    // Empty-table early-out: an AdaptiveSpecArray running a DENSE retry
    // still exposes its (unused) slot chunks to the transaction's static
    // unit map; without this check every fused undo would stream the whole
    // empty table just to find no live tags.
    if (entries() == 0) return 0;
    return undo_range(data, stamp_threshold(trip), static_cast<long>(lo),
                      static_cast<long>(std::min(hi, slots_.size())));
  }

  std::size_t entries() const noexcept {
    return occupied_.load(std::memory_order_relaxed);
  }

  /// Sparse analogue of StampIndex::dirty_block_count(), same units (one
  /// block = StampIndex::kBlockSize locations): each live slot is one
  /// distinct recorded location, so entries()/64 rounded up is the densest
  /// possible block packing of the touched set.  O(1) — read from the
  /// occupancy counter the records already maintain, no slot sweep — which
  /// is what lets the verdict signature include write density even on a
  /// hash retry.
  long dirty_block_count() const noexcept {
    return static_cast<long>((entries() + 63) / 64);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Drop every recorded entry (commit point in strip-wise drivers): an O(1)
  /// epoch bump.  Slots stamped with older epochs read as free.
  void clear() noexcept {
    epoch_.bump([this] { sweep_epochs(); });
    occupied_.store(0, std::memory_order_relaxed);
    overflow_.store(false, std::memory_order_relaxed);
  }

  /// Bytes of backup state actually in use — the quantity the Section 8
  /// window controller budgets against.
  std::size_t memory_bytes() const noexcept {
    return entries() * sizeof(Slot);
  }

  /// Visit every live recorded entry as (array index, saved pre-loop
  /// value).  Quiescent-only — no concurrent record() may be in flight:
  /// the AdaptiveSpecArray mid-run hash->dense upgrade uses this to graft
  /// the saved values onto the freshly built dense backup.
  template <class F>
  void for_each_entry(F&& fn) const {
    for (const Slot& s : slots_) {
      const std::uint64_t tag = s.tag.load(std::memory_order_acquire);
      if ((tag >> 32) != epoch_.value()) continue;  // free or stale slot
      fn(static_cast<std::size_t>(tag & 0xffffffffu) - 1, s.saved);
    }
  }

  long resets() const noexcept { return epoch_.resets(); }
  long sweeps() const noexcept { return epoch_.sweeps(); }

  /// Test hook: jump the epoch close to the 32-bit wrap so a test can force
  /// the once-per-2^32 sweep without 4G clears.
  void set_epoch_for_test(std::uint32_t e) noexcept {
    epoch_.jump(e, [this] { sweep_epochs(); });
  }

 private:
  struct Slot {
    /// (epoch << 32) | (key + 1); 0 or a stale epoch = free.
    std::atomic<std::uint64_t> tag{0};
    /// (epoch << 32) | (iter + 1); raised by fetch-max.
    std::atomic<std::uint64_t> stamp{0};
    T saved{};
  };

  static std::size_t round_capacity(std::size_t capacity) noexcept {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    return cap;
  }

  std::uint64_t pack_tag(std::size_t idx) const noexcept {
    assert(idx <= kMaxKey);
    return (static_cast<std::uint64_t>(epoch_.value()) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(idx + 1));
  }

  std::uint64_t pack_stamp(long iter) const noexcept {
    assert(iter >= 0 && iter <= kMaxIter);
    return (static_cast<std::uint64_t>(epoch_.value()) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter + 1));
  }

  std::uint64_t stamp_threshold(long trip) const noexcept {
    if (trip < 0) trip = -1;
    const std::uint64_t low =
        trip >= kMaxIter ? (1ull << 32) : static_cast<std::uint64_t>(trip + 1);
    return (static_cast<std::uint64_t>(epoch_.value()) << 32) + low;
  }

  long undo_range(std::vector<T>& data, std::uint64_t threshold, long lo,
                  long hi) noexcept {
    long undone = 0;
    for (long i = lo; i < hi; ++i) {
      Slot& s = slots_[static_cast<std::size_t>(i)];
      const std::uint64_t tag = s.tag.load(std::memory_order_acquire);
      if ((tag >> 32) != epoch_.value()) continue;  // free or stale slot
      if (s.stamp.load(std::memory_order_relaxed) >= threshold) {
        data[static_cast<std::size_t>(tag & 0xffffffffu) - 1] = s.saved;
        ++undone;
      }
    }
    return undone;
  }

  /// Returns the slot owning `idx`, claiming a free/stale one if needed, or
  /// nullptr when every slot on the probe path is live with another key.
  Slot* find_or_claim(std::size_t idx, const T* old_value) {
    const std::uint64_t want_tag = pack_tag(idx);
    std::size_t h = static_cast<std::size_t>(mix64(idx)) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      Slot& s = slots_[h];
      std::uint64_t tag = s.tag.load(std::memory_order_acquire);
      if (tag == want_tag) return &s;
      if ((tag >> 32) != epoch_.value()) {
        // Free (or stale-epoch) slot: claim it by publishing the tag first;
        // only the CAS winner writes `saved` (losers for the same key return
        // the slot and never touch the payload).  undo_into runs after the
        // parallel section, so the pool join publishes the value.
        if (s.tag.compare_exchange_strong(tag, want_tag,
                                          std::memory_order_acq_rel)) {
          s.saved = *old_value;
          occupied_.fetch_add(1, std::memory_order_relaxed);
          return &s;
        }
        if (tag == want_tag) return &s;  // someone claimed it for our key
        // else: claimed for a different key; keep probing
      }
      h = (h + 1) & mask_;
    }
    return nullptr;
  }

  /// Once per 2^32 clears: genuinely forget every slot by storing the
  /// reserved epoch 0; the EpochClock restarts its counter above it.
  void sweep_epochs() noexcept {
    for (auto& s : slots_) {
      s.tag.store(0, std::memory_order_relaxed);
      s.stamp.store(0, std::memory_order_relaxed);
    }
  }

  using SlotAlloc = mem::ArenaAllocator<Slot>;

  std::vector<Slot, SlotAlloc> slots_;  ///< arena block, recycled on retire
  std::size_t mask_ = 0;
  mem::EpochClock epoch_;  ///< epoch 0 is reserved for "never claimed"
  std::atomic<std::size_t> occupied_{0};
  std::atomic<bool> overflow_{false};
};

}  // namespace wlp
