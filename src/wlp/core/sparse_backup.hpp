// Hash-table backup for sparse access patterns — Section 4.
//
// "If the access pattern of any array in the loop is known to be sparse,
// then the memory requirements could be reduced by using hash tables ...
// since only the elements of the array accessed in the loop would be
// inserted."  HashBackup<T> is a fixed-capacity, open-addressing concurrent
// map from array index to (pre-loop value, max writer stamp).  The first
// writer of a location claims a slot and saves the old value; subsequent
// writers only raise the stamp.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "wlp/support/prng.hpp"

namespace wlp {

template <class T>
class HashBackup {
 public:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  /// `capacity` is rounded up to a power of two and should exceed the
  /// expected number of *distinct* written locations by ~2x.
  explicit HashBackup(std::size_t capacity) {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  /// Record that iteration `iter` is about to overwrite data[idx], whose
  /// current (possibly pre-loop) value is `old_value`.  Only the first
  /// recorder's old value is kept — by construction that is the pre-loop
  /// value, because every writer records before writing.
  void record(long iter, std::size_t idx, const T& old_value) {
    Slot& s = find_or_claim(idx, &old_value);
    // fetch-max on the stamp
    long cur = s.stamp.load(std::memory_order_relaxed);
    while (iter > cur &&
           !s.stamp.compare_exchange_weak(cur, iter, std::memory_order_acq_rel)) {
    }
  }

  /// Restore into `data` every recorded location whose stamp >= trip.
  /// Returns the number restored.
  long undo_into(std::vector<T>& data, long trip) {
    long undone = 0;
    for (auto& s : slots_) {
      const std::size_t key = s.key.load(std::memory_order_acquire);
      if (key == kEmpty) continue;
      if (s.stamp.load(std::memory_order_relaxed) >= trip) {
        data[key] = s.saved;
        ++undone;
      }
    }
    return undone;
  }

  /// Restore everything recorded (failed speculation).
  long restore_all_into(std::vector<T>& data) {
    return undo_into(data, -1);
  }

  std::size_t entries() const noexcept {
    return occupied_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Drop every recorded entry (commit point in strip-wise drivers).
  void clear() noexcept {
    for (auto& s : slots_) {
      s.key.store(kEmpty, std::memory_order_relaxed);
      s.stamp.store(-1, std::memory_order_relaxed);
    }
    occupied_.store(0, std::memory_order_relaxed);
  }

  /// Bytes of backup state actually in use — the quantity the Section 8
  /// window controller budgets against.
  std::size_t memory_bytes() const noexcept {
    return entries() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> key{kEmpty};
    std::atomic<long> stamp{-1};
    T saved{};
  };

  Slot& find_or_claim(std::size_t idx, const T* old_value) {
    std::size_t h = static_cast<std::size_t>(mix64(idx)) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      Slot& s = slots_[h];
      std::size_t key = s.key.load(std::memory_order_acquire);
      if (key == idx) return s;
      if (key == kEmpty) {
        // Write the payload first, then publish the key: a reader that sees
        // the key (via acquire) also sees the saved value.
        std::size_t expected = kEmpty;
        // Claim attempt: we must not write `saved` before owning the slot,
        // so claim with a reserved marker first is overkill here — instead
        // CAS the key last but stage the value through a per-slot race:
        // only the winning CAS's thread writes `saved` (losers retry), and
        // undo_into runs after the parallel section (happens-before via the
        // pool join), so the value is visible by then.
        if (s.key.compare_exchange_strong(expected, idx,
                                          std::memory_order_acq_rel)) {
          s.saved = *old_value;
          occupied_.fetch_add(1, std::memory_order_relaxed);
          return s;
        }
        if (expected == idx) return s;  // someone else claimed it for us
        // else: claimed for a different index; keep probing
      }
      h = (h + 1) & mask_;
    }
    throw std::runtime_error("HashBackup: capacity exhausted");
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> occupied_{0};
};

}  // namespace wlp
