// Strip-mined speculation — the closing case of Section 5.
//
// "If the termination condition of the WHILE loop is dependent (data or
// control) upon a variable with unknown dependences ... the last valid
// iteration of the loop might be incorrectly determined, or, even worse,
// the termination condition might never be met (an infinite loop).  In
// this situation, the best solution is probably to strip-mine the loop,
// and to run the PD test on each strip."
//
// strip_speculative_while() therefore commits the loop strip by strip:
//
//   for each strip [base, base+s):
//     checkpoint -> speculative DOALL -> PD analysis filtered by the
//     strip's trip;
//     on success: undo the strip's overshoot, COMMIT, continue;
//     on failure: restore the strip, execute it sequentially (which also
//     re-evaluates the terminator against committed state), then continue
//     speculating on the next strip.
//
// Because each strip's exit decisions are validated before the next strip
// starts, a dependence-corrupted terminator can mislead the execution by
// at most one strip — and the sequential re-execution of that strip fixes
// it.  The strip length also bounds the time-stamp memory (Section 8.1).
#pragma once

#include <span>

#include "wlp/obs/obs.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/speculative.hpp"

namespace wlp {

struct StripSpecReport {
  ExecReport exec;
  long strips_run = 0;
  long strips_failed = 0;  ///< strips that fell back to sequential execution
  long claims = 0;         ///< scheduler grabs across all strips (see
                           ///< QuitResult::claims); guided opts.doall.sched
                           ///< shrinks this without changing strip semantics
  // Transaction-aware strip control (active when opts.memory_budget != 0):
  // the driver polls the transaction's fused memory_bytes() after every
  // strip and halves the NEXT strip when the measured footprint crosses
  // half the budget (committing more often pins less), growing back
  // additively while comfortable.  exec.peak_spec_bytes carries the max
  // polled value either way.
  long strip_shrinks = 0;  ///< times the next strip was halved
  long final_strip = 0;    ///< strip length in effect when the loop ended
};

/// `body(i, vpn) -> IterAction` is the instrumented parallel body (routes
/// accesses through the targets).  `run_strip_sequential(base, end) -> trip`
/// executes iterations [base, end) serially against raw data and returns
/// the trip count (== end when no exit fires inside the strip).
template <class Body, class SeqStrip>
StripSpecReport strip_speculative_while(ThreadPool& pool, long u, long strip,
                                        std::span<SpecTarget* const> targets,
                                        Body&& body, SeqStrip&& run_strip_sequential,
                                        SpecOptions opts = {}) {
  StripSpecReport out;
  out.exec.method = Method::kStripMined;
  out.exec.used_checkpoint = true;
  out.exec.used_stamps = true;
  if (strip <= 0) strip = u;

  // ONE transaction for the whole strip sequence: the chunk maps are built
  // once here, so every strip's begin/undo/restore allocates nothing.
  SpecTransaction txn(targets);

  // Cross-strip verdict memoization: a steady-state loop touches the same
  // elements at the same strip-relative iterations every strip, so after
  // the first strip the PD analysis is one summary fold + one cache probe.
  if (opts.verdict_cache != nullptr)
    for (SpecTarget* t : targets) t->enable_access_signatures(true);
  long footprint_seen = txn.footprint_epochs();

  long cur_strip = strip;
  out.final_strip = cur_strip;
  long base = 0;
  while (base < u) {
    const long end = std::min(base + cur_strip, u);
    ++out.strips_run;
    WLP_TRACE_SCOPE("strip", base, end - base);
    WLP_OBS_COUNT("wlp.strip.runs", 1);

    {
      const auto cp0 = std::chrono::steady_clock::now();
      // Fused reset (O(1) epoch bumps) + ONE parallel checkpoint pass over
      // every target; no allocation in steady state.
      txn.begin(&pool);
      out.exec.checkpoint_ns += detail::spec_ns_since(cp0);
    }

    bool failed = false;
    QuitResult qr{};
    try {
      qr = doall_quit(pool, base, end, body, opts.doall);
      out.claims += qr.claims;
    } catch (...) {
      failed = true;
    }

    // Per-strip instrumentation volume (accessor counters reset with the
    // strip's reset_marks() above, so this is exactly this strip's marks).
    const long strip_marks = txn.marks();
    out.exec.shadow_marks += strip_marks;
    WLP_OBS_COUNT("wlp.pd.marks", strip_marks);

    // Transaction-aware strip control: the backups are at their fullest
    // right after the strip's parallel section, so poll the fused footprint
    // here — before commit/restore clears it — and resize the NEXT strip
    // against the budget.  This retires the hand-wired per-target byte
    // probes callers used to need: the driver asks the transaction.
    if (opts.memory_budget != 0) {
      const std::size_t pinned = txn.memory_bytes();
      out.exec.peak_spec_bytes = std::max(out.exec.peak_spec_bytes, pinned);
      if (pinned * 2 > opts.memory_budget) {
        const long before = cur_strip;
        cur_strip = std::max(1L, cur_strip / 2);
        if (cur_strip != before) ++out.strip_shrinks;
      } else {
        cur_strip = std::min(strip, cur_strip + std::max(1L, strip / 8));
      }
      out.final_strip = cur_strip;
    }

    // Backup overflow inside the strip = incomplete parallel execution:
    // fail the strip exactly like a PD miss (restore + serial re-run).
    if (txn.overflowed()) {
      out.exec.backup_overflow = true;
      failed = true;
      WLP_OBS_COUNT("wlp.spec.backup_overflow", 1);
    }

    // A backend flip (AdaptiveSpecArray hash <-> dense) changes the write
    // density the signatures embed: drop memoized verdicts from before it.
    if (opts.verdict_cache != nullptr) {
      const long fp = txn.footprint_epochs();
      if (fp != footprint_seen) {
        footprint_seen = fp;
        opts.verdict_cache->invalidate_all();
      }
    }

    if (!failed) {
      for (SpecTarget* t : targets) {
        if (!t->shadowed()) continue;
        out.exec.pd_tested = true;
        bool hit = false;
        const PDVerdict v = pdcache::analyze_with_cache(
            opts.verdict_cache, *t, pool, base, qr.trip, &hit);
        if (opts.verdict_cache != nullptr) {
          ++out.exec.verdict_probes;
          if (hit) ++out.exec.verdict_hits;
        }
        if (!v.fully_parallel()) {
          out.exec.pd_passed = false;
          failed = true;
        }
      }
    }

    if (failed) {
      // Misspeculation (PD miss, overflow, or an exception): the loop's
      // behavior diverged from the memoized patterns — drop them all.
      if (opts.verdict_cache != nullptr) opts.verdict_cache->invalidate_all();
      ++out.strips_failed;
      WLP_OBS_COUNT("wlp.strip.failures", 1);
      const auto ra0 = std::chrono::steady_clock::now();
      txn.restore_all(&pool);
      out.exec.undo_ns += detail::spec_ns_since(ra0);
      const long trip = run_strip_sequential(base, end);
      out.exec.started += trip - base;
      if (trip < end) {
        out.exec.trip = trip;
        out.exec.reexecuted_sequentially = true;  // at least one strip was
        return out;
      }
      base = end;
      continue;
    }

    out.exec.started += qr.started;
    if (qr.trip < end) {  // the loop genuinely ends inside this strip
      {
        WLP_TRACE_SCOPE_NAMED(undo_scope, "undo", qr.trip, 0);
        const auto ud0 = std::chrono::steady_clock::now();
        out.exec.undone_writes +=
            txn.undo_beyond(qr.trip, opts.undo_in_parallel ? &pool : nullptr);
        out.exec.undo_ns += detail::spec_ns_since(ud0);
        undo_scope.args(static_cast<std::uint64_t>(qr.trip),
                        static_cast<std::uint64_t>(out.exec.undone_writes));
      }
      WLP_OBS_HIST("wlp.spec.undo_writes", out.exec.undone_writes);
      out.exec.trip = qr.trip;
      out.exec.overshot += std::max(0L, qr.started - (qr.trip - base));
      return out;
    }
    txn.discard();
    base = end;
  }

  out.exec.trip = u;
  return out;
}

}  // namespace wlp
