#include "wlp/core/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wlp {

double ideal_parallel_time(const LoopTiming& t, unsigned p,
                           DispatcherParallelism dp, double log_p_cost) {
  const double pd = static_cast<double>(p);
  switch (dp) {
    case DispatcherParallelism::kFull:
      // Closed-form dispatcher: everything parallelizes.
      return (t.t_rem + t.t_rec) / pd;
    case DispatcherParallelism::kPrefix:
      // Prefix evaluation adds a log(p) term to the fully parallel time.
      return (t.t_rem + t.t_rec) / pd + log_p_cost * std::log2(std::max(2.0, pd));
    case DispatcherParallelism::kSequential:
      // The recurrence is a serial chain; only the remainder parallelizes.
      return t.t_rem / pd + t.t_rec;
  }
  return t.t_seq();
}

double ideal_speedup(const LoopTiming& t, unsigned p, DispatcherParallelism dp,
                     double log_p_cost) {
  const double tipar = ideal_parallel_time(t, p, dp, log_p_cost);
  return tipar > 0 ? t.t_seq() / tipar : 1.0;
}

OverheadTerms overhead_terms(const OverheadProfile& o, unsigned p, double spid) {
  OverheadTerms terms;
  const double a = static_cast<double>(o.accesses) * o.access_cost;
  const double pd = static_cast<double>(p);
  if (o.needs_undo) {
    // Checkpoint before and undo after: both fully parallel, O(a/p) — unless
    // the runtime supplied measured values, in which case the batched
    // implementation's real cost replaces the model term (the PD analysis
    // term below stays additive either way).
    terms.t_b = o.measured_tb >= 0 ? o.measured_tb : a / pd;
    terms.t_a = o.measured_ta >= 0 ? o.measured_ta : a / pd;
  }
  // During-loop bookkeeping (time-stamps and/or shadow marks — one O(1)
  // operation per access either way) parallelizes only as far as the loop
  // itself does: Td = O(a / Spid).  This is the paper's single "during"
  // term; making it per-mechanism would overstate the Section 7 worst case.
  const double during_scale = std::max(1.0, spid);
  if (o.needs_undo || o.pd_test) terms.t_d = a / during_scale;
  if (o.pd_test) {
    // The PD test's post-execution analysis adds the fifth a/p term —
    // discounted by the fraction of analyses the verdict cache serves
    // (a hit is one O(workers) summary fold + a table probe, negligible
    // next to the O(a/p) merge it replaces).
    const double hit = std::clamp(o.verdict_hit_rate, 0.0, 1.0);
    terms.t_a += (1.0 - hit) * (a / pd);
  }
  return terms;
}

double attainable_speedup(const LoopTiming& t, const OverheadProfile& o,
                          unsigned p, DispatcherParallelism dp,
                          double log_p_cost) {
  const double spid = ideal_speedup(t, p, dp, log_p_cost);
  const double tipar = ideal_parallel_time(t, p, dp, log_p_cost);
  const OverheadTerms terms = overhead_terms(o, p, spid);
  const double denom = tipar + terms.total();
  return denom > 0 ? t.t_seq() / denom : 1.0;
}

Prediction predict(const LoopTiming& t, const OverheadProfile& o, unsigned p,
                   DispatcherParallelism dp, double min_speedup,
                   double log_p_cost) {
  Prediction pr;
  pr.spid = ideal_speedup(t, p, dp, log_p_cost);
  pr.spat = attainable_speedup(t, o, p, dp, log_p_cost);
  pr.efficiency = pr.spid > 0 ? pr.spat / pr.spid : 0.0;
  // A failed PD test costs the speculative attempt (~5/p of Tseq in the
  // worst case) on top of the sequential re-execution.
  pr.failed_slowdown = o.pd_test ? 5.0 / static_cast<double>(p) : 0.0;
  pr.recommend = pr.spat >= min_speedup;
  return pr;
}

OverheadProfile observed_overheads(double marks_per_iteration,
                                   double expected_trip, bool pd_test,
                                   bool needs_undo, double access_cost,
                                   double measured_tb, double measured_ta,
                                   double verdict_hit_rate) {
  OverheadProfile o;
  o.accesses = static_cast<long>(std::max(0.0, marks_per_iteration) *
                                 std::max(0.0, expected_trip));
  o.access_cost = access_cost;
  o.pd_test = pd_test;
  o.needs_undo = needs_undo;
  o.measured_tb = measured_tb;
  o.measured_ta = measured_ta;
  o.verdict_hit_rate = verdict_hit_rate;
  return o;
}

double BranchStats::exit_probability() const noexcept {
  const long total = exit_taken + exit_not_taken;
  if (total <= 0) return 0.0;
  return static_cast<double>(exit_taken) / static_cast<double>(total);
}

double estimate_trip(const BranchStats& b) {
  const double q = b.exit_probability();
  if (q <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / q;
}

double expected_speculative_speedup(const Prediction& pred, double p_parallel) {
  const double p = std::clamp(p_parallel, 0.0, 1.0);
  // A failure runs the loop sequentially again after the failed attempt:
  // time = (1 + failed_slowdown) * Tseq, i.e. speedup 1/(1 + slowdown).
  return p * pred.spat + (1.0 - p) / (1.0 + pred.failed_slowdown);
}

DoallOptions choose_schedule(long upper_bound, double expected_trip,
                             double iter_cost_cv, unsigned p) {
  DoallOptions opts;
  const double pd = static_cast<double>(std::max(1u, p));
  const double u = static_cast<double>(std::max(0L, upper_bound));
  double trip = expected_trip > 0 ? std::min(expected_trip, u) : u;

  if (trip < 2.0 * pd) {
    // Not enough iterations for claim traffic to pay for itself; cyclic
    // issue also caps overshoot at p iterations past the exit.
    opts.sched = Sched::kStaticCyclic;
    return opts;
  }
  if (iter_cost_cv > 0.5) {
    // Irregular bodies: any chunking risks a straggler owning the tail.
    opts.sched = Sched::kDynamic;
    opts.chunk = 1;
    return opts;
  }
  if (trip < 0.5 * u) {
    // Early exit is likely: guided grabs computed from the full bound would
    // be ~u/p iterations of pure overshoot.  Self-schedule at a chunk that
    // amortizes the counter over the *expected* useful range instead.
    opts.sched = Sched::kDynamic;
    opts.chunk = std::max(1L, static_cast<long>(trip / (8.0 * pd)));
    return opts;
  }
  opts.sched = Sched::kGuided;
  opts.chunk = std::max(1L, static_cast<long>(trip / (16.0 * pd)));
  return opts;
}

BackupDecision choose_backup(std::size_t n, std::size_t touched,
                             double measured_tb, double measured_ta) noexcept {
  BackupDecision d;
  if (n == 0) return d;
  d.density = static_cast<double>(std::min(touched, n)) /
              static_cast<double>(n);
  // Cost model in checkpoint-copy units (one element copied to the backup
  // = 1).  The dense path pays the full checkpoint up front plus ~1 unit
  // per touched location at undo.  The hash path skips the checkpoint but
  // pays per touched location: a record is a hash + probe + tag CAS +
  // stamp fetch-max (~kHashOp copies' worth of memory traffic), and the
  // undo slot scan visits ~2x touched slots (power-of-two table sized with
  // 2x headroom) at ~kHashScan each.
  //
  //   dense(t) = n + t          hash(t) = kHashOp*t + 2*kHashScan*t
  //
  // Hash wins while t < n / (kHashOp + 2*kHashScan - 1), i.e. below a
  // density theta = 1/7 with the defaults.  When the runtime has measured
  // Tb/Ta for this array (LoopStatistics feeds them through), the unit
  // costs are re-derived from them: an expensive checkpoint (NUMA-remote
  // data, huge n) raises theta — sparse stays attractive longer — while an
  // expensive undo pass lowers it.  Theta is clamped to [1/64, 1/2]: below
  // 1/64 the hash table's constant factors are noise, above 1/2 the table
  // would outgrow the checkpoint it replaces.
  constexpr double kHashOp = 4.0;
  constexpr double kHashScan = 2.0;
  double per_copy = 1.0;  // checkpoint cost per element
  double per_undo = 1.0;  // dense undo cost per touched location
  if (measured_tb > 0.0)
    per_copy = measured_tb / static_cast<double>(n);
  if (measured_ta > 0.0 && touched > 0)
    per_undo = measured_ta / static_cast<double>(touched);
  const double hash_extra =
      kHashOp * per_copy + 2.0 * kHashScan * per_undo - per_copy - per_undo;
  d.theta = hash_extra > 0.0 ? per_copy / hash_extra : 0.5;
  d.theta = std::clamp(d.theta, 1.0 / 64.0, 0.5);
  d.kind = d.density < d.theta ? BackupKind::kHash : BackupKind::kDense;
  return d;
}

}  // namespace wlp
