// Resource-controlled self-scheduling — Section 8.2.
//
// A sliding window of size w bounds the spread between the minimum
// not-yet-completed iteration l and the maximum issued iteration h:
// h - l <= w at all times, so time-stamp memory is bounded by w times the
// writes per iteration *without* the rigid global barriers of strip-mining.
// The window is adjusted dynamically at the application level against a
// memory budget: grown while the stamp footprint is comfortably under
// budget, shrunk when it approaches it.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "wlp/obs/obs.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/thread_pool.hpp"

namespace wlp {

struct WindowOptions {
  long window = 64;          ///< initial window size
  long min_window = 2;
  long max_window = 1 << 20;
  std::size_t bytes_per_iteration = 0;  ///< stamp memory one iteration pins
  std::size_t memory_budget = 0;        ///< 0 disables dynamic adjustment
  /// MEASURED backup footprint, polled at every claim: when set, the
  /// controller compares this against the budget instead of multiplying the
  /// span by the bytes_per_iteration guess.  The speculative wrapper wires
  /// it to the targets' memory_bytes() (sparse backups report their live
  /// touched set, dense ones their data+backup+stamp footprint), so the
  /// window reacts to what the backups actually pinned.  To throttle on the
  /// WHOLE process's speculative footprint instead of one target set's,
  /// point it at the arena ledger: `opts.live_bytes = [] {
  /// return static_cast<std::size_t>(wlp::mem::process_bytes_live()); }`
  /// (see mem/budget.hpp; the mem tests pin this wiring).
  std::function<std::size_t()> live_bytes;
  /// Claim granularity inside the window.  kDynamic issues one iteration
  /// per grab (the original Section 8.2 behavior); kGuided claims
  /// min(remaining/p, window slack) per grab, cutting the lock round-trips
  /// on the issue mutex while h - l <= w still holds exactly.  Other
  /// schedules behave as kDynamic (the window is inherently self-scheduled).
  Sched sched = Sched::kDynamic;
};

struct WindowReport {
  ExecReport exec;
  long max_span = 0;       ///< max (h - l) observed; must stay <= max window used
  long final_window = 0;   ///< window size when the loop ended
  long claims = 0;         ///< grabs of the issue lock that yielded work
  std::size_t peak_stamp_bytes = 0;
};

/// Execute `body(i, vpn) -> IterAction` over [0, u) with windowed dynamic
/// self-scheduling.  Honors QUIT like the other methods.
template <class Body>
WindowReport sliding_window_while(ThreadPool& pool, long u, Body&& body,
                                  WindowOptions opts = {}) {
  WindowReport wr;
  wr.exec.method = Method::kSlidingWindow;
  if (u <= 0) return wr;
  WLP_TRACE_SCOPE("window.run", u, opts.window);

  std::mutex mu;
  std::condition_variable cv;
  long next = 0;  // next iteration to issue
  long low = 0;   // min iteration not yet completed
  // The budget caps the window outright: w * bytes_per_iteration <= budget
  // is the guarantee (peak stamp memory is bounded by the window).
  long hard_max = opts.max_window;
  if (opts.memory_budget != 0 && opts.bytes_per_iteration != 0)
    hard_max = std::min<long>(
        hard_max, std::max<long>(opts.min_window,
                                 static_cast<long>(opts.memory_budget /
                                                   opts.bytes_per_iteration)));
  long window = std::clamp(opts.window, opts.min_window, hard_max);
  std::vector<unsigned char> done(static_cast<std::size_t>(u), 0);
  QuitBound quit;
  long trip_candidate = std::numeric_limits<long>::max();
  long started = 0;
  long max_span = 0;
  long claims = 0;
  std::size_t peak_bytes = 0;

  pool.parallel([&](unsigned vpn) {
    for (;;) {
      long base, take;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] {
          return next >= u || quit.cut(next) || next - low < window;
        });
        if (next >= u || quit.cut(next)) return;
        const long slack = window - (next - low);
        take = 1;
        if (opts.sched == Sched::kGuided) {
          const long rem = u - next;
          take = std::clamp(rem / static_cast<long>(pool.size()), 1L, slack);
        }
        take = std::min(take, u - next);
        base = next;
        next += take;
        ++claims;
        max_span = std::max(max_span, next - low);
        WLP_TRACE_INSTANT("window.claim", base, take);
        if (opts.memory_budget != 0 &&
            (opts.live_bytes || opts.bytes_per_iteration != 0)) {
          // Prefer the measured footprint over the per-iteration guess.
          const std::size_t in_use =
              opts.live_bytes
                  ? opts.live_bytes()
                  : static_cast<std::size_t>(next - low) *
                        opts.bytes_per_iteration;
          peak_bytes = std::max(peak_bytes, in_use);
          // Multiplicative decrease when occupancy approaches the budget,
          // additive increase while comfortably under it — always inside
          // the hard cap derived from the budget.
          const long before = window;
          if (in_use * 2 > opts.memory_budget) {
            window = std::max(opts.min_window, window / 2);
          } else {
            window = std::min(hard_max, window + 1);
          }
          if (window != before) WLP_TRACE_COUNTER("window.size", window);
        }
        started += take;
      }

      for (long i = base; i < base + take; ++i) {
        if (i > base && quit.cut(i)) {
          // QUIT landed mid-claim: retire the unexecuted tail so `low` can
          // advance past it (the bodies never ran, so uncount them).
          std::lock_guard lock(mu);
          started -= base + take - i;
          for (long j = i; j < base + take; ++j)
            done[static_cast<std::size_t>(j)] = 1;
          while (low < u && done[static_cast<std::size_t>(low)]) ++low;
          break;
        }
        const IterAction act = body(i, vpn);
        if (act == IterAction::kExit) quit.quit(i);
        if (act == IterAction::kExitAfter) quit.quit(i + 1);

        {
          std::lock_guard lock(mu);
          if (act == IterAction::kExit)
            trip_candidate = std::min(trip_candidate, i);
          if (act == IterAction::kExitAfter)
            trip_candidate = std::min(trip_candidate, i + 1);
          done[static_cast<std::size_t>(i)] = 1;
          while (low < u && done[static_cast<std::size_t>(low)]) ++low;
        }
        cv.notify_all();
      }
      cv.notify_all();
    }
  });

  wr.exec.trip = std::min(trip_candidate, u);
  wr.exec.started = started;
  wr.exec.overshot = std::max(0L, started - wr.exec.trip);
  wr.max_span = max_span;
  wr.final_window = window;
  wr.claims = claims;
  wr.peak_stamp_bytes = peak_bytes;
  WLP_OBS_COUNT("wlp.window.runs", 1);
  WLP_OBS_COUNT("wlp.window.claims", claims);
  WLP_OBS_HIST("wlp.window.span", max_span);
  WLP_OBS_HIST("wlp.window.overshoot", wr.exec.overshot);
  WLP_OBS_GAUGE_SET("wlp.window.final_size", window);
  return wr;
}

/// Windowed execution of a loop whose accesses are NOT proven independent:
/// Section 8.2's scheduler combined with Section 5's speculation.  The
/// window bounds stamp memory during the speculative run; the PD analysis
/// (trip-filtered) then validates it like any other speculative execution.
///
/// `body(i, vpn) -> IterAction` must route accesses through the registered
/// targets (begin_iteration first); `run_sequential() -> trip` is the
/// fallback after a full restore.  Retries against the same targets are
/// cheap: reset_marks() is an O(1) epoch bump under the privatized policy.
template <class Body, class SeqRun>
WindowReport sliding_window_speculative_while(
    ThreadPool& pool, long u, std::span<SpecTarget* const> targets,
    Body&& body, SeqRun&& run_sequential, WindowOptions wopts = {},
    bool undo_in_parallel = true) {
  WLP_TRACE_SCOPE("window.spec", u, wopts.window);
  SpecTransaction txn(targets);
  double checkpoint_ns = 0;
  {
    const auto cp0 = std::chrono::steady_clock::now();
    txn.begin(&pool);
    checkpoint_ns = detail::spec_ns_since(cp0);
  }
  // Feed the budget controller the backups' MEASURED footprint (Section 8.2
  // against real bytes): sparse targets grow as locations are touched, so
  // the window shrinks when the backup — not a guess — nears the budget.
  // The transaction sums its members (shared stamp indexes counted once).
  if (wopts.memory_budget != 0 && !wopts.live_bytes) {
    wopts.live_bytes = [&txn] { return txn.memory_bytes(); };
  }

  bool failed = false;
  WindowReport wr;
  try {
    wr = sliding_window_while(pool, u, body, wopts);
  } catch (...) {
    failed = true;  // Section 5.1: exception == invalid parallel execution
    WLP_OBS_COUNT("wlp.spec.exceptions", 1);
  }
  wr.exec.method = Method::kSlidingWindow;
  wr.exec.used_checkpoint = true;
  wr.exec.used_stamps = true;
  wr.exec.checkpoint_ns = checkpoint_ns;

  wr.exec.shadow_marks = txn.marks();
  WLP_OBS_COUNT("wlp.pd.marks", wr.exec.shadow_marks);

  if (txn.overflowed()) {
    wr.exec.backup_overflow = true;
    failed = true;
    WLP_OBS_COUNT("wlp.spec.backup_overflow", 1);
  }

  if (!failed) {
    WLP_TRACE_SCOPE("pd.analyze", wr.exec.trip, 0);
    for (SpecTarget* t : targets) {
      if (!t->shadowed()) continue;
      wr.exec.pd_tested = true;
      if (!t->analyze(pool, wr.exec.trip).fully_parallel()) {
        wr.exec.pd_passed = false;
        failed = true;
      }
    }
    if (wr.exec.pd_tested)
      WLP_OBS_COUNT(wr.exec.pd_passed ? "wlp.spec.pd_pass" : "wlp.spec.pd_fail",
                    1);
  }

  if (failed) {
    WLP_OBS_COUNT("wlp.spec.seq_reexec", 1);
    const auto ra0 = std::chrono::steady_clock::now();
    txn.restore_all(&pool);
    wr.exec.undo_ns = detail::spec_ns_since(ra0);
    wr.exec.reexecuted_sequentially = true;
    wr.exec.trip = run_sequential();
    return wr;
  }

  {
    const auto ud0 = std::chrono::steady_clock::now();
    wr.exec.undone_writes +=
        txn.undo_beyond(wr.exec.trip, undo_in_parallel ? &pool : nullptr);
    wr.exec.undo_ns = detail::spec_ns_since(ud0);
  }
  WLP_OBS_HIST("wlp.spec.undo_writes", wr.exec.undone_writes);
  return wr;
}

}  // namespace wlp
