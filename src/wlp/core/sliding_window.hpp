// Resource-controlled self-scheduling — Section 8.2.
//
// A sliding window of size w bounds the spread between the minimum
// not-yet-completed iteration l and the maximum issued iteration h:
// h - l <= w at all times, so time-stamp memory is bounded by w times the
// writes per iteration *without* the rigid global barriers of strip-mining.
// The window is adjusted dynamically at the application level against a
// memory budget: grown while the stamp footprint is comfortably under
// budget, shrunk when it approaches it.
//
// The budget controller is TRANSACTION-AWARE (DESIGN.md §10): instead of
// capping the window once from a static bytes-per-iteration guess, it keeps
// an EWMA of the MEASURED bytes the backups pin per in-flight iteration
// (live_bytes() / span, sampled at every claim) and re-derives the hard cap
// budget / EWMA live.  A footprint_changed() notification from the
// transaction (an AdaptiveSpecArray flipping hash -> dense is a step jump
// the poll can miss) makes the next decision adopt the fresh sample
// outright and clamp straight to the re-derived cap — no waiting for one
// halving per claim to catch up.  Optionally the controller settles its
// measured footprint into the process-wide wlp::mem Budget so concurrent
// loops budget against the SUM and share one ceiling.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "wlp/obs/obs.hpp"
#include "wlp/core/report.hpp"
#include "wlp/core/speculative.hpp"
#include "wlp/mem/budget.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/thread_pool.hpp"

namespace wlp {

class WindowController;

struct WindowOptions {
  long window = 64;          ///< initial window size
  long min_window = 2;
  long max_window = 1 << 20;
  /// SEED for the controller's bytes-per-iteration estimate (first cap
  /// derivation only).  As soon as measured samples exist the EWMA replaces
  /// it; with live_bytes unset it doubles as the per-claim footprint guess.
  std::size_t bytes_per_iteration = 0;
  std::size_t memory_budget = 0;        ///< 0 disables dynamic adjustment
  /// MEASURED backup footprint, polled at every claim: when set, the
  /// controller compares this against the budget instead of multiplying the
  /// span by the bytes_per_iteration guess, and feeds the per-iteration
  /// EWMA that re-derives the window cap.  The speculative wrapper wires it
  /// to the transaction's fused memory_bytes() (sparse backups report their
  /// live touched set, dense ones their data+backup+stamp footprint), so
  /// the window reacts to what the backups actually pinned.  To throttle on
  /// the WHOLE process's speculative footprint instead of one target set's,
  /// prefer charge_process_budget below over hand-wiring probes.
  std::function<std::size_t()> live_bytes;
  /// Settle the measured footprint into wlp::mem::Budget::spec_bytes() and
  /// budget against the process-wide SUM: concurrent budgeted loops then
  /// share one ceiling instead of each assuming it owns the whole budget.
  bool charge_process_budget = false;
  /// External controller wired by the speculative wrapper (it registers the
  /// controller as the transaction's footprint listener so backend flips
  /// clamp the window immediately).  Null = the run builds its own.  A
  /// controller serves ONE run; construct a fresh one per loop.
  WindowController* controller = nullptr;
  /// Claim granularity inside the window.  kDynamic issues one iteration
  /// per grab (the original Section 8.2 behavior); kGuided claims
  /// min(remaining/p, window slack) per grab, cutting the lock round-trips
  /// on the issue mutex while h - l <= w still holds exactly.  Other
  /// schedules behave as kDynamic (the window is inherently self-scheduled).
  Sched sched = Sched::kDynamic;
  /// Optional cross-run verdict memoization (pd/verdict_cache.hpp): a loop
  /// re-windowed with the same access pattern skips the PD merge.  Same
  /// contract as SpecOptions::verdict_cache.
  pdcache::VerdictCache* verdict_cache = nullptr;
};

/// The transaction-aware budget controller: one instance per windowed run.
/// adjust() runs under the issue lock at every claim; footprint_changed()
/// may fire concurrently from any pool worker (it only flips an atomic).
class WindowController final : public FootprintListener {
 public:
  WindowController(long min_window, long max_window, std::size_t budget,
                   std::size_t seed_bytes_per_iter = 0,
                   bool charge_process_budget = false)
      : min_w_(std::max(1L, min_window)),
        max_w_(std::max(min_w_, max_window)),
        budget_(budget),
        charge_(charge_process_budget) {
    if (seed_bytes_per_iter != 0)
      ewma_bpi_ = static_cast<double>(seed_bytes_per_iter);
    recompute_cap();
  }

  ~WindowController() override { release(); }

  WindowController(const WindowController&) = delete;
  WindowController& operator=(const WindowController&) = delete;

  /// A member of the transaction step-changed its footprint (backend flip):
  /// make the next adjust() adopt the fresh sample outright and clamp to
  /// the re-derived cap instead of smoothing the jump away.
  void footprint_changed() noexcept override {
    step_.store(true, std::memory_order_release);
  }

  /// One budget decision: fold the measured bytes/iteration sample into the
  /// EWMA, re-derive the cap, settle the process charge, and move the
  /// window — multiplicative decrease when occupancy approaches the budget,
  /// additive increase while comfortably under it, always inside the cap.
  /// Returns the new window size.
  long adjust(long window, long span, std::size_t in_use) {
    if (budget_ == 0) return window;
    const bool step = step_.exchange(false, std::memory_order_acq_rel);
    const std::size_t occupied = charge_ ? settle(in_use) : in_use;
    foreign_ = occupied > in_use ? occupied - in_use : 0;
    if (span > 0 && in_use > 0) {
      const double sample =
          static_cast<double>(in_use) / static_cast<double>(span);
      // A notified step jump resets the average outright: smoothing a ~Nx
      // flip over 1/alpha claims is exactly the lag the hook exists to
      // kill.
      ewma_bpi_ = (ewma_bpi_ <= 0.0 || step)
                      ? sample
                      : kAlpha * sample + (1.0 - kAlpha) * ewma_bpi_;
    }
    recompute_cap();
    long w = window;
    if (occupied * 2 > budget_) {
      w = std::max(min_w_, w / 2);
    } else if (w < cap_) {
      ++w;
    }
    w = std::clamp(w, min_w_, cap_);
    if (w < window)
      ++shrinks_;
    else if (w > window)
      ++grows_;
    return w;
  }

  /// Settle any process-budget charge back to zero (run over).  Idempotent;
  /// the destructor calls it too.
  void release() noexcept {
    if (charge_ && charged_ != 0) {
      mem::Budget::process().add_spec_bytes(-static_cast<long>(charged_));
      charged_ = 0;
    }
  }

  /// Current hard cap on the window (iterations), re-derived at every
  /// adjust() from budget / EWMA(bytes per iteration).
  long cap() const noexcept { return cap_; }
  /// Bytes the current cap represents under the measured estimate — the
  /// controller's live answer to "how much can a full window pin".
  std::size_t cap_bytes() const noexcept { return cap_bytes_; }
  double bytes_per_iteration() const noexcept {
    return ewma_bpi_ > 0.0 ? ewma_bpi_ : 0.0;
  }
  long shrinks() const noexcept { return shrinks_; }
  long grows() const noexcept { return grows_; }

 private:
  static constexpr double kAlpha = 0.25;  ///< EWMA weight of the new sample

  void recompute_cap() noexcept {
    if (budget_ == 0) {
      cap_ = max_w_;
      cap_bytes_ = 0;
      return;
    }
    long cap = max_w_;
    // Budget left for THIS loop: the whole budget minus what concurrent
    // loops have charged (foreign_ is 0 outside process-budget mode).
    const std::size_t avail = budget_ > foreign_ ? budget_ - foreign_ : 0;
    if (ewma_bpi_ > 0.0)
      cap = static_cast<long>(static_cast<double>(avail) / ewma_bpi_);
    cap_ = std::clamp(cap, min_w_, max_w_);
    cap_bytes_ = ewma_bpi_ > 0.0
                     ? static_cast<std::size_t>(ewma_bpi_ *
                                                static_cast<double>(cap_))
                     : avail;
  }

  /// Process-budget mode: publish our measured footprint delta and return
  /// the process-wide total (ours + every concurrent loop's).
  std::size_t settle(std::size_t now) noexcept {
    mem::Budget::process().add_spec_bytes(static_cast<long>(now) -
                                          static_cast<long>(charged_));
    charged_ = now;
    const long total = mem::Budget::process().spec_bytes();
    return total > 0 ? static_cast<std::size_t>(total) : 0;
  }

  const long min_w_;
  const long max_w_;
  const std::size_t budget_;
  const bool charge_;
  std::atomic<bool> step_{false};
  double ewma_bpi_ = 0.0;         ///< EWMA of measured bytes per iteration
  long cap_ = 0;                  ///< derived hard cap (iterations)
  std::size_t cap_bytes_ = 0;     ///< bytes cap_ represents under the EWMA
  std::size_t foreign_ = 0;       ///< concurrent loops' charged bytes
  std::size_t charged_ = 0;       ///< our last settled footprint
  long shrinks_ = 0;
  long grows_ = 0;
};

struct WindowReport {
  ExecReport exec;
  long max_span = 0;       ///< max (h - l) observed; must stay <= max window used
  long final_window = 0;   ///< window size when the loop ended
  long claims = 0;         ///< grabs of the issue lock that yielded work
  std::size_t peak_stamp_bytes = 0;
  // Controller decisions (zero when no memory_budget was set).
  long window_shrinks = 0;     ///< multiplicative-decrease decisions
  long window_grows = 0;       ///< additive-increase decisions
  long final_cap = 0;          ///< derived hard cap at the end of the run
  std::size_t cap_bytes = 0;   ///< bytes that cap represents (EWMA estimate)
};

/// Execute `body(i, vpn) -> IterAction` over [0, u) with windowed dynamic
/// self-scheduling.  Honors QUIT like the other methods.
template <class Body>
WindowReport sliding_window_while(ThreadPool& pool, long u, Body&& body,
                                  WindowOptions opts = {}) {
  WindowReport wr;
  wr.exec.method = Method::kSlidingWindow;
  if (u <= 0) return wr;
  WLP_TRACE_SCOPE("window.run", u, opts.window);

  std::mutex mu;
  std::condition_variable cv;
  long next = 0;  // next iteration to issue
  long low = 0;   // min iteration not yet completed
  // The controller caps the window outright: w * bytes-per-iteration <=
  // budget is the guarantee (peak stamp memory is bounded by the window).
  // The cap starts from the bytes_per_iteration seed and is re-derived at
  // every claim from the EWMA of the measured footprint, so it tracks what
  // the backups actually pin instead of a static guess.
  WindowController local_ctl(opts.min_window, opts.max_window,
                             opts.memory_budget, opts.bytes_per_iteration,
                             opts.charge_process_budget);
  WindowController& ctl =
      opts.controller != nullptr ? *opts.controller : local_ctl;
  long window = std::clamp(opts.window, opts.min_window, ctl.cap());
  std::vector<unsigned char> done(static_cast<std::size_t>(u), 0);
  QuitBound quit;
  long trip_candidate = std::numeric_limits<long>::max();
  long started = 0;
  long max_span = 0;
  long claims = 0;
  std::size_t peak_bytes = 0;

  pool.parallel([&](unsigned vpn) {
    for (;;) {
      long base, take;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] {
          return next >= u || quit.cut(next) || next - low < window;
        });
        if (next >= u || quit.cut(next)) return;
        const long slack = window - (next - low);
        take = 1;
        if (opts.sched == Sched::kGuided) {
          const long rem = u - next;
          take = std::clamp(rem / static_cast<long>(pool.size()), 1L, slack);
        }
        take = std::min(take, u - next);
        base = next;
        next += take;
        ++claims;
        max_span = std::max(max_span, next - low);
        WLP_TRACE_INSTANT("window.claim", base, take);
        if (opts.memory_budget != 0 &&
            (opts.live_bytes || opts.bytes_per_iteration != 0)) {
          // Prefer the measured footprint over the per-iteration guess.
          const std::size_t in_use =
              opts.live_bytes
                  ? opts.live_bytes()
                  : static_cast<std::size_t>(next - low) *
                        opts.bytes_per_iteration;
          peak_bytes = std::max(peak_bytes, in_use);
          const long before = window;
          window = ctl.adjust(window, next - low, in_use);
          if (window != before) WLP_TRACE_COUNTER("window.size", window);
        }
        started += take;
      }

      for (long i = base; i < base + take; ++i) {
        if (i > base && quit.cut(i)) {
          // QUIT landed mid-claim: retire the unexecuted tail so `low` can
          // advance past it (the bodies never ran, so uncount them).
          std::lock_guard lock(mu);
          started -= base + take - i;
          for (long j = i; j < base + take; ++j)
            done[static_cast<std::size_t>(j)] = 1;
          while (low < u && done[static_cast<std::size_t>(low)]) ++low;
          break;
        }
        const IterAction act = body(i, vpn);
        if (act == IterAction::kExit) quit.quit(i);
        if (act == IterAction::kExitAfter) quit.quit(i + 1);

        {
          std::lock_guard lock(mu);
          if (act == IterAction::kExit)
            trip_candidate = std::min(trip_candidate, i);
          if (act == IterAction::kExitAfter)
            trip_candidate = std::min(trip_candidate, i + 1);
          done[static_cast<std::size_t>(i)] = 1;
          while (low < u && done[static_cast<std::size_t>(low)]) ++low;
        }
        cv.notify_all();
      }
      cv.notify_all();
    }
  });

  // The backups keep growing after the final claim (bodies still running):
  // poll the measured footprint once more after the join so the reported
  // peak covers the post-claim growth the in-claim polls cannot see.
  if (opts.memory_budget != 0 && opts.live_bytes)
    peak_bytes = std::max(peak_bytes, opts.live_bytes());
  ctl.release();

  wr.exec.trip = std::min(trip_candidate, u);
  wr.exec.started = started;
  wr.exec.overshot = std::max(0L, started - wr.exec.trip);
  wr.max_span = max_span;
  wr.final_window = window;
  wr.claims = claims;
  wr.peak_stamp_bytes = peak_bytes;
  wr.exec.peak_spec_bytes = peak_bytes;
  wr.window_shrinks = ctl.shrinks();
  wr.window_grows = ctl.grows();
  wr.final_cap = ctl.cap();
  wr.cap_bytes = ctl.cap_bytes();
  WLP_OBS_COUNT("wlp.window.runs", 1);
  WLP_OBS_COUNT("wlp.window.claims", claims);
  WLP_OBS_HIST("wlp.window.span", max_span);
  WLP_OBS_HIST("wlp.window.overshoot", wr.exec.overshot);
  WLP_OBS_GAUGE_SET("wlp.window.final_size", window);
  if (opts.memory_budget != 0) {
    WLP_OBS_COUNT("wlp.window.shrinks", wr.window_shrinks);
    WLP_OBS_COUNT("wlp.window.grows", wr.window_grows);
    WLP_OBS_GAUGE_SET("wlp.window.cap_bytes",
                      static_cast<long>(wr.cap_bytes));
  }
  return wr;
}

/// Windowed execution of a loop whose accesses are NOT proven independent:
/// Section 8.2's scheduler combined with Section 5's speculation.  The
/// window bounds stamp memory during the speculative run; the PD analysis
/// (trip-filtered) then validates it like any other speculative execution.
///
/// `body(i, vpn) -> IterAction` must route accesses through the registered
/// targets (begin_iteration first); `run_sequential() -> trip` is the
/// fallback after a full restore.  Retries against the same targets are
/// cheap: reset_marks() is an O(1) epoch bump under the privatized policy.
template <class Body, class SeqRun>
WindowReport sliding_window_speculative_while(
    ThreadPool& pool, long u, std::span<SpecTarget* const> targets,
    Body&& body, SeqRun&& run_sequential, WindowOptions wopts = {},
    bool undo_in_parallel = true) {
  WLP_TRACE_SCOPE("window.spec", u, wopts.window);
  if (wopts.verdict_cache != nullptr)
    for (SpecTarget* t : targets) t->enable_access_signatures(true);
  SpecTransaction txn(targets);
  double checkpoint_ns = 0;
  {
    const auto cp0 = std::chrono::steady_clock::now();
    txn.begin(&pool);
    checkpoint_ns = detail::spec_ns_since(cp0);
  }
  // Feed the budget controller the backups' MEASURED footprint (Section 8.2
  // against real bytes): sparse targets grow as locations are touched, so
  // the window shrinks when the backup — not a guess — nears the budget.
  // The transaction sums its members (shared stamp indexes counted once).
  if (wopts.memory_budget != 0 && !wopts.live_bytes) {
    wopts.live_bytes = [&txn] { return txn.memory_bytes(); };
  }
  // Transaction-aware control: the controller is the transaction's
  // footprint listener, so a member flipping backends mid-run (a step jump
  // in memory_bytes() the per-claim poll can miss) clamps the window on the
  // very next claim.
  WindowController ctl(wopts.min_window, wopts.max_window,
                       wopts.memory_budget, wopts.bytes_per_iteration,
                       wopts.charge_process_budget);
  if (wopts.controller == nullptr) wopts.controller = &ctl;
  txn.set_footprint_listener(wopts.controller);

  bool failed = false;
  WindowReport wr;
  try {
    wr = sliding_window_while(pool, u, body, wopts);
  } catch (...) {
    failed = true;  // Section 5.1: exception == invalid parallel execution
    WLP_OBS_COUNT("wlp.spec.exceptions", 1);
  }
  wr.exec.method = Method::kSlidingWindow;
  wr.exec.used_checkpoint = true;
  wr.exec.used_stamps = true;
  wr.exec.checkpoint_ns = checkpoint_ns;

  wr.exec.shadow_marks = txn.marks();
  WLP_OBS_COUNT("wlp.pd.marks", wr.exec.shadow_marks);

  if (txn.overflowed()) {
    wr.exec.backup_overflow = true;
    failed = true;
    WLP_OBS_COUNT("wlp.spec.backup_overflow", 1);
  }

  if (!failed) {
    WLP_TRACE_SCOPE("pd.analyze", wr.exec.trip, 0);
    for (SpecTarget* t : targets) {
      if (!t->shadowed()) continue;
      wr.exec.pd_tested = true;
      bool hit = false;
      const PDVerdict v = pdcache::analyze_with_cache(
          wopts.verdict_cache, *t, pool, /*base=*/0, wr.exec.trip, &hit);
      if (wopts.verdict_cache != nullptr) {
        ++wr.exec.verdict_probes;
        if (hit) ++wr.exec.verdict_hits;
      }
      if (!v.fully_parallel()) {
        wr.exec.pd_passed = false;
        failed = true;
      }
    }
    if (wr.exec.pd_tested)
      WLP_OBS_COUNT(wr.exec.pd_passed ? "wlp.spec.pd_pass" : "wlp.spec.pd_fail",
                    1);
  }

  if (failed) {
    if (wopts.verdict_cache != nullptr) wopts.verdict_cache->invalidate_all();
    WLP_OBS_COUNT("wlp.spec.seq_reexec", 1);
    const auto ra0 = std::chrono::steady_clock::now();
    txn.restore_all(&pool);
    wr.exec.undo_ns = detail::spec_ns_since(ra0);
    wr.exec.reexecuted_sequentially = true;
    wr.exec.trip = run_sequential();
    // The sequential rerun redefines the trip; the overshoot (speculative
    // bodies at or past it, all rolled back by the restore) must be
    // recomputed against it, not left at the abandoned speculative value.
    wr.exec.overshot = std::max(0L, wr.exec.started - wr.exec.trip);
    assert(wr.exec.trip >= 0);
    assert(wr.exec.overshot <= wr.exec.started);
    return wr;
  }

  {
    const auto ud0 = std::chrono::steady_clock::now();
    wr.exec.undone_writes +=
        txn.undo_beyond(wr.exec.trip, undo_in_parallel ? &pool : nullptr);
    wr.exec.undo_ns = detail::spec_ns_since(ud0);
  }
  WLP_OBS_HIST("wlp.spec.undo_writes", wr.exec.undone_writes);
  return wr;
}

}  // namespace wlp
