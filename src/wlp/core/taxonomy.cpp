#include "wlp/core/taxonomy.hpp"

namespace wlp {

TaxonomyCell classify(DispatcherKind d, TerminatorClass t) noexcept {
  const bool rv = t == TerminatorClass::kRemainderVariant;
  switch (d) {
    case DispatcherKind::kMonotonicInduction:
      // RI threshold on a monotonic function: the exit point can be computed
      // (or bounded) up front, so only RV overshoots.
      return {rv, DispatcherParallelism::kFull};
    case DispatcherKind::kInduction:
      // All points evaluated concurrently; overshoot in both rows.
      return {true, DispatcherParallelism::kFull};
    case DispatcherKind::kAssociative:
      return {rv, DispatcherParallelism::kPrefix};
    case DispatcherKind::kGeneral:
      // Sequential dispatcher with RI exit (e.g. list traversal until null)
      // stops exactly where the sequential loop does.
      return {rv, DispatcherParallelism::kSequential};
  }
  return {true, DispatcherParallelism::kSequential};
}

bool may_overshoot(DispatcherKind d, TerminatorClass t) noexcept {
  return classify(d, t).may_overshoot;
}

DispatcherParallelism dispatcher_parallelism(DispatcherKind d) noexcept {
  return classify(d, TerminatorClass::kRemainderInvariant).parallelism;
}

std::string_view to_string(DispatcherKind d) noexcept {
  switch (d) {
    case DispatcherKind::kMonotonicInduction: return "monotonic-induction";
    case DispatcherKind::kInduction:          return "induction";
    case DispatcherKind::kAssociative:        return "associative-recurrence";
    case DispatcherKind::kGeneral:            return "general-recurrence";
  }
  return "?";
}

std::string_view to_string(TerminatorClass t) noexcept {
  switch (t) {
    case TerminatorClass::kRemainderInvariant: return "RI";
    case TerminatorClass::kRemainderVariant:   return "RV";
  }
  return "?";
}

std::string_view to_string(DispatcherParallelism p) noexcept {
  switch (p) {
    case DispatcherParallelism::kFull:       return "YES";
    case DispatcherParallelism::kPrefix:     return "YES-PP";
    case DispatcherParallelism::kSequential: return "NO";
  }
  return "?";
}

}  // namespace wlp
