// Execution reports: what a transformed WHILE loop did at run time.
#pragma once

#include <cstddef>
#include <string_view>

namespace wlp {

/// Which transformation executed the loop.
enum class Method {
  kSequential,        ///< reference execution
  kInduction1,        ///< Fig. 2, DOALL + per-processor minima
  kInduction2,        ///< Fig. 2, ordered issue + QUIT
  kAssocPrefix,       ///< Fig. 3, distribution + parallel prefix + DOALL
  kGeneral1,          ///< Fig. 4, serialized next() under a lock
  kGeneral2,          ///< Fig. 4, private traversal, static i mod p
  kGeneral3,          ///< Fig. 4, private traversal, dynamic self-scheduling
  kWuLewisDistribute, ///< baseline: sequential dispatcher pass, then DOALL
  kWuLewisDoacross,   ///< baseline: pipelined DOACROSS
  kStripMined,        ///< Section 4/8.1 strip-mined execution
  kSlidingWindow,     ///< Section 8.2 resource-controlled self-scheduling
  kDoany,             ///< Section 9 WHILE-DOANY (order-insensitive)
};

constexpr std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::kSequential:        return "sequential";
    case Method::kInduction1:        return "Induction-1";
    case Method::kInduction2:        return "Induction-2";
    case Method::kAssocPrefix:       return "Assoc-Prefix";
    case Method::kGeneral1:          return "General-1";
    case Method::kGeneral2:          return "General-2";
    case Method::kGeneral3:          return "General-3";
    case Method::kWuLewisDistribute: return "WuLewis-Distribute";
    case Method::kWuLewisDoacross:   return "WuLewis-Doacross";
    case Method::kStripMined:        return "Strip-Mined";
    case Method::kSlidingWindow:     return "Sliding-Window";
    case Method::kDoany:             return "WHILE-DOANY";
  }
  return "?";
}

/// What happened during one transformed execution.
struct ExecReport {
  Method method = Method::kSequential;
  long trip = 0;      ///< sequential trip count recovered by the run
  long started = 0;   ///< iteration bodies that actually executed
  long overshot = 0;  ///< bodies executed with index >= trip (to be undone)
  long undone_writes = 0;  ///< memory locations restored after the run
  long shadow_marks = 0;   ///< PD shadow marks recorded during the run
  long dispatcher_steps = 0;  ///< total recurrence evaluations (hops) across
                              ///< all processors; ~trip for General-1/3,
                              ///< ~p*trip for General-2
  long verdict_probes = 0;  ///< verdict-cache lookups issued (0 = no cache)
  long verdict_hits = 0;    ///< lookups served from the cache
  double checkpoint_ns = 0;  ///< measured wall time snapshotting state (Tb)
  double undo_ns = 0;        ///< measured wall time undoing/restoring (Ta)
  std::size_t peak_spec_bytes = 0;  ///< max bytes the backups measurably
                                    ///< pinned (SpecTransaction memory_bytes
                                    ///< polls; 0 = driver did not poll)
  bool used_checkpoint = false;
  bool used_stamps = false;
  bool pd_tested = false;
  bool pd_passed = true;
  bool backup_overflow = false;  ///< sparse backup hit capacity; the run was
                                 ///< abandoned like a failed PD test
  bool reexecuted_sequentially = false;  ///< speculation failed, ran serial
};

}  // namespace wlp
