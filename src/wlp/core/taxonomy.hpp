// The WHILE-loop taxonomy of Table 1.
//
// A WHILE loop is characterized by its *dispatcher* (the recurrence that
// controls it) and its *terminator* (the exit condition).  The taxonomy
// answers two questions per cell: can a parallel execution overshoot the
// sequential exit, and can the dispatcher itself be evaluated in parallel?
#pragma once

#include <string_view>

namespace wlp {

enum class DispatcherKind {
  kMonotonicInduction,  ///< d(i) = c*i + b, monotonic; terminator a threshold
  kInduction,           ///< closed-form induction, not monotonic w.r.t. exit
  kAssociative,         ///< e.g. x(i) = a*x(i-k) + b: parallel prefix applies
  kGeneral,             ///< e.g. linked-list pointer chasing: sequential chain
};

enum class TerminatorClass {
  kRemainderInvariant,  ///< RI: depends only on the dispatcher and loop-
                        ///< external values
  kRemainderVariant,    ///< RV: depends on values computed by the remainder
};

enum class DispatcherParallelism {
  kFull,        ///< closed form: all terms evaluable concurrently
  kPrefix,      ///< parallel prefix: O(n/p + log p)
  kSequential,  ///< inherently sequential chain of flow dependences
};

struct TaxonomyCell {
  bool may_overshoot;
  DispatcherParallelism parallelism;
};

/// Table 1, exactly as published.
///
/// Note one subtlety: the RI row shows "no overshoot" for the associative
/// and general dispatchers because with an RI terminator the exit can be
/// folded into the (prefix or sequential) dispatcher evaluation itself, so
/// no remainder iteration beyond the exit is ever dispatched; the
/// non-monotonic induction overshoots even under RI because every point of
/// the closed form is evaluated concurrently and no single processor can
/// bound the exit.
TaxonomyCell classify(DispatcherKind d, TerminatorClass t) noexcept;

/// Convenience wrappers over classify().
bool may_overshoot(DispatcherKind d, TerminatorClass t) noexcept;
DispatcherParallelism dispatcher_parallelism(DispatcherKind d) noexcept;

std::string_view to_string(DispatcherKind d) noexcept;
std::string_view to_string(TerminatorClass t) noexcept;
std::string_view to_string(DispatcherParallelism p) noexcept;

}  // namespace wlp
