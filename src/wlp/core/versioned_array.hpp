// Section 4 — undoing iterations that overshoot the termination condition.
//
// VersionedArray<T> implements the paper's simplest scheme: checkpoint the
// array before the speculative DOALL, record for every location the
// iteration that wrote it (a time-stamp), and after the loop — once the last
// valid iteration is known — restore every location whose stamp belongs to
// an overshot iteration.  The paper notes the 3x memory cost (data +
// checkpoint + stamps); the sparse alternative lives in sparse_backup.hpp.
//
// The write-once-per-location property the paper assumes ("since all
// iterations of the WHILE loop are independent, each memory location will be
// written during at most one iteration") is NOT silently assumed here: the
// stamp kept is the *maximum* writer iteration, so undo_beyond() restores a
// location if any overshot iteration touched it.  Violations of the
// assumption are exactly what the PD test (Section 5) detects.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "wlp/sched/doall.hpp"
#include "wlp/sched/reduce.hpp"

namespace wlp {

template <class T>
class VersionedArray {
 public:
  static constexpr long kNoStamp = -1;

  explicit VersionedArray(std::vector<T> init)
      : data_(std::move(init)), stamp_(data_.size()) {
    for (auto& s : stamp_) s.store(kNoStamp, std::memory_order_relaxed);
  }

  std::size_t size() const noexcept { return data_.size(); }

  /// Live value (reads are never versioned; anti-dependences on the original
  /// values are the checkpoint's job).
  const T& get(std::size_t idx) const noexcept { return data_[idx]; }

  /// Stamped speculative write by iteration `iter`.
  void write(long iter, std::size_t idx, const T& v) noexcept {
    data_[idx] = v;
    // Keep the maximum writer; fetch-max via CAS.
    auto& s = stamp_[idx];
    long cur = s.load(std::memory_order_relaxed);
    while (iter > cur &&
           !s.compare_exchange_weak(cur, iter, std::memory_order_acq_rel)) {
    }
  }

  /// Unstamped write (sequential / non-speculative contexts).
  void write_raw(std::size_t idx, const T& v) noexcept { data_[idx] = v; }

  /// Snapshot the current contents; the Tb overhead of Section 7.
  void checkpoint() { backup_ = data_; }

  bool has_checkpoint() const noexcept { return !backup_.empty() || data_.empty(); }

  /// Restore every location written by an iteration >= trip.  Parallel when
  /// a pool is supplied (the Ta term is O(a/p)).  Returns locations restored.
  long undo_beyond(long trip, ThreadPool* pool = nullptr) {
    assert(has_checkpoint());
    if (pool) {
      return parallel_sum<long>(*pool, 0, static_cast<long>(data_.size()),
                                [&](long i) { return undo_one(static_cast<std::size_t>(i), trip); });
    }
    long undone = 0;
    for (std::size_t i = 0; i < data_.size(); ++i) undone += undo_one(i, trip);
    return undone;
  }

  /// Restore the full checkpoint (failed speculation: re-execute serially).
  void restore_all() {
    assert(has_checkpoint());
    data_ = backup_;
    clear_stamps();
  }

  void clear_stamps() noexcept {
    for (auto& s : stamp_) s.store(kNoStamp, std::memory_order_relaxed);
  }

  void discard_checkpoint() {
    backup_.clear();
    backup_.shrink_to_fit();
  }

  long stamp(std::size_t idx) const noexcept {
    return stamp_[idx].load(std::memory_order_relaxed);
  }

  /// Escape hatch for sequential re-execution and verification.
  std::vector<T>& data() noexcept { return data_; }
  const std::vector<T>& data() const noexcept { return data_; }

 private:
  long undo_one(std::size_t idx, long trip) noexcept {
    if (stamp_[idx].load(std::memory_order_relaxed) >= trip) {
      data_[idx] = backup_[idx];
      return 1;
    }
    return 0;
  }

  std::vector<T> data_;
  std::vector<T> backup_;
  std::vector<std::atomic<long>> stamp_;
};

}  // namespace wlp
