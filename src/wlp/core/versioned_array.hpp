// Section 4 — undoing iterations that overshoot the termination condition.
//
// VersionedArray<T> implements the paper's simplest scheme: checkpoint the
// array before the speculative DOALL, record for every location the
// iteration that wrote it (a time-stamp), and after the loop — once the last
// valid iteration is known — restore every location whose stamp belongs to
// an overshot iteration.  The paper notes the 3x memory cost (data +
// checkpoint + stamps, measured exactly by memory_bytes()); the sparse
// alternative lives in sparse_backup.hpp.
//
// The write-once-per-location property the paper assumes ("since all
// iterations of the WHILE loop are independent, each memory location will be
// written during at most one iteration") is NOT silently assumed here: the
// stamp kept is the *maximum* writer iteration, so undo_beyond() restores a
// location if any overshot iteration touched it.  Violations of the
// assumption are exactly what the PD test (Section 5) detects.
//
// Block-batched layout (the Tb/Ta terms of Section 7, paid per speculative
// run and per strip retry, are what this representation optimizes):
//
//   * Time-stamps are packed 64-bit words: (epoch << 32) | (iter + 1).
//     Because the epoch occupies the high bits and only ever grows, a
//     single unsigned compare answers both "is this stamp from the current
//     run?" and "is the writer >= trip?", and the fetch-max CAS the
//     concurrent writers race through is a plain numeric max.  A stamp
//     whose epoch is stale reads as kNoStamp.
//   * clear_stamps() is therefore an O(1) epoch bump (the PD shadow's
//     generation trick, Section 5.1 / DESIGN.md §5.1): strip retries,
//     run-twice passes and sliding-window re-speculations stop paying an
//     O(n) stamp sweep.  One real sweep happens per 2^32 resets, when the
//     32-bit epoch wraps.
//   * Writers additionally set one bit per 64-element *block* in a dirty
//     summary word: each word packs (epoch << 32) | 32 dirty bits, so one
//     word summarizes 2048 elements and the bitmap clears by the same
//     epoch bump.  A per-worker Writer view caches the last block it
//     dirtied (the PD Marker-view trick) so the common in-block write
//     stream skips even the summary-word load.
//   * undo_beyond() is ONE fused parallel pass over the summary words: only
//     words stamped with the current epoch are scanned and only their dirty
//     blocks' stamps are read, with maximal spans of adjacent dirty blocks
//     merged across summary-word boundaries so a densely-written region is
//     re-scanned as one continuous stream.  How a qualifying run is restored is chosen
//     by payload size at compile time: for payloads over two machine words
//     the copy dominates the pass, so contiguous runs of overshot stamps
//     are batched into a single memcpy (element-wise copy for
//     non-trivially-copyable T); for word-sized payloads the stamp scan
//     dominates and a two-phase skip/swallow scan loses the overlap of the
//     stamp, data and backup streams (measured ~0.9x of the per-element
//     baseline), so the restore is interleaved with a single-branch scan.
//     undo_beyond_per_element() keeps the unbatched reference pass public
//     for cross-checking and benchmarking on identical state.
//   * checkpoint() is a pool-parallel chunked copy (memcpy per chunk for
//     trivially-copyable T); the backup buffer is pooled across runs, so a
//     steady-state strip loop allocates nothing.
//
// The stamp + dirty-summary + epoch machinery is factored into StampIndex
// so several trip-aligned arrays can ALIAS one index (DESIGN.md §9): a
// 2-array loop whose members are written by the same iterations shares one
// stamp word per location, halving stamp memory, and the SpecTransaction
// layer (txn.hpp) walks the shared dirty summary ONCE per retry and
// dispatches span restores to every member.  A VersionedArray constructed
// without an explicit index owns a private one — nothing changes for
// single-array loops.
//
// Concurrency contract (same as the PD shadow's): stamped writes may race
// with each other (stamps and dirty words are atomic; the data stores race
// only when iterations genuinely collide, which the PD test reports), while
// checkpoint / undo_beyond / restore_all / clear_stamps run only when no
// writes are in flight — the fork-join barrier of the speculative drivers
// provides the happens-before edge that publishes the relaxed stamp and
// bitmap updates to the undo pass.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "wlp/mem/arena.hpp"
#include "wlp/mem/epoch.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/doall.hpp"
#include "wlp/sched/reduce.hpp"

namespace wlp {

/// Bookkeeping the tests and the cost model read: how many O(n) costs the
/// array has actually paid, and what the batched paths actually did.
struct UndoStats {
  long resets = 0;          ///< clear_stamps() calls (epoch bumps)
  long sweeps = 0;          ///< real O(n) sweeps (one per 2^32 resets)
  long checkpoints = 0;     ///< checkpoint() calls
  long blocks_dirty = 0;    ///< dirty blocks visited across all undo passes
  /// Contiguous restore runs batched into single copies.  Stays 0 for small
  /// payloads, whose undo path restores inline during the scan (see
  /// VersionedArray::kCoalesceRuns).
  long runs_coalesced = 0;
  double checkpoint_ns = 0; ///< total time in checkpoint() (the Tb term)
  double restore_ns = 0;    ///< total time in undo_beyond/restore_all (Ta)
};

/// The trip-indexed stamp + dirty-block-summary machinery, shareable across
/// several trip-aligned arrays.
///
/// Sharing contract (the aliasing rule DESIGN.md §9 spells out): arrays
/// aliasing one index must be written by the SAME iterations — the stamp at
/// location i is the max writer iteration across every member, so a member
/// whose location i was validly written while a sibling overshot i would be
/// restored to its checkpoint value and lose the valid write.  Restoring a
/// location a member never wrote is harmless (backup == live value), so
/// "same write set per iteration" (the common multi-array loop shape
/// A[f(i)] = ..; B[f(i)] = ..) is sufficient, not merely identical arrays.
///
/// Exactly one attacher is the CLEARER (claim_clearer(), first-come): only
/// it bumps the epoch on clear_stamps() — k members resetting a shared
/// index would otherwise advance the clock k times per retry and orphan the
/// stamps between bumps — and only it charges the index bytes to
/// memory_bytes(), so a transaction summing its members never double-counts
/// the shared words.
class StampIndex {
 public:
  static constexpr long kNoStamp = -1;
  /// Elements per dirty block: one cache line of 8-byte stamps.
  static constexpr std::size_t kBlockSize = 64;
  /// Dirty bits per summary word (the high 32 bits hold the word's epoch).
  static constexpr std::size_t kBlocksPerWord = 32;
  /// Elements one summary word covers.
  static constexpr std::size_t kWordSpan = kBlockSize * kBlocksPerWord;
  /// Largest representable writer iteration: the packed stamp keeps
  /// (iter + 1) in 32 bits.  Loops beyond 4G iterations would need the
  /// strip/window drivers anyway (stamp memory), which re-base per strip.
  static constexpr long kMaxIter = 0xfffffffeL;

  // Stamp and summary storage draws from the constructing thread's arena: a
  // retired index's buffers are recycled in O(1) by the next index of the
  // same shape, and every byte shows up in the wlp.mem budget.
  explicit StampIndex(std::size_t n)
      : stamp_(n, Alloc(mem::local_arena())),
        dirty_((n + kWordSpan - 1) / kWordSpan, Alloc(mem::local_arena())) {}

  std::size_t size() const noexcept { return stamp_.size(); }
  std::size_t words() const noexcept { return dirty_.size(); }
  std::uint32_t epoch() const noexcept { return clock_.value(); }
  long resets() const noexcept { return clock_.resets(); }
  long sweeps() const noexcept { return clock_.sweeps(); }

  /// First caller wins and becomes the member responsible for epoch bumps
  /// and for charging the index bytes (see class comment).
  bool claim_clearer() noexcept { return !clearer_claimed_.exchange(true); }

  std::uint64_t pack(long iter) const noexcept {
    assert(iter >= 0 && iter <= kMaxIter);
    return (static_cast<std::uint64_t>(clock_.value()) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter + 1));
  }

  /// Packed value a stamp must reach for "writer iteration >= trip" in the
  /// CURRENT epoch.  Stale-epoch stamps compare below it for any trip >= -1,
  /// so one unsigned compare filters both overshoot and staleness.
  std::uint64_t threshold(long trip) const noexcept {
    if (trip < 0) trip = -1;
    const std::uint64_t low =
        trip >= kMaxIter ? (1ull << 32)  // nothing can qualify
                         : static_cast<std::uint64_t>(trip + 1);
    return (static_cast<std::uint64_t>(clock_.value()) << 32) + low;
  }

  /// fetch-max on the packed stamp: the epoch rides the high bits, so the
  /// numeric max is exactly "current epoch wins over stale; larger iteration
  /// wins within the epoch".
  void stamp_max(std::size_t idx, long iter) noexcept {
    const std::uint64_t want = pack(iter);
    auto& s = stamp_[idx];
    std::uint64_t cur = s.load(std::memory_order_relaxed);
    while (want > cur &&
           !s.compare_exchange_weak(cur, want, std::memory_order_acq_rel)) {
    }
  }

  void mark_dirty(std::size_t block) noexcept {
    auto& w = dirty_[block / kBlocksPerWord];
    const std::uint32_t epoch = clock_.value();
    const std::uint64_t bit = 1ull << (block % kBlocksPerWord);
    const std::uint64_t tag = static_cast<std::uint64_t>(epoch) << 32;
    std::uint64_t cur = w.load(std::memory_order_relaxed);
    if ((cur >> 32) == epoch) {
      // Common case: the word already belongs to this run.  fetch_or never
      // touches the high half (bit < 2^32), and no writer re-bases a word
      // away from the current epoch while writes are in flight.
      if ((cur & bit) == 0) w.fetch_or(bit, std::memory_order_relaxed);
      return;
    }
    // Stale word: re-base it to the current epoch, discarding dead bits.
    // Racing writers either win the CAS or retry and land in the fetch_or
    // branch above — no clear-vs-set window exists.
    for (;;) {
      const std::uint64_t want =
          (cur >> 32) == epoch ? (cur | bit) : (tag | bit);
      if (want == cur) return;
      if (w.compare_exchange_weak(cur, want, std::memory_order_relaxed))
        return;
    }
  }

  const std::atomic<std::uint64_t>* stamps() const noexcept {
    return stamp_.data();
  }

  long stamp_iter(std::size_t idx) const noexcept {
    const std::uint64_t s = stamp_[idx].load(std::memory_order_relaxed);
    if ((s >> 32) != clock_.value()) return kNoStamp;
    return static_cast<long>(s & 0xffffffffu) - 1;
  }

  /// O(1): bump the epoch; stale stamps and summary words read as clear.
  /// One real sweep per 2^32 resets, when the 32-bit epoch wraps.  Called
  /// only by the clearer (see claim_clearer), at quiescent points.
  void clear() noexcept {
    clock_.bump([this] { sweep_epochs(); });
  }

  /// Test hook: sweep, then restart the epoch at `e` so a test can force
  /// the once-per-2^32 wrap without 4G resets.
  void jump_epoch(std::uint32_t e) noexcept {
    clock_.jump(e, [this] { sweep_epochs(); });
  }

  std::size_t memory_bytes() const noexcept {
    return stamp_.size() * sizeof(stamp_[0]) +
           dirty_.size() * sizeof(dirty_[0]);
  }

  /// Blocks written since the last clear(): one popcount per summary word
  /// over the current epoch — O(n / 2048), no stamp sweep.  This is the
  /// write-density input the verdict-cache signature folds in, measured
  /// from state the writes already maintain.
  long dirty_block_count() const noexcept {
    const std::uint32_t epoch = clock_.value();
    long blocks = 0;
    for (const auto& w : dirty_) {
      const std::uint64_t word = w.load(std::memory_order_relaxed);
      if ((word >> 32) == epoch)
        blocks += std::popcount(static_cast<std::uint32_t>(word));
    }
    return blocks;
  }

  /// Scan summary words [wlo, whi) over an array of `n` elements: stale
  /// words are skipped outright; maximal spans of ADJACENT dirty blocks are
  /// walked with the spans merged ACROSS word boundaries, so a
  /// densely-written region collapses into one continuous scan no matter
  /// how many summary words it crosses (each 2048-element restart would
  /// otherwise cost the prefetcher its stride).  `fn(span_b, span_e)` is
  /// invoked once per merged span — a VersionedArray restores itself from
  /// it; a SpecTransaction dispatches every group member back-to-back so
  /// the stamp words stay hot across members.  Returns dirty blocks
  /// visited.  Parallel callers partition the word range, so merging
  /// happens within each worker's contiguous chunk.
  template <class Fn>
  long scan_spans(std::size_t wlo, std::size_t whi, std::size_t n,
                  Fn&& fn) const noexcept {
    const std::uint32_t epoch = clock_.value();
    long blocks = 0;
    std::size_t w = wlo;
    std::uint32_t bits = 0;
    std::size_t have_w = static_cast<std::size_t>(-1);  // word `bits` is from
    while (true) {
      if (have_w != w) {
        if (w >= whi) break;
        const std::uint64_t word = dirty_[w].load(std::memory_order_relaxed);
        bits = (word >> 32) == epoch ? static_cast<std::uint32_t>(word) : 0u;
        blocks += std::popcount(bits);
        have_w = w;
      }
      if (bits == 0) {
        ++w;
        continue;
      }
      const int lo = std::countr_zero(bits);
      const int len = std::countr_one(bits >> lo);  // adjacent dirty blocks
      bits = len + lo >= 32 ? 0u : bits & ~(((1u << len) - 1u) << lo);
      const std::size_t span_b =
          (w * kBlocksPerWord + static_cast<std::size_t>(lo)) * kBlockSize;
      std::size_t span_blocks = static_cast<std::size_t>(len);
      // Merge forward: while the span abuts the top of its word and the
      // next word's dirty bits continue from the bottom, extend the span
      // and keep that word's leftover bits for the main loop.
      bool at_top = lo + len == 32;
      while (at_top && w + 1 < whi) {
        const std::uint64_t nxt = dirty_[w + 1].load(std::memory_order_relaxed);
        const std::uint32_t nb =
            (nxt >> 32) == epoch ? static_cast<std::uint32_t>(nxt) : 0u;
        const int lead = nb == 0xffffffffu ? 32 : std::countr_one(nb);
        ++w;
        blocks += std::popcount(nb);
        bits = lead >= 32 ? 0u : nb & ~((1u << lead) - 1u);
        have_w = w;
        if (lead == 0) break;
        span_blocks += static_cast<std::size_t>(lead);
        at_top = lead == 32;
      }
      const std::size_t span_e =
          std::min(span_b + span_blocks * kBlockSize, n);
      fn(span_b, span_e);
    }
    return blocks;
  }

 private:
  using Alloc = mem::ArenaAllocator<std::atomic<std::uint64_t>>;

  /// The once-per-2^32-resets cost: forget every stamp and summary word by
  /// storing the reserved epoch 0 (below any live epoch); the EpochClock
  /// restarts its counter above it.
  void sweep_epochs() noexcept {
    for (auto& s : stamp_) s.store(0, std::memory_order_relaxed);
    for (auto& w : dirty_) w.store(0, std::memory_order_relaxed);
  }

  /// (epoch << 32) | (iter + 1); 0 (epoch 0) = never stamped.
  std::vector<std::atomic<std::uint64_t>, Alloc> stamp_;
  /// (epoch << 32) | dirty bits for 32 blocks of 64 elements each.
  std::vector<std::atomic<std::uint64_t>, Alloc> dirty_;
  mem::EpochClock clock_;  ///< epoch 0 is reserved for "never written"
  std::atomic<bool> clearer_claimed_{false};
};

template <class T>
class VersionedArray {
 public:
  static constexpr long kNoStamp = StampIndex::kNoStamp;
  static constexpr std::size_t kBlockSize = StampIndex::kBlockSize;
  static constexpr std::size_t kBlocksPerWord = StampIndex::kBlocksPerWord;
  static constexpr std::size_t kWordSpan = StampIndex::kWordSpan;
  static constexpr long kMaxIter = StampIndex::kMaxIter;
  /// Whether the undo pass batches contiguous overshot runs into single
  /// copies.  For payloads up to two machine words the stamp scan dominates
  /// and the interleaved per-element restore measures at or ahead of the
  /// batched copy (the two-phase scan de-overlaps the memory streams), so
  /// batching only engages where the copy dominates.
  static constexpr bool kCoalesceRuns = sizeof(T) > 16;

  // Versioning state (backup; plus the stamp index when owned) draws from
  // the constructing thread's arena: a retired array's buffers are recycled
  // in O(1) by the next array of the same shape, and every byte shows up in
  // the wlp.mem budget instead of vanishing into malloc.
  //
  // `shared` aliases an existing trip-aligned StampIndex (see the StampIndex
  // class comment for the write-set contract); nullptr builds a private one.
  explicit VersionedArray(std::vector<T> init,
                          std::shared_ptr<StampIndex> shared = nullptr)
      : data_(std::move(init)),
        backup_(Alloc(mem::local_arena())),
        index_(shared ? std::move(shared)
                      : std::make_shared<StampIndex>(data_.size())) {
    assert(index_->size() == data_.size() &&
           "a shared StampIndex must match the aliasing array's size");
    clearer_ = index_->claim_clearer();
  }

  std::size_t size() const noexcept { return data_.size(); }

  /// Live value (reads are never versioned; anti-dependences on the original
  /// values are the checkpoint's job).
  const T& get(std::size_t idx) const noexcept { return data_[idx]; }

  /// Stamped speculative write by iteration `iter` (vpn-less path: pays the
  /// summary-word access every call; hot loops hold a Writer instead).
  void write(long iter, std::size_t idx, const T& v) noexcept {
    data_[idx] = v;
    index_->stamp_max(idx, iter);
    index_->mark_dirty(idx / kBlockSize);
  }

  /// Worker-bound write view: caches the last block it dirtied, so a run of
  /// writes landing in the same 64-element block pays the stamp CAS only —
  /// no summary-word load, no fetch_or (the PD Marker-view trick).
  ///
  /// A Writer is INVALIDATED by clear_stamps()/restore_all(): its cached
  /// block belongs to the dead epoch, and skipping the mark would leave the
  /// new epoch's block invisible to undo.  Call rebind() after every reset
  /// (SpecArray::reset_marks() does).
  class Writer {
   public:
    Writer() = default;

    void write(long iter, std::size_t idx, const T& v) noexcept {
      arr_->data_[idx] = v;
      arr_->index_->stamp_max(idx, iter);
      const std::size_t block = idx / kBlockSize;
      if (block == last_block_) return;  // summary bit already published
      last_block_ = block;
      arr_->index_->mark_dirty(block);
    }

    /// Drop the cached block; the next write re-publishes its summary bit.
    void rebind() noexcept { last_block_ = kNoBlock; }

   private:
    friend class VersionedArray;
    explicit Writer(VersionedArray* a) noexcept : arr_(a) {}
    static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);
    VersionedArray* arr_ = nullptr;
    std::size_t last_block_ = kNoBlock;
  };

  Writer writer() noexcept { return Writer(this); }

  /// Unstamped write (sequential / non-speculative contexts).
  void write_raw(std::size_t idx, const T& v) noexcept { data_[idx] = v; }

  /// Snapshot the current contents — the Tb overhead of Section 7.  With a
  /// pool, the copy is chunked across the workers (memcpy per chunk for
  /// trivially-copyable T).  The backup buffer is allocated once and reused
  /// across checkpoints (steady-state strip loops allocate nothing).
  void checkpoint(ThreadPool* pool = nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    txn_checkpoint_begin();
    copy_between(data_.data(), backup_.data(), data_.size(), pool);
    const double ns = ns_since(t0);
    stats_.checkpoint_ns += ns;
    WLP_OBS_COUNT("wlp.undo.checkpoint_ns", static_cast<long>(ns));
  }

  bool has_checkpoint() const noexcept { return has_checkpoint_ || data_.empty(); }

  // ---- fused-transaction hooks (SpecTransaction, txn.hpp) ------------------
  // The transaction runs ONE pool-parallel pass over the concatenated block
  // ranges of all its members, so the per-member pieces of checkpoint() /
  // restore_all() are exposed as span operations: begin resizes the pooled
  // buffer and counts the checkpoint, the span calls do the copies, and the
  // transaction — not the member — publishes the wlp.undo.* metrics once.

  /// Prepare the pooled backup buffer; returns elements to copy.
  std::size_t txn_checkpoint_begin() {
    backup_.resize(data_.size());
    has_checkpoint_ = true;
    ++stats_.checkpoints;
    return data_.size();
  }
  void txn_checkpoint_span(std::size_t b, std::size_t e) noexcept {
    copy_span(data_.data(), backup_.data(), b, e);
  }
  void txn_restore_all_span(std::size_t b, std::size_t e) noexcept {
    assert(has_checkpoint());
    copy_span(backup_.data(), data_.data(), b, e);
  }

  /// Restore every overshot stamp in [span_b, span_e) against the pooled
  /// backup — the per-span piece of the fused undo pass, public so a
  /// SpecTransaction can dispatch one shared-index span walk to every
  /// member.  The restore strategy is the payload-size choice documented on
  /// kCoalesceRuns.  Returns locations restored.
  long restore_span(std::size_t span_b, std::size_t span_e,
                    std::uint64_t threshold) noexcept {
    assert(has_checkpoint());
    const std::atomic<std::uint64_t>* sp = index_->stamps();
    long undone = 0;
    if constexpr (kCoalesceRuns) {
      // Copy-dominated payloads: two-phase scan — skip valid stamps, then
      // swallow the whole overshot run and restore it with one batched
      // copy.
      long runs = 0;
      std::size_t i = span_b;
      while (i < span_e) {
        while (i < span_e && sp[i].load(std::memory_order_relaxed) < threshold)
          ++i;
        if (i == span_e) break;
        const std::size_t run_begin = i;
        while (i < span_e && sp[i].load(std::memory_order_relaxed) >= threshold)
          ++i;
        restore_run(run_begin, i);
        undone += static_cast<long>(i - run_begin);
        ++runs;
      }
      if (runs != 0) runs_coalesced_.fetch_add(runs, std::memory_order_relaxed);
    } else {
      // Scan-dominated payloads: single-branch scan with the restore
      // interleaved, keeping the stamp, data and backup streams
      // overlapped (the two-phase variant measures ~0.9x of this).
      T* dp = data_.data();
      const T* bp = backup_.data();
      for (std::size_t i = span_b; i < span_e; ++i)
        if (sp[i].load(std::memory_order_relaxed) >= threshold) {
          dp[i] = bp[i];
          ++undone;
        }
    }
    return undone;
  }

  /// Restore every location written by an iteration >= trip: one fused
  /// parallel pass that scans only current-epoch summary words, visits only
  /// their dirty blocks, and restores each contiguous run of overshot
  /// stamps with a single block copy.  Returns locations restored.
  long undo_beyond(long trip, ThreadPool* pool = nullptr) {
    assert(has_checkpoint());
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t threshold = index_->threshold(trip);
    const long nwords = static_cast<long>(index_->words());
    // Metrics publish once per pass from counter deltas; per-word obs calls
    // would dominate small cache-resident passes.
    [[maybe_unused]] const long blocks_before =
        blocks_dirty_.load(std::memory_order_relaxed);
    [[maybe_unused]] const long runs_before =
        runs_coalesced_.load(std::memory_order_relaxed);
    // Workers claim chunks of summary words (32K elements each) so span
    // merging still happens across word boundaries within a chunk while
    // guided self-scheduling balances skew between chunks.
    constexpr long kChunkWords = 16;
    const long nchunks = (nwords + kChunkWords - 1) / kChunkWords;
    long undone;
    if (pool != nullptr && nchunks > 1) {
      undone = parallel_sum<long>(*pool, 0, nchunks, [&](long c) {
        const std::size_t b = static_cast<std::size_t>(c) * kChunkWords;
        const std::size_t e =
            std::min(b + kChunkWords, static_cast<std::size_t>(nwords));
        return undo_words(b, e, threshold);
      });
    } else {
      undone = undo_words(0, static_cast<std::size_t>(nwords), threshold);
    }
    const double ns = ns_since(t0);
    stats_.restore_ns += ns;
    WLP_OBS_COUNT("wlp.undo.restore_ns", static_cast<long>(ns));
    WLP_OBS_COUNT("wlp.undo.blocks_dirty",
                  blocks_dirty_.load(std::memory_order_relaxed) - blocks_before);
    WLP_OBS_COUNT("wlp.undo.runs_coalesced",
                  runs_coalesced_.load(std::memory_order_relaxed) - runs_before);
    return undone;
  }

  /// Reference undo pass: the seed's per-element scheme over the same
  /// packed stamps — a full-array scan with one element restore per
  /// qualifying stamp, ignoring the dirty-block summary.  Public so tests
  /// can cross-check the fused pass against it and the microbenchmark can
  /// A/B both passes on identical state (comparing across two different
  /// array objects confounds the measurement with allocation layout).
  long undo_beyond_per_element(long trip) noexcept {
    assert(has_checkpoint());
    const std::uint64_t threshold = index_->threshold(trip);
    const std::atomic<std::uint64_t>* sp = index_->stamps();
    const std::size_t n = data_.size();
    long undone = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (sp[i].load(std::memory_order_relaxed) >= threshold) {
        data_[i] = backup_[i];
        ++undone;
      }
    return undone;
  }

  /// Restore the full checkpoint (failed speculation: re-execute serially).
  void restore_all(ThreadPool* pool = nullptr) {
    assert(has_checkpoint());
    const auto t0 = std::chrono::steady_clock::now();
    copy_between(backup_.data(), data_.data(), data_.size(), pool);
    const double ns = ns_since(t0);
    stats_.restore_ns += ns;
    WLP_OBS_COUNT("wlp.undo.restore_ns", static_cast<long>(ns));
    clear_stamps();
  }

  /// O(1): bump the epoch; stale stamps and summary words read as clear.
  /// One real sweep per 2^32 resets, when the 32-bit epoch wraps.  On a
  /// shared index only the clearer member bumps (the siblings' calls are
  /// no-ops), so a transaction resetting k members advances the clock once.
  void clear_stamps() noexcept {
    if (!clearer_) return;
    index_->clear();
    WLP_OBS_COUNT("wlp.undo.epoch_resets", 1);
  }

  /// Commit: drop the checkpoint.  The buffer is KEPT (pooled) so the next
  /// strip's checkpoint() allocates nothing; memory_bytes() still counts it.
  void discard_checkpoint() noexcept { has_checkpoint_ = false; }

  long stamp(std::size_t idx) const noexcept {
    return index_->stamp_iter(idx);
  }

  /// The stamp/dirty index this array writes through — shared with siblings
  /// when the array was constructed over an existing index.  The
  /// SpecTransaction groups members by this pointer to walk each shared
  /// summary exactly once per retry.
  StampIndex* index() noexcept { return index_.get(); }
  const StampIndex* index() const noexcept { return index_.get(); }
  const std::shared_ptr<StampIndex>& shared_index() const noexcept {
    return index_;
  }

  /// Bytes of state this array pins: data + pooled backup + stamps + dirty
  /// summary — the paper's 3x note, measured.  This is what the Section 8
  /// sliding-window memory budget controller charges for a dense target.
  /// On a shared index only the clearer charges the index bytes, so summing
  /// members never counts the shared words twice.
  std::size_t memory_bytes() const noexcept {
    return data_.capacity() * sizeof(T) + backup_.capacity() * sizeof(T) +
           (clearer_ ? index_->memory_bytes() : 0);
  }

  /// Blocks written since the last clear_stamps(): the stamp index's
  /// summary-word popcount — O(n / 2048), no second sweep.  On a shared
  /// index this counts the whole group's writes (one summary); the verdict
  /// signature wants exactly that fused density.
  long dirty_block_count() const noexcept {
    return index_->dirty_block_count();
  }

  /// Bytes the pooled dense backup retains on its own (allocated once,
  /// reused across checkpoints).  An AdaptiveSpecArray on a HASH retry
  /// charges only this slice of the dense side: the data array and stamps
  /// are not speculative state on a hash retry, but a backup buffer
  /// allocated by an earlier dense retry stays held.
  std::size_t backup_bytes() const noexcept {
    return backup_.capacity() * sizeof(T);
  }

  /// Overwrite one pooled-backup element.  The AdaptiveSpecArray mid-run
  /// hash->dense upgrade rebuilds the backup's pre-loop view with a bulk
  /// copy of the current data followed by this patch for every location the
  /// hash side saved first (those data elements already hold speculative
  /// values).
  void patch_backup(std::size_t idx, const T& v) noexcept {
    assert(has_checkpoint());
    backup_[idx] = v;
  }

  UndoStats stats() const noexcept {
    UndoStats s = stats_;
    s.resets = index_->resets();
    s.sweeps = index_->sweeps();
    s.blocks_dirty = blocks_dirty_.load(std::memory_order_relaxed);
    s.runs_coalesced = runs_coalesced_.load(std::memory_order_relaxed);
    return s;
  }

  /// Test hook: jump the epoch close to the 32-bit wrap so a test can force
  /// the once-per-2^32 sweep without 4G resets.  On a shared index this
  /// affects every aliasing member (one clock).
  void set_epoch_for_test(std::uint32_t e) noexcept {
    // Drop every stamp made under the old epoch first.
    index_->jump_epoch(e);
  }

  /// Escape hatch for sequential re-execution and verification.
  std::vector<T>& data() noexcept { return data_; }
  const std::vector<T>& data() const noexcept { return data_; }

 private:
  static double ns_since(std::chrono::steady_clock::time_point t0) noexcept {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  /// One worker's chunk of the fused pass: walk the summary words' merged
  /// spans and restore each against this array's backup.
  long undo_words(std::size_t wlo, std::size_t whi,
                  std::uint64_t threshold) noexcept {
    long undone = 0;
    const long blocks = index_->scan_spans(
        wlo, whi, data_.size(), [&](std::size_t b, std::size_t e) {
          undone += restore_span(b, e, threshold);
        });
    blocks_dirty_.fetch_add(blocks, std::memory_order_relaxed);
    return undone;
  }

  void restore_run(std::size_t b, std::size_t e) noexcept {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(data_.data() + b, backup_.data() + b, (e - b) * sizeof(T));
    } else {
      for (std::size_t i = b; i < e; ++i) data_[i] = backup_[i];
    }
  }

  /// Chunked parallel copy src -> dst (n elements; raw pointers because the
  /// backup vector and the data vector use different allocators).  memcpy
  /// per chunk for trivially-copyable T; element assignment otherwise (the
  /// fast path MUST NOT be taken for types with real copy semantics).
  void copy_between(const T* src, T* dst, std::size_t n, ThreadPool* pool) {
    constexpr std::size_t kChunk = 1 << 15;  // elements per claimed chunk
    if (pool == nullptr || n <= kChunk) {
      copy_span(src, dst, 0, n);
      return;
    }
    const long nchunks = static_cast<long>((n + kChunk - 1) / kChunk);
    DoallOptions opts;
    opts.sched = Sched::kStaticBlock;
    doall(
        *pool, 0, nchunks,
        [&](long c, unsigned) {
          const std::size_t b = static_cast<std::size_t>(c) * kChunk;
          copy_span(src, dst, b, std::min(b + kChunk, n));
        },
        opts);
  }

  void copy_span(const T* src, T* dst, std::size_t b, std::size_t e) noexcept {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (e > b) std::memcpy(dst + b, src + b, (e - b) * sizeof(T));
    } else {
      for (std::size_t i = b; i < e; ++i) dst[i] = src[i];
    }
  }

  using Alloc = mem::ArenaAllocator<T>;

  std::vector<T> data_;
  std::vector<T, Alloc> backup_;  ///< arena-pooled (recycled across arrays)
  std::shared_ptr<StampIndex> index_;  ///< private or shared with siblings
  bool clearer_ = false;  ///< this member bumps/charges the (shared) index
  bool has_checkpoint_ = false;
  UndoStats stats_;
  std::atomic<long> blocks_dirty_{0};    ///< updated by parallel undo workers
  std::atomic<long> runs_coalesced_{0};  ///< updated by parallel undo workers
};

}  // namespace wlp
