// A SpecTarget backed by a hash-table backup instead of a full checkpoint —
// Section 4's alternative for sparse access patterns, plugged into the same
// speculative drivers as SpecArray.
//
// The shared array is NOT copied: the backup records, on first write, the
// pre-loop value of each touched location.  Backup memory is therefore
// proportional to the touched set, which is the whole point ("less memory
// would be needed in this case since only the elements of the array
// accessed in the loop would be inserted into the hash table").  The
// backup's slot table is an arena-backed open-addressing array (see
// sparse_backup.hpp): a strip driver that retires one SparseSpecArray and
// builds the next recycles the same arena block, so the steady state stays
// allocation-free and every byte is accounted in the wlp.mem budget.
//
// Shadow marking for the PD test is optional and, when enabled, also sized
// to the array (dense shadows; a hash-table shadow variant is a possible
// further refinement the paper hints at).
#pragma once

#include <vector>

#include "wlp/core/sparse_backup.hpp"
#include "wlp/core/speculative.hpp"

namespace wlp {

template <class T, class Shadow = PDPrivateShadow>
class SparseSpecArray final : public SpecTarget {
 public:
  /// `shared` stays owned by the caller and is mutated in place.
  /// `expected_writes` sizes the backup (distinct locations, ~2x headroom
  /// is added internally by HashBackup's power-of-two rounding).
  SparseSpecArray(std::vector<T>& shared, unsigned workers,
                  std::size_t expected_writes, bool run_pd_test)
      : data_(shared),
        backup_(expected_writes * 2),
        pd_(run_pd_test),
        shadow_(shared.size(), workers) {
    if (pd_) {
      accessors_.reserve(workers);
      for (unsigned w = 0; w < workers; ++w)
        accessors_.emplace_back(shadow_, shared.size(), w);
    }
  }

  // ---- body-side API -----------------------------------------------------

  void begin_iteration(unsigned vpn, long iter) {
    if (pd_) accessors_[vpn].begin_iteration(iter);
  }

  T get(unsigned vpn, std::size_t idx) {
    if (pd_) accessors_[vpn].on_read(idx);
    return data_[idx];
  }

  void set(unsigned vpn, long iter, std::size_t idx, const T& v) {
    if (pd_) accessors_[vpn].on_write(idx);
    // Save-before-write; when the backup is full the data write is SKIPPED,
    // so every mutation stays recorded and restore_all() can still
    // reconstruct the exact pre-loop state.  The driver sees overflowed()
    // after the run and falls back to sequential re-execution.
    if (!backup_.record(iter, idx, data_[idx])) return;
    data_[idx] = v;
  }

  std::vector<T>& data() noexcept { return data_; }

  std::size_t backup_entries() const noexcept { return backup_.entries(); }
  std::size_t backup_bytes() const noexcept { return backup_.memory_bytes(); }

  // ---- SpecTarget ----------------------------------------------------------

  void checkpoint(ThreadPool*) override {}  // incremental: nothing up front
  long undo_beyond(long trip, ThreadPool* pool) override {
    return backup_.undo_into(data_, trip, pool);
  }
  void restore_all(ThreadPool* pool) override {
    backup_.restore_all_into(data_, pool);
  }
  bool overflowed() const override { return backup_.overflowed(); }
  std::size_t memory_bytes() const override { return backup_.memory_bytes(); }
  bool shadowed() const override { return pd_; }
  PDVerdict analyze(ThreadPool& pool, long trip) const override {
    return shadow_.analyze(pool, trip);
  }
  void reset_marks() override {
    shadow_.reset();  // O(1) epoch bump for the privatized policy
    for (auto& a : accessors_) a.reset();
    backup_.clear();
  }
  long marks() const override {
    long m = 0;
    for (const auto& a : accessors_) m += a.marks();
    return m;
  }
  void discard() override { backup_.clear(); }

  // ---- verdict-cache hooks -------------------------------------------------

  void enable_access_signatures(bool on) override {
    if constexpr (requires(Shadow& s) { s.enable_signatures(on); }) {
      if (pd_) shadow_.enable_signatures(on);
    }
  }
  bool access_summary(PDAccessSummary* out) const override {
    if constexpr (requires(const Shadow& s) { s.access_summary(); }) {
      if (pd_ && shadow_.signatures_enabled()) {
        *out = shadow_.access_summary();
        return true;
      }
    }
    return false;
  }
  long dirty_block_count() const override {
    return backup_.dirty_block_count();
  }

  // ---- fused-transaction hooks --------------------------------------------
  // No dense index and nothing to checkpoint up front; the fused undo pass
  // scans this target's slot table in chunks alongside the dense members'
  // dirty spans (one pool dispatch for the whole transaction).

  std::size_t txn_sparse_slots() const override { return backup_.capacity(); }
  long txn_undo_slots(long trip, std::size_t lo, std::size_t hi) override {
    return backup_.undo_slots(data_, trip, lo, hi);
  }
  /// After a fused full restore the recorded set is spent: drop it so the
  /// transaction reads as empty, matching the dense members (whose stamps
  /// restore_all clears).  The epoch bump keeps this O(1).
  void txn_restore_all_done() override { backup_.clear(); }

 private:
  std::vector<T>& data_;
  HashBackup<T> backup_;
  bool pd_;
  Shadow shadow_;
  std::vector<PDAccessorT<Shadow>> accessors_;
};

}  // namespace wlp
