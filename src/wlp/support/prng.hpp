// Deterministic pseudo-random number generation (splitmix64 + xoshiro256**).
//
// All synthetic workloads (device lists, Harwell-Boeing-like matrices,
// subscript arrays) are generated from seeded streams so that every test,
// example and benchmark is exactly reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace wlp {

/// splitmix64: used to seed xoshiro and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hash-table probing and jitter.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const auto x = (*this)();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability `prob` of true.
  constexpr bool chance(double prob) noexcept { return uniform() < prob; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace wlp
