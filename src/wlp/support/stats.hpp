// Small online/offline statistics helpers used by the benchmark harnesses,
// plus the instrumentation snapshot types exposed by the runtime substrate.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wlp {

/// Snapshot of a ThreadPool's fork-join instrumentation counters.
///
/// Taken with `ThreadPool::stats()`; counters accumulate until
/// `reset_stats()`.  A *wakeup* is one worker (or the caller, on the join
/// side) leaving a barrier wait: `spin_wakeups` resolved during the bounded
/// spin phase, `park_wakeups` had to park on the futex word.  A high park
/// ratio on a multicore host means launches are too far apart to spin for
/// (fine); a high park ratio *during* a tight strip/window loop means the
/// grain is too small for the substrate.
struct PoolStats {
  std::uint64_t launches = 0;         ///< parallel() calls dispatched to workers
  std::uint64_t inline_launches = 0;  ///< nested or p==1 calls run serially inline
  std::uint64_t spin_wakeups = 0;     ///< barrier waits resolved while spinning
  std::uint64_t park_wakeups = 0;     ///< barrier waits that parked (futex)
  std::uint64_t stolen_shares = 0;    ///< shares the caller ran beyond vpn 0
};

/// Welford online accumulator: mean / variance / min / max in one pass.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Half-width of a ~95% normal confidence interval on the mean.
  double ci95() const noexcept {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Median of a sample (copies; fine for bench-sized vectors).
inline double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

/// Relative error |measured - reference| / |reference| (0 when both 0).
inline double relative_error(double measured, double reference) noexcept {
  if (reference == 0.0) return measured == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::abs(measured - reference) / std::abs(reference);
}

}  // namespace wlp
