// Plain-text table / CSV emitters for the benchmark harnesses.
//
// Every figure/table bench prints (a) a human-readable aligned table with
// the paper's reference numbers next to ours and (b) an optional CSV block
// that downstream plotting can consume.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace wlp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Append a row; each cell is already formatted.
  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string num(long v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto rule = [&] {
      os << '+';
      for (auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
    rule();
  }

  void print_csv(std::ostream& os = std::cout) const {
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ',';
        os << cells[c];
      }
      os << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a small ASCII speedup chart: one line per series point.
/// Used by the figure benches so the "shape" of each curve is visible in
/// plain terminal output.
inline void ascii_curve(std::ostream& os, const std::string& label,
                        const std::vector<int>& xs, const std::vector<double>& ys,
                        double y_max, int bar_width = 48) {
  os << label << '\n';
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    const int n = y_max > 0 ? static_cast<int>(ys[i] / y_max * bar_width + 0.5) : 0;
    std::ostringstream head;
    head << "  p=" << std::setw(3) << xs[i] << "  " << std::fixed << std::setprecision(2)
         << std::setw(6) << ys[i] << "  ";
    os << head.str() << std::string(static_cast<std::size_t>(std::max(n, 0)), '#') << '\n';
  }
}

}  // namespace wlp
