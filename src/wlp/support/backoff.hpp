// Shared spin-wait backoff policy for the fork-join barrier and the
// DOACROSS sequential-phase handoff.
//
// Every busy-wait in the runtime escalates the same way: a few rounds of
// exponentially growing `pause` bursts (cheap, keeps the line in S state and
// frees pipeline slots for the sibling hyperthread), then `yield` (give the
// OS a chance to run the thread we are waiting on), and — for waiters that
// have a futex-capable word to sleep on — a park threshold after which the
// waiter should stop burning CPU entirely.  Centralizing the policy here
// keeps the barrier, the DOACROSS flag wait, and any future spin loop
// consistent and individually tunable.
#pragma once

#include <thread>

namespace wlp {

/// One CPU relaxation hint (x86 `pause` / ARM `yield`); no-op elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Escalating backoff: pause bursts of 1, 2, 4, ... up to 2^kPauseRounds,
/// then sched_yield per round.  `should_park()` turns true after
/// `spin_limit` rounds; waiters with a park mechanism (atomic wait / futex)
/// check it each round, call `note_park()` after each sleep, and waiters
/// without one just keep yielding.
class Backoff {
 public:
  /// `spin_limit == 0` means "park immediately" — the right policy when the
  /// host cannot actually spin usefully (fewer cores than waiters).  Limits
  /// above kRoundCap are clamped so should_park() stays reachable.
  explicit Backoff(unsigned spin_limit = kDefaultSpinLimit) noexcept
      : spin_limit_(spin_limit < kRoundCap ? spin_limit : kRoundCap) {}

  void pause() noexcept {
    if (round_ < kPauseRounds) {
      const unsigned reps = 1u << round_;
      for (unsigned i = 0; i < reps; ++i) cpu_relax();
    } else {
      std::this_thread::yield();
    }
    if (round_ < kRoundCap) ++round_;
  }

  bool should_park() const noexcept { return round_ >= spin_limit_; }

  /// Park hook: record one futex/atomic-wait sleep on the watched word.
  /// Waiters that park report `parks()` alongside `rounds()` so the
  /// park-vs-spin split is visible to the obs counters.
  void note_park() noexcept {
    if (parks_ < kRoundCap) ++parks_;
  }

  void reset() noexcept {
    round_ = 0;
    parks_ = 0;
  }
  /// Rounds burned, saturating at kRoundCap: the wlp.doacross.wait_rounds
  /// histogram input must never wrap, and past the cap the escalation state
  /// is meaningless anyway (the waiter yields every round regardless).
  unsigned rounds() const noexcept { return round_; }
  unsigned parks() const noexcept { return parks_; }

  static constexpr unsigned kPauseRounds = 6;        ///< 1..32 pauses/round
  static constexpr unsigned kDefaultSpinLimit = 48;  ///< then park (if able)
  static constexpr unsigned kRoundCap = 1u << 16;    ///< counter saturation

 private:
  unsigned round_ = 0;
  unsigned parks_ = 0;
  unsigned spin_limit_;
};

/// Spin (never parking — yield escalation only) until `pred()` holds.
/// For waits on plain atomics whose writers do not notify.
template <class Pred>
inline void spin_until(Pred&& pred) {
  Backoff b;
  while (!pred()) b.pause();
}

}  // namespace wlp
