// Cache-line utilities: padded per-worker slots that avoid false sharing.
//
// The runtime keeps one accumulator per virtual processor for things like
// "lowest iteration on which this processor saw the termination condition"
// (Figure 2 of the paper).  Packing those accumulators contiguously would
// put several of them on one cache line and make every update a coherence
// miss; PerWorker<T> pads each slot to a destructive-interference boundary.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace wlp {

// Pinned to 64 (x86-64/ARM64 common case) rather than
// std::hardware_destructive_interference_size, whose value is flagged by GCC
// as ABI-unstable across -mtune settings.
inline constexpr std::size_t kCacheLine = 64;

/// A value padded out to its own cache line.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// One padded slot per worker.  Indexed by virtual processor number.
template <class T>
class PerWorker {
 public:
  explicit PerWorker(std::size_t n, const T& init = T{}) : slots_(n, Padded<T>(init)) {}

  T& operator[](std::size_t wid) noexcept { return slots_[wid].value; }
  const T& operator[](std::size_t wid) const noexcept { return slots_[wid].value; }

  std::size_t size() const noexcept { return slots_.size(); }

  /// Fold all slots with `op` starting from `init` (single-threaded; used
  /// for the post-loop reductions which are cheap: O(p)).
  template <class U, class Op>
  U reduce(U init, Op op) const {
    U acc = init;
    for (const auto& s : slots_) acc = op(acc, s.value);
    return acc;
  }

 private:
  std::vector<Padded<T>> slots_;
};

}  // namespace wlp
