// Minimal streaming JSON writer — the one emitter behind every
// machine-readable artifact the repo produces: BENCH_<name>.json files
// (bench/bench_common.hpp, bench_micro_*), Chrome trace-event exports
// (wlp/obs/trace.cpp) and metrics snapshots (wlp/obs/metrics.cpp).
//
// Design: a comma/nesting tracker over a std::ostream.  No DOM, no
// allocation beyond the nesting stack, valid output by construction as long
// as begin/end calls pair up (checked with asserts in debug builds).
// Numbers are emitted with enough precision to round-trip doubles; strings
// are escaped per RFC 8259.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wlp {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true)
      : os_(os), pretty_(pretty) {}

  ~JsonWriter() { assert(stack_.empty() && "unclosed JSON scope"); }

  JsonWriter& begin_object() { return open('{', Scope::kObject); }
  JsonWriter& end_object() { return close('}', Scope::kObject); }
  JsonWriter& begin_array() { return open('[', Scope::kArray); }
  JsonWriter& end_array() { return close(']', Scope::kArray); }

  /// Key inside an object; follow with a value or a begin_*.
  JsonWriter& key(std::string_view k) {
    assert(!stack_.empty() && stack_.back().scope == Scope::kObject);
    separate();
    write_string(k);
    os_ << (pretty_ ? ": " : ":");
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no Inf/NaN
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      os_ << buf;
    }
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(unsigned long long v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }

  /// key + scalar in one call: w.kv("n", 42)
  template <class T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  struct Frame {
    Scope scope;
    bool first = true;
  };

  JsonWriter& open(char c, Scope s) {
    separate();
    os_ << c;
    stack_.push_back({s, true});
    return *this;
  }

  JsonWriter& close(char c, [[maybe_unused]] Scope s) {
    assert(!stack_.empty() && stack_.back().scope == s);
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (pretty_ && !empty) newline_indent();
    os_ << c;
    return *this;
  }

  /// Emit the comma/indentation before a value or key at the current level.
  void separate() {
    if (pending_key_) {  // value directly after key(): no comma
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    Frame& top = stack_.back();
    if (!top.first) os_ << ',';
    top.first = false;
    if (pretty_) newline_indent();
  }

  void newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char ch : s) {
      switch (ch) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            os_ << buf;
          } else {
            os_ << ch;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  bool pretty_;
  bool pending_key_ = false;
  std::vector<Frame> stack_;
};

}  // namespace wlp
