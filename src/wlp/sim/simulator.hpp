// Discrete-event execution of the Section 3 methods on the simulated
// machine.  See machine.hpp for the model and DESIGN.md ("Substitutions")
// for why benchmark speedups come from here rather than from wall clocks.
#pragma once

#include <vector>

#include "wlp/core/report.hpp"
#include "wlp/sim/machine.hpp"

namespace wlp::sim {

struct SimOptions {
  bool stamps = false;      ///< time-stamp writes (undo support)
  bool checkpoint = false;  ///< checkpoint before / restore overshoot after
  bool pd_test = false;     ///< shadow marking + post-execution analysis
  long strip = 0;           ///< strip length for strip-mined variants (0 = off)
  long window = 0;          ///< sliding-window size (0 = off)
};

struct SimResult {
  double time = 0;       ///< makespan including all overheads
  double t_before = 0;   ///< Tb: checkpoint
  double t_after = 0;    ///< Ta: undo + PD analysis
  long executed = 0;     ///< iteration bodies run
  long overshot = 0;     ///< bodies run at index >= trip
  double speedup = 0;    ///< sequential_time / time
};

class Simulator {
 public:
  explicit Simulator(MachineModel m = {}) : m_(m) {}

  const MachineModel& machine() const { return m_; }

  /// Sequential execution time of the loop (the speedup baseline).
  double sequential_time(const LoopProfile& lp) const;

  /// Run `method` on `p` processors.
  SimResult run(wlp::Method method, const LoopProfile& lp, unsigned p,
                const SimOptions& opts = {}) const;

  /// Speedups for each processor count in `ps`.
  std::vector<double> speedup_curve(wlp::Method method, const LoopProfile& lp,
                                    const std::vector<int>& ps,
                                    const SimOptions& opts = {}) const;

 private:
  double iteration_cost(const LoopProfile& lp, long i, const SimOptions& o) const;
  double overheads_before(const LoopProfile& lp, unsigned p, const SimOptions& o) const;
  double overheads_after(const LoopProfile& lp, unsigned p, const SimOptions& o,
                         long overshot_writes) const;

  SimResult sim_static_cyclic(const LoopProfile& lp, unsigned p,
                              const SimOptions& o) const;
  SimResult sim_assoc_prefix(const LoopProfile& lp, unsigned p,
                             const SimOptions& o) const;
  SimResult sim_wu_lewis_distribute(const LoopProfile& lp, unsigned p,
                                    const SimOptions& o) const;
  SimResult sim_wu_lewis_doacross(const LoopProfile& lp, unsigned p,
                                  const SimOptions& o) const;
  SimResult sim_strip_mined(const LoopProfile& lp, unsigned p,
                            const SimOptions& o) const;
  SimResult sim_sliding_window(const LoopProfile& lp, unsigned p,
                               const SimOptions& o) const;

  MachineModel m_;
};

}  // namespace wlp::sim
