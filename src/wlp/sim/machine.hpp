// The simulated multiprocessor — our stand-in for the paper's Alliant FX/80
// (and for the MPPs Section 9 extrapolates to), since wall-clock speedup is
// unmeasurable on a single-core host.
//
// The machine is a set of p virtual processors with per-operation costs (in
// abstract cycles).  The simulator in simulator.hpp executes each Section 3
// method's *exact* iteration schedule — the same lock serialization, the
// same private-traversal hops, the same QUIT cut-off, the same stamp /
// shadow / checkpoint overheads — against a per-iteration work profile
// measured from the real workloads, and reports the parallel makespan.
// Speedup = sequential time / makespan.
#pragma once

#include <cmath>
#include <vector>

namespace wlp::sim {

/// Per-operation cost parameters (abstract cycles).  Defaults are calibrated
/// so that one unit of workload "work" is the yardstick; see
/// bench/calibrate notes in EXPERIMENTS.md.
struct MachineModel {
  double t_next = 1.0;     ///< one dispatcher step (pointer chase / r update)
  double t_term = 0.3;     ///< evaluate a termination condition
  double t_claim = 0.3;    ///< dynamic-scheduling claim (shared counter)
  double t_lock = 2.8;     ///< acquire+release of General-1's critical section
  double t_stamp = 0.8;   ///< time-stamp one write (undo support)
  double t_shadow = 0.4;   ///< one PD shadow mark
  double t_word = 0.1;    ///< copy one word (checkpoint / restore)
  double t_prefix_op = 0.8;  ///< one associative composition in the scan
  double t_analysis = 0.08;  ///< PD post-analysis, per shadow cell
  double t_post_wait = 2.0;  ///< DOACROSS post/wait handshake per iteration
  double t_barrier_base = 8.0;
  double t_barrier_log = 4.0;  ///< barrier = base + log * log2(p)

  double barrier(unsigned p) const {
    return t_barrier_base + t_barrier_log * std::log2(static_cast<double>(p < 2 ? 2 : p));
  }
};

/// What one WHILE loop looks like to the machine.
struct LoopProfile {
  std::vector<double> work;  ///< remainder cost per iteration, for all of u
  long trip = 0;             ///< sequential trip count
  long u = 0;                ///< iteration-space upper bound (== work.size())
  double next_cost = 1.0;    ///< dispatcher step cost multiplier
  long writes_per_iter = 0;  ///< stamped writes per iteration
  long reads_per_iter = 0;   ///< shadowed reads per iteration
  long state_words = 0;      ///< checkpointable state size (words)
  long shadow_cells = 0;     ///< PD shadow size (elements under test)
  /// RV terminators discover the exit only by doing the work; RI tests are
  /// evaluated before the work, so overshot iterations cost only the test.
  bool overshoot_does_work = false;
  /// Singular exits (a planted error like TRACK's) are observable ONLY at
  /// iteration == trip: processors past it keep running until that exact
  /// iteration completes and issues the QUIT.  Bound-style exits (MA28's
  /// (nz-1)^2 test) are observed by every iteration >= trip.
  bool singular_exit = false;

  double work_at(long i) const {
    return i >= 0 && i < static_cast<long>(work.size())
               ? work[static_cast<std::size_t>(i)]
               : 0.0;
  }
  double total_work_below(long n) const {
    double s = 0;
    for (long i = 0; i < n && i < static_cast<long>(work.size()); ++i)
      s += work[static_cast<std::size_t>(i)];
    return s;
  }
};

}  // namespace wlp::sim
