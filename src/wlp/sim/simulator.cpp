#include "wlp/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "wlp/obs/obs.hpp"

namespace wlp::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Min-heap of virtual processors keyed by next-available time.
struct Proc {
  double time = 0;
  long prev = 0;  ///< last traversal position held (General-3 replay)
  unsigned id = 0;
};
struct ProcLater {
  bool operator()(const Proc& a, const Proc& b) const { return a.time > b.time; }
};
using ProcQueue = std::priority_queue<Proc, std::vector<Proc>, ProcLater>;

ProcQueue make_procs(unsigned p) {
  ProcQueue q;
  for (unsigned k = 0; k < p; ++k) q.push({0.0, 0, k});
  return q;
}

enum class DispatchMode { kClosedForm, kSerializedNext, kReplayNext };

}  // namespace

double Simulator::sequential_time(const LoopProfile& lp) const {
  // trip remainder iterations, plus one dispatcher step and one termination
  // test per iteration, plus the final (exit-discovering) test.
  return lp.total_work_below(lp.trip) +
         static_cast<double>(lp.trip) * (lp.next_cost * m_.t_next + m_.t_term) +
         m_.t_term;
}

double Simulator::iteration_cost(const LoopProfile& lp, long i,
                                 const SimOptions& o) const {
  double c = m_.t_term;
  const bool does_work = i < lp.trip || lp.overshoot_does_work;
  if (does_work) {
    c += lp.work_at(i);
    if (o.stamps) c += static_cast<double>(lp.writes_per_iter) * m_.t_stamp;
    if (o.pd_test)
      c += static_cast<double>(lp.writes_per_iter + lp.reads_per_iter) * m_.t_shadow;
  }
  return c;
}

double Simulator::overheads_before(const LoopProfile& lp, unsigned p,
                                   const SimOptions& o) const {
  if (!o.checkpoint) return 0;
  return static_cast<double>(lp.state_words) * m_.t_word / static_cast<double>(p) +
         m_.barrier(p);
}

double Simulator::overheads_after(const LoopProfile& lp, unsigned p,
                                  const SimOptions& o, long overshot_writes) const {
  double t = 0;
  if (o.checkpoint && overshot_writes > 0)
    t += static_cast<double>(overshot_writes) * m_.t_word / static_cast<double>(p);
  if (o.pd_test)
    t += static_cast<double>(lp.shadow_cells) * m_.t_analysis / static_cast<double>(p) +
         m_.barrier(p);
  return t;
}

// ---------------------------------------------------------------------------
// Static cyclic private traversal (General-2)
// ---------------------------------------------------------------------------

SimResult Simulator::sim_static_cyclic(const LoopProfile& lp, unsigned p,
                                       const SimOptions& o) const {
  // Pass 1: every processor free-runs (as if no QUIT existed); the QUIT
  // lands when the earliest exit-observing iteration completes anywhere.
  double qt = kInf;
  for (unsigned k = 0; k < p; ++k) {
    double t = 0;
    for (long i = 0; i < lp.u; ++i) {
      t += lp.next_cost * m_.t_next;  // every processor hops every element
      if (i % static_cast<long>(p) != static_cast<long>(k)) continue;
      t += iteration_cost(lp, i, o);
      if (i >= lp.trip) {
        if (!lp.singular_exit || i == lp.trip) qt = std::min(qt, t);
        if (!lp.singular_exit) break;  // later exits complete later anyway
        if (i == lp.trip) break;       // singular: only this iteration matters
      }
    }
  }

  // Pass 2: re-walk with the cut applied — iterations at or beyond the trip
  // that would only START after the QUIT landed are never begun.
  SimResult r;
  double makespan = 0;
  for (unsigned k = 0; k < p; ++k) {
    double t = 0;
    for (long i = 0; i < lp.u; ++i) {
      if (i >= lp.trip && t >= qt) break;
      t += lp.next_cost * m_.t_next;
      if (i % static_cast<long>(p) != static_cast<long>(k)) continue;
      t += iteration_cost(lp, i, o);
      ++r.executed;
      if (i >= lp.trip) ++r.overshot;
    }
    makespan = std::max(makespan, t);
  }
  r.time = makespan;
  return r;
}

// ---------------------------------------------------------------------------
// Associative dispatcher: strip-wise parallel prefix + DOALL (Fig. 3)
// ---------------------------------------------------------------------------

SimResult Simulator::sim_assoc_prefix(const LoopProfile& lp, unsigned p,
                                      const SimOptions& o) const {
  SimResult r;
  const long strip = o.strip > 0 ? o.strip : lp.u;
  double t = 0;
  for (long base = 0; base < lp.u; base += strip) {
    const long len = std::min(strip, lp.u - base);
    // Prefix over the strip's dispatcher steps + RI-term scan, then barrier.
    const double pd = static_cast<double>(p);
    t += 2.0 * static_cast<double>(len) / pd * m_.t_prefix_op +
         std::log2(std::max(2.0, pd)) * m_.t_prefix_op +
         static_cast<double>(len) / pd * m_.t_term + m_.barrier(p);
    // Remainder DOALL over the strip's valid iterations.
    const long end = std::min(base + len, std::max(lp.trip, base));
    LoopProfile sub;
    sub.work.assign(lp.work.begin() + std::min<long>(base, static_cast<long>(lp.work.size())),
                    lp.work.begin() + std::min<long>(base + len, static_cast<long>(lp.work.size())));
    sub.trip = std::max(0L, std::min(lp.trip - base, len));
    sub.u = lp.overshoot_does_work ? len : std::max(sub.trip, 0L);
    sub.next_cost = 0;  // terms precomputed
    sub.writes_per_iter = lp.writes_per_iter;
    sub.reads_per_iter = lp.reads_per_iter;
    sub.overshoot_does_work = lp.overshoot_does_work;
    const SimResult stripped = run(wlp::Method::kInduction2, sub, p,
                                   SimOptions{o.stamps, false, o.pd_test, 0, 0});
    t += stripped.time + m_.barrier(p);
    r.executed += stripped.executed;
    r.overshot += stripped.overshot;
    (void)end;
    if (lp.trip < base + len) break;  // exit found in this strip
  }
  r.time = t;
  return r;
}

// ---------------------------------------------------------------------------
// Wu & Lewis baselines
// ---------------------------------------------------------------------------

SimResult Simulator::sim_wu_lewis_distribute(const LoopProfile& lp, unsigned p,
                                             const SimOptions& o) const {
  SimResult r;
  // Sequential prologue: with an RI terminator the dispatcher pass stops at
  // the exit; with RV it must precompute all u terms (superfluous values).
  const long terms = lp.overshoot_does_work ? lp.u : lp.trip;
  double t = static_cast<double>(terms) * (lp.next_cost * m_.t_next + m_.t_term) +
             m_.barrier(p);
  LoopProfile sub = lp;
  sub.next_cost = 0;  // terms stored in the prologue's array
  sub.u = terms;
  const SimResult doall = run(wlp::Method::kInduction2, sub, p,
                              SimOptions{o.stamps, false, o.pd_test, 0, 0});
  t += doall.time;
  r.executed = doall.executed + terms;
  r.overshot = doall.overshot;
  r.time = t;
  return r;
}

SimResult Simulator::sim_wu_lewis_doacross(const LoopProfile& lp, unsigned p,
                                           const SimOptions& o) const {
  SimResult r;
  ProcQueue procs = make_procs(p);
  double chain_end = 0;  // completion of the previous sequential phase
  double makespan = 0;
  const double seq_phase = lp.next_cost * m_.t_next + m_.t_term + m_.t_post_wait;
  for (long i = 0; i < lp.trip; ++i) {
    Proc pr = procs.top();
    procs.pop();
    const double seq_start = std::max(pr.time + m_.t_claim, chain_end);
    chain_end = seq_start + seq_phase;
    const double done = chain_end + iteration_cost(lp, i, o) - m_.t_term;
    pr.time = done;
    makespan = std::max(makespan, done);
    procs.push(pr);
    ++r.executed;
  }
  r.time = std::max(makespan, chain_end + m_.t_term);  // final exit discovery
  return r;
}

// ---------------------------------------------------------------------------
// Strip-mined and sliding-window variants (Sections 4/8)
// ---------------------------------------------------------------------------

SimResult Simulator::sim_strip_mined(const LoopProfile& lp, unsigned p,
                                     const SimOptions& o) const {
  SimResult r;
  const long strip = o.strip > 0 ? o.strip : lp.u;
  double t = 0;
  for (long base = 0; base < lp.u; base += strip) {
    const long len = std::min(strip, lp.u - base);
    LoopProfile sub;
    sub.work.assign(
        lp.work.begin() + std::min<long>(base, static_cast<long>(lp.work.size())),
        lp.work.begin() + std::min<long>(base + len, static_cast<long>(lp.work.size())));
    sub.trip = std::clamp(lp.trip - base, 0L, len);
    sub.u = len;
    sub.next_cost = lp.next_cost;
    sub.writes_per_iter = lp.writes_per_iter;
    sub.reads_per_iter = lp.reads_per_iter;
    sub.overshoot_does_work = lp.overshoot_does_work;
    const SimResult s = run(wlp::Method::kInduction2, sub, p,
                            SimOptions{o.stamps, false, o.pd_test, 0, 0});
    t += s.time + m_.barrier(p);
    r.executed += s.executed;
    r.overshot += s.overshot;
    if (lp.trip < base + len) break;
  }
  r.time = t;
  return r;
}

SimResult Simulator::sim_sliding_window(const LoopProfile& lp, unsigned p,
                                        const SimOptions& o) const {
  SimResult r;
  const long w = o.window > 0 ? o.window : lp.u;
  ProcQueue procs = make_procs(p);
  std::vector<double> completion(static_cast<std::size_t>(lp.u), 0);
  double quit_time = kInf;
  double makespan = 0;
  for (long i = 0; i < lp.u; ++i) {
    Proc pr = procs.top();
    if (i >= lp.trip && pr.time >= quit_time) break;
    procs.pop();
    double start = pr.time + m_.t_claim;
    if (i >= w) start = std::max(start, completion[static_cast<std::size_t>(i - w)]);
    const double done =
        start + lp.next_cost * m_.t_next + iteration_cost(lp, i, o);
    completion[static_cast<std::size_t>(i)] = done;
    if (i >= lp.trip) {
      if (!lp.singular_exit || i == lp.trip)
        quit_time = std::min(quit_time, done);
      ++r.overshot;
    }
    ++r.executed;
    pr.time = done;
    makespan = std::max(makespan, done);
    procs.push(pr);
  }
  r.time = makespan;
  return r;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

SimResult Simulator::run(wlp::Method method, const LoopProfile& lp, unsigned p,
                         const SimOptions& opts) const {
  if (p == 0) throw std::invalid_argument("Simulator::run: p must be >= 1");
  SimResult r;
  // Counts nested sub-runs too (strip/prefix methods re-enter run() per
  // strip), which is exactly the figure-bench work the metric is after.
  WLP_OBS_COUNT("wlp.sim.runs", 1);
  WLP_TRACE_SCOPE("sim.run", static_cast<std::uint64_t>(method), p);

  auto cost = [this](const LoopProfile& l, long i, const SimOptions& o) {
    return iteration_cost(l, i, o);
  };
  auto dynamic = [&](bool use_quit, DispatchMode mode) {
    SimResult res;
    ProcQueue procs = make_procs(p);
    double lock_free = 0;
    double quit_time = kInf;
    double makespan = 0;
    for (long i = 0; i < lp.u; ++i) {
      Proc pr = procs.top();
      if (use_quit && i >= lp.trip && pr.time >= quit_time) break;
      procs.pop();
      double start = pr.time + m_.t_claim;
      double dispatch = 0;
      switch (mode) {
        case DispatchMode::kClosedForm:
          // Evaluating the closed form is not free; it is simply paid in
          // parallel rather than on a serial chain.
          dispatch = lp.next_cost * m_.t_next;
          break;
        case DispatchMode::kSerializedNext: {
          const double acq = std::max(pr.time, lock_free);
          const double rel = acq + m_.t_lock + lp.next_cost * m_.t_next;
          lock_free = rel;
          start = rel;
          break;
        }
        case DispatchMode::kReplayNext: {
          dispatch = static_cast<double>(i - pr.prev) * lp.next_cost * m_.t_next;
          pr.prev = i;
          break;
        }
      }
      const double done = start + dispatch + cost(lp, i, opts);
      if (i >= lp.trip) {
        if (!lp.singular_exit || i == lp.trip)
          quit_time = std::min(quit_time, done);
        ++res.overshot;
      }
      ++res.executed;
      pr.time = done;
      makespan = std::max(makespan, done);
      procs.push(pr);
    }
    res.time = makespan;
    return res;
  };

  switch (method) {
    case wlp::Method::kSequential:
      r.time = sequential_time(lp);
      r.executed = lp.trip;
      break;
    case wlp::Method::kInduction1:
      r = dynamic(false, DispatchMode::kClosedForm);
      break;
    case wlp::Method::kInduction2:
    case wlp::Method::kDoany:
      r = dynamic(true, DispatchMode::kClosedForm);
      break;
    case wlp::Method::kGeneral1:
      r = dynamic(true, DispatchMode::kSerializedNext);
      break;
    case wlp::Method::kGeneral2:
      r = sim_static_cyclic(lp, p, opts);
      break;
    case wlp::Method::kGeneral3:
      r = dynamic(true, DispatchMode::kReplayNext);
      break;
    case wlp::Method::kAssocPrefix:
      r = sim_assoc_prefix(lp, p, opts);
      break;
    case wlp::Method::kWuLewisDistribute:
      r = sim_wu_lewis_distribute(lp, p, opts);
      break;
    case wlp::Method::kWuLewisDoacross:
      r = sim_wu_lewis_doacross(lp, p, opts);
      break;
    case wlp::Method::kStripMined:
      r = sim_strip_mined(lp, p, opts);
      break;
    case wlp::Method::kSlidingWindow:
      r = sim_sliding_window(lp, p, opts);
      break;
  }

  r.t_before = overheads_before(lp, p, opts);
  r.t_after = overheads_after(lp, p, opts, r.overshot * lp.writes_per_iter);
  r.time += r.t_before + r.t_after;
  const double seq = sequential_time(lp);
  r.speedup = r.time > 0 ? seq / r.time : 0;
  return r;
}

std::vector<double> Simulator::speedup_curve(wlp::Method method,
                                             const LoopProfile& lp,
                                             const std::vector<int>& ps,
                                             const SimOptions& opts) const {
  std::vector<double> out;
  out.reserve(ps.size());
  for (int p : ps) out.push_back(run(method, lp, static_cast<unsigned>(p), opts).speedup);
  return out;
}

}  // namespace wlp::sim
