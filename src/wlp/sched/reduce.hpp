// Parallel reduction over an index range.
//
// Used by the post-loop phases the paper requires to be fully parallel:
// the min-reduction that recovers the last valid iteration (Fig. 2) and the
// PD test's post-execution analysis (Section 5.1), both O(n/p + log p).
#pragma once

#include <algorithm>

#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

/// acc = op(acc, f(i)) over i in [lo, hi), blocked statically; block results
/// folded sequentially (O(p)).  `op` must be associative; `id` its identity.
template <class T, class F, class Op>
T parallel_reduce(ThreadPool& pool, long lo, long hi, T id, F&& f, Op&& op) {
  if (lo >= hi) return id;
  const unsigned p = pool.size();
  const long n = hi - lo;
  const long blk = (n + p - 1) / p;
  PerWorker<T> partial(p, id);
  pool.parallel([&](unsigned vpn) {
    const long b = lo + static_cast<long>(vpn) * blk;
    const long e = std::min(b + blk, hi);
    T acc = id;
    for (long i = b; i < e; ++i) acc = op(acc, f(i));
    partial[vpn] = acc;
  });
  return partial.reduce(id, op);
}

/// Parallel minimum of f(i) over [lo, hi).
template <class T, class F>
T parallel_min(ThreadPool& pool, long lo, long hi, T id, F&& f) {
  return parallel_reduce(pool, lo, hi, id, std::forward<F>(f),
                         [](T a, T b) { return std::min(a, b); });
}

/// Parallel sum of f(i) over [lo, hi).
template <class T, class F>
T parallel_sum(ThreadPool& pool, long lo, long hi, F&& f) {
  return parallel_reduce(pool, lo, hi, T{}, std::forward<F>(f),
                         [](T a, T b) { return a + b; });
}

/// Parallel logical-or of f(i) over [lo, hi).
template <class F>
bool parallel_any(ThreadPool& pool, long lo, long hi, F&& f) {
  return parallel_reduce(pool, lo, hi, false, std::forward<F>(f),
                         [](bool a, bool b) { return a || b; });
}

}  // namespace wlp
