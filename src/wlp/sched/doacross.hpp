// DOACROSS pipelining — the Wu & Lewis (ICPP 1990) execution model and the
// paper's fallback for sequential blocks after loop distribution (Section 6).
//
// Each iteration is split into a *sequential phase* (the recurrence /
// dispatcher step, which must observe program order) and a *parallel phase*
// (the remainder).  Iteration i's sequential phase waits on iteration i-1's
// completion; parallel phases overlap freely.  Because the sequential
// phases run in program order, a DOACROSS WHILE loop never overshoots —
// which is also why it forfeits the parallelism the paper's speculative
// methods recover.
//
// Wait-chain design (the cross-iteration rendezvous every link pays):
//
//   * One **frontier word** replaces the seed's per-iteration flag vector.
//     The 32-bit futex-capable word holds the count of consecutively
//     completed sequential phases: iteration i runs its sequential phase
//     when `frontier == i`, its parallel phase once `frontier > i`.  A
//     terminated chain stores `kStopBit | s` (seq(s) saw the termination
//     condition): iterations below s still run their parallel phase,
//     everything at or above s returns.  One word means one cache line for
//     the whole chain — the seed's 1-byte flags packed 64 iterations per
//     line and every sequential-phase store ping-ponged that line under
//     all nearby waiters.
//   * **Park, don't just spin.**  Waiters escalate through the shared
//     Backoff (pause bursts, then yield) and, once `should_park()` fires,
//     sleep in FUTEX_WAIT on the frontier word itself (the pool's parking
//     primitive, detail::futex_wait_u32).  On an oversubscribed host the
//     spin budget is zero — spinning there steals cycles from exactly the
//     thread executing the sequential phase being waited on.
//   * **Batched publication.**  The frontier owner (the thread whose
//     iteration the frontier points at) runs its sequential phase and then
//     keeps helping: while the next iteration is already claimed (its
//     claimant is — or soon will be — waiting on the frontier), the owner
//     runs that sequential phase too, up to kMaxSeqBatch links, and then
//     publishes the whole run with a single store plus (at most) one futex
//     broadcast.  Claimants woken by the batch observe `frontier > i` and
//     skip straight to their parallel phase.  Exactly-once execution of
//     each sequential phase holds because a claimant runs seq(i) only after
//     observing `frontier == i`, and the owner never publishes intermediate
//     values inside a batch.
//   * **Wake elision.**  Publication stores the frontier seq_cst and reads
//     a seq_cst waiter count; the broadcast syscall is skipped when nobody
//     is parked.  A waiter increments the count, re-checks the frontier
//     seq_cst, and only then sleeps — the same protocol as the pool's
//     doorbell, race-free because FUTEX_WAIT re-checks the word value in
//     the kernel.
//   * **Pooled chain state.**  The chain state is O(1) words plus one
//     padded wait-stat slot per virtual processor (the pipeline depth) —
//     pooled per calling thread and epoch-stamped (mem::EpochClock, the
//     same clock the PD shadow uses), so a loop that exits after a handful
//     of iterations pays no O(max_iters) allocation or zero-fill, and
//     repeated calls allocate nothing at all.  The slot array itself is an
//     arena block (mem::local_arena), so even pool-width growth recycles
//     in O(1) and shows up in the wlp.mem counters, not in malloc.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "wlp/mem/arena.hpp"
#include "wlp/mem/epoch.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/backoff.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

struct DoacrossOptions {
  /// Sentinel: derive the spin budget from the pool — park immediately when
  /// the pool is oversubscribed, Backoff::kDefaultSpinLimit otherwise.
  static constexpr unsigned kAutoSpin = ~0u;
  unsigned spin_limit = kAutoSpin;  ///< backoff rounds before a waiter parks
};

struct DoacrossResult {
  long trip = 0;  ///< iterations whose parallel phase executed
  std::uint64_t wait_rounds = 0;  ///< backoff rounds summed over all waits
  std::uint64_t parks = 0;        ///< futex sleeps summed over all waits
  std::uint64_t publishes = 0;    ///< frontier advances (< trip ⇒ batching)
};

/// Calling-thread-local reuse counters for the pooled chain state — the
/// allocation-regression hook (mirrors PDShadowStats for the PD shadow).
struct DoacrossChainStats {
  long chain_allocs = 0;  ///< chain-state objects ever constructed
  long slot_grows = 0;    ///< wait-slot array growths (pool got wider)
  long runs = 0;          ///< doacross_while calls served from the pool
};

namespace detail {

// Frontier encoding: plain values count completed sequential phases;
// kStopBit | s marks termination at iteration s.  Plain values therefore
// must stay below kStopBit, which bounds one pipeline window; longer loops
// run as back-to-back windows (doacross_while below) — at 2^30 iterations
// per window the outer loop is unreachable in practice.
inline constexpr std::uint32_t kStopBit = 0x80000000u;
inline constexpr long kFrontierWindow = 1L << 30;

// How many consecutive sequential phases the frontier owner runs before it
// must publish.  Helping removes the cross-thread handoff (wake + context
// switch) from the chain's critical path and amortizes one broadcast over
// the whole run; the cap bounds how long already-satisfied waiters can be
// held parked before their parallel phases are released.
inline constexpr long kMaxSeqBatch = 8;

/// The per-call rendezvous state.  One cache line for the frontier (every
/// waiter hammers it), one for the waiter count (every parking waiter
/// mutates it), one for the claim counter, plus a padded wait-stat slot per
/// virtual processor.  Slots are epoch-stamped: begin_window() bumps the
/// epoch instead of zeroing, and a slot lazily resets the first time its
/// vpn touches it in the new epoch (each slot is written by exactly the
/// thread executing that vpn's share, so the stamp check needs no atomics).
class DoacrossChain {
 public:
  struct Slot {
    std::uint32_t epoch = 0;
    std::uint64_t rounds = 0;
    std::uint64_t parks = 0;
    std::uint64_t publishes = 0;
  };

  DoacrossChain() = default;
  ~DoacrossChain() {
    if (slots_ != nullptr) arena_->deallocate_array(slots_, cap_);
  }
  DoacrossChain(const DoacrossChain&) = delete;
  DoacrossChain& operator=(const DoacrossChain&) = delete;

  /// Arm the chain for a window of `win` iterations on `p` virtual
  /// processors.  O(1) plus a one-time slot-array growth.
  void begin_window(unsigned p, long win, DoacrossChainStats& stats) {
    epoch_.bump([this] { sweep_slots(); });
    frontier_.store(0, std::memory_order_relaxed);
    waiters_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    trip_.store(win, std::memory_order_relaxed);
    if (cap_ < p) {
      grow_slots(p);
      ++stats.slot_grows;
    }
    nproc_ = p;
  }

  Slot& slot(unsigned vpn) noexcept {
    Slot& s = slots_[vpn].value;
    if (s.epoch != epoch_.value()) s = Slot{epoch_.value(), 0, 0, 0};
    return s;
  }

  long claim() noexcept { return next_.fetch_add(1, std::memory_order_relaxed); }
  long claimed_watermark() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  std::uint32_t frontier_acquire() const noexcept {
    return frontier_.load(std::memory_order_acquire);
  }

  /// Publish a new frontier value and wake every parked waiter with one
  /// broadcast — elided entirely when the waiter count says nobody sleeps.
  void publish(std::uint32_t v) noexcept {
    frontier_.store(v, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) != 0)
      futex_wake_u32(frontier_, 0x7fffffff);
  }

  /// One park attempt: advertise, re-check, sleep.  Returns after any wake
  /// (including spurious); the caller re-evaluates the frontier.
  void park(std::uint32_t seen) noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (frontier_.load(std::memory_order_seq_cst) == seen)
      futex_wait_u32(frontier_, seen);
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  void record_stop(long s) noexcept {
    trip_.store(s, std::memory_order_relaxed);  // read after the join only
  }
  long trip() const noexcept { return trip_.load(std::memory_order_relaxed); }

  /// Fold this window's wait stats (slots stamped with the current epoch)
  /// into `r`.  Called after the join; no shares are in flight.
  void accumulate(DoacrossResult& r) const noexcept {
    for (unsigned vpn = 0; vpn < nproc_; ++vpn) {
      const Slot& s = slots_[vpn].value;
      if (s.epoch != epoch_.value()) continue;
      r.wait_rounds += s.rounds;
      r.parks += s.parks;
      r.publishes += s.publishes;
    }
  }

 private:
  /// Replace the slot array with one of `p` slots from the calling
  /// thread's arena.  Runs right after the window's epoch bump, so every
  /// old slot is already stale — nothing to copy, the retired block just
  /// goes back to the free list for the next chain of this width.
  void grow_slots(unsigned p) {
    if (arena_ == nullptr) arena_ = &mem::local_arena();
    if (slots_ != nullptr) arena_->deallocate_array(slots_, cap_);
    slots_ = arena_->allocate_array<Padded<Slot>>(p);
    for (unsigned i = 0; i < p; ++i) new (&slots_[i]) Padded<Slot>();
    cap_ = p;
  }

  /// 32-bit epoch wrap (once per 2^32 windows): unstamp every slot so no
  /// survivor can alias the restarted counter.
  void sweep_slots() noexcept {
    for (unsigned i = 0; i < cap_; ++i) slots_[i].value.epoch = 0;
  }

  alignas(kCacheLine) std::atomic<std::uint32_t> frontier_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> waiters_{0};
  alignas(kCacheLine) std::atomic<long> next_{0};
  std::atomic<long> trip_{0};
  Padded<Slot>* slots_ = nullptr;  ///< arena block, cap_ wait-stat slots
  mem::Arena* arena_ = nullptr;    ///< pinned so free pairs with alloc
  unsigned cap_ = 0;
  mem::EpochClock epoch_;
  unsigned nproc_ = 0;
};

struct DoacrossChainPool {
  std::vector<std::unique_ptr<DoacrossChain>> chains;
  unsigned depth = 0;  ///< live leases (nested doacross on one thread)
  DoacrossChainStats stats;
};

inline DoacrossChainPool& doacross_tl_pool() {
  static thread_local DoacrossChainPool pool;
  return pool;
}

/// Lease one pooled chain for the duration of a doacross_while call.  The
/// pool is thread-local to the *calling* thread (the pool substrate allows
/// one fork-join at a time, so two concurrent leases on one thread can only
/// mean a nested doacross — which gets the next pool slot, not a fresh
/// allocation on every call).
class DoacrossChainLease {
 public:
  DoacrossChainLease() : pool_(doacross_tl_pool()) {
    if (pool_.chains.size() <= pool_.depth) {
      pool_.chains.push_back(std::make_unique<DoacrossChain>());
      ++pool_.stats.chain_allocs;
    }
    chain_ = pool_.chains[pool_.depth].get();
    ++pool_.depth;
    ++pool_.stats.runs;
  }
  ~DoacrossChainLease() { --pool_.depth; }

  DoacrossChainLease(const DoacrossChainLease&) = delete;
  DoacrossChainLease& operator=(const DoacrossChainLease&) = delete;

  DoacrossChain& chain() noexcept { return *chain_; }
  DoacrossChainStats& stats() noexcept { return pool_.stats; }

 private:
  DoacrossChainPool& pool_;
  DoacrossChain* chain_ = nullptr;
};

/// One pipeline window over local iterations [0, win); global iteration
/// numbers are base + local.  Returns the window's trip (== win when no
/// stop fired).
template <class Seq, class Par>
long doacross_window(ThreadPool& pool, DoacrossChain& st, long base, long win,
                     unsigned spin_limit, Seq& seq, Par& par) {
  WLP_TRACE_SCOPE("doacross.run", win, pool.size());
  pool.parallel([&](unsigned vpn) {
    DoacrossChain::Slot& slot = st.slot(vpn);
    for (;;) {
      const long i = st.claim();
      if (i >= win) return;
      const std::uint32_t me = static_cast<std::uint32_t>(i);

      // Wait until the frontier reaches us (our turn to run seq), passes us
      // (a helping owner ran seq(i) already), or stops.  Stop values have
      // the top bit set, so the unsigned compare exits on them too.
      std::uint32_t f = st.frontier_acquire();
      if (f < me) {
        WLP_TRACE_SCOPE("doacross.wait", i, vpn);
        Backoff b(spin_limit);
        do {
          if (b.should_park()) {
            st.park(f);
            b.note_park();
          } else {
            b.pause();
          }
          f = st.frontier_acquire();
        } while (f < me);
        slot.rounds += b.rounds();
        slot.parks += b.parks();
        WLP_OBS_HIST("wlp.doacross.wait_rounds", b.rounds());
        if (b.parks() != 0) WLP_OBS_COUNT("wlp.doacross.parks", b.parks());
      }

      if ((f & kStopBit) != 0) {
        const long s = static_cast<long>(f & ~kStopBit);
        if (i >= s) return;   // chain terminated before our iteration
        par(base + i, vpn);   // seq(i) completed before the stop was reached
        continue;
      }

      if (f == me) {
        // We own the frontier.  Run our sequential phase, then help every
        // consecutively claimed successor (batch-bounded) so the whole run
        // is published with one store and at most one broadcast.
        long j = i;
        bool stopped = false;
        for (;;) {
          if (!seq(base + j)) {
            st.record_stop(j);
            st.publish(kStopBit | static_cast<std::uint32_t>(j));
            stopped = true;
            break;
          }
          ++j;
          if (j >= win || j - i >= kMaxSeqBatch ||
              st.claimed_watermark() <= j) {
            st.publish(static_cast<std::uint32_t>(j));
            break;
          }
          // Iteration j is already claimed: its claimant runs only the
          // parallel phase once it sees the batched frontier advance.
        }
        ++slot.publishes;
        if (stopped && j == i) return;  // our own seq terminated: no par(i)
      }
      // f > me (helped) or we just ran/help-ran seq(i) successfully.
      par(base + i, vpn);
    }
  });
  return st.trip();
}

/// The window-loop body of doacross_while, with the window size as a
/// parameter so tests can exercise the multi-window path without running
/// 2^30 iterations.  `window` must stay below kStopBit.
template <class Seq, class Par>
DoacrossResult doacross_run(ThreadPool& pool, long max_iters, long window,
                            unsigned spin_limit, Seq&& seq, Par&& par) {
  DoacrossResult res;
  if (max_iters <= 0) return res;

  DoacrossChainLease lease;
  DoacrossChain& st = lease.chain();

  for (long bas = 0; bas < max_iters; bas += window) {
    const long win = std::min(max_iters - bas, window);
    st.begin_window(pool.size(), win, lease.stats());
    const long t = doacross_window(pool, st, bas, win, spin_limit, seq, par);
    st.accumulate(res);
    res.trip = bas + t;
    if (t < win) break;  // the termination condition fired in this window
  }

  WLP_OBS_COUNT("wlp.doacross.runs", 1);
  WLP_OBS_COUNT("wlp.doacross.iters", res.trip);
  WLP_OBS_COUNT("wlp.doacross.publishes", res.publishes);
  return res;
}

}  // namespace detail

/// Pipelined WHILE loop over at most `max_iters` iterations.
///
/// `seq(i) -> bool` runs in strict iteration order; returning false means the
/// termination condition held at iteration i (iteration i's parallel phase
/// does not run and no later iteration starts).  `par(i, vpn)` is the
/// independent remainder.  Iterations are claimed dynamically, so the
/// pipeline depth is the pool size.
///
/// Note for callers staging values from seq to par: claimed-but-UNRETIRED
/// iterations are bounded by pool.size(), but that alone does NOT make a
/// pool.size()-slot ring safe — an intermediate iteration can retire while
/// an older par() is still reading its slot, after which seq(i + slots) is
/// free to claim and overwrite it.  Ring reuse needs an explicit hand-off
/// (per-slot tickets: the par phase copies the staged value out and
/// releases the slot before running the body — see core/wu_lewis.hpp).
template <class Seq, class Par>
DoacrossResult doacross_while(ThreadPool& pool, long max_iters, Seq&& seq,
                              Par&& par, DoacrossOptions opts = {}) {
  unsigned spin = opts.spin_limit;
  if (spin == DoacrossOptions::kAutoSpin)
    spin = pool.oversubscribed() ? 0 : Backoff::kDefaultSpinLimit;
  return detail::doacross_run(pool, max_iters, detail::kFrontierWindow, spin,
                              std::forward<Seq>(seq), std::forward<Par>(par));
}

/// Reuse counters of the calling thread's pooled chain state.
inline DoacrossChainStats doacross_chain_stats() noexcept {
  return detail::doacross_tl_pool().stats;
}

/// Wu & Lewis' other scheme ("naive loop distribution", Section 3.3/10):
/// a purely sequential pass evaluates the dispatcher into `terms` until
/// `term` says stop or `max_iters` is hit; the caller then runs the
/// remainder as a DOALL over the recorded terms.  Returns the trip count.
/// This is the baseline the figure benches compare the General-k methods to.
template <class T, class Step, class Term>
long sequential_dispatcher_pass(std::vector<T>& terms, T first, Step&& step,
                                Term&& term, long max_iters) {
  terms.clear();
  T cur = first;
  for (long i = 0; i < max_iters; ++i) {
    if (term(cur)) return i;
    terms.push_back(cur);
    cur = step(cur);
  }
  return max_iters;
}

}  // namespace wlp
