// DOACROSS pipelining — the Wu & Lewis (ICPP 1990) execution model and the
// paper's fallback for sequential blocks after loop distribution (Section 6).
//
// Each iteration is split into a *sequential phase* (the recurrence /
// dispatcher step, which must observe program order) and a *parallel phase*
// (the remainder).  Iteration i's sequential phase waits on iteration i-1's
// completion flag; parallel phases overlap freely.  Because the sequential
// phases run in program order, a DOACROSS WHILE loop never overshoots —
// which is also why it forfeits the parallelism the paper's speculative
// methods recover.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "wlp/obs/obs.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/backoff.hpp"

namespace wlp {

struct DoacrossResult {
  long trip = 0;  ///< iterations whose parallel phase executed
};

namespace detail {

enum class SeqFlag : std::uint8_t { kPending = 0, kGo = 1, kStop = 2 };

// Wait for iteration i-1's completion flag with the shared escalating
// backoff (pause bursts, then yield) — the flag's writers don't notify, so
// this waiter never parks.  Returns the number of backoff rounds burned
// (0 = the flag was already set), the pipeline-stall figure the
// wlp.doacross.wait_rounds histogram accumulates.
inline unsigned spin_until_set(const std::atomic<std::uint8_t>& flag) {
  Backoff b;
  while (flag.load(std::memory_order_acquire) ==
         static_cast<std::uint8_t>(SeqFlag::kPending))
    b.pause();
  return b.rounds();
}

}  // namespace detail

/// Pipelined WHILE loop over at most `max_iters` iterations.
///
/// `seq(i) -> bool` runs in strict iteration order; returning false means the
/// termination condition held at iteration i (iteration i's parallel phase
/// does not run and no later iteration starts).  `par(i, vpn)` is the
/// independent remainder.  Iterations are claimed dynamically, so the
/// pipeline depth is the pool size.
template <class Seq, class Par>
DoacrossResult doacross_while(ThreadPool& pool, long max_iters, Seq&& seq,
                              Par&& par) {
  using detail::SeqFlag;
  if (max_iters <= 0) return {0};

  // flag[i+1] guards iteration i; flag[0] is pre-set so iteration 0 runs.
  std::vector<std::atomic<std::uint8_t>> flag(static_cast<std::size_t>(max_iters) + 1);
  for (auto& f : flag) f.store(static_cast<std::uint8_t>(SeqFlag::kPending),
                               std::memory_order_relaxed);
  flag[0].store(static_cast<std::uint8_t>(SeqFlag::kGo), std::memory_order_release);

  std::atomic<long> next{0};
  std::atomic<long> trip{max_iters};

  WLP_TRACE_SCOPE("doacross.run", max_iters, pool.size());
  pool.parallel([&](unsigned vpn) {
    for (;;) {
      const long i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= max_iters) return;
      {
        WLP_TRACE_SCOPE("doacross.wait", i, vpn);
        [[maybe_unused]] const unsigned rounds =
            detail::spin_until_set(flag[static_cast<std::size_t>(i)]);
        WLP_OBS_HIST("wlp.doacross.wait_rounds", rounds);
      }
      const auto prev = static_cast<SeqFlag>(
          flag[static_cast<std::size_t>(i)].load(std::memory_order_acquire));
      if (prev == SeqFlag::kStop) {
        // Propagate the stop down the chain so claimed successors wake up.
        flag[static_cast<std::size_t>(i) + 1].store(
            static_cast<std::uint8_t>(SeqFlag::kStop), std::memory_order_release);
        return;
      }
      const bool keep_going = seq(i);
      flag[static_cast<std::size_t>(i) + 1].store(
          static_cast<std::uint8_t>(keep_going ? SeqFlag::kGo : SeqFlag::kStop),
          std::memory_order_release);
      if (!keep_going) {
        long expected = max_iters;
        trip.compare_exchange_strong(expected, i, std::memory_order_acq_rel);
        return;
      }
      par(i, vpn);
    }
  });

  const long t = trip.load(std::memory_order_acquire);
  WLP_OBS_COUNT("wlp.doacross.runs", 1);
  WLP_OBS_COUNT("wlp.doacross.iters", t);
  return {t};
}

/// Wu & Lewis' other scheme ("naive loop distribution", Section 3.3/10):
/// a purely sequential pass evaluates the dispatcher into `terms` until
/// `term` says stop or `max_iters` is hit; the caller then runs the
/// remainder as a DOALL over the recorded terms.  Returns the trip count.
/// This is the baseline the figure benches compare the General-k methods to.
template <class T, class Step, class Term>
long sequential_dispatcher_pass(std::vector<T>& terms, T first, Step&& step,
                                Term&& term, long max_iters) {
  terms.clear();
  T cur = first;
  for (long i = 0; i < max_iters; ++i) {
    if (term(cur)) return i;
    terms.push_back(cur);
    cur = step(cur);
  }
  return max_iters;
}

}  // namespace wlp
