// DOALL scheduling with Alliant-style QUIT semantics.
//
// The paper's transformed WHILE loops all execute as DOALLs over an upper
// bound `u` of the iteration space, with each processor recording the lowest
// iteration on which it observed the termination condition (Figure 2).  A
// QUIT issued by iteration q guarantees that no iteration with a larger loop
// counter is *begun* after the QUIT lands; iterations already in flight may
// complete (that is exactly the overshoot the undo machinery handles).
//
// Four schedules are provided:
//   * kDynamic      — self-scheduled from a shared counter (iterations are
//                     therefore *issued in order*, like the Alliant FX/80).
//   * kStaticCyclic — iteration i goes to processor i mod p (General-2's
//                     static assignment).
//   * kStaticBlock  — contiguous blocks of u/p iterations per processor.
//   * kGuided       — guided self-scheduling (Polychronopoulos & Kuck):
//                     each grab claims max(remaining/p, chunk) iterations,
//                     so contention on the shared counter decays
//                     geometrically while the tail still load-balances at
//                     `chunk` granularity.  Issue order stays monotone, so
//                     QUIT semantics are identical to kDynamic.
#pragma once

#include <atomic>
#include <limits>

#include "wlp/obs/obs.hpp"
#include "wlp/sched/thread_pool.hpp"
#include "wlp/support/cacheline.hpp"

namespace wlp {

/// What an iteration body tells the scheduler.
enum class IterAction {
  kContinue,   ///< keep going
  kExit,       ///< terminator held *before* this iteration's work: iteration
               ///< `i` itself is not part of the sequential execution
  kExitAfter,  ///< conditional exit taken *after* this iteration's work:
               ///< iteration `i` is the last valid one
};

enum class Sched { kDynamic, kStaticCyclic, kStaticBlock, kGuided };

struct DoallOptions {
  Sched sched = Sched::kDynamic;
  long chunk = 1;       ///< claim granularity for kDynamic; floor for kGuided
  bool use_quit = true; ///< honor the QUIT (false = machines without it:
                        ///< every iteration in [lo, u) executes, as in the
                        ///< unoptimized Induction-1 of Fig. 2)
};

/// Shared monotonically-decreasing cut bound (the QUIT).
class QuitBound {
 public:
  /// Record that iteration `i` requested termination.
  void quit(long i) noexcept {
    long cur = bound_.load(std::memory_order_relaxed);
    while (i < cur &&
           !bound_.compare_exchange_weak(cur, i, std::memory_order_acq_rel)) {
    }
  }

  /// True if iteration `i` must not be begun.
  bool cut(long i) const noexcept {
    return i >= bound_.load(std::memory_order_acquire);
  }

  long bound() const noexcept { return bound_.load(std::memory_order_acquire); }

  static constexpr long kUnset = std::numeric_limits<long>::max();

 private:
  std::atomic<long> bound_{kUnset};
};

struct QuitResult {
  long trip = 0;     ///< sequential trip count (first invalid iteration index)
  long started = 0;  ///< iterations whose body actually ran in the parallel run
  long claims = 0;   ///< grabs against the shared counter (1 per worker for
                     ///< the static schedules) — the contention metric the
                     ///< guided schedule exists to shrink
};

namespace detail {

/// Runs `body(i, vpn) -> IterAction` over [lo, u) under `opts`, honoring the
/// QUIT.  Returns per the contract of doall_quit below.
template <class Body>
QuitResult doall_quit_impl(ThreadPool& pool, long lo, long u, Body&& body,
                           const DoallOptions& opts) {
  const unsigned p = pool.size();
  QuitBound quit;
  // cut(i) respects opts.use_quit: a machine without QUIT executes every
  // iteration in [lo, u) and relies purely on the post-loop min-reduction.
  const auto cut = [&](long i) { return opts.use_quit && quit.cut(i); };
  // Per-processor minimum candidate trip count (the paper's L[vpn], Fig. 2),
  // and per-processor started-iteration counts.
  PerWorker<long> local_trip(p, std::numeric_limits<long>::max());
  PerWorker<long> local_started(p, 0);
  PerWorker<long> local_claims(p, 0);
  std::atomic<long> next{lo};

  auto run_iter = [&](long i, unsigned vpn) {
    ++local_started[vpn];
    switch (body(i, vpn)) {
      case IterAction::kContinue:
        break;
      case IterAction::kExit:
        local_trip[vpn] = std::min(local_trip[vpn], i);
        quit.quit(i);
        break;
      case IterAction::kExitAfter:
        local_trip[vpn] = std::min(local_trip[vpn], i + 1);
        quit.quit(i + 1);
        break;
    }
  };

  const long chunk = opts.chunk > 0 ? opts.chunk : 1;
  switch (opts.sched) {
    case Sched::kDynamic:
      pool.parallel([&](unsigned vpn) {
        for (;;) {
          const long base = next.fetch_add(chunk, std::memory_order_relaxed);
          if (base >= u || cut(base)) return;
          ++local_claims[vpn];
          WLP_TRACE_SCOPE("claim", base, chunk);
          const long end = std::min(base + chunk, u);
          for (long i = base; i < end; ++i) {
            if (cut(i) && i > base) return;  // chunk interior: stop early
            run_iter(i, vpn);
          }
        }
      });
      break;
    case Sched::kGuided:
      pool.parallel([&](unsigned vpn) {
        for (;;) {
          long base = next.load(std::memory_order_relaxed);
          long take;
          do {
            if (base >= u || cut(base)) return;
            take = std::max(chunk, (u - base) / static_cast<long>(p));
          } while (!next.compare_exchange_weak(base, base + take,
                                               std::memory_order_relaxed));
          ++local_claims[vpn];
          WLP_TRACE_SCOPE("claim", base, take);
          const long end = std::min(base + take, u);
          for (long i = base; i < end; ++i) {
            if (cut(i) && i > base) return;  // chunk interior: stop early
            run_iter(i, vpn);
          }
        }
      });
      break;
    case Sched::kStaticCyclic:
      pool.parallel([&](unsigned vpn) {
        if (lo + vpn < u) ++local_claims[vpn];
        WLP_TRACE_SCOPE("claim", lo + vpn, u - lo);
        for (long i = lo + vpn; i < u; i += p) {
          if (cut(i)) return;
          run_iter(i, vpn);
        }
      });
      break;
    case Sched::kStaticBlock:
      pool.parallel([&](unsigned vpn) {
        const long n = u - lo;
        const long blk = (n + p - 1) / p;
        const long b = lo + static_cast<long>(vpn) * blk;
        const long e = std::min(b + blk, u);
        if (b < e) ++local_claims[vpn];
        WLP_TRACE_SCOPE("claim", b, e - b);
        for (long i = b; i < e; ++i) {
          if (cut(i)) return;
          run_iter(i, vpn);
        }
      });
      break;
  }

  QuitResult r;
  const long min_candidate =
      local_trip.reduce(std::numeric_limits<long>::max(),
                        [](long a, long b) { return std::min(a, b); });
  r.trip = std::min(min_candidate, u);
  r.started = local_started.reduce(0L, [](long a, long b) { return a + b; });
  r.claims = local_claims.reduce(0L, [](long a, long b) { return a + b; });
  // Aggregated once per DOALL (never per iteration): the claim-contention
  // and overshoot figures the cost model's schedule choice is judged by.
  WLP_OBS_COUNT("wlp.doall.runs", 1);
  WLP_OBS_COUNT("wlp.doall.claims", r.claims);
  WLP_OBS_COUNT("wlp.doall.started", r.started);
  WLP_OBS_HIST("wlp.doall.overshoot", std::max(0L, r.started - r.trip));
  return r;
}

}  // namespace detail

/// Execute a WHILE loop body speculatively as a DOALL over [lo, u).
///
/// `body(i, vpn)` performs the termination test and the work for iteration
/// `i` and reports how the iteration ended.  The returned `trip` is the
/// sequential trip count: the minimum of `u` and all exit candidates, i.e.
/// exactly the iteration at which the original sequential loop would stop.
/// Iterations >= trip that ran anyway are the *overshoot*.
template <class Body>
QuitResult doall_quit(ThreadPool& pool, long lo, long u, Body&& body,
                      const DoallOptions& opts = {}) {
  return detail::doall_quit_impl(pool, lo, u, std::forward<Body>(body), opts);
}

/// Plain DOALL (no termination condition): body(i, vpn).
template <class Body>
void doall(ThreadPool& pool, long lo, long hi, Body&& body,
           const DoallOptions& opts = {}) {
  detail::doall_quit_impl(
      pool, lo, hi,
      [&](long i, unsigned vpn) {
        body(i, vpn);
        return IterAction::kContinue;
      },
      opts);
}

}  // namespace wlp
