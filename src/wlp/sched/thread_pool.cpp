#include "wlp/sched/thread_pool.hpp"

#include <algorithm>

namespace wlp {

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(hw, 4u);
}

ThreadPool::ThreadPool(unsigned n) {
  if (n == 0) n = default_concurrency();
  threads_.reserve(n);
  for (unsigned vpn = 0; vpn < n; ++vpn)
    threads_.emplace_back([this, vpn] { worker_main(vpn); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel(const std::function<void(unsigned)>& f) {
  std::unique_lock lock(mu_);
  job_ = &f;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_main(unsigned vpn) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(vpn);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace wlp
