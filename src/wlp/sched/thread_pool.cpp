#include "wlp/sched/thread_pool.hpp"

#include <algorithm>
#include <limits>

#include "wlp/mem/topology.hpp"
#include "wlp/obs/obs.hpp"
#include "wlp/support/backoff.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wlp {

namespace {

// The pool a thread is currently executing a parallel body for.  Used to
// detect nested `parallel` calls on the same pool (which would otherwise
// deadlock waiting for workers that are all busy in the outer launch) and
// serialize them inline instead.
thread_local const ThreadPool* tl_current_pool = nullptr;

struct CurrentPoolGuard {
  const ThreadPool* prev;
  explicit CurrentPoolGuard(const ThreadPool* p) noexcept : prev(tl_current_pool) {
    tl_current_pool = p;
  }
  ~CurrentPoolGuard() { tl_current_pool = prev; }
};

// Claim word layout: low 48 epoch bits in the top, next unclaimed vpn in
// the bottom 16 (pool sizes are far below 2^16, so a claim is just +1).
constexpr std::uint64_t claim_pack(std::uint64_t epoch, unsigned next_vpn) {
  return (epoch << 16) | next_vpn;
}

// WLP_NUMA=pin: bind helper `widx` to the CPUs of its heuristic node.
// Share-stealing makes the vpn->thread binding dynamic, so this pins by
// helper index (the common static-spread case where helper w mostly runs
// vpn w); first-touch placement stays correct either way because the
// arenas, not the pin, decide where pages land.  No-op on single-node
// shapes, non-Linux hosts, and every mode but kPin.
void maybe_pin_helper(unsigned widx) {
#if defined(__linux__)
  const mem::Topology& topo = mem::Topology::process();
  if (topo.numa_mode() != mem::NumaMode::kPin) return;
  const int node = topo.worker_node(widx);
  if (node < 0 || static_cast<std::size_t>(node) >= topo.nodes().size()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned cpu : topo.nodes()[static_cast<std::size_t>(node)].cpus) {
    if (cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (CPU_COUNT(&set) != 0)
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)widx;
#endif
}

}  // namespace

namespace detail {

// Parking primitive.  On Linux we call futex directly instead of
// std::atomic::wait/notify: the kernel-side value compare in FUTEX_WAIT
// makes it safe for the *waker* to skip the wake syscall whenever the
// waiter-count word says nobody is parked — the seq_cst protocol used by
// the pool barrier and the DOACROSS frontier guarantees that a waiter that
// slipped into the kernel is always seen.  (std::atomic::notify cannot be
// elided that way: libstdc++ parks on an internal proxy word, so a skipped
// notify can strand a waiter even though the value already changed.)
// Memory ordering between publisher and waiter is carried entirely by the
// atomic words themselves; the futex is only a sleeping primitive, which
// also keeps the protocols TSan-clean.
#if defined(__linux__)
void futex_wait_u32(std::atomic<std::uint32_t>& word,
                    std::uint32_t expected) noexcept {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
}
void futex_wake_u32(std::atomic<std::uint32_t>& word, int n) noexcept {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, n, nullptr, nullptr, 0);
}
#else
void futex_wait_u32(std::atomic<std::uint32_t>& word,
                    std::uint32_t expected) noexcept {
  word.wait(expected, std::memory_order_acquire);
}
void futex_wake_u32(std::atomic<std::uint32_t>& word, int n) noexcept {
  if (n == 1)
    word.notify_one();
  else
    word.notify_all();
}
#endif

}  // namespace detail

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(hw, 4u);
}

ThreadPool::ThreadPool(unsigned n) {
  if (n == 0) n = default_concurrency();
  n = std::min(n, 0xffffu);  // vpn must fit the claim word's low 16 bits
  nproc_ = n;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  oversubscribed_ = n > hw;
  // Helpers: spinning for the next fork only pays if the caller can run
  // concurrently; on an oversubscribed host the spin budget is cycles
  // stolen from exactly the thread being waited for, so park at once.
  start_spin_limit_ = oversubscribed_ ? 0 : Backoff::kDefaultSpinLimit;
  // Caller: the join wait is short by construction (the caller has already
  // executed or stolen every share nobody claimed), so burn a spin/yield
  // budget before parking — each yield donates the core to a helper, and
  // skipping the park elides the last helper's wake syscall entirely.
  join_spin_limit_ = 128;
  // vpn -> node map from the process topology (all zeros on single-node
  // hosts): consumers use it to reason about placement; the arenas derive
  // the same map themselves so the two always agree.
  worker_node_.resize(n);
  for (unsigned vpn = 0; vpn < n; ++vpn)
    worker_node_[vpn] = mem::Topology::process().worker_node(vpn);
  wait_counters_ = std::vector<WaitCounters>(n);
  threads_.reserve(n - 1);
  for (unsigned widx = 1; widx < n; ++widx)
    threads_.emplace_back([this, widx] { worker_main(widx); });

#if defined(WLP_OBS_ENABLED)
  // Live view: each snapshot pulls this pool's counters.  The provider must
  // not call back into the registry (it runs under the registry lock), so
  // it only reads our atomics.
  obs_provider_ = obs::Registry::instance().add_provider([this](obs::Snapshot& out) {
    const PoolStats s = stats();
    auto push = [&out](const char* name, std::uint64_t v) {
      obs::MetricSample m;
      m.name = name;
      m.kind = obs::MetricSample::Kind::kCounter;
      m.value = static_cast<std::int64_t>(v);
      out.push_back(std::move(m));
    };
    push("wlp.pool.launches", s.launches);
    push("wlp.pool.inline_launches", s.inline_launches);
    push("wlp.pool.spin_wakeups", s.spin_wakeups);
    push("wlp.pool.park_wakeups", s.park_wakeups);
    push("wlp.pool.stolen_shares", s.stolen_shares);
  });
#endif
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(e, std::memory_order_seq_cst);
  doorbell_.word.store(static_cast<std::uint32_t>(e), std::memory_order_seq_cst);
  detail::futex_wake_u32(doorbell_.word, std::numeric_limits<int>::max());
  for (auto& t : threads_) t.join();

#if defined(WLP_OBS_ENABLED)
  if (obs_provider_ != 0) {
    obs::Registry::instance().remove_provider(obs_provider_);
    // Fold the dying pool's totals into owned counters of the same names,
    // so lifetime totals survive (snapshots merge same-name counters).
    const PoolStats s = stats();
    WLP_OBS_COUNT("wlp.pool.launches", s.launches);
    WLP_OBS_COUNT("wlp.pool.inline_launches", s.inline_launches);
    WLP_OBS_COUNT("wlp.pool.spin_wakeups", s.spin_wakeups);
    WLP_OBS_COUNT("wlp.pool.park_wakeups", s.park_wakeups);
    WLP_OBS_COUNT("wlp.pool.stolen_shares", s.stolen_shares);
  }
#endif
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.launches = launches_.load(std::memory_order_relaxed);
  s.inline_launches = inline_launches_.load(std::memory_order_relaxed);
  s.stolen_shares = stolen_shares_.load(std::memory_order_relaxed);
  for (const auto& c : wait_counters_) {
    s.spin_wakeups += c.spin.load(std::memory_order_relaxed);
    s.park_wakeups += c.park.load(std::memory_order_relaxed);
  }
  return s;
}

void ThreadPool::reset_stats() {
  launches_.store(0, std::memory_order_relaxed);
  inline_launches_.store(0, std::memory_order_relaxed);
  stolen_shares_.store(0, std::memory_order_relaxed);
  for (auto& c : wait_counters_) {
    c.spin.store(0, std::memory_order_relaxed);
    c.park.store(0, std::memory_order_relaxed);
  }
}

// Nested-or-serial path: run every virtual processor's share on this thread,
// in vpn order.  An exception aborts the remaining shares and propagates —
// the documented nested-launch guarantee.
void ThreadPool::run_inline(detail::JobRef job) {
  inline_launches_.fetch_add(1, std::memory_order_relaxed);
  WLP_TRACE_SCOPE("forkjoin.inline", nproc_, 0);
  CurrentPoolGuard guard(this);
  for (unsigned vpn = 0; vpn < nproc_; ++vpn) job(vpn);
}

// Hand out the next unexecuted share of `epoch`, or kNoShare if the claim
// word has moved on (all shares claimed, or a newer launch started — the
// epoch tag makes a stale claimant fail by value, never corrupt a later
// launch).  Relaxed is enough: job_/remaining_ visibility rides on the
// epoch acquire the claimant already performed.
unsigned ThreadPool::try_claim(std::uint64_t epoch) noexcept {
  const std::uint64_t tag = epoch << 16;  // keeps the low 48 epoch bits
  std::uint64_t c = claim_.load(std::memory_order_relaxed);
  for (;;) {
    if ((c & ~std::uint64_t{0xffff}) != tag) return kNoShare;
    const unsigned vpn = static_cast<unsigned>(c & 0xffff);
    if (vpn >= nproc_) return kNoShare;
    if (claim_.compare_exchange_weak(c, c + 1, std::memory_order_relaxed))
      return vpn;
  }
}

// Run one claimed share and retire it.  Whoever retires the last share of
// the launch posts the done word; the acq_rel decrement chain is a release
// sequence, so the caller's acquire of the done word sees every share's
// writes (including a claimed worker_error_).
void ThreadPool::execute_share(unsigned vpn, std::uint64_t epoch) {
  std::exception_ptr err;
  {
    WLP_TRACE_SCOPE("share", epoch, vpn);
    CurrentPoolGuard guard(this);
    try {
      job_(vpn);
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (err) {
    bool expected = false;
    if (error_claimed_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel))
      worker_error_ = err;
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_.word.store(static_cast<std::uint32_t>(epoch), std::memory_order_seq_cst);
    if (join_parked_.load(std::memory_order_seq_cst) != 0) detail::futex_wake_u32(done_.word, 1);
  }
}

void ThreadPool::run(detail::JobRef job) {
  if (tl_current_pool == this || nproc_ == 1) {
    run_inline(job);
    return;
  }
  launches_.fetch_add(1, std::memory_order_relaxed);
  WLP_TRACE_SCOPE("forkjoin", epoch_.load(std::memory_order_relaxed) + 1,
                  nproc_);

  job_ = job;
  error_claimed_.store(false, std::memory_order_relaxed);
  worker_error_ = nullptr;
  remaining_.store(nproc_, std::memory_order_relaxed);
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  claim_.store(claim_pack(e, 1), std::memory_order_relaxed);  // vpn 0 is ours
  // The fork: the epoch store publishes job_/claim_/remaining_ to the
  // helpers, whose first action is an acquire load of it.  seq_cst so the
  // doorbell ring orders against the start_parked_ read below (a helper
  // that got past the kernel's value check must be seen parked).
  epoch_.store(e, std::memory_order_seq_cst);
  doorbell_.word.store(static_cast<std::uint32_t>(e), std::memory_order_seq_cst);
  if (start_parked_.load(std::memory_order_seq_cst) != 0)
    detail::futex_wake_u32(doorbell_.word, std::numeric_limits<int>::max());

  // Run our own share, then steal any share the helpers have not reached.
  // On a host where the helpers are still context-switching in, a short
  // launch completes right here on the caller with no switch on the
  // critical path; the helpers drain the stale claim word and re-park.
  execute_share(0, e);
  for (;;) {
    const unsigned vpn = try_claim(e);
    if (vpn == kNoShare) break;
    stolen_shares_.fetch_add(1, std::memory_order_relaxed);
    execute_share(vpn, e);
  }

  // The join: spin/yield, then park on the done word until the thread that
  // retires the last share posts the epoch.
  const std::uint32_t target = static_cast<std::uint32_t>(e);
  Backoff backoff(join_spin_limit_);
  bool parked = false;
  while (done_.word.load(std::memory_order_acquire) != target) {
    if (backoff.should_park()) {
      WLP_TRACE_INSTANT("park.join", e, 0);
      join_parked_.store(1, std::memory_order_seq_cst);
      if (done_.word.load(std::memory_order_seq_cst) != target)
        detail::futex_wait_u32(done_.word, static_cast<std::uint32_t>(e - 1));
      join_parked_.store(0, std::memory_order_relaxed);
      parked = true;
    } else {
      backoff.pause();
    }
  }
  auto& ctr = wait_counters_[0];
  (parked ? ctr.park : ctr.spin).fetch_add(1, std::memory_order_relaxed);

  if (worker_error_) std::rethrow_exception(worker_error_);
}

void ThreadPool::worker_main(unsigned widx) {
  maybe_pin_helper(widx);
  std::uint64_t seen = 0;
  auto& ctr = wait_counters_[widx];
  for (;;) {
    Backoff backoff(start_spin_limit_);
    bool parked = false;
    std::uint64_t e;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (backoff.should_park()) {
        WLP_TRACE_INSTANT("park.worker", widx, 0);
        const std::uint32_t bell = doorbell_.word.load(std::memory_order_seq_cst);
        start_parked_.fetch_add(1, std::memory_order_seq_cst);
        if (epoch_.load(std::memory_order_seq_cst) == seen)
          detail::futex_wait_u32(doorbell_.word, bell);
        start_parked_.fetch_sub(1, std::memory_order_seq_cst);
        parked = true;
      } else {
        backoff.pause();
      }
    }
    (parked ? ctr.park : ctr.spin).fetch_add(1, std::memory_order_relaxed);
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = e;

    for (;;) {
      const unsigned vpn = try_claim(e);
      if (vpn == kNoShare) break;
      execute_share(vpn, e);
    }
  }
}

}  // namespace wlp
