// A persistent fork-join worker pool.
//
// This is the machine abstraction everything else runs on: `p` virtual
// processors (the paper's `nproc`), each with a stable virtual processor
// number `vpn` in [0, p).  A single blocking primitive is exposed —
// `parallel(f)` runs f(vpn) on every worker and waits — and the DOALL /
// DOACROSS / prefix schedulers in this directory are built on top of it.
//
// Exceptions thrown by workers are captured and rethrown in the caller
// (first one wins); Section 5.1 of the paper treats an exception during a
// speculative run as a failed speculation, and the speculative driver in
// core/speculative.hpp relies on this propagation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wlp {

class ThreadPool {
 public:
  /// Create a pool with `n` workers.  `n == 0` selects a default suited to
  /// exercising the runtime even on small hosts (at least 4).
  explicit ThreadPool(unsigned n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of virtual processors.
  unsigned size() const noexcept { return static_cast<unsigned>(threads_.size()); }

  /// Run `f(vpn)` on every worker; blocks until all have finished.
  /// Rethrows the first worker exception after all workers are quiescent.
  void parallel(const std::function<void(unsigned)>& f);

  /// Default worker count: the hardware concurrency, but at least 4 so the
  /// concurrency machinery is genuinely exercised on single-core hosts.
  static unsigned default_concurrency();

 private:
  void worker_main(unsigned vpn);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace wlp
